package simsym_test

// Oracle cross-check for the compiled slot-frame VM: the refactored
// machine keeps the pre-compilation string encodings alive as oracles
// (ProcFingerprintOracle / FingerprintOracle), and this test drives both
// encoders over every shipped topology to prove the new slot-order binary
// encoding induces exactly the same equality classes — two states get
// equal new fingerprints iff their oracle fingerprints are equal. On top
// of that it re-establishes the headline model-checking verdicts and
// selection winners on the same topologies, so a change to either encoder
// that shifted observable behavior would surface here. CI runs this file
// under -race -count=2.

import (
	"fmt"
	"math/rand"
	"testing"

	simsym "simsym"
	"simsym/internal/dining"
	"simsym/internal/machine"
	"simsym/internal/system"
)

// bijection accumulates a one-to-one correspondence between two string
// encodings and fails the test on the first conflict in either direction.
type bijection struct {
	fwd, rev map[string]string
}

func newBijection() *bijection {
	return &bijection{fwd: make(map[string]string), rev: make(map[string]string)}
}

func (bj *bijection) observe(t *testing.T, where, a, b string) {
	t.Helper()
	if prev, ok := bj.fwd[a]; ok && prev != b {
		t.Fatalf("%s: new fingerprint maps to two oracle classes:\nnew   %q\noracle %q vs %q", where, a, b, prev)
	}
	if prev, ok := bj.rev[b]; ok && prev != a {
		t.Fatalf("%s: oracle fingerprint maps to two new classes:\noracle %q\nnew   %q vs %q", where, b, a, prev)
	}
	bj.fwd[a] = b
	bj.rev[b] = a
}

// crosscheck random-walks the machine and checks, at every reached state,
// that whole-state and per-processor fingerprints stay in bijection with
// their oracle encodings.
func crosscheck(t *testing.T, sys *system.System, instr system.InstrSet, prog *machine.Program, seed int64, walks, steps int) {
	t.Helper()
	state := newBijection()
	procs := newBijection()
	rng := rand.New(rand.NewSource(seed))
	record := func(where string, m *machine.Machine) {
		state.observe(t, where, m.Fingerprint(), m.FingerprintOracle())
		for p := 0; p < m.NumProcs(); p++ {
			procs.observe(t, where, m.ProcFingerprint(p), m.ProcFingerprintOracle(p))
		}
	}
	for w := 0; w < walks; w++ {
		m, err := machine.New(sys, instr, prog)
		if err != nil {
			t.Fatal(err)
		}
		record(fmt.Sprintf("walk %d init", w), m)
		for i := 0; i < steps; i++ {
			p := rng.Intn(sys.NumProcs())
			if err := m.Step(p); err != nil {
				t.Fatal(err)
			}
			record(fmt.Sprintf("walk %d step %d (proc %d)", w, i, p), m)
		}
	}
	if len(state.fwd) < 2 {
		t.Fatalf("cross-check degenerate: only %d distinct states reached", len(state.fwd))
	}
}

func TestOracleCrosscheckFigures(t *testing.T) {
	cases := []struct {
		name  string
		sys   *system.System
		instr system.InstrSet
	}{
		{"Fig1/S", system.Fig1(), system.InstrS},
		{"Fig1/L", system.Fig1(), system.InstrL},
		{"Fig2/Q", system.Fig2(), system.InstrQ},
		{"Fig2/S", system.Fig2(), system.InstrS},
		{"Fig3/S", system.Fig3(), system.InstrS},
		{"Fig3/Q", system.Fig3(), system.InstrQ},
	}
	for i, tc := range cases {
		tc := tc
		seed := int64(100 + i)
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			for trial := 0; trial < 6; trial++ {
				prog, err := machine.RandomProgram(rng, tc.sys.Names, tc.instr, 2+rng.Intn(9))
				if err != nil {
					t.Fatal(err)
				}
				crosscheck(t, tc.sys, tc.instr, prog, seed+int64(trial), 4, 30)
			}
		})
	}
}

func TestOracleCrosscheckDiningTables(t *testing.T) {
	fork := func(meals int) *machine.Program {
		prog, err := dining.Program("left", "right", meals)
		if err != nil {
			t.Fatal(err)
		}
		return prog
	}
	cm, err := dining.ChandyMisraProgram(1)
	if err != nil {
		t.Fatal(err)
	}
	dp5, err := system.Dining(5)
	if err != nil {
		t.Fatal(err)
	}
	dp6, err := system.DiningFlipped(6)
	if err != nil {
		t.Fatal(err)
	}
	oriented, err := dining.OrientedTable(5, dining.SingleFlipOrientation(5))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		sys  *system.System
		prog *machine.Program
	}{
		{"DP5", dp5, fork(2)},
		{"DP6-flipped", dp6, fork(2)},
		{"Oriented5-ChandyMisra", oriented, cm},
	}
	for i, tc := range cases {
		tc := tc
		seed := int64(200 + i)
		t.Run(tc.name, func(t *testing.T) {
			crosscheck(t, tc.sys, system.InstrL, tc.prog, seed, 5, 60)
		})
	}
}

// TestOracleCrosscheckShardedVerdicts drives the sharded deterministic-
// by-reduction pipeline (and its spill-forced variant) against the
// sequential engine on every topology the oracle suite covers: the
// reports must match field for field — verdict, witness schedule, state
// counts, depth, dedup counters. Programs are seeded-random so the
// comparison sweeps arbitrary verdict shapes, not just the curated ones.
func TestOracleCrosscheckShardedVerdicts(t *testing.T) {
	sameCheck := func(t *testing.T, a, b *simsym.CheckReport, what string) {
		t.Helper()
		if a.Safe != b.Safe || a.Complete != b.Complete || a.Exhausted != b.Exhausted ||
			a.StatesExplored != b.StatesExplored || a.Violation != b.Violation ||
			fmt.Sprint(a.Schedule) != fmt.Sprint(b.Schedule) {
			t.Fatalf("%s: reports differ:\n%+v\n%+v", what, a, b)
		}
		if a.Stats.Transitions != b.Stats.Transitions || a.Stats.DedupHits != b.Stats.DedupHits ||
			a.Stats.SelfLoops != b.Stats.SelfLoops || a.Stats.Depth != b.Stats.Depth ||
			a.Stats.PeakFrontier != b.Stats.PeakFrontier {
			t.Fatalf("%s: stats differ:\n%+v\n%+v", what, a.Stats, b.Stats)
		}
	}
	shardOpts := func(spill bool, dir string) []simsym.Option {
		opts := []simsym.Option{simsym.WithWorkers(4), simsym.WithShards(4), simsym.WithMaxStates(20_000)}
		if spill {
			opts = append(opts, simsym.WithSpill(1, dir))
		}
		return opts
	}

	figures := []struct {
		name  string
		sys   *system.System
		instr system.InstrSet
	}{
		{"Fig1/S", system.Fig1(), system.InstrS},
		{"Fig1/L", system.Fig1(), system.InstrL},
		{"Fig2/Q", system.Fig2(), system.InstrQ},
		{"Fig2/S", system.Fig2(), system.InstrS},
		{"Fig3/S", system.Fig3(), system.InstrS},
		{"Fig3/Q", system.Fig3(), system.InstrQ},
	}
	for i, tc := range figures {
		tc := tc
		seed := int64(300 + i)
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			for trial := 0; trial < 3; trial++ {
				prog, err := machine.RandomProgram(rng, tc.sys.Names, tc.instr, 2+rng.Intn(9))
				if err != nil {
					t.Fatal(err)
				}
				seq, err := simsym.CheckOpts(tc.sys, tc.instr, prog, simsym.WithMaxStates(20_000))
				if err != nil {
					t.Fatal(err)
				}
				sharded, err := simsym.CheckOpts(tc.sys, tc.instr, prog, shardOpts(false, "")...)
				if err != nil {
					t.Fatal(err)
				}
				sameCheck(t, seq, sharded, fmt.Sprintf("trial %d sharded", trial))
				spilled, err := simsym.CheckOpts(tc.sys, tc.instr, prog, shardOpts(true, t.TempDir())...)
				if err != nil {
					t.Fatal(err)
				}
				sameCheck(t, seq, spilled, fmt.Sprintf("trial %d sharded+spill", trial))
			}
		})
	}

	// Dining tables: exclusion + deadlock verdicts through the dining
	// facade, same three-way comparison.
	forks, err := dining.Program("left", "right", 1)
	if err != nil {
		t.Fatal(err)
	}
	dp5, err := system.Dining(5)
	if err != nil {
		t.Fatal(err)
	}
	dp6, err := system.DiningFlipped(6)
	if err != nil {
		t.Fatal(err)
	}
	oriented, err := dining.OrientedTable(5, dining.SingleFlipOrientation(5))
	if err != nil {
		t.Fatal(err)
	}
	cm, err := dining.ChandyMisraProgram(1)
	if err != nil {
		t.Fatal(err)
	}
	tables := []struct {
		name string
		sys  *system.System
		prog *machine.Program
	}{
		{"DP5", dp5, forks},
		{"DP6-flipped", dp6, forks},
		{"Oriented5-ChandyMisra", oriented, cm},
	}
	for _, tc := range tables {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sameDining := func(a, b *simsym.DiningReport, what string) {
				t.Helper()
				if a.StatesExplored != b.StatesExplored || a.Complete != b.Complete ||
					(a.ExclusionViolated == nil) != (b.ExclusionViolated == nil) ||
					(a.Deadlocked == nil) != (b.Deadlocked == nil) {
					t.Fatalf("%s: dining reports differ:\n%+v\n%+v", what, a, b)
				}
				if fmt.Sprint(a.Deadlocked) != fmt.Sprint(b.Deadlocked) ||
					fmt.Sprint(a.ExclusionViolated) != fmt.Sprint(b.ExclusionViolated) {
					t.Fatalf("%s: witness schedules differ:\n%+v\n%+v", what, a, b)
				}
			}
			seq, err := simsym.CheckDiningOpts(tc.sys, tc.prog, simsym.WithMaxStates(20_000))
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := simsym.CheckDiningOpts(tc.sys, tc.prog, shardOpts(false, "")...)
			if err != nil {
				t.Fatal(err)
			}
			sameDining(seq, sharded, "sharded")
			spilled, err := simsym.CheckDiningOpts(tc.sys, tc.prog, shardOpts(true, t.TempDir())...)
			if err != nil {
				t.Fatal(err)
			}
			sameDining(seq, spilled, "sharded+spill")
		})
	}
}

// TestOracleCrosscheckVerdicts re-establishes the paper's headline model
// checker verdicts and selection winners on the slot-frame VM: DP
// deadlocks under round-robin, DP' closes deadlock- and violation-free,
// the naive S selection is unsafe, and L selection picks exactly one
// stable winner per schedule.
func TestOracleCrosscheckVerdicts(t *testing.T) {
	// DP: the symmetric five-table deadlocks under round-robin.
	dp5, err := simsym.Dining(5)
	if err != nil {
		t.Fatal(err)
	}
	forks, err := simsym.DiningProgram("left", "right", 1)
	if err != nil {
		t.Fatal(err)
	}
	_, dead, err := dining.FindDeadlockRoundRobin(dp5, forks, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !dead {
		t.Error("DP: round-robin on the five-table must deadlock")
	}

	// DP': the alternating table closes with no deadlock and no
	// exclusion violation.
	dp4, err := simsym.DiningFlipped(4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := simsym.CheckDiningOpts(dp4, forks, simsym.WithMaxStates(1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Error("DP': state space must close")
	}
	if rep.Deadlocked != nil || rep.ExclusionViolated != nil {
		t.Errorf("DP': unexpected violation %+v", rep)
	}

	// Theorem 1 strawman: the naive S selection on Figure 1 is unsafe.
	b := simsym.NewProgram()
	x, selected, mark := b.Sym("x"), b.Sym("selected"), b.Sym("mark")
	b.Read("n", "x")
	b.Compute(func(r *simsym.Regs) {
		if r.Get(x) == "0" {
			r.Set(selected, true)
			r.Set(mark, "taken")
		} else {
			r.Set(mark, "seen")
		}
	})
	b.Write("n", "mark")
	b.Halt()
	naive, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	naiveRep, err := simsym.CheckOpts(simsym.Fig1(), simsym.InstrS, naive, simsym.WithMaxStates(100_000))
	if err != nil {
		t.Fatal(err)
	}
	if naiveRep.Safe {
		t.Error("naive S selection must be flagged unsafe")
	}

	// L selection: the generated program picks exactly one winner, and
	// the winner is a deterministic function of the schedule.
	prog, dec, err := simsym.BuildSelectOpts(simsym.Fig1(), simsym.InstrL, simsym.SchedGeneral)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Solvable {
		t.Fatal("selection in L on Figure 1 must be solvable")
	}
	// The generated program is Algorithm 4 (relabel + two label-learning
	// phases) and converges under fair rounds, so schedules are built as
	// shuffled rounds: every processor once per round, order randomized.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		var schedule []int
		for round := 0; round < 400; round++ {
			if rng.Intn(2) == 0 {
				schedule = append(schedule, 0, 1)
			} else {
				schedule = append(schedule, 1, 0)
			}
		}
		var winners [2][]int
		for run := 0; run < 2; run++ {
			m, err := simsym.NewMachine(simsym.Fig1(), simsym.InstrL, prog)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range schedule {
				if err := m.Step(p); err != nil {
					t.Fatal(err)
				}
			}
			winners[run] = m.SelectedProcs()
		}
		if len(winners[0]) != 1 {
			t.Fatalf("trial %d: selected %v, want exactly one winner", trial, winners[0])
		}
		if len(winners[1]) != 1 || winners[0][0] != winners[1][0] {
			t.Fatalf("trial %d: winners diverge across identical schedules: %v vs %v", trial, winners[0], winners[1])
		}
	}
}
