package main

import "testing"

func TestModelPowerRuns(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
