// The section 9 hierarchy, live: L ⊃ Q ⊃ bounded-fair S ⊃ fair S.
//
// Each witness system is solvable in the stronger model and unsolvable
// in the weaker one, and the similarity machinery explains why: locks
// separate same-name sharers, counting separates different multiplicities,
// bounded fairness turns silence into information.
package main

import (
	"fmt"
	"log"

	"simsym"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	witnesses := []struct {
		name string
		sys  *simsym.System
		why  string
	}{
		{"Figure 1", simsym.Fig1(), "same-name sharers: only the lock race separates them"},
		{"Figure 2", simsym.Fig2(), "p3 is alone on its variable: only counting (Q's peek) sees that"},
		{"Figure 3", simsym.Fig3(), "p and q mimic each other when z is silent: only bounded fairness exposes z"},
	}
	fmt.Printf("%-10s  %-4s  %-4s  %-6s  %-6s\n", "system", "L", "Q", "BF-S", "F-S")
	for _, w := range witnesses {
		row := []string{}
		for _, model := range []struct {
			instr simsym.InstrSet
			sched simsym.ScheduleClass
		}{
			{simsym.InstrL, simsym.SchedFair},
			{simsym.InstrQ, simsym.SchedFair},
			{simsym.InstrS, simsym.SchedBoundedFair},
			{simsym.InstrS, simsym.SchedFair},
		} {
			d, err := simsym.DecideOpts(w.sys, model.instr, model.sched)
			if err != nil {
				return err
			}
			v := "no"
			if d.Solvable {
				v = "yes"
			}
			row = append(row, v)
		}
		fmt.Printf("%-10s  %-4s  %-4s  %-6s  %-6s\n", w.name, row[0], row[1], row[2], row[3])
	}
	for _, w := range witnesses {
		fmt.Printf("\n%s: %s\n", w.name, w.why)
	}

	// The labeling-level face of the same fact: the set-rule labeling is
	// always a coarsening of the counting-rule labeling.
	sys := simsym.Fig2()
	q, err := simsym.SimilarityOpts(sys, simsym.RuleQ)
	if err != nil {
		return err
	}
	s, err := simsym.SimilarityOpts(sys, simsym.RuleSetS)
	if err != nil {
		return err
	}
	fmt.Printf("\nFigure 2 labelings:\n  counting rule: %s\n  set rule:      %s\n", q, s)
	return nil
}
