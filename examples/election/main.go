// Leader election across models: what symmetry permits, what locks buy,
// and what randomization rescues.
//
// Figure 1's two processors are hopeless in Q (they are similar) but a
// lock race elects one of them — Algorithm 4 in full: relabel by
// lock-rank, learn the family label, elect the ELITE holder, with the
// run verified here by the model checker over every schedule. Rings are
// hopeless in every deterministic model; Itai–Rodeh elects a leader with
// probability 1 anyway.
package main

import (
	"fmt"
	"log"

	"simsym"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Figure 1 in L: Algorithm 4 ---
	sys := simsym.Fig1()
	versions, err := simsym.RelabelVersions(sys)
	if err != nil {
		return err
	}
	fmt.Printf("Fig1 relabel versions (the paper's VERSIONS): %v\n", versions)

	prog, d, err := simsym.BuildSelectOpts(sys, simsym.InstrL, simsym.SchedFair)
	if err != nil {
		return err
	}
	fmt.Println("decision:", d.Reason)

	m, err := simsym.NewMachine(sys, simsym.InstrL, prog)
	if err != nil {
		return err
	}
	rr, err := simsym.RoundRobin(2, 2000)
	if err != nil {
		return err
	}
	if _, err := m.Run(rr); err != nil {
		return err
	}
	fmt.Println("Algorithm 4 winner:", m.SelectedProcs())

	chk, err := simsym.CheckOpts(sys, simsym.InstrL, prog, simsym.WithMaxStates(600_000))
	if err != nil {
		return err
	}
	fmt.Printf("model-checked over all schedules: safe=%v complete=%v\n", chk.Safe, chk.Complete)

	// --- Rings: deterministic impossibility, randomized escape ---
	ring, err := simsym.Ring(8)
	if err != nil {
		return err
	}
	dRing, err := simsym.DecideOpts(ring, simsym.InstrL, simsym.SchedFair)
	if err != nil {
		return err
	}
	fmt.Printf("\nanonymous ring(8) in L: solvable=%v\n", dRing.Solvable)

	stats, err := simsym.ItaiRodehSweep(7, 8, 16, 500, 500)
	if err != nil {
		return err
	}
	fmt.Printf("Itai-Rodeh on the same ring: %d/%d elections succeeded, %.2f phases and %.0f messages on average\n",
		stats.Successes, stats.Runs, stats.MeanPhases, stats.MeanMsgs)
	return nil
}
