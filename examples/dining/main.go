// Dining philosophers end to end: the paper's section 7.
//
// Five philosophers (Figure 4) are graph-symmetric, five is prime, so by
// Theorem 11 they are all similar even with locks — and the uniform
// fork-grabbing program deadlocks under round-robin. Six philosophers
// seated alternately (Figure 5) split the forks into shared-left and
// shared-right classes; the very same program becomes deadlock-free,
// which the model checker verifies exhaustively on the 4-table and
// boundedly on the 6-table.
package main

import (
	"fmt"
	"log"

	"simsym"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Figure 4: the impossible table ---
	five, err := simsym.Dining(5)
	if err != nil {
		return err
	}
	orb, err := simsym.ComputeOrbits(five)
	if err != nil {
		return err
	}
	fmt.Printf("Figure 4 (5 philosophers): |Aut|=%d, philosopher orbits=%d\n",
		orb.GroupOrder, len(orb.ProcClasses()))
	d, err := simsym.DecideOpts(five, simsym.InstrL, simsym.SchedFair)
	if err != nil {
		return err
	}
	fmt.Println("  selection in L:", d.Solvable, "—", d.Reason)

	prog, err := simsym.DiningProgram("left", "right", 1)
	if err != nil {
		return err
	}
	m, err := simsym.NewMachine(five, simsym.InstrL, prog)
	if err != nil {
		return err
	}
	rr, err := simsym.RoundRobin(5, 40)
	if err != nil {
		return err
	}
	if _, err := m.Run(rr); err != nil {
		return err
	}
	fmt.Println("  after 40 round-robin rounds, machine halted:", m.AllHalted(),
		"(false = the classic deadlock: everyone holds one fork)")

	// --- Figure 5: the flipped table ---
	six, err := simsym.DiningFlipped(6)
	if err != nil {
		return err
	}
	orb6, err := simsym.ComputeOrbits(six)
	if err != nil {
		return err
	}
	fmt.Printf("\nFigure 5 (6 flipped): |Aut|=%d, philosopher orbits=%d, fork orbits=%d\n",
		orb6.GroupOrder, len(orb6.ProcClasses()), len(orb6.VarClasses()))

	rep, err := simsym.CheckDiningOpts(six, prog, simsym.WithMaxStates(60_000))
	if err != nil {
		return err
	}
	fmt.Printf("  model check (%d states): exclusion violated=%v, deadlock=%v\n",
		rep.StatesExplored, rep.ExclusionViolated != nil, rep.Deadlocked != nil)

	meals, err := simsym.DiningProgram("left", "right", 3)
	if err != nil {
		return err
	}
	m6, err := simsym.NewMachine(six, simsym.InstrL, meals)
	if err != nil {
		return err
	}
	rr6, err := simsym.RoundRobin(6, 500)
	if err != nil {
		return err
	}
	if _, err := m6.Run(rr6); err != nil {
		return err
	}
	counts := make([]int, 6)
	for p := range counts {
		if v, ok := m6.Local(p, "meals"); ok {
			counts[p], _ = v.(int)
		}
	}
	fmt.Println("  meals per philosopher under round-robin:", counts)
	return nil
}
