// Encapsulating asymmetry (paper §8): DP says five symmetric
// philosophers can never dine deterministically — all five are similar,
// and the round-robin schedule locks them in step forever. The [CM84]
// design method hides the needed asymmetry in the INITIAL STATE: forks
// start dirty under an acyclic orientation, processors stay anonymous,
// the program stays uniform, and the Chandy–Misra rules (yield dirty
// forks on request, never clean ones) feed everyone.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"simsym"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n, meals = 5, 3

	// The symmetric table first: the similarity labeling says all five
	// philosophers are one class — the DP obstruction.
	sym, err := simsym.Dining(n)
	if err != nil {
		return err
	}
	lab, err := simsym.SimilarityOpts(sym, simsym.RuleQ)
	if err != nil {
		return err
	}
	fmt.Printf("symmetric table: %d philosopher similarity classes (DP obstruction)\n", lab.NumProcClasses())

	// The oriented table: same topology, same anonymous processors, but
	// fork 0 starts owned the other way around. Adjacent philosophers
	// are now dissimilar.
	orientation := make([]bool, n)
	orientation[0] = true
	oriented, err := simsym.OrientedDiningTable(n, orientation)
	if err != nil {
		return err
	}
	labO, err := simsym.SimilarityOpts(oriented, simsym.RuleQ)
	if err != nil {
		return err
	}
	fmt.Printf("oriented table:  %d philosopher similarity classes (asymmetry encapsulated in the initial state)\n",
		labO.NumProcClasses())

	// Run Chandy–Misra under a random fair schedule until everyone has
	// eaten; report meal counts along the way.
	prog, err := simsym.ChandyMisraProgram(meals)
	if err != nil {
		return err
	}
	m, err := simsym.NewMachine(oriented, simsym.InstrL, prog)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(1))
	counts := func() []int {
		out := make([]int, n)
		for p := range out {
			if v, ok := m.Local(p, "meals"); ok {
				out[p], _ = v.(int)
			}
		}
		return out
	}
	done := func() bool {
		for _, c := range counts() {
			if c < meals {
				return false
			}
		}
		return true
	}
	steps := 0
	for !done() && steps < 2_000_000 {
		if err := m.Step(rng.Intn(n)); err != nil {
			return err
		}
		steps++
		if steps%20_000 == 0 {
			fmt.Printf("  after %6d steps: meals %v\n", steps, counts())
		}
	}
	fmt.Printf("finished after %d steps: meals %v\n", steps, counts())
	return nil
}
