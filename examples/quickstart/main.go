// Quickstart: build systems, compute similarity labelings, and decide
// the selection problem — the library's core loop in thirty lines.
package main

import (
	"fmt"
	"log"

	"simsym"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// An anonymous ring: perfectly symmetric, so every processor is
	// similar to every other and no deterministic algorithm can ever
	// elect a leader — not even with locks.
	ring, err := simsym.Ring(5)
	if err != nil {
		return err
	}
	lab, err := simsym.SimilarityOpts(ring, simsym.RuleQ)
	if err != nil {
		return err
	}
	fmt.Println("anonymous ring(5):", lab)
	for _, model := range []struct {
		name  string
		instr simsym.InstrSet
		sched simsym.ScheduleClass
	}{
		{"Q/fair", simsym.InstrQ, simsym.SchedFair},
		{"L/fair", simsym.InstrL, simsym.SchedFair},
		{"S/bounded-fair", simsym.InstrS, simsym.SchedBoundedFair},
	} {
		d, err := simsym.DecideOpts(ring, model.instr, model.sched)
		if err != nil {
			return err
		}
		fmt.Printf("  selection in %-14s %v  (%s)\n", model.name+":", d.Solvable, d.Reason)
	}

	// One marked processor breaks the symmetry completely: refinement
	// propagates the distinction around the ring and selection becomes
	// trivial to decide — and runnable.
	marked := ring.Clone()
	marked.ProcInit[0] = "leader"
	lab, err = simsym.SimilarityOpts(marked, simsym.RuleQ)
	if err != nil {
		return err
	}
	fmt.Println("\nmarked ring(5): ", lab)

	prog, d, err := simsym.BuildSelectOpts(marked, simsym.InstrQ, simsym.SchedFair)
	if err != nil {
		return err
	}
	fmt.Println("  decision:", d.Reason)
	m, err := simsym.NewMachine(marked, simsym.InstrQ, prog)
	if err != nil {
		return err
	}
	rr, err := simsym.RoundRobin(marked.NumProcs(), 2000)
	if err != nil {
		return err
	}
	if _, err := m.Run(rr); err != nil {
		return err
	}
	fmt.Println("  SELECT ran; winner:", m.SelectedProcs())
	return nil
}
