package main

import "testing"

func TestQuickstartRuns(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
