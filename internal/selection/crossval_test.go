package selection

import (
	"errors"
	"math/rand"
	"testing"

	"simsym/internal/distlabel"
	"simsym/internal/family"
	"simsym/internal/machine"
	"simsym/internal/mc"
	"simsym/internal/sched"
	"simsym/internal/system"
)

// TestCrossValidateQDecisionsAgainstModelChecker is the end-to-end
// soundness property: whenever the decision procedure declares a random
// system solvable in Q, the generated SELECT program must (a) satisfy
// Uniqueness and Stability under EVERY schedule (exhaustively model
// checked) and (b) actually select someone under a fair schedule.
func TestCrossValidateQDecisionsAgainstModelChecker(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation model-checks many systems")
	}
	rng := rand.New(rand.NewSource(99))
	solvable, checked := 0, 0
	for trial := 0; trial < 60 && solvable < 12; trial++ {
		s, err := system.RandomSystem(rng, system.RandomOpts{
			Procs:      2 + rng.Intn(3),
			Vars:       1 + rng.Intn(3),
			Names:      1 + rng.Intn(2),
			InitStates: 1 + rng.Intn(2),
		})
		if err != nil || !s.Connected() {
			continue
		}
		if distlabel.ValidateRuntime(s) != nil {
			continue // generated programs reject duplicate name edges
		}
		checked++
		d, err := Decide(s, system.InstrQ, system.SchedFair)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Solvable {
			continue
		}
		solvable++
		prog, _, err := Select(s, system.InstrQ, system.SchedFair)
		if err != nil {
			t.Fatalf("trial %d: Select failed on solvable system: %v\n%s", trial, err, s.Describe())
		}
		// (a) Safety over all schedules, within budget.
		res, err := mc.Check(func() (*machine.Machine, error) {
			return machine.New(s, system.InstrQ, prog)
		}, mc.Options{
			MaxStates:  60_000,
			StatePreds: []mc.StatePredicate{mc.UniquenessPred},
			TransPreds: []mc.TransitionPredicate{mc.StabilityPred},
		})
		if err != nil && !errors.Is(err, mc.ErrBudget) {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("trial %d: SELECT unsafe: %s (schedule %v)\n%s",
				trial, res.Violation.Reason, res.Violation.Schedule, s.Describe())
		}
		// (b) Liveness under one fair schedule.
		m, err := machine.New(s, system.InstrQ, prog)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := sched.RoundRobin(s.NumProcs(), 4000)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(rr); err != nil {
			t.Fatal(err)
		}
		if sel := m.SelectedProcs(); len(sel) != 1 {
			t.Fatalf("trial %d: fair run selected %v\n%s", trial, sel, s.Describe())
		}
	}
	if solvable < 5 {
		t.Errorf("too few solvable systems exercised: %d of %d", solvable, checked)
	}
}

// TestCrossValidateLDecisionsEndToEnd does the same for L: solvable
// random systems must elect exactly one processor under fair schedules
// via Algorithm 4.
func TestCrossValidateLDecisionsEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	solvable, examined := 0, 0
	for trial := 0; trial < 80 && solvable < 8; trial++ {
		s, err := system.RandomSystem(rng, system.RandomOpts{
			Procs:      2 + rng.Intn(2),
			Vars:       1 + rng.Intn(2),
			Names:      1 + rng.Intn(2),
			InitStates: 1,
		})
		if err != nil || !s.Connected() {
			continue
		}
		// Algorithm 4's relabel counters require zeroed variables.
		for v := range s.VarInit {
			s.VarInit[v] = "0"
		}
		if distlabel.ValidateRuntime(s) != nil {
			continue // generated programs reject duplicate name edges
		}
		examined++
		d, err := DecideL(s, family.RelabelOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !d.Solvable {
			continue
		}
		solvable++
		prog, _, err := Select(s, system.InstrL, system.SchedFair)
		if err != nil {
			t.Fatalf("trial %d: Select failed: %v\n%s", trial, err, s.Describe())
		}
		for seed := int64(0); seed < 3; seed++ {
			m, err := machine.New(s, system.InstrL, prog)
			if err != nil {
				t.Fatal(err)
			}
			rng2 := rand.New(rand.NewSource(seed))
			for r := 0; r < 4000 && !m.AllHalted(); r++ {
				round, err := sched.ShuffledRounds(rng2, s.NumProcs(), 1)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := m.Run(round); err != nil {
					t.Fatal(err)
				}
			}
			if !m.AllHalted() {
				t.Fatalf("trial %d seed %d: Algorithm 4 did not converge\n%s", trial, seed, s.Describe())
			}
			if sel := m.SelectedProcs(); len(sel) != 1 {
				t.Fatalf("trial %d seed %d: selected %v\n%s", trial, seed, sel, s.Describe())
			}
		}
	}
	if solvable < 3 {
		t.Errorf("too few solvable L systems exercised: %d of %d", solvable, examined)
	}
}

// TestUnsolvableQSystemsHaveNoTrivialEscape: on systems the procedure
// declares unsolvable, every processor shares its similarity class, so
// the class-sorted round-robin schedule (Theorem 2's adversary) will
// equate any candidate winner with a partner. We verify the structural
// fact the impossibility proof rests on.
func TestUnsolvableQSystemsHaveNoTrivialEscape(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	unsolvable := 0
	for trial := 0; trial < 60; trial++ {
		s, err := system.RandomSystem(rng, system.RandomOpts{
			Procs:      2 + rng.Intn(4),
			Vars:       1 + rng.Intn(3),
			Names:      1 + rng.Intn(2),
			InitStates: 1,
		})
		if err != nil {
			continue
		}
		d, err := Decide(s, system.InstrQ, system.SchedFair)
		if err != nil {
			t.Fatal(err)
		}
		if d.Solvable {
			continue
		}
		unsolvable++
		if len(d.UniqueProcs) != 0 {
			t.Fatalf("trial %d: unsolvable verdict with unique processors %v", trial, d.UniqueProcs)
		}
	}
	if unsolvable < 10 {
		t.Errorf("too few unsolvable systems exercised: %d", unsolvable)
	}
}
