package selection

import (
	"fmt"

	"simsym/internal/core"
	"simsym/internal/distlabel"
	"simsym/internal/family"
	"simsym/internal/machine"
)

// Theorem 7: a homogeneous family of systems in Q has a selection
// algorithm iff there is a set ELITE of processor labels such that each
// member contains exactly one processor with a label in ELITE. The
// program is Algorithm 3 (two-phase label learning) electing the ELITE
// holder — one uniform program correct for every member of the family,
// even though the processors cannot tell which member they inhabit.

// FamilyDecision is the outcome for a homogeneous family.
type FamilyDecision struct {
	Solvable bool
	Reason   string
	// Elite is the Theorem 7 label set (family labeling space).
	Elite []int
	// MemberLabels[i][p] is processor p's family label in member i.
	MemberLabels [][]int
}

// DecideFamilyQ solves the selection problem for a homogeneous family in
// Q: compute the family (union) labeling, then attempt the ELITE
// construction across the members' labelings.
func DecideFamilyQ(fam *family.Family) (*FamilyDecision, error) {
	labs, err := fam.Labeling(core.RuleQ)
	if err != nil {
		return nil, fmt.Errorf("selection: %w", err)
	}
	memberLabels := make([][]int, len(labs))
	for i, ml := range labs {
		memberLabels[i] = append([]int(nil), ml.ProcLabels...)
	}
	d := &FamilyDecision{MemberLabels: memberLabels}
	for i, v := range memberLabels {
		if len(uniqueLabels(v)) == 0 {
			d.Reason = fmt.Sprintf("member %d has every processor paired under the family labeling (Theorem 2)", i)
			return d, nil
		}
	}
	elite, err := BuildElite(dedupVersions(memberLabels))
	if err != nil {
		d.Reason = fmt.Sprintf("no ELITE set exists: %v", err)
		return d, nil
	}
	d.Solvable = true
	d.Elite = elite
	d.Reason = fmt.Sprintf("ELITE=%v covers each member exactly once (Theorem 7); Algorithm 3 elects the holder", elite)
	return d, nil
}

// SelectFamilyQ generates the uniform Algorithm 3 selection program for
// a solvable homogeneous family. Every member must satisfy the runtime
// restriction (no duplicate name edges).
func SelectFamilyQ(fam *family.Family) (*machine.Program, *FamilyDecision, error) {
	for i, m := range fam.Members {
		if err := distlabel.ValidateRuntime(m); err != nil {
			return nil, nil, fmt.Errorf("selection: member %d: %w", i, err)
		}
	}
	d, err := DecideFamilyQ(fam)
	if err != nil {
		return nil, nil, err
	}
	if !d.Solvable {
		return nil, d, fmt.Errorf("%w: %s", ErrNotSolvable, d.Reason)
	}
	plan, err := distlabel.PlanAlgorithm3(fam)
	if err != nil {
		return nil, nil, fmt.Errorf("selection: %w", err)
	}
	// The plan's label space is the same family labeling (both come from
	// fam.Labeling with phase-2 inits); rebuild ELITE against the plan's
	// own member labels to stay in one space.
	elite, err := BuildElite(dedupVersions(plan.MemberLabels))
	if err != nil {
		return nil, nil, fmt.Errorf("selection: plan labeling disagrees: %w", err)
	}
	d.Elite = elite
	prog, err := plan.Program(distlabel.Options{Elite: elite})
	if err != nil {
		return nil, nil, fmt.Errorf("selection: %w", err)
	}
	return prog, d, nil
}
