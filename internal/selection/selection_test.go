package selection

import (
	"errors"
	"math/rand"
	"testing"

	"simsym/internal/family"
	"simsym/internal/machine"
	"simsym/internal/mc"
	"simsym/internal/sched"
	"simsym/internal/system"
)

func TestDecideGeneralAlwaysImpossible(t *testing.T) {
	// Theorem 1 (the FLP special case).
	for _, instr := range []system.InstrSet{system.InstrS, system.InstrL, system.InstrQ} {
		d, err := Decide(system.Fig2(), instr, system.SchedGeneral)
		if err != nil {
			t.Fatal(err)
		}
		if d.Solvable {
			t.Errorf("%v under general schedules should be unsolvable", instr)
		}
	}
}

func TestDecideQ(t *testing.T) {
	tests := []struct {
		name string
		sys  *system.System
		want bool
	}{
		{"fig1", system.Fig1(), false},
		{"fig2", system.Fig2(), true},
		{"fig3", system.Fig3(), true},
		{"ring4", mustRing(t, 4), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d, err := Decide(tt.sys, system.InstrQ, system.SchedFair)
			if err != nil {
				t.Fatal(err)
			}
			if d.Solvable != tt.want {
				t.Errorf("solvable = %v (%s), want %v", d.Solvable, d.Reason, tt.want)
			}
		})
	}
}

func TestDecideBoundedFairS(t *testing.T) {
	// Fig2 counts writers — sets cannot: unsolvable in S even bounded-fair.
	d, err := Decide(system.Fig2(), system.InstrS, system.SchedBoundedFair)
	if err != nil {
		t.Fatal(err)
	}
	if d.Solvable {
		t.Errorf("Fig2 in bounded-fair S should be unsolvable: %s", d.Reason)
	}
	// Fig3 separates all three processors even with set environments.
	d, err = Decide(system.Fig3(), system.InstrS, system.SchedBoundedFair)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Solvable {
		t.Errorf("Fig3 in bounded-fair S should be solvable: %s", d.Reason)
	}
}

func TestDecideFairS(t *testing.T) {
	// Fig3: dissimilar processors that mimic each other — the fair/
	// bounded-fair separation.
	d, err := Decide(system.Fig3(), system.InstrS, system.SchedFair)
	if err != nil {
		t.Fatal(err)
	}
	if d.Solvable {
		t.Errorf("Fig3 in fair S should be unsolvable: %s", d.Reason)
	}
	marked := system.Fig3()
	marked.ProcInit[2] = "Z"
	d, err = Decide(marked, system.InstrS, system.SchedFair)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Solvable {
		t.Errorf("marked Fig3 in fair S should be solvable: %s", d.Reason)
	}
}

func TestDecideL(t *testing.T) {
	tests := []struct {
		name string
		sys  *system.System
		want bool
	}{
		{"fig1 same-name sharers", system.Fig1(), true},
		{"fig2", system.Fig2(), true},
		{"ring4 different-name sharers", mustRing(t, 4), false},
		{"dining5 (DP impossibility)", mustDining(t, 5), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d, err := Decide(tt.sys, system.InstrL, system.SchedFair)
			if err != nil {
				t.Fatal(err)
			}
			if d.Solvable != tt.want {
				t.Errorf("solvable = %v (%s), want %v", d.Solvable, d.Reason, tt.want)
			}
			if tt.want && len(d.Elite) == 0 {
				t.Error("solvable L decision should carry ELITE")
			}
		})
	}
}

func TestHierarchyWitnesses(t *testing.T) {
	// The section 9 strict hierarchy L ⊃ Q ⊃ bounded-fair S ⊃ fair S,
	// each separation shown by a witness system.
	type verdictOf func(t *testing.T, s *system.System) bool
	inL := func(t *testing.T, s *system.System) bool {
		d, err := Decide(s, system.InstrL, system.SchedFair)
		if err != nil {
			t.Fatal(err)
		}
		return d.Solvable
	}
	inQ := func(t *testing.T, s *system.System) bool {
		d, err := Decide(s, system.InstrQ, system.SchedFair)
		if err != nil {
			t.Fatal(err)
		}
		return d.Solvable
	}
	inBFS := func(t *testing.T, s *system.System) bool {
		d, err := Decide(s, system.InstrS, system.SchedBoundedFair)
		if err != nil {
			t.Fatal(err)
		}
		return d.Solvable
	}
	inFS := func(t *testing.T, s *system.System) bool {
		d, err := Decide(s, system.InstrS, system.SchedFair)
		if err != nil {
			t.Fatal(err)
		}
		return d.Solvable
	}
	tests := []struct {
		name     string
		sys      *system.System
		yes, no  verdictOf
		yesModel string
	}{
		{"L beats Q (Fig1)", system.LOverQWitness(), inL, inQ, "L"},
		{"Q beats BF-S (Fig2)", system.QOverSWitness(), inQ, inBFS, "Q"},
		{"BF-S beats F-S (Fig3)", system.Fig3(), inBFS, inFS, "BF-S"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !tt.yes(t, tt.sys) {
				t.Errorf("witness should be solvable in the stronger model (%s)", tt.yesModel)
			}
			if tt.no(t, tt.sys) {
				t.Error("witness should be unsolvable in the weaker model")
			}
		})
	}
}

func TestBuildElite(t *testing.T) {
	// Two versions, mirrored labels (the Fig1-in-L shape).
	versions := [][]int{{0, 1}, {1, 0}}
	elite, err := BuildElite(versions)
	if err != nil {
		t.Fatal(err)
	}
	if len(elite) != 1 {
		t.Errorf("elite = %v, want a single label", elite)
	}
	// A version with no unique label fails.
	if _, err := BuildElite([][]int{{0, 0}}); !errors.Is(err, ErrNotSolvable) {
		t.Errorf("err = %v, want ErrNotSolvable", err)
	}
}

func TestSelectQFig2EndToEnd(t *testing.T) {
	prog, d, err := Select(system.Fig2(), system.InstrQ, system.SchedFair)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Solvable {
		t.Fatalf("decision: %s", d.Reason)
	}
	for seed := int64(0); seed < 10; seed++ {
		m, err := machine.New(system.Fig2(), system.InstrQ, prog)
		if err != nil {
			t.Fatal(err)
		}
		runFair(t, m, seed, 500)
		sel := m.SelectedProcs()
		if len(sel) != 1 || sel[0] != 2 {
			t.Errorf("seed %d: selected %v, want [2]", seed, sel)
		}
	}
}

func TestSelectLFig1EndToEnd(t *testing.T) {
	// Algorithm 4 in full: relabel by lock race, learn family labels via
	// the two-phase algorithm with lock-simulated posts, elect the ELITE
	// holder. Any of the two processors may win, but exactly one must.
	prog, d, err := Select(system.Fig1(), system.InstrL, system.SchedFair)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Solvable {
		t.Fatalf("decision: %s", d.Reason)
	}
	winners := make(map[int]int)
	for seed := int64(0); seed < 20; seed++ {
		m, err := machine.New(system.Fig1(), system.InstrL, prog)
		if err != nil {
			t.Fatal(err)
		}
		runFair(t, m, seed, 2000)
		sel := m.SelectedProcs()
		if len(sel) != 1 {
			t.Fatalf("seed %d: selected %v, want exactly one", seed, sel)
		}
		winners[sel[0]]++
	}
	if len(winners) < 2 {
		t.Logf("note: only one distinct winner over seeds: %v", winners)
	}
}

func TestSelectLFig1ModelChecked(t *testing.T) {
	// Exhaustive safety: under EVERY schedule, Algorithm 4 on Fig1 never
	// selects two processors and never unselects one.
	if testing.Short() {
		t.Skip("model checking is slow")
	}
	prog, _, err := Select(system.Fig1(), system.InstrL, system.SchedFair)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mc.Check(func() (*machine.Machine, error) {
		return machine.New(system.Fig1(), system.InstrL, prog)
	}, mc.Options{
		MaxStates:  500_000,
		StatePreds: []mc.StatePredicate{mc.UniquenessPred},
		TransPreds: []mc.TransitionPredicate{mc.StabilityPred},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("Algorithm 4 violated safety: %s (schedule %v)", res.Violation.Reason, res.Violation.Schedule)
	}
	t.Logf("explored %d states, complete=%v", res.StatesExplored, res.Complete)
}

func TestSelectLFig2EndToEnd(t *testing.T) {
	// Fig2 in L: v3's three same-name sharers rank themselves 0/1/2;
	// every outcome labels all processors uniquely.
	prog, d, err := Select(system.Fig2(), system.InstrL, system.SchedFair)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Solvable {
		t.Fatalf("decision: %s", d.Reason)
	}
	for seed := int64(0); seed < 6; seed++ {
		m, err := machine.New(system.Fig2(), system.InstrL, prog)
		if err != nil {
			t.Fatal(err)
		}
		runFair(t, m, seed, 4000)
		sel := m.SelectedProcs()
		if len(sel) != 1 {
			t.Errorf("seed %d: selected %v, want exactly one", seed, sel)
		}
	}
}

func TestSelectSBoundedFairFig3EndToEnd(t *testing.T) {
	// Algorithm 2-S as a selection algorithm: the program never halts
	// (resolved processors keep refreshing), so run fixed rounds and
	// check the stable outcome.
	prog, d, err := Select(system.Fig3(), system.InstrS, system.SchedBoundedFair)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Solvable || len(d.Elite) != 1 {
		t.Fatalf("decision: %+v", d)
	}
	for seed := int64(0); seed < 6; seed++ {
		m, err := machine.New(system.Fig3(), system.InstrS, prog)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		for r := 0; r < 2000; r++ {
			round, err := sched.ShuffledRounds(rng, 3, 1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(round); err != nil {
				t.Fatal(err)
			}
			if sel := m.SelectedProcs(); len(sel) > 1 {
				t.Fatalf("seed %d round %d: multiple selected %v", seed, r, sel)
			}
		}
		if sel := m.SelectedProcs(); len(sel) != 1 {
			t.Errorf("seed %d: selected %v, want exactly one", seed, sel)
		}
	}
}

func TestSelectUnsolvableReturnsError(t *testing.T) {
	if _, _, err := Select(system.Fig1(), system.InstrQ, system.SchedFair); !errors.Is(err, ErrNotSolvable) {
		t.Errorf("err = %v, want ErrNotSolvable", err)
	}
	ring := mustRing(t, 3)
	if _, _, err := Select(ring, system.InstrL, system.SchedFair); !errors.Is(err, ErrNotSolvable) {
		t.Errorf("err = %v, want ErrNotSolvable", err)
	}
}

func TestDecideLOutcomeLimit(t *testing.T) {
	big := mustRing(t, 16)
	if _, err := DecideL(big, family.RelabelOptions{Limit: 64}); !errors.Is(err, family.ErrTooManyOutcomes) {
		t.Errorf("err = %v, want ErrTooManyOutcomes", err)
	}
}

func TestUnsupportedModel(t *testing.T) {
	if _, err := Decide(system.Fig1(), system.InstrExtL, system.SchedFair); !errors.Is(err, ErrUnsupportedModel) {
		t.Errorf("err = %v, want ErrUnsupportedModel", err)
	}
	if _, _, err := Select(system.Fig3(), system.InstrS, system.SchedFair); !errors.Is(err, ErrUnsupportedModel) {
		t.Errorf("Select S/fair err = %v, want ErrUnsupportedModel", err)
	}
	if _, _, err := Select(system.Fig1(), system.InstrExtL, system.SchedFair); !errors.Is(err, ErrUnsupportedModel) {
		t.Errorf("Select ExtL err = %v, want ErrUnsupportedModel", err)
	}
}

func runFair(t *testing.T, m *machine.Machine, seed int64, maxRounds int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := m.System().NumProcs()
	for r := 0; r < maxRounds; r++ {
		if m.AllHalted() {
			return
		}
		round, err := sched.ShuffledRounds(rng, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(round); err != nil {
			t.Fatal(err)
		}
	}
	t.Fatalf("machine did not halt in %d rounds", maxRounds)
}

func mustRing(t *testing.T, n int) *system.System {
	t.Helper()
	s, err := system.Ring(n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustDining(t *testing.T, n int) *system.System {
	t.Helper()
	s, err := system.Dining(n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
