// Package selection solves the paper's selection problem (section 3):
// given a system Σ, decide whether a selection algorithm exists — a
// uniform program establishing Uniqueness (exactly one processor sets
// selected) and maintaining Stability (selected processors stay selected)
// under every schedule in Σ's class — and produce it when it does.
//
// The decision procedure per model:
//
//   - General schedules: never solvable (Theorem 1; this is the FLP
//     argument).
//   - Q, fair or bounded-fair: solvable iff the similarity labeling Θ
//     has a uniquely-labeled processor (Theorems 2/3 for impossibility,
//     SELECT via Algorithm 2 for possibility; fair and bounded-fair
//     coincide for connected systems in Q).
//   - S, bounded-fair: same with set-based environments.
//   - S, fair: solvable iff some processor mimics no other (section 6).
//   - L: relabel yields the homogeneous family R; solvable iff every
//     VERSION (similarity labeling of a relabel outcome) has a
//     uniquely-labeled processor; the ELITE label set is built by the
//     Theorem 9 greedy loop and the program is Algorithm 4.
package selection

import (
	"errors"
	"fmt"
	"sort"

	"simsym/internal/core"
	"simsym/internal/distlabel"
	"simsym/internal/family"
	"simsym/internal/intset"
	"simsym/internal/machine"
	"simsym/internal/mimic"
	"simsym/internal/obs"
	"simsym/internal/system"
)

// Sentinel errors.
var (
	ErrUnsupportedModel = errors.New("selection: unsupported instruction set / schedule combination")
	ErrNotSolvable      = errors.New("selection: system has no selection algorithm")
	ErrEliteInvariant   = errors.New("selection: ELITE construction violated its invariant")
)

// Decision is the outcome of the selection problem for one model.
type Decision struct {
	Instr    system.InstrSet
	Sched    system.ScheduleClass
	Solvable bool
	// Reason explains the verdict in the paper's terms.
	Reason string
	// UniqueProcs lists uniquely-labeled processors (Q / bounded-fair S)
	// or mimic-free processors (fair S).
	UniqueProcs []int
	// Elite is the Theorem 9 label set (L only).
	Elite []int
	// NumVersions counts distinct relabel-outcome labelings (L only).
	NumVersions int
}

// Decide dispatches on the model and runs the right decision procedure.
func Decide(sys *system.System, instr system.InstrSet, sch system.ScheduleClass) (*Decision, error) {
	return DecideWith(sys, instr, sch, nil)
}

// DecideWith is Decide with an event recorder threaded through: the
// decision runs inside a selection.decide phase, the underlying
// similarity computation emits its refine-round events, and the verdict
// (solvable or not, with the paper's reason) lands as a KindVerdict
// event. A nil recorder records nothing.
func DecideWith(sys *system.System, instr system.InstrSet, sch system.ScheduleClass, rec *obs.Recorder) (*Decision, error) {
	rec.PhaseStart("selection.decide")
	d, err := decide(sys, instr, sch, rec)
	if err != nil {
		return nil, err
	}
	if rec.Enabled() {
		rec.Count("selection.decides", 1)
		if d.NumVersions > 0 {
			rec.Stat("selection.versions", int64(d.NumVersions))
		}
		rec.Verdict("selection.decide", d.Solvable, d.Reason)
		rec.PhaseEnd("selection.decide", 1)
	}
	return d, nil
}

func decide(sys *system.System, instr system.InstrSet, sch system.ScheduleClass, rec *obs.Recorder) (*Decision, error) {
	if sch == system.SchedGeneral {
		return &Decision{
			Instr: instr, Sched: sch, Solvable: false,
			Reason: "general schedules admit the Theorem 1 adversary (FLP): no selection algorithm exists",
		}, nil
	}
	switch instr {
	case system.InstrQ:
		return decideByLabeling(sys, instr, sch, core.RuleQ, rec)
	case system.InstrS:
		if sch == system.SchedBoundedFair {
			return decideByLabeling(sys, instr, sch, core.RuleSetS, rec)
		}
		return decideFairS(sys)
	case system.InstrL:
		return decideL(sys, family.RelabelOptions{}, rec)
	default:
		return nil, fmt.Errorf("%w: %v/%v", ErrUnsupportedModel, instr, sch)
	}
}

func decideByLabeling(sys *system.System, instr system.InstrSet, sch system.ScheduleClass, rule core.Rule, rec *obs.Recorder) (*Decision, error) {
	lab, err := core.SimilarityWith(sys, rule, core.Config{Obs: rec})
	if err != nil {
		return nil, fmt.Errorf("selection: %w", err)
	}
	d := &Decision{Instr: instr, Sched: sch, UniqueProcs: lab.UniqueProcs()}
	if len(d.UniqueProcs) > 0 {
		d.Solvable = true
		d.Reason = fmt.Sprintf("similarity labeling has %d uniquely-labeled processor(s); SELECT elects one via Algorithm 2", len(d.UniqueProcs))
	} else {
		d.Reason = "every processor is similar to another (Theorems 2 and 3)"
	}
	return d, nil
}

func decideFairS(sys *system.System) (*Decision, error) {
	rel, err := mimic.Compute(sys)
	if err != nil {
		return nil, fmt.Errorf("selection: %w", err)
	}
	d := &Decision{Instr: system.InstrS, Sched: system.SchedFair, UniqueProcs: rel.MimicsNobody()}
	if len(d.UniqueProcs) > 0 {
		d.Solvable = true
		d.Reason = fmt.Sprintf("%d processor(s) mimic no other and can safely self-select", len(d.UniqueProcs))
	} else {
		d.Reason = "every processor mimics another: arbitrarily-delayed subsystems hide the truth forever"
	}
	return d, nil
}

// DecideL runs the L-model decision: enumerate relabel outcomes, compute
// VERSIONS, and build ELITE when possible. Fair and bounded-fair coincide.
func DecideL(sys *system.System, relOpts family.RelabelOptions) (*Decision, error) {
	return decideL(sys, relOpts, nil)
}

func decideL(sys *system.System, relOpts family.RelabelOptions, rec *obs.Recorder) (*Decision, error) {
	plan, _, err := distlabel.PlanAlgorithm4(sys, relOpts)
	if err != nil {
		return nil, fmt.Errorf("selection: %w", err)
	}
	versions := dedupVersions(plan.MemberLabels)
	d := &Decision{Instr: system.InstrL, Sched: system.SchedFair, NumVersions: len(versions)}
	for _, v := range versions {
		if len(uniqueLabels(v)) == 0 {
			d.Reason = "some relabel outcome keeps every processor similar to another (Theorem 3 via Theorem 8)"
			return d, nil
		}
	}
	elite, err := BuildElite(versions)
	if err != nil {
		return nil, err
	}
	d.Solvable = true
	d.Elite = elite
	d.Reason = fmt.Sprintf("every relabel outcome has a uniquely-labeled processor; ELITE=%v selects via Algorithm 4 (Theorem 9)", elite)
	return d, nil
}

// BuildElite runs the Theorem 9 construction: repeatedly pick a version
// with no processor labeled in ELITE, add one of its unique labels, and
// stop when every version is covered. The resulting invariant — every
// version has exactly one processor with a label in ELITE — is verified
// explicitly, and its violation reported as ErrEliteInvariant.
func BuildElite(versions [][]int) ([]int, error) {
	var elite []int
	for {
		idx := -1
		for i, v := range versions {
			if countEliteProcs(v, elite) == 0 {
				idx = i
				break
			}
		}
		if idx == -1 {
			break
		}
		uniq := uniqueLabels(versions[idx])
		if len(uniq) == 0 {
			return nil, fmt.Errorf("%w: version %d has no uniquely-labeled processor", ErrNotSolvable, idx)
		}
		elite = intset.Union(elite, []int{uniq[0]})
	}
	for i, v := range versions {
		if n := countEliteProcs(v, elite); n != 1 {
			return nil, fmt.Errorf("%w: version %d has %d elite processors", ErrEliteInvariant, i, n)
		}
	}
	return elite, nil
}

func countEliteProcs(labels []int, elite []int) int {
	n := 0
	for _, l := range labels {
		if intset.Contains(elite, l) {
			n++
		}
	}
	return n
}

func uniqueLabels(labels []int) []int {
	count := make(map[int]int)
	for _, l := range labels {
		count[l]++
	}
	var out []int
	for l, c := range count {
		if c == 1 {
			out = append(out, l)
		}
	}
	sort.Ints(out)
	return out
}

func dedupVersions(versions [][]int) [][]int {
	seen := make(map[string]bool)
	var out [][]int
	for _, v := range versions {
		key := fmt.Sprint(v)
		if !seen[key] {
			seen[key] = true
			out = append(out, v)
		}
	}
	return out
}

// Select produces the runnable selection program for a solvable system,
// dispatching on the instruction set:
//
//   - Q: Algorithm 2 with an ELITE of one designated unique label
//     (the paper's SELECT(Σ)).
//   - S bounded-fair: Algorithm 2-S — read/write only, set-based
//     alibis, perpetual post refresh (section 6's "nearly the same"
//     algorithm). The program never halts; selection stabilizes.
//   - L: Algorithm 4 (relabel, then the two-phase label learning with
//     lock-simulated posts, then elect the ELITE holder).
//
// The returned Decision explains the construction.
func Select(sys *system.System, instr system.InstrSet, sch system.ScheduleClass) (*machine.Program, *Decision, error) {
	return SelectWith(sys, instr, sch, nil)
}

// SelectWith is Select with an event recorder threaded through the
// decision and program construction. A nil recorder records nothing.
func SelectWith(sys *system.System, instr system.InstrSet, sch system.ScheduleClass, rec *obs.Recorder) (*machine.Program, *Decision, error) {
	rec.PhaseStart("selection.select")
	prog, d, err := buildSelect(sys, instr, sch, rec)
	if err != nil {
		if d != nil && rec.Enabled() {
			rec.Verdict("selection.select", false, d.Reason)
			rec.PhaseEnd("selection.select", 0)
		}
		return prog, d, err
	}
	if rec.Enabled() {
		rec.Count("selection.selects", 1)
		rec.Verdict("selection.select", true, d.Reason)
		rec.PhaseEnd("selection.select", int64(prog.Len()))
	}
	return prog, d, nil
}

func buildSelect(sys *system.System, instr system.InstrSet, sch system.ScheduleClass, rec *obs.Recorder) (*machine.Program, *Decision, error) {
	switch instr {
	case system.InstrQ:
		d, err := decideByLabeling(sys, instr, sch, core.RuleQ, rec)
		if err != nil {
			return nil, nil, err
		}
		if !d.Solvable {
			return nil, d, fmt.Errorf("%w: %s", ErrNotSolvable, d.Reason)
		}
		if err := distlabel.ValidateRuntime(sys); err != nil {
			return nil, nil, fmt.Errorf("selection: %w", err)
		}
		lab, err := core.SimilarityWith(sys, core.RuleQ, core.Config{Obs: rec})
		if err != nil {
			return nil, nil, fmt.Errorf("selection: %w", err)
		}
		topo, err := distlabel.TopologyFromSystem(sys, lab)
		if err != nil {
			return nil, nil, fmt.Errorf("selection: %w", err)
		}
		elite := []int{lab.ProcLabels[d.UniqueProcs[0]]}
		d.Elite = elite
		prog, err := distlabel.Algorithm2(topo, distlabel.Options{Elite: elite})
		if err != nil {
			return nil, nil, fmt.Errorf("selection: %w", err)
		}
		return prog, d, nil
	case system.InstrS:
		if sch != system.SchedBoundedFair {
			return nil, nil, fmt.Errorf("%w: S selection programs need bounded-fair schedules", ErrUnsupportedModel)
		}
		d, err := decideByLabeling(sys, instr, sch, core.RuleSetS, rec)
		if err != nil {
			return nil, nil, err
		}
		if !d.Solvable {
			return nil, d, fmt.Errorf("%w: %s", ErrNotSolvable, d.Reason)
		}
		if err := distlabel.ValidateRuntime(sys); err != nil {
			return nil, nil, fmt.Errorf("selection: %w", err)
		}
		lab, err := core.SimilarityWith(sys, core.RuleSetS, core.Config{Obs: rec})
		if err != nil {
			return nil, nil, fmt.Errorf("selection: %w", err)
		}
		topo, err := distlabel.TopologyFromSystem(sys, lab)
		if err != nil {
			return nil, nil, fmt.Errorf("selection: %w", err)
		}
		elite := []int{lab.ProcLabels[d.UniqueProcs[0]]}
		d.Elite = elite
		prog, err := distlabel.Algorithm2S(topo, distlabel.Options{Elite: elite})
		if err != nil {
			return nil, nil, fmt.Errorf("selection: %w", err)
		}
		return prog, d, nil
	case system.InstrL:
		d, err := decideL(sys, family.RelabelOptions{}, rec)
		if err != nil {
			return nil, nil, err
		}
		if !d.Solvable {
			return nil, d, fmt.Errorf("%w: %s", ErrNotSolvable, d.Reason)
		}
		plan, _, err := distlabel.PlanAlgorithm4(sys, family.RelabelOptions{})
		if err != nil {
			return nil, nil, fmt.Errorf("selection: %w", err)
		}
		prog, err := plan.Program(distlabel.Options{Elite: d.Elite})
		if err != nil {
			return nil, nil, fmt.Errorf("selection: %w", err)
		}
		return prog, d, nil
	default:
		return nil, nil, fmt.Errorf("%w: Select for %v", ErrUnsupportedModel, instr)
	}
}

// Settled reports whether a SELECT run has converged: every processor has
// halted or declared itself done, and exactly one processor is selected.
// The Q and L programs halt outright; the S program never halts (resolved
// processors refresh their posts forever, as the paper's bounded-fair
// construction requires) and signals completion through the "done" local
// instead. This is the convergence predicate for streaming adversary
// harnesses, which cannot rely on AllHalted.
func Settled(m *machine.Machine) bool {
	for p := 0; p < m.NumProcs(); p++ {
		if m.Halted(p) {
			continue
		}
		if d, ok := m.Local(p, "done"); !ok || d != true {
			return false
		}
	}
	return len(m.SelectedProcs()) == 1
}
