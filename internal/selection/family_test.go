package selection

import (
	"errors"
	"math/rand"
	"testing"

	"simsym/internal/family"
	"simsym/internal/machine"
	"simsym/internal/sched"
	"simsym/internal/system"
)

func markedRingFamily(t *testing.T) *family.Family {
	t.Helper()
	base, err := system.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	a := base.Clone()
	a.ProcInit[0] = "M"
	b := base.Clone()
	b.ProcInit[0] = "M"
	b.ProcInit[1] = "M"
	fam, err := family.NewHomogeneous([]*system.System{a, b})
	if err != nil {
		t.Fatal(err)
	}
	return fam
}

func TestDecideFamilyQSolvable(t *testing.T) {
	// Two differently-marked rings: each member's family labeling has
	// unique processors, and Theorem 7's ELITE covers both.
	fam := markedRingFamily(t)
	d, err := DecideFamilyQ(fam)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Solvable {
		t.Fatalf("family should be solvable: %s", d.Reason)
	}
	if len(d.Elite) == 0 {
		t.Error("solvable family needs an ELITE")
	}
	// The invariant: exactly one elite processor per member.
	for i, labels := range d.MemberLabels {
		n := 0
		for _, l := range labels {
			for _, e := range d.Elite {
				if l == e {
					n++
				}
			}
		}
		if n != 1 {
			t.Errorf("member %d has %d elite processors", i, n)
		}
	}
}

func TestDecideFamilyQUnsolvable(t *testing.T) {
	// A family containing the fully anonymous ring: that member has
	// every processor paired, so no selection algorithm can serve the
	// whole family (Theorem 7's only-if direction).
	base, err := system.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	marked := base.Clone()
	marked.ProcInit[0] = "M"
	fam, err := family.NewHomogeneous([]*system.System{base, marked})
	if err != nil {
		t.Fatal(err)
	}
	d, err := DecideFamilyQ(fam)
	if err != nil {
		t.Fatal(err)
	}
	if d.Solvable {
		t.Errorf("family with anonymous member should be unsolvable: %s", d.Reason)
	}
}

func TestSelectFamilyQEndToEnd(t *testing.T) {
	// One uniform program must elect exactly one processor on EVERY
	// member of the family — the processors never learn which member
	// they are in; they only learn their family label.
	fam := markedRingFamily(t)
	prog, d, err := SelectFamilyQ(fam)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Solvable {
		t.Fatalf("decision: %s", d.Reason)
	}
	for i, member := range fam.Members {
		for seed := int64(0); seed < 3; seed++ {
			m, err := machine.New(member, system.InstrQ, prog)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed + int64(i)*17))
			for r := 0; r < 4000 && !m.AllHalted(); r++ {
				round, err := sched.ShuffledRounds(rng, member.NumProcs(), 1)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := m.Run(round); err != nil {
					t.Fatal(err)
				}
			}
			if !m.AllHalted() {
				t.Fatalf("member %d seed %d: did not converge", i, seed)
			}
			if sel := m.SelectedProcs(); len(sel) != 1 {
				t.Errorf("member %d seed %d: selected %v", i, seed, sel)
			}
		}
	}
}

func TestSelectFamilyQUnsolvableErrors(t *testing.T) {
	base, err := system.Ring(3)
	if err != nil {
		t.Fatal(err)
	}
	fam, err := family.NewHomogeneous([]*system.System{base})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SelectFamilyQ(fam); !errors.Is(err, ErrNotSolvable) {
		t.Errorf("anonymous family err = %v, want ErrNotSolvable", err)
	}
}
