// Package randomized implements the randomized symmetry-breaking
// algorithms the paper cites in section 8 to demonstrate "the added power
// of randomization": problems whose deterministic versions are ruled out
// by similarity become solvable once processors may flip coins.
//
//   - Itai–Rodeh leader election [IR81] on an anonymous unidirectional
//     ring: deterministically impossible (all ring processors are
//     similar; see the selection decision procedures), but solvable with
//     probability 1 by repeated random identity draws.
//   - Lehmann–Rabin dining philosophers [LR80]: the five-philosopher
//     table has no deterministic symmetric solution (DP, via Theorem
//     11), but the free-choice coin flip — pick which fork to grab first
//     at random, retry on contention — is deadlock-free with
//     probability 1.
//
// Both run on seeded PRNGs so experiments are reproducible.
package randomized

import (
	"errors"
	"fmt"
	"math/rand"
)

// Sentinel errors.
var (
	ErrBadArgs       = errors.New("randomized: invalid arguments")
	ErrNoConvergence = errors.New("randomized: did not converge within budget")
)

// ElectionResult reports one Itai–Rodeh run.
type ElectionResult struct {
	// Leader is the elected processor.
	Leader int
	// Phases is the number of identity-drawing phases used.
	Phases int
	// Messages counts ring messages sent.
	Messages int
}

// ItaiRodeh elects a leader on an anonymous unidirectional ring of n
// processors: each phase, every active processor draws a random id in
// [0, idSpace) and passes it around; processors that see a strictly
// larger id than their own go passive; ties among maximal ids trigger
// another phase among the tied. With probability 1 a single processor
// remains.
//
// The implementation simulates the ring synchronously phase by phase —
// the asynchronous message-passing behavior of the algorithm is
// insensitive to interleaving because each phase is a full circulation.
//
// Message accounting models the token circulation hop by hop: each
// active processor launches a token carrying its drawn id, passive
// processors relay tokens without inspecting them, and an active
// processor swallows any arriving token whose id is strictly below its
// own. Tokens carrying the phase's maximum id are never swallowed and
// travel the full n hops home, where a hop count of n tells the owner it
// holds a maximal id (alone: elected; tied: next phase among the tied).
// Every hop is one message. Sub-maximal tokens therefore stop early — in
// the terminal phase they stop no later than the winner — which is what
// keeps the expected total O(n log n); the earlier full-circulation
// model charged every active token n hops in every phase, including the
// terminal one.
//
// On non-convergence the returned result is non-nil and carries the
// phases and messages actually spent (Leader is meaningless there);
// aggregators must include that cost or their statistics are
// survivorship-biased. The result is nil only for ErrBadArgs.
func ItaiRodeh(rng *rand.Rand, n, idSpace, maxPhases int) (*ElectionResult, error) {
	if n < 1 || idSpace < 2 || maxPhases < 1 {
		return nil, fmt.Errorf("%w: n=%d idSpace=%d maxPhases=%d", ErrBadArgs, n, idSpace, maxPhases)
	}
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	res := &ElectionResult{}
	for phase := 1; phase <= maxPhases; phase++ {
		res.Phases = phase
		// Draw ids for active processors.
		ids := make([]int, n)
		maxID := -1
		for p := 0; p < n; p++ {
			if active[p] {
				ids[p] = rng.Intn(idSpace)
				if ids[p] > maxID {
					maxID = ids[p]
				}
			}
		}
		// Circulate tokens: maximal ids travel the full ring home; every
		// other token hops clockwise until the first active processor
		// with a strictly larger id swallows it.
		for p := 0; p < n; p++ {
			if !active[p] {
				continue
			}
			if ids[p] == maxID {
				res.Messages += n
				continue
			}
			hops := 0
			for q := (p + 1) % n; ; q = (q + 1) % n {
				hops++
				if active[q] && ids[q] > ids[p] {
					break
				}
			}
			res.Messages += hops
		}
		// Processors whose id is below the maximum go passive; ties stay.
		tied := 0
		winner := -1
		for p := 0; p < n; p++ {
			if !active[p] {
				continue
			}
			if ids[p] < maxID {
				active[p] = false
			} else {
				tied++
				winner = p
			}
		}
		if tied == 1 {
			res.Leader = winner
			return res, nil
		}
	}
	return res, fmt.Errorf("%w: %d phases", ErrNoConvergence, maxPhases)
}

// ElectionStats aggregates repeated elections.
type ElectionStats struct {
	// Runs counts every election attempted: Successes + Failures.
	Runs int
	// Successes counts runs that converged within maxPhases.
	Successes int
	// Failures counts censored runs: maxPhases elapsed with two or more
	// processors still tied. Their phase and message costs are real and
	// appear in TotalMsgs, but not in the converged-run means below.
	Failures int
	// MeanPhases and MeanMsgs average over converged runs only — they
	// answer "what does a completed election cost", conditioned on
	// completion within the budget.
	MeanPhases float64
	MeanMsgs   float64
	// TotalMsgs counts ring messages across ALL runs, converged or not.
	// Censored runs consumed real messages; dropping them (as the
	// pre-fix code did, while still reporting Runs as the full count)
	// made any cost-per-election figure survivorship-biased.
	TotalMsgs int
}

// ElectionSweep runs the election repeatedly and aggregates.
func ElectionSweep(seed int64, n, idSpace, maxPhases, runs int) (*ElectionStats, error) {
	if runs < 1 {
		return nil, fmt.Errorf("%w: runs=%d", ErrBadArgs, runs)
	}
	rng := rand.New(rand.NewSource(seed))
	stats := &ElectionStats{Runs: runs}
	totalPhases, totalMsgs := 0, 0
	for i := 0; i < runs; i++ {
		res, err := ItaiRodeh(rng, n, idSpace, maxPhases)
		if err != nil {
			if errors.Is(err, ErrNoConvergence) {
				stats.Failures++
				stats.TotalMsgs += res.Messages
				continue
			}
			return nil, err
		}
		stats.Successes++
		totalPhases += res.Phases
		totalMsgs += res.Messages
	}
	stats.TotalMsgs += totalMsgs
	if stats.Successes > 0 {
		stats.MeanPhases = float64(totalPhases) / float64(stats.Successes)
		stats.MeanMsgs = float64(totalMsgs) / float64(stats.Successes)
	}
	return stats, nil
}

// philState is a Lehmann–Rabin philosopher's phase.
type philState int

const (
	thinking philState = iota + 1
	hungryNoFork
	holdingFirst
	eating
)

// DiningResult reports one Lehmann–Rabin run.
type DiningResult struct {
	// Meals[p] counts philosopher p's completed meals.
	Meals []int
	// Steps is the number of scheduler steps executed.
	Steps int
}

// LehmannRabin runs the free-choice randomized dining philosophers on an
// anonymous ring of n philosophers for the given number of scheduler
// steps, under a uniformly random (fair with probability 1) schedule.
//
// Each hungry philosopher flips a coin to choose its first fork, waits
// for it, then tries the second fork ONCE: on failure it releases the
// first fork and flips again (the "free choice" that defeats the
// round-robin adversary). Exclusion is enforced structurally (forks are
// taken/released atomically per step); the point demonstrated is
// lockout-freedom in practice: everyone eats.
func LehmannRabin(rng *rand.Rand, n, steps int) (*DiningResult, error) {
	if n < 2 || steps < 1 {
		return nil, fmt.Errorf("%w: n=%d steps=%d", ErrBadArgs, n, steps)
	}
	state := make([]philState, n)
	firstChoice := make([]int, n) // 0 = left fork (index p), 1 = right fork (index (p+1)%n)
	forkHolder := make([]int, n)  // -1 free, else philosopher index
	for i := range state {
		state[i] = thinking
	}
	for i := range forkHolder {
		forkHolder[i] = -1
	}
	res := &DiningResult{Meals: make([]int, n)}

	leftFork := func(p int) int { return p }
	rightFork := func(p int) int { return (p + 1) % n }
	firstFork := func(p int) int {
		if firstChoice[p] == 0 {
			return leftFork(p)
		}
		return rightFork(p)
	}
	secondFork := func(p int) int {
		if firstChoice[p] == 0 {
			return rightFork(p)
		}
		return leftFork(p)
	}

	for step := 0; step < steps; step++ {
		p := rng.Intn(n)
		res.Steps++
		switch state[p] {
		case thinking:
			state[p] = hungryNoFork
			firstChoice[p] = rng.Intn(2)
		case hungryNoFork:
			f := firstFork(p)
			if forkHolder[f] == -1 {
				forkHolder[f] = p
				state[p] = holdingFirst
			}
			// else: wait (keep trying the chosen fork).
		case holdingFirst:
			f := secondFork(p)
			if forkHolder[f] == -1 {
				forkHolder[f] = p
				state[p] = eating
			} else {
				// Free choice: give up the held fork and re-flip.
				forkHolder[firstFork(p)] = -1
				state[p] = hungryNoFork
				firstChoice[p] = rng.Intn(2)
			}
		case eating:
			res.Meals[p]++
			forkHolder[leftFork(p)] = -1
			forkHolder[rightFork(p)] = -1
			state[p] = thinking
		}
		// Exclusion invariant: adjacent philosophers never both eat.
		if state[p] == eating {
			left := (p - 1 + n) % n
			right := (p + 1) % n
			if state[left] == eating || state[right] == eating {
				return nil, fmt.Errorf("randomized: exclusion violated at step %d", step)
			}
		}
	}
	return res, nil
}

// StubbornLeftFirst runs the DETERMINISTIC variant (everyone grabs left
// first and never gives a fork back) under a round-robin schedule — the
// DP adversary. It returns the number of steps until deadlock (all
// philosophers holding their left fork, nobody able to eat), or an error
// if no deadlock emerged within the budget. This is the baseline the
// randomized algorithm is compared against.
func StubbornLeftFirst(n, maxSteps int) (int, error) {
	if n < 2 || maxSteps < 1 {
		return 0, fmt.Errorf("%w: n=%d maxSteps=%d", ErrBadArgs, n, maxSteps)
	}
	forkHolder := make([]int, n)
	holding := make([]bool, n)
	for i := range forkHolder {
		forkHolder[i] = -1
	}
	for step := 0; step < maxSteps; step++ {
		p := step % n
		if !holding[p] {
			if forkHolder[p] == -1 { // left fork of p is fork p
				forkHolder[p] = p
				holding[p] = true
			}
		}
		// Try right fork; with everyone holding left, this always fails.
		deadlocked := true
		for q := 0; q < n; q++ {
			if !holding[q] {
				deadlocked = false
				break
			}
			if forkHolder[(q+1)%n] == -1 {
				deadlocked = false
				break
			}
		}
		if deadlocked {
			return step + 1, nil
		}
	}
	return 0, fmt.Errorf("%w: %d steps", ErrNoConvergence, maxSteps)
}
