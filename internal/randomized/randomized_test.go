package randomized

import (
	"errors"
	"math/rand"
	"testing"
)

func TestItaiRodehElectsExactlyOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 3, 5, 8, 16} {
		for run := 0; run < 50; run++ {
			res, err := ItaiRodeh(rng, n, 8, 200)
			if err != nil {
				t.Fatalf("n=%d run=%d: %v", n, run, err)
			}
			if res.Leader < 0 || res.Leader >= n {
				t.Fatalf("leader %d out of range", res.Leader)
			}
			if res.Phases < 1 {
				t.Fatal("phases must be >= 1")
			}
		}
	}
}

func TestItaiRodehSingleProcessor(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	res, err := ItaiRodeh(rng, 1, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Leader != 0 || res.Phases != 1 {
		t.Errorf("single processor should elect itself in one phase: %+v", res)
	}
}

func TestItaiRodehLeaderDistribution(t *testing.T) {
	// Symmetry: over many runs every position should win sometimes.
	rng := rand.New(rand.NewSource(3))
	const n = 4
	wins := make([]int, n)
	for run := 0; run < 400; run++ {
		res, err := ItaiRodeh(rng, n, 16, 200)
		if err != nil {
			t.Fatal(err)
		}
		wins[res.Leader]++
	}
	for p, w := range wins {
		if w == 0 {
			t.Errorf("position %d never won in 400 runs", p)
		}
	}
}

func TestElectionSweep(t *testing.T) {
	stats, err := ElectionSweep(7, 8, 8, 200, 100)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Successes != 100 {
		t.Errorf("successes = %d, want 100", stats.Successes)
	}
	if stats.Failures != 0 {
		t.Errorf("failures = %d, want 0", stats.Failures)
	}
	if stats.MeanPhases < 1 {
		t.Errorf("mean phases = %f", stats.MeanPhases)
	}
	// Every phase the maximal token circles the whole ring home, so a
	// converged run costs at least n messages per phase; sub-maximal
	// tokens stop early under the swallowing model, so it also costs at
	// most n per active token per phase.
	if stats.MeanMsgs < float64(8) {
		t.Errorf("mean messages = %f looks too small", stats.MeanMsgs)
	}
	if stats.MeanMsgs > float64(8*8)*stats.MeanPhases {
		t.Errorf("mean messages = %f exceeds the full-circulation bound", stats.MeanMsgs)
	}
	if got := stats.TotalMsgs; got != int(stats.MeanMsgs*float64(stats.Successes)+0.5) {
		t.Errorf("with no failures TotalMsgs = %d should equal the successes' total", got)
	}
}

// TestItaiRodehMessageModel pins the token-swallowing accounting exactly
// for n=2, where it is computable by hand: a tying phase costs 4 (both
// maximal tokens circle home), and the terminal phase costs 3 (the
// winner's token circles, the loser's token is swallowed after one hop).
// The pre-fix full-circulation model charged 4 per phase — including the
// terminal one — so this fails on the old code.
func TestItaiRodehMessageModel(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for run := 0; run < 200; run++ {
		res, err := ItaiRodeh(rng, 2, 2, 500)
		if err != nil {
			t.Fatal(err)
		}
		if want := 4*(res.Phases-1) + 3; res.Messages != want {
			t.Fatalf("run %d: n=2 messages = %d over %d phases, want %d",
				run, res.Messages, res.Phases, want)
		}
	}
}

// TestItaiRodehTerminalPhaseStopsEarly: for any n, the terminal phase of
// a one-phase election must cost less than the n*n full circulation
// whenever at least one sub-maximal token can be swallowed before
// returning home (guaranteed for n >= 3: some processor is not the
// winner's immediate predecessor).
func TestItaiRodehTerminalPhaseStopsEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n = 16
	for run := 0; run < 100; run++ {
		res, err := ItaiRodeh(rng, n, 1<<16, 10)
		if err != nil {
			t.Fatal(err)
		}
		if res.Phases != 1 {
			continue // astronomically unlikely tie in a 2^16 id space
		}
		if res.Messages >= n*n {
			t.Fatalf("run %d: terminal phase charged %d messages, full circulation would be %d",
				run, res.Messages, n*n)
		}
		if res.Messages < n {
			t.Fatalf("run %d: %d messages, but the winner's token alone travels %d hops",
				run, res.Messages, n)
		}
	}
}

// TestElectionSweepCountsCensoredRuns pins the survivorship-bias fix:
// with idSpace=2, n=8 and a single allowed phase, most elections fail to
// converge (a unique maximum among eight binary draws needs exactly one
// 1, probability 8/2^8 ≈ 3%), and their message cost must still be
// accounted.
func TestElectionSweepCountsCensoredRuns(t *testing.T) {
	const n, runs = 8, 50
	stats, err := ElectionSweep(3, n, 2, 1, runs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failures == 0 {
		t.Fatal("seed should produce at least one non-convergence")
	}
	if stats.Successes+stats.Failures != stats.Runs || stats.Runs != runs {
		t.Errorf("runs = %d, successes = %d, failures = %d: counts must add up",
			stats.Runs, stats.Successes, stats.Failures)
	}
	// Every run — censored or not — circulates its maximal token(s) the
	// full ring at least once, so the all-runs total must exceed what
	// the successes alone can account for.
	if stats.TotalMsgs < stats.Runs*n {
		t.Errorf("TotalMsgs = %d < %d: censored runs' messages were dropped",
			stats.TotalMsgs, stats.Runs*n)
	}
	successMsgs := int(stats.MeanMsgs*float64(stats.Successes) + 0.5)
	if stats.TotalMsgs <= successMsgs {
		t.Errorf("TotalMsgs = %d should exceed the successes' own total %d",
			stats.TotalMsgs, successMsgs)
	}
}

func TestElectionPhasesShrinkWithIDSpace(t *testing.T) {
	// Bigger id spaces mean fewer ties: expected phases decrease.
	small, err := ElectionSweep(11, 8, 2, 500, 300)
	if err != nil {
		t.Fatal(err)
	}
	large, err := ElectionSweep(11, 8, 64, 500, 300)
	if err != nil {
		t.Fatal(err)
	}
	if large.MeanPhases >= small.MeanPhases {
		t.Errorf("idSpace=64 phases (%f) should be below idSpace=2 phases (%f)",
			large.MeanPhases, small.MeanPhases)
	}
}

func TestItaiRodehArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := ItaiRodeh(rng, 0, 2, 10); !errors.Is(err, ErrBadArgs) {
		t.Errorf("n=0 err = %v", err)
	}
	if _, err := ItaiRodeh(rng, 3, 1, 10); !errors.Is(err, ErrBadArgs) {
		t.Errorf("idSpace=1 err = %v", err)
	}
	if _, err := ElectionSweep(1, 3, 4, 10, 0); !errors.Is(err, ErrBadArgs) {
		t.Errorf("runs=0 err = %v", err)
	}
}

func TestLehmannRabinEveryoneEats(t *testing.T) {
	// The paper's point: five philosophers have no deterministic
	// symmetric solution (DP), but the randomized free-choice program is
	// lockout-free in practice.
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		res, err := LehmannRabin(rng, 5, 20_000)
		if err != nil {
			t.Fatal(err)
		}
		for p, meals := range res.Meals {
			if meals == 0 {
				t.Errorf("seed %d: philosopher %d starved", seed, p)
			}
		}
	}
}

func TestLehmannRabinScales(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	res, err := LehmannRabin(rng, 11, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, m := range res.Meals {
		total += m
	}
	if total == 0 {
		t.Error("nobody ate")
	}
}

func TestLehmannRabinArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := LehmannRabin(rng, 1, 100); !errors.Is(err, ErrBadArgs) {
		t.Errorf("n=1 err = %v", err)
	}
	if _, err := LehmannRabin(rng, 3, 0); !errors.Is(err, ErrBadArgs) {
		t.Errorf("steps=0 err = %v", err)
	}
}

func TestStubbornDeterministicDeadlocks(t *testing.T) {
	// The deterministic baseline deadlocks under round-robin for every
	// table size — DP's adversary in executable form.
	for _, n := range []int{3, 5, 7} {
		steps, err := StubbornLeftFirst(n, 10_000)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if steps <= 0 || steps > n+1 {
			t.Errorf("n=%d: deadlock after %d steps; round-robin should deadlock within one round", n, steps)
		}
	}
	if _, err := StubbornLeftFirst(1, 10); !errors.Is(err, ErrBadArgs) {
		t.Errorf("n=1 err = %v", err)
	}
}

func TestDeterminismPerSeed(t *testing.T) {
	a, err := ElectionSweep(42, 6, 8, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ElectionSweep(42, 6, 8, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanPhases != b.MeanPhases || a.MeanMsgs != b.MeanMsgs {
		t.Error("same seed should reproduce identical statistics")
	}
}

func BenchmarkItaiRodeh(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ItaiRodeh(rng, 32, 16, 500); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLehmannRabin(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := LehmannRabin(rng, 5, 5_000); err != nil {
			b.Fatal(err)
		}
	}
}
