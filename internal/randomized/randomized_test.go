package randomized

import (
	"errors"
	"math/rand"
	"testing"
)

func TestItaiRodehElectsExactlyOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 3, 5, 8, 16} {
		for run := 0; run < 50; run++ {
			res, err := ItaiRodeh(rng, n, 8, 200)
			if err != nil {
				t.Fatalf("n=%d run=%d: %v", n, run, err)
			}
			if res.Leader < 0 || res.Leader >= n {
				t.Fatalf("leader %d out of range", res.Leader)
			}
			if res.Phases < 1 {
				t.Fatal("phases must be >= 1")
			}
		}
	}
}

func TestItaiRodehSingleProcessor(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	res, err := ItaiRodeh(rng, 1, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Leader != 0 || res.Phases != 1 {
		t.Errorf("single processor should elect itself in one phase: %+v", res)
	}
}

func TestItaiRodehLeaderDistribution(t *testing.T) {
	// Symmetry: over many runs every position should win sometimes.
	rng := rand.New(rand.NewSource(3))
	const n = 4
	wins := make([]int, n)
	for run := 0; run < 400; run++ {
		res, err := ItaiRodeh(rng, n, 16, 200)
		if err != nil {
			t.Fatal(err)
		}
		wins[res.Leader]++
	}
	for p, w := range wins {
		if w == 0 {
			t.Errorf("position %d never won in 400 runs", p)
		}
	}
}

func TestElectionSweep(t *testing.T) {
	stats, err := ElectionSweep(7, 8, 8, 200, 100)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Successes != 100 {
		t.Errorf("successes = %d, want 100", stats.Successes)
	}
	if stats.MeanPhases < 1 {
		t.Errorf("mean phases = %f", stats.MeanPhases)
	}
	if stats.MeanMsgs < float64(8*8) {
		t.Errorf("mean messages = %f looks too small", stats.MeanMsgs)
	}
}

func TestElectionPhasesShrinkWithIDSpace(t *testing.T) {
	// Bigger id spaces mean fewer ties: expected phases decrease.
	small, err := ElectionSweep(11, 8, 2, 500, 300)
	if err != nil {
		t.Fatal(err)
	}
	large, err := ElectionSweep(11, 8, 64, 500, 300)
	if err != nil {
		t.Fatal(err)
	}
	if large.MeanPhases >= small.MeanPhases {
		t.Errorf("idSpace=64 phases (%f) should be below idSpace=2 phases (%f)",
			large.MeanPhases, small.MeanPhases)
	}
}

func TestItaiRodehArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := ItaiRodeh(rng, 0, 2, 10); !errors.Is(err, ErrBadArgs) {
		t.Errorf("n=0 err = %v", err)
	}
	if _, err := ItaiRodeh(rng, 3, 1, 10); !errors.Is(err, ErrBadArgs) {
		t.Errorf("idSpace=1 err = %v", err)
	}
	if _, err := ElectionSweep(1, 3, 4, 10, 0); !errors.Is(err, ErrBadArgs) {
		t.Errorf("runs=0 err = %v", err)
	}
}

func TestLehmannRabinEveryoneEats(t *testing.T) {
	// The paper's point: five philosophers have no deterministic
	// symmetric solution (DP), but the randomized free-choice program is
	// lockout-free in practice.
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		res, err := LehmannRabin(rng, 5, 20_000)
		if err != nil {
			t.Fatal(err)
		}
		for p, meals := range res.Meals {
			if meals == 0 {
				t.Errorf("seed %d: philosopher %d starved", seed, p)
			}
		}
	}
}

func TestLehmannRabinScales(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	res, err := LehmannRabin(rng, 11, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, m := range res.Meals {
		total += m
	}
	if total == 0 {
		t.Error("nobody ate")
	}
}

func TestLehmannRabinArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := LehmannRabin(rng, 1, 100); !errors.Is(err, ErrBadArgs) {
		t.Errorf("n=1 err = %v", err)
	}
	if _, err := LehmannRabin(rng, 3, 0); !errors.Is(err, ErrBadArgs) {
		t.Errorf("steps=0 err = %v", err)
	}
}

func TestStubbornDeterministicDeadlocks(t *testing.T) {
	// The deterministic baseline deadlocks under round-robin for every
	// table size — DP's adversary in executable form.
	for _, n := range []int{3, 5, 7} {
		steps, err := StubbornLeftFirst(n, 10_000)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if steps <= 0 || steps > n+1 {
			t.Errorf("n=%d: deadlock after %d steps; round-robin should deadlock within one round", n, steps)
		}
	}
	if _, err := StubbornLeftFirst(1, 10); !errors.Is(err, ErrBadArgs) {
		t.Errorf("n=1 err = %v", err)
	}
}

func TestDeterminismPerSeed(t *testing.T) {
	a, err := ElectionSweep(42, 6, 8, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ElectionSweep(42, 6, 8, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanPhases != b.MeanPhases || a.MeanMsgs != b.MeanMsgs {
		t.Error("same seed should reproduce identical statistics")
	}
}

func BenchmarkItaiRodeh(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ItaiRodeh(rng, 32, 16, 500); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLehmannRabin(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := LehmannRabin(rng, 5, 5_000); err != nil {
			b.Fatal(err)
		}
	}
}
