// Package intset provides small sorted-slice integer sets. Similarity
// labels are dense ints; the distributed labeling algorithms pass label
// sets through shared variables, so the representation must be canonical
// (sorted, deduplicated) for state fingerprints to compare correctly.
package intset

import "sort"

// Of returns the canonical set of the given elements.
func Of(xs ...int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return dedup(out)
}

// FromMap returns the canonical set of m's keys.
func FromMap(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k, v := range m {
		if v {
			out = append(out, k)
		}
	}
	sort.Ints(out)
	return out
}

// Contains reports whether sorted set s contains x.
func Contains(s []int, x int) bool {
	i := sort.SearchInts(s, x)
	return i < len(s) && s[i] == x
}

// Equal reports whether two canonical sets are equal.
func Equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Subset reports whether every element of a is in b (both canonical).
func Subset(a, b []int) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
	}
	return true
}

// Union returns the canonical union of two canonical sets.
func Union(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Diff returns the canonical difference a \ b.
func Diff(a, b []int) []int {
	out := make([]int, 0, len(a))
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

// Intersect returns the canonical intersection.
func Intersect(a, b []int) []int {
	out := make([]int, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func dedup(sorted []int) []int {
	out := sorted[:0]
	for i, x := range sorted {
		if i == 0 || x != sorted[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
