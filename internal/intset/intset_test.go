package intset

import (
	"sort"
	"testing"
	"testing/quick"
)

func norm(xs []uint8) []int {
	m := make(map[int]bool)
	for _, x := range xs {
		m[int(x%16)] = true
	}
	return FromMap(m)
}

func TestOf(t *testing.T) {
	got := Of(3, 1, 3, 2, 1)
	want := []int{1, 2, 3}
	if !Equal(got, want) {
		t.Errorf("Of = %v, want %v", got, want)
	}
	if len(Of()) != 0 {
		t.Error("empty Of should be empty")
	}
}

func TestBasicOps(t *testing.T) {
	a := Of(1, 2, 3)
	b := Of(2, 3, 4)
	if !Equal(Union(a, b), Of(1, 2, 3, 4)) {
		t.Errorf("Union = %v", Union(a, b))
	}
	if !Equal(Diff(a, b), Of(1)) {
		t.Errorf("Diff = %v", Diff(a, b))
	}
	if !Equal(Intersect(a, b), Of(2, 3)) {
		t.Errorf("Intersect = %v", Intersect(a, b))
	}
	if !Contains(a, 2) || Contains(a, 4) {
		t.Error("Contains wrong")
	}
	if !Subset(Of(2, 3), a) || Subset(Of(2, 5), a) || !Subset(nil, a) {
		t.Error("Subset wrong")
	}
}

func TestPropertiesAgainstMaps(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := norm(xs), norm(ys)
		u := Union(a, b)
		d := Diff(a, b)
		in := Intersect(a, b)
		if !sort.IntsAreSorted(u) || !sort.IntsAreSorted(d) || !sort.IntsAreSorted(in) {
			return false
		}
		for _, x := range u {
			if !Contains(a, x) && !Contains(b, x) {
				return false
			}
		}
		for _, x := range a {
			if !Contains(u, x) {
				return false
			}
			inB := Contains(b, x)
			if Contains(d, x) == inB {
				return false
			}
			if Contains(in, x) != inB {
				return false
			}
		}
		if !Subset(in, a) || !Subset(in, b) || !Subset(a, u) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualAndSubsetEdgeCases(t *testing.T) {
	if !Equal(nil, nil) || Equal(Of(1), nil) {
		t.Error("Equal edge cases wrong")
	}
	if !Subset(nil, nil) || Subset(Of(1), nil) {
		t.Error("Subset edge cases wrong")
	}
}
