package dining

import (
	"errors"
	"fmt"

	"simsym/internal/machine"
	"simsym/internal/system"
)

// Section 8's "Encapsulating Asymmetry", made executable. The paper
// points to [CM84] (Chandy & Misra, "The Drinking Philosophers Problem")
// as the design method: every processor runs the same program and
// carries no explicit identity; the necessary asymmetry lives entirely
// in the initial state, which encodes an acyclic orientation of the
// conflict graph. No two neighboring processors are then similar, and
// Dining Philosophers — impossible on the fully symmetric five-table
// (DP) — becomes solvable with a deterministic uniform program.
//
// This file implements the Chandy–Misra fork protocol on our L machine.
// Each fork variable holds {owner side, dirty bit, per-side request
// bits}; all manipulation happens under the fork's lock. The rules:
//
//   - A hungry philosopher requests forks it does not own.
//   - An owner yields a DIRTY fork when the other side has requested it
//     (the transfer cleans the fork); a CLEAN fork is never yielded.
//   - A philosopher eats when it owns both forks; eating dirties them.
//   - Philosophers service requests whenever they pass over a fork —
//     including after they have finished all their meals.
//
// Initially every fork is dirty and owned per the orientation; the
// acyclic start makes the clean-fork priority order well-founded, which
// is what rules out deadlock (verified here by the model checker rather
// than on paper).

// ErrBadOrientation reports a cyclic or mis-sized orientation.
var ErrBadOrientation = errors.New("dining: orientation must be acyclic and match the table size")

// OrientedTable builds the n-philosopher table of Figure 4 with the
// Chandy–Misra initial state: fork f starts dirty and owned by its
// right-user (philosopher f) when towardRight[f], else by its left-user
// (philosopher f+1 mod n). The orientation must be acyclic: not all
// forks may point the same way around the ring. Processor initial states
// stay uniform — the asymmetry is entirely in the variables.
func OrientedTable(n int, towardRight []bool) (*system.System, error) {
	if len(towardRight) != n {
		return nil, fmt.Errorf("%w: %d forks for %d philosophers", ErrBadOrientation, len(towardRight), n)
	}
	if cyclic(towardRight) {
		return nil, fmt.Errorf("%w: all forks point the same way around the ring", ErrBadOrientation)
	}
	s, err := system.Dining(n)
	if err != nil {
		return nil, err
	}
	for f := 0; f < n; f++ {
		// The user that calls fork f "right" is philosopher f; the one
		// that calls it "left" is philosopher f+1. Owner sides are
		// stored as the name the owner uses.
		if towardRight[f] {
			s.VarInit[f] = "r"
		} else {
			s.VarInit[f] = "l"
		}
	}
	return s, nil
}

func cyclic(towardRight []bool) bool {
	allTrue, allFalse := true, true
	for _, t := range towardRight {
		if t {
			allFalse = false
		} else {
			allTrue = false
		}
	}
	return allTrue || allFalse
}

// AlternatingOrientation flips direction on every fork (acyclic for all
// even n; for odd n one adjacent pair shares direction, still acyclic).
func AlternatingOrientation(n int) []bool {
	out := make([]bool, n)
	for f := range out {
		out[f] = f%2 == 0
	}
	return out
}

// SingleFlipOrientation sends every fork counterclockwise except fork 0
// — the minimal acyclic orientation, with one doubly-owning philosopher.
func SingleFlipOrientation(n int) []bool {
	out := make([]bool, n)
	out[0] = true
	return out
}

// forkState is the decoded fork-variable value.
type forkState struct {
	owner string // "l" or "r": the name its owner calls it by
	dirty bool
	reqL  bool // the left-caller wants it
	reqR  bool // the right-caller wants it
}

func decodeFork(raw any) forkState {
	if m, ok := raw.(map[string]any); ok {
		fs := forkState{}
		fs.owner, _ = m["o"].(string)
		fs.dirty, _ = m["d"].(bool)
		fs.reqL, _ = m["rl"].(bool)
		fs.reqR, _ = m["rr"].(bool)
		return fs
	}
	// Initial string form: owner side, dirty, no requests.
	side, _ := raw.(string)
	return forkState{owner: side, dirty: true}
}

func encodeFork(fs forkState) map[string]any {
	return map[string]any{"o": fs.owner, "d": fs.dirty, "rl": fs.reqL, "rr": fs.reqR}
}

// side returns "l"/"r" for the given local fork name.
func side(name system.Name) string {
	if name == "left" {
		return "l"
	}
	return "r"
}

// cmSyms pre-interns the Chandy–Misra program's local slots.
type cmSyms struct {
	meals, eating     machine.Sym
	g, raw, w         machine.Sym
	ownLeft, ownRight machine.Sym
}

func newCMSyms(b *machine.Builder) *cmSyms {
	return &cmSyms{
		meals:    b.Sym("meals"),
		eating:   b.Sym("eating"),
		g:        b.Sym("_g"),
		raw:      b.Sym("_raw"),
		w:        b.Sym("_w"),
		ownLeft:  b.Sym("own_left"),
		ownRight: b.Sym("own_right"),
	}
}

// own returns the ownership slot for the given local fork name.
func (cs *cmSyms) own(name system.Name) machine.Sym {
	if name == "left" {
		return cs.ownLeft
	}
	return cs.ownRight
}

// ChandyMisraProgram returns the uniform Chandy–Misra philosopher
// program for meals meals. After the last meal the philosopher keeps
// servicing fork requests forever (it never halts), so neighbors are
// never starved by a sated peer; run it for a fixed schedule and read
// the "meals" locals.
func ChandyMisraProgram(meals int) (*machine.Program, error) {
	b := machine.NewBuilder()
	cs := newCMSyms(b)
	b.Compute(func(r *machine.Regs) {
		r.Set(cs.meals, 0)
		r.Set(cs.eating, false)
	})

	seq := 0
	b.Label("hungry")
	// One pass over both forks: acquire, request, or yield as the rules
	// dictate; then eat if both are ours.
	for _, name := range []system.Name{"left", "right"} {
		emitForkPass(b, cs, name, true, &seq)
	}
	b.JumpIf(func(r *machine.Regs) bool {
		return r.Get(cs.ownLeft) == true && r.Get(cs.ownRight) == true
	}, "eat")
	b.Jump("hungry")

	b.Label("eat")
	b.Compute(func(r *machine.Regs) { r.Set(cs.eating, true) })
	b.Compute(func(r *machine.Regs) {
		r.Set(cs.eating, false)
		r.Set(cs.meals, r.Int(cs.meals)+1)
	})
	// Dirty both forks (and hand them over if already requested).
	for _, name := range []system.Name{"left", "right"} {
		emitDirtyAndMaybeYield(b, cs, name, &seq)
	}
	b.JumpIf(func(r *machine.Regs) bool {
		return r.Int(cs.meals) >= meals
	}, "service")
	b.Jump("hungry")

	// Sated: service requests forever.
	b.Label("service")
	for _, name := range []system.Name{"left", "right"} {
		emitForkPass(b, cs, name, false, &seq)
	}
	b.Jump("service")

	return b.Build()
}

// freshLabel returns a unique jump label for generated spin loops,
// scoped to one program build via the caller's counter.
func freshLabel(prefix string, seq *int) string {
	*seq++
	return fmt.Sprintf("%s_%d", prefix, *seq)
}

// emitForkPass emits one lock-guarded pass over the named fork.
// If wantIt, the philosopher tries to own the fork (requesting when it
// cannot); either way it yields a dirty requested fork it owns.
func emitForkPass(b *machine.Builder, cs *cmSyms, name system.Name, wantIt bool, seq *int) {
	my := side(name)
	ownS := cs.own(name)
	retry := freshLabel(fmt.Sprintf("pass_%s_%v", name, wantIt), seq)
	b.Label(retry)
	b.Lock(name, "_g")
	b.JumpIf(func(r *machine.Regs) bool { return r.Get(cs.g) != true }, retry)
	b.Read(name, "_raw")
	b.Compute(func(r *machine.Regs) {
		fs := decodeFork(r.Get(cs.raw))
		mine := fs.owner == my
		theirReq := (my == "l" && fs.reqR) || (my == "r" && fs.reqL)
		switch {
		case mine && fs.dirty && theirReq:
			// Yield: transfer cleans the fork and consumes the request.
			fs.owner = other(my)
			fs.dirty = false
			fs.reqL, fs.reqR = false, false
			if wantIt {
				// Immediately request it back.
				fs = setReq(fs, my, true)
			}
			r.Set(ownS, false)
		case mine:
			r.Set(ownS, true)
		case wantIt:
			fs = setReq(fs, my, true)
			r.Set(ownS, false)
		default:
			r.Set(ownS, false)
		}
		r.Set(cs.w, encodeFork(fs))
	})
	b.Write(name, "_w")
	b.Unlock(name)
}

// emitDirtyAndMaybeYield marks the named fork dirty after a meal and
// hands it straight to a waiting neighbor.
func emitDirtyAndMaybeYield(b *machine.Builder, cs *cmSyms, name system.Name, seq *int) {
	my := side(name)
	ownS := cs.own(name)
	retry := freshLabel(fmt.Sprintf("dirty_%s", name), seq)
	b.Label(retry)
	b.Lock(name, "_g")
	b.JumpIf(func(r *machine.Regs) bool { return r.Get(cs.g) != true }, retry)
	b.Read(name, "_raw")
	b.Compute(func(r *machine.Regs) {
		fs := decodeFork(r.Get(cs.raw))
		fs.dirty = true
		theirReq := (my == "l" && fs.reqR) || (my == "r" && fs.reqL)
		if theirReq {
			fs.owner = other(my)
			fs.dirty = false
			fs.reqL, fs.reqR = false, false
		}
		r.Set(ownS, fs.owner == my)
		r.Set(cs.w, encodeFork(fs))
	})
	b.Write(name, "_w")
	b.Unlock(name)
}

func other(side string) string {
	if side == "l" {
		return "r"
	}
	return "l"
}

func setReq(fs forkState, side string, v bool) forkState {
	if side == "l" {
		fs.reqL = v
	} else {
		fs.reqR = v
	}
	return fs
}
