package dining

import (
	"errors"
	"math/rand"
	"testing"

	"simsym/internal/core"
	"simsym/internal/machine"
	"simsym/internal/mc"
	"simsym/internal/sched"
	"simsym/internal/system"
)

func TestOrientedTableValidation(t *testing.T) {
	if _, err := OrientedTable(5, make([]bool, 3)); !errors.Is(err, ErrBadOrientation) {
		t.Errorf("size mismatch err = %v", err)
	}
	allCW := make([]bool, 5) // all false: every fork the same way
	if _, err := OrientedTable(5, allCW); !errors.Is(err, ErrBadOrientation) {
		t.Errorf("cyclic err = %v", err)
	}
	if _, err := OrientedTable(5, SingleFlipOrientation(5)); err != nil {
		t.Errorf("single flip should be valid: %v", err)
	}
	if _, err := OrientedTable(6, AlternatingOrientation(6)); err != nil {
		t.Errorf("alternating should be valid: %v", err)
	}
}

func TestOrientationBreaksNeighborSimilarity(t *testing.T) {
	// Section 8's point: the asymmetric initial state makes neighbors
	// dissimilar even though processors stay anonymous and the program
	// uniform. With the single-flip orientation the similarity labeling
	// must give adjacent philosophers different labels.
	s, err := OrientedTable(5, SingleFlipOrientation(5))
	if err != nil {
		t.Fatal(err)
	}
	lab, err := core.Similarity(s, core.RuleQ)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := Adjacency(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range pairs {
		if lab.SameClass(pr[0], pr[1]) {
			t.Errorf("adjacent philosophers %d,%d similar despite orientation\n%s", pr[0], pr[1], lab)
		}
	}
}

func TestChandyMisraFiveTableSafety(t *testing.T) {
	// The paper's DP says the SYMMETRIC five-table is unsolvable; with
	// the orientation encapsulated in the initial state, the uniform
	// Chandy–Misra program must pass exclusion and deadlock-freedom.
	// Exhaustive for 1 meal on the 3-table; bounded on the 5-table.
	for _, tc := range []struct {
		n         int
		maxStates int
	}{
		{3, 150_000},
		{5, 80_000},
	} {
		s, err := OrientedTable(tc.n, SingleFlipOrientation(tc.n))
		if err != nil {
			t.Fatal(err)
		}
		prog, err := ChandyMisraProgram(1)
		if err != nil {
			t.Fatal(err)
		}
		exclusion, err := ExclusionPred(s)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mc.Check(func() (*machine.Machine, error) {
			return machine.New(s, system.InstrL, prog)
		}, mc.Options{
			MaxStates:  tc.maxStates,
			StatePreds: []mc.StatePredicate{exclusion},
			StuckBad: func(m *machine.Machine) string {
				for p := 0; p < tc.n; p++ {
					v, _ := m.Local(p, "meals")
					if ml, ok := v.(int); !ok || ml < 1 {
						return "a philosopher can never finish its meal"
					}
				}
				return ""
			},
		})
		if errors.Is(err, mc.ErrBudget) {
			t.Logf("n=%d: bounded check, no violation in %d states", tc.n, res.StatesExplored)
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("n=%d: %s (schedule %v)", tc.n, res.Violation.Reason, res.Violation.Schedule)
		}
		t.Logf("n=%d: complete over %d states", tc.n, res.StatesExplored)
	}
}

func TestChandyMisraProgress(t *testing.T) {
	// Everyone eats, repeatedly, under shuffled fair schedules — the
	// lockout-freedom CM84 is famous for, on the very table size DP
	// forbids for symmetric initial states.
	const n, meals = 5, 4
	s, err := OrientedTable(n, SingleFlipOrientation(n))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ChandyMisraProgram(meals)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		m, err := machine.New(s, system.InstrL, prog)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		done := func() bool {
			for p := 0; p < n; p++ {
				v, _ := m.Local(p, "meals")
				if ml, ok := v.(int); !ok || ml < meals {
					return false
				}
			}
			return true
		}
		rounds := 0
		for ; rounds < 20_000 && !done(); rounds++ {
			round, err := sched.ShuffledRounds(rng, n, 1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(round); err != nil {
				t.Fatal(err)
			}
		}
		if !done() {
			for p := 0; p < n; p++ {
				v, _ := m.Local(p, "meals")
				t.Logf("phil %d meals=%v", p, v)
			}
			t.Fatalf("seed %d: not everyone ate %d meals in %d rounds", seed, meals, rounds)
		}
	}
}

func TestChandyMisraRoundRobinProgress(t *testing.T) {
	// Round-robin is the schedule that kills the naive program on the
	// symmetric table (everyone grabs in lock step); with encapsulated
	// asymmetry it must make progress.
	const n, meals = 5, 3
	s, err := OrientedTable(n, AlternatingOrientation(n))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ChandyMisraProgram(meals)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(s, system.InstrL, prog)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := sched.RoundRobin(n, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(rr); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < n; p++ {
		v, _ := m.Local(p, "meals")
		if ml, ok := v.(int); !ok || ml < meals {
			t.Errorf("phil %d ate %v meals, want %d", p, v, meals)
		}
	}
}

func TestChandyMisraExclusionLongRun(t *testing.T) {
	// Long random run with the exclusion predicate checked every step.
	const n = 7
	s, err := OrientedTable(n, SingleFlipOrientation(n))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ChandyMisraProgram(100)
	if err != nil {
		t.Fatal(err)
	}
	exclusion, err := ExclusionPred(s)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(s, system.InstrL, prog)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for step := 0; step < 100_000; step++ {
		if err := m.Step(rng.Intn(n)); err != nil {
			t.Fatal(err)
		}
		if v := exclusion(m); v != "" {
			t.Fatalf("step %d: %s", step, v)
		}
	}
}
