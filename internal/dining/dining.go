// Package dining implements section 7 of the paper: the Dining
// Philosophers results DP and DP'.
//
// DP: there is no symmetric, distributed, deterministic solution for five
// philosophers (Figure 4). The paper derives this from Theorem 11 — five
// is prime, so all five graph-symmetric philosophers are similar even in
// L, and a schedule exists making all of them eat together (or starve
// together). Operationally the standard fork-grabbing program deadlocks
// under the round-robin schedule, which this package demonstrates both by
// model checking and by direct execution.
//
// DP': six philosophers seated alternately (Figure 5) admit a symmetric,
// distributed, deterministic solution. Each fork is then either a shared
// "left" fork or a shared "right" fork, the two fork classes form a
// global two-level resource hierarchy, and the uniform program "lock your
// left fork, then your right fork" is deadlock-free. The package verifies
// exclusion and deadlock-freedom by exhaustive model checking and
// progress (everybody eats) by fair execution.
package dining

import (
	"errors"
	"fmt"

	"simsym/internal/machine"
	"simsym/internal/mc"
	"simsym/internal/sched"
	"simsym/internal/system"
)

// Sentinel errors.
var (
	ErrNotDining = errors.New("dining: system is not a dining table")
)

// Program returns the uniform philosopher program: meals times, spin-lock
// the fork called first, then the fork called second, eat for one step,
// release both, think. The program is symmetric and deterministic — the
// only asymmetry available is in the naming structure of the table.
func Program(first, second system.Name, meals int) (*machine.Program, error) {
	b := machine.NewBuilder()
	mealsS, eatingS := b.Sym("meals"), b.Sym("eating")
	g1, g2 := b.Sym("_g1"), b.Sym("_g2")
	b.Compute(func(r *machine.Regs) {
		r.Set(mealsS, 0)
		r.Set(eatingS, false)
	})
	b.Label("think")
	b.JumpIf(func(r *machine.Regs) bool { return r.Int(mealsS) >= meals }, "full")
	b.Label("grab1")
	b.Lock(first, "_g1")
	b.JumpIf(func(r *machine.Regs) bool { return r.Get(g1) != true }, "grab1")
	b.Label("grab2")
	b.Lock(second, "_g2")
	b.JumpIf(func(r *machine.Regs) bool { return r.Get(g2) != true }, "grab2")
	b.Compute(func(r *machine.Regs) { r.Set(eatingS, true) })
	b.Compute(func(r *machine.Regs) {
		r.Set(eatingS, false)
		r.Set(mealsS, r.Int(mealsS)+1)
	})
	b.Unlock(second)
	b.Unlock(first)
	b.Jump("think")
	b.Label("full")
	b.Halt()
	return b.Build()
}

// Adjacency returns, for each pair of philosophers sharing a fork, the
// pair (each shared fork contributes one pair).
func Adjacency(sys *system.System) ([][2]int, error) {
	vn := sys.VarNeighbors()
	var pairs [][2]int
	for v := range vn {
		procs := make(map[int]bool)
		for _, e := range vn[v] {
			procs[e.Proc] = true
		}
		if len(procs) != 2 {
			return nil, fmt.Errorf("%w: fork %s has %d users, want 2", ErrNotDining, sys.VarIDs[v], len(procs))
		}
		var pair [2]int
		i := 0
		for p := range procs {
			pair[i] = p
			i++
		}
		if pair[0] > pair[1] {
			pair[0], pair[1] = pair[1], pair[0]
		}
		pairs = append(pairs, pair)
	}
	return pairs, nil
}

// ExclusionPred builds a model-checker predicate flagging states where
// two adjacent philosophers eat simultaneously.
func ExclusionPred(sys *system.System) (mc.StatePredicate, error) {
	pairs, err := Adjacency(sys)
	if err != nil {
		return nil, err
	}
	eating := func(m *machine.Machine, p int) bool {
		v, ok := m.Local(p, "eating")
		return ok && v == true
	}
	return func(m *machine.Machine) string {
		for _, pr := range pairs {
			if eating(m, pr[0]) && eating(m, pr[1]) {
				return fmt.Sprintf("adjacent philosophers %d and %d eating together", pr[0], pr[1])
			}
		}
		return ""
	}, nil
}

// LocalExclusionPred is the per-step localized form of ExclusionPred for
// sampled runs: after processor p steps, only pairs involving p can have
// newly started eating together, so checking p against its fork
// neighbors is equivalent to the full pairwise scan when run after every
// executed step — at O(degree) instead of O(forks) per step. (Fault
// injection preserves this: crashes and lock drops never set "eating".)
// The violation messages match ExclusionPred's format.
func LocalExclusionPred(sys *system.System) (mc.ProcPredicate, error) {
	pairs, err := Adjacency(sys)
	if err != nil {
		return nil, err
	}
	neighbors := make([][]int, sys.NumProcs())
	for _, pr := range pairs {
		neighbors[pr[0]] = append(neighbors[pr[0]], pr[1])
		neighbors[pr[1]] = append(neighbors[pr[1]], pr[0])
	}
	eating := func(m *machine.Machine, p int) bool {
		v, ok := m.Local(p, "eating")
		return ok && v == true
	}
	return func(m *machine.Machine, p int) string {
		if p < 0 || p >= len(neighbors) || !eating(m, p) {
			return ""
		}
		for _, q := range neighbors[p] {
			if eating(m, q) {
				a, b := p, q
				if a > b {
					a, b = b, a
				}
				return fmt.Sprintf("adjacent philosophers %d and %d eating together", a, b)
			}
		}
		return ""
	}, nil
}

// Report is the outcome of analyzing a dining table with a program.
type Report struct {
	// StatesExplored is the model checker's state count.
	StatesExplored int
	// Complete indicates exhaustive exploration.
	Complete bool
	// ExclusionViolated holds the counterexample schedule, if any.
	ExclusionViolated []int
	// Deadlocked holds a schedule reaching an inescapable stuck
	// component, if any.
	Deadlocked []int
	// Stats carries the checker's counters (dedup hits, symmetry
	// quotient, throughput) for reporting.
	Stats mc.Stats
}

// Check model-checks the program on the table: exclusion as a state
// predicate, deadlock as a stuck terminal component. When the state
// budget runs out before closure, the report carries Complete=false and
// whatever was (not) found within the bound — bounded verification
// rather than an error, since large tables cannot close.
func Check(sys *system.System, prog *machine.Program, maxStates int) (*Report, error) {
	return CheckWith(sys, prog, mc.Options{MaxStates: maxStates})
}

// CheckWith is Check with full control over the engine: symmetry
// reduction, parallel expansion, budgets, and progress reporting. The
// exclusion and deadlock predicates are installed on top of opts.
func CheckWith(sys *system.System, prog *machine.Program, opts mc.Options) (*Report, error) {
	exclusion, err := ExclusionPred(sys)
	if err != nil {
		return nil, err
	}
	opts.StatePreds = append(opts.StatePreds, exclusion)
	opts.StuckBad = mc.NotAllHalted
	res, err := mc.Check(func() (*machine.Machine, error) {
		return machine.New(sys, system.InstrL, prog)
	}, opts)
	if errors.Is(err, mc.ErrBudget) {
		return &Report{StatesExplored: res.StatesExplored, Complete: false, Stats: res.Stats}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("dining: %w", err)
	}
	rep := &Report{StatesExplored: res.StatesExplored, Complete: res.Complete, Stats: res.Stats}
	if res.Violation != nil {
		if res.Violation.Reason[:5] == "stuck" {
			rep.Deadlocked = res.Violation.Schedule
		} else {
			rep.ExclusionViolated = res.Violation.Schedule
		}
	}
	return rep, nil
}

// FindDeadlockRoundRobin runs the program under the round-robin schedule
// and reports the round after which the machine state stopped changing
// with processors still live — a witness that the schedule deadlocks (a
// repeated state under a periodic schedule repeats forever). Returns
// (0, false) when the machine halts or keeps progressing.
//
// This is the cheap, existential face of DP: impossibility needs only
// one bad schedule, and round-robin — the schedule that keeps similar
// philosophers in lock step — is it.
func FindDeadlockRoundRobin(sys *system.System, prog *machine.Program, maxRounds int) (int, bool, error) {
	m, err := machine.New(sys, system.InstrL, prog)
	if err != nil {
		return 0, false, fmt.Errorf("dining: %w", err)
	}
	n := sys.NumProcs()
	seen := map[string]bool{m.Fingerprint(): true}
	for r := 1; r <= maxRounds; r++ {
		for p := 0; p < n; p++ {
			if err := m.Step(p); err != nil {
				return 0, false, fmt.Errorf("dining: %w", err)
			}
		}
		if m.AllHalted() {
			return 0, false, nil
		}
		fp := m.Fingerprint()
		if seen[fp] {
			// A revisited global state under a periodic deterministic
			// schedule repeats forever: progress (meal counters are part
			// of the state) has stopped for good.
			return r, true, nil
		}
		seen[fp] = true
	}
	return 0, false, nil
}

// RunFair executes the program under round-robin for the given number of
// rounds and returns each philosopher's meal count.
func RunFair(sys *system.System, prog *machine.Program, rounds int) ([]int, error) {
	m, err := machine.New(sys, system.InstrL, prog)
	if err != nil {
		return nil, fmt.Errorf("dining: %w", err)
	}
	rr, err := sched.RoundRobin(sys.NumProcs(), rounds)
	if err != nil {
		return nil, fmt.Errorf("dining: %w", err)
	}
	if _, err := m.Run(rr); err != nil {
		return nil, fmt.Errorf("dining: %w", err)
	}
	return Meals(m), nil
}

// Meals returns each philosopher's meal count (zero when the counter was
// never initialized, e.g. the processor crashed before its first step).
func Meals(m *machine.Machine) []int {
	meals := make([]int, m.NumProcs())
	for p := range meals {
		if v, ok := m.Local(p, "meals"); ok {
			meals[p], _ = v.(int)
		}
	}
	return meals
}

// GreedyProgram is the strawman that ignores locking: read both forks,
// and if both look free, mark them taken and eat. Exclusion fails under
// schedules that interleave the reads — the Figure 4 "all philosophers
// eat together" scenario in miniature (runs in S).
func GreedyProgram() (*machine.Program, error) {
	b := machine.NewBuilder()
	l, r0 := b.Sym("_l"), b.Sym("_r")
	eatingS, markS := b.Sym("eating"), b.Sym("_mark")
	b.Read("left", "_l")
	b.Read("right", "_r")
	b.JumpIf(func(r *machine.Regs) bool {
		return r.Get(l) != "0" || r.Get(r0) != "0"
	}, "skip")
	b.Compute(func(r *machine.Regs) {
		r.Set(eatingS, true)
		r.Set(markS, "taken")
	})
	b.Write("left", "_mark")
	b.Write("right", "_mark")
	b.Label("skip")
	b.Halt()
	return b.Build()
}

// CheckGreedy model-checks the greedy program (instruction set S) for
// exclusion violations.
func CheckGreedy(sys *system.System, maxStates int) (*Report, error) {
	prog, err := GreedyProgram()
	if err != nil {
		return nil, err
	}
	exclusion, err := ExclusionPred(sys)
	if err != nil {
		return nil, err
	}
	res, err := mc.Check(func() (*machine.Machine, error) {
		return machine.New(sys, system.InstrS, prog)
	}, mc.Options{
		MaxStates:  maxStates,
		StatePreds: []mc.StatePredicate{exclusion},
	})
	if err != nil {
		return nil, fmt.Errorf("dining: %w", err)
	}
	rep := &Report{StatesExplored: res.StatesExplored, Complete: res.Complete, Stats: res.Stats}
	if res.Violation != nil {
		rep.ExclusionViolated = res.Violation.Schedule
	}
	return rep, nil
}
