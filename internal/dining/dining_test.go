package dining

import (
	"testing"

	"simsym/internal/system"
)

func table(t *testing.T, n int, flipped bool) *system.System {
	t.Helper()
	var s *system.System
	var err error
	if flipped {
		s, err = system.DiningFlipped(n)
	} else {
		s, err = system.Dining(n)
	}
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDP5LeftRightDeadlocks(t *testing.T) {
	// Figure 4: the symmetric table. Uniform left-then-right grabbing
	// deadlocks under round-robin — the schedule that keeps the five
	// similar philosophers in lock step makes each hold one fork forever.
	s := table(t, 5, false)
	prog, err := Program("left", "right", 1)
	if err != nil {
		t.Fatal(err)
	}
	round, found, err := FindDeadlockRoundRobin(s, prog, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("five-philosopher uniform program must deadlock under round-robin (DP)")
	}
	if round <= 0 {
		t.Errorf("round = %d", round)
	}
}

func TestDP5RightLeftAlsoDeadlocks(t *testing.T) {
	// Symmetric failure: the mirror-image program deadlocks too. DP is
	// about ALL uniform programs; the two canonical grab orders both
	// fail, as Theorem 11 predicts.
	s := table(t, 5, false)
	prog, err := Program("right", "left", 1)
	if err != nil {
		t.Fatal(err)
	}
	_, found, err := FindDeadlockRoundRobin(s, prog, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("mirror program must deadlock as well")
	}
}

func TestDP5ExhaustiveDeadlock(t *testing.T) {
	// The full claim, exhaustively: the deadlock is reachable (and found
	// as a stuck terminal component) over the complete ~720k-state
	// schedule space. Slow; skipped with -short.
	if testing.Short() {
		t.Skip("exhaustive DP5 exploration is slow")
	}
	s := table(t, 5, false)
	prog, err := Program("left", "right", 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Check(s, prog, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatal("DP5 state space should close within 1M states")
	}
	if rep.ExclusionViolated != nil {
		t.Fatalf("locking program should never violate exclusion, schedule %v", rep.ExclusionViolated)
	}
	if rep.Deadlocked == nil {
		t.Fatal("five-philosopher uniform program must deadlock (DP)")
	}
}

func TestDP6FlippedLeftRightIsCorrect(t *testing.T) {
	// Figure 5 / DP': on the flipped table the left forks form level one
	// of a resource hierarchy and the right forks level two, so the SAME
	// uniform program that deadlocks on Figure 4 is deadlock-free here.
	// Exhaustively model-checked for 1 meal.
	// The 6-table's interleaving space exceeds an exhaustive budget;
	// this is bounded verification (no violation within the bound). The
	// 4-table below closes completely.
	s := table(t, 6, true)
	prog, err := Program("left", "right", 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Check(s, prog, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExclusionViolated != nil {
		t.Fatalf("exclusion violated, schedule %v", rep.ExclusionViolated)
	}
	if rep.Deadlocked != nil {
		t.Fatalf("DP' solution deadlocked, schedule %v", rep.Deadlocked)
	}
	t.Logf("DP'(6) verified over %d states (complete=%v)", rep.StatesExplored, rep.Complete)
}

func TestDP4FlippedIsCorrect(t *testing.T) {
	// The smaller flipped table closes fast and is checked with more
	// meals.
	s := table(t, 4, true)
	prog, err := Program("left", "right", 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Check(s, prog, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExclusionViolated != nil || rep.Deadlocked != nil {
		t.Fatalf("flipped table of 4 should be correct: %+v", rep)
	}
}

func TestDP6Progress(t *testing.T) {
	// Under round-robin every philosopher finishes its meals.
	s := table(t, 6, true)
	const meals = 3
	prog, err := Program("left", "right", meals)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunFair(s, prog, 500)
	if err != nil {
		t.Fatal(err)
	}
	for p, m := range got {
		if m != meals {
			t.Errorf("philosopher %d ate %d meals, want %d", p, m, meals)
		}
	}
}

func TestDP5RoundRobinStarves(t *testing.T) {
	// The round-robin run on Figure 4 makes nobody eat: all philosophers
	// grab their first fork in lockstep and spin forever — the operational
	// face of "all five are similar".
	s := table(t, 5, false)
	prog, err := Program("left", "right", 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunFair(s, prog, 300)
	if err != nil {
		t.Fatal(err)
	}
	for p, m := range got {
		if m != 0 {
			t.Errorf("philosopher %d ate %d meals; round-robin should deadlock everyone", p, m)
		}
	}
}

func TestGreedyViolatesExclusion(t *testing.T) {
	// Without locks (plain S), the greedy program lets adjacent
	// philosophers eat together — the model checker produces the
	// interleaving.
	s := table(t, 5, false)
	rep, err := CheckGreedy(s, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExclusionViolated == nil {
		t.Fatal("greedy program should violate exclusion")
	}
}

func TestAdjacency(t *testing.T) {
	s := table(t, 5, false)
	pairs, err := Adjacency(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 5 {
		t.Fatalf("pairs = %v, want 5", pairs)
	}
	// Each philosopher appears in exactly two pairs.
	count := make(map[int]int)
	for _, pr := range pairs {
		count[pr[0]]++
		count[pr[1]]++
	}
	for p := 0; p < 5; p++ {
		if count[p] != 2 {
			t.Errorf("philosopher %d in %d pairs, want 2", p, count[p])
		}
	}
	// A non-dining system is rejected.
	if _, err := Adjacency(system.Fig2()); err == nil {
		t.Error("Fig2 should not be accepted as a dining table")
	}
}
