package dining

import (
	"fmt"
	"testing"

	"simsym/internal/machine"
	"simsym/internal/mc"
	"simsym/internal/system"
)

// reportsForModes runs CheckWith on the table in all four engine modes.
func reportsForModes(t *testing.T, sys *system.System, prog *machine.Program, maxStates int) map[string]*Report {
	t.Helper()
	out := make(map[string]*Report)
	for _, mode := range []struct {
		name    string
		sym     bool
		workers int
	}{
		{"seq", false, 0},
		{"par", false, 4},
		{"sym", true, 0},
		{"sym+par", true, 4},
	} {
		rep, err := CheckWith(sys, prog, mc.Options{
			MaxStates:      maxStates,
			SymmetryReduce: mode.sym,
			Workers:        mode.workers,
		})
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		out[mode.name] = rep
	}
	return out
}

func sameVerdict(a, b *Report) bool {
	return (a.ExclusionViolated == nil) == (b.ExclusionViolated == nil) &&
		(a.Deadlocked == nil) == (b.Deadlocked == nil) &&
		a.Complete == b.Complete
}

// TestFlippedTableVerdictEquivalence covers the E5 (DP′) topologies: the
// flipped 4- and 6-tables must get the same verdict — deadlock-free,
// exclusion-safe, closed — in every engine mode, with symmetry reduction
// shrinking the explored space.
func TestFlippedTableVerdictEquivalence(t *testing.T) {
	for _, n := range []int{4, 6} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			s, err := system.DiningFlipped(n)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := Program("left", "right", 1)
			if err != nil {
				t.Fatal(err)
			}
			// The 4-table closes; the 6-table's space is far too large, so
			// it runs as bounded verification to a deterministic cap —
			// verdict-within-bound equivalence and parallel determinism
			// still hold, only the quotient-shrink assertion needs closure.
			max := 200_000
			if n == 6 {
				max = 60_000
			}
			modes := reportsForModes(t, s, prog, max)
			seq := modes["seq"]
			if seq.Deadlocked != nil || seq.ExclusionViolated != nil {
				t.Fatalf("flipped table should be safe: %+v", seq)
			}
			if n == 4 && !seq.Complete {
				t.Fatalf("the 4-table should close within %d states", max)
			}
			for name, rep := range modes {
				if !sameVerdict(seq, rep) {
					t.Errorf("%s: verdict differs from sequential: %+v vs %+v", name, rep, seq)
				}
			}
			// Parallel expansion is label-for-label identical, cap or not.
			if modes["par"].StatesExplored != seq.StatesExplored {
				t.Errorf("parallel explored %d states, sequential %d",
					modes["par"].StatesExplored, seq.StatesExplored)
			}
			// Symmetry reduction genuinely quotients: the flipped table's
			// automorphism group is nontrivial.
			sym := modes["sym"]
			if sym.Stats.GroupOrder < 2 {
				t.Errorf("flipped table should have automorphisms, GroupOrder=%d", sym.Stats.GroupOrder)
			}
			if seq.Complete && sym.StatesExplored >= seq.StatesExplored {
				t.Errorf("symmetry reduction did not shrink the space: %d vs %d",
					sym.StatesExplored, seq.StatesExplored)
			}
			t.Logf("full=%d sym=%d (quotient ratio %.2f, group order %d)",
				seq.StatesExplored, sym.StatesExplored,
				float64(seq.StatesExplored)/float64(sym.StatesExplored), sym.Stats.GroupOrder)
		})
	}
}

// TestOrientedTableVerdictEquivalence covers the E13 topology: the
// oriented 5-table under Chandy–Misra. The acyclic orientation breaks
// rotational symmetry, so the automorphism group may be trivial — the
// point is that every mode still returns the same verdict within the
// same bound.
func TestOrientedTableVerdictEquivalence(t *testing.T) {
	s, err := OrientedTable(5, SingleFlipOrientation(5))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ChandyMisraProgram(1)
	if err != nil {
		t.Fatal(err)
	}
	modes := reportsForModes(t, s, prog, 15_000)
	seq := modes["seq"]
	if seq.ExclusionViolated != nil || seq.Deadlocked != nil {
		t.Fatalf("Chandy–Misra should be safe within the bound: %+v", seq)
	}
	for name, rep := range modes {
		if !sameVerdict(seq, rep) {
			t.Errorf("%s: verdict differs from sequential: %+v vs %+v", name, rep, seq)
		}
	}
	if modes["par"].StatesExplored != seq.StatesExplored && seq.Complete {
		t.Errorf("parallel explored %d states, sequential %d", modes["par"].StatesExplored, seq.StatesExplored)
	}
}
