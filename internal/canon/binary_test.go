package canon

import (
	"bytes"
	"testing"
)

func TestAppendLenPrefixedSelfDelimiting(t *testing.T) {
	join := func(parts ...string) []byte {
		var buf []byte
		for _, p := range parts {
			buf = AppendLenPrefixed(buf, p)
		}
		return buf
	}
	if bytes.Equal(join("ab", "c"), join("a", "bc")) {
		t.Error("length prefixes should keep component boundaries distinct")
	}
	if bytes.Equal(join("", "x"), join("x", "")) {
		t.Error("empty components must still delimit")
	}
	if !bytes.Equal(join("ab", "c"), join("ab", "c")) {
		t.Error("encoding should be deterministic")
	}
}

func TestHashBytesMatchesStringHash(t *testing.T) {
	// HashBytes over the canonical string must agree with Hash, so the
	// two fingerprint paths can interoperate.
	v := map[string]any{"pc": 3, "halted": false}
	if HashBytes([]byte(String(v))) != Hash(v) {
		t.Error("HashBytes([]byte(String(v))) should equal Hash(v)")
	}
}
