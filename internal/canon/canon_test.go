package canon

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestStringScalars(t *testing.T) {
	tests := []struct {
		name string
		in   any
		want string
	}{
		{"nil", nil, "nil"},
		{"true", true, "b:1"},
		{"false", false, "b:0"},
		{"int", 42, "i:42"},
		{"negative int", -7, "i:-7"},
		{"int64", int64(42), "i:42"},
		{"uint", uint(3), "u:3"},
		{"string", "hi", "s:2:hi"},
		{"empty string", "", "s:0:"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := String(tt.in); got != tt.want {
				t.Errorf("String(%v) = %q, want %q", tt.in, got, tt.want)
			}
		})
	}
}

func TestTypeTagsPreventCrossTypeCollisions(t *testing.T) {
	pairs := [][2]any{
		{1, "1"},
		{1, uint(1)},
		{true, 1},
		{[]any{1}, 1},
		{"", nil},
		{[]any{}, map[string]any{}},
	}
	for _, p := range pairs {
		if String(p[0]) == String(p[1]) {
			t.Errorf("collision: %#v and %#v both encode to %q", p[0], p[1], String(p[0]))
		}
	}
}

func TestStringDelimiterInjection(t *testing.T) {
	// Two structurally different values whose naive concatenation would
	// collide must still differ thanks to length prefixes.
	a := []any{"a,b", "c"}
	b := []any{"a", "b,c"}
	if String(a) == String(b) {
		t.Fatalf("delimiter injection collision: %q", String(a))
	}
}

func TestMapsEncodeSorted(t *testing.T) {
	m1 := map[string]int{"a": 1, "b": 2, "c": 3}
	m2 := map[string]int{"c": 3, "a": 1, "b": 2}
	if String(m1) != String(m2) {
		t.Errorf("map encodings differ: %q vs %q", String(m1), String(m2))
	}
	if !strings.Contains(String(m1), "m{") {
		t.Errorf("map encoding missing tag: %q", String(m1))
	}
}

func TestMultisetOrderIndependence(t *testing.T) {
	a := Multiset{1, 2, 2, "x"}
	b := Multiset{"x", 2, 1, 2}
	c := Multiset{1, 2, "x"}
	if String(a) != String(b) {
		t.Errorf("multiset not order independent: %q vs %q", String(a), String(b))
	}
	if String(a) == String(c) {
		t.Errorf("multiset lost multiplicity: %q", String(a))
	}
}

func TestNestedStructures(t *testing.T) {
	v1 := map[string]any{
		"pec":  Multiset{"l1", "l2"},
		"vec":  []any{Multiset{"a"}, Multiset{}},
		"done": false,
	}
	v2 := map[string]any{
		"done": false,
		"vec":  []any{Multiset{"a"}, Multiset{}},
		"pec":  Multiset{"l2", "l1"},
	}
	if !Equal(v1, v2) {
		t.Errorf("nested equal values got different encodings:\n%q\n%q", String(v1), String(v2))
	}
}

type point struct {
	X, Y int
}

func TestStructEncoding(t *testing.T) {
	if String(point{1, 2}) == String(point{2, 1}) {
		t.Error("struct field order collision")
	}
	if String(point{1, 2}) != String(point{1, 2}) {
		t.Error("struct encoding not deterministic")
	}
}

type custom string

func (c custom) CanonicalString() string { return "custom:" + string(c) }

func TestCanonicalInterface(t *testing.T) {
	got := String(custom("v"))
	if got != "c{custom:v}" {
		t.Errorf("String(custom) = %q", got)
	}
}

func TestPointerDereference(t *testing.T) {
	x := 5
	if String(&x) != String(5) {
		t.Errorf("pointer should encode as pointee: %q vs %q", String(&x), String(5))
	}
	var p *int
	if String(p) != "nil" {
		t.Errorf("nil pointer = %q, want nil", String(p))
	}
}

func TestUnsupportedKindsPoisoned(t *testing.T) {
	if !strings.Contains(String(1.5), "!unsupported") {
		t.Errorf("float should be poisoned, got %q", String(1.5))
	}
}

func TestEqualPropertyInts(t *testing.T) {
	f := func(a, b int) bool {
		return Equal(a, b) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualPropertyStrings(t *testing.T) {
	f := func(a, b string) bool {
		return Equal(a, b) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualPropertyStringSlices(t *testing.T) {
	f := func(a, b []string) bool {
		same := len(a) == len(b)
		if same {
			for i := range a {
				if a[i] != b[i] {
					same = false
					break
				}
			}
		}
		return Equal(a, b) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualPropertyMaps(t *testing.T) {
	f := func(a, b map[string]int) bool {
		same := len(a) == len(b)
		if same {
			for k, v := range a {
				if bv, ok := b[k]; !ok || bv != v {
					same = false
					break
				}
			}
		}
		return Equal(a, b) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashConsistentWithString(t *testing.T) {
	f := func(a []string) bool {
		// Deterministic, and equal for structurally equal values.
		cp := append([]string(nil), a...)
		return Hash(a) == Hash(a) && Hash(a) == Hash(cp)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Hash("x") == Hash("y") {
		t.Error("distinct tiny values should hash apart")
	}
}

func BenchmarkStringNestedState(b *testing.B) {
	state := map[string]any{
		"pc":     12,
		"pec":    Multiset{"l1", "l2", "l3"},
		"vec":    []any{Multiset{"a", "b"}, Multiset{"c"}},
		"locals": map[string]int{"count_left": 2, "count_right": 1},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = String(state)
	}
}

func TestReflectEdgeCases(t *testing.T) {
	// Arrays, nested pointers, interface nils, and typed ints go through
	// the reflection path.
	type wrap struct {
		A [2]int
		P *string
	}
	s := "v"
	if String(wrap{A: [2]int{1, 2}, P: &s}) == String(wrap{A: [2]int{2, 1}, P: &s}) {
		t.Error("array order collision")
	}
	if String(wrap{P: nil}) == String(wrap{P: &s}) {
		t.Error("nil pointer field collision")
	}
	type myInt int32
	if String(myInt(7)) != String(int32(7)) {
		t.Error("typed int should encode as its kind")
	}
	type myStr string
	if String(myStr("a")) != String("a") {
		t.Error("typed string should encode as its kind")
	}
	var iface any
	if String([]any{iface}) != String([]any{nil}) {
		t.Error("nil interface should encode as nil")
	}
	type unexported struct {
		X int
		y int
	}
	a := unexported{X: 1, y: 2}
	b := unexported{X: 1, y: 3}
	if String(a) != String(b) {
		t.Error("unexported fields must not affect encoding")
	}
	if String(map[int]string{1: "a", 2: "b"}) != String(map[int]string{2: "b", 1: "a"}) {
		t.Error("int-keyed maps should encode sorted")
	}
	var u uint8 = 3
	if String([]uint8{u}) == "" {
		t.Error("byte slices should encode")
	}
}
