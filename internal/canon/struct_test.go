package canon

import (
	"strings"
	"testing"

	"simsym/internal/system"
)

// Permutation is a deliberate name twin of system.Permutation with the
// same exported field names: before struct tags carried the package
// path, the two types encoded identically.
type Permutation struct {
	ProcPerm []int
	VarPerm  []int
}

func TestStructUnexportedFirstHasNoLeadingSeparator(t *testing.T) {
	type unexportedFirst struct {
		hidden int
		X      int
	}
	type twoHiddenFirst struct {
		a, b int
		X    int
	}
	_ = unexportedFirst{hidden: 1}.hidden
	_ = twoHiddenFirst{a: 1, b: 2}
	got := String(unexportedFirst{hidden: 9, X: 1})
	if strings.Contains(got, "{,") {
		t.Errorf("leading separator before first emitted field: %q", got)
	}
	if !strings.Contains(got, "{X=i:1}") {
		t.Errorf("first emitted field should follow the brace directly: %q", got)
	}
	got2 := String(twoHiddenFirst{X: 1})
	if strings.Contains(got2, "{,") {
		t.Errorf("leading separator with several unexported fields: %q", got2)
	}
	// The skipped-field shape must not alias an exported-only struct with
	// a different field set either.
	type onlyX struct{ X int }
	if String(unexportedFirst{X: 1}) == String(onlyX{X: 1}) {
		t.Error("distinct struct types with identical exported fields in the same package should still differ by name")
	}
}

func TestStructSeparatorsBetweenEmittedFields(t *testing.T) {
	type mixed struct {
		a int
		X int
		b int
		Y int
	}
	_ = mixed{a: 1, b: 2}
	got := String(mixed{X: 1, Y: 2})
	if !strings.Contains(got, "X=i:1,Y=i:2") {
		t.Errorf("emitted fields should be comma separated exactly once: %q", got)
	}
}

func TestCrossPackageNameTwinsDoNotCollide(t *testing.T) {
	local := Permutation{ProcPerm: []int{0, 1}, VarPerm: []int{1, 0}}
	remote := system.Permutation{ProcPerm: []int{0, 1}, VarPerm: []int{1, 0}}
	if String(local) == String(remote) {
		t.Fatalf("same-named structs from different packages collide: %q", String(local))
	}
	if !strings.Contains(String(remote), "simsym/internal/system.Permutation") {
		t.Errorf("struct tag should carry the package path: %q", String(remote))
	}
}
