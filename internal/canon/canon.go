// Package canon provides deterministic canonical encodings of Go values.
//
// Canonical encodings serve as state fingerprints throughout simsym: two
// values have the same encoding if and only if they are structurally equal
// under the rules below. The encoding is used to compare processor states
// (Theorem 2's "same state at the same time"), to key model-checker visited
// sets, and to encode the unordered multisets held by Q-variables.
//
// Supported value shapes:
//
//   - nil
//   - bool, all integer kinds, string
//   - []T (ordered sequence)
//   - map[K]V (encoded with keys sorted by their own canonical encoding)
//   - Multiset (unordered collection, encoded sorted)
//   - any type implementing Canonical
//
// Floats are deliberately unsupported: the paper's state spaces are
// discrete, and float NaN semantics would break the equality contract.
package canon

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"
)

// Canonical is implemented by types that define their own canonical form.
type Canonical interface {
	// CanonicalString returns a deterministic encoding of the value.
	// Two values must return the same string iff they are equal.
	CanonicalString() string
}

// Multiset is an unordered collection of values. Its canonical encoding
// sorts the element encodings, so element order never matters. It models
// the subvalue multisets returned by the Q instruction set's peek.
type Multiset []any

var _ Canonical = Multiset(nil)

// CanonicalString implements Canonical.
func (m Multiset) CanonicalString() string {
	elems := make([]string, len(m))
	for i, e := range m {
		elems[i] = String(e)
	}
	sort.Strings(elems)
	var b strings.Builder
	b.WriteString("ms{")
	for i, e := range elems {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(e)
	}
	b.WriteByte('}')
	return b.String()
}

// String returns the canonical encoding of v.
//
// Encodings are self-delimiting and type-tagged, so values of different
// dynamic types never collide (e.g. int(1) encodes as "i:1" while the
// string "1" encodes as `s:1:"1"`).
func String(v any) string {
	var b strings.Builder
	encode(&b, v)
	return b.String()
}

// Equal reports whether a and b have identical canonical encodings.
func Equal(a, b any) bool { return String(a) == String(b) }

func encode(b *strings.Builder, v any) {
	if v == nil {
		b.WriteString("nil")
		return
	}
	if c, ok := v.(Canonical); ok {
		b.WriteString("c{")
		b.WriteString(c.CanonicalString())
		b.WriteByte('}')
		return
	}
	switch x := v.(type) {
	case bool:
		if x {
			b.WriteString("b:1")
		} else {
			b.WriteString("b:0")
		}
		return
	case int:
		encodeInt(b, int64(x))
		return
	case int8:
		encodeInt(b, int64(x))
		return
	case int16:
		encodeInt(b, int64(x))
		return
	case int32:
		encodeInt(b, int64(x))
		return
	case int64:
		encodeInt(b, x)
		return
	case uint:
		encodeUint(b, uint64(x))
		return
	case uint8:
		encodeUint(b, uint64(x))
		return
	case uint16:
		encodeUint(b, uint64(x))
		return
	case uint32:
		encodeUint(b, uint64(x))
		return
	case uint64:
		encodeUint(b, x)
		return
	case string:
		encodeString(b, x)
		return
	case []any:
		b.WriteString("l[")
		for i, e := range x {
			if i > 0 {
				b.WriteByte(',')
			}
			encode(b, e)
		}
		b.WriteByte(']')
		return
	case []string:
		b.WriteString("l[")
		for i, e := range x {
			if i > 0 {
				b.WriteByte(',')
			}
			encodeString(b, e)
		}
		b.WriteByte(']')
		return
	case []int:
		b.WriteString("l[")
		for i, e := range x {
			if i > 0 {
				b.WriteByte(',')
			}
			encodeInt(b, int64(e))
		}
		b.WriteByte(']')
		return
	case map[string]any:
		encodeMapReflect(b, reflect.ValueOf(x))
		return
	case map[string]string:
		encodeMapReflect(b, reflect.ValueOf(x))
		return
	case map[string]bool:
		encodeMapReflect(b, reflect.ValueOf(x))
		return
	case map[string]int:
		encodeMapReflect(b, reflect.ValueOf(x))
		return
	}
	encodeReflect(b, reflect.ValueOf(v))
}

func encodeInt(b *strings.Builder, x int64) {
	b.WriteString("i:")
	b.WriteString(strconv.FormatInt(x, 10))
}

func encodeUint(b *strings.Builder, x uint64) {
	b.WriteString("u:")
	b.WriteString(strconv.FormatUint(x, 10))
}

func encodeString(b *strings.Builder, s string) {
	// Length-prefixed so embedded delimiters cannot cause collisions.
	b.WriteString("s:")
	b.WriteString(strconv.Itoa(len(s)))
	b.WriteByte(':')
	b.WriteString(s)
}

func encodeReflect(b *strings.Builder, rv reflect.Value) {
	switch rv.Kind() {
	case reflect.Pointer, reflect.Interface:
		if rv.IsNil() {
			b.WriteString("nil")
			return
		}
		encode(b, rv.Elem().Interface())
	case reflect.Slice, reflect.Array:
		b.WriteString("l[")
		for i := 0; i < rv.Len(); i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			encode(b, rv.Index(i).Interface())
		}
		b.WriteByte(']')
	case reflect.Map:
		encodeMapReflect(b, rv)
	case reflect.Struct:
		// Tag with the package path so same-named struct types from
		// different packages cannot collide.
		b.WriteString("t:")
		b.WriteString(rv.Type().PkgPath())
		b.WriteByte('.')
		b.WriteString(rv.Type().Name())
		b.WriteByte('{')
		emitted := 0
		for i := 0; i < rv.NumField(); i++ {
			if !rv.Type().Field(i).IsExported() {
				continue
			}
			if emitted > 0 {
				b.WriteByte(',')
			}
			emitted++
			b.WriteString(rv.Type().Field(i).Name)
			b.WriteByte('=')
			encode(b, rv.Field(i).Interface())
		}
		b.WriteByte('}')
	case reflect.Bool:
		if rv.Bool() {
			b.WriteString("b:1")
		} else {
			b.WriteString("b:0")
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		encodeInt(b, rv.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		encodeUint(b, rv.Uint())
	case reflect.String:
		encodeString(b, rv.String())
	default:
		// Unsupported kinds (floats, chans, funcs) get a poisoned tag so
		// that accidental use is loudly visible in fingerprints rather
		// than silently colliding.
		fmt.Fprintf(b, "!unsupported:%s", rv.Kind())
	}
}

func encodeMapReflect(b *strings.Builder, rv reflect.Value) {
	type kv struct{ k, v string }
	pairs := make([]kv, 0, rv.Len())
	iter := rv.MapRange()
	for iter.Next() {
		pairs = append(pairs, kv{
			k: String(iter.Key().Interface()),
			v: String(iter.Value().Interface()),
		})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].k != pairs[j].k {
			return pairs[i].k < pairs[j].k
		}
		return pairs[i].v < pairs[j].v
	})
	b.WriteString("m{")
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteByte('>')
		b.WriteString(p.v)
	}
	b.WriteByte('}')
}

// Hash returns a 64-bit FNV-1a hash of the canonical encoding of v.
// It is a convenience for map keys where the full encoding is too large;
// callers that need collision-freedom should key on String instead.
func Hash(v any) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	s := String(v)
	var h uint64 = offset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// AppendLenPrefixed appends a length-prefixed copy of s to buf and
// returns the extended slice. The uvarint length prefix makes the
// concatenation of several components self-delimiting, so distinct
// component sequences can never alias — the binary companion of the
// encodeString length prefix. It is the building block of the model
// checker's compact state keys (machine.AppendStateKey).
func AppendLenPrefixed(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// HashBytes returns the 64-bit FNV-1a hash of b. It is the byte-slice
// companion of Hash/HashTokens: the model checker's visited index keys
// its buckets on it and confirms hits by comparing the exact encodings,
// so hash quality affects only speed, never correctness.
func HashBytes(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= prime64
	}
	return h
}

// State-key delta encoding.
//
// A model-checker state key (machine.AppendStateKey) is a sequence of
// uvarint-length-prefixed components — one per processor frame and one
// per shared variable. Successive BFS states differ in very few
// components (one stepped frame, at most a couple of touched variables),
// so a key can be stored as a patch against a nearby ancestor key: the
// delta encodes only the components that differ. The encoding is
//
//	uvarint(changed) (uvarint(index) component)*
//
// where each component is its original self-delimiting length-prefixed
// unit and indices are strictly increasing. The codec is deterministic:
// equal (base, key) pairs always produce byte-identical deltas, and
// ApplyKeyDelta(base, AppendKeyDelta(base, key)) == key exactly. The
// model checker's sharded visited index stores cold keys this way.

// keyUnitEnd returns the end offset of the length-prefixed unit starting
// at off, or -1 when the framing is malformed.
func keyUnitEnd(key []byte, off int) int {
	n, w := binary.Uvarint(key[off:])
	if w <= 0 {
		return -1
	}
	end := off + w + int(n)
	if end > len(key) {
		return -1
	}
	return end
}

// AppendKeyDelta appends to dst a delta encoding key relative to base
// and returns the extended slice. ok is false — and dst is returned
// unchanged — when the two keys are not comparable (different component
// counts or malformed framing); the caller should then store key in
// full. An empty delta (changed=0) is valid and means key == base.
func AppendKeyDelta(dst, base, key []byte) (out []byte, ok bool) {
	// Two passes over the framing: count the changed components (the
	// uvarint count prefix must be emitted first), then emit the patches.
	mark := len(dst)
	var changed uint64
	bo, ko := 0, 0
	for bo < len(base) && ko < len(key) {
		be, ke := keyUnitEnd(base, bo), keyUnitEnd(key, ko)
		if be < 0 || ke < 0 {
			return dst[:mark], false
		}
		if !bytes.Equal(base[bo:be], key[ko:ke]) {
			changed++
		}
		bo, ko = be, ke
	}
	if bo != len(base) || ko != len(key) {
		// Component counts differ or trailing garbage.
		return dst[:mark], false
	}
	dst = binary.AppendUvarint(dst, changed)
	bo, ko = 0, 0
	idx := uint64(0)
	for bo < len(base) && ko < len(key) {
		be, ke := keyUnitEnd(base, bo), keyUnitEnd(key, ko)
		if !bytes.Equal(base[bo:be], key[ko:ke]) {
			dst = binary.AppendUvarint(dst, idx)
			dst = append(dst, key[ko:ke]...)
		}
		bo, ko = be, ke
		idx++
	}
	return dst, true
}

// ApplyKeyDelta appends to dst the key encoded by delta relative to base
// and returns the extended slice. It is the exact inverse of
// AppendKeyDelta for the (base, key) pair that produced delta.
func ApplyKeyDelta(dst, base, delta []byte) ([]byte, error) {
	changed, w := binary.Uvarint(delta)
	if w <= 0 {
		return dst, fmt.Errorf("canon: key delta: bad count")
	}
	do := w
	nextIdx, haveNext := uint64(0), false
	advance := func() error {
		if changed == 0 {
			haveNext = false
			return nil
		}
		i, w := binary.Uvarint(delta[do:])
		if w <= 0 {
			return fmt.Errorf("canon: key delta: bad index")
		}
		do += w
		nextIdx, haveNext = i, true
		changed--
		return nil
	}
	if err := advance(); err != nil {
		return dst, err
	}
	bo := 0
	for idx := uint64(0); bo < len(base); idx++ {
		be := keyUnitEnd(base, bo)
		if be < 0 {
			return dst, fmt.Errorf("canon: key delta: malformed base")
		}
		if haveNext && nextIdx == idx {
			de := keyUnitEnd(delta, do)
			if de < 0 {
				return dst, fmt.Errorf("canon: key delta: malformed component")
			}
			dst = append(dst, delta[do:de]...)
			do = de
			if err := advance(); err != nil {
				return dst, err
			}
		} else {
			dst = append(dst, base[bo:be]...)
		}
		bo = be
	}
	if haveNext || do != len(delta) {
		return dst, fmt.Errorf("canon: key delta: component index out of range")
	}
	return dst, nil
}

// KeyDeltaEqual reports whether applying delta to base yields exactly
// key, without materializing the decoded result. It is the visited
// index's hot dedup comparison: a streaming walk that memcmp-s patched
// and copied components directly against the candidate key.
func KeyDeltaEqual(base, delta, key []byte) bool {
	changed, w := binary.Uvarint(delta)
	if w <= 0 {
		return false
	}
	do := w
	nextIdx, haveNext := uint64(0), false
	advance := func() bool {
		if changed == 0 {
			haveNext = false
			return true
		}
		i, w := binary.Uvarint(delta[do:])
		if w <= 0 {
			return false
		}
		do += w
		nextIdx, haveNext = i, true
		changed--
		return true
	}
	if !advance() {
		return false
	}
	bo, ko := 0, 0
	for idx := uint64(0); bo < len(base); idx++ {
		be := keyUnitEnd(base, bo)
		if be < 0 {
			return false
		}
		var unit []byte
		if haveNext && nextIdx == idx {
			de := keyUnitEnd(delta, do)
			if de < 0 {
				return false
			}
			unit = delta[do:de]
			do = de
			if !advance() {
				return false
			}
		} else {
			unit = base[bo:be]
		}
		if ko+len(unit) > len(key) || !bytes.Equal(key[ko:ko+len(unit)], unit) {
			return false
		}
		ko += len(unit)
		bo = be
	}
	return !haveNext && do == len(delta) && ko == len(key)
}

// HashTokens returns a 64-bit FNV-1a hash of a uint64 token stream,
// folding each token a byte at a time in little-endian order. It is the
// token-stream companion of Hash: the interned-signature tables of the
// partition package key their buckets on it and resolve collisions by
// comparing the token sequences themselves, so hash quality affects only
// speed, never correctness.
func HashTokens(tokens []uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for _, t := range tokens {
		for s := 0; s < 64; s += 8 {
			h ^= (t >> s) & 0xff
			h *= prime64
		}
	}
	return h
}
