package canon

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// buildKey assembles a state key from components the way
// machine.AppendStateKey does: uvarint-length-prefixed concatenation.
func buildKey(components []string) []byte {
	var buf []byte
	for _, c := range components {
		buf = AppendLenPrefixed(buf, c)
	}
	return buf
}

func TestKeyDeltaRoundTrip(t *testing.T) {
	base := buildKey([]string{"pc=0", "pc=1,halted", "x=taken", "", "lock:2"})
	cases := [][]string{
		{"pc=0", "pc=1,halted", "x=taken", "", "lock:2"},         // identical
		{"pc=7", "pc=1,halted", "x=taken", "", "lock:2"},         // first changed
		{"pc=0", "pc=1,halted", "x=taken", "", "lock:0"},         // last changed
		{"pc=0", "pc=2", "x=free", "", "lock:2"},                 // middle pair
		{"a", "b", "c", "d", "e"},                                // all changed
		{"pc=0", "pc=1,halted", "x=taken", "nonempty", "lock:2"}, // empty -> set
	}
	for i, comps := range cases {
		key := buildKey(comps)
		delta, ok := AppendKeyDelta(nil, base, key)
		if !ok {
			t.Fatalf("case %d: delta should be encodable", i)
		}
		back, err := ApplyKeyDelta(nil, base, delta)
		if err != nil {
			t.Fatalf("case %d: apply: %v", i, err)
		}
		if !bytes.Equal(back, key) {
			t.Errorf("case %d: round trip mismatch: %q vs %q", i, back, key)
		}
		if !KeyDeltaEqual(base, delta, key) {
			t.Errorf("case %d: KeyDeltaEqual should accept the round trip", i)
		}
		// The streaming comparison must reject every other case's key.
		for j, other := range cases {
			if j == i {
				continue
			}
			if KeyDeltaEqual(base, delta, buildKey(other)) {
				t.Errorf("case %d: delta must not match case %d's key", i, j)
			}
		}
	}
}

func TestKeyDeltaDeterministic(t *testing.T) {
	base := buildKey([]string{"a", "bb", "ccc"})
	key := buildKey([]string{"a", "xx", "ccc"})
	d1, ok1 := AppendKeyDelta(nil, base, key)
	d2, ok2 := AppendKeyDelta(nil, base, key)
	if !ok1 || !ok2 || !bytes.Equal(d1, d2) {
		t.Fatalf("delta encoding must be deterministic: %v %v", d1, d2)
	}
}

func TestKeyDeltaIncomparable(t *testing.T) {
	base := buildKey([]string{"a", "b", "c"})
	// Different component count: not delta-encodable.
	if _, ok := AppendKeyDelta(nil, base, buildKey([]string{"a", "b"})); ok {
		t.Error("shorter key must not be delta-encodable")
	}
	if _, ok := AppendKeyDelta(nil, base, buildKey([]string{"a", "b", "c", "d"})); ok {
		t.Error("longer key must not be delta-encodable")
	}
	// Malformed framing: a truncated length prefix.
	if _, ok := AppendKeyDelta(nil, base, []byte{0xff}); ok {
		t.Error("malformed key must not be delta-encodable")
	}
	if _, ok := AppendKeyDelta(nil, []byte{0xff}, base); ok {
		t.Error("malformed base must not be delta-encodable")
	}
	// dst must come back unchanged on failure.
	dst := []byte("prefix")
	out, ok := AppendKeyDelta(dst, base, buildKey([]string{"a"}))
	if ok || !bytes.Equal(out, []byte("prefix")) {
		t.Errorf("failed encode must leave dst unchanged, got %q", out)
	}
}

func TestApplyKeyDeltaRejectsGarbage(t *testing.T) {
	base := buildKey([]string{"a", "b"})
	for _, bad := range [][]byte{
		{},             // missing count
		{2, 0},         // count 2 but one truncated patch
		{1, 9, 1, 'x'}, // index 9 out of range
		{1, 0, 0xff},   // malformed component
		append(append([]byte{1, 0}, AppendLenPrefixed(nil, "z")...), 0x7), // trailing garbage
	} {
		if _, err := ApplyKeyDelta(nil, base, bad); err == nil {
			t.Errorf("delta %v should be rejected", bad)
		}
		if KeyDeltaEqual(base, bad, base) {
			t.Errorf("KeyDeltaEqual must reject delta %v", bad)
		}
	}
}

// TestKeyDeltaQuick fuzzes the codec with random component vectors: the
// round trip must be exact and the streaming comparison must agree with
// the materialized comparison on both equal and perturbed keys.
func TestKeyDeltaQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 500; iter++ {
		n := 1 + rng.Intn(12)
		baseC := make([]string, n)
		keyC := make([]string, n)
		for i := range baseC {
			baseC[i] = fmt.Sprintf("c%d=%d", i, rng.Intn(4))
			if rng.Intn(3) == 0 {
				keyC[i] = fmt.Sprintf("c%d=%d!", i, rng.Intn(4))
			} else {
				keyC[i] = baseC[i]
			}
		}
		base, key := buildKey(baseC), buildKey(keyC)
		delta, ok := AppendKeyDelta(nil, base, key)
		if !ok {
			t.Fatalf("iter %d: same-arity keys must be encodable", iter)
		}
		back, err := ApplyKeyDelta(nil, base, delta)
		if err != nil || !bytes.Equal(back, key) {
			t.Fatalf("iter %d: round trip failed: %v", iter, err)
		}
		if !KeyDeltaEqual(base, delta, key) {
			t.Fatalf("iter %d: streaming equal disagreed on equal keys", iter)
		}
		// Perturb one component of key: the comparison must fail.
		j := rng.Intn(n)
		mut := append([]string(nil), keyC...)
		mut[j] += "#"
		if KeyDeltaEqual(base, delta, buildKey(mut)) {
			t.Fatalf("iter %d: streaming equal accepted a perturbed key", iter)
		}
	}
}
