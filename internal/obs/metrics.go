package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonic cumulative counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta (negative deltas are ignored:
// counters are monotonic by contract).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// histBuckets is the number of power-of-two latency buckets: bucket i
// counts samples with d < 2^i nanoseconds (the last bucket is +Inf), so
// the range spans 1ns to ~34s with no configuration.
const histBuckets = 36

// Histogram is a fixed-shape latency histogram over power-of-two
// nanosecond buckets. The zero value is ready to use; all methods are
// safe for concurrent use.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// Observe records one duration sample.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns)) // smallest i with ns < 2^i
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile returns an upper-bound estimate of the q-quantile (0..1)
// from the bucket boundaries, or 0 with no samples.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum > rank {
			return time.Duration(int64(1) << uint(i))
		}
	}
	return time.Duration(int64(1) << (histBuckets - 1))
}

// Registry holds named counters and histograms. The zero value is not
// usable; construct with NewRegistry. Lookup interns on first use, so
// call sites never pre-register.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	histos map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		histos: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (g *Registry) Counter(name string) *Counter {
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.counts[name]
	if !ok {
		c = &Counter{}
		g.counts[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (g *Registry) Histogram(name string) *Histogram {
	g.mu.Lock()
	defer g.mu.Unlock()
	h, ok := g.histos[name]
	if !ok {
		h = &Histogram{}
		g.histos[name] = h
	}
	return h
}

// sanitizeMetricName maps registry names onto the Prometheus metric
// grammar: dots and dashes become underscores, anything else
// non-alphanumeric is dropped.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		case r == '.', r == '-', r == '/':
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteText renders every metric in Prometheus text exposition format,
// sorted by name for deterministic output: counters as
// simsym_<name>_total, histograms as cumulative _bucket series plus
// _sum and _count. This is what the daemons' -metrics flag prints and
// what their /metrics endpoint serves.
func (g *Registry) WriteText(w io.Writer) error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	counterNames := make([]string, 0, len(g.counts))
	for name := range g.counts {
		counterNames = append(counterNames, name)
	}
	histoNames := make([]string, 0, len(g.histos))
	for name := range g.histos {
		histoNames = append(histoNames, name)
	}
	counters := make(map[string]*Counter, len(g.counts))
	for name, c := range g.counts {
		counters[name] = c
	}
	histos := make(map[string]*Histogram, len(g.histos))
	for name, h := range g.histos {
		histos[name] = h
	}
	g.mu.Unlock()

	sort.Strings(counterNames)
	sort.Strings(histoNames)
	for _, name := range counterNames {
		metric := "simsym_" + sanitizeMetricName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", metric, metric, counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range histoNames {
		h := histos[name]
		metric := "simsym_" + sanitizeMetricName(name) + "_seconds"
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", metric); err != nil {
			return err
		}
		var cum int64
		for i := 0; i < histBuckets; i++ {
			n := h.buckets[i].Load()
			cum += n
			if n == 0 && i < histBuckets-1 {
				continue // elide empty interior buckets; the series stays cumulative
			}
			le := "+Inf"
			if i < histBuckets-1 {
				le = fmt.Sprintf("%g", float64(int64(1)<<uint(i))/1e9)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", metric, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", metric, h.Sum().Seconds(), metric, h.Count()); err != nil {
			return err
		}
	}
	return nil
}
