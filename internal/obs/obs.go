// Package obs is the repository's unified observability layer: a
// zero-dependency structured-event and metrics substrate that every
// subsystem — partition refinement (core), the model checker (mc), the
// VM's streaming runs (machine), and the adversary harness — emits into,
// and that the daemons expose through -metrics / -trace-jsonl flags.
//
// The design splits observation into two planes:
//
//   - Events are discrete, typed records (phase start/end, refinement
//     round, state expansion, scheduler step, fault injection, check
//     verdict, stat) delivered in order to a pluggable Sink. Events
//     carry no wall-clock timestamps, so a run's event stream is
//     deterministic and replayable — the golden-file tests depend on
//     that.
//   - Metrics are cumulative: monotonic counters and latency histograms
//     aggregated in a Registry, rendered on demand in Prometheus text
//     exposition format. Durations live here, never in events.
//
// A *Recorder ties the two planes together. Every Recorder method is
// safe on a nil receiver and does nothing there, so instrumented hot
// paths pay a single nil check when observation is off — the facade and
// the internal packages thread a possibly-nil *Recorder unconditionally.
package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Kind identifies an event type.
type Kind uint8

// Event kinds. The taxonomy is deliberately small: one kind per
// subsystem activity the paper's experiments need to see, not one per
// call site.
const (
	// KindPhaseStart marks entry into a named unit of work
	// (e.g. "core.similarity", "mc.check", "harness.run").
	KindPhaseStart Kind = iota + 1
	// KindPhaseEnd marks completion of a named phase; A counts the
	// phase's primary work items (rounds, states, slots).
	KindPhaseEnd
	// KindRefineRound reports one partition-refinement round (worklist /
	// naive drivers) or splitter iteration (Hopcroft): A=round,
	// B=classes after the round, C=classes split this round.
	KindRefineRound
	// KindStateExpansion reports model-checker progress, one event per
	// completed BFS level: A=states explored, B=depth, C=transitions.
	KindStateExpansion
	// KindSchedStep reports one scheduler-driven machine step:
	// A=slot (or step index), B=processor, C=1 if the step executed
	// (0 for a burned slot: halted or crashed pick).
	KindSchedStep
	// KindFault reports one injected fault: Name is the fault class
	// ("crash", "stall", "lockdrop"), A=slot, B=target index.
	KindFault
	// KindVerdict reports a check's outcome: Name is the check,
	// A=1 for pass / 0 for violation, Detail carries the reason.
	KindVerdict
	// KindStat reports a named point statistic: A=value.
	KindStat
	// KindSpill reports one visited-index spill flush: Name is the
	// engine, A=bytes moved to disk by this flush, B=total bytes on
	// disk after it, C=flush ordinal. Spill events are deterministic:
	// they depend only on configured byte budgets and the explored
	// state space, never on wall-clock time.
	KindSpill
	// KindSample reports statistical-checker progress, one event per
	// merged sampling round: Name is the engine, A=trials merged so
	// far, B=violations among them, C=the stopping-rule target sample
	// count. Sample events are deterministic: trials are seeded per
	// index and merged in index order, so the stream depends only on
	// (seed, options), never on worker interleaving or wall-clock time.
	KindSample

	// KindRelabel reports one incremental relabel event of a dynamic
	// similarity engine: Name is the driver, A=slots touched by the
	// mutation, B=classes split, C=classes merged. Detail carries the
	// event kind ("join", "leave", "crash", ...) when known. Like all
	// events the stream is deterministic: it depends only on the
	// mutation trace, never on timing.
	KindRelabel
)

var kindNames = map[Kind]string{
	KindPhaseStart:     "phase_start",
	KindPhaseEnd:       "phase_end",
	KindRefineRound:    "refine_round",
	KindStateExpansion: "state_expansion",
	KindSchedStep:      "sched_step",
	KindFault:          "fault",
	KindVerdict:        "verdict",
	KindStat:           "stat",
	KindSpill:          "spill",
	KindSample:         "sample",
	KindRelabel:        "relabel",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindFromString inverts Kind.String; ok is false for unknown names.
func KindFromString(s string) (Kind, bool) {
	for k, name := range kindNames {
		if name == s {
			return k, true
		}
	}
	return 0, false
}

// MarshalJSON renders the kind as its string name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON parses the string name produced by MarshalJSON.
func (k *Kind) UnmarshalJSON(data []byte) error {
	if len(data) < 2 || data[0] != '"' || data[len(data)-1] != '"' {
		return fmt.Errorf("obs: kind must be a JSON string, got %s", data)
	}
	got, ok := KindFromString(string(data[1 : len(data)-1]))
	if !ok {
		return fmt.Errorf("obs: unknown event kind %s", data)
	}
	*k = got
	return nil
}

// Event is one structured observation. The payload fields A, B, C are
// kind-specific (documented on each Kind); unused fields are zero.
// Events are plain values: sinks may retain them.
type Event struct {
	// Seq is the recorder-assigned sequence number, starting at 1.
	// Within one goroutine, later emissions always carry larger Seq.
	Seq uint64 `json:"seq"`
	// Kind is the event type.
	Kind Kind `json:"kind"`
	// Name scopes the event (phase name, fault class, check name).
	Name string `json:"name,omitempty"`
	// A, B, C are the kind-specific numeric payload.
	A int64 `json:"a,omitempty"`
	B int64 `json:"b,omitempty"`
	C int64 `json:"c,omitempty"`
	// Detail is a human-readable elaboration (verdict reasons).
	Detail string `json:"detail,omitempty"`
}

// Sink receives emitted events. Emit must be safe for concurrent use;
// it must not block indefinitely (recorders sit on hot paths).
type Sink interface {
	Emit(Event)
}

// Discard is the no-op sink: every event is dropped.
var Discard Sink = discard{}

type discard struct{}

func (discard) Emit(Event) {}

// Recorder is the handle instrumented code emits through. A nil
// *Recorder is valid and records nothing; Enabled distinguishes the two
// without branching at every call site. Recorders are safe for
// concurrent use.
type Recorder struct {
	sink Sink
	reg  *Registry
	seq  atomic.Uint64
}

// New returns a Recorder emitting events to sink (Discard when nil)
// with a fresh metrics Registry.
func New(sink Sink) *Recorder {
	if sink == nil {
		sink = Discard
	}
	return &Recorder{sink: sink, reg: NewRegistry()}
}

// Enabled reports whether the recorder records anything; instrumented
// code may use it to skip building expensive payloads.
func (r *Recorder) Enabled() bool { return r != nil }

// Metrics returns the recorder's metrics registry (nil on a nil
// recorder).
func (r *Recorder) Metrics() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Emit assigns the next sequence number and delivers e to the sink.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	e.Seq = r.seq.Add(1)
	r.sink.Emit(e)
}

// PhaseStart emits a KindPhaseStart event for name.
func (r *Recorder) PhaseStart(name string) {
	if r == nil {
		return
	}
	r.Emit(Event{Kind: KindPhaseStart, Name: name})
}

// PhaseEnd emits a KindPhaseEnd event for name; items counts the
// phase's primary work units.
func (r *Recorder) PhaseEnd(name string, items int64) {
	if r == nil {
		return
	}
	r.Emit(Event{Kind: KindPhaseEnd, Name: name, A: items})
}

// RefineRound emits one partition-refinement round under the named
// driver.
func (r *Recorder) RefineRound(driver string, round, classes, splits int) {
	if r == nil {
		return
	}
	r.Emit(Event{Kind: KindRefineRound, Name: driver, A: int64(round), B: int64(classes), C: int64(splits)})
}

// Relabel emits one incremental-relabel event: touched slots, splits,
// and merges for a single topology mutation, with the mutation kind in
// Detail.
func (r *Recorder) Relabel(driver string, touched, splits, merges int, event string) {
	if r == nil {
		return
	}
	r.Emit(Event{Kind: KindRelabel, Name: driver, A: int64(touched), B: int64(splits), C: int64(merges), Detail: event})
}

// StateExpansion emits one model-checker progress event.
func (r *Recorder) StateExpansion(engine string, states int, depth int, transitions int64) {
	if r == nil {
		return
	}
	r.Emit(Event{Kind: KindStateExpansion, Name: engine, A: int64(states), B: int64(depth), C: transitions})
}

// SchedStep emits one scheduler-driven step of processor proc at slot.
func (r *Recorder) SchedStep(slot, proc int, stepped bool) {
	if r == nil {
		return
	}
	c := int64(0)
	if stepped {
		c = 1
	}
	r.Emit(Event{Kind: KindSchedStep, A: int64(slot), B: int64(proc), C: c})
}

// Fault emits one injected fault of the given class against target.
func (r *Recorder) Fault(class string, slot, target int) {
	if r == nil {
		return
	}
	r.Emit(Event{Kind: KindFault, Name: class, A: int64(slot), B: int64(target)})
}

// Verdict emits a check outcome; detail elaborates failures.
func (r *Recorder) Verdict(check string, ok bool, detail string) {
	if r == nil {
		return
	}
	a := int64(0)
	if ok {
		a = 1
	}
	r.Emit(Event{Kind: KindVerdict, Name: check, A: a, Detail: detail})
}

// Stat emits a named point statistic.
func (r *Recorder) Stat(name string, v int64) {
	if r == nil {
		return
	}
	r.Emit(Event{Kind: KindStat, Name: name, A: v})
}

// Spill emits one visited-index spill flush for the named engine:
// bytes moved to disk by this flush, the resulting on-disk total, and
// the flush ordinal.
func (r *Recorder) Spill(engine string, bytes, total, flush int64) {
	if r == nil {
		return
	}
	r.Emit(Event{Kind: KindSpill, Name: engine, A: bytes, B: total, C: flush})
}

// SampleRound emits one merged statistical-checker round for the named
// engine: trials merged so far, violations among them, and the
// stopping-rule target.
func (r *Recorder) SampleRound(engine string, samples, violations, target int) {
	if r == nil {
		return
	}
	r.Emit(Event{Kind: KindSample, Name: engine, A: int64(samples), B: int64(violations), C: int64(target)})
}

// Count adds delta to the named monotonic counter.
func (r *Recorder) Count(name string, delta int64) {
	if r == nil {
		return
	}
	r.reg.Counter(name).Add(delta)
}

// Observe records one latency sample into the named histogram.
func (r *Recorder) Observe(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.reg.Histogram(name).Observe(d)
}
