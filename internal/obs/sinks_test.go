package obs

import (
	"bytes"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestRingConcurrentEmitOrdering hammers one recorder + ring from many
// goroutines under -race and checks the sink's ordering contract: no
// event is lost or duplicated, and each goroutine's events appear in
// its own program order (B carries the per-goroutine emission index).
func TestRingConcurrentEmitOrdering(t *testing.T) {
	const goroutines = 8
	const perG = 500
	ring := NewRing(goroutines * perG)
	r := New(ring)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Emit(Event{Kind: KindSchedStep, A: int64(g), B: int64(i)})
			}
		}(g)
	}
	wg.Wait()

	evs := ring.Events()
	if len(evs) != goroutines*perG {
		t.Fatalf("retained %d events, want %d", len(evs), goroutines*perG)
	}
	if ring.Dropped() != 0 {
		t.Fatalf("dropped %d events, want 0", ring.Dropped())
	}
	// Every sequence number 1..N appears exactly once.
	seqs := make([]int, 0, len(evs))
	perGoroutine := make(map[int64][]int64)
	for _, e := range evs {
		seqs = append(seqs, int(e.Seq))
		perGoroutine[e.A] = append(perGoroutine[e.A], e.B)
	}
	sort.Ints(seqs)
	for i, s := range seqs {
		if s != i+1 {
			t.Fatalf("sequence numbers not a permutation of 1..N: position %d holds %d", i, s)
		}
	}
	// Arrival order preserves each goroutine's emission order.
	for g, idxs := range perGoroutine {
		if len(idxs) != perG {
			t.Fatalf("goroutine %d: %d events retained, want %d", g, len(idxs), perG)
		}
		for i, idx := range idxs {
			if idx != int64(i) {
				t.Fatalf("goroutine %d: event %d arrived out of program order (B=%d)", g, i, idx)
			}
		}
	}
}

// TestRingEviction checks capacity bounds: the ring keeps the newest
// events and accounts for evictions.
func TestRingEviction(t *testing.T) {
	ring := NewRing(4)
	r := New(ring)
	for i := 0; i < 10; i++ {
		r.Stat("i", int64(i))
	}
	if ring.Len() != 4 {
		t.Fatalf("ring length %d, want 4", ring.Len())
	}
	if ring.Total() != 10 || ring.Dropped() != 6 {
		t.Fatalf("total=%d dropped=%d, want 10/6", ring.Total(), ring.Dropped())
	}
	evs := ring.Events()
	for i, e := range evs {
		if want := int64(6 + i); e.A != want {
			t.Fatalf("retained event %d carries %d, want %d (newest-first eviction)", i, e.A, want)
		}
	}
	if n := ring.CountByKind()[KindStat]; n != 4 {
		t.Fatalf("CountByKind[stat] = %d, want 4", n)
	}
	if NewRing(0).cap != DefaultRingCapacity {
		t.Fatal("capacity default not applied")
	}
}

// TestJSONLRoundTrip encodes a representative event stream and decodes
// it back identically.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	r := New(sink)
	r.PhaseStart("mc.check")
	r.StateExpansion("mc", 120, 3, 456)
	r.Fault("lockdrop", 17, 2)
	r.Verdict("dining.exclusion", false, `adjacent philosophers 0 and 1 eating "together"`)
	r.PhaseEnd("mc.check", 120)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	want := []Event{
		{Seq: 1, Kind: KindPhaseStart, Name: "mc.check"},
		{Seq: 2, Kind: KindStateExpansion, Name: "mc", A: 120, B: 3, C: 456},
		{Seq: 3, Kind: KindFault, Name: "lockdrop", A: 17, B: 2},
		{Seq: 4, Kind: KindVerdict, Name: "dining.exclusion", A: 0, Detail: `adjacent philosophers 0 and 1 eating "together"`},
		{Seq: 5, Kind: KindPhaseEnd, Name: "mc.check", A: 120},
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	// The wire format spells kinds as strings, so traces are greppable.
	if !strings.Contains(buf.String(), `"kind":"state_expansion"`) {
		t.Fatalf("kind not serialized as string:\n%s", buf.String())
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"seq\":1,\"kind\":\"stat\"}\nnot json\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
	if _, err := ReadJSONL(strings.NewReader("{\"seq\":1,\"kind\":\"no_such_kind\"}\n")); err == nil {
		t.Fatal("unknown kind accepted")
	}
	evs, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || len(evs) != 0 {
		t.Fatalf("blank lines should decode to nothing, got %v, %v", evs, err)
	}
}

func TestMultiAndFuncSink(t *testing.T) {
	var a, b []Event
	s := Multi(nil, FuncSink(func(e Event) { a = append(a, e) }), FuncSink(func(e Event) { b = append(b, e) }))
	s.Emit(Event{Kind: KindStat, A: 1})
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("multi did not fan out: %d/%d", len(a), len(b))
	}
	if Multi() != Discard {
		t.Fatal("empty Multi should collapse to Discard")
	}
	one := NewRing(1)
	if Multi(nil, one) != one {
		t.Fatal("single-sink Multi should collapse to the sink")
	}
	Discard.Emit(Event{}) // must not panic
}
