package obs

import (
	"strings"
	"testing"
	"time"
)

// TestNilRecorderSafe exercises every Recorder method on a nil receiver:
// the whole instrumentation contract is that unobserved hot paths cost a
// nil check and nothing else.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports Enabled")
	}
	if r.Metrics() != nil {
		t.Fatal("nil recorder has a registry")
	}
	r.Emit(Event{Kind: KindStat})
	r.PhaseStart("x")
	r.PhaseEnd("x", 1)
	r.RefineRound("worklist", 1, 2, 3)
	r.StateExpansion("mc", 10, 2, 40)
	r.SchedStep(0, 1, true)
	r.Fault("crash", 3, 1)
	r.Verdict("check", true, "")
	r.Stat("n", 42)
	r.Count("c", 1)
	r.Observe("h", time.Millisecond)
	r.Relabel("dyn", 4, 1, 1, "join")

	// The churn hot path calls Relabel per event; nil recorders must
	// stay allocation-free, not merely panic-free.
	if allocs := testing.AllocsPerRun(100, func() {
		r.Relabel("dyn", 4, 1, 1, "join")
		r.Count("dyn.splits", 1)
	}); allocs != 0 {
		t.Fatalf("nil recorder allocates: %v allocs/op", allocs)
	}
}

// TestRecorderSequencing checks that Emit assigns strictly increasing
// sequence numbers starting at 1 and that helpers populate the payload
// fields their Kind documents.
func TestRecorderSequencing(t *testing.T) {
	ring := NewRing(16)
	r := New(ring)
	r.PhaseStart("phase")
	r.RefineRound("hopcroft", 3, 7, 2)
	r.SchedStep(5, 2, false)
	r.Verdict("safety", false, "uniqueness violated")
	r.PhaseEnd("phase", 9)

	evs := ring.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d has seq %d, want %d", i, e.Seq, i+1)
		}
	}
	if e := evs[1]; e.Kind != KindRefineRound || e.Name != "hopcroft" || e.A != 3 || e.B != 7 || e.C != 2 {
		t.Errorf("refine round event malformed: %+v", e)
	}
	if e := evs[2]; e.Kind != KindSchedStep || e.A != 5 || e.B != 2 || e.C != 0 {
		t.Errorf("sched step event malformed: %+v", e)
	}
	if e := evs[3]; e.Kind != KindVerdict || e.A != 0 || e.Detail != "uniqueness violated" {
		t.Errorf("verdict event malformed: %+v", e)
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := KindPhaseStart; k <= KindRelabel; k++ {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Errorf("kind %d: round-trip via %q failed (got %d, ok=%v)", k, k.String(), got, ok)
		}
	}
	if _, ok := KindFromString("nonsense"); ok {
		t.Error("unknown kind name resolved")
	}
	if !strings.HasPrefix(Kind(200).String(), "kind(") {
		t.Error("unknown kind String not tagged")
	}
}

func TestCounterAndHistogram(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("mc.states")
	c.Add(5)
	c.Inc()
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
	if reg.Counter("mc.states") != c {
		t.Fatal("counter lookup is not interned")
	}

	h := reg.Histogram("mc.level")
	h.Observe(100 * time.Nanosecond)
	h.Observe(3 * time.Microsecond)
	h.Observe(2 * time.Millisecond)
	if h.Count() != 3 {
		t.Fatalf("histogram count = %d, want 3", h.Count())
	}
	if want := 100*time.Nanosecond + 3*time.Microsecond + 2*time.Millisecond; h.Sum() != want {
		t.Fatalf("histogram sum = %v, want %v", h.Sum(), want)
	}
	// The median sample (3µs) rounds up to its power-of-two bucket edge.
	if q := h.Quantile(0.5); q < 3*time.Microsecond || q > 8*time.Microsecond {
		t.Fatalf("median estimate %v out of bucket range", q)
	}
	if (&Histogram{}).Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := New(nil)
	r.Count("mc.states", 120)
	r.Count("core.rounds", 4)
	r.Observe("mc.check", 5*time.Millisecond)
	var b strings.Builder
	if err := r.Metrics().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE simsym_core_rounds_total counter",
		"simsym_core_rounds_total 4",
		"simsym_mc_states_total 120",
		"# TYPE simsym_mc_check_seconds histogram",
		`simsym_mc_check_seconds_bucket{le="+Inf"} 1`,
		"simsym_mc_check_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics text missing %q in:\n%s", want, out)
		}
	}
	// Deterministic ordering: counters sorted by name.
	if strings.Index(out, "core_rounds") > strings.Index(out, "mc_states") {
		t.Error("counters not sorted by name")
	}
	var nilReg *Registry
	if err := nilReg.WriteText(&b); err != nil {
		t.Fatal("nil registry WriteText should be a no-op, got", err)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"mc.states":    "mc_states",
		"a-b/c.d":      "a_b_c_d",
		"weird %$name": "weirdname",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
