package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Ring is an in-memory bounded sink retaining the most recent events in
// arrival order. It is the test-facing sink: concurrent emitters never
// lose or duplicate an event (until capacity evicts the oldest), and a
// single emitter's events always appear in its program order.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	cap   int
	head  int   // index of the oldest retained event
	total int64 // events ever emitted
}

// DefaultRingCapacity bounds a Ring constructed with capacity <= 0.
const DefaultRingCapacity = 4096

// NewRing returns a ring sink retaining up to capacity events
// (DefaultRingCapacity when capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Ring{cap: capacity}
}

// Emit implements Sink.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.head] = e
	r.head = (r.head + 1) % r.cap
}

// Events returns a snapshot of the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.head:]...)
	out = append(out, r.buf[:r.head]...)
	return out
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Total returns the number of events ever emitted (retained or
// evicted).
func (r *Ring) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many events have been evicted by capacity.
func (r *Ring) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - int64(len(r.buf))
}

// CountByKind tallies the retained events per kind.
func (r *Ring) CountByKind() map[Kind]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[Kind]int)
	for _, e := range r.buf {
		out[e.Kind]++
	}
	return out
}

// JSONL is a sink writing one JSON object per event, newline-delimited,
// to an underlying writer. Writes are serialized; the first write error
// is retained (subsequent events are dropped) and surfaced by Close.
type JSONL struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	err error
}

// NewJSONL returns a JSONL sink over w. Call Close (or Flush) before
// reading what was written.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{bw: bufio.NewWriter(w)}
}

// Emit implements Sink.
func (s *JSONL) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	data, err := json.Marshal(e)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.bw.Write(data); err != nil {
		s.err = err
		return
	}
	s.err = s.bw.WriteByte('\n')
}

// Flush flushes buffered output and returns the first error seen.
func (s *JSONL) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.bw.Flush()
	return s.err
}

// Close flushes and returns the first error seen. The underlying
// writer is not closed (the sink does not own it).
func (s *JSONL) Close() error { return s.Flush() }

// ReadJSONL decodes an event stream produced by a JSONL sink. Blank
// lines are skipped; the first malformed line is an error.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("obs: jsonl line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: jsonl scan: %w", err)
	}
	return out, nil
}

// multi fans one event out to several sinks in order.
type multi struct {
	sinks []Sink
}

// Multi returns a sink delivering every event to each of sinks in
// order. Nil sinks are skipped; zero sinks yields Discard.
func Multi(sinks ...Sink) Sink {
	kept := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return Discard
	case 1:
		return kept[0]
	}
	return &multi{sinks: kept}
}

// Emit implements Sink.
func (m *multi) Emit(e Event) {
	for _, s := range m.sinks {
		s.Emit(e)
	}
}

// FuncSink adapts a function to the Sink interface.
type FuncSink func(Event)

// Emit implements Sink.
func (f FuncSink) Emit(e Event) { f(e) }
