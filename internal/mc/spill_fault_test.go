package mc

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"simsym/internal/machine"
	"simsym/internal/system"
)

// fillSpillable inserts enough wide keys that every shard finalizes at
// least one chunk — only finalized chunks are spillable.
func fillSpillable(t *testing.T, idx *stateIndex, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		key := testKey(fmt.Sprintf("pc=%d", i%7), fmt.Sprintf("x=%0200d", i), "padpadpadpadpadpadpadpad")
		mustInsert(t, idx, key, -1, nil)
	}
}

// assertSpillReleased checks the invariant the error paths must uphold:
// no per-shard file handle stays open and the spill directory is gone.
func assertSpillReleased(t *testing.T, idx *stateIndex, dir string) {
	t.Helper()
	for i := range idx.shards {
		if idx.shards[i].file != nil {
			t.Errorf("shard %d spill file left open after failed spill", i)
		}
	}
	if idx.spillPath != "" {
		t.Errorf("spillPath %q not cleared after failed spill", idx.spillPath)
	}
	if dir != "" {
		if _, err := os.Stat(dir); !os.IsNotExist(err) {
			t.Errorf("spill dir %q not removed after failed spill; stat err = %v", dir, err)
		}
	}
}

// TestSpillWriteErrorReleasesTier: a chunk write failing on the very
// first spill must close the just-opened shard file and remove the fresh
// spill directory — the old code returned with both still live, leaking
// an fd and a temp dir per failed run.
func TestSpillWriteErrorReleasesTier(t *testing.T) {
	idx := newStateIndex(2, chunkSize/2, t.TempDir())
	defer idx.release()
	fillSpillable(t, idx, 0, 1500)

	var dir string
	spillWriteHook = func(shard int) error {
		dir = idx.spillPath // capture the MkdirTemp result before release clears it
		return errors.New("injected: disk full")
	}
	defer func() { spillWriteHook = nil }()

	_, err := idx.maybeSpill()
	if err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("maybeSpill err = %v, want injected write error", err)
	}
	if dir == "" {
		t.Fatal("hook never ran; test exercised nothing")
	}
	assertSpillReleased(t, idx, dir)
}

// TestSpillWriteErrorMidLevelReleasesTier: the failure lands after
// several chunks already spilled successfully — the established tier
// (open files on possibly several shards, non-empty directory) must be
// torn down just the same.
func TestSpillWriteErrorMidLevelReleasesTier(t *testing.T) {
	idx := newStateIndex(2, chunkSize/2, t.TempDir())
	defer idx.release()
	fillSpillable(t, idx, 0, 1500)

	// First spill succeeds and establishes the tier.
	if _, err := idx.maybeSpill(); err != nil {
		t.Fatal(err)
	}
	if idx.spilledBytes == 0 || idx.spillPath == "" {
		t.Fatal("setup: first spill never engaged the tier")
	}
	dir := idx.spillPath

	// More keys, then a spill that dies on its third chunk write.
	fillSpillable(t, idx, 1500, 1500)
	calls := 0
	spillWriteHook = func(shard int) error {
		calls++
		if calls >= 3 {
			return errors.New("injected: disk full")
		}
		return nil
	}
	defer func() { spillWriteHook = nil }()

	freed, err := idx.maybeSpill()
	if err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("maybeSpill err = %v (freed %d), want injected write error", err, freed)
	}
	assertSpillReleased(t, idx, dir)

	// Idempotence under the existing defer idx.release() in Check.
	idx.release()
	assertSpillReleased(t, idx, dir)
}

// spillFaultModel is a small closed model (the Figure 5 four-philosopher
// table) that reliably crosses a 1-byte hot-index cap at the first level
// boundary.
func spillFaultModel(t *testing.T) (*system.System, *machine.Program) {
	t.Helper()
	s, err := system.DiningFlipped(4)
	if err != nil {
		t.Fatal(err)
	}
	bl := machine.NewBuilder()
	g1, g2 := bl.Sym("_g1"), bl.Sym("_g2")
	bl.Label("grab1")
	bl.Lock("left", "_g1")
	bl.JumpIf(func(r *machine.Regs) bool { return r.Get(g1) != true }, "grab1")
	bl.Label("grab2")
	bl.Lock("right", "_g2")
	bl.JumpIf(func(r *machine.Regs) bool { return r.Get(g2) != true }, "grab2")
	bl.Unlock("right")
	bl.Unlock("left")
	bl.Halt()
	prog, err := bl.Build()
	if err != nil {
		t.Fatal(err)
	}
	return s, prog
}

// TestCheckSpillErrorPartial: with Options.Partial a failing spill tier
// degrades into a graceful partial result (Exhausted="spill") instead of
// an error, and leaves nothing behind in SpillDir; without Partial the
// injected error surfaces. Either way the temp dir must be cleaned up.
func TestCheckSpillErrorPartial(t *testing.T) {
	s, prog := spillFaultModel(t)
	spillWriteHook = func(shard int) error { return errors.New("injected: disk full") }
	defer func() { spillWriteHook = nil }()

	for _, partial := range []bool{true, false} {
		dir := t.TempDir()
		res, err := Check(func() (*machine.Machine, error) {
			return machine.New(s, system.InstrL, prog)
		}, Options{
			MaxStates:     500_000,
			HotIndexBytes: 1,
			SpillDir:      dir,
			Partial:       partial,
		})
		if partial {
			if err != nil {
				t.Fatalf("Partial=true: Check err = %v, want graceful degradation", err)
			}
			if res.Complete {
				t.Error("Partial=true: result claims Complete despite dead spill tier")
			}
			if res.Exhausted != "spill" {
				t.Errorf("Partial=true: Exhausted = %q, want \"spill\"", res.Exhausted)
			}
			if res.StatesExplored == 0 {
				t.Error("Partial=true: partial result lost the states explored before the fault")
			}
		} else if err == nil || !strings.Contains(err.Error(), "injected") {
			t.Fatalf("Partial=false: Check err = %v, want injected spill error", err)
		}
		ents, rerr := os.ReadDir(dir)
		if rerr != nil {
			t.Fatal(rerr)
		}
		for _, e := range ents {
			t.Errorf("Partial=%v: leaked %q under SpillDir", partial, filepath.Join(dir, e.Name()))
		}
	}
}

// TestSpillOpenErrorReleasesTier: failing to open a shard file (revoked
// directory permissions after the tier was created) must also release
// the directory rather than leak it.
func TestSpillOpenErrorReleasesTier(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("permission-based injection is a no-op for root")
	}
	idx := newStateIndex(1, chunkSize/2, t.TempDir())
	defer idx.release()
	fillSpillable(t, idx, 0, 1500)

	// Pre-create the spill dir, then make it unwritable so OpenFile fails.
	parent := t.TempDir()
	path, err := os.MkdirTemp(parent, "mc-spill-*")
	if err != nil {
		t.Fatal(err)
	}
	idx.spillPath = path
	if err := os.Chmod(path, 0o500); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(path, 0o700) // let TempDir cleanup succeed if the test fails

	if _, err := idx.maybeSpill(); err == nil {
		t.Fatal("maybeSpill succeeded despite unwritable spill dir")
	}
	os.Chmod(path, 0o700) // RemoveAll already ran; restore for the assert below
	assertSpillReleased(t, idx, path)
}
