package mc

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"simsym/internal/canon"
)

// stateIndex is the checker's visited set: a hash-sharded, delta-encoded
// index over binary state keys built to hold 10⁸⁺ states. Keys are
// routed to a shard by the top bits of their 64-bit FNV-1a hash; inside
// a shard they are bucketed by the full hash and a bucket hit is
// confirmed by comparing the exact encodings, so ids are collision-free
// by construction — hash quality affects only speed, never verdicts.
//
// Three mechanisms keep the per-state footprint small:
//
//   - Ids are int64 (they used to be int32, which silently truncated
//     and aliased distinct states past 2³¹ — exactly the scale this
//     index targets). Ids are dense and assigned in insertion order, so
//     they double as node indices in the checker's bookkeeping; baseID
//     lets tests pin the id stream right at the old 32-bit boundary.
//   - Key bytes live in per-shard chunked arenas (fixed-size chunks,
//     append-only, never moved once allocated), and a key whose BFS
//     lineage stays close to a full-stored ancestor is stored as a
//     canon.AppendKeyDelta patch against that ancestor. Every delta
//     points directly at a full-stored ancestor (chain length one by
//     construction): a state delta-encodes against its parent's
//     keyframe while the patch stays small, and becomes a new keyframe
//     once the lineage has drifted too far.
//   - When a hot-bytes cap is set, cold chunks spill FIFO to a per-shard
//     file (BFS rarely re-touches old levels, so the spilled majority is
//     read back only on genuine dedup hits against deep history). File
//     offsets equal logical arena offsets, so spilling never rewrites an
//     entry.
//
// Concurrency contract (the engine's sharded level pipeline): during the
// staging phase each shard is touched only by its owner goroutine, and
// staging never reads another shard — cross-shard work (ancestor
// resolution, deferred exact comparisons, spilling) happens only on the
// coordinating goroutine between phases. The index therefore needs no
// locks; determinism comes from reduction, not serialization.
type stateIndex struct {
	shards     []indexShard
	shardShift uint // shard id = hash >> shardShift (len(shards) > 1)
	// where maps gid-baseID to its shard and shard-local entry index,
	// packed shard<<48 | idx. Dense: one word per visited state.
	where  []uint64
	baseID int64 // first gid assigned; nonzero only in boundary tests

	hotCapBytes int64  // spill threshold over all shards; 0 = never spill
	spillDir    string // parent dir for the spill tempdir
	spillPath   string // created tempdir; "" until first spill

	// Coordinator-side scratch for exact comparisons of spilled entries.
	scrA, scrB []byte

	// Spill accounting (coordinator-only writes).
	spilledBytes int64
	spillFlushes int64
}

// indexShard holds one hash slice of the visited set. All mutation goes
// through its owner: the staging goroutine during the parallel phase,
// the coordinator otherwise.
type indexShard struct {
	buckets bucketTable // full key hash -> shard-local entry indices
	entries []entry
	chunks  [][]byte // chunk i covers logical offsets [i<<chunkShift, ...)
	used    int64    // logical end offset of written bytes
	bound   int64    // offsets below bound are on disk, chunks nil-ed
	file    *os.File
	scratch []byte // delta-encode buffer, reused across stages

	// Exact capacity accounting, maintained incrementally on append.
	padBytes int64 // alignment waste inside chunks

	// Delta statistics (owner-only writes, summed on snapshot).
	deltaStates  int64
	storedBytes  int64 // bytes as stored (full or delta)
	logicalBytes int64 // bytes the full keys would have taken
}

// entry is one visited state: where its (full or delta) bytes live and
// which full-stored ancestor a delta patches.
type entry struct {
	gid int64 // dense id; -1 while staged and not yet committed
	anc int64 // gid of the full-stored ancestor a delta patches; -1 = full
	off int64 // logical offset of the stored bytes in the shard arena
	n   int32 // stored length
}

const (
	chunkShift = 16 // 64 KiB chunks
	chunkSize  = 1 << chunkShift
	chunkMask  = chunkSize - 1

	// entrySize feeds the memory estimate: the entry struct itself. The
	// bucket directory's footprint is exact — bucketSlotSize bytes per
	// allocated open-addressing slot.
	entrySize      = 32
	bucketSlotSize = 16 // one uint64 hash + one int64 entry index

	// A delta is stored only while it is meaningfully smaller than the
	// full key; otherwise the state becomes a new full-stored keyframe.
	deltaNum, deltaDen = 1, 2
)

// newStateIndex sizes the index: shards is clamped to a power of two in
// [1, 256]; hotCapBytes > 0 arms the spill tier, writing under dir
// (os.TempDir() when dir is empty).
func newStateIndex(shards int, hotCapBytes int64, dir string) *stateIndex {
	s := 1
	for s < shards && s < 256 {
		s <<= 1
	}
	return &stateIndex{
		shards:      make([]indexShard, s),
		shardShift:  64 - uint(bitLen(s-1)),
		hotCapBytes: hotCapBytes,
		spillDir:    dir,
	}
}

func bitLen(x int) int {
	n := 0
	for x > 0 {
		n++
		x >>= 1
	}
	return n
}

// bucketTable is an open-addressed multimap from full key hashes to
// shard-local entry indices — the shard's bucket directory. It replaces
// a map[uint64][]int64 on the probe-per-candidate hot path: a lookup is
// one masked index plus a short linear scan (load never exceeds 3/4),
// with no hashing of the already-hashed key and no per-key slice
// headers. Entries sharing a full 64-bit hash (collisions, effectively
// nonexistent) occupy separate slots along the probe chain; exact key
// comparison disambiguates them, so probe order never affects verdicts.
type bucketTable struct {
	hashes []uint64
	eis    []int64 // -1 marks an empty slot
	mask   uint64
	n      int
}

// add inserts an entry index under hash, growing at 3/4 load.
func (bt *bucketTable) add(hash uint64, ei int64) {
	if bt.n*4 >= len(bt.eis)*3 {
		bt.grow()
	}
	sl := hash & bt.mask
	for bt.eis[sl] >= 0 {
		sl = (sl + 1) & bt.mask
	}
	bt.hashes[sl], bt.eis[sl] = hash, ei
	bt.n++
}

// has reports whether any entry is bucketed under hash.
func (bt *bucketTable) has(hash uint64) bool {
	if bt.eis == nil {
		return false
	}
	for sl := hash & bt.mask; bt.eis[sl] >= 0; sl = (sl + 1) & bt.mask {
		if bt.hashes[sl] == hash {
			return true
		}
	}
	return false
}

func (bt *bucketTable) grow() {
	oldH, oldE := bt.hashes, bt.eis
	size := 1024
	if len(oldE) > 0 {
		size = len(oldE) * 2
	}
	bt.hashes = make([]uint64, size)
	bt.eis = make([]int64, size)
	for i := range bt.eis {
		bt.eis[i] = -1
	}
	bt.mask = uint64(size - 1)
	for i, ei := range oldE {
		if ei < 0 {
			continue
		}
		sl := oldH[i] & bt.mask
		for bt.eis[sl] >= 0 {
			sl = (sl + 1) & bt.mask
		}
		bt.hashes[sl], bt.eis[sl] = oldH[i], ei
	}
}

// shardOf routes a key hash to its owning shard.
func (t *stateIndex) shardOf(hash uint64) int {
	if len(t.shards) == 1 {
		return 0
	}
	return int(hash >> t.shardShift)
}

// nextGID is the id the next committed state will receive.
func (t *stateIndex) nextGID() int64 { return t.baseID + int64(len(t.where)) }

// entryAt resolves a committed gid to its shard and entry.
func (t *stateIndex) entryAt(gid int64) (*indexShard, *entry) {
	loc := t.where[gid-t.baseID]
	sh := &t.shards[loc>>48]
	return sh, &sh.entries[loc&(1<<48-1)]
}

// lookupHashed reports whether key (with its precomputed hash) is
// already indexed, and its id if so. Coordinator-only: comparing against
// delta-stored or spilled entries may touch any shard.
func (t *stateIndex) lookupHashed(key []byte, hash uint64) (gid int64, ok bool, err error) {
	sh := &t.shards[t.shardOf(hash)]
	bt := &sh.buckets
	if bt.eis == nil {
		return 0, false, nil
	}
	for sl := hash & bt.mask; bt.eis[sl] >= 0; sl = (sl + 1) & bt.mask {
		if bt.hashes[sl] != hash {
			continue
		}
		e := &sh.entries[bt.eis[sl]]
		eq, err := t.entryEqual(sh, e, key)
		if err != nil {
			return 0, false, err
		}
		if eq {
			return e.gid, true, nil
		}
	}
	return 0, false, nil
}

// entryEqual compares a stored entry against a candidate key exactly.
// Full entries compare directly; delta entries stream-compare via
// canon.KeyDeltaEqual against their ancestor's bytes without
// materializing the patched key. Spilled bytes are read back through the
// coordinator scratch buffers.
func (t *stateIndex) entryEqual(sh *indexShard, e *entry, key []byte) (bool, error) {
	raw, err := sh.read(e.off, int(e.n), &t.scrA)
	if err != nil {
		return false, err
	}
	if e.anc < 0 {
		return bytes.Equal(raw, key), nil
	}
	ancSh, ancE := t.entryAt(e.anc)
	ancRaw, err := ancSh.read(ancE.off, int(ancE.n), &t.scrB)
	if err != nil {
		return false, err
	}
	return canon.KeyDeltaEqual(ancRaw, raw, key), nil
}

// ancestorFor returns the full-stored ancestor of a committed state: the
// state itself when stored full, its keyframe otherwise. Hot entries are
// returned zero-copy (chunks never move, so the slice stays valid);
// spilled entries are appended into arena with stable-arena semantics —
// earlier slices handed out from the same arena remain valid.
// Coordinator-only.
func (t *stateIndex) ancestorFor(gid int64, arena *[]byte) (ancGID int64, ancKey []byte, err error) {
	sh, e := t.entryAt(gid)
	if e.anc >= 0 {
		gid = e.anc
		sh, e = t.entryAt(gid)
	}
	// Ancestors are full-stored by construction (a delta's anc always
	// names a keyframe).
	key, err := sh.readStable(e.off, int(e.n), arena)
	if err != nil {
		return 0, nil, err
	}
	return gid, key, nil
}

// insert commits key (not yet present; hash as from lookupHashed) with
// the next dense id and returns it. ancGID/ancKey name the full-stored
// ancestor candidate for delta encoding; ancGID < 0 forces full storage.
// key is copied; the caller keeps ownership of its buffer.
// Coordinator-only.
func (t *stateIndex) insert(key []byte, hash uint64, ancGID int64, ancKey []byte) int64 {
	si := t.shardOf(hash)
	ei := t.shards[si].stage(key, hash, ancGID, ancKey)
	return t.commitStaged(si, ei)
}

// stageNew stages key into shard si if and only if its hash bucket is
// empty, returning the shard-local entry index. A non-empty bucket
// defers the exact comparison to the coordinator's commit pass — this is
// what keeps the staging phase free of cross-shard reads. Owner-only.
func (t *stateIndex) stageNew(si int, key []byte, hash uint64, ancGID int64, ancKey []byte) (ei int64, staged bool) {
	sh := &t.shards[si]
	if sh.buckets.has(hash) {
		return 0, false
	}
	return sh.stage(key, hash, ancGID, ancKey), true
}

// commitStaged assigns the next dense id to a staged entry.
// Coordinator-only.
func (t *stateIndex) commitStaged(si int, ei int64) int64 {
	sh := &t.shards[si]
	gid := t.nextGID()
	sh.entries[ei].gid = gid
	t.where = append(t.where, uint64(si)<<48|uint64(ei))
	return gid
}

// entryRef returns a staged or committed entry by shard-local index.
func (t *stateIndex) entryRef(si int, ei int64) (*indexShard, *entry) {
	sh := &t.shards[si]
	return sh, &sh.entries[ei]
}

// stage appends key to the shard: delta-encoded against ancKey when the
// patch wins by the deltaNum/deltaDen margin, full otherwise. The entry
// starts uncommitted (gid -1). Owner-only.
func (sh *indexShard) stage(key []byte, hash uint64, ancGID int64, ancKey []byte) int64 {
	stored := key
	anc := int64(-1)
	if ancGID >= 0 && len(ancKey) > 0 {
		if delta, ok := canon.AppendKeyDelta(sh.scratch[:0], ancKey, key); ok {
			sh.scratch = delta
			if len(delta)*deltaDen <= len(key)*deltaNum {
				stored = delta
				anc = ancGID
			}
		}
	}
	off := sh.write(stored)
	if anc >= 0 {
		sh.deltaStates++
	}
	sh.storedBytes += int64(len(stored))
	sh.logicalBytes += int64(len(key))
	ei := int64(len(sh.entries))
	sh.entries = append(sh.entries, entry{gid: -1, anc: anc, off: off, n: int32(len(stored))})
	sh.buckets.add(hash, ei)
	return ei
}

// write appends b to the chunked arena and returns its logical offset.
// Items never straddle a chunk boundary: a tail that cannot fit the item
// is padding, and an item larger than a chunk gets a dedicated
// exactly-sized chunk whose trailing slots are nil placeholders so chunk
// indices keep matching off >> chunkShift.
func (sh *indexShard) write(b []byte) int64 {
	n := len(b)
	pos := int(sh.used & chunkMask)
	if pos > 0 && pos+n > chunkSize {
		sh.padBytes += int64(chunkSize - pos)
		sh.used = (sh.used + chunkMask) &^ int64(chunkMask)
		pos = 0
	}
	ci := int(sh.used >> chunkShift)
	if ci >= len(sh.chunks) {
		size := chunkSize
		if n > chunkSize {
			size = n
		}
		sh.chunks = append(sh.chunks, make([]byte, size))
	}
	copy(sh.chunks[ci][pos:], b)
	off := sh.used
	sh.used += int64(n)
	if n > chunkSize {
		end := (sh.used + chunkMask) &^ int64(chunkMask)
		sh.padBytes += end - sh.used
		sh.used = end
		for int64(len(sh.chunks))<<chunkShift < sh.used {
			sh.chunks = append(sh.chunks, nil)
		}
	}
	return off
}

// read returns the stored bytes at [off, off+n): zero-copy from a hot
// chunk, read through scratch from the spill file otherwise. The result
// is valid until the next read through the same scratch.
func (sh *indexShard) read(off int64, n int, scratch *[]byte) ([]byte, error) {
	if off >= sh.bound {
		pos := int(off & chunkMask)
		return sh.chunks[off>>chunkShift][pos : pos+n], nil
	}
	if cap(*scratch) < n {
		*scratch = make([]byte, n+n/2)
	}
	buf := (*scratch)[:n]
	if _, err := sh.file.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("mc: spill read: %w", err)
	}
	return buf, nil
}

// readStable is read with stable-arena semantics for spilled entries:
// when the arena block is full a fresh block is started rather than
// grown, so slices previously returned from the same arena stay valid
// (the old blocks are garbage-collected once their slices die).
func (sh *indexShard) readStable(off int64, n int, arena *[]byte) ([]byte, error) {
	if off >= sh.bound {
		pos := int(off & chunkMask)
		return sh.chunks[off>>chunkShift][pos : pos+n], nil
	}
	a := *arena
	if cap(a)-len(a) < n {
		size := chunkSize
		if n > size {
			size = n
		}
		a = make([]byte, 0, size)
	}
	buf := a[len(a) : len(a)+n]
	if _, err := sh.file.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("mc: spill read: %w", err)
	}
	*arena = a[:len(a)+n]
	return buf, nil
}

// hotBytes is the in-memory arena footprint of the shard.
func (sh *indexShard) hotBytes() int64 {
	var total int64
	for _, c := range sh.chunks {
		total += int64(len(c))
	}
	return total
}

// spillWriteHook, when non-nil, intercepts each chunk write to the spill
// tier and can force it to fail — a test seam for fault-injecting the
// write path (disk full, revoked permissions) without a real bad disk.
var spillWriteHook func(shard int) error

// maybeSpill flushes finalized cold chunks FIFO to the per-shard spill
// files until the hot arenas fit under the cap again. Coordinator-only,
// called between BFS levels so no staging goroutine holds hot slices.
// Returns the bytes moved to disk by this call.
//
// Any mid-spill failure releases the whole spill tier before returning:
// the index is unusable for further lookups once a chunk write is lost,
// so holding per-shard file descriptors or the on-disk directory open
// would only leak them — the caller surfaces the error (or degrades to a
// partial result) and never touches the spilled tier again.
func (t *stateIndex) maybeSpill() (int64, error) {
	if t.hotCapBytes <= 0 {
		return 0, nil
	}
	var hot int64
	for i := range t.shards {
		hot += t.shards[i].hotBytes()
	}
	if hot <= t.hotCapBytes {
		return 0, nil
	}
	if t.spillPath == "" {
		dir := t.spillDir
		if dir == "" {
			dir = os.TempDir()
		}
		path, err := os.MkdirTemp(dir, "mc-spill-*")
		if err != nil {
			return 0, fmt.Errorf("mc: spill: %w", err)
		}
		t.spillPath = path
	}
	var freed int64
	for i := range t.shards {
		sh := &t.shards[i]
		for hot-freed > t.hotCapBytes {
			ci := int(sh.bound >> chunkShift)
			if ci >= len(sh.chunks) {
				break
			}
			c := sh.chunks[ci]
			if c == nil { // placeholder slot of an already-spilled jumbo chunk
				sh.bound = int64(ci+1) << chunkShift
				continue
			}
			chunkEnd := int64(ci)<<chunkShift + int64(len(c))
			if chunkEnd > sh.used {
				break // the active chunk still accepts appends
			}
			if sh.file == nil {
				f, err := os.OpenFile(filepath.Join(t.spillPath, fmt.Sprintf("shard-%03d", i)),
					os.O_RDWR|os.O_CREATE, 0o600)
				if err != nil {
					t.release()
					return freed, fmt.Errorf("mc: spill: %w", err)
				}
				sh.file = f
			}
			if spillWriteHook != nil {
				if err := spillWriteHook(i); err != nil {
					t.release()
					return freed, fmt.Errorf("mc: spill write: %w", err)
				}
			}
			if _, err := sh.file.WriteAt(c, int64(ci)<<chunkShift); err != nil {
				t.release()
				return freed, fmt.Errorf("mc: spill write: %w", err)
			}
			freed += int64(len(c))
			t.spilledBytes += int64(len(c))
			sh.chunks[ci] = nil
			sh.bound = (chunkEnd + chunkMask) &^ int64(chunkMask)
		}
	}
	if freed > 0 {
		t.spillFlushes++
	}
	return freed, nil
}

// release closes and removes the spill tier. Idempotent.
func (t *stateIndex) release() {
	for i := range t.shards {
		if f := t.shards[i].file; f != nil {
			f.Close()
			t.shards[i].file = nil
		}
	}
	if t.spillPath != "" {
		os.RemoveAll(t.spillPath)
		t.spillPath = ""
	}
}

// indexStats is the index's observability snapshot.
type indexStats struct {
	shards       int
	deltaStates  int64
	storedBytes  int64
	logicalBytes int64
	spilledBytes int64
	spillFlushes int64
}

func (t *stateIndex) statsSnapshot() indexStats {
	s := indexStats{shards: len(t.shards), spilledBytes: t.spilledBytes, spillFlushes: t.spillFlushes}
	for i := range t.shards {
		sh := &t.shards[i]
		s.deltaStates += sh.deltaStates
		s.storedBytes += sh.storedBytes
		s.logicalBytes += sh.logicalBytes
	}
	return s
}

// memBytes estimates the index's resident memory footprint from
// capacities, not lengths: allocated chunk bytes (a half-filled chunk
// costs its full size), the entry tables' capacity, the bucket slices'
// exact capacity (tracked as they grow), the bucket maps' per-key
// overhead, and the dense id table. Spilled bytes live on disk and are
// deliberately excluded. Keeping this honest is what lets MaxMemBytes
// degrade into a Partial result instead of an OOM.
func (t *stateIndex) memBytes() int64 {
	total := int64(cap(t.where)) * 8
	total += int64(cap(t.scrA) + cap(t.scrB))
	for i := range t.shards {
		sh := &t.shards[i]
		total += sh.hotBytes()
		total += int64(cap(sh.entries)) * entrySize
		total += int64(len(sh.buckets.eis)) * bucketSlotSize
		total += int64(cap(sh.scratch))
	}
	return total
}
