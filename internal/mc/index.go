package mc

import (
	"bytes"

	"simsym/internal/canon"
)

// stateIndex is the checker's visited set: a compact hashed index over
// binary state keys, mirroring partition.SigTable. Keys are bucketed by
// their 64-bit FNV-1a hash and a bucket hit is confirmed by comparing the
// exact encodings, so ids are collision-free by construction — hash
// quality affects only speed, never verdicts. All keys live back-to-back
// in one backing array instead of one heap string per state, which is
// what lets the checker hold hundreds of thousands of states without
// materializing megabytes of map keys.
//
// Ids are dense and assigned in insertion order, so they double as node
// indices in the checker's exploration bookkeeping.
type stateIndex struct {
	buckets map[uint64][]int32
	backing []byte
	spans   [][2]int
}

// lookup returns the id of key and whether it is present, plus the key's
// hash so a following insert does not rehash.
func (t *stateIndex) lookup(key []byte) (id int, hash uint64, ok bool) {
	hash = canon.HashBytes(key)
	if t.buckets == nil {
		return 0, hash, false
	}
	for _, id := range t.buckets[hash] {
		sp := t.spans[id]
		if bytes.Equal(t.backing[sp[0]:sp[1]], key) {
			return int(id), hash, true
		}
	}
	return 0, hash, false
}

// insert adds key (not yet present, with hash from lookup) and returns
// its dense id. key is copied; the caller keeps ownership of the buffer.
func (t *stateIndex) insert(key []byte, hash uint64) int {
	if t.buckets == nil {
		t.buckets = make(map[uint64][]int32)
	}
	id := len(t.spans)
	start := len(t.backing)
	t.backing = append(t.backing, key...)
	t.spans = append(t.spans, [2]int{start, len(t.backing)})
	t.buckets[hash] = append(t.buckets[hash], int32(id))
	return id
}

// len returns the number of indexed states.
func (t *stateIndex) len() int { return len(t.spans) }

// memBytes estimates the index's memory footprint: backing array, span
// table, and bucket map overhead.
func (t *stateIndex) memBytes() int64 {
	const bucketOverhead = 48 // map entry + slice header amortized
	return int64(cap(t.backing)) +
		int64(cap(t.spans))*16 +
		int64(len(t.buckets))*bucketOverhead +
		int64(len(t.spans))*4
}
