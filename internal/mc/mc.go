// Package mc is an explicit-state model checker over schedule
// nondeterminism: it explores every reachable machine state under every
// finite schedule (breadth-first, deduplicated by canonical state
// fingerprints) and checks safety predicates.
//
// Safety over all finite schedules is exactly the right notion for the
// paper's selection problem: every finite step sequence is a prefix of
// some fair schedule, so Uniqueness and Stability under fair (or
// bounded-fair) schedules hold iff no reachable state violates them. The
// checker additionally finds stuck terminal components — sets of states
// (deadlocks or spin livelocks) that, once entered, can never be left and
// never reach a good state — which is how dining-philosopher deadlocks
// are detected. Violating schedules are reconstructed; Theorem 1's
// adversary (the FLP construction) falls out as a reachability witness.
//
// The engine is built for scale and observability:
//
//   - The visited set is a compact hashed index over binary state keys
//     (stateIndex, mirroring partition.SigTable) rather than a map of
//     canonical strings, backed by machine.AppendStateKey's cheap binary
//     fingerprint path.
//   - Opt-in symmetry reduction (Options.SymmetryReduce) dedups states
//     modulo the system's automorphism group — the orbit-quotient
//     construction the paper's symmetry results suggest.
//   - Opt-in deterministic parallel frontier expansion (Options.Workers)
//     fans state expansion over a bounded worker pool with an in-order
//     sequential merge, so results are label-for-label identical to the
//     sequential engine.
//   - Stats (states/sec, depth, dedup hits, memory estimate, group
//     order) are surfaced through Result and a progress callback, and
//     time/memory/state budgets can degrade gracefully into a partial
//     Result instead of an error.
package mc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"time"

	"simsym/internal/autgrp"
	"simsym/internal/canon"
	"simsym/internal/machine"
	"simsym/internal/obs"
	"simsym/internal/system"
)

// Sentinel errors.
var (
	ErrBudget = errors.New("mc: budget exhausted before closure")
)

// StatePredicate inspects a state; a non-empty return is a violation
// description.
type StatePredicate func(m *machine.Machine) string

// TransitionPredicate inspects a transition (before --proc--> after); a
// non-empty return is a violation description. Transition predicates see
// every scheduled step, including stutter steps whose target state equals
// the source (self-loops are excluded only from the successor graph).
type TransitionPredicate func(before, after *machine.Machine, proc int) string

// Options configures a check.
type Options struct {
	// MaxStates bounds exploration; 0 means the default (200_000). The
	// checker explores at most MaxStates distinct states: exhausting the
	// budget yields a partial Result carrying exactly MaxStates states.
	MaxStates int
	// MaxDuration bounds wall-clock exploration time; 0 means unbounded.
	MaxDuration time.Duration
	// MaxMemBytes bounds the checker's estimated memory footprint
	// (visited index plus exploration bookkeeping); 0 means unbounded.
	MaxMemBytes int64
	// Partial turns budget exhaustion (states, time, or memory) into a
	// graceful partial Result — Complete=false, Exhausted naming the
	// spent budget, nil error — instead of ErrBudget. Absence of a
	// violation in a partial result is bounded evidence, not proof.
	Partial bool
	// SymmetryReduce dedups states modulo the automorphism group of the
	// system (computed via autgrp): each newly discovered state is
	// canonicalized to the lexicographically least key over its orbit, so
	// only one representative per orbit is explored. Sound when every
	// predicate is invariant under the group — true for the shipped
	// predicates (Uniqueness, Stability, stuck/halt/eating predicates),
	// which quantify over all processors. Witness schedules remain
	// genuine: stored states are reachable states, not permuted images.
	SymmetryReduce bool
	// AutLimit bounds automorphism enumeration for SymmetryReduce;
	// 0 means the autgrp default.
	AutLimit int
	// Workers > 1 expands each BFS level in parallel over that many
	// goroutines. Successors are merged sequentially in frontier order,
	// so verdicts, witness schedules, state counts, and stats are
	// label-for-label identical to the sequential engine; predicates are
	// only ever called from the merging goroutine.
	Workers int
	// Shards > 1 selects the sharded level pipeline: the visited index
	// splits into Shards hash-addressed shards (rounded up to a power of
	// two, capped at 256) and each BFS level runs as parallel expansion,
	// parallel per-shard staging (each shard owned by one goroutine, no
	// locks, no cross-shard reads), and a canonical-order commit pass.
	// The commit pass processes successors in exactly the frontier order
	// the sequential merge would, so verdicts, witness schedules, state
	// counts, and stats stay label-for-label identical to the sequential
	// engine — determinism by reduction rather than by serializing index
	// probes. Combine with Workers to parallelize expansion too.
	Shards int
	// HotIndexBytes > 0 caps the visited index's in-memory key arenas:
	// when the hot tier outgrows the cap, cold arena chunks spill FIFO to
	// per-shard temp files under SpillDir at level boundaries and are
	// read back transparently on dedup probes against deep history. The
	// cap governs only key storage; bucket tables and node bookkeeping
	// stay resident (MaxMemBytes still bounds the estimated total, which
	// excludes spilled bytes).
	HotIndexBytes int64
	// SpillDir is the parent directory for spill files (os.TempDir()
	// when empty); the spill tier is removed when the check returns.
	SpillDir string
	// Progress, when non-nil, receives a Stats snapshot roughly every
	// ProgressEvery explored states and once when the check finishes.
	Progress func(Stats)
	// ProgressEvery is the state interval between Progress callbacks;
	// 0 means the default (16384).
	ProgressEvery int
	// Obs, when non-nil, receives structured events and metrics: an
	// mc.check phase, one KindStateExpansion event per completed BFS
	// level, counters mirroring Stats, and the final verdict. Events are
	// deterministic (no wall-clock payloads); durations go to the
	// mc.check histogram only. A nil recorder costs one pointer check.
	Obs *obs.Recorder
	// Ctx, when non-nil, cancels exploration: cancellation is treated as
	// an exhausted budget (Exhausted="canceled"), degrading into a
	// partial Result under Options.Partial like any other budget.
	Ctx context.Context
	// States are violations when any StatePredicate flags them.
	StatePreds []StatePredicate
	// Transitions are violations when any TransitionPredicate flags them.
	TransPreds []TransitionPredicate
	// StuckBad, when non-nil, is evaluated on every state; after the
	// state space closes, a terminal strongly-connected component all of
	// whose states are flagged is reported as a violation. This catches
	// both quiescent deadlocks and busy-waiting livelocks: once inside
	// such a component, no schedule can ever reach an unflagged state.
	StuckBad StatePredicate
}

// DefaultMaxStates is the default exploration budget.
const DefaultMaxStates = 200_000

// DefaultProgressEvery is the default Progress callback interval.
const DefaultProgressEvery = 16384

// Violation describes a found counterexample.
type Violation struct {
	// Reason is the predicate's description.
	Reason string
	// Schedule is a step sequence from the initial state reaching the
	// violating state (for transition violations, the final step is the
	// violating one).
	Schedule []int
}

// Stats is the checker's observability surface, exposed through Result
// and the Progress callback.
type Stats struct {
	// StatesExplored counts distinct states visited (orbit
	// representatives under symmetry reduction).
	StatesExplored int
	// Transitions counts examined non-stutter transitions, including
	// those into already-visited states.
	Transitions int64
	// DedupHits counts transitions into already-visited states.
	DedupHits int64
	// SelfLoops counts stutter steps (successor state equals source),
	// which are excluded from the successor graph.
	SelfLoops int64
	// Depth is the BFS depth reached (number of frontier levels begun).
	Depth int
	// PeakFrontier is the widest BFS level.
	PeakFrontier int
	// PeakMemBytes estimates the peak memory held by the visited index
	// and exploration bookkeeping (machines pending expansion excluded).
	PeakMemBytes int64
	// GroupOrder is the automorphism count used for symmetry reduction
	// (1 when reduction is off or the group is trivial).
	GroupOrder int
	// Shards is the visited-index shard count in effect (1 for the
	// unsharded layout).
	Shards int
	// DeltaStates counts visited states whose key is stored as a delta
	// against a BFS ancestor's key rather than in full.
	DeltaStates int64
	// StoredKeyBytes and LogicalKeyBytes measure delta compression:
	// key bytes as stored versus what full keys would have occupied.
	StoredKeyBytes  int64
	LogicalKeyBytes int64
	// SpilledBytes counts visited-index bytes resident on disk (their
	// peak; spilled bytes are excluded from PeakMemBytes).
	SpilledBytes int64
	// Elapsed is the wall-clock time spent exploring so far.
	Elapsed time.Duration
	// StatesPerSec is StatesExplored / Elapsed.
	StatesPerSec float64
}

// Result summarizes a check.
type Result struct {
	// StatesExplored counts distinct states visited.
	StatesExplored int
	// Complete is true when the reachable state space was exhausted
	// within budget, making the absence of violations a proof.
	Complete bool
	// Exhausted names the budget that ended an incomplete exploration:
	// "states", "time", "memory", or "canceled"; empty otherwise.
	Exhausted string
	// Violation is nil if no predicate fired.
	Violation *Violation
	// Stats carries the engine's observability counters.
	Stats Stats
}

// node is interned exploration bookkeeping.
type node struct {
	parent int // index of parent node; -1 for root
	step   int // processor stepped to reach this state
	stuck  string
	succs  []int
}

// succSpan locates one successor's key inside a batch arena, along with
// the key's hash (computed during expansion, off the merge path).
type succSpan struct {
	start, end int
	hash       uint64
	selfLoop   bool
}

// batch is the per-state expansion output: successor machines plus their
// canonical keys packed into a reusable arena. Batches are reused across
// levels so steady-state expansion does not allocate per state.
//
// pool holds the W sibling clones expand steps in lockstep: CloneInto
// overwrites a slot with an O(1) snapshot of the parent (no heap machine
// per child), and only children the merge/commit pass decides to keep
// are detached onto the heap. succs[p] points into pool — those pointers
// die when the next level's expansion overwrites the slots.
type batch struct {
	m       *machine.Machine
	pool    []machine.Machine
	arena   []byte
	spans   []succSpan
	succs   []*machine.Machine
	err     error
	scratch [3][]byte
}

type checker struct {
	opts          Options
	nProcs        int
	maxStates     int
	progressEvery int
	deadline      time.Time
	start         time.Time
	perms         []system.Permutation // non-identity automorphisms
	idx           *stateIndex
	nodes         []node
	level         []*machine.Machine
	levelIdx      []int
	next          []*machine.Machine
	nextIdx       []int
	res           *Result
	stats         *Stats
	sinceProgress int
	seqBatch      batch
	parBatches    []batch

	// Sharded-pipeline bookkeeping (see sharded.go): per-frontier-state
	// delta ancestors resolved before expansion, per-successor staging
	// outcomes, and the stable arena spilled ancestor keys are read into.
	ancGIDs  []int64
	ancKeys  [][]byte
	ancArena []byte
	outcomes []int64

	// succArena backs every node's succs list. A node's successors are
	// committed contiguously (the commit passes walk (frontier index,
	// processor) in canonical order, one node at a time), so each list is
	// a window re-sliced from the arena tail after each append — one
	// amortized allocation for the whole graph instead of one per node.
	succArena []int

	// machSlab carves storage for kept machines (DetachTo) in chunks, one
	// allocation per chunk instead of one per adopted state. Chunks
	// rotate through three generations (handed out this level, previous
	// level, reusable) in lockstep with cowSlab — see recycleKept.
	machSlab []machine.Machine
	machCur  [][]machine.Machine
	machPrev [][]machine.Machine
	machFree [][]machine.Machine

	// cowSlab backs the arrays kept machines privatize while being
	// primed — adopt runs on the sequential commit path in every engine
	// mode, so one slab serves all of them without synchronization.
	cowSlab machine.Slab
}

// newKept hands out one machine's worth of slab storage.
func (c *checker) newKept() *machine.Machine {
	if len(c.machSlab) == 0 {
		if k := len(c.machFree); k > 0 {
			c.machSlab = c.machFree[k-1]
			c.machFree[k-1] = nil
			c.machFree = c.machFree[:k-1]
		} else {
			c.machSlab = make([]machine.Machine, 128)
		}
		c.machCur = append(c.machCur, c.machSlab)
	}
	m := &c.machSlab[0]
	c.machSlab = c.machSlab[1:]
	return m
}

// recycleKept advances the machine-struct chunk generations at a level
// boundary: everything handed out while expanding the level before last
// is dead (kept machines die when their own level finishes expanding),
// so those chunks become reusable. Reuse overwrites each struct wholly
// via DetachTo, so freed chunks are not cleared.
func (c *checker) recycleKept() {
	c.machFree = append(c.machFree, c.machPrev...)
	c.machPrev, c.machCur = c.machCur, c.machPrev[:0]
	c.machSlab = nil // a partial chunk must not span generations
}

// appendSucc records id as curIdx's next successor. Relies on the
// commit-order invariant above: a node's window is always the arena
// tail while it is being appended to. A growth realloc copies the whole
// arena, so re-slicing by index stays correct; stale windows in the old
// backing are never mutated.
func (c *checker) appendSucc(curIdx, id int) {
	nd := &c.nodes[curIdx]
	start := len(c.succArena) - len(nd.succs)
	c.succArena = append(c.succArena, id)
	nd.succs = c.succArena[start:len(c.succArena):len(c.succArena)]
}

// Check explores all schedules of the machine produced by factory().
// The factory must return a fresh machine in its initial state on every
// call (Check calls it once).
//
// On budget exhaustion Check returns the partial Result alongside
// ErrBudget (or with a nil error when Options.Partial is set); on
// machine execution errors the Result is nil.
func Check(factory func() (*machine.Machine, error), opts Options) (*Result, error) {
	m0, err := factory()
	if err != nil {
		return nil, fmt.Errorf("mc: %w", err)
	}
	c := &checker{
		opts:          opts,
		nProcs:        m0.System().NumProcs(),
		maxStates:     opts.MaxStates,
		progressEvery: opts.ProgressEvery,
		start:         time.Now(),
		res:           &Result{},
		idx:           newStateIndex(opts.Shards, opts.HotIndexBytes, opts.SpillDir),
	}
	defer c.idx.release()
	c.stats = &c.res.Stats
	c.stats.GroupOrder = 1
	if c.maxStates <= 0 {
		c.maxStates = DefaultMaxStates
	}
	if c.progressEvery <= 0 {
		c.progressEvery = DefaultProgressEvery
	}
	if opts.MaxDuration > 0 {
		c.deadline = c.start.Add(opts.MaxDuration)
	}
	if opts.SymmetryReduce {
		auts, err := autgrp.Automorphisms(m0.System(), autgrp.Options{Limit: opts.AutLimit})
		if err != nil {
			return nil, fmt.Errorf("mc: symmetry: %w", err)
		}
		c.stats.GroupOrder = len(auts)
		for _, a := range auts {
			if !isIdentity(a) {
				c.perms = append(c.perms, a)
			}
		}
	}

	// Root. The initial state is fixed by every automorphism (they
	// preserve initial values), but canonicalize anyway for uniformity.
	opts.Obs.PhaseStart("mc.check")
	rootKey := m0.AppendStateKey(nil, nil, nil)
	if len(c.perms) > 0 {
		cand := make([]byte, 0, len(rootKey))
		for _, perm := range c.perms {
			cand = m0.AppendStateKey(cand[:0], perm.ProcPerm, perm.VarPerm)
			if bytes.Compare(cand, rootKey) < 0 {
				rootKey, cand = cand, rootKey
			}
		}
	}
	rootIdx := c.push(m0, rootKey, -1, -1)
	if v := c.checkState(m0, rootIdx); v != nil {
		c.res.Violation = v
		return c.finish(nil)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	c.level, c.levelIdx = c.next, c.nextIdx
	c.next, c.nextIdx = nil, nil
	for len(c.level) > 0 {
		c.stats.Depth++
		if len(c.level) > c.stats.PeakFrontier {
			c.stats.PeakFrontier = len(c.level)
		}
		var done bool
		var err error
		switch {
		case opts.Shards > 1:
			done, err = c.runLevelSharded(workers)
		case workers > 1 && len(c.level) > 1:
			done, err = c.runLevelParallel(workers)
		default:
			done, err = c.runLevelSequential()
		}
		if done {
			return c.finish(err)
		}
		if opts.Obs.Enabled() {
			opts.Obs.StateExpansion("mc", c.res.StatesExplored, c.stats.Depth, c.stats.Transitions)
		}
		// The level boundary is the one point where no staging goroutine
		// can hold hot-chunk slices, so it is the safe place to migrate
		// cold index chunks to disk.
		freed, serr := c.idx.maybeSpill()
		if serr != nil {
			// A failed spill (disk full, unwritable dir) ends exploration,
			// but everything explored so far is intact in memory — degrade
			// to a partial result when the caller opted in, exactly like a
			// budget exhaustion.
			c.res.Complete = false
			c.res.Exhausted = "spill"
			if c.opts.Partial {
				return c.finish(nil)
			}
			return c.finish(serr)
		}
		if freed > 0 && opts.Obs.Enabled() {
			opts.Obs.Spill("mc", freed, c.idx.spilledBytes, c.idx.spillFlushes)
		}
		c.level, c.next = c.next, c.level[:0]
		c.levelIdx, c.nextIdx = c.nextIdx, c.levelIdx[:0]
		// Every machine of the just-expanded level is dead (the merge and
		// commit passes nil the level slots as they finish), so the slab
		// generations advance: chunks retired two boundaries ago are
		// reused for the machines the next level will keep.
		c.recycleKept()
		c.cowSlab.Recycle()
	}
	c.res.Complete = true

	if c.opts.StuckBad != nil {
		if idx, reason := findStuckComponent(c.nodes); idx >= 0 {
			c.res.Violation = &Violation{
				Reason:   "stuck: " + reason,
				Schedule: c.scheduleTo(idx),
			}
		}
	}
	return c.finish(nil)
}

// finish finalizes stats, emits the last progress snapshot, and mirrors
// the exploration counters into the Result.
func (c *checker) finish(err error) (*Result, error) {
	c.stats.StatesExplored = c.res.StatesExplored
	c.stats.Elapsed = time.Since(c.start)
	if secs := c.stats.Elapsed.Seconds(); secs > 0 {
		c.stats.StatesPerSec = float64(c.res.StatesExplored) / secs
	}
	if mem := c.memEstimate(); mem > c.stats.PeakMemBytes {
		c.stats.PeakMemBytes = mem
	}
	snap := c.idx.statsSnapshot()
	c.stats.Shards = snap.shards
	c.stats.DeltaStates = snap.deltaStates
	c.stats.StoredKeyBytes = snap.storedBytes
	c.stats.LogicalKeyBytes = snap.logicalBytes
	c.stats.SpilledBytes = snap.spilledBytes
	if c.opts.Progress != nil {
		c.opts.Progress(*c.stats)
	}
	if rec := c.opts.Obs; rec.Enabled() {
		rec.Count("mc.checks", 1)
		rec.Count("mc.states", int64(c.res.StatesExplored))
		rec.Count("mc.transitions", c.stats.Transitions)
		rec.Count("mc.dedup_hits", c.stats.DedupHits)
		rec.Count("mc.self_loops", c.stats.SelfLoops)
		if c.opts.Shards > 1 || c.opts.HotIndexBytes > 0 {
			// Sharded/spill-mode telemetry only: the emissions below
			// would perturb the deterministic event streams golden-file
			// tests pin for the classic configurations.
			rec.Count("mc.delta_states", snap.deltaStates)
			rec.Count("mc.stored_key_bytes", snap.storedBytes)
			rec.Count("mc.logical_key_bytes", snap.logicalBytes)
			rec.Count("mc.spilled_bytes", snap.spilledBytes)
			rec.Stat("mc.shards", int64(snap.shards))
		}
		rec.Stat("mc.depth", int64(c.stats.Depth))
		rec.Stat("mc.peak_frontier", int64(c.stats.PeakFrontier))
		rec.Observe("mc.check", c.stats.Elapsed)
		detail := "state space closed"
		switch {
		case c.res.Violation != nil:
			detail = c.res.Violation.Reason
		case c.res.Exhausted != "":
			detail = "budget exhausted: " + c.res.Exhausted
		}
		rec.Verdict("mc.check", c.res.Violation == nil, detail)
		rec.PhaseEnd("mc.check", int64(c.res.StatesExplored))
	}
	return c.res, err
}

// runLevelSequential expands and merges the current level one state at a
// time, reusing a single batch.
func (c *checker) runLevelSequential() (bool, error) {
	for i, cur := range c.level {
		c.level[i] = nil // allow GC of expanded states
		c.seqBatch.m = cur
		c.expand(cur, &c.seqBatch)
		if done, err := c.merge(c.levelIdx[i], &c.seqBatch); done {
			return true, err
		}
		c.seqBatch.m = nil
	}
	return false, nil
}

// runLevelParallel fans expansion of the current level over a worker
// pool, then merges the per-state batches sequentially in frontier
// order. The merge order — and therefore every verdict, witness, counter,
// and the exact visited set — matches the sequential engine.
func (c *checker) runLevelParallel(workers int) (bool, error) {
	n := len(c.level)
	if workers > n {
		workers = n
	}
	for len(c.parBatches) < n {
		c.parBatches = append(c.parBatches, batch{})
	}
	batches := c.parBatches[:n]
	chunk := (n + workers - 1) / workers
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			done <- struct{}{}
			continue
		}
		go func(lo, hi int) {
			for i := lo; i < hi; i++ {
				batches[i].m = c.level[i]
				c.expand(c.level[i], &batches[i])
			}
			done <- struct{}{}
		}(lo, hi)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	for i := range batches {
		c.level[i] = nil
		if stop, err := c.merge(c.levelIdx[i], &batches[i]); stop {
			return true, err
		}
		batches[i].m = nil
	}
	return false, nil
}

// expand computes all successors of cur into b: cloned machines plus
// their canonical binary keys. Pure with respect to checker state except
// for b, so level expansion parallelizes; predicates never run here.
//
// This is the batch-stepping hot loop: cur was primed when it was
// adopted (every fingerprint window valid in its private arena), so its
// own key is a pure window copy, and each sibling clone stepped out of
// the pool re-encodes only the ≤1 frame and ≤2 variables its step
// touched — every other component is copied straight out of the
// parent's frozen arena.
func (c *checker) expand(cur *machine.Machine, b *batch) {
	b.err = nil
	b.arena = b.arena[:0]
	b.spans = b.spans[:0]
	b.succs = b.succs[:0]
	if len(b.pool) < c.nProcs {
		b.pool = make([]machine.Machine, c.nProcs)
	}
	curKey := cur.AppendStateKey(b.scratch[0][:0], nil, nil)
	b.scratch[0] = curKey
	for p := 0; p < c.nProcs; p++ {
		next := &b.pool[p]
		cur.CloneInto(next)
		if err := next.Step(p); err != nil {
			b.err = fmt.Errorf("mc: stepping %d: %w", p, err)
			return
		}
		start := len(b.arena)
		var hash uint64
		var selfLoop bool
		if len(c.perms) == 0 {
			// Encode straight into the batch arena — no scratch bounce.
			b.arena = next.AppendStateKey(b.arena, nil, nil)
			key := b.arena[start:]
			selfLoop = bytes.Equal(key, curKey)
			if !selfLoop {
				hash = canon.HashBytes(key)
			}
		} else {
			// Symmetry mode compares the raw key against its whole orbit
			// before committing one representative to the arena.
			raw := next.AppendStateKey(b.scratch[1][:0], nil, nil)
			b.scratch[1] = raw
			selfLoop = bytes.Equal(raw, curKey)
			key := raw
			if !selfLoop {
				key = c.minimizeKey(next, b)
				hash = canon.HashBytes(key)
			}
			b.arena = append(b.arena, key...)
		}
		b.spans = append(b.spans, succSpan{start: start, end: len(b.arena), hash: hash, selfLoop: selfLoop})
		b.succs = append(b.succs, next)
	}
}

// minimizeKey returns the lexicographically least state key of m over
// the automorphism group — the orbit-canonical representative key. The
// raw key is already in b.scratch[1].
func (c *checker) minimizeKey(m *machine.Machine, b *batch) []byte {
	best := b.scratch[1]
	cand := b.scratch[2]
	for _, perm := range c.perms {
		cand = m.AppendStateKey(cand[:0], perm.ProcPerm, perm.VarPerm)
		if bytes.Compare(cand, best) < 0 {
			best, cand = cand, best
		}
	}
	b.scratch[1], b.scratch[2] = best, cand
	return best
}

// merge folds one expanded batch into the exploration: transition
// predicates (before the self-loop skip — stutter steps are visible to
// predicates, excluded only from the successor graph), dedup against the
// hashed index, budget checks before each push, state predicates on new
// states. Runs only on the coordinating goroutine, in frontier order.
func (c *checker) merge(curIdx int, b *batch) (bool, error) {
	if b.err != nil {
		return true, b.err
	}
	// The parent's full-stored key ancestor (for delta-encoding new
	// successors) is resolved lazily, once per batch: dedup-only batches
	// never touch it.
	ancGID := int64(-2)
	var ancKey []byte
	for p, sp := range b.spans {
		next := b.succs[p]
		for _, pred := range c.opts.TransPreds {
			if reason := pred(b.m, next, p); reason != "" {
				c.res.Violation = &Violation{
					Reason:   reason,
					Schedule: append(c.scheduleTo(curIdx), p),
				}
				return true, nil
			}
		}
		if sp.selfLoop {
			c.stats.SelfLoops++
			continue
		}
		c.stats.Transitions++
		key := b.arena[sp.start:sp.end]
		if gid, ok, err := c.idx.lookupHashed(key, sp.hash); err != nil {
			return true, err
		} else if ok {
			c.stats.DedupHits++
			c.appendSucc(curIdx, int(gid-c.idx.baseID))
			continue
		} else if c.res.StatesExplored >= c.maxStates {
			// Budget check strictly before the push: the checker
			// explores exactly MaxStates states, never MaxStates+1.
			return true, c.exhaust("states")
		} else {
			if ancGID == -2 {
				c.ancArena = c.ancArena[:0]
				ancGID, ancKey, err = c.idx.ancestorFor(c.idx.baseID+int64(curIdx), &c.ancArena)
				if err != nil {
					return true, err
				}
			}
			// Detach the pool slot onto the heap before adoption; the
			// pool pointer must not be read past this point (priming the
			// kept machine rebases span arrays the slot still aliases).
			kept := next.DetachTo(c.newKept())
			id := c.pushHashed(kept, key, sp.hash, curIdx, p, ancGID, ancKey)
			c.appendSucc(curIdx, id)
			if v := c.checkState(kept, id); v != nil {
				c.res.Violation = v
				return true, nil
			}
		}
		if stop, err := c.pollBudgets(); stop {
			return true, err
		}
	}
	return false, nil
}

// push interns a state under key and appends its node; the id equals the
// node index.
func (c *checker) push(m *machine.Machine, key []byte, parent, step int) int {
	return c.pushHashed(m, key, canon.HashBytes(key), parent, step, -1, nil)
}

func (c *checker) pushHashed(m *machine.Machine, key []byte, hash uint64, parent, step int, ancGID int64, ancKey []byte) int {
	gid := c.idx.insert(key, hash, ancGID, ancKey)
	c.adopt(m, parent, step)
	return int(gid - c.idx.baseID)
}

// adopt appends the exploration bookkeeping for a state that was just
// committed to the index: its node, frontier slot, stuck flag, and the
// explored-state counters. The node index always equals the committed
// gid minus baseID because ids are dense and assigned in commit order.
//
// Priming here — once per kept state, never per candidate — rebases the
// machine onto a private fingerprint arena with every window valid, so
// the next level's expansion reads it (and its own children read the
// frozen arena) without encoding anything that didn't change.
func (c *checker) adopt(m *machine.Machine, parent, step int) int {
	m.SetSlab(&c.cowSlab)
	m.PrimeFingerprints()
	stuck := ""
	if c.opts.StuckBad != nil {
		stuck = c.opts.StuckBad(m)
	}
	id := len(c.nodes)
	c.nodes = append(c.nodes, node{parent: parent, step: step, stuck: stuck})
	c.next = append(c.next, m)
	c.nextIdx = append(c.nextIdx, id)
	c.res.StatesExplored++
	c.sinceProgress++
	return id
}

// pollBudgets emits progress snapshots and enforces the time and memory
// budgets. Called after each push.
func (c *checker) pollBudgets() (bool, error) {
	if c.sinceProgress >= c.progressEvery {
		c.sinceProgress = 0
		if mem := c.memEstimate(); mem > c.stats.PeakMemBytes {
			c.stats.PeakMemBytes = mem
		}
		if c.opts.Progress != nil {
			c.stats.StatesExplored = c.res.StatesExplored
			c.stats.Elapsed = time.Since(c.start)
			if secs := c.stats.Elapsed.Seconds(); secs > 0 {
				c.stats.StatesPerSec = float64(c.res.StatesExplored) / secs
			}
			c.opts.Progress(*c.stats)
		}
	}
	if c.opts.MaxMemBytes > 0 {
		if mem := c.memEstimate(); mem > c.opts.MaxMemBytes {
			if mem > c.stats.PeakMemBytes {
				c.stats.PeakMemBytes = mem
			}
			return true, c.exhaust("memory")
		}
	}
	if c.res.StatesExplored%64 == 0 {
		if !c.deadline.IsZero() && time.Now().After(c.deadline) {
			return true, c.exhaust("time")
		}
		if c.opts.Ctx != nil && c.opts.Ctx.Err() != nil {
			return true, c.exhaust("canceled")
		}
	}
	return false, nil
}

// memEstimate approximates the checker's resident footprint: the visited
// index plus per-node bookkeeping and successor edges. Capacities, not
// lengths: the nodes slice's grown backing array is real memory whether
// or not it is full yet.
func (c *checker) memEstimate() int64 {
	const nodeOverhead = 80 // node struct + slice headers, amortized
	return c.idx.memBytes() + int64(cap(c.nodes))*nodeOverhead + c.stats.Transitions*8
}

// exhaust records which budget ended the run; with Options.Partial the
// partial Result is returned without error.
func (c *checker) exhaust(kind string) error {
	c.res.Exhausted = kind
	c.res.Complete = false
	if c.opts.Partial {
		return nil
	}
	return fmt.Errorf("%w (%s): %d states", ErrBudget, kind, c.res.StatesExplored)
}

func (c *checker) scheduleTo(idx int) []int {
	var rev []int
	for idx >= 0 && c.nodes[idx].parent >= 0 {
		rev = append(rev, c.nodes[idx].step)
		idx = c.nodes[idx].parent
	}
	out := make([]int, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

func (c *checker) checkState(m *machine.Machine, idx int) *Violation {
	for _, pred := range c.opts.StatePreds {
		if reason := pred(m); reason != "" {
			return &Violation{Reason: reason, Schedule: c.scheduleTo(idx)}
		}
	}
	return nil
}

// isIdentity reports whether perm maps every node to itself.
func isIdentity(perm system.Permutation) bool {
	for i, v := range perm.ProcPerm {
		if v != i {
			return false
		}
	}
	for i, v := range perm.VarPerm {
		if v != i {
			return false
		}
	}
	return true
}

// findStuckComponent runs Tarjan's SCC algorithm (iteratively) and
// returns a representative node of the first terminal SCC whose states
// are all flagged stuck, or (-1, ""). Under symmetry reduction the graph
// is the orbit quotient; a terminal all-bad component there corresponds
// to one in the full graph because the stuck predicate is
// automorphism-invariant.
func findStuckComponent(nodes []node) (int, string) {
	n := len(nodes)
	const unvisited = -1
	indexOf := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range indexOf {
		indexOf[i] = unvisited
		comp[i] = -1
	}
	var stack []int
	counter := 0
	nComps := 0

	type frame struct {
		v, childPos int
	}
	for start := 0; start < n; start++ {
		if indexOf[start] != unvisited {
			continue
		}
		callStack := []frame{{v: start}}
		indexOf[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(callStack) > 0 {
			fr := &callStack[len(callStack)-1]
			v := fr.v
			if fr.childPos < len(nodes[v].succs) {
				w := nodes[v].succs[fr.childPos]
				fr.childPos++
				if indexOf[w] == unvisited {
					indexOf[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w})
				} else if onStack[w] {
					if indexOf[w] < low[v] {
						low[v] = indexOf[w]
					}
				}
				continue
			}
			// Post-visit.
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := callStack[len(callStack)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == indexOf[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComps
					if w == v {
						break
					}
				}
				nComps++
			}
		}
	}

	// A component is terminal when no edge leaves it; it is stuck-bad
	// when every member is flagged.
	terminal := make([]bool, nComps)
	allBad := make([]bool, nComps)
	reason := make([]string, nComps)
	repr := make([]int, nComps)
	for c := range terminal {
		terminal[c] = true
		allBad[c] = true
		repr[c] = -1
	}
	for v := range nodes {
		c := comp[v]
		if repr[c] == -1 {
			repr[c] = v
		}
		if nodes[v].stuck == "" {
			allBad[c] = false
		} else if reason[c] == "" {
			reason[c] = nodes[v].stuck
		}
		for _, w := range nodes[v].succs {
			if comp[w] != c {
				terminal[c] = false
			}
		}
	}
	for c := 0; c < nComps; c++ {
		if terminal[c] && allBad[c] {
			return repr[c], reason[c]
		}
	}
	return -1, ""
}

// UniquenessPred flags states with two or more selected processors — the
// selection problem's Uniqueness requirement.
func UniquenessPred(m *machine.Machine) string {
	if sel := m.SelectedProcs(); len(sel) >= 2 {
		return fmt.Sprintf("uniqueness violated: processors %v all selected", sel)
	}
	return ""
}

// StabilityPred flags transitions where a selected processor becomes
// unselected — the selection problem's Stability requirement.
func StabilityPred(before, after *machine.Machine, _ int) string {
	selBefore := before.SelectedProcs()
	selAfterSet := make(map[int]bool)
	for _, p := range after.SelectedProcs() {
		selAfterSet[p] = true
	}
	for _, p := range selBefore {
		if !selAfterSet[p] {
			return fmt.Sprintf("stability violated: processor %d unselected", p)
		}
	}
	return ""
}

// NotAllHalted is a StuckBad predicate: a terminal component whose states
// still have running processors is a deadlock or livelock.
func NotAllHalted(m *machine.Machine) string {
	if !m.AllHalted() {
		return "processors can never all halt"
	}
	return ""
}

// NoneSelectedAndAllHalted flags states where every processor halted
// without anyone selected — a selection algorithm that gave up.
func NoneSelectedAndAllHalted(m *machine.Machine) string {
	if m.AllHalted() && len(m.SelectedProcs()) == 0 {
		return "all processors halted with no selection"
	}
	return ""
}
