// Package mc is an explicit-state model checker over schedule
// nondeterminism: it explores every reachable machine state under every
// finite schedule (breadth-first, deduplicated by canonical state
// fingerprints) and checks safety predicates.
//
// Safety over all finite schedules is exactly the right notion for the
// paper's selection problem: every finite step sequence is a prefix of
// some fair schedule, so Uniqueness and Stability under fair (or
// bounded-fair) schedules hold iff no reachable state violates them. The
// checker additionally finds stuck terminal components — sets of states
// (deadlocks or spin livelocks) that, once entered, can never be left and
// never reach a good state — which is how dining-philosopher deadlocks
// are detected. Violating schedules are reconstructed; Theorem 1's
// adversary (the FLP construction) falls out as a reachability witness.
package mc

import (
	"errors"
	"fmt"

	"simsym/internal/machine"
)

// Sentinel errors.
var (
	ErrBudget = errors.New("mc: state budget exhausted before closure")
)

// StatePredicate inspects a state; a non-empty return is a violation
// description.
type StatePredicate func(m *machine.Machine) string

// TransitionPredicate inspects a transition (before --proc--> after); a
// non-empty return is a violation description.
type TransitionPredicate func(before, after *machine.Machine, proc int) string

// Options configures a check.
type Options struct {
	// MaxStates bounds exploration; 0 means the default (200_000).
	MaxStates int
	// States are violations when any StatePredicate flags them.
	StatePreds []StatePredicate
	// Transitions are violations when any TransitionPredicate flags them.
	TransPreds []TransitionPredicate
	// StuckBad, when non-nil, is evaluated on every state; after the
	// state space closes, a terminal strongly-connected component all of
	// whose states are flagged is reported as a violation. This catches
	// both quiescent deadlocks and busy-waiting livelocks: once inside
	// such a component, no schedule can ever reach an unflagged state.
	StuckBad StatePredicate
}

// DefaultMaxStates is the default exploration budget.
const DefaultMaxStates = 200_000

// Violation describes a found counterexample.
type Violation struct {
	// Reason is the predicate's description.
	Reason string
	// Schedule is a step sequence from the initial state reaching the
	// violating state (for transition violations, the final step is the
	// violating one).
	Schedule []int
}

// Result summarizes a check.
type Result struct {
	// StatesExplored counts distinct states visited.
	StatesExplored int
	// Complete is true when the reachable state space was exhausted
	// within budget, making the absence of violations a proof.
	Complete bool
	// Violation is nil if no predicate fired.
	Violation *Violation
}

// node is interned exploration bookkeeping.
type node struct {
	parent int // index of parent node; -1 for root
	step   int // processor stepped to reach this state
	stuck  string
	succs  []int
}

// Check explores all schedules of the machine produced by factory().
// The factory must return a fresh machine in its initial state on every
// call (Check calls it once).
func Check(factory func() (*machine.Machine, error), opts Options) (*Result, error) {
	m0, err := factory()
	if err != nil {
		return nil, fmt.Errorf("mc: %w", err)
	}
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	nProcs := m0.System().NumProcs()

	index := make(map[string]int)
	var nodes []node
	var frontier []*machine.Machine
	var frontierIdx []int

	res := &Result{}

	push := func(m *machine.Machine, fp string, parent, step int) int {
		idx := len(nodes)
		index[fp] = idx
		stuck := ""
		if opts.StuckBad != nil {
			stuck = opts.StuckBad(m)
		}
		nodes = append(nodes, node{parent: parent, step: step, stuck: stuck})
		frontier = append(frontier, m)
		frontierIdx = append(frontierIdx, idx)
		res.StatesExplored++
		return idx
	}

	scheduleTo := func(idx int) []int {
		var rev []int
		for idx >= 0 && nodes[idx].parent >= 0 {
			rev = append(rev, nodes[idx].step)
			idx = nodes[idx].parent
		}
		out := make([]int, len(rev))
		for i := range rev {
			out[i] = rev[len(rev)-1-i]
		}
		return out
	}

	checkState := func(m *machine.Machine, idx int) *Violation {
		for _, pred := range opts.StatePreds {
			if reason := pred(m); reason != "" {
				return &Violation{Reason: reason, Schedule: scheduleTo(idx)}
			}
		}
		return nil
	}

	rootIdx := push(m0, m0.Fingerprint(), -1, -1)
	if v := checkState(m0, rootIdx); v != nil {
		res.Violation = v
		return res, nil
	}

	for head := 0; head < len(frontier); head++ {
		cur := frontier[head]
		curIdx := frontierIdx[head]
		frontier[head] = nil // allow GC of expanded states
		curFP := cur.Fingerprint()
		for p := 0; p < nProcs; p++ {
			next := cur.Clone()
			if err := next.Step(p); err != nil {
				return nil, fmt.Errorf("mc: stepping %d: %w", p, err)
			}
			nextFP := next.Fingerprint()
			if nextFP == curFP {
				continue // self-loop (halted or no-effect step)
			}
			for _, pred := range opts.TransPreds {
				if reason := pred(cur, next, p); reason != "" {
					res.Violation = &Violation{
						Reason:   reason,
						Schedule: append(scheduleTo(curIdx), p),
					}
					return res, nil
				}
			}
			nextIdx, seen := index[nextFP]
			if !seen {
				nextIdx = push(next, nextFP, curIdx, p)
				if v := checkState(next, nextIdx); v != nil {
					res.Violation = v
					return res, nil
				}
				if res.StatesExplored > maxStates {
					return res, fmt.Errorf("%w: %d states", ErrBudget, res.StatesExplored)
				}
			}
			nodes[curIdx].succs = append(nodes[curIdx].succs, nextIdx)
		}
	}
	res.Complete = true

	if opts.StuckBad != nil {
		if idx, reason := findStuckComponent(nodes); idx >= 0 {
			res.Violation = &Violation{
				Reason:   "stuck: " + reason,
				Schedule: scheduleTo(idx),
			}
		}
	}
	return res, nil
}

// findStuckComponent runs Tarjan's SCC algorithm (iteratively) and
// returns a representative node of the first terminal SCC whose states
// are all flagged stuck, or (-1, "").
func findStuckComponent(nodes []node) (int, string) {
	n := len(nodes)
	const unvisited = -1
	indexOf := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range indexOf {
		indexOf[i] = unvisited
		comp[i] = -1
	}
	var stack []int
	counter := 0
	nComps := 0

	type frame struct {
		v, childPos int
	}
	for start := 0; start < n; start++ {
		if indexOf[start] != unvisited {
			continue
		}
		callStack := []frame{{v: start}}
		indexOf[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(callStack) > 0 {
			fr := &callStack[len(callStack)-1]
			v := fr.v
			if fr.childPos < len(nodes[v].succs) {
				w := nodes[v].succs[fr.childPos]
				fr.childPos++
				if indexOf[w] == unvisited {
					indexOf[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w})
				} else if onStack[w] {
					if indexOf[w] < low[v] {
						low[v] = indexOf[w]
					}
				}
				continue
			}
			// Post-visit.
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := callStack[len(callStack)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == indexOf[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComps
					if w == v {
						break
					}
				}
				nComps++
			}
		}
	}

	// A component is terminal when no edge leaves it; it is stuck-bad
	// when every member is flagged.
	terminal := make([]bool, nComps)
	allBad := make([]bool, nComps)
	reason := make([]string, nComps)
	repr := make([]int, nComps)
	for c := range terminal {
		terminal[c] = true
		allBad[c] = true
		repr[c] = -1
	}
	for v := range nodes {
		c := comp[v]
		if repr[c] == -1 {
			repr[c] = v
		}
		if nodes[v].stuck == "" {
			allBad[c] = false
		} else if reason[c] == "" {
			reason[c] = nodes[v].stuck
		}
		for _, w := range nodes[v].succs {
			if comp[w] != c {
				terminal[c] = false
			}
		}
	}
	for c := 0; c < nComps; c++ {
		if terminal[c] && allBad[c] {
			return repr[c], reason[c]
		}
	}
	return -1, ""
}

// UniquenessPred flags states with two or more selected processors — the
// selection problem's Uniqueness requirement.
func UniquenessPred(m *machine.Machine) string {
	if sel := m.SelectedProcs(); len(sel) >= 2 {
		return fmt.Sprintf("uniqueness violated: processors %v all selected", sel)
	}
	return ""
}

// StabilityPred flags transitions where a selected processor becomes
// unselected — the selection problem's Stability requirement.
func StabilityPred(before, after *machine.Machine, _ int) string {
	selBefore := before.SelectedProcs()
	selAfterSet := make(map[int]bool)
	for _, p := range after.SelectedProcs() {
		selAfterSet[p] = true
	}
	for _, p := range selBefore {
		if !selAfterSet[p] {
			return fmt.Sprintf("stability violated: processor %d unselected", p)
		}
	}
	return ""
}

// NotAllHalted is a StuckBad predicate: a terminal component whose states
// still have running processors is a deadlock or livelock.
func NotAllHalted(m *machine.Machine) string {
	if !m.AllHalted() {
		return "processors can never all halt"
	}
	return ""
}

// NoneSelectedAndAllHalted flags states where every processor halted
// without anyone selected — a selection algorithm that gave up.
func NoneSelectedAndAllHalted(m *machine.Machine) string {
	if m.AllHalted() && len(m.SelectedProcs()) == 0 {
		return "all processors halted with no selection"
	}
	return ""
}
