package mc

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"simsym/internal/obs"
	"simsym/internal/system"
)

var updateGolden = flag.Bool("update", false, "rewrite golden event-stream files")

// TestObsEventCountsMatchStats cross-checks the event stream against the
// Stats the checker reports through Result: one mc.check phase, one
// StateExpansion event per BFS level, and a final expansion event whose
// payload equals the closing counters. This is the contract that lets a
// trace consumer reconstruct Stats without the Go API.
func TestObsEventCountsMatchStats(t *testing.T) {
	ring := obs.NewRing(0)
	rec := obs.New(ring)
	res, err := Check(factoryFor(t, system.Fig1(), system.InstrL, lockClaim), Options{
		StatePreds: []StatePredicate{UniquenessPred},
		Obs:        rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.Violation != nil {
		t.Fatalf("expected a clean complete run, got %+v", res)
	}

	byKind := ring.CountByKind()
	if byKind[obs.KindPhaseStart] != 1 || byKind[obs.KindPhaseEnd] != 1 {
		t.Fatalf("want exactly one mc.check phase, got %d starts / %d ends",
			byKind[obs.KindPhaseStart], byKind[obs.KindPhaseEnd])
	}
	if got := byKind[obs.KindStateExpansion]; got != res.Stats.Depth {
		t.Errorf("StateExpansion events = %d, want one per BFS level (Depth=%d)", got, res.Stats.Depth)
	}
	if byKind[obs.KindVerdict] != 1 {
		t.Fatalf("want exactly one verdict, got %d", byKind[obs.KindVerdict])
	}

	var lastExp, verdict, phaseEnd obs.Event
	for _, e := range ring.Events() {
		switch e.Kind {
		case obs.KindStateExpansion:
			lastExp = e
		case obs.KindVerdict:
			verdict = e
		case obs.KindPhaseEnd:
			phaseEnd = e
		}
	}
	if lastExp.Kind != obs.KindStateExpansion {
		t.Fatal("no StateExpansion events")
	}
	if lastExp.A != int64(res.StatesExplored) || lastExp.B != int64(res.Stats.Depth) || lastExp.C != res.Stats.Transitions {
		t.Errorf("final StateExpansion (%d, %d, %d) should mirror Stats (%d, %d, %d)",
			lastExp.A, lastExp.B, lastExp.C, res.StatesExplored, res.Stats.Depth, res.Stats.Transitions)
	}
	if verdict.Name != "mc.check" || verdict.A != 1 {
		t.Errorf("verdict should report mc.check ok, got %+v", verdict)
	}
	if phaseEnd.A != int64(res.StatesExplored) {
		t.Errorf("phase end should carry the state count, got %+v", phaseEnd)
	}

	// Counters mirror Stats exactly.
	reg := rec.Metrics()
	for name, want := range map[string]int64{
		"mc.checks":      1,
		"mc.states":      int64(res.StatesExplored),
		"mc.transitions": res.Stats.Transitions,
		"mc.dedup_hits":  res.Stats.DedupHits,
		"mc.self_loops":  res.Stats.SelfLoops,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
	if reg.Histogram("mc.check").Count() != 1 {
		t.Error("mc.check latency histogram should hold exactly one sample")
	}
}

// TestObsGoldenEventStream pins the full JSONL event stream of a fixed
// deterministic check against a checked-in golden file. Events carry no
// wall-clock payloads, so the stream is byte-identical across runs and
// machines; regenerate with `go test ./internal/mc -run Golden -update`.
func TestObsGoldenEventStream(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	res, err := Check(factoryFor(t, system.Fig1(), system.InstrL, lockClaim), Options{
		StatePreds: []StatePredicate{UniquenessPred},
		TransPreds: []TransitionPredicate{StabilityPred},
		Obs:        obs.New(sink),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("run should close the state space: %+v", res)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "check_events.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("event stream diverged from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	// Parallel expansion must produce the identical stream.
	var pbuf bytes.Buffer
	psink := obs.NewJSONL(&pbuf)
	if _, err := Check(factoryFor(t, system.Fig1(), system.InstrL, lockClaim), Options{
		StatePreds: []StatePredicate{UniquenessPred},
		TransPreds: []TransitionPredicate{StabilityPred},
		Workers:    4,
		Obs:        obs.New(psink),
	}); err != nil {
		t.Fatal(err)
	}
	if err := psink.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pbuf.Bytes(), want) {
		t.Error("parallel engine emitted a different event stream than sequential")
	}
}

// TestContextCancellation: a canceled context degrades like any other
// budget.
func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Check(factoryFor(t, system.Fig1(), system.InstrS, spinForever), Options{
		Ctx:     ctx,
		Partial: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhausted != "canceled" || res.Complete {
		t.Errorf("result = %+v, want canceled exhaustion", res)
	}
	if _, err := Check(factoryFor(t, system.Fig1(), system.InstrS, spinForever), Options{Ctx: ctx}); err == nil {
		t.Error("without Partial, cancellation should surface ErrBudget")
	}
}
