package mc

import (
	"errors"
	"strings"
	"testing"

	"simsym/internal/machine"
	"simsym/internal/system"
)

func factoryFor(t *testing.T, s *system.System, instr system.InstrSet, build func(b *machine.Builder)) func() (*machine.Machine, error) {
	t.Helper()
	b := machine.NewBuilder()
	build(b)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return func() (*machine.Machine, error) {
		return machine.New(s, instr, prog)
	}
}

// naiveClaim is the Theorem 1 strawman: an S program that reads the shared
// variable, claims leadership if it looks untaken, then writes a marker.
// Read and claim are separate atomic steps, so two processors can both
// read "untaken" before either writes — the model checker must find that
// schedule (this is the FLP-flavored adversary of Theorem 1).
func naiveClaim(b *machine.Builder) {
	x, selected, mark := b.Sym("x"), b.Sym("selected"), b.Sym("mark")
	b.Read("n", "x")
	b.Compute(func(r *machine.Regs) {
		if r.Get(x) == "0" {
			r.Set(selected, true)
			r.Set(mark, "taken")
		} else {
			r.Set(mark, "seen")
		}
	})
	b.Write("n", "mark")
	b.Halt()
}

func TestTheorem1NaiveSelectionViolatesUniqueness(t *testing.T) {
	res, err := Check(factoryFor(t, system.Fig1(), system.InstrS, naiveClaim), Options{
		StatePreds: []StatePredicate{UniquenessPred},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("model checker must find the double-selection schedule")
	}
	if !strings.Contains(res.Violation.Reason, "uniqueness") {
		t.Errorf("reason = %q", res.Violation.Reason)
	}
	if len(res.Violation.Schedule) == 0 {
		t.Error("violation should carry a witness schedule")
	}
	// Replay the witness schedule and confirm it really double-selects.
	m, err := factoryFor(t, system.Fig1(), system.InstrS, naiveClaim)()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Violation.Schedule {
		if err := m.Step(p); err != nil {
			t.Fatal(err)
		}
	}
	if sel := m.SelectedProcs(); len(sel) < 2 {
		t.Errorf("replayed schedule selects %v, want 2 processors", sel)
	}
}

// lockClaim is the correct L selection for Figure 1: the lock race picks
// exactly one winner under every schedule.
func lockClaim(b *machine.Builder) {
	got, selected := b.Sym("got"), b.Sym("selected")
	b.Lock("n", "got")
	b.Compute(func(r *machine.Regs) {
		if r.Get(got) == true {
			r.Set(selected, true)
		}
	})
	b.Halt()
}

func TestLockSelectionSafeUnderAllSchedules(t *testing.T) {
	res, err := Check(factoryFor(t, system.Fig1(), system.InstrL, lockClaim), Options{
		StatePreds: []StatePredicate{UniquenessPred},
		TransPreds: []TransitionPredicate{StabilityPred},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("lock-based selection should be safe, got %s (schedule %v)",
			res.Violation.Reason, res.Violation.Schedule)
	}
	if !res.Complete {
		t.Error("tiny state space should be fully explored")
	}
}

func TestStabilityViolationDetected(t *testing.T) {
	// A program that selects then deselects must be flagged.
	res, err := Check(factoryFor(t, system.Fig1(), system.InstrS, func(b *machine.Builder) {
		selected := b.Sym("selected")
		b.Compute(func(r *machine.Regs) { r.Set(selected, true) })
		b.Compute(func(r *machine.Regs) { r.Set(selected, false) })
		b.Halt()
	}), Options{
		TransPreds: []TransitionPredicate{StabilityPred},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil || !strings.Contains(res.Violation.Reason, "stability") {
		t.Fatalf("violation = %+v, want stability", res.Violation)
	}
}

// crossedLocks builds the minimal deadlock system: two processors locking
// the same two variables in opposite orders.
func crossedLocks() *system.System {
	return &system.System{
		Names:    []system.Name{"a", "b"},
		ProcIDs:  []string{"p0", "p1"},
		VarIDs:   []string{"v0", "v1"},
		Nbr:      [][]int{{0, 1}, {1, 0}},
		ProcInit: []string{"0", "0"},
		VarInit:  []string{"0", "0"},
	}
}

func spinLockBoth(b *machine.Builder) {
	ga, gb := b.Sym("ga"), b.Sym("gb")
	b.Label("la")
	b.Lock("a", "ga")
	b.JumpIf(func(r *machine.Regs) bool { return r.Get(ga) != true }, "la")
	b.Label("lb")
	b.Lock("b", "gb")
	b.JumpIf(func(r *machine.Regs) bool { return r.Get(gb) != true }, "lb")
	b.Halt()
}

func TestDeadlockDetection(t *testing.T) {
	res, err := Check(factoryFor(t, crossedLocks(), system.InstrL, spinLockBoth), Options{
		StuckBad: func(m *machine.Machine) string {
			if !m.AllHalted() {
				return "processors spinning forever (deadlock)"
			}
			return ""
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil || !strings.Contains(res.Violation.Reason, "deadlock") {
		t.Fatalf("violation = %+v, want deadlock", res.Violation)
	}
}

func TestNoDeadlockWhenOrdered(t *testing.T) {
	// Same two processors, but both lock v0 before v1 (a resource
	// hierarchy): no deadlock is reachable and the space closes.
	s := crossedLocks()
	s.Nbr = [][]int{{0, 1}, {0, 1}} // both: a->v0, b->v1
	b := machine.NewBuilder()
	ga := b.Sym("ga")
	b.Label("la")
	b.Lock("a", "ga")
	b.JumpIf(func(r *machine.Regs) bool { return r.Get(ga) != true }, "la")
	b.Lock("b", "gb")
	b.Unlock("b")
	b.Unlock("a")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Check(func() (*machine.Machine, error) {
		return machine.New(s, system.InstrL, prog)
	}, Options{StuckBad: NotAllHalted})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Violation != nil {
		t.Fatalf("ordered locking should be deadlock-free: %+v (schedule %v)",
			res2.Violation.Reason, res2.Violation.Schedule)
	}
	if !res2.Complete {
		t.Error("state space should close")
	}
}

func TestBudgetExhaustion(t *testing.T) {
	_, err := Check(factoryFor(t, system.Fig1(), system.InstrS, func(b *machine.Builder) {
		n := b.Sym("n")
		b.Compute(func(r *machine.Regs) { r.Set(n, 0) })
		b.Label("loop")
		b.Compute(func(r *machine.Regs) { r.Set(n, r.Int(n)+1) })
		b.Jump("loop")
	}), Options{MaxStates: 100})
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestInitialStateViolationCaught(t *testing.T) {
	// Predicate that fires immediately.
	res, err := Check(factoryFor(t, system.Fig1(), system.InstrS, func(b *machine.Builder) {
		b.Halt()
	}), Options{
		StatePreds: []StatePredicate{func(m *machine.Machine) string { return "always bad" }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil || len(res.Violation.Schedule) != 0 {
		t.Fatalf("initial-state violation should have empty schedule, got %+v", res.Violation)
	}
}

func TestNoneSelectedAndAllHalted(t *testing.T) {
	m, err := factoryFor(t, system.Fig1(), system.InstrS, func(b *machine.Builder) { b.Halt() })()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Step(1); err != nil {
		t.Fatal(err)
	}
	if got := NoneSelectedAndAllHalted(m); got == "" {
		t.Error("all-halted-unselected should be flagged")
	}
}

func TestFactoryErrorPropagates(t *testing.T) {
	_, err := Check(func() (*machine.Machine, error) {
		return nil, errors.New("boom")
	}, Options{})
	if err == nil {
		t.Error("factory error should propagate")
	}
}
