// Statistical model checking: instead of exhaustively closing the state
// space, Sample draws i.i.d. random executions and estimates the
// probability that a bounded run violates the checked predicates. The
// sample size is fixed a priori by the Okamoto/Chernoff–Hoeffding bound,
// so "stopping" means drawing exactly OkamotoBound(ε, δ) trials: the
// empirical violation frequency is then within ε of the true probability
// with confidence 1−δ, unconditionally (no variance estimate, no
// sequential-testing correction needed).
//
// The sampler is generic over a TrialFunc rather than running the
// adversary harness directly, because the adversary package imports mc
// for its predicate types; the root facade closes the loop by wiring
// harness-backed trials into Sample. Determinism is by construction:
// every trial's PRNG seed is derived from (base seed, sample index) via
// SplitMix64, trials are merged in sample-index order, and progress
// events fire at fixed round boundaries — so the result is byte-for-byte
// identical across worker counts.
package mc

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"simsym/internal/machine"
	"simsym/internal/obs"
)

// ProcPredicate inspects the machine immediately after processor proc
// executed a step; a non-empty return is a violation description. Unlike
// StatePredicate — which sampled runs would otherwise evaluate over all
// n processors after every step — implementations are expected to
// confine their inspection to state within O(1) of proc, which is what
// makes per-step safety checking affordable at large n inside sampled
// executions.
type ProcPredicate func(m *machine.Machine, proc int) string

// LocalUniquenessPred is the ProcPredicate form of UniquenessPred. After
// a step, a second selected processor can exist only if the stepping
// processor is itself selected (selection flags change only on the
// owner's own steps; faults halt or unlock, never select), so the O(n)
// scan runs only on the rare selected step — every other step costs one
// slot read.
func LocalUniquenessPred(m *machine.Machine, proc int) string {
	if !m.Selected(proc) {
		return ""
	}
	return UniquenessPred(m)
}

// Trial reports one sampled execution.
type Trial struct {
	// Violated reports whether any checked predicate flagged the run.
	Violated bool
	// Reason is the first violation's description (empty otherwise).
	Reason string
	// Steps counts executed machine steps; Slots counts scheduler slots
	// offered (burned slots included).
	Steps int
	Slots int
	// Schedule is the slot-by-slot processor sequence, recorded only
	// when the trial was run with capture=true (nil otherwise — the hot
	// path must not allocate per-slot history).
	Schedule []int
}

// TrialFunc runs one sampled execution: it derives all randomness
// (schedule and faults) from seed, runs for at most depth scheduler
// slots, and reports the outcome. capture requests the slot-by-slot
// schedule for counterexample replay; implementations may skip recording
// it otherwise. A TrialFunc must be deterministic in its arguments and
// safe for concurrent calls when SampleOptions.Workers > 1.
type TrialFunc func(seed int64, depth int, capture bool) (Trial, error)

// SampleOptions configures a statistical check.
type SampleOptions struct {
	// Epsilon is the target half-width of the two-sided confidence
	// interval around the violation-probability estimate; 0 means the
	// default (0.01). Must lie in (0, 1).
	Epsilon float64
	// Delta is the allowed error probability: the interval covers the
	// true probability with confidence 1−Delta. 0 means the default
	// (0.05). Must lie in (0, 1).
	Delta float64
	// MaxSamples caps the number of trials; 0 means uncapped (the
	// Okamoto bound decides). A cap below the bound exhausts the
	// "samples" budget: the run degrades per Partial like any other
	// budget, with the achieved (wider) half-width reported.
	MaxSamples int
	// Depth is the per-trial scheduler-slot budget; 0 means the default
	// (1024).
	Depth int
	// Workers > 1 runs trials of each round concurrently over that many
	// goroutines. Seeds are per-sample, not per-worker, and merging is
	// in sample-index order, so the result is identical for every
	// worker count.
	Workers int
	// Seed is the base PRNG seed; each trial i runs with
	// SampleSeed(Seed, i).
	Seed int64
	// MaxDuration bounds wall-clock sampling time, checked at round
	// boundaries; 0 means unbounded.
	MaxDuration time.Duration
	// Partial turns budget exhaustion (samples, time, cancellation)
	// into a graceful partial SampleResult — Complete=false, Exhausted
	// naming the spent budget, nil error — instead of ErrBudget.
	Partial bool
	// Progress, when non-nil, receives a SampleStats snapshot after
	// every merged round and once when sampling finishes.
	Progress func(SampleStats)
	// ProgressEvery is the round size in samples — the unit of merging,
	// budget polling, and progress reporting; 0 means the default
	// (512). Round boundaries are fixed by this option alone, so the
	// event stream does not depend on Workers.
	ProgressEvery int
	// Obs, when non-nil, receives structured events and metrics: an
	// mc.sample phase, one KindSample event per merged round, counters
	// mirroring SampleStats, and the final verdict. Events are
	// deterministic; the elapsed duration goes to the mc.sample
	// histogram only.
	Obs *obs.Recorder
	// Ctx, when non-nil, cancels sampling at round boundaries:
	// cancellation is treated as an exhausted budget
	// (Exhausted="canceled"), degrading per Partial.
	Ctx context.Context
}

// Statistical-check defaults.
const (
	DefaultEpsilon     = 0.01
	DefaultDelta       = 0.05
	DefaultSampleDepth = 1024
	DefaultSampleEvery = 512
)

// SampleStats is the sampler's observability surface, exposed through
// SampleResult and the Progress callback. Every field is a deterministic
// function of (seed, options): wall-clock and worker-count facts are
// deliberately absent so that same-seed results compare byte-for-byte.
type SampleStats struct {
	// Samples and Violations count merged trials and flagged trials.
	Samples    int
	Violations int
	// Target is the Okamoto bound for the configured ε and δ.
	Target int
	// Steps and Slots accumulate over all merged trials.
	Steps int64
	Slots int64
	// Depth is the per-trial slot budget in force.
	Depth int
	// Rounds counts completed merge rounds.
	Rounds int
}

// SampleViolation describes the first violating trial, in sample-index
// order (not discovery order — index order is what every worker count
// agrees on).
type SampleViolation struct {
	// Sample is the violating trial's index; Seed is its derived seed,
	// sufficient to reproduce the run through the same TrialFunc.
	Sample int
	Seed   int64
	// Reason is the predicate's description.
	Reason string
	// Steps and Slots are the violating run's own counts.
	Steps int
	Slots int
	// Schedule is the slot-by-slot processor sequence of the violating
	// run, obtained by re-running the trial with capture on.
	Schedule []int
}

// SampleResult reports a statistical check.
type SampleResult struct {
	// Samples counts trials actually merged; Target is the Okamoto
	// bound they were measured against.
	Samples int
	Target  int
	// Violations counts flagged trials; Estimate is Violations/Samples.
	Violations int
	Estimate   float64
	// HalfWidth is the achieved two-sided confidence half-width at
	// level 1−δ for the drawn sample count: sqrt(ln(2/δ) / (2·Samples)),
	// clamped to 1. When Complete, HalfWidth ≤ ε.
	HalfWidth float64
	// Complete reports whether the full Okamoto target was drawn.
	Complete bool
	// Exhausted names the budget that ended an incomplete run:
	// "samples", "time", or "canceled".
	Exhausted string
	// FirstViolation is the index-least violating trial, nil when no
	// trial was flagged.
	FirstViolation *SampleViolation
	// Stats carries the deterministic counters.
	Stats SampleStats
}

// OkamotoBound returns the number of i.i.d. trials sufficient for the
// empirical mean of a [0,1] variable to lie within epsilon of its true
// mean with probability at least 1−delta (two-sided Hoeffding):
// ceil(ln(2/δ) / (2ε²)).
func OkamotoBound(epsilon, delta float64) int {
	return int(math.Ceil(math.Log(2/delta) / (2 * epsilon * epsilon)))
}

// HoeffdingHalfWidth returns the two-sided confidence half-width at
// level 1−delta after samples trials, clamped to 1 (and to 1 when no
// trial was drawn: an empty sample bounds nothing).
func HoeffdingHalfWidth(delta float64, samples int) float64 {
	if samples <= 0 {
		return 1
	}
	hw := math.Sqrt(math.Log(2/delta) / (2 * float64(samples)))
	if hw > 1 {
		return 1
	}
	return hw
}

// SampleSeed derives trial i's PRNG seed from the base seed via one
// SplitMix64 step. Seeds are per-sample, never per-worker, so the
// mapping from index to executed trial is independent of scheduling;
// consecutive indices land in decorrelated streams.
func SampleSeed(base int64, i int) int64 {
	z := uint64(base) + (uint64(i)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Sample draws i.i.d. trials until the Okamoto target (or a tighter
// budget) is met and returns the violation-probability estimate with its
// confidence interval. On budget exhaustion it errors with ErrBudget (or
// degrades gracefully under SampleOptions.Partial); a trial error aborts
// the run and is returned as-is (first in sample-index order).
func Sample(trial TrialFunc, opts SampleOptions) (*SampleResult, error) {
	if trial == nil {
		return nil, fmt.Errorf("mc: Sample requires a trial function")
	}
	eps, delta := opts.Epsilon, opts.Delta
	if eps == 0 {
		eps = DefaultEpsilon
	}
	if delta == 0 {
		delta = DefaultDelta
	}
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("mc: epsilon and delta must lie in (0, 1), got ε=%v δ=%v", eps, delta)
	}
	depth := opts.Depth
	if depth == 0 {
		depth = DefaultSampleDepth
	}
	if depth < 1 || opts.MaxSamples < 0 {
		return nil, fmt.Errorf("mc: depth=%d maxSamples=%d", depth, opts.MaxSamples)
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	round := opts.ProgressEvery
	if round <= 0 {
		round = DefaultSampleEvery
	}

	target := OkamotoBound(eps, delta)
	draw := target
	if opts.MaxSamples > 0 && opts.MaxSamples < draw {
		draw = opts.MaxSamples
	}

	start := time.Now()
	var deadline time.Time
	if opts.MaxDuration > 0 {
		deadline = start.Add(opts.MaxDuration)
	}
	opts.Obs.PhaseStart("mc.sample")

	res := &SampleResult{Target: target}
	res.Stats = SampleStats{Target: target, Depth: depth}
	outcomes := make([]Trial, round)
	errs := make([]error, round)
	firstIdx := -1
	var firstTrial Trial

	for base := 0; base < draw && res.Exhausted == ""; base += round {
		m := round
		if base+m > draw {
			m = draw - base
		}
		if workers == 1 {
			for j := 0; j < m; j++ {
				outcomes[j], errs[j] = trial(SampleSeed(opts.Seed, base+j), depth, false)
			}
		} else {
			var wg sync.WaitGroup
			per := (m + workers - 1) / workers
			for lo := 0; lo < m; lo += per {
				hi := lo + per
				if hi > m {
					hi = m
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					for j := lo; j < hi; j++ {
						outcomes[j], errs[j] = trial(SampleSeed(opts.Seed, base+j), depth, false)
					}
				}(lo, hi)
			}
			wg.Wait()
		}
		// Merge strictly in sample-index order: counters, the first
		// violating index, and the first trial error are all index-order
		// facts, shared by every worker count.
		for j := 0; j < m; j++ {
			if errs[j] != nil {
				return nil, fmt.Errorf("mc: trial %d: %w", base+j, errs[j])
			}
			o := outcomes[j]
			res.Samples++
			res.Stats.Steps += int64(o.Steps)
			res.Stats.Slots += int64(o.Slots)
			if o.Violated {
				res.Violations++
				if firstIdx < 0 {
					firstIdx = base + j
					firstTrial = o
				}
			}
		}
		res.Stats.Samples = res.Samples
		res.Stats.Violations = res.Violations
		res.Stats.Rounds++
		opts.Obs.SampleRound("mc.sample", res.Samples, res.Violations, target)
		if opts.Progress != nil {
			opts.Progress(res.Stats)
		}
		switch {
		case opts.Ctx != nil && opts.Ctx.Err() != nil:
			res.Exhausted = "canceled"
		case !deadline.IsZero() && time.Now().After(deadline):
			res.Exhausted = "time"
		}
	}
	if res.Exhausted == "" && res.Samples < target {
		res.Exhausted = "samples"
	}

	res.Complete = res.Exhausted == ""
	if res.Samples > 0 {
		res.Estimate = float64(res.Violations) / float64(res.Samples)
	}
	res.HalfWidth = HoeffdingHalfWidth(delta, res.Samples)
	if firstIdx >= 0 {
		seed := SampleSeed(opts.Seed, firstIdx)
		v := &SampleViolation{
			Sample: firstIdx,
			Seed:   seed,
			Reason: firstTrial.Reason,
			Steps:  firstTrial.Steps,
			Slots:  firstTrial.Slots,
		}
		// Re-run the index-least violating trial with capture on to
		// recover its schedule; the replay is deterministic per seed, so
		// disagreement means the TrialFunc broke its own contract.
		rerun, err := trial(seed, depth, true)
		if err != nil {
			return nil, fmt.Errorf("mc: recapturing trial %d: %w", firstIdx, err)
		}
		if !rerun.Violated || rerun.Reason != firstTrial.Reason {
			return nil, fmt.Errorf("mc: trial %d is not deterministic: %q replayed as %q",
				firstIdx, firstTrial.Reason, rerun.Reason)
		}
		v.Schedule = rerun.Schedule
		res.FirstViolation = v
	}

	if r := opts.Obs; r.Enabled() {
		r.Count("mc.samples", int64(res.Samples))
		r.Count("mc.sample_violations", int64(res.Violations))
		r.Count("mc.sample_steps", res.Stats.Steps)
		r.Count("mc.sample_slots", res.Stats.Slots)
		r.Stat("mc.sample_target", int64(target))
		r.Observe("mc.sample", time.Since(start))
		detail := ""
		switch {
		case res.FirstViolation != nil:
			detail = res.FirstViolation.Reason
		case !res.Complete:
			detail = "budget exhausted: " + res.Exhausted
		}
		r.Verdict("mc.sample", res.Violations == 0, detail)
		r.PhaseEnd("mc.sample", int64(res.Samples))
	}
	if opts.Progress != nil {
		opts.Progress(res.Stats)
	}
	if !res.Complete && !opts.Partial {
		return res, fmt.Errorf("%w (%s): %d samples of %d", ErrBudget, res.Exhausted, res.Samples, target)
	}
	return res, nil
}
