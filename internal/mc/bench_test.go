package mc

import (
	"testing"

	"simsym/internal/machine"
	"simsym/internal/system"
)

// BenchmarkCheckThroughput measures model-checker state throughput on
// the Figure 5 four-philosopher table (a closed ~42k-state space).
func BenchmarkCheckThroughput(b *testing.B) {
	s, err := system.DiningFlipped(4)
	if err != nil {
		b.Fatal(err)
	}
	bl := machine.NewBuilder()
	bl.Label("grab1")
	bl.Lock("left", "_g1")
	bl.JumpIf(func(loc machine.Locals) bool { return loc["_g1"] != true }, "grab1")
	bl.Label("grab2")
	bl.Lock("right", "_g2")
	bl.JumpIf(func(loc machine.Locals) bool { return loc["_g2"] != true }, "grab2")
	bl.Unlock("right")
	bl.Unlock("left")
	bl.Halt()
	prog, err := bl.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Check(func() (*machine.Machine, error) {
			return machine.New(s, system.InstrL, prog)
		}, Options{MaxStates: 500_000, StuckBad: NotAllHalted})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Complete {
			b.Fatal("space should close")
		}
		b.ReportMetric(float64(res.StatesExplored), "states/op")
	}
}
