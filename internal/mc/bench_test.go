package mc

import (
	"runtime"
	"testing"

	"simsym/internal/machine"
	"simsym/internal/system"
)

func throughputSetup(b *testing.B) (*system.System, *machine.Program) {
	b.Helper()
	s, err := system.DiningFlipped(4)
	if err != nil {
		b.Fatal(err)
	}
	bl := machine.NewBuilder()
	g1, g2 := bl.Sym("_g1"), bl.Sym("_g2")
	bl.Label("grab1")
	bl.Lock("left", "_g1")
	bl.JumpIf(func(r *machine.Regs) bool { return r.Get(g1) != true }, "grab1")
	bl.Label("grab2")
	bl.Lock("right", "_g2")
	bl.JumpIf(func(r *machine.Regs) bool { return r.Get(g2) != true }, "grab2")
	bl.Unlock("right")
	bl.Unlock("left")
	bl.Halt()
	prog, err := bl.Build()
	if err != nil {
		b.Fatal(err)
	}
	return s, prog
}

func runThroughput(b *testing.B, opts Options) {
	b.Helper()
	s, prog := throughputSetup(b)
	opts.MaxStates = 500_000
	opts.StuckBad = NotAllHalted
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Check(func() (*machine.Machine, error) {
			return machine.New(s, system.InstrL, prog)
		}, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Complete {
			b.Fatal("space should close")
		}
		b.ReportMetric(float64(res.StatesExplored), "states/op")
	}
}

// BenchmarkCheckThroughput measures model-checker state throughput on
// the Figure 5 four-philosopher table (a closed ~42k-state space) in
// each engine mode: plain BFS, symmetry-reduced BFS (orbit quotient),
// parallel frontier expansion, and both combined.
func BenchmarkCheckThroughput(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	b.Run("seq", func(b *testing.B) { runThroughput(b, Options{}) })
	b.Run("sym", func(b *testing.B) { runThroughput(b, Options{SymmetryReduce: true}) })
	b.Run("par", func(b *testing.B) { runThroughput(b, Options{Workers: workers}) })
	b.Run("sym+par", func(b *testing.B) {
		runThroughput(b, Options{SymmetryReduce: true, Workers: workers})
	})
	shards := workers
	if shards < 4 {
		shards = 4 // exercise the sharded pipeline even on small hosts
	}
	b.Run("sharded", func(b *testing.B) {
		runThroughput(b, Options{Workers: workers, Shards: shards})
	})
	b.Run("sharded+spill", func(b *testing.B) {
		runThroughput(b, Options{Workers: workers, Shards: shards,
			HotIndexBytes: 1 << 20, SpillDir: b.TempDir()})
	})
}
