package mc

import (
	"errors"
	"strings"
	"testing"

	"simsym/internal/machine"
	"simsym/internal/system"
)

// spinForever is an unbounded-state program: a strictly growing counter.
func spinForever(b *machine.Builder) {
	n := b.Sym("n")
	b.Compute(func(r *machine.Regs) { r.Set(n, 0) })
	b.Label("loop")
	b.Compute(func(r *machine.Regs) { r.Set(n, r.Int(n)+1) })
	b.Jump("loop")
}

// TestBudgetExploresExactlyMaxStates pins the off-by-one fix: the old
// checker pushed first and tested after, exploring MaxStates+1 states.
func TestBudgetExploresExactlyMaxStates(t *testing.T) {
	res, err := Check(factoryFor(t, system.Fig1(), system.InstrS, spinForever), Options{MaxStates: 100})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if res == nil {
		t.Fatal("ErrBudget must return the partial Result, not nil")
	}
	if res.StatesExplored != 100 {
		t.Errorf("StatesExplored = %d, want exactly 100", res.StatesExplored)
	}
	if res.Complete {
		t.Error("budget-exhausted result must not be Complete")
	}
	if res.Exhausted != "states" {
		t.Errorf("Exhausted = %q, want \"states\"", res.Exhausted)
	}
}

func TestPartialBudgetReturnsGracefulResult(t *testing.T) {
	res, err := Check(factoryFor(t, system.Fig1(), system.InstrS, spinForever), Options{
		MaxStates: 50,
		Partial:   true,
	})
	if err != nil {
		t.Fatalf("Partial budget exhaustion should not error: %v", err)
	}
	if res.StatesExplored != 50 || res.Complete || res.Exhausted != "states" {
		t.Errorf("partial result = %+v", res)
	}
}

func TestTimeBudgetDegrades(t *testing.T) {
	res, err := Check(factoryFor(t, system.Fig1(), system.InstrS, spinForever), Options{
		MaxDuration: 1, // one nanosecond: exhausted at the first poll
		Partial:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhausted != "time" || res.Complete {
		t.Errorf("result = %+v, want time exhaustion", res)
	}
}

func TestMemoryBudgetDegrades(t *testing.T) {
	res, err := Check(factoryFor(t, system.Fig1(), system.InstrS, spinForever), Options{
		MaxMemBytes: 1,
		Partial:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhausted != "memory" || res.Complete {
		t.Errorf("result = %+v, want memory exhaustion", res)
	}
	if res.Stats.PeakMemBytes <= 0 {
		t.Error("memory estimate should be populated")
	}
}

// TestTransPredsSeeSelfLoops pins the self-loop ordering fix: stepping a
// halted processor is a stutter step; transition predicates must observe
// it even though it is excluded from the successor graph.
func TestTransPredsSeeSelfLoops(t *testing.T) {
	res, err := Check(factoryFor(t, system.Fig1(), system.InstrS, func(b *machine.Builder) {
		b.Halt()
	}), Options{
		TransPreds: []TransitionPredicate{func(before, after *machine.Machine, proc int) string {
			if before.Fingerprint() == after.Fingerprint() {
				return "stutter step observed"
			}
			return ""
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil || !strings.Contains(res.Violation.Reason, "stutter") {
		t.Fatalf("transition predicates must see stutter steps, got %+v", res.Violation)
	}
}

// TestTransPredCountsEveryScheduledStep: with a non-violating counting
// predicate, every (state, processor) pair of the closed space is
// examined exactly once — stutters included.
func TestTransPredCountsEveryScheduledStep(t *testing.T) {
	calls := 0
	res, err := Check(factoryFor(t, system.Fig1(), system.InstrS, func(b *machine.Builder) {
		b.Halt()
	}), Options{
		TransPreds: []TransitionPredicate{func(before, after *machine.Machine, proc int) string {
			calls++
			return ""
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("space should close")
	}
	nProcs := 2
	if want := res.StatesExplored * nProcs; calls != want {
		t.Errorf("predicate calls = %d, want states*procs = %d", calls, want)
	}
	if res.Stats.SelfLoops == 0 {
		t.Error("halt-program space must contain stutter steps")
	}
	if int(res.Stats.Transitions+res.Stats.SelfLoops) != calls {
		t.Errorf("Transitions(%d)+SelfLoops(%d) should equal scheduled steps (%d)",
			res.Stats.Transitions, res.Stats.SelfLoops, calls)
	}
}

func TestStatsPopulated(t *testing.T) {
	res, err := Check(factoryFor(t, system.Fig1(), system.InstrL, lockClaim), Options{
		StatePreds: []StatePredicate{UniquenessPred},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.StatesExplored != res.StatesExplored {
		t.Errorf("stats/result state counts differ: %d vs %d", st.StatesExplored, res.StatesExplored)
	}
	if st.Depth == 0 || st.PeakFrontier == 0 || st.Transitions == 0 {
		t.Errorf("stats should be populated: %+v", st)
	}
	if st.GroupOrder != 1 {
		t.Errorf("GroupOrder = %d without symmetry reduction, want 1", st.GroupOrder)
	}
	if st.Elapsed <= 0 {
		t.Error("Elapsed should be positive")
	}
}

func TestProgressCallback(t *testing.T) {
	var snaps []Stats
	res, err := Check(factoryFor(t, system.Fig1(), system.InstrS, naiveClaim), Options{
		ProgressEvery: 1,
		Progress:      func(s Stats) { snaps = append(snaps, s) },
		StuckBad:      NotAllHalted,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("expected several progress snapshots, got %d", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if last.StatesExplored != res.StatesExplored {
		t.Errorf("final snapshot states = %d, want %d", last.StatesExplored, res.StatesExplored)
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].StatesExplored < snaps[i-1].StatesExplored {
			t.Error("snapshots should be monotone in states explored")
		}
	}
}

// checkModes runs the same check in every engine mode — sequential,
// parallel, symmetry-reduced, sharded, and sharded with a spill tier so
// tight that every finalized index chunk lands on disk — and returns the
// results keyed by mode name.
func checkModes(t *testing.T, factory func() (*machine.Machine, error), opts Options) map[string]*Result {
	t.Helper()
	out := make(map[string]*Result)
	for _, mode := range []struct {
		name    string
		sym     bool
		workers int
		shards  int
		hot     int64
	}{
		{"seq", false, 0, 0, 0},
		{"par", false, 4, 0, 0},
		{"sym", true, 0, 0, 0},
		{"sym+par", true, 4, 0, 0},
		{"shard", false, 4, 4, 0},
		{"shard+sym", true, 4, 4, 0},
		{"shard+spill", false, 4, 4, 1},
	} {
		o := opts
		o.SymmetryReduce = mode.sym
		o.Workers = mode.workers
		o.Shards = mode.shards
		o.HotIndexBytes = mode.hot
		if mode.hot > 0 {
			o.SpillDir = t.TempDir()
		}
		res, err := Check(factory, o)
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		out[mode.name] = res
	}
	return out
}

// assertIdentical enforces the parallel engine's label-for-label
// guarantee against its sequential twin.
func assertIdentical(t *testing.T, a, b *Result, what string) {
	t.Helper()
	if (a.Violation == nil) != (b.Violation == nil) {
		t.Fatalf("%s: verdicts differ: %+v vs %+v", what, a.Violation, b.Violation)
	}
	if a.Violation != nil {
		if a.Violation.Reason != b.Violation.Reason {
			t.Errorf("%s: reasons differ: %q vs %q", what, a.Violation.Reason, b.Violation.Reason)
		}
		if len(a.Violation.Schedule) != len(b.Violation.Schedule) {
			t.Fatalf("%s: schedules differ: %v vs %v", what, a.Violation.Schedule, b.Violation.Schedule)
		}
		for i := range a.Violation.Schedule {
			if a.Violation.Schedule[i] != b.Violation.Schedule[i] {
				t.Fatalf("%s: schedules differ: %v vs %v", what, a.Violation.Schedule, b.Violation.Schedule)
			}
		}
	}
	if a.StatesExplored != b.StatesExplored || a.Complete != b.Complete {
		t.Errorf("%s: exploration differs: %d/%v vs %d/%v", what,
			a.StatesExplored, a.Complete, b.StatesExplored, b.Complete)
	}
	if a.Stats.Transitions != b.Stats.Transitions ||
		a.Stats.DedupHits != b.Stats.DedupHits ||
		a.Stats.SelfLoops != b.Stats.SelfLoops ||
		a.Stats.Depth != b.Stats.Depth ||
		a.Stats.PeakFrontier != b.Stats.PeakFrontier {
		t.Errorf("%s: stats differ:\n%+v\n%+v", what, a.Stats, b.Stats)
	}
}

func TestParallelIdenticalToSequential(t *testing.T) {
	cases := []struct {
		name    string
		factory func() (*machine.Machine, error)
		opts    Options
	}{
		{"fig1-naive-violation", factoryFor(t, system.Fig1(), system.InstrS, naiveClaim),
			Options{StatePreds: []StatePredicate{UniquenessPred}}},
		{"fig1-lock-safe", factoryFor(t, system.Fig1(), system.InstrL, lockClaim),
			Options{StatePreds: []StatePredicate{UniquenessPred}, TransPreds: []TransitionPredicate{StabilityPred}}},
		{"crossed-locks-deadlock", factoryFor(t, crossedLocks(), system.InstrL, spinLockBoth),
			Options{StuckBad: NotAllHalted}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			modes := checkModes(t, tc.factory, tc.opts)
			assertIdentical(t, modes["seq"], modes["par"], "parallel vs sequential")
			assertIdentical(t, modes["sym"], modes["sym+par"], "sym parallel vs sym sequential")
			assertIdentical(t, modes["seq"], modes["shard"], "sharded vs sequential")
			assertIdentical(t, modes["seq"], modes["shard+spill"], "sharded+spill vs sequential")
			assertIdentical(t, modes["sym"], modes["shard+sym"], "sharded sym vs sym sequential")
		})
	}
}

// TestSymmetryVerdictEquivalence: on every topology, symmetry reduction
// must keep the verdict while never exploring more states; violation
// witnesses must replay to genuinely violating states.
func TestSymmetryVerdictEquivalence(t *testing.T) {
	modes := checkModes(t, factoryFor(t, system.Fig1(), system.InstrS, naiveClaim),
		Options{StatePreds: []StatePredicate{UniquenessPred}})
	full, sym := modes["seq"], modes["sym"]
	if (full.Violation == nil) != (sym.Violation == nil) {
		t.Fatalf("verdicts differ: %+v vs %+v", full.Violation, sym.Violation)
	}
	if sym.StatesExplored > full.StatesExplored {
		t.Errorf("symmetry reduction explored more states: %d > %d", sym.StatesExplored, full.StatesExplored)
	}
	if sym.Stats.GroupOrder < 2 {
		t.Errorf("Fig1 has a swap automorphism; GroupOrder = %d", sym.Stats.GroupOrder)
	}
	// Replay the symmetry-reduced witness: it must double-select.
	m, err := factoryFor(t, system.Fig1(), system.InstrS, naiveClaim)()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sym.Violation.Schedule {
		if err := m.Step(p); err != nil {
			t.Fatal(err)
		}
	}
	if sel := m.SelectedProcs(); len(sel) < 2 {
		t.Errorf("replayed symmetry-reduced witness selects %v, want 2", sel)
	}

	// Safe topology: closure verdict must match too.
	safe := checkModes(t, factoryFor(t, system.Fig1(), system.InstrL, lockClaim),
		Options{StatePreds: []StatePredicate{UniquenessPred}, TransPreds: []TransitionPredicate{StabilityPred}})
	if safe["sym"].Violation != nil || !safe["sym"].Complete {
		t.Errorf("symmetry-reduced lock check should close safely: %+v", safe["sym"])
	}
	if safe["sym"].StatesExplored >= safe["seq"].StatesExplored {
		t.Errorf("Fig1's swap symmetry should shrink the lock space: %d vs %d",
			safe["sym"].StatesExplored, safe["seq"].StatesExplored)
	}

	// Deadlock topology: the crossed-locks system has a proc swap that
	// also swaps the two variables; the stuck verdict must survive.
	stuck := checkModes(t, factoryFor(t, crossedLocks(), system.InstrL, spinLockBoth),
		Options{StuckBad: NotAllHalted})
	if (stuck["seq"].Violation == nil) != (stuck["sym"].Violation == nil) {
		t.Fatalf("deadlock verdicts differ: %+v vs %+v", stuck["seq"].Violation, stuck["sym"].Violation)
	}
	if stuck["sym"].Violation == nil || !strings.Contains(stuck["sym"].Violation.Reason, "stuck") {
		t.Errorf("symmetry-reduced check should still find the deadlock: %+v", stuck["sym"].Violation)
	}
}
