package mc

import (
	"bytes"
	"sync"
)

// Sharded level pipeline — the deterministic-by-reduction mode.
//
// The classic parallel engine expands a BFS level in parallel but funnels
// every successor through one sequential merge that hashes nothing and
// owns everything: index probe, key copy, delta encode, commit. At scale
// that merge is the wall. The sharded pipeline splits each level into
// three phases so the expensive index work runs in parallel too:
//
//	A. Expand (parallel over Workers): clone, step, canonicalize, and
//	   hash every successor — exactly the classic expansion, which
//	   already computes span hashes.
//	B. Stage (parallel, one goroutine set per shard partition): each
//	   worker owns a disjoint set of shards and scans the level's spans
//	   in frontier order, handling exactly the spans whose key hash
//	   routes to its shards. A span whose bucket rules it decidable is
//	   resolved on the spot: staged into the shard arena
//	   (delta-encoded against its parent's pre-resolved keyframe) when
//	   provably new, recorded as a dedup hit when byte-equal to a
//	   resident full-stored entry. Anything that would require reading
//	   another shard or the spill file is deferred. Staging never takes
//	   a lock and never touches non-owned state.
//	C. Commit (sequential): walk the level's successors in exactly the
//	   order the sequential merge would — (frontier index, processor) —
//	   running transition/state predicates, assigning dense ids to
//	   staged entries, resolving deferred comparisons, and enforcing
//	   budgets. Because ids, predicate calls, counters, and budget
//	   stops all happen here in canonical order, every verdict, witness
//	   schedule, and stat is byte-identical to the sequential engine:
//	   determinism comes from this reduction, not from serializing the
//	   index.
//
// Soundness of phase B's deferral rule: entries are only ever appended
// to a bucket, and a bucket is stageable only while every resident entry
// is locally comparable (full-stored, hot, same shard). A deferred span
// therefore proves the bucket holds a non-comparable entry, which blocks
// every later same-bucket span from staging too — so by the time phase C
// resolves a deferred span, every uncommitted entry that could precede
// it in its bucket has already been committed by phase C itself, in
// canonical order.
type shardOutcome = int64

const (
	outStaged   = 1 // span staged a new entry; low 48 bits = entry index
	outHit      = 2 // span matched a resident entry; low 48 bits = entry index
	outDeferred = 3 // span needs the coordinator's full lookup
)

// runLevelSharded expands and commits the current level through the
// three-phase pipeline.
func (c *checker) runLevelSharded(workers int) (bool, error) {
	n := len(c.level)
	if workers < 1 {
		workers = 1
	}

	// Pre-resolve each frontier state's delta ancestor (gid + full key
	// bytes) on the coordinator: stagers must not read other shards, so
	// anything cross-shard is gathered here first. Hot ancestors alias
	// arena chunks — safe during staging because chunks are append-only
	// and never move; spilled ancestors are copied into a stable arena.
	if cap(c.ancGIDs) < n {
		c.ancGIDs = make([]int64, n)
		c.ancKeys = make([][]byte, n)
	}
	ancGIDs, ancKeys := c.ancGIDs[:n], c.ancKeys[:n]
	c.ancArena = c.ancArena[:0]
	for i, idx := range c.levelIdx {
		gid, key, err := c.idx.ancestorFor(c.idx.baseID+int64(idx), &c.ancArena)
		if err != nil {
			return true, err
		}
		ancGIDs[i], ancKeys[i] = gid, key
	}

	// Phase A: parallel expansion into per-state batches.
	for len(c.parBatches) < n {
		c.parBatches = append(c.parBatches, batch{})
	}
	batches := c.parBatches[:n]
	expandWorkers := min(workers, n)
	chunk := (n + expandWorkers - 1) / expandWorkers
	var wg sync.WaitGroup
	for w := 0; w < expandWorkers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, n)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				batches[i].m = c.level[i]
				c.expand(c.level[i], &batches[i])
			}
		}(lo, hi)
	}
	wg.Wait()

	// Phase B: parallel staging, shards partitioned across workers by
	// shard-index modulo. Outcomes land in a flat (state, proc) table;
	// disjoint indices per span owner, so no synchronization beyond the
	// WaitGroup barrier.
	if cap(c.outcomes) < n*c.nProcs {
		c.outcomes = make([]shardOutcome, n*c.nProcs)
	}
	outcomes := c.outcomes[:n*c.nProcs]
	for i := range outcomes {
		outcomes[i] = 0
	}
	stageWorkers := min(workers, len(c.idx.shards))
	for w := 0; w < stageWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c.stagePartition(w, stageWorkers, batches, ancGIDs, ancKeys, outcomes)
		}(w)
	}
	wg.Wait()

	// Phase C: sequential commit in canonical frontier order.
	return c.commitLevel(batches, ancGIDs, ancKeys, outcomes)
}

// stagePartition is one phase-B worker: it scans every span of the level
// in frontier order and handles those owned by its shard partition.
func (c *checker) stagePartition(w, stride int, batches []batch, ancGIDs []int64, ancKeys [][]byte, outcomes []shardOutcome) {
	t := c.idx
	for i := range batches {
		b := &batches[i]
		if b.err != nil {
			continue // the commit pass surfaces the error
		}
		base := i * c.nProcs
		for p, sp := range b.spans {
			if sp.selfLoop {
				continue
			}
			si := t.shardOf(sp.hash)
			if si%stride != w {
				continue
			}
			sh := &t.shards[si]
			key := b.arena[sp.start:sp.end]
			var out shardOutcome
			comparable := true
			bt := &sh.buckets
			if bt.eis != nil {
				for sl := sp.hash & bt.mask; bt.eis[sl] >= 0; sl = (sl + 1) & bt.mask {
					if bt.hashes[sl] != sp.hash {
						continue
					}
					ei := bt.eis[sl]
					e := &sh.entries[ei]
					if e.anc >= 0 || e.off < sh.bound {
						// Delta-stored (ancestor may live on another shard)
						// or spilled: not locally comparable.
						comparable = false
						break
					}
					pos := int(e.off & chunkMask)
					raw := sh.chunks[e.off>>chunkShift][pos : pos+int(e.n)]
					if bytes.Equal(raw, key) {
						out = outHit<<48 | ei
						break
					}
				}
			}
			if out == 0 {
				if comparable {
					ei := sh.stage(key, sp.hash, ancGIDs[i], ancKeys[i])
					out = outStaged<<48 | ei
				} else {
					out = outDeferred << 48
				}
			}
			outcomes[base+p] = out
		}
	}
}

// commitLevel is phase C: the sequential pass that makes the pipeline's
// results identical to the sequential engine. It mirrors merge()
// decision-for-decision; only the index mechanics differ (staged entries
// just need an id, hits are pre-verified, deferred spans fall back to
// the full coordinator lookup).
func (c *checker) commitLevel(batches []batch, ancGIDs []int64, ancKeys [][]byte, outcomes []shardOutcome) (bool, error) {
	for i := range batches {
		b := &batches[i]
		if b.err != nil {
			return true, b.err
		}
		curIdx := c.levelIdx[i]
		base := i * c.nProcs
		for p, sp := range b.spans {
			next := b.succs[p]
			for _, pred := range c.opts.TransPreds {
				if reason := pred(b.m, next, p); reason != "" {
					c.res.Violation = &Violation{
						Reason:   reason,
						Schedule: append(c.scheduleTo(curIdx), p),
					}
					return true, nil
				}
			}
			if sp.selfLoop {
				c.stats.SelfLoops++
				continue
			}
			c.stats.Transitions++
			key := b.arena[sp.start:sp.end]
			si := c.idx.shardOf(sp.hash)
			out := outcomes[base+p]
			var gid int64
			isNew := false
			switch out >> 48 {
			case outHit:
				_, e := c.idx.entryRef(si, out&(1<<48-1))
				gid = e.gid
				if gid < 0 {
					panic("mc: sharded commit matched an uncommitted entry")
				}
			case outStaged:
				if c.res.StatesExplored >= c.maxStates {
					return true, c.exhaust("states")
				}
				gid = c.idx.commitStaged(si, out&(1<<48-1))
				isNew = true
			case outDeferred:
				g, ok, err := c.idx.lookupHashed(key, sp.hash)
				if err != nil {
					return true, err
				}
				if ok {
					gid = g
					if gid < 0 {
						panic("mc: sharded commit matched an uncommitted entry")
					}
				} else {
					if c.res.StatesExplored >= c.maxStates {
						return true, c.exhaust("states")
					}
					gid = c.idx.insert(key, sp.hash, ancGIDs[i], ancKeys[i])
					isNew = true
				}
			default:
				panic("mc: sharded commit found an unstaged successor span")
			}
			if !isNew {
				c.stats.DedupHits++
				c.appendSucc(curIdx, int(gid-c.idx.baseID))
				continue
			}
			// As in merge: detach before adoption, and never read the
			// pool pointer afterwards.
			kept := next.DetachTo(c.newKept())
			id := c.adopt(kept, curIdx, p)
			c.appendSucc(curIdx, id)
			if v := c.checkState(kept, id); v != nil {
				c.res.Violation = v
				return true, nil
			}
			if stop, err := c.pollBudgets(); stop {
				return true, err
			}
		}
		c.level[i] = nil
		batches[i].m = nil
	}
	return false, nil
}
