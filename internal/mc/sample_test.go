package mc

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"simsym/internal/obs"
)

// syntheticTrial builds a deterministic TrialFunc that flags a trial
// whenever its seed's low bits fall below threshold/denom — a Bernoulli
// variable with a known rate, independent of any machine.
func syntheticTrial(threshold, denom uint64) TrialFunc {
	return func(seed int64, depth int, capture bool) (Trial, error) {
		u := uint64(seed)
		t := Trial{Steps: depth / 2, Slots: depth}
		if u%denom < threshold {
			t.Violated = true
			t.Reason = fmt.Sprintf("synthetic violation (seed %d)", seed)
		}
		if capture {
			t.Schedule = []int{int(u % 7), int(u % 5)}
		}
		return t, nil
	}
}

func TestOkamotoBound(t *testing.T) {
	// ceil(ln(2/δ) / (2ε²)) at the headline settings.
	if got := OkamotoBound(0.01, 0.05); got != 18445 {
		t.Errorf("OkamotoBound(0.01, 0.05) = %d, want 18445", got)
	}
	if got := OkamotoBound(0.05, 0.05); got != 738 {
		t.Errorf("OkamotoBound(0.05, 0.05) = %d, want 738", got)
	}
	// Tightening either parameter can only demand more samples.
	if OkamotoBound(0.01, 0.01) <= OkamotoBound(0.01, 0.05) {
		t.Error("smaller delta must need more samples")
	}
	if OkamotoBound(0.005, 0.05) <= OkamotoBound(0.01, 0.05) {
		t.Error("smaller epsilon must need more samples")
	}
}

func TestHoeffdingHalfWidth(t *testing.T) {
	if got := HoeffdingHalfWidth(0.05, 0); got != 1 {
		t.Errorf("empty sample half-width = %v, want 1", got)
	}
	if got := HoeffdingHalfWidth(0.05, 1); got != 1 {
		t.Errorf("one sample bounds nothing: half-width = %v, want clamp to 1", got)
	}
	// At exactly the Okamoto bound the half-width meets the target.
	n := OkamotoBound(0.05, 0.05)
	if hw := HoeffdingHalfWidth(0.05, n); hw > 0.05 {
		t.Errorf("half-width at the bound = %v, want <= 0.05", hw)
	}
	if hw := HoeffdingHalfWidth(0.05, n-100); hw <= 0.05 {
		t.Errorf("half-width below the bound = %v, want > 0.05", hw)
	}
}

func TestSampleSeedStreamsAreDistinct(t *testing.T) {
	seen := make(map[int64]bool)
	for _, base := range []int64{0, 1, 42, -7} {
		for i := 0; i < 10_000; i++ {
			s := SampleSeed(base, i)
			if seen[s] {
				t.Fatalf("seed collision at base=%d i=%d", base, i)
			}
			seen[s] = true
		}
	}
}

func TestSampleEstimateWithinInterval(t *testing.T) {
	// True violation rate 1/4; ε=0.05 δ=0.05 needs 738 samples and the
	// estimate is then within 0.05 of 1/4 with confidence 95% — use 3ε
	// slack so the test is not itself flaky.
	res, err := Sample(syntheticTrial(1, 4), SampleOptions{Epsilon: 0.05, Delta: 0.05, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.Exhausted != "" {
		t.Fatalf("run should complete: %+v", res)
	}
	if res.Samples != 738 || res.Target != 738 {
		t.Errorf("samples = %d target = %d, want 738", res.Samples, res.Target)
	}
	if res.HalfWidth > 0.05 {
		t.Errorf("half-width = %v, want <= epsilon", res.HalfWidth)
	}
	if res.Estimate < 0.25-0.15 || res.Estimate > 0.25+0.15 {
		t.Errorf("estimate = %v, want near 0.25", res.Estimate)
	}
	if res.FirstViolation == nil {
		t.Fatal("a quarter of trials violate; first violation missing")
	}
	if res.FirstViolation.Schedule == nil {
		t.Error("first violation should carry a captured schedule")
	}
	if res.FirstViolation.Seed != SampleSeed(11, res.FirstViolation.Sample) {
		t.Error("violation seed does not match its sample index")
	}
}

func TestSampleDeterministicAcrossWorkers(t *testing.T) {
	trial := syntheticTrial(1, 8)
	var results []*SampleResult
	for _, workers := range []int{1, 3, 8} {
		res, err := Sample(trial, SampleOptions{
			Epsilon: 0.05, Delta: 0.05, Seed: 99, Workers: workers, ProgressEvery: 100,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Errorf("worker counts disagree:\n  w=1: %+v\n  other: %+v", results[0], results[i])
		}
	}
}

func TestSampleFirstViolationIsIndexLeast(t *testing.T) {
	// Violating trials are identified by their derived seeds; the
	// reported one must be the lowest sample index, not the first found
	// by any worker.
	const base int64 = 5
	violating := map[int64]bool{
		SampleSeed(base, 123): true,
		SampleSeed(base, 77):  true,
		SampleSeed(base, 500): true,
	}
	trial := func(seed int64, depth int, capture bool) (Trial, error) {
		t := Trial{Steps: 1, Slots: 1}
		if violating[seed] {
			t.Violated = true
			t.Reason = "marked"
			if capture {
				t.Schedule = []int{0}
			}
		}
		return t, nil
	}
	for _, workers := range []int{1, 4} {
		res, err := Sample(trial, SampleOptions{
			Epsilon: 0.05, Delta: 0.05, Seed: base, Workers: workers, ProgressEvery: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violations != 3 {
			t.Fatalf("workers=%d: violations = %d, want 3", workers, res.Violations)
		}
		if res.FirstViolation == nil || res.FirstViolation.Sample != 77 {
			t.Fatalf("workers=%d: first violation = %+v, want sample 77", workers, res.FirstViolation)
		}
	}
}

func TestSampleMaxSamplesBudget(t *testing.T) {
	trial := syntheticTrial(0, 2)
	_, err := Sample(trial, SampleOptions{Epsilon: 0.05, Delta: 0.05, MaxSamples: 100})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("capped run should exhaust: err = %v", err)
	}
	res, err := Sample(trial, SampleOptions{Epsilon: 0.05, Delta: 0.05, MaxSamples: 100, Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete || res.Exhausted != "samples" {
		t.Errorf("partial run: complete=%v exhausted=%q", res.Complete, res.Exhausted)
	}
	if res.Samples != 100 {
		t.Errorf("samples = %d, want 100", res.Samples)
	}
	if res.HalfWidth <= 0.05 {
		t.Errorf("under-sampled half-width = %v, should exceed epsilon", res.HalfWidth)
	}
}

func TestSampleCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Sample(syntheticTrial(0, 2), SampleOptions{
		Epsilon: 0.05, Delta: 0.05, ProgressEvery: 10, Partial: true, Ctx: ctx,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhausted != "canceled" || res.Complete {
		t.Errorf("canceled run: %+v", res)
	}
	if res.Samples != 10 {
		t.Errorf("cancellation polls at round boundaries: samples = %d, want one round of 10", res.Samples)
	}
}

func TestSampleTrialErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	bad := SampleSeed(3, 42)
	trial := func(seed int64, depth int, capture bool) (Trial, error) {
		if seed == bad {
			return Trial{}, boom
		}
		return Trial{Steps: 1, Slots: 1}, nil
	}
	_, err := Sample(trial, SampleOptions{Epsilon: 0.05, Delta: 0.05, Seed: 3})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestSampleRejectsBadOptions(t *testing.T) {
	trial := syntheticTrial(0, 2)
	if _, err := Sample(nil, SampleOptions{}); err == nil {
		t.Error("nil trial should fail")
	}
	for _, opts := range []SampleOptions{
		{Epsilon: 1.5},
		{Epsilon: -0.1},
		{Delta: 1},
		{Depth: -4},
		{MaxSamples: -1},
	} {
		if _, err := Sample(trial, opts); err == nil {
			t.Errorf("options %+v should fail", opts)
		}
	}
}

func TestSampleObsStream(t *testing.T) {
	ring := obs.NewRing(64)
	rec := obs.New(ring)
	res, err := Sample(syntheticTrial(1, 4), SampleOptions{
		Epsilon: 0.05, Delta: 0.05, MaxSamples: 30, ProgressEvery: 10, Partial: true, Obs: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := ring.Events()
	var kinds []obs.Kind
	for _, e := range evs {
		kinds = append(kinds, e.Kind)
	}
	want := []obs.Kind{
		obs.KindPhaseStart,
		obs.KindSample, obs.KindSample, obs.KindSample,
		obs.KindStat, obs.KindVerdict, obs.KindPhaseEnd,
	}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("event kinds = %v, want %v", kinds, want)
	}
	first := evs[1] // first sample round
	if first.A != 10 || first.C != int64(res.Target) {
		t.Errorf("first round event = %+v, want 10 merged toward target %d", first, res.Target)
	}
	if got := rec.Metrics().Counter("mc.samples").Value(); got != int64(res.Samples) {
		t.Errorf("mc.samples counter = %d, want %d", got, res.Samples)
	}
	if rec.Metrics().Histogram("mc.sample").Count() != 1 {
		t.Error("mc.sample histogram should hold one observation")
	}
}

func TestSampleTimeBudget(t *testing.T) {
	slow := func(seed int64, depth int, capture bool) (Trial, error) {
		time.Sleep(2 * time.Millisecond)
		return Trial{Steps: 1, Slots: 1}, nil
	}
	res, err := Sample(slow, SampleOptions{
		Epsilon: 0.05, Delta: 0.05, ProgressEvery: 5,
		MaxDuration: 10 * time.Millisecond, Partial: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete || res.Exhausted != "time" {
		t.Errorf("slow run should hit the time budget: %+v", res)
	}
}
