package mc

import (
	"sync/atomic"
	"testing"

	"simsym/internal/system"
)

// TestShardedBudgetMidLevelDeterministic pins satellite behavior the
// sharded pipeline must preserve: when MaxStates lands in the middle of
// a BFS level under parallel expansion, the run stops at exactly the
// budget with the exact same partial result as the sequential engine,
// run after run. spinForever's frontier widens level over level, so a
// budget of 97 (prime, far from any level boundary) is guaranteed to
// land mid-level.
func TestShardedBudgetMidLevelDeterministic(t *testing.T) {
	factory := factoryFor(t, system.Fig1(), system.InstrS, spinForever)
	base := Options{MaxStates: 97, Partial: true}

	seq, err := Check(factory, base)
	if err != nil {
		t.Fatal(err)
	}
	if seq.StatesExplored != 97 || seq.Complete || seq.Exhausted != "states" {
		t.Fatalf("sequential baseline off: %+v", seq)
	}

	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"par4", Options{MaxStates: 97, Partial: true, Workers: 4}},
		{"shard4", Options{MaxStates: 97, Partial: true, Workers: 4, Shards: 4}},
		{"shard4+spill", Options{MaxStates: 97, Partial: true, Workers: 4, Shards: 4, HotIndexBytes: 1}},
	} {
		o := mode.opts
		if o.HotIndexBytes > 0 {
			o.SpillDir = t.TempDir()
		}
		for run := 0; run < 3; run++ {
			res, err := Check(factory, o)
			if err != nil {
				t.Fatalf("%s run %d: %v", mode.name, run, err)
			}
			assertIdentical(t, seq, res, mode.name)
			if res.StatesExplored != 97 {
				t.Fatalf("%s run %d explored %d states, want exactly 97", mode.name, run, res.StatesExplored)
			}
		}
	}
}

// TestShardedStatsConsistent: the sharded pipeline's delta/shard
// telemetry must be internally consistent and identical to the
// single-shard engine's on a space both close completely.
func TestShardedStatsConsistent(t *testing.T) {
	factory := factoryFor(t, system.Fig1(), system.InstrL, lockClaim)
	seq, err := Check(factory, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := Check(factory, Options{Workers: 4, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, seq, sh, "sharded stats run")
	if sh.Stats.Shards != 8 {
		t.Errorf("Stats.Shards = %d, want 8", sh.Stats.Shards)
	}
	if seq.Stats.Shards != 1 {
		t.Errorf("sequential Stats.Shards = %d, want 1", seq.Stats.Shards)
	}
	for _, s := range []*Result{seq, sh} {
		if s.Stats.StoredKeyBytes > s.Stats.LogicalKeyBytes {
			t.Errorf("stored %d > logical %d key bytes", s.Stats.StoredKeyBytes, s.Stats.LogicalKeyBytes)
		}
		if s.Stats.DeltaStates == 0 && s.StatesExplored > 2 {
			t.Errorf("no states delta-encoded across %d states; ancestor wiring looks dead", s.StatesExplored)
		}
	}
	// Storage decisions are made in canonical commit order in both
	// engines, so even the compression telemetry must agree exactly.
	if seq.Stats.DeltaStates != sh.Stats.DeltaStates ||
		seq.Stats.StoredKeyBytes != sh.Stats.StoredKeyBytes ||
		seq.Stats.LogicalKeyBytes != sh.Stats.LogicalKeyBytes {
		t.Errorf("storage telemetry diverged:\nseq %+v\nsharded %+v", seq.Stats, sh.Stats)
	}
}

// TestShardedSpillDegradesNotCorrupts: forcing the entire visited set
// through the spill tier must change residency only — verdict, witness,
// and every counter stay identical, and SpilledBytes reports the disk
// traffic.
func TestShardedSpillDegradesNotCorrupts(t *testing.T) {
	factory := factoryFor(t, crossedLocks(), system.InstrL, spinLockBoth)
	seq, err := Check(factory, Options{StuckBad: NotAllHalted})
	if err != nil {
		t.Fatal(err)
	}
	spill, err := Check(factory, Options{
		StuckBad:      NotAllHalted,
		Workers:       4,
		Shards:        4,
		HotIndexBytes: 1,
		SpillDir:      t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, seq, spill, "spill-forced vs sequential")
	if spill.Violation == nil {
		t.Fatal("crossed-locks deadlock must survive the spill tier")
	}
}

// TestProgressSnapshotsConsistentUnderParallel audits the Stats/Progress
// surface for torn reads (the satellite-3 bugfix): every snapshot the
// Progress callback observes must be internally consistent — counters
// monotone, Transitions never behind StatesExplored-1, no regression
// between snapshots — while parallel expansion and staging goroutines
// are live. Run under -race (CI does), this also pins that snapshots are
// delivered from the coordinating goroutine only, between phases: the
// engine's design makes torn reads impossible by construction, and this
// test plus the race detector keeps it that way.
func TestProgressSnapshotsConsistentUnderParallel(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"par4", Options{Workers: 4}},
		{"shard4", Options{Workers: 4, Shards: 4}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			var calls atomic.Int64
			var lastStates, lastTrans int64
			o := mode.opts
			o.MaxStates = 3000
			o.Partial = true
			o.ProgressEvery = 64
			o.Progress = func(s Stats) {
				calls.Add(1)
				if int64(s.StatesExplored) < lastStates {
					t.Errorf("StatesExplored regressed: %d after %d", s.StatesExplored, lastStates)
				}
				if s.Transitions < lastTrans {
					t.Errorf("Transitions regressed: %d after %d", s.Transitions, lastTrans)
				}
				// A torn read would show transitions lagging the states
				// they discovered (every non-root state is found by a
				// counted transition).
				if s.Transitions < int64(s.StatesExplored)-1 {
					t.Errorf("snapshot torn: %d transitions < %d states - 1", s.Transitions, s.StatesExplored)
				}
				lastStates, lastTrans = int64(s.StatesExplored), s.Transitions
			}
			res, err := Check(factoryFor(t, system.Fig1(), system.InstrS, spinForever), o)
			if err != nil {
				t.Fatal(err)
			}
			if res.StatesExplored != 3000 {
				t.Fatalf("explored %d, want 3000", res.StatesExplored)
			}
			if calls.Load() < 2 {
				t.Fatalf("progress fired %d times; need repeated snapshots to audit", calls.Load())
			}
		})
	}
}

// TestMemoryBudgetFiresPromptly pins the capacity-accounting fix at the
// engine level: with an honest estimate the memory budget must trip
// before the footprint meaningfully overshoots the cap (the old
// length-based estimate lagged allocations by whole growth steps), and
// must still return a graceful partial result with work done.
func TestMemoryBudgetFiresPromptly(t *testing.T) {
	const budget = 512 << 10
	res, err := Check(factoryFor(t, system.Fig1(), system.InstrS, spinForever), Options{
		MaxMemBytes: budget,
		Partial:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhausted != "memory" || res.Complete {
		t.Fatalf("result = %+v, want graceful memory exhaustion", res)
	}
	if res.StatesExplored == 0 {
		t.Error("partial result should carry explored states")
	}
	// The estimate is checked after every push, so the recorded peak can
	// exceed the budget by at most one allocation growth step — doubling
	// in the worst case — never by an unaccounted multiple.
	if res.Stats.PeakMemBytes > 3*budget {
		t.Errorf("peak estimate %d overshot the %d budget by more than one growth step", res.Stats.PeakMemBytes, budget)
	}
}
