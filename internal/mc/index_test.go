package mc

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"simsym/internal/canon"
)

// testKey builds a canonically framed state key (uvarint length-prefixed
// components, like machine.AppendStateKey) from the component values.
func testKey(vals ...string) []byte {
	var buf []byte
	for _, v := range vals {
		buf = canon.AppendLenPrefixed(buf, v)
	}
	return buf
}

// mustInsert inserts a key known to be absent and returns its gid.
func mustInsert(t *testing.T, idx *stateIndex, key []byte, ancGID int64, ancKey []byte) int64 {
	t.Helper()
	hash := canon.HashBytes(key)
	if _, ok, err := idx.lookupHashed(key, hash); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatalf("key %q unexpectedly present", key)
	}
	return idx.insert(key, hash, ancGID, ancKey)
}

// TestIndexIDWidthBoundary pins the int32 → int64 id fix: the old index
// stored ids as []int32, so the id stream silently wrapped and aliased
// distinct states past 2³¹. The baseID hook pins the stream right at the
// boundary; crossing it must neither truncate nor alias.
func TestIndexIDWidthBoundary(t *testing.T) {
	idx := newStateIndex(4, 0, "")
	idx.baseID = (int64(1) << 31) - 2

	keys := make([][]byte, 6)
	gids := make([]int64, 6)
	for i := range keys {
		keys[i] = testKey(fmt.Sprintf("pc=%d", i), "x=0", "halted")
		gids[i] = mustInsert(t, idx, keys[i], -1, nil)
		if want := idx.baseID + int64(i); gids[i] != want {
			t.Fatalf("gid %d = %d, want %d", i, gids[i], want)
		}
	}
	if gids[5] <= int64(1)<<31 {
		t.Fatalf("test must cross the int32 boundary; last gid = %d", gids[5])
	}
	// Every key must resolve to its own id — an int32-width index would
	// alias ids 2147483646 and beyond after truncation.
	for i, key := range keys {
		gid, ok, err := idx.lookupHashed(key, canon.HashBytes(key))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || gid != gids[i] {
			t.Errorf("key %d resolved to gid %d (ok=%v), want %d", i, gid, ok, gids[i])
		}
		if int32(gid) == int32(gids[(i+1)%len(gids)]) && gid != gids[(i+1)%len(gids)] {
			// Purely documentary: truncation would have collided these.
			t.Logf("gids %d and %d collide after int32 truncation", gid, gids[(i+1)%len(gids)])
		}
	}
}

// TestIndexMemBytesCountsCapacities pins the capacity-accounting fix:
// the arena allocates whole chunks, so even a single tiny key must be
// charged a full chunk — the old length-based estimate undercounted by
// nearly the whole allocation and fired the memory budget late.
func TestIndexMemBytesCountsCapacities(t *testing.T) {
	idx := newStateIndex(1, 0, "")
	small := testKey("a")
	mustInsert(t, idx, small, -1, nil)
	if got := idx.memBytes(); got < chunkSize {
		t.Errorf("memBytes = %d after one insert; a %d-byte chunk is allocated and must be charged", got, chunkSize)
	}

	// The bucket directory must charge exactly bucketSlotSize per
	// allocated open-addressing slot, and entries forced to share one
	// full hash must land in separate slots that all still resolve
	// exactly (the probe chain disambiguates by key comparison).
	idx2 := newStateIndex(1, 0, "")
	hash := canon.HashBytes(testKey("seed"))
	for i := 0; i < 100; i++ {
		idx2.insert(testKey(fmt.Sprintf("k=%d", i)), hash, -1, nil)
	}
	sh := &idx2.shards[0]
	if sh.buckets.n != 100 {
		t.Errorf("bucket table holds %d entries, want 100", sh.buckets.n)
	}
	for i := 0; i < 100; i++ {
		gid, ok, err := idx2.lookupHashed(testKey(fmt.Sprintf("k=%d", i)), hash)
		if err != nil || !ok {
			t.Fatalf("same-hash key %d not found (ok=%v, err=%v)", i, ok, err)
		}
		if gid != int64(i) {
			t.Errorf("same-hash key %d resolved to gid %d", i, gid)
		}
	}
	if got, wantMin := idx2.memBytes(), int64(len(sh.buckets.eis))*bucketSlotSize; got < wantMin {
		t.Errorf("memBytes = %d must cover the bucket directory's %d bytes", got, wantMin)
	}
	if got := idx2.memBytes(); got < int64(cap(sh.entries))*entrySize {
		t.Errorf("memBytes = %d must cover the entries table capacity %d", got, cap(sh.entries)*entrySize)
	}
}

// TestIndexDeltaStorage: a child key differing from its ancestor in one
// component is stored as a delta, resolves exactly, and never aliases a
// near-miss key.
func TestIndexDeltaStorage(t *testing.T) {
	idx := newStateIndex(2, 0, "")
	parent := testKey("pc=0", "pc=0", "lock=free", "turn=0")
	pgid := mustInsert(t, idx, parent, -1, nil)

	ancGID, ancKey, err := idx.ancestorFor(pgid, &[]byte{})
	if err != nil {
		t.Fatal(err)
	}
	if ancGID != pgid || !bytes.Equal(ancKey, parent) {
		t.Fatalf("full-stored parent must be its own ancestor")
	}

	child := testKey("pc=1", "pc=0", "lock=free", "turn=0")
	cgid := mustInsert(t, idx, child, ancGID, ancKey)
	snap := idx.statsSnapshot()
	if snap.deltaStates != 1 {
		t.Errorf("deltaStates = %d, want 1", snap.deltaStates)
	}
	if snap.storedBytes >= snap.logicalBytes {
		t.Errorf("delta storage should compress: stored %d >= logical %d", snap.storedBytes, snap.logicalBytes)
	}

	// Exact resolution, no aliasing with a near-miss.
	if gid, ok, _ := idx.lookupHashed(child, canon.HashBytes(child)); !ok || gid != cgid {
		t.Errorf("child resolved to %d/%v, want %d", gid, ok, cgid)
	}
	near := testKey("pc=1", "pc=0", "lock=free", "turn=1")
	if _, ok, _ := idx.lookupHashed(near, canon.HashBytes(near)); ok {
		t.Error("near-miss key must not match the delta-stored child")
	}

	// A delta-stored state's ancestor is its keyframe, not itself.
	cAncGID, cAncKey, err := idx.ancestorFor(cgid, &[]byte{})
	if err != nil {
		t.Fatal(err)
	}
	if cAncGID != pgid || !bytes.Equal(cAncKey, parent) {
		t.Errorf("delta child's ancestor = %d, want keyframe %d", cAncGID, pgid)
	}
}

// TestIndexSpillRoundTrip: with a hot cap far below the written volume,
// chunks migrate to disk and every key still resolves bit-exactly
// through file reads; release removes the spill directory.
func TestIndexSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	idx := newStateIndex(2, chunkSize/2, dir) // cap below one chunk: spill everything finalized
	var keys [][]byte
	var gids []int64
	// Write a few chunks' worth of keys with some delta-encoded entries.
	var ancGID int64 = -1
	var ancKey []byte
	for i := 0; i < 3000; i++ {
		// Wide, mostly-unique keys so each shard finalizes several
		// chunks (only finalized chunks are spillable).
		key := testKey(fmt.Sprintf("pc=%d", i%7), fmt.Sprintf("x=%0200d", i), "padpadpadpadpadpadpadpad")
		gid := mustInsert(t, idx, key, ancGID, ancKey)
		keys = append(keys, key)
		gids = append(gids, gid)
		if i%10 == 0 {
			var arena []byte
			ag, ak, err := idx.ancestorFor(gid, &arena)
			if err != nil {
				t.Fatal(err)
			}
			ancGID, ancKey = ag, append([]byte(nil), ak...)
		}
		if i%500 == 499 {
			if _, err := idx.maybeSpill(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := idx.maybeSpill(); err != nil {
		t.Fatal(err)
	}
	if idx.spilledBytes == 0 {
		t.Fatal("spill tier never engaged despite a sub-chunk hot cap")
	}
	var hot int64
	for i := range idx.shards {
		hot += idx.shards[i].hotBytes()
	}
	if hot > chunkSize*int64(len(idx.shards)) {
		t.Errorf("hot tier holds %d bytes after spilling; at most the active chunk per shard should remain", hot)
	}

	for i := range keys {
		gid, ok, err := idx.lookupHashed(keys[i], canon.HashBytes(keys[i]))
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		if !ok || gid != gids[i] {
			t.Errorf("key %d resolved to %d/%v, want %d", i, gid, ok, gids[i])
		}
	}

	if idx.spillPath == "" {
		t.Fatal("spillPath unset after spilling")
	}
	path := idx.spillPath
	idx.release()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("release must remove the spill dir; stat err = %v", err)
	}
}

// TestIndexShardRouting: with multiple shards, keys land on more than
// one shard and the where-table round-trips every gid to its entry.
func TestIndexShardRouting(t *testing.T) {
	idx := newStateIndex(4, 0, "")
	if len(idx.shards) != 4 {
		t.Fatalf("shard count = %d, want 4", len(idx.shards))
	}
	for i := 0; i < 200; i++ {
		key := testKey(fmt.Sprintf("state-%d", i))
		gid := mustInsert(t, idx, key, -1, nil)
		sh, e := idx.entryAt(gid)
		if e.gid != gid {
			t.Fatalf("entryAt(%d) round-trip gave gid %d", gid, e.gid)
		}
		raw, err := sh.read(e.off, int(e.n), &idx.scrA)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, key) {
			t.Fatalf("gid %d stored bytes mismatch", gid)
		}
	}
	used := 0
	for i := range idx.shards {
		if len(idx.shards[i].entries) > 0 {
			used++
		}
	}
	if used < 2 {
		t.Errorf("only %d of 4 shards used across 200 keys; hash routing looks degenerate", used)
	}
}
