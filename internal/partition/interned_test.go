package partition

import (
	"fmt"
	"math/rand"
	"testing"
)

// AppendSignature mirrors dfa.Signature as tokens, so the dfa-based
// tests drive the interned token path of FixpointWorklist.
func (d *dfa) AppendSignature(buf []uint64, i int, label func(int) int) []uint64 {
	for _, t := range d.next[i] {
		buf = append(buf, uint64(int64(label(t))))
	}
	return buf
}

func TestSigTableInternsDenseIDs(t *testing.T) {
	var tab SigTable
	seqs := [][]uint64{
		{},
		{1},
		{1, 0},
		{0, 1},
		{1, 0, 0},
		{^uint64(0)},
	}
	for want, s := range seqs {
		if got := tab.Intern(s); got != want {
			t.Errorf("Intern(%v) = %d, want %d", s, got, want)
		}
	}
	if tab.Len() != len(seqs) {
		t.Errorf("Len = %d, want %d", tab.Len(), len(seqs))
	}
	// Re-interning returns the same ids, in any order.
	for want := len(seqs) - 1; want >= 0; want-- {
		if got := tab.Intern(seqs[want]); got != want {
			t.Errorf("re-Intern(%v) = %d, want %d", seqs[want], got, want)
		}
		if got := tab.Tokens(want); len(got) != len(seqs[want]) {
			t.Errorf("Tokens(%d) = %v, want %v", want, got, seqs[want])
		}
	}
}

func TestSigTableCopiesCallerBuffer(t *testing.T) {
	var tab SigTable
	buf := []uint64{7, 8, 9}
	id := tab.Intern(buf)
	buf[0] = 99 // caller reuses the buffer
	if got := tab.Intern([]uint64{7, 8, 9}); got != id {
		t.Errorf("mutating the caller buffer changed the interned tokens: got %d, want %d", got, id)
	}
	if got := tab.Intern(buf); got == id {
		t.Error("distinct tokens interned to the same id")
	}
}

func TestSigTableReset(t *testing.T) {
	var tab SigTable
	tab.Intern([]uint64{1, 2})
	tab.Intern([]uint64{3})
	tab.Reset()
	if tab.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tab.Len())
	}
	if got := tab.Intern([]uint64{3}); got != 0 {
		t.Errorf("first Intern after Reset = %d, want 0", got)
	}
}

func TestSortTokenPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		m := rng.Intn(40)
		toks := make([]uint64, 2*m)
		for i := range toks {
			toks[i] = uint64(rng.Intn(5))
		}
		SortTokenPairs(toks)
		for i := 2; i < len(toks); i += 2 {
			a0, a1 := toks[i-2], toks[i-1]
			b0, b1 := toks[i], toks[i+1]
			if a0 > b0 || (a0 == b0 && a1 > b1) {
				t.Fatalf("trial %d: pairs out of order at %d: %v", trial, i, toks)
			}
		}
	}
}

func randomDFA(rng *rand.Rand, n int) *dfa {
	accept := make([]bool, n)
	next := make([][]int, n)
	for s := 0; s < n; s++ {
		accept[s] = rng.Intn(2) == 0
		next[s] = []int{rng.Intn(n), rng.Intn(n)}
	}
	return newDFA(accept, next)
}

// TestParallelWorklistMatchesSequential checks that the opt-in parallel
// signature pass is invisible: for every worker count the result is
// label-for-label identical to the sequential driver (not just the same
// relation — the merge is deterministic).
func TestParallelWorklistMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		d := randomDFA(rng, 2+rng.Intn(60))
		seq, err := FixpointWorklist(d)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 4, 8} {
			par, err := FixpointWorklistParallel(d, workers)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(seq.Labels()) != fmt.Sprint(par.Labels()) {
				t.Fatalf("trial %d workers %d: %v != %v", trial, workers, seq.Labels(), par.Labels())
			}
		}
	}
}

// TestParallelHopcroftMatchesSequential checks the parallel initial
// signature pass of the Hopcroft driver the same way.
func TestParallelHopcroftMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		d := randomDFA(rng, 2+rng.Intn(60))
		seq, err := FixpointHopcroft(d)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 5} {
			par, err := FixpointHopcroftParallel(d, workers)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(seq.Labels()) != fmt.Sprint(par.Labels()) {
				t.Fatalf("trial %d workers %d: %v != %v", trial, workers, seq.Labels(), par.Labels())
			}
		}
	}
}

// stringOnlyDFA hides the TokenStructure implementation of dfa (the
// field is deliberately not embedded, so AppendSignature is not
// promoted), forcing the string-interning fallback of the worklist
// driver.
type stringOnlyDFA struct{ d *dfa }

func (s stringOnlyDFA) Len() int                                { return s.d.Len() }
func (s stringOnlyDFA) InitKey(i int) string                    { return s.d.InitKey(i) }
func (s stringOnlyDFA) Signature(i int, l func(int) int) string { return s.d.Signature(i, l) }
func (s stringOnlyDFA) Dependents(i int) []int                  { return s.d.Dependents(i) }

// TestTokenPathMatchesStringFallback cross-checks the interned token
// path against the string fallback and the naive string oracle.
func TestTokenPathMatchesStringFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 60; trial++ {
		d := randomDFA(rng, 2+rng.Intn(60))
		if _, ok := any(d).(TokenStructure); !ok {
			t.Fatal("dfa should implement TokenStructure")
		}
		if _, ok := any(stringOnlyDFA{d: d}).(TokenStructure); ok {
			t.Fatal("stringOnlyDFA must not implement TokenStructure")
		}
		tok, err := FixpointWorklist(d)
		if err != nil {
			t.Fatal(err)
		}
		str, err := FixpointWorklist(stringOnlyDFA{d: d})
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := FixpointNaive(d)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(tok.Labels()) != fmt.Sprint(str.Labels()) {
			t.Fatalf("trial %d: token %v != string %v", trial, tok.Labels(), str.Labels())
		}
		if !SameRelation(tok, oracle) {
			t.Fatalf("trial %d: interned relation differs from naive oracle", trial)
		}
	}
}
