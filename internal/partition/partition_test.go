package partition

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// dfa is a deterministic finite automaton used as a reference Structure:
// partition refinement over it is exactly Hopcroft/Moore minimization,
// the [H71] application the paper cites.
type dfa struct {
	accept []bool
	next   [][]int // next[state][symbol]
	prev   [][]int // reverse edges (all symbols merged)
}

func newDFA(accept []bool, next [][]int) *dfa {
	d := &dfa{accept: accept, next: next, prev: make([][]int, len(accept))}
	for s := range next {
		for _, t := range next[s] {
			d.prev[t] = append(d.prev[t], s)
		}
	}
	return d
}

func (d *dfa) Len() int { return len(d.accept) }

func (d *dfa) InitKey(i int) string {
	if d.accept[i] {
		return "acc"
	}
	return "rej"
}

func (d *dfa) Signature(i int, label func(int) int) string {
	sig := ""
	for _, t := range d.next[i] {
		sig += fmt.Sprintf("%d,", label(t))
	}
	return sig
}

func (d *dfa) Dependents(i int) []int { return d.prev[i] }

// modDFA builds a DFA over alphabet {0,1} with n*k states (value mod n
// replicated k times) accepting when value mod n == 0. Its minimal DFA has
// exactly n states, so refinement must find exactly n classes.
func modDFA(n, k int) *dfa {
	total := n * k
	accept := make([]bool, total)
	next := make([][]int, total)
	for s := 0; s < total; s++ {
		v := s % n
		accept[s] = v == 0
		// Successor copies are chosen cyclically so the copies are truly
		// equivalent but not structurally identical.
		copyA := (s/n + 1) % k
		copyB := (s/n + 2) % k
		next[s] = []int{
			copyA*n + (v*2)%n,
			copyB*n + (v*2+1)%n,
		}
	}
	return newDFA(accept, next)
}

func TestDFAMinimizationExact(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{3, 1}, {3, 4}, {5, 3}, {7, 2}, {1, 5}} {
		t.Run(fmt.Sprintf("mod%dx%d", tc.n, tc.k), func(t *testing.T) {
			d := modDFA(tc.n, tc.k)
			p, err := FixpointNaive(d)
			if err != nil {
				t.Fatal(err)
			}
			if p.NumClasses() != tc.n {
				t.Errorf("NumClasses = %d, want %d\n%s", p.NumClasses(), tc.n, p)
			}
			// Equivalent states (same residue) must share a class.
			for s := 0; s < d.Len(); s++ {
				if p.Label(s) != p.Label(s%tc.n) {
					t.Errorf("state %d not merged with its residue class", s)
				}
			}
		})
	}
}

func TestWorklistMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(40)
		accept := make([]bool, n)
		next := make([][]int, n)
		for s := 0; s < n; s++ {
			accept[s] = rng.Intn(2) == 0
			next[s] = []int{rng.Intn(n), rng.Intn(n)}
		}
		d := newDFA(accept, next)
		a, err := FixpointNaive(d)
		if err != nil {
			t.Fatal(err)
		}
		b, err := FixpointWorklist(d)
		if err != nil {
			t.Fatal(err)
		}
		if !SameRelation(a, b) {
			t.Fatalf("trial %d: naive %v != worklist %v", trial, a, b)
		}
	}
}

func TestEmptyStructure(t *testing.T) {
	d := newDFA(nil, nil)
	if _, err := FixpointNaive(d); !errors.Is(err, ErrEmptyStructure) {
		t.Errorf("naive on empty = %v", err)
	}
	if _, err := FixpointWorklist(d); !errors.Is(err, ErrEmptyStructure) {
		t.Errorf("worklist on empty = %v", err)
	}
}

func TestStabilityInvariant(t *testing.T) {
	// At the fixpoint, same label must imply same signature.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		accept := make([]bool, n)
		next := make([][]int, n)
		for s := 0; s < n; s++ {
			accept[s] = rng.Intn(3) == 0
			next[s] = []int{rng.Intn(n), rng.Intn(n), rng.Intn(n)}
		}
		d := newDFA(accept, next)
		p, err := FixpointWorklist(d)
		if err != nil {
			t.Fatal(err)
		}
		lbl := func(i int) int { return p.Label(i) }
		sigOf := make(map[int]string)
		for i := 0; i < n; i++ {
			sig := d.Signature(i, lbl)
			if prev, ok := sigOf[p.Label(i)]; ok && prev != sig {
				t.Fatalf("trial %d: class %d unstable: %q vs %q", trial, p.Label(i), prev, sig)
			}
			sigOf[p.Label(i)] = sig
		}
	}
}

func TestCoarsestInvariant(t *testing.T) {
	// The fixpoint must be the COARSEST stable refinement of the initial
	// coloring: check against brute-force coarsest stable partition on
	// tiny automata.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(6)
		accept := make([]bool, n)
		next := make([][]int, n)
		for s := 0; s < n; s++ {
			accept[s] = rng.Intn(2) == 0
			next[s] = []int{rng.Intn(n)}
		}
		d := newDFA(accept, next)
		p, err := FixpointNaive(d)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force: two states are equivalent iff same acceptance and
		// equivalence is preserved along all successor chains up to n
		// steps (enough for n states).
		equiv := func(a, b int) bool {
			x, y := a, b
			for step := 0; step <= n; step++ {
				if d.accept[x] != d.accept[y] {
					return false
				}
				x, y = d.next[x][0], d.next[y][0]
			}
			return true
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				want := equiv(a, b)
				got := p.Label(a) == p.Label(b)
				if want != got {
					t.Fatalf("trial %d: states %d,%d: refinement says %v, brute force %v\n%s",
						trial, a, b, got, want, p)
				}
			}
		}
	}
}

func TestRefinesAndSameRelation(t *testing.T) {
	d := modDFA(3, 2)
	coarse, err := FixpointNaive(d)
	if err != nil {
		t.Fatal(err)
	}
	// A fully-discrete partition refines everything.
	discrete := &Partition{label: make([]int, d.Len())}
	for i := range discrete.label {
		discrete.label[i] = i
		discrete.members = append(discrete.members, []int{i})
	}
	if !Refines(discrete, coarse) {
		t.Error("discrete partition should refine the fixpoint")
	}
	if Refines(coarse, discrete) {
		t.Error("fixpoint should not refine the discrete partition")
	}
	if !Refines(coarse, coarse) || !SameRelation(coarse, coarse) {
		t.Error("partition should refine and equal itself")
	}
	// Mismatched sizes.
	small := &Partition{label: []int{0}}
	if Refines(small, coarse) || SameRelation(small, coarse) {
		t.Error("size-mismatched comparisons should be false")
	}
}

func TestCanonicalStableUnderIdShuffle(t *testing.T) {
	p := &Partition{
		label:   []int{5, 5, 2, 2, 9},
		members: [][]int{},
	}
	q := &Partition{
		label: []int{0, 0, 1, 1, 2},
	}
	cp, cq := p.Canonical(), q.Canonical()
	for i := range cp {
		if cp[i] != cq[i] {
			t.Fatalf("canonical mismatch at %d: %v vs %v", i, cp, cq)
		}
	}
}

func TestSingletonClasses(t *testing.T) {
	d := modDFA(5, 1) // 2 is invertible mod 5, so the DFA is minimal
	p, err := FixpointNaive(d)
	if err != nil {
		t.Fatal(err)
	}
	singles := p.SingletonClasses()
	if len(singles) != 5 {
		t.Errorf("singletons = %v, want all 5 states", singles)
	}
	sizes := p.ClassSizes()
	for c, sz := range sizes {
		if sz != len(p.Members(c)) {
			t.Errorf("class %d size mismatch", c)
		}
	}
}

func TestMembersReturnsCopy(t *testing.T) {
	d := modDFA(2, 2)
	p, err := FixpointNaive(d)
	if err != nil {
		t.Fatal(err)
	}
	m := p.Members(0)
	if len(m) == 0 {
		t.Fatal("class 0 empty")
	}
	m[0] = 999
	if p.Members(0)[0] == 999 {
		t.Error("Members leaked internal slice")
	}
	l := p.Labels()
	l[0] = 999
	if p.Label(0) == 999 {
		t.Error("Labels leaked internal slice")
	}
}

// chainStructure is adversarial for naive refinement: a long chain where
// distinctions propagate one hop per round.
type chainStructure struct{ n int }

func (c chainStructure) Len() int { return c.n }
func (c chainStructure) InitKey(i int) string {
	if i == c.n-1 {
		return "end"
	}
	return "mid"
}
func (c chainStructure) Signature(i int, label func(int) int) string {
	if i == c.n-1 {
		return "end"
	}
	return fmt.Sprintf("%d", label(i+1))
}
func (c chainStructure) Dependents(i int) []int {
	if i == 0 {
		return nil
	}
	return []int{i - 1}
}

func TestChainFullySeparates(t *testing.T) {
	for _, driver := range []struct {
		name string
		run  func(Structure) (*Partition, error)
	}{{"naive", FixpointNaive}, {"worklist", FixpointWorklist}} {
		t.Run(driver.name, func(t *testing.T) {
			p, err := driver.run(chainStructure{n: 64})
			if err != nil {
				t.Fatal(err)
			}
			if p.NumClasses() != 64 {
				t.Errorf("chain classes = %d, want 64", p.NumClasses())
			}
		})
	}
}

func BenchmarkNaiveChain(b *testing.B) {
	benchDriver(b, FixpointNaive)
}

func BenchmarkWorklistChain(b *testing.B) {
	benchDriver(b, FixpointWorklist)
}

func benchDriver(b *testing.B, run func(Structure) (*Partition, error)) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := chainStructure{n: n}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := run(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestClassesAndString(t *testing.T) {
	d := modDFA(3, 2)
	p, err := FixpointNaive(d)
	if err != nil {
		t.Fatal(err)
	}
	classes := p.Classes()
	if len(classes) != p.NumClasses() {
		t.Errorf("Classes len = %d, want %d", len(classes), p.NumClasses())
	}
	total := 0
	for _, c := range classes {
		total += len(c)
	}
	if total != d.Len() {
		t.Errorf("classes cover %d nodes, want %d", total, d.Len())
	}
	if p.String() == "" {
		t.Error("String should render")
	}
}

// TestPartitionAccessorsCopy pins the sharing contract of the static
// Partition's slice-returning accessors: everything handed out is a
// copy, never a view of internal storage. Before the dynamic engine
// this was a style point; under churn a borrowed class slice would be
// scrambled by the next event's swap-removals, so the contract is now
// load-bearing (see also TestDynClassMembersCopied).
func TestPartitionAccessorsCopy(t *testing.T) {
	d := modDFA(6, 2)
	p, err := FixpointWorklist(d)
	if err != nil {
		t.Fatal(err)
	}
	labels := p.Labels()
	members := p.Members(p.Label(0))
	classes := p.Classes()
	canon := p.Canonical()

	for i := range labels {
		labels[i] = -7
	}
	for i := range members {
		members[i] = -7
	}
	for _, c := range classes {
		for i := range c {
			c[i] = -7
		}
	}
	for i := range canon {
		canon[i] = -7
	}

	if p.Label(0) == -7 {
		t.Fatal("Labels() shares internal storage")
	}
	for _, m := range p.Members(p.Label(0)) {
		if m == -7 {
			t.Fatal("Members() shares internal storage")
		}
	}
	for _, c := range p.Classes() {
		for _, m := range c {
			if m == -7 {
				t.Fatal("Classes() shares internal storage")
			}
		}
	}
	for _, l := range p.Canonical() {
		if l == -7 {
			t.Fatal("Canonical() shares internal storage")
		}
	}
}
