package partition

import (
	"fmt"
	"testing"
)

// dfaFromBytes decodes an arbitrary byte string into a small DFA over a
// two-symbol alphabet: byte 0 sizes the machine, then each state reads
// three bytes (accept bit, two successor indices mod n). Every input
// decodes to a valid structure so the fuzzer explores shapes, not
// parser rejections.
func dfaFromBytes(data []byte) *dfa {
	if len(data) == 0 {
		data = []byte{0}
	}
	n := 2 + int(data[0])%62
	data = data[1:]
	at := func(i int) byte {
		if len(data) == 0 {
			return 0
		}
		return data[i%len(data)]
	}
	accept := make([]bool, n)
	next := make([][]int, n)
	for s := 0; s < n; s++ {
		accept[s] = at(3*s)&1 == 1
		next[s] = []int{int(at(3*s+1)) % n, int(at(3*s+2)) % n}
	}
	return newDFA(accept, next)
}

// FuzzInternedSignatures cross-checks the interned token signature path
// against the string-signature fallback and the naive refinement
// oracle on fuzzer-shaped DFAs: the worklist driver must produce
// label-for-label identical partitions through both encodings, and the
// relation must match FixpointNaive.
func FuzzInternedSignatures(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{3, 1, 0, 1, 0, 2, 2, 1, 1, 0})
	f.Add([]byte{61, 0xff, 0x00, 0xaa, 0x55, 7, 9, 11, 13})
	f.Add([]byte("partition refinement is dfa minimization"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d := dfaFromBytes(data)
		tok, err := FixpointWorklist(d)
		if err != nil {
			t.Fatalf("token path: %v", err)
		}
		str, err := FixpointWorklist(stringOnlyDFA{d: d})
		if err != nil {
			t.Fatalf("string path: %v", err)
		}
		if fmt.Sprint(tok.Labels()) != fmt.Sprint(str.Labels()) {
			t.Fatalf("token labels %v != string labels %v (n=%d)",
				tok.Labels(), str.Labels(), d.Len())
		}
		oracle, err := FixpointNaive(d)
		if err != nil {
			t.Fatalf("naive oracle: %v", err)
		}
		if !SameRelation(tok, oracle) {
			t.Fatalf("interned relation %v differs from naive oracle %v (n=%d)",
				tok.Labels(), oracle.Labels(), d.Len())
		}
	})
}
