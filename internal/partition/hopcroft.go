package partition

import (
	"fmt"
	"sort"
	"sync"
)

// TaggedEdge is a directed, integer-tagged edge: the color of From (the
// owner) depends on the color of To through an edge with this Tag.
type TaggedEdge struct {
	To  int
	Tag int
}

// CountStructure describes a structure refinable by counting signatures:
// a node's environment is the multiset of (tag, target-class) pairs over
// its out-edges. For such structures the Hopcroft smaller-half strategy
// is sound — the count of edges into a split-off part determines the
// count into the remainder — which is not true of set-based signatures;
// set-rule refinement must use FixpointWorklist instead.
//
// The paper's Q-environment rules are counting signatures: a processor
// has exactly one edge per name to its n-neighbor (condition (2)) and a
// variable's environment counts n-neighbors per processor label
// (condition (3)).
type CountStructure interface {
	// Len returns the number of nodes.
	Len() int
	// InitKey returns the initial-coloring key of node i.
	InitKey(i int) string
	// OutEdges returns node i's dependency edges. Called once per node.
	OutEdges(i int) []TaggedEdge
}

// segments is the classic Hopcroft partition structure: a permutation of
// the nodes in which every class occupies a contiguous segment, so moving
// a node into a freshly split-off part is a constant-time swap and the
// untouched remainder of a class is never enumerated.
type segments struct {
	order   []int // permutation of node ids
	pos     []int // pos[node] = index into order
	classOf []int // node -> class id
	start   []int // class id -> first index of its segment
	length  []int // class id -> segment length
	carved  []int // class id -> nodes carved off the segment front (scratch)
}

func newSegments(keys []string) *segments {
	n := len(keys)
	s := &segments{
		order:   make([]int, n),
		pos:     make([]int, n),
		classOf: make([]int, n),
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if keys[idx[a]] != keys[idx[b]] {
			return keys[idx[a]] < keys[idx[b]]
		}
		return idx[a] < idx[b]
	})
	for i, node := range idx {
		s.order[i] = node
		s.pos[node] = i
	}
	for i := 0; i < n; {
		j := i
		for j < n && keys[idx[j]] == keys[idx[i]] {
			j++
		}
		c := len(s.start)
		s.start = append(s.start, i)
		s.length = append(s.length, j-i)
		s.carved = append(s.carved, 0)
		for k := i; k < j; k++ {
			s.classOf[idx[k]] = c
		}
		i = j
	}
	return s
}

// moveToFront swaps node x to the carved prefix of its class segment.
func (s *segments) moveToFront(x int) {
	c := s.classOf[x]
	target := s.start[c] + s.carved[c]
	s.carved[c]++
	cur := s.pos[x]
	other := s.order[target]
	s.order[target], s.order[cur] = x, other
	s.pos[x], s.pos[other] = target, cur
}

// finishCarve turns the carved prefix of class c into a new class and
// shrinks c to its remainder; returns the new class id. The caller must
// ensure 0 < carved < length.
func (s *segments) finishCarve(c int) int {
	nc := len(s.start)
	cnt := s.carved[c]
	s.start = append(s.start, s.start[c])
	s.length = append(s.length, cnt)
	s.carved = append(s.carved, 0)
	for i := s.start[c]; i < s.start[c]+cnt; i++ {
		s.classOf[s.order[i]] = nc
	}
	s.start[c] += cnt
	s.length[c] -= cnt
	s.carved[c] = 0
	return nc
}

// FixpointHopcroft computes the coarsest stable partition of s with the
// smaller-half splitter strategy of Hopcroft [H71], as Theorem 5
// prescribes: split work is proportional to the edges into the splitter
// (untouched class remainders are never visited), and split-off parts
// enter the queue while the largest part stays out, so every node is
// processed O(log n) times per incident edge — O((n + m) log n) overall.
//
// Touched-member grouping interns sorted tag multisets through a
// SigTable, so the hot loop compares small dense ints and reuses its
// scratch arrays instead of formatting strings and allocating maps per
// splitter.
func FixpointHopcroft(cs CountStructure) (*Partition, error) {
	return fixpointHopcroft(cs, 1, nil)
}

// FixpointHopcroftHooked is FixpointHopcroft with a progress hook and an
// optional parallel initial collection pass (workers > 1). The hook
// fires once per splitter iteration that carved at least one new class
// — quiet iterations (no edges into the splitter, or no refinement) are
// skipped so observed runs stay proportional to actual refinement work.
func FixpointHopcroftHooked(cs CountStructure, workers int, hook RoundHook) (*Partition, error) {
	if workers < 1 {
		workers = 1
	}
	return fixpointHopcroft(cs, workers, hook)
}

// FixpointHopcroftParallel is FixpointHopcroft with the initial
// signature pass — collecting every node's InitKey and OutEdges — fanned
// out over `workers` goroutines on disjoint node ranges, merged
// deterministically by node index. The refinement loop itself is
// inherently sequential (each splitter's carves feed the next), so it is
// unchanged. CountStructure methods must be safe for concurrent
// read-only use.
func FixpointHopcroftParallel(cs CountStructure, workers int) (*Partition, error) {
	if workers < 1 {
		workers = 1
	}
	return fixpointHopcroft(cs, workers, nil)
}

func fixpointHopcroft(cs CountStructure, workers int, hook RoundHook) (*Partition, error) {
	n := cs.Len()
	if n == 0 {
		return nil, ErrEmptyStructure
	}
	keys := make([]string, n)
	outs := make([][]TaggedEdge, n)
	collect := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			keys[i] = cs.InitKey(i)
			outs[i] = cs.OutEdges(i)
		}
	}
	if workers > 1 {
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for lo := 0; lo < n; lo += chunk {
			hi := min(lo+chunk, n)
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				collect(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	} else {
		collect(0, n)
	}
	seg := newSegments(keys)

	// Reverse adjacency: rev[y] lists (x, tag) for each edge x --tag--> y.
	// Counted first so the whole adjacency lives in one backing array.
	deg := make([]int, n)
	total := 0
	for i := 0; i < n; i++ {
		for _, e := range outs[i] {
			if e.To < 0 || e.To >= n {
				return nil, fmt.Errorf("partition: edge target %d out of range", e.To)
			}
			deg[e.To]++
			total++
		}
	}
	backing := make([]TaggedEdge, total)
	rev := make([][]TaggedEdge, n)
	off := 0
	for y := 0; y < n; y++ {
		rev[y] = backing[off : off : off+deg[y]]
		off += deg[y]
	}
	for i := 0; i < n; i++ {
		for _, e := range outs[i] {
			rev[e.To] = append(rev[e.To], TaggedEdge{To: i, Tag: e.Tag})
		}
	}

	inQueue := make([]bool, len(seg.start), 2*n)
	queue := make([]int, 0, 2*n)
	enqueue := func(c int) {
		for c >= len(inQueue) {
			inQueue = append(inQueue, false)
		}
		if !inQueue[c] {
			inQueue[c] = true
			queue = append(queue, c)
		}
	}
	for c := range seg.start {
		enqueue(c)
	}

	// Reusable scratch, cleared after each splitter: nodeTags[x] holds
	// the tags of x's edges into the current splitter, byClass[c] the
	// touched members of class c, groups[id] the members whose interned
	// tag multiset got dense id `id`.
	var (
		tab      SigTable
		tokBuf   []uint64
		touched  []int
		classIDs []int
		groups   [][]int
	)
	inTouched := make([]bool, n)
	nodeTags := make([][]int, n)
	byClass := make([][]int, len(seg.start), 2*n)

	for head := 0; head < len(queue); head++ {
		splitter := queue[head]
		inQueue[splitter] = false
		classesBefore := len(seg.start)

		// Gather the nodes with edges into the splitter and their tags.
		touched = touched[:0]
		for i := seg.start[splitter]; i < seg.start[splitter]+seg.length[splitter]; i++ {
			y := seg.order[i]
			for _, e := range rev[y] {
				if !inTouched[e.To] {
					inTouched[e.To] = true
					touched = append(touched, e.To)
				}
				nodeTags[e.To] = append(nodeTags[e.To], e.Tag)
			}
		}
		if len(touched) == 0 {
			continue
		}

		// Group touched nodes by class, deterministically.
		sort.Ints(touched)
		classIDs = classIDs[:0]
		for _, x := range touched {
			c := seg.classOf[x]
			for c >= len(byClass) {
				byClass = append(byClass, nil)
			}
			if len(byClass[c]) == 0 {
				classIDs = append(classIDs, c)
			}
			byClass[c] = append(byClass[c], x)
		}
		sort.Ints(classIDs)

		for _, c := range classIDs {
			if seg.length[c] <= 1 {
				continue
			}
			xs := byClass[c]
			// Group the touched members by interned tag-multiset id; ids
			// are dense per class in first-appearance order.
			tab.Reset()
			ngroups := 0
			for _, x := range xs {
				tags := nodeTags[x]
				sort.Ints(tags)
				tokBuf = tokBuf[:0]
				for _, t := range tags {
					tokBuf = append(tokBuf, uint64(int64(t)))
				}
				id := tab.Intern(tokBuf)
				if id == ngroups {
					if ngroups < len(groups) {
						groups[ngroups] = groups[ngroups][:0]
					} else {
						groups = append(groups, nil)
					}
					ngroups++
				}
				groups[id] = append(groups[id], x)
			}
			untouched := seg.length[c] - len(xs)
			if untouched == 0 && ngroups == 1 {
				continue // whole class shares one signature: no split
			}

			// Determine the largest part (untouched remainder counts as
			// a part, id -1); it keeps the old class id when it is the
			// remainder, and stays out of the queue when c wasn't in it.
			largestID := -1
			largestSize := untouched
			for id := 0; id < ngroups; id++ {
				if len(groups[id]) > largestSize {
					largestSize = len(groups[id])
					largestID = id
				}
			}
			wasQueued := inQueue[c]

			// Carve every touched group except, when the remainder is
			// empty, the largest touched group (something must keep the
			// old id and carving all members is illegal).
			skipID := -1
			if untouched == 0 {
				skipID = largestID
				if skipID < 0 {
					skipID = 0
				}
			}
			for id := 0; id < ngroups; id++ {
				if id == skipID {
					continue
				}
				for _, x := range groups[id] {
					seg.moveToFront(x)
				}
				nc := seg.finishCarve(c)
				for nc >= len(inQueue) {
					inQueue = append(inQueue, false)
				}
				// Queue policy: if c was pending, every part must be a
				// splitter; otherwise all parts except the largest.
				if wasQueued || id != largestID {
					enqueue(nc)
				}
			}
			if wasQueued {
				continue // the remainder keeps c's pending queue slot
			}
			// c now holds the remainder (or the skipped largest touched
			// group). If that part is NOT the largest overall, it must
			// be enqueued too.
			remainderIsLargest := (skipID == -1 && largestID == -1) || (skipID != -1 && skipID == largestID)
			if !remainderIsLargest {
				enqueue(c)
			}
		}

		for _, x := range touched {
			inTouched[x] = false
			nodeTags[x] = nodeTags[x][:0]
		}
		for _, c := range classIDs {
			byClass[c] = byClass[c][:0]
		}
		if hook != nil && len(seg.start) > classesBefore {
			hook(head+1, len(seg.start), len(seg.start)-classesBefore)
		}
	}

	// Convert segments into a Partition with deterministic ids.
	p := &Partition{label: make([]int, n)}
	remap := make([]int, len(seg.start))
	for c := range remap {
		remap[c] = -1
	}
	for i := 0; i < n; i++ {
		c := seg.classOf[i]
		id := remap[c]
		if id < 0 {
			id = len(p.members)
			remap[c] = id
			p.members = append(p.members, nil)
		}
		p.label[i] = id
		p.members[id] = append(p.members[id], i)
	}
	return p, nil
}
