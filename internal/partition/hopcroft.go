package partition

import (
	"fmt"
	"sort"
)

// TaggedEdge is a directed, integer-tagged edge: the color of From (the
// owner) depends on the color of To through an edge with this Tag.
type TaggedEdge struct {
	To  int
	Tag int
}

// CountStructure describes a structure refinable by counting signatures:
// a node's environment is the multiset of (tag, target-class) pairs over
// its out-edges. For such structures the Hopcroft smaller-half strategy
// is sound — the count of edges into a split-off part determines the
// count into the remainder — which is not true of set-based signatures;
// set-rule refinement must use FixpointWorklist instead.
//
// The paper's Q-environment rules are counting signatures: a processor
// has exactly one edge per name to its n-neighbor (condition (2)) and a
// variable's environment counts n-neighbors per processor label
// (condition (3)).
type CountStructure interface {
	// Len returns the number of nodes.
	Len() int
	// InitKey returns the initial-coloring key of node i.
	InitKey(i int) string
	// OutEdges returns node i's dependency edges. Called once per node.
	OutEdges(i int) []TaggedEdge
}

// segments is the classic Hopcroft partition structure: a permutation of
// the nodes in which every class occupies a contiguous segment, so moving
// a node into a freshly split-off part is a constant-time swap and the
// untouched remainder of a class is never enumerated.
type segments struct {
	order   []int // permutation of node ids
	pos     []int // pos[node] = index into order
	classOf []int // node -> class id
	start   []int // class id -> first index of its segment
	length  []int // class id -> segment length
	carved  []int // class id -> nodes carved off the segment front (scratch)
}

func newSegments(keys []string) *segments {
	n := len(keys)
	s := &segments{
		order:   make([]int, n),
		pos:     make([]int, n),
		classOf: make([]int, n),
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if keys[idx[a]] != keys[idx[b]] {
			return keys[idx[a]] < keys[idx[b]]
		}
		return idx[a] < idx[b]
	})
	for i, node := range idx {
		s.order[i] = node
		s.pos[node] = i
	}
	for i := 0; i < n; {
		j := i
		for j < n && keys[idx[j]] == keys[idx[i]] {
			j++
		}
		c := len(s.start)
		s.start = append(s.start, i)
		s.length = append(s.length, j-i)
		s.carved = append(s.carved, 0)
		for k := i; k < j; k++ {
			s.classOf[idx[k]] = c
		}
		i = j
	}
	return s
}

// moveToFront swaps node x to the carved prefix of its class segment.
func (s *segments) moveToFront(x int) {
	c := s.classOf[x]
	target := s.start[c] + s.carved[c]
	s.carved[c]++
	cur := s.pos[x]
	other := s.order[target]
	s.order[target], s.order[cur] = x, other
	s.pos[x], s.pos[other] = target, cur
}

// finishCarve turns the carved prefix of class c into a new class and
// shrinks c to its remainder; returns the new class id. The caller must
// ensure 0 < carved < length.
func (s *segments) finishCarve(c int) int {
	nc := len(s.start)
	cnt := s.carved[c]
	s.start = append(s.start, s.start[c])
	s.length = append(s.length, cnt)
	s.carved = append(s.carved, 0)
	for i := s.start[c]; i < s.start[c]+cnt; i++ {
		s.classOf[s.order[i]] = nc
	}
	s.start[c] += cnt
	s.length[c] -= cnt
	s.carved[c] = 0
	return nc
}

// FixpointHopcroft computes the coarsest stable partition of s with the
// smaller-half splitter strategy of Hopcroft [H71], as Theorem 5
// prescribes: split work is proportional to the edges into the splitter
// (untouched class remainders are never visited), and split-off parts
// enter the queue while the largest part stays out, so every node is
// processed O(log n) times per incident edge — O((n + m) log n) overall.
func FixpointHopcroft(cs CountStructure) (*Partition, error) {
	n := cs.Len()
	if n == 0 {
		return nil, ErrEmptyStructure
	}
	keys := make([]string, n)
	for i := 0; i < n; i++ {
		keys[i] = cs.InitKey(i)
	}
	seg := newSegments(keys)

	// Reverse adjacency: rev[y] lists (x, tag) for each edge x --tag--> y.
	rev := make([][]TaggedEdge, n)
	for i := 0; i < n; i++ {
		for _, e := range cs.OutEdges(i) {
			if e.To < 0 || e.To >= n {
				return nil, fmt.Errorf("partition: edge target %d out of range", e.To)
			}
			rev[e.To] = append(rev[e.To], TaggedEdge{To: i, Tag: e.Tag})
		}
	}

	inQueue := make([]bool, len(seg.start), 2*n)
	queue := make([]int, 0, 2*n)
	enqueue := func(c int) {
		for c >= len(inQueue) {
			inQueue = append(inQueue, false)
		}
		if !inQueue[c] {
			inQueue[c] = true
			queue = append(queue, c)
		}
	}
	for c := range seg.start {
		enqueue(c)
	}

	for head := 0; head < len(queue); head++ {
		splitter := queue[head]
		inQueue[splitter] = false

		// Gather the nodes with edges into the splitter and their tag
		// lists. A fresh map per splitter: Go maps never shrink, so a
		// reused map that was once large would make every later clear
		// and iteration pay for its historical size.
		tagsInto := make(map[int][]int, 2*seg.length[splitter])
		for i := seg.start[splitter]; i < seg.start[splitter]+seg.length[splitter]; i++ {
			y := seg.order[i]
			for _, e := range rev[y] {
				tagsInto[e.To] = append(tagsInto[e.To], e.Tag)
			}
		}
		if len(tagsInto) == 0 {
			continue
		}

		// Group touched nodes by class, deterministically.
		touched := make([]int, 0, len(tagsInto))
		for x := range tagsInto {
			touched = append(touched, x)
		}
		sort.Ints(touched)
		byClass := make(map[int][]int)
		classIDs := make([]int, 0, 8)
		for _, x := range touched {
			c := seg.classOf[x]
			if _, ok := byClass[c]; !ok {
				classIDs = append(classIDs, c)
			}
			byClass[c] = append(byClass[c], x)
		}
		sort.Ints(classIDs)

		for _, c := range classIDs {
			if seg.length[c] <= 1 {
				continue
			}
			xs := byClass[c]
			// Group the touched members by tag-multiset signature.
			groups := make(map[string][]int)
			groupKeys := make([]string, 0, 4)
			for _, x := range xs {
				tags := append([]int(nil), tagsInto[x]...)
				sort.Ints(tags)
				key := fmt.Sprint(tags)
				if _, ok := groups[key]; !ok {
					groupKeys = append(groupKeys, key)
				}
				groups[key] = append(groups[key], x)
			}
			untouched := seg.length[c] - len(xs)
			if untouched == 0 && len(groupKeys) == 1 {
				continue // whole class shares one signature: no split
			}
			sort.Strings(groupKeys)

			// Determine the largest part (untouched remainder counts as
			// a part); it keeps the old class id when it is the
			// remainder, and stays out of the queue when c wasn't in it.
			largestKey := ""
			largestSize := untouched
			for _, k := range groupKeys {
				if len(groups[k]) > largestSize {
					largestSize = len(groups[k])
					largestKey = k
				}
			}
			wasQueued := inQueue[c]

			// Carve every touched group except, when the remainder is
			// empty, the largest touched group (something must keep the
			// old id and carving all members is illegal).
			skipKey := ""
			if untouched == 0 {
				skipKey = largestKey
				if skipKey == "" {
					skipKey = groupKeys[0]
				}
			}
			for _, k := range groupKeys {
				if k == skipKey {
					continue
				}
				for _, x := range groups[k] {
					seg.moveToFront(x)
				}
				nc := seg.finishCarve(c)
				for nc >= len(inQueue) {
					inQueue = append(inQueue, false)
				}
				// Queue policy: if c was pending, every part must be a
				// splitter; otherwise all parts except the largest.
				if wasQueued || k != largestKey {
					enqueue(nc)
				}
			}
			if wasQueued {
				continue // the remainder keeps c's pending queue slot
			}
			// c now holds the remainder (or the skipped largest touched
			// group). If that part is NOT the largest overall, it must
			// be enqueued too.
			remainderIsLargest := (skipKey == "" && largestKey == "") || (skipKey != "" && skipKey == largestKey)
			if !remainderIsLargest {
				enqueue(c)
			}
		}
	}

	// Convert segments into a Partition with deterministic ids.
	p := &Partition{label: make([]int, n)}
	remap := make(map[int]int)
	members := make(map[int][]int)
	for i := 0; i < n; i++ {
		members[seg.classOf[i]] = append(members[seg.classOf[i]], i)
	}
	for i := 0; i < n; i++ {
		c := seg.classOf[i]
		id, ok := remap[c]
		if !ok {
			id = len(p.members)
			remap[c] = id
			p.members = append(p.members, members[c])
		}
		p.label[i] = id
	}
	return p, nil
}
