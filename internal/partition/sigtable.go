package partition

import (
	"slices"

	"simsym/internal/canon"
)

// SigTable interns uint64 signature token sequences as small dense
// integer ids: the first distinct sequence gets id 0, the next id 1, and
// so on. Refinement drivers intern every node's signature once and then
// split classes by comparing small ints instead of strings — the
// constant-time signature comparison Hopcroft's bound [H71] and the
// paper's Theorem 5 assume.
//
// Buckets are keyed on canon.HashTokens and collisions are resolved by
// comparing the token sequences themselves, so ids are collision-free by
// construction. Interned sequences are copied into a shared backing
// array; callers may reuse their token buffer between Intern calls.
//
// The zero value is ready to use. A SigTable is not goroutine-safe; the
// parallel drivers give each worker its own table.
type SigTable struct {
	buckets map[uint64][]int32
	toks    []uint64
	spans   [][2]int
}

// Len returns the number of distinct sequences interned since the last
// Reset.
func (t *SigTable) Len() int { return len(t.spans) }

// Intern returns the dense id of sig, assigning the next free id on
// first sight. sig is copied; the caller keeps ownership of the buffer.
func (t *SigTable) Intern(sig []uint64) int {
	if t.buckets == nil {
		t.buckets = make(map[uint64][]int32)
	}
	h := canon.HashTokens(sig)
	for _, id := range t.buckets[h] {
		sp := t.spans[id]
		if slices.Equal(t.toks[sp[0]:sp[1]], sig) {
			return int(id)
		}
	}
	id := len(t.spans)
	start := len(t.toks)
	t.toks = append(t.toks, sig...)
	t.spans = append(t.spans, [2]int{start, len(t.toks)})
	t.buckets[h] = append(t.buckets[h], int32(id))
	return id
}

// Tokens returns the interned token sequence for id. The returned slice
// aliases the table's backing storage and is valid until the next Reset.
func (t *SigTable) Tokens(id int) []uint64 {
	sp := t.spans[id]
	return t.toks[sp[0]:sp[1]]
}

// Reset forgets every interned sequence but keeps the allocated storage,
// so per-class reuse stays allocation-free once the table has warmed up.
// Ids from different Reset windows are not comparable.
func (t *SigTable) Reset() {
	clear(t.buckets)
	t.toks = t.toks[:0]
	t.spans = t.spans[:0]
}

// SortTokens sorts a token slice ascending in place. Helper for
// TokenStructure implementors that encode label multisets.
func SortTokens(toks []uint64) { slices.Sort(toks) }

// SortTokenPairs sorts consecutive (a, b) token pairs of toks
// lexicographically in place, without allocating. len(toks) must be
// even. Helper for TokenStructure implementors that encode multisets of
// tagged labels, e.g. the paper's (name, label) environment pairs.
func SortTokenPairs(toks []uint64) {
	m := len(toks) / 2
	less := func(i, j int) bool {
		if toks[2*i] != toks[2*j] {
			return toks[2*i] < toks[2*j]
		}
		return toks[2*i+1] < toks[2*j+1]
	}
	swap := func(i, j int) {
		toks[2*i], toks[2*j] = toks[2*j], toks[2*i]
		toks[2*i+1], toks[2*j+1] = toks[2*j+1], toks[2*i+1]
	}
	siftDown := func(root, end int) {
		for {
			child := 2*root + 1
			if child >= end {
				return
			}
			if child+1 < end && less(child, child+1) {
				child++
			}
			if !less(root, child) {
				return
			}
			swap(root, child)
			root = child
		}
	}
	for root := m/2 - 1; root >= 0; root-- {
		siftDown(root, m)
	}
	for end := m - 1; end > 0; end-- {
		swap(0, end)
		siftDown(0, end)
	}
}
