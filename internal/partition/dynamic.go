package partition

import (
	"fmt"
	"sort"
)

// DynStructure is a Structure whose node set mutates in place: slots
// may be born, die, change their initial key, or change their
// environment between calls to Dyn.Update. Len reports the slot-space
// size (dead slots included); Alive reports whether slot i currently
// exists. Signatures and Dependents must never reference dead slots.
// Structures that additionally implement TokenStructure get the
// interned token path; others fall back to string interning.
type DynStructure interface {
	Structure
	// Alive reports whether slot i is currently part of the structure.
	Alive(i int) bool
}

// UpdateStats describes the work one Dyn.Update performed. Counters are
// per event; Dyn.TotalStats accumulates them.
type UpdateStats struct {
	// Touched is the number of slots the caller reported.
	Touched int
	// TouchedClasses counts distinct classes examined during settling.
	TouchedClasses int
	// Splits counts new classes carved out of invalidated ones.
	Splits int
	// Merges counts classes absorbed by the quotient merge pass.
	Merges int
	// Relabeled counts slots whose class assignment changed.
	Relabeled int
	// SigComputes counts signature encodings performed.
	SigComputes int
	// Rounds counts settle rounds (split propagation waves).
	Rounds int
	// MergePass reports whether the quotient merge pass ran.
	MergePass bool
	// Rebuild reports whether the engine fell back to a full rebuild
	// (symmetry-destroying events where the quotient would be larger
	// than recomputing from scratch).
	Rebuild bool
	// Classes is the number of live classes after the event.
	Classes int
}

func (u UpdateStats) add(v UpdateStats) UpdateStats {
	u.Touched += v.Touched
	u.TouchedClasses += v.TouchedClasses
	u.Splits += v.Splits
	u.Merges += v.Merges
	u.Relabeled += v.Relabeled
	u.SigComputes += v.SigComputes
	u.Rounds += v.Rounds
	if v.MergePass {
		u.MergePass = true
	}
	if v.Rebuild {
		u.Rebuild = true
	}
	u.Classes = v.Classes
	return u
}

// dynEncoder interns signatures into a persistent id space: unlike the
// per-class sigEncoder windows of the static drivers, ids stay
// comparable across events, which is what lets Dyn store one stable
// signature id per class and certify "nothing changed" without
// recomputing unaffected classes.
type dynEncoder struct {
	s    Structure
	ts   TokenStructure // nil when s is string-only
	tab  SigTable
	strs map[string]int
	buf  []uint64
}

func (e *dynEncoder) init(s Structure) {
	e.s = s
	if ts, ok := s.(TokenStructure); ok {
		e.ts = ts
	} else {
		e.strs = make(map[string]int)
	}
}

func (e *dynEncoder) reset() {
	if e.ts != nil {
		e.tab.Reset()
		return
	}
	e.strs = make(map[string]int)
}

func (e *dynEncoder) sigID(i int, label func(int) int) int {
	if e.ts != nil {
		e.buf = e.ts.AppendSignature(e.buf[:0], i, label)
		return e.tab.Intern(e.buf)
	}
	s := e.s.Signature(i, label)
	id, ok := e.strs[s]
	if !ok {
		id = len(e.strs)
		e.strs[s] = id
	}
	return id
}

// Dyn maintains the coarsest stable partition of a mutating structure
// incrementally. Between events it keeps, per class, the interned
// signature id the class stabilized at; an event only pays for the
// slots it touches plus the dependency cone their label changes reach.
//
// Algorithm (see DESIGN.md §10 for the invariants):
//
//  1. Reconcile: touched slots are detached when dead, re-seated into
//     an existing class of their initial key when born or rekeyed (a
//     fresh singleton when none exists), and marked dirty along with
//     their dependents.
//  2. Settle: a worklist recomputes signatures for dirty slots only and
//     splits a class exactly when a member's interned signature id
//     diverges from the class's stored stable id. Split-off labels
//     propagate dirtiness through Dependents, as in FixpointWorklist.
//  3. Merge: if the event provably left the class-quotient structure
//     unchanged (no class born or freed, no stable signature or init
//     key drift), the pre-event partition was coarsest, so the
//     post-event one still is and the pass is skipped. Otherwise the
//     coarsest stable partition of the quotient (classes as nodes,
//     signatures evaluated through the composed labeling) is computed
//     and pulled back: quotient classes that coalesce are merged,
//     which is exactly — and only — where coarseness is restorable.
//
// The full-recompute drivers (FixpointNaive/FixpointWorklist) survive
// untouched as the cross-checked oracle; the differential fuzzer
// asserts relation-for-relation equality after every event.
//
// Dyn is not goroutine-safe.
type Dyn struct {
	s    DynStructure
	enc  dynEncoder // persistent id space for stable class signatures
	qenc dynEncoder // scratch space for quotient passes, reset per round

	label   []int   // slot -> class id, -1 when dead
	pos     []int   // slot -> index within members[label[slot]]
	members [][]int // class -> member slots (internal; see ClassMembers)
	freeCls []int   // recycled class ids
	csig    []int   // class -> stable signature id, -1 unknown
	cinit   []int   // class -> interned init-key id

	initTab map[string]int // init key -> dense id
	initStr []string       // dense id -> init key
	byInit  map[int][]int  // init-key id -> candidate classes (lazily compacted)

	liveClasses int
	aliveSlots  int

	dirty []bool
	queue []int

	// reusable scratch
	batch   []int
	idsBuf  []int
	moveBuf []int

	last  UpdateStats
	total UpdateStats
}

// NewDyn computes the initial coarsest stable partition of s and
// returns the engine ready for Update calls. Returns ErrEmptyStructure
// when s has no alive slots.
func NewDyn(s DynStructure) (*Dyn, error) {
	d := &Dyn{
		s:       s,
		initTab: make(map[string]int),
		byInit:  make(map[int][]int),
	}
	d.enc.init(s)
	d.qenc.init(s)
	d.grow(s.Len())
	var st UpdateStats
	d.rebuild(&st)
	if d.aliveSlots == 0 {
		return nil, ErrEmptyStructure
	}
	st.Classes = d.liveClasses
	d.last = st
	d.total = d.total.add(st)
	return d, nil
}

// Len returns the slot-space size (dead slots included).
func (d *Dyn) Len() int { return len(d.label) }

// AliveCount returns the number of alive slots.
func (d *Dyn) AliveCount() int { return d.aliveSlots }

// NumClasses returns the number of live classes.
func (d *Dyn) NumClasses() int { return d.liveClasses }

// Label returns the class of slot i, or -1 when i is dead.
func (d *Dyn) Label(i int) int { return d.label[i] }

// Labels returns a copy of the slot label vector (-1 marks dead slots).
func (d *Dyn) Labels() []int { return append([]int(nil), d.label...) }

// Canonical returns the label vector renumbered by first occurrence
// over ascending slots, with dead slots left at -1. Two Dyn states over
// the same slot space induce the same equivalence relation iff their
// Canonical vectors are equal.
func (d *Dyn) Canonical() []int {
	next := 0
	remap := make(map[int]int, d.liveClasses)
	out := make([]int, len(d.label))
	for i, l := range d.label {
		if l < 0 {
			out[i] = -1
			continue
		}
		r, ok := remap[l]
		if !ok {
			r = next
			remap[l] = r
			next++
		}
		out[i] = r
	}
	return out
}

// ClassMembers returns the member slots of class c, sorted ascending.
// The result is a fresh copy: the engine's internal member lists are
// mutated in place by later Updates (swap-removal, splits, merges), so
// handing out the backing storage would let one event corrupt a
// caller's earlier view. See TestDynClassMembersCopied.
func (d *Dyn) ClassMembers(c int) []int {
	out := append([]int(nil), d.members[c]...)
	sort.Ints(out)
	return out
}

// LastStats returns the statistics of the most recent Update (or the
// initial build).
func (d *Dyn) LastStats() UpdateStats { return d.last }

// TotalStats returns statistics accumulated since NewDyn.
func (d *Dyn) TotalStats() UpdateStats { return d.total }

// Update repairs the partition after a mutation of the underlying
// structure. touched must list every slot whose alive-status, initial
// key, or environment changed — including the former neighbors of
// removed slots (a dead slot no longer reports Dependents, so the
// caller must name the survivors it used to feed). Duplicate entries
// are harmless. The repaired partition is exactly the coarsest stable
// partition FixpointWorklist would compute from scratch on the mutated
// structure.
func (d *Dyn) Update(touched []int) UpdateStats {
	st := UpdateStats{Touched: len(touched)}
	d.grow(d.s.Len())
	quotChanged := false
	for _, x := range touched {
		d.reconcile(x, &st, &quotChanged)
	}
	d.settle(&st, &quotChanged)
	if quotChanged && d.liveClasses > 1 {
		k := d.liveClasses
		if k > 256 && k*k > 64*d.aliveSlots {
			// The quotient is within a constant factor of the full
			// structure: symmetry is already shattered, and refining
			// the quotient would cost more than refining the
			// structure. Rebuild from scratch (and reclaim the
			// signature-id space while at it).
			d.rebuild(&st)
		} else {
			d.mergePass(&st)
		}
	}
	st.Classes = d.liveClasses
	d.last = st
	d.total = d.total.add(st)
	return st
}

func (d *Dyn) grow(n int) {
	for len(d.label) < n {
		d.label = append(d.label, -1)
		d.pos = append(d.pos, 0)
		d.dirty = append(d.dirty, false)
	}
}

func (d *Dyn) lbl(v int) int { return d.label[v] }

func (d *Dyn) initID(key string) int {
	id, ok := d.initTab[key]
	if !ok {
		id = len(d.initStr)
		d.initTab[key] = id
		d.initStr = append(d.initStr, key)
	}
	return id
}

// allocClass returns a (possibly recycled) class id with the given init
// key and unknown stable signature.
func (d *Dyn) allocClass(initID int) int {
	var c int
	if n := len(d.freeCls); n > 0 {
		c = d.freeCls[n-1]
		d.freeCls = d.freeCls[:n-1]
		d.members[c] = d.members[c][:0]
		d.csig[c] = -1
		d.cinit[c] = initID
	} else {
		c = len(d.members)
		d.members = append(d.members, nil)
		d.csig = append(d.csig, -1)
		d.cinit = append(d.cinit, initID)
	}
	d.liveClasses++
	d.byInit[initID] = append(d.byInit[initID], c)
	return c
}

// seat places slot x into class c.
func (d *Dyn) seat(x, c int) {
	d.label[x] = c
	d.pos[x] = len(d.members[c])
	d.members[c] = append(d.members[c], x)
}

// detach removes slot x from its class, freeing the class when emptied.
func (d *Dyn) detach(x int, quotChanged *bool) {
	c := d.label[x]
	m := d.members[c]
	last := m[len(m)-1]
	m[d.pos[x]] = last
	d.pos[last] = d.pos[x]
	d.members[c] = m[:len(m)-1]
	d.label[x] = -1
	if len(d.members[c]) == 0 {
		d.freeCls = append(d.freeCls, c)
		d.liveClasses--
		*quotChanged = true
	}
}

// candidateClass returns a live class with the given init key, or -1.
// The byInit lists are append-only at class creation and compacted
// lazily here (freed ids may have been recycled under another key).
func (d *Dyn) candidateClass(initID int) int {
	list := d.byInit[initID]
	out := list[:0]
	found := -1
	for _, c := range list {
		if d.cinit[c] != initID || len(d.members[c]) == 0 {
			continue
		}
		out = append(out, c)
		if found < 0 {
			found = c
		}
	}
	d.byInit[initID] = out
	return found
}

func (d *Dyn) markDirty(x int) {
	if !d.dirty[x] {
		d.dirty[x] = true
		d.queue = append(d.queue, x)
	}
}

// reconcile brings slot x's membership in line with the structure:
// dead slots are detached; born or rekeyed slots are seated with their
// init-key peers (the settle pass splits them back out if the guess is
// wrong, and the merge pass re-coarsens if it was needlessly shy).
func (d *Dyn) reconcile(x int, st *UpdateStats, quotChanged *bool) {
	if !d.s.Alive(x) {
		if d.label[x] >= 0 {
			d.detach(x, quotChanged)
			d.aliveSlots--
			st.Relabeled++
		}
		return
	}
	ik := d.initID(d.s.InitKey(x))
	if d.label[x] >= 0 && d.cinit[d.label[x]] != ik {
		d.detach(x, quotChanged)
		d.label[x] = -2 // sentinel: alive, awaiting seating
	}
	if d.label[x] < 0 {
		if d.label[x] == -1 {
			d.aliveSlots++
		}
		c := d.candidateClass(ik)
		if c < 0 {
			c = d.allocClass(ik)
			*quotChanged = true
		}
		d.label[x] = -1
		d.seat(x, c)
		st.Relabeled++
	}
	d.markDirty(x)
	for _, dep := range d.s.Dependents(x) {
		d.markDirty(dep)
	}
}

// settle runs the incremental worklist: recompute signatures for dirty
// slots only and split a class exactly when a member's id diverges from
// the class's stored stable id. The invariant it maintains — every
// non-dirty alive slot's signature equals its class's stored id — is
// what makes dirty-only recomputation sound.
func (d *Dyn) settle(st *UpdateStats, quotChanged *bool) {
	for len(d.queue) > 0 {
		st.Rounds++
		batch := d.batch[:0]
		for _, x := range d.queue {
			if d.dirty[x] {
				d.dirty[x] = false
				if d.label[x] >= 0 {
					batch = append(batch, x)
				}
			}
		}
		d.queue = d.queue[:0]
		// Group dirty slots by their class at gather time; splits only
		// relabel slots within the group being processed, so later
		// groups stay intact.
		sort.Slice(batch, func(a, b int) bool {
			if d.label[batch[a]] != d.label[batch[b]] {
				return d.label[batch[a]] < d.label[batch[b]]
			}
			return batch[a] < batch[b]
		})
		d.batch = batch
		var relabeled []int
		for i := 0; i < len(batch); {
			c := d.label[batch[i]]
			j := i
			for j < len(batch) && d.label[batch[j]] == c {
				j++
			}
			relabeled = d.settleClass(c, batch[i:j], st, quotChanged, relabeled)
			i = j
		}
		for _, x := range relabeled {
			d.markDirty(x)
			for _, dep := range d.s.Dependents(x) {
				d.markDirty(dep)
			}
		}
	}
}

// settleClass processes one class with the given dirty members,
// appending relabeled slots to out.
func (d *Dyn) settleClass(c int, dirtyMembers []int, st *UpdateStats, quotChanged *bool, out []int) []int {
	st.TouchedClasses++
	stable := d.csig[c]
	work := dirtyMembers
	if stable < 0 {
		// Fresh class: no stored signature to compare against, so the
		// whole membership must be encoded.
		work = d.members[c]
	}
	ids := d.idsBuf[:0]
	for _, x := range work {
		ids = append(ids, d.enc.sigID(x, d.lbl))
	}
	d.idsBuf = ids
	st.SigComputes += len(work)

	if stable >= 0 {
		same := true
		for _, id := range ids {
			if id != stable {
				same = false
				break
			}
		}
		if same {
			return out
		}
		*quotChanged = true
		if len(dirtyMembers) == len(d.members[c]) {
			// Every member was recomputed: fall through to the
			// full-regroup path below (the stored id may have no
			// takers left).
			stable = -1
		}
	}

	if stable >= 0 {
		// Non-dirty members hold the stored id by the settle invariant;
		// split out the dirty members that diverged, grouped by id.
		return d.splitOut(c, work, ids, stable, st, out)
	}

	// Full regroup: keep the group containing the smallest member under
	// the old class id (deterministic, mirrors splitClassIDs) and carve
	// the rest out in ascending id order.
	minAt := 0
	for k, x := range work {
		if x < work[minAt] {
			minAt = k
		}
	}
	keep := ids[minAt]
	if d.csig[c] != keep {
		d.csig[c] = keep
		*quotChanged = true
	}
	return d.splitOut(c, work, ids, keep, st, out)
}

// splitOut moves every slot of work whose id differs from keep into a
// new class per distinct id (ascending id order), leaving keep-id slots
// in place. Returns out extended with the relabeled slots.
func (d *Dyn) splitOut(c int, work []int, ids []int, keep int, st *UpdateStats, out []int) []int {
	distinct := d.moveBuf[:0]
	for _, id := range ids {
		if id == keep {
			continue
		}
		seen := false
		for _, v := range distinct {
			if v == id {
				seen = true
				break
			}
		}
		if !seen {
			distinct = append(distinct, id)
		}
	}
	d.moveBuf = distinct
	if len(distinct) == 0 {
		return out
	}
	sort.Ints(distinct)
	// Snapshot the movers before detaching: detach swap-mutates the
	// member list work may alias (the stable<0 path passes members[c]).
	type mover struct{ slot, id int }
	movers := make([]mover, 0, len(work))
	for k, x := range work {
		if ids[k] != keep {
			movers = append(movers, mover{x, ids[k]})
		}
	}
	initID := d.cinit[c]
	var dummy bool
	for _, id := range distinct {
		nc := d.allocClass(initID)
		d.csig[nc] = id
		st.Splits++
		for _, m := range movers {
			if m.id != id {
				continue
			}
			d.detach(m.slot, &dummy)
			d.seat(m.slot, nc)
			st.Relabeled++
			out = append(out, m.slot)
		}
	}
	return out
}

// mergePass computes the coarsest stable partition of the quotient
// structure (one node per live class, signatures of a representative
// member evaluated through the composed labeling) and merges the
// classes that coalesce. Any stable partition refining the initial one
// also refines the coarsest, so the settled partition refines the
// target and the pullback of the quotient's coarsest partition is
// exactly the global coarsest — merging happens precisely where
// coarseness is restorable.
func (d *Dyn) mergePass(st *UpdateStats) {
	st.MergePass = true
	qids := make([]int, 0, d.liveClasses)
	for c := range d.members {
		if len(d.members[c]) > 0 {
			qids = append(qids, c)
		}
	}
	k := len(qids)
	qidx := make(map[int]int, k)
	for qi, c := range qids {
		qidx[c] = qi
	}
	// Initial quotient labels: group classes by init key, in sorted key
	// order for determinism.
	ordered := append([]int(nil), qids...)
	sort.Slice(ordered, func(a, b int) bool {
		ka, kb := d.initStr[d.cinit[ordered[a]]], d.initStr[d.cinit[ordered[b]]]
		if ka != kb {
			return ka < kb
		}
		return ordered[a] < ordered[b]
	})
	qlabel := make([]int, k)
	next := 0
	for i, c := range ordered {
		if i > 0 && d.cinit[c] != d.cinit[ordered[i-1]] {
			next++
		}
		qlabel[qidx[c]] = next
	}
	next++

	compLbl := func(v int) int { return qlabel[qidx[d.label[v]]] }
	sig := make([]int, k)
	type qnode struct{ label, sig, qi int }
	nodes := make([]qnode, k)
	for round := 0; ; round++ {
		st.Rounds++
		d.qenc.reset()
		for qi, c := range qids {
			sig[qi] = d.qenc.sigID(d.members[c][0], compLbl)
		}
		st.SigComputes += k
		for qi := range nodes {
			nodes[qi] = qnode{qlabel[qi], sig[qi], qi}
		}
		sort.Slice(nodes, func(a, b int) bool {
			if nodes[a].label != nodes[b].label {
				return nodes[a].label < nodes[b].label
			}
			if nodes[a].sig != nodes[b].sig {
				return nodes[a].sig < nodes[b].sig
			}
			return nodes[a].qi < nodes[b].qi
		})
		changed := false
		for i := 0; i < len(nodes); {
			j := i
			for j < len(nodes) && nodes[j].label == nodes[i].label {
				j++
			}
			// Subgroups by signature within one label group: the
			// subgroup holding the smallest qi keeps the label.
			minQi, minSig := nodes[i].qi, nodes[i].sig
			for t := i; t < j; t++ {
				if nodes[t].qi < minQi {
					minQi, minSig = nodes[t].qi, nodes[t].sig
				}
			}
			for t := i; t < j; {
				u := t
				for u < j && nodes[u].sig == nodes[t].sig {
					u++
				}
				if nodes[t].sig != minSig {
					for w := t; w < u; w++ {
						qlabel[nodes[w].qi] = next
					}
					next++
					changed = true
				}
				t = u
			}
			i = j
		}
		if !changed {
			break
		}
	}

	// Pull back: quotient classes holding >1 structure classes merge.
	groups := make(map[int][]int)
	for qi, c := range qids {
		groups[qlabel[qi]] = append(groups[qlabel[qi]], c)
	}
	keys := make([]int, 0, len(groups))
	for l, g := range groups {
		if len(g) > 1 {
			keys = append(keys, l)
		}
	}
	sort.Ints(keys)
	var moved []int
	for _, l := range keys {
		g := groups[l]
		// Survivor: the largest class (fewest relabels), smallest id on
		// ties — deterministic.
		surv := g[0]
		for _, c := range g[1:] {
			if len(d.members[c]) > len(d.members[surv]) ||
				(len(d.members[c]) == len(d.members[surv]) && c < surv) {
				surv = c
			}
		}
		for _, c := range g {
			if c == surv {
				continue
			}
			for _, x := range d.members[c] {
				d.label[x] = surv
				d.pos[x] = len(d.members[surv])
				d.members[surv] = append(d.members[surv], x)
				st.Relabeled++
				moved = append(moved, x)
			}
			d.members[c] = d.members[c][:0]
			d.freeCls = append(d.freeCls, c)
			d.liveClasses--
			st.Merges++
		}
	}
	if len(moved) == 0 {
		return
	}
	// Labels moved, so stored stable ids are stale wherever a dependent
	// of a moved slot lives. Refresh every live class from a
	// representative (members are uniform by the theory above), then
	// re-settle defensively: if an implementation bug ever left the
	// pullback unstable, the worklist restores stability and the
	// differential fuzzer flags the coarseness gap.
	for c := range d.members {
		if len(d.members[c]) > 0 {
			d.csig[c] = d.enc.sigID(d.members[c][0], d.lbl)
		}
	}
	st.SigComputes += d.liveClasses
	for _, x := range moved {
		d.markDirty(x)
		for _, dep := range d.s.Dependents(x) {
			d.markDirty(dep)
		}
	}
	var dummy bool
	d.settle(st, &dummy)
}

// rebuild recomputes the partition from scratch: initial classes by
// init key (sorted for determinism), everything dirty, one settle to
// the fixpoint. Also reclaims the persistent signature-id space.
func (d *Dyn) rebuild(st *UpdateStats) {
	st.Rebuild = true
	d.enc.reset()
	d.members = d.members[:0]
	d.freeCls = d.freeCls[:0]
	d.csig = d.csig[:0]
	d.cinit = d.cinit[:0]
	d.byInit = make(map[int][]int)
	d.liveClasses = 0
	d.aliveSlots = 0
	for i := range d.dirty {
		d.dirty[i] = false
	}
	d.queue = d.queue[:0]

	n := d.s.Len()
	byKey := make(map[string][]int)
	for i := 0; i < n; i++ {
		if !d.s.Alive(i) {
			d.label[i] = -1
			continue
		}
		d.aliveSlots++
		k := d.s.InitKey(i)
		byKey[k] = append(byKey[k], i)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := d.allocClass(d.initID(k))
		for _, i := range byKey[k] {
			d.seat(i, c)
			d.markDirty(i)
		}
	}
	var dummy bool
	d.settle(st, &dummy)
}

// Check audits the engine's invariants: membership/position coherence,
// init-key uniformity, and — the stability certificate — that every
// alive slot's signature matches its class's stored stable id. Meant
// for tests; cost is one full signature sweep.
func (d *Dyn) Check() error {
	alive := 0
	for i, l := range d.label {
		if l < 0 {
			if d.s.Alive(i) {
				return fmt.Errorf("partition: alive slot %d has no class", i)
			}
			continue
		}
		if !d.s.Alive(i) {
			return fmt.Errorf("partition: dead slot %d has class %d", i, l)
		}
		alive++
		if d.pos[i] >= len(d.members[l]) || d.members[l][d.pos[i]] != i {
			return fmt.Errorf("partition: slot %d position bookkeeping broken", i)
		}
		if got := d.initID(d.s.InitKey(i)); got != d.cinit[l] {
			return fmt.Errorf("partition: slot %d init key drifted from class %d", i, l)
		}
	}
	if alive != d.aliveSlots {
		return fmt.Errorf("partition: alive count %d != tracked %d", alive, d.aliveSlots)
	}
	live := 0
	for c := range d.members {
		if len(d.members[c]) == 0 {
			continue
		}
		live++
		for _, x := range d.members[c] {
			if d.label[x] != c {
				return fmt.Errorf("partition: member %d of class %d labeled %d", x, c, d.label[x])
			}
			if got := d.enc.sigID(x, d.lbl); got != d.csig[c] {
				return fmt.Errorf("partition: slot %d signature %d != class %d stable %d",
					x, got, c, d.csig[c])
			}
		}
	}
	if live != d.liveClasses {
		return fmt.Errorf("partition: live class count %d != tracked %d", live, d.liveClasses)
	}
	return nil
}
