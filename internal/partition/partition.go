// Package partition implements partition refinement, the engine behind the
// paper's Algorithm 1 ("Compute Similarity Labeling Θ").
//
// The paper computes similarity labelings by refining a trivial
// subsimilarity labeling until nodes with the same label have the same
// environment, citing Hopcroft's set-partition algorithm [H71] for an
// O(n log n) bound. This package provides the partition data structure and
// two fixpoint drivers over a pluggable Structure:
//
//   - FixpointNaive recomputes every signature every round. It is the
//     direct transcription of Algorithm 1 and serves as the oracle.
//   - FixpointWorklist recomputes signatures only for nodes whose
//     dependencies changed, propagating splits along the dependency
//     graph. This is the production driver.
//
// Both produce identical partitions; tests cross-check them and benchmarks
// compare them (the DESIGN.md ablation).
package partition

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Structure describes a refinable structure: a set of nodes, an initial
// coloring, a per-node signature that may read current labels, and the
// dependency graph saying whose signatures are affected when a node's
// label changes.
type Structure interface {
	// Len returns the number of nodes, indexed 0..Len()-1.
	Len() int
	// InitKey returns the initial-coloring key of node i (nodes with
	// equal keys start in the same class).
	InitKey(i int) string
	// Signature returns a deterministic encoding of node i's environment
	// under the current labeling. Nodes in a stable partition must have
	// equal signatures iff they should share a class.
	Signature(i int, label func(int) int) string
	// Dependents returns the nodes whose Signature may change when node
	// i's label changes. It may contain duplicates and i itself.
	Dependents(i int) []int
}

// TokenStructure extends Structure with an allocation-free signature
// encoder. AppendSignature appends node i's environment under the
// current labeling to buf as uint64 tokens and returns the extended
// slice; two nodes of the same class must produce equal token sequences
// iff their Signature strings are equal. FixpointWorklist interns the
// token sequences through a SigTable and splits classes by comparing
// small ints, skipping the string formatting of the oracle path
// entirely; structures that do not implement TokenStructure fall back to
// interning their Signature strings.
//
// Implementations must not retain buf and must be safe for concurrent
// calls on distinct buffers (the parallel drivers fan the signature pass
// out over a worker pool).
type TokenStructure interface {
	Structure
	AppendSignature(buf []uint64, i int, label func(int) int) []uint64
}

// ErrEmptyStructure is returned when refining a structure with no nodes.
var ErrEmptyStructure = errors.New("partition: empty structure")

// RoundHook observes refinement progress: round is the 1-based round
// (worklist/naive drivers) or splitter iteration (Hopcroft), classes the
// partition size after the round, and splits the number of new classes
// carved during it. Hooks run synchronously on the refining goroutine —
// they are the observability tap the core package threads its event
// recorder through — and a nil hook costs one branch per round.
type RoundHook func(round, classes, splits int)

// Partition assigns each node a class label in 0..NumClasses()-1.
// Class identifiers are deterministic for a given refinement run but
// carry no meaning across runs; use Canonical for stable comparison.
type Partition struct {
	label   []int
	members [][]int
}

// newPartition builds the initial partition from InitKey, with class ids
// assigned in sorted key order for determinism.
func newPartition(s Structure) (*Partition, error) {
	n := s.Len()
	if n == 0 {
		return nil, ErrEmptyStructure
	}
	byKey := make(map[string][]int)
	for i := 0; i < n; i++ {
		k := s.InitKey(i)
		byKey[k] = append(byKey[k], i)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	p := &Partition{label: make([]int, n)}
	for _, k := range keys {
		id := len(p.members)
		for _, i := range byKey[k] {
			p.label[i] = id
		}
		p.members = append(p.members, byKey[k])
	}
	return p, nil
}

// Label returns the class of node i.
func (p *Partition) Label(i int) int { return p.label[i] }

// Labels returns a copy of the full label vector.
func (p *Partition) Labels() []int { return append([]int(nil), p.label...) }

// NumClasses returns the number of classes.
func (p *Partition) NumClasses() int { return len(p.members) }

// Members returns a copy of the member list of class c, sorted ascending.
func (p *Partition) Members(c int) []int {
	out := append([]int(nil), p.members[c]...)
	sort.Ints(out)
	return out
}

// Classes returns all classes as sorted member lists, ordered by class id.
func (p *Partition) Classes() [][]int {
	out := make([][]int, len(p.members))
	for c := range p.members {
		out[c] = p.Members(c)
	}
	return out
}

// ClassSizes returns the size of each class.
func (p *Partition) ClassSizes() []int {
	out := make([]int, len(p.members))
	for c, m := range p.members {
		out[c] = len(m)
	}
	return out
}

// SingletonClasses returns the nodes that are alone in their class, in
// ascending order. For similarity labelings these are the uniquely-labeled
// nodes — the candidates the paper's SELECT can elect.
func (p *Partition) SingletonClasses() []int {
	var out []int
	for _, m := range p.members {
		if len(m) == 1 {
			out = append(out, m[0])
		}
	}
	sort.Ints(out)
	return out
}

// Canonical returns the label vector renumbered so that class ids appear
// in order of first occurrence. Two partitions of the same node set induce
// the same equivalence relation iff their Canonical vectors are equal.
func (p *Partition) Canonical() []int {
	next := 0
	remap := make(map[int]int, len(p.members))
	out := make([]int, len(p.label))
	for i, l := range p.label {
		r, ok := remap[l]
		if !ok {
			r = next
			remap[l] = r
			next++
		}
		out[i] = r
	}
	return out
}

// SameRelation reports whether p and q induce the same equivalence
// relation on the same node set.
func SameRelation(p, q *Partition) bool {
	if len(p.label) != len(q.label) {
		return false
	}
	a, b := p.Canonical(), q.Canonical()
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Refines reports whether p refines q: every class of p is contained in a
// class of q (p is "finer"). The paper's subsimilarity labelings are
// exactly the labelings refined by the similarity labeling, and
// supersimilarity labelings are exactly those that refine it.
func Refines(p, q *Partition) bool {
	if len(p.label) != len(q.label) {
		return false
	}
	// p refines q iff p-label determines q-label.
	image := make(map[int]int)
	for i := range p.label {
		if img, ok := image[p.label[i]]; ok {
			if img != q.label[i] {
				return false
			}
		} else {
			image[p.label[i]] = q.label[i]
		}
	}
	return true
}

// splitClass regroups the members of class c by their signature, keeping
// the first (lowest-node) group under the old id and allocating new ids
// for the rest in sorted signature order. It returns the nodes whose
// label changed.
func (p *Partition) splitClass(c int, sig func(i int) string) []int {
	if len(p.members[c]) <= 1 {
		return nil
	}
	bySig := make(map[string][]int)
	for _, i := range p.members[c] {
		s := sig(i)
		bySig[s] = append(bySig[s], i)
	}
	if len(bySig) == 1 {
		return nil
	}
	sigs := make([]string, 0, len(bySig))
	for s := range bySig {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	// Keep the group containing the smallest member under the old id so
	// splitting is deterministic regardless of signature strings.
	minNode := p.members[c][0]
	for _, i := range p.members[c] {
		if i < minNode {
			minNode = i
		}
	}
	keep := ""
	for s, m := range bySig {
		for _, i := range m {
			if i == minNode {
				keep = s
			}
		}
	}
	var changed []int
	p.members[c] = bySig[keep]
	for _, s := range sigs {
		if s == keep {
			continue
		}
		id := len(p.members)
		p.members = append(p.members, bySig[s])
		for _, i := range bySig[s] {
			p.label[i] = id
			changed = append(changed, i)
		}
	}
	return changed
}

// splitClassIDs regroups the members of class c by interned signature
// id, keeping the group containing the smallest member under the old id
// and allocating new ids for the rest in ascending signature-id order.
// ids is aligned with p.members[c] and must be dense per class (the
// per-class interners hand out 0,1,2,... in first-appearance order). It
// returns the nodes whose label changed.
func (p *Partition) splitClassIDs(c int, ids []int) []int {
	members := p.members[c]
	if len(members) <= 1 {
		return nil
	}
	same := true
	for _, id := range ids[1:] {
		if id != ids[0] {
			same = false
			break
		}
	}
	if same {
		return nil
	}
	ngroups := 0
	for _, id := range ids {
		if id+1 > ngroups {
			ngroups = id + 1
		}
	}
	groups := make([][]int, ngroups)
	for k, i := range members {
		groups[ids[k]] = append(groups[ids[k]], i)
	}
	keep := ids[0]
	minNode := members[0]
	for k, i := range members {
		if i < minNode {
			minNode = i
			keep = ids[k]
		}
	}
	var changed []int
	p.members[c] = groups[keep]
	for id, g := range groups {
		if id == keep || len(g) == 0 {
			continue
		}
		nid := len(p.members)
		p.members = append(p.members, g)
		for _, i := range g {
			p.label[i] = nid
			changed = append(changed, i)
		}
	}
	return changed
}

// sigEncoder turns per-node signatures into small interned ids, using
// the token path when the structure supports it and interning the oracle
// strings otherwise. Ids are dense per reset window in first-appearance
// order; ids from different windows are not comparable.
type sigEncoder struct {
	s    Structure
	ts   TokenStructure // nil when s is string-only
	tab  SigTable
	strs map[string]int
	buf  []uint64
}

func newSigEncoder(s Structure) *sigEncoder {
	e := &sigEncoder{s: s}
	if ts, ok := s.(TokenStructure); ok {
		e.ts = ts
	}
	return e
}

func (e *sigEncoder) reset() {
	if e.ts != nil {
		e.tab.Reset()
		return
	}
	// A fresh small map each window: Go maps never shrink, so one that
	// grew for a large class would tax every later window.
	e.strs = make(map[string]int)
}

func (e *sigEncoder) sigID(i int, label func(int) int) int {
	if e.ts != nil {
		e.buf = e.ts.AppendSignature(e.buf[:0], i, label)
		return e.tab.Intern(e.buf)
	}
	s := e.s.Signature(i, label)
	id, ok := e.strs[s]
	if !ok {
		id = len(e.strs)
		e.strs[s] = id
	}
	return id
}

// FixpointNaive refines the initial partition of s until stable,
// recomputing every node's signature each round. It mirrors the paper's
// Algorithm 1 exactly: "do nodes x and y have the same label but different
// environments → relabel".
func FixpointNaive(s Structure) (*Partition, error) {
	return FixpointNaiveHooked(s, nil)
}

// FixpointNaiveHooked is FixpointNaive reporting each round to hook.
func FixpointNaiveHooked(s Structure, hook RoundHook) (*Partition, error) {
	p, err := newPartition(s)
	if err != nil {
		return nil, err
	}
	lbl := func(i int) int { return p.label[i] }
	for round := 1; ; round++ {
		sigCache := make([]string, s.Len())
		for i := 0; i < s.Len(); i++ {
			sigCache[i] = s.Signature(i, lbl)
		}
		changedAny := false
		// Snapshot class ids: splits append new classes which are
		// singleton-grouped already this round.
		numBefore := len(p.members)
		for c := 0; c < numBefore; c++ {
			if ch := p.splitClass(c, func(i int) string { return sigCache[i] }); len(ch) > 0 {
				changedAny = true
			}
		}
		if hook != nil {
			hook(round, len(p.members), len(p.members)-numBefore)
		}
		if !changedAny {
			return p, nil
		}
	}
}

// FixpointWorklist refines the initial partition of s until stable,
// recomputing signatures only for nodes whose dependencies changed. This
// is the efficient driver in the spirit of [H71]: work propagates only
// from split classes to their dependents. Signatures are interned to
// small ints per class (see TokenStructure and SigTable), so splitting
// never compares or sorts strings.
func FixpointWorklist(s Structure) (*Partition, error) {
	return fixpointWorklist(s, 1, nil)
}

// FixpointWorklistHooked is FixpointWorklist with a per-round progress
// hook and an optional parallel signature pass (workers > 1).
func FixpointWorklistHooked(s Structure, workers int, hook RoundHook) (*Partition, error) {
	if workers < 1 {
		workers = 1
	}
	return fixpointWorklist(s, workers, hook)
}

// FixpointWorklistParallel is FixpointWorklist with the per-round
// signature pass fanned out over a pool of `workers` goroutines, one
// dirty class at a time, each worker owning its own intern table and
// token buffer. Per-class ids are independent of scheduling and the
// split merge applies them sequentially in ascending class order, so the
// result is deterministic and identical to FixpointWorklist. Structure
// methods must be safe for concurrent read-only use.
func FixpointWorklistParallel(s Structure, workers int) (*Partition, error) {
	if workers < 1 {
		workers = 1
	}
	return fixpointWorklist(s, workers, nil)
}

func fixpointWorklist(s Structure, workers int, hook RoundHook) (*Partition, error) {
	p, err := newPartition(s)
	if err != nil {
		return nil, err
	}
	lbl := func(i int) int { return p.label[i] }
	n := s.Len()

	dirty := make([]bool, n)
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		dirty[i] = true
		queue = append(queue, i)
	}

	enc := newSigEncoder(s)
	var classSeen []bool
	classes := make([]int, 0, 16)
	work := make([]int, 0, 16)
	var idsBuf []int
	var offsBuf []int

	round := 0
	for len(queue) > 0 {
		round++
		numBefore := len(p.members)
		// Gather the dirty classes this round.
		classes = classes[:0]
		for _, i := range queue {
			if !dirty[i] {
				continue
			}
			dirty[i] = false
			c := p.label[i]
			for c >= len(classSeen) {
				classSeen = append(classSeen, false)
			}
			if !classSeen[c] {
				classSeen[c] = true
				classes = append(classes, c)
			}
		}
		queue = queue[:0]
		sort.Ints(classes)
		work = work[:0]
		for _, c := range classes {
			classSeen[c] = false
			// A split decision needs signatures for the whole class, so
			// singleton classes can never split.
			if len(p.members[c]) > 1 {
				work = append(work, c)
			}
		}

		// Signature pass: every dirty class's signatures are computed
		// against the round-start labeling (splits apply only in the
		// merge below), so the parallel pass is label-for-label
		// identical to the sequential one.
		var changed []int
		if workers > 1 && len(work) > 1 {
			// Workers claim classes from a shared counter and fill
			// disjoint result slots; the labels they read are not
			// mutated until the merge.
			idsByClass := make([][]int, len(work))
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < min(workers, len(work)); w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					we := newSigEncoder(s)
					for {
						k := int(next.Add(1)) - 1
						if k >= len(work) {
							return
						}
						we.reset()
						ids := make([]int, 0, len(p.members[work[k]]))
						for _, i := range p.members[work[k]] {
							ids = append(ids, we.sigID(i, lbl))
						}
						idsByClass[k] = ids
					}
				}()
			}
			wg.Wait()
			// Deterministic merge: splits apply in ascending class order.
			for k, c := range work {
				changed = append(changed, p.splitClassIDs(c, idsByClass[k])...)
			}
		} else {
			idsBuf = idsBuf[:0]
			offs := offsBuf[:0]
			for _, c := range work {
				enc.reset()
				offs = append(offs, len(idsBuf))
				for _, i := range p.members[c] {
					idsBuf = append(idsBuf, enc.sigID(i, lbl))
				}
			}
			offs = append(offs, len(idsBuf))
			offsBuf = offs
			for k, c := range work {
				changed = append(changed, p.splitClassIDs(c, idsBuf[offs[k]:offs[k+1]])...)
			}
		}
		for _, i := range changed {
			for _, d := range s.Dependents(i) {
				if !dirty[d] {
					dirty[d] = true
					queue = append(queue, d)
				}
			}
			// A relabeled node's own signature may also change if it
			// depends on itself transitively; re-mark it.
			if !dirty[i] {
				dirty[i] = true
				queue = append(queue, i)
			}
		}
		if hook != nil {
			hook(round, len(p.members), len(p.members)-numBefore)
		}
	}
	return p, nil
}

// String renders the partition as sorted class lists, for debugging and
// golden tests. It builds the output incrementally so rendering a
// 65k-node partition stays linear.
func (p *Partition) String() string {
	var b strings.Builder
	for c, m := range p.Classes() {
		if c > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%v", m)
	}
	return b.String()
}
