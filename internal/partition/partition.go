// Package partition implements partition refinement, the engine behind the
// paper's Algorithm 1 ("Compute Similarity Labeling Θ").
//
// The paper computes similarity labelings by refining a trivial
// subsimilarity labeling until nodes with the same label have the same
// environment, citing Hopcroft's set-partition algorithm [H71] for an
// O(n log n) bound. This package provides the partition data structure and
// two fixpoint drivers over a pluggable Structure:
//
//   - FixpointNaive recomputes every signature every round. It is the
//     direct transcription of Algorithm 1 and serves as the oracle.
//   - FixpointWorklist recomputes signatures only for nodes whose
//     dependencies changed, propagating splits along the dependency
//     graph. This is the production driver.
//
// Both produce identical partitions; tests cross-check them and benchmarks
// compare them (the DESIGN.md ablation).
package partition

import (
	"errors"
	"fmt"
	"sort"
)

// Structure describes a refinable structure: a set of nodes, an initial
// coloring, a per-node signature that may read current labels, and the
// dependency graph saying whose signatures are affected when a node's
// label changes.
type Structure interface {
	// Len returns the number of nodes, indexed 0..Len()-1.
	Len() int
	// InitKey returns the initial-coloring key of node i (nodes with
	// equal keys start in the same class).
	InitKey(i int) string
	// Signature returns a deterministic encoding of node i's environment
	// under the current labeling. Nodes in a stable partition must have
	// equal signatures iff they should share a class.
	Signature(i int, label func(int) int) string
	// Dependents returns the nodes whose Signature may change when node
	// i's label changes. It may contain duplicates and i itself.
	Dependents(i int) []int
}

// ErrEmptyStructure is returned when refining a structure with no nodes.
var ErrEmptyStructure = errors.New("partition: empty structure")

// Partition assigns each node a class label in 0..NumClasses()-1.
// Class identifiers are deterministic for a given refinement run but
// carry no meaning across runs; use Canonical for stable comparison.
type Partition struct {
	label   []int
	members [][]int
}

// newPartition builds the initial partition from InitKey, with class ids
// assigned in sorted key order for determinism.
func newPartition(s Structure) (*Partition, error) {
	n := s.Len()
	if n == 0 {
		return nil, ErrEmptyStructure
	}
	byKey := make(map[string][]int)
	for i := 0; i < n; i++ {
		k := s.InitKey(i)
		byKey[k] = append(byKey[k], i)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	p := &Partition{label: make([]int, n)}
	for _, k := range keys {
		id := len(p.members)
		for _, i := range byKey[k] {
			p.label[i] = id
		}
		p.members = append(p.members, byKey[k])
	}
	return p, nil
}

// Label returns the class of node i.
func (p *Partition) Label(i int) int { return p.label[i] }

// Labels returns a copy of the full label vector.
func (p *Partition) Labels() []int { return append([]int(nil), p.label...) }

// NumClasses returns the number of classes.
func (p *Partition) NumClasses() int { return len(p.members) }

// Members returns a copy of the member list of class c, sorted ascending.
func (p *Partition) Members(c int) []int {
	out := append([]int(nil), p.members[c]...)
	sort.Ints(out)
	return out
}

// Classes returns all classes as sorted member lists, ordered by class id.
func (p *Partition) Classes() [][]int {
	out := make([][]int, len(p.members))
	for c := range p.members {
		out[c] = p.Members(c)
	}
	return out
}

// ClassSizes returns the size of each class.
func (p *Partition) ClassSizes() []int {
	out := make([]int, len(p.members))
	for c, m := range p.members {
		out[c] = len(m)
	}
	return out
}

// SingletonClasses returns the nodes that are alone in their class, in
// ascending order. For similarity labelings these are the uniquely-labeled
// nodes — the candidates the paper's SELECT can elect.
func (p *Partition) SingletonClasses() []int {
	var out []int
	for _, m := range p.members {
		if len(m) == 1 {
			out = append(out, m[0])
		}
	}
	sort.Ints(out)
	return out
}

// Canonical returns the label vector renumbered so that class ids appear
// in order of first occurrence. Two partitions of the same node set induce
// the same equivalence relation iff their Canonical vectors are equal.
func (p *Partition) Canonical() []int {
	next := 0
	remap := make(map[int]int, len(p.members))
	out := make([]int, len(p.label))
	for i, l := range p.label {
		r, ok := remap[l]
		if !ok {
			r = next
			remap[l] = r
			next++
		}
		out[i] = r
	}
	return out
}

// SameRelation reports whether p and q induce the same equivalence
// relation on the same node set.
func SameRelation(p, q *Partition) bool {
	if len(p.label) != len(q.label) {
		return false
	}
	a, b := p.Canonical(), q.Canonical()
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Refines reports whether p refines q: every class of p is contained in a
// class of q (p is "finer"). The paper's subsimilarity labelings are
// exactly the labelings refined by the similarity labeling, and
// supersimilarity labelings are exactly those that refine it.
func Refines(p, q *Partition) bool {
	if len(p.label) != len(q.label) {
		return false
	}
	// p refines q iff p-label determines q-label.
	image := make(map[int]int)
	for i := range p.label {
		if img, ok := image[p.label[i]]; ok {
			if img != q.label[i] {
				return false
			}
		} else {
			image[p.label[i]] = q.label[i]
		}
	}
	return true
}

// splitClass regroups the members of class c by their signature, keeping
// the first (lowest-node) group under the old id and allocating new ids
// for the rest in sorted signature order. It returns the nodes whose
// label changed.
func (p *Partition) splitClass(c int, sig func(i int) string) []int {
	if len(p.members[c]) <= 1 {
		return nil
	}
	bySig := make(map[string][]int)
	for _, i := range p.members[c] {
		s := sig(i)
		bySig[s] = append(bySig[s], i)
	}
	if len(bySig) == 1 {
		return nil
	}
	sigs := make([]string, 0, len(bySig))
	for s := range bySig {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	// Keep the group containing the smallest member under the old id so
	// splitting is deterministic regardless of signature strings.
	minNode := p.members[c][0]
	for _, i := range p.members[c] {
		if i < minNode {
			minNode = i
		}
	}
	keep := ""
	for s, m := range bySig {
		for _, i := range m {
			if i == minNode {
				keep = s
			}
		}
	}
	var changed []int
	p.members[c] = bySig[keep]
	for _, s := range sigs {
		if s == keep {
			continue
		}
		id := len(p.members)
		p.members = append(p.members, bySig[s])
		for _, i := range bySig[s] {
			p.label[i] = id
			changed = append(changed, i)
		}
	}
	return changed
}

// FixpointNaive refines the initial partition of s until stable,
// recomputing every node's signature each round. It mirrors the paper's
// Algorithm 1 exactly: "do nodes x and y have the same label but different
// environments → relabel".
func FixpointNaive(s Structure) (*Partition, error) {
	p, err := newPartition(s)
	if err != nil {
		return nil, err
	}
	lbl := func(i int) int { return p.label[i] }
	for {
		sigCache := make([]string, s.Len())
		for i := 0; i < s.Len(); i++ {
			sigCache[i] = s.Signature(i, lbl)
		}
		changedAny := false
		// Snapshot class ids: splits append new classes which are
		// singleton-grouped already this round.
		numBefore := len(p.members)
		for c := 0; c < numBefore; c++ {
			if ch := p.splitClass(c, func(i int) string { return sigCache[i] }); len(ch) > 0 {
				changedAny = true
			}
		}
		if !changedAny {
			return p, nil
		}
	}
}

// FixpointWorklist refines the initial partition of s until stable,
// recomputing signatures only for nodes whose dependencies changed. This
// is the efficient driver in the spirit of [H71]: work propagates only
// from split classes to their dependents.
func FixpointWorklist(s Structure) (*Partition, error) {
	p, err := newPartition(s)
	if err != nil {
		return nil, err
	}
	lbl := func(i int) int { return p.label[i] }
	n := s.Len()

	dirty := make([]bool, n)
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		dirty[i] = true
		queue = append(queue, i)
	}

	for len(queue) > 0 {
		// Gather the dirty classes this round.
		classSet := make(map[int][]int)
		for _, i := range queue {
			if dirty[i] {
				classSet[p.label[i]] = append(classSet[p.label[i]], i)
				dirty[i] = false
			}
		}
		queue = queue[:0]

		classes := make([]int, 0, len(classSet))
		for c := range classSet {
			classes = append(classes, c)
		}
		sort.Ints(classes)

		var changed []int
		for _, c := range classes {
			if len(p.members[c]) <= 1 {
				continue
			}
			// A split decision needs signatures for the whole class, not
			// only the dirty members.
			sigCache := make(map[int]string, len(p.members[c]))
			for _, i := range p.members[c] {
				sigCache[i] = s.Signature(i, lbl)
			}
			ch := p.splitClass(c, func(i int) string { return sigCache[i] })
			changed = append(changed, ch...)
		}
		for _, i := range changed {
			for _, d := range s.Dependents(i) {
				if !dirty[d] {
					dirty[d] = true
					queue = append(queue, d)
				}
			}
			// A relabeled node's own signature may also change if it
			// depends on itself transitively; re-mark it.
			if !dirty[i] {
				dirty[i] = true
				queue = append(queue, i)
			}
		}
	}
	return p, nil
}

// String renders the partition as sorted class lists, for debugging and
// golden tests.
func (p *Partition) String() string {
	classes := p.Classes()
	out := ""
	for c, m := range classes {
		if c > 0 {
			out += " "
		}
		out += fmt.Sprintf("%v", m)
	}
	return out
}
