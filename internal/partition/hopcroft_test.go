package partition

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// dfa implements CountStructure as well: transitions become tagged edges.
func (d *dfa) OutEdges(i int) []TaggedEdge {
	out := make([]TaggedEdge, 0, len(d.next[i]))
	for sym, t := range d.next[i] {
		out = append(out, TaggedEdge{To: t, Tag: sym})
	}
	return out
}

func TestHopcroftMinimizesDFA(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{3, 1}, {3, 4}, {5, 3}, {7, 2}, {1, 5}} {
		t.Run(fmt.Sprintf("mod%dx%d", tc.n, tc.k), func(t *testing.T) {
			d := modDFA(tc.n, tc.k)
			p, err := FixpointHopcroft(d)
			if err != nil {
				t.Fatal(err)
			}
			if p.NumClasses() != tc.n {
				t.Errorf("NumClasses = %d, want %d\n%s", p.NumClasses(), tc.n, p)
			}
		})
	}
}

func TestHopcroftMatchesNaiveOnRandomDFAs(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(50)
		symbols := 1 + rng.Intn(3)
		accept := make([]bool, n)
		next := make([][]int, n)
		for s := 0; s < n; s++ {
			accept[s] = rng.Intn(2) == 0
			next[s] = make([]int, symbols)
			for j := range next[s] {
				next[s][j] = rng.Intn(n)
			}
		}
		d := newDFA(accept, next)
		a, err := FixpointNaive(d)
		if err != nil {
			t.Fatal(err)
		}
		b, err := FixpointHopcroft(d)
		if err != nil {
			t.Fatal(err)
		}
		if !SameRelation(a, b) {
			t.Fatalf("trial %d (n=%d): naive %v != hopcroft %v", trial, n, a, b)
		}
	}
}

func TestHopcroftEmptyAndErrors(t *testing.T) {
	if _, err := FixpointHopcroft(newDFA(nil, nil)); !errors.Is(err, ErrEmptyStructure) {
		t.Errorf("empty = %v", err)
	}
	if _, err := FixpointHopcroft(badEdgeStructure{}); err == nil {
		t.Error("out-of-range edge should fail")
	}
}

func TestHopcroftChainIsFast(t *testing.T) {
	// The adversarial chain that makes naive refinement quadratic: the
	// smaller-half driver must separate a 4096-node chain quickly.
	d := chainDFA(4096)
	start := time.Now()
	p, err := FixpointHopcroft(d)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if p.NumClasses() != 4096 {
		t.Fatalf("classes = %d, want 4096", p.NumClasses())
	}
	if elapsed > 2*time.Second {
		t.Errorf("hopcroft took %v on a 4096 chain; smaller-half should be near-linear", elapsed)
	}
}

// chainDFA is a unary chain: state i moves to i+1, the last state loops.
// Only the last state accepts, so minimization must fully separate.
func chainDFA(n int) *dfa {
	accept := make([]bool, n)
	next := make([][]int, n)
	for i := 0; i < n; i++ {
		t := i + 1
		if t == n {
			t = n - 1
		}
		next[i] = []int{t}
	}
	accept[n-1] = true
	return newDFA(accept, next)
}

func BenchmarkHopcroftChain(b *testing.B) {
	for _, n := range []int{1024, 4096, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			d := chainDFA(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := FixpointHopcroft(d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// badEdgeStructure has an edge pointing outside the node range.
type badEdgeStructure struct{}

func (badEdgeStructure) Len() int                  { return 1 }
func (badEdgeStructure) InitKey(int) string        { return "x" }
func (badEdgeStructure) OutEdges(int) []TaggedEdge { return []TaggedEdge{{To: 5, Tag: 0}} }
