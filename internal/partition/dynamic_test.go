package partition

import (
	"math/rand"
	"testing"
)

// dyndfa is a mutable DFA over a two-symbol alphabet implementing
// DynStructure: states can be added, removed (with their in-edges
// redirected), rewired, and re-colored between Update calls. It is the
// in-package churn harness mirroring the static dfa of the other tests.
type dyndfa struct {
	alive  []bool
	accept []bool
	next   [][]int
	prev   [][]int // reverse edges, duplicates kept in sync with next
}

func newDynDFA(d *dfa) *dyndfa {
	n := d.Len()
	m := &dyndfa{
		alive:  make([]bool, n),
		accept: append([]bool(nil), d.accept...),
		next:   make([][]int, n),
		prev:   make([][]int, n),
	}
	for s := 0; s < n; s++ {
		m.alive[s] = true
		m.next[s] = append([]int(nil), d.next[s]...)
	}
	for s := range m.next {
		for _, t := range m.next[s] {
			m.prev[t] = append(m.prev[t], s)
		}
	}
	return m
}

func (m *dyndfa) Len() int         { return len(m.alive) }
func (m *dyndfa) Alive(i int) bool { return m.alive[i] }

func (m *dyndfa) InitKey(i int) string {
	if m.accept[i] {
		return "acc"
	}
	return "rej"
}

func (m *dyndfa) Signature(i int, label func(int) int) string {
	sig := ""
	for _, t := range m.next[i] {
		sig += itoaSig(label(t))
	}
	return sig
}

func itoaSig(v int) string {
	// Small deterministic encoding with separator.
	buf := [16]byte{}
	p := len(buf)
	p--
	buf[p] = ','
	if v == 0 {
		p--
		buf[p] = '0'
	}
	for v > 0 {
		p--
		buf[p] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[p:])
}

func (m *dyndfa) AppendSignature(buf []uint64, i int, label func(int) int) []uint64 {
	for _, t := range m.next[i] {
		buf = append(buf, uint64(int64(label(t))))
	}
	return buf
}

func (m *dyndfa) Dependents(i int) []int { return m.prev[i] }

func (m *dyndfa) dropPrev(t, s int) {
	for k, v := range m.prev[t] {
		if v == s {
			m.prev[t] = append(m.prev[t][:k], m.prev[t][k+1:]...)
			return
		}
	}
	panic("dyndfa: reverse edge missing")
}

// setAccept toggles state x's color; returns the touched slots.
func (m *dyndfa) setAccept(x int, acc bool) []int {
	m.accept[x] = acc
	return []int{x}
}

// rewire points x's sym-edge at t; returns the touched slots.
func (m *dyndfa) rewire(x, sym, t int) []int {
	old := m.next[x][sym]
	if old == t {
		return []int{x}
	}
	m.dropPrev(old, x)
	m.next[x][sym] = t
	m.prev[t] = append(m.prev[t], x)
	return []int{x}
}

// addState appends a fresh alive state; returns the touched slots.
func (m *dyndfa) addState(acc bool, t0, t1 int) []int {
	x := len(m.alive)
	m.alive = append(m.alive, true)
	m.accept = append(m.accept, acc)
	m.next = append(m.next, []int{t0, t1})
	m.prev = append(m.prev, nil)
	m.prev[t0] = append(m.prev[t0], x)
	m.prev[t1] = append(m.prev[t1], x)
	return []int{x}
}

// removeState kills x, redirecting every in-edge of x to r; returns the
// touched slots (x plus every redirected predecessor).
func (m *dyndfa) removeState(x, r int) []int {
	touched := []int{x}
	for s := range m.next {
		if !m.alive[s] || s == x {
			continue
		}
		moved := false
		for sym, t := range m.next[s] {
			if t == x {
				m.dropPrev(x, s)
				m.next[s][sym] = r
				m.prev[r] = append(m.prev[r], s)
				moved = true
			}
		}
		if moved {
			touched = append(touched, s)
		}
	}
	for _, t := range m.next[x] {
		m.dropPrev(t, x)
	}
	m.next[x] = m.next[x][:0]
	m.alive[x] = false
	return touched
}

// liveStates returns the alive slots ascending.
func (m *dyndfa) liveStates() []int {
	var out []int
	for i, a := range m.alive {
		if a {
			out = append(out, i)
		}
	}
	return out
}

// compact builds a static dfa over the alive slots for the oracle.
func (m *dyndfa) compact() *dfa {
	live := m.liveStates()
	idx := make(map[int]int, len(live))
	for k, s := range live {
		idx[s] = k
	}
	acc := make([]bool, len(live))
	next := make([][]int, len(live))
	for k, s := range live {
		acc[k] = m.accept[s]
		next[k] = []int{idx[m.next[s][0]], idx[m.next[s][1]]}
	}
	return newDFA(acc, next)
}

// dynOracleCheck asserts d's labels induce exactly the relation the
// from-scratch oracle computes on the compacted structure, and that the
// engine's internal invariants hold.
func dynOracleCheck(t *testing.T, d *Dyn, m *dyndfa) {
	t.Helper()
	if err := d.Check(); err != nil {
		t.Fatalf("invariant audit: %v", err)
	}
	oracle, err := FixpointNaive(m.compact())
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	want := oracle.Canonical()
	canon := d.Canonical()
	live := m.liveStates()
	if len(live) != len(want) {
		t.Fatalf("alive count %d != oracle size %d", len(live), len(want))
	}
	for k, s := range live {
		if canon[s] != want[k] {
			t.Fatalf("slot %d: incremental class %d != oracle class %d\nincremental=%v\noracle=%v",
				s, canon[s], want[k], canon, want)
		}
	}
}

func TestDynMatchesOracleOnScriptedTrace(t *testing.T) {
	m := newDynDFA(modDFA(3, 3)) // 9 states, 3 classes
	d, err := NewDyn(m)
	if err != nil {
		t.Fatal(err)
	}
	dynOracleCheck(t, d, m)
	if got := d.NumClasses(); got != 3 {
		t.Fatalf("initial classes = %d, want 3", got)
	}

	steps := []func() []int{
		func() []int { return m.setAccept(4, true) },    // split: rekeyed state
		func() []int { return m.rewire(1, 0, 7) },       // env change cascades
		func() []int { return m.addState(false, 2, 5) }, // join
		func() []int { return m.addState(true, 0, 0) },  // join, accepting
		func() []int { return m.setAccept(4, false) },   // revert: merge restores coarseness
		func() []int { return m.removeState(7, 2) },     // leave with redirected in-edges
		func() []int { return m.rewire(1, 0, 4) },       // restore original edge shape
		func() []int { return m.removeState(10, 1) },    // remove the state added above
	}
	for _, step := range steps {
		d.Update(step())
		dynOracleCheck(t, d, m)
	}
}

func TestDynMergeRestoresCoarseness(t *testing.T) {
	// A 12-cycle: fully symmetric, one class.
	n := 12
	next := make([][]int, n)
	acc := make([]bool, n)
	for i := 0; i < n; i++ {
		next[i] = []int{(i + 1) % n, (i + n - 1) % n}
	}
	m := newDynDFA(newDFA(acc, next))
	d, err := NewDyn(m)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumClasses() != 1 {
		t.Fatalf("symmetric cycle classes = %d, want 1", d.NumClasses())
	}
	// Breaking one state's color shatters the cycle into distance
	// classes...
	d.Update(m.setAccept(0, true))
	dynOracleCheck(t, d, m)
	if d.NumClasses() <= 2 {
		t.Fatalf("broken cycle classes = %d, want distance classes", d.NumClasses())
	}
	// ...and reverting must merge them all back: this is the quotient
	// pass earning its keep.
	st := d.Update(m.setAccept(0, false))
	dynOracleCheck(t, d, m)
	if d.NumClasses() != 1 {
		t.Fatalf("restored cycle classes = %d, want 1", d.NumClasses())
	}
	if !st.MergePass && !st.Rebuild {
		t.Fatalf("expected a merge pass or rebuild, got %+v", st)
	}
	if st.Merges == 0 && !st.Rebuild {
		t.Fatalf("expected merges, got %+v", st)
	}
}

func TestDynRandomTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(20260809))
	for trace := 0; trace < 60; trace++ {
		nd := 2 + rng.Intn(12)
		acc := make([]bool, nd)
		next := make([][]int, nd)
		for i := range next {
			acc[i] = rng.Intn(2) == 1
			next[i] = []int{rng.Intn(nd), rng.Intn(nd)}
		}
		m := newDynDFA(newDFA(acc, next))
		d, err := NewDyn(m)
		if err != nil {
			t.Fatal(err)
		}
		for ev := 0; ev < 30; ev++ {
			live := m.liveStates()
			pick := func() int { return live[rng.Intn(len(live))] }
			var touched []int
			switch op := rng.Intn(5); {
			case op == 0:
				x := pick()
				touched = m.setAccept(x, !m.accept[x])
			case op == 1:
				touched = m.rewire(pick(), rng.Intn(2), pick())
			case op == 2:
				touched = m.addState(rng.Intn(2) == 1, pick(), pick())
			case op == 3 && len(live) > 1:
				x := pick()
				r := pick()
				for r == x {
					r = pick()
				}
				touched = m.removeState(x, r)
			default:
				touched = m.rewire(pick(), rng.Intn(2), pick())
			}
			d.Update(touched)
			dynOracleCheck(t, d, m)
		}
	}
}

func TestDynStringFallbackMatchesTokenPath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trace := 0; trace < 10; trace++ {
		nd := 3 + rng.Intn(8)
		acc := make([]bool, nd)
		next := make([][]int, nd)
		for i := range next {
			acc[i] = rng.Intn(2) == 1
			next[i] = []int{rng.Intn(nd), rng.Intn(nd)}
		}
		m := newDynDFA(newDFA(acc, next))
		d, err := NewDyn(m)
		if err != nil {
			t.Fatal(err)
		}
		// Same structure through the string-only fallback: stringOnlyDyn
		// deliberately lacks a usable token encoder, so hide it behind
		// an interface stripping wrapper.
		ds, err := NewDyn(stripTokens{m})
		if err != nil {
			t.Fatal(err)
		}
		for ev := 0; ev < 20; ev++ {
			live := m.liveStates()
			pick := func() int { return live[rng.Intn(len(live))] }
			var touched []int
			if rng.Intn(2) == 0 {
				x := pick()
				touched = m.setAccept(x, !m.accept[x])
			} else {
				touched = m.rewire(pick(), rng.Intn(2), pick())
			}
			d.Update(touched)
			ds.Update(touched)
			a, b := d.Canonical(), ds.Canonical()
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("token/string divergence at slot %d: %v vs %v", i, a, b)
				}
			}
			dynOracleCheck(t, d, m)
		}
	}
}

// stripTokens removes the TokenStructure facet so the dynamic engine
// exercises its string-interning fallback.
type stripTokens struct{ m *dyndfa }

func (s stripTokens) Len() int                                { return s.m.Len() }
func (s stripTokens) Alive(i int) bool                        { return s.m.Alive(i) }
func (s stripTokens) InitKey(i int) string                    { return s.m.InitKey(i) }
func (s stripTokens) Signature(i int, l func(int) int) string { return s.m.Signature(i, l) }
func (s stripTokens) Dependents(i int) []int                  { return s.m.Dependents(i) }

func TestDynRebuildFallback(t *testing.T) {
	// modDFA(331, 2): 662 states, 331 classes (odd modulus keeps every
	// residue distinguishable under the doubling map). Any
	// quotient-changing event then satisfies k > 256 && k^2 > 64*alive,
	// forcing the rebuild path instead of a 331-node quotient
	// refinement.
	m := newDynDFA(modDFA(331, 2))
	d, err := NewDyn(m)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumClasses() != 331 {
		t.Fatalf("classes = %d, want 331", d.NumClasses())
	}
	st := d.Update(m.setAccept(1, true))
	if !st.Rebuild {
		t.Fatalf("expected rebuild fallback, got %+v", st)
	}
	dynOracleCheck(t, d, m)
}

// TestDynClassMembersCopied is the mutation-unsafe-sharing regression
// test: ClassMembers must hand out a copy, because the engine mutates
// its member lists in place (swap-removal on detach, splits, merges).
// Before the copy, the sequence below corrupted the caller's snapshot.
func TestDynClassMembersCopied(t *testing.T) {
	m := newDynDFA(modDFA(3, 3))
	d, err := NewDyn(m)
	if err != nil {
		t.Fatal(err)
	}
	c := d.Label(0)
	snap := d.ClassMembers(c)
	before := append([]int(nil), snap...)

	// An update that splits and relabels: with borrowed storage the
	// engine's swap-removals would scramble snap under the caller.
	d.Update(m.setAccept(snap[len(snap)-1], true))
	dynOracleCheck(t, d, m)
	for i := range snap {
		if snap[i] != before[i] {
			t.Fatalf("ClassMembers result mutated by Update: %v vs %v", snap, before)
		}
	}

	// Caller-side writes must not reach the engine either.
	snap2 := d.ClassMembers(d.Label(0))
	for i := range snap2 {
		snap2[i] = -99
	}
	if err := d.Check(); err != nil {
		t.Fatalf("caller write corrupted engine state: %v", err)
	}
}

func TestDynEmptyStructure(t *testing.T) {
	m := &dyndfa{}
	if _, err := NewDyn(m); err != ErrEmptyStructure {
		t.Fatalf("err = %v, want ErrEmptyStructure", err)
	}
}
