// Package autgrp computes graph-theoretic symmetry: the automorphisms and
// node orbits of a system's labeled bipartite network.
//
// The paper's footnote 1 defines symmetry via label-preserving
// isomorphisms; two nodes are symmetric iff some automorphism maps one to
// the other. Theorem 10 proves that symmetric nodes are similar in Q, so
// automorphism orbits always refine the similarity labeling — which this
// package exploits: candidate images during backtracking are restricted to
// the target's similarity class, making enumeration cheap on the paper's
// examples even though automorphism search is hard in general.
//
// Because every processor has exactly one n-neighbor per name, a processor
// permutation forces the variable mapping (v = n-nbr(p) must map to
// n-nbr(σ(p))). The search therefore backtracks over processors only and
// derives the variable bijection, pruning on conflicts and initial states.
package autgrp

import (
	"errors"
	"fmt"

	"simsym/internal/core"
	"simsym/internal/system"
)

// Sentinel errors.
var (
	ErrTooMany = errors.New("autgrp: automorphism limit exceeded")
)

// Options configures the search.
type Options struct {
	// Limit bounds the number of automorphisms enumerated; 0 means the
	// default (1<<20). Exceeding it returns ErrTooMany.
	Limit int
}

// DefaultLimit is the default automorphism enumeration bound.
const DefaultLimit = 1 << 20

// Automorphisms enumerates every automorphism of sys (including the
// identity), in deterministic order.
func Automorphisms(sys *system.System, opts Options) ([]system.Permutation, error) {
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("autgrp: %w", err)
	}
	limit := opts.Limit
	if limit <= 0 {
		limit = DefaultLimit
	}
	// Similarity classes bound the orbits (Theorem 10): a processor can
	// only map within its similarity class.
	lab, err := core.Similarity(sys, core.RuleQ)
	if err != nil {
		return nil, fmt.Errorf("autgrp: similarity pruning: %w", err)
	}

	np, nv := sys.NumProcs(), sys.NumVars()
	procImg := make([]int, np)
	varImg := make([]int, nv)
	procUsed := make([]bool, np)
	varUsed := make([]bool, nv)
	for i := range procImg {
		procImg[i] = -1
	}
	for i := range varImg {
		varImg[i] = -1
	}

	var result []system.Permutation
	var assign func(p int) error
	assign = func(p int) error {
		if p == np {
			// Variable map must be a complete bijection; every variable
			// has at least one edge (Validate guarantees no orphans), so
			// completeness is automatic once all processors are mapped.
			perm := system.Permutation{
				ProcPerm: append([]int(nil), procImg...),
				VarPerm:  append([]int(nil), varImg...),
			}
			if len(result) >= limit {
				return ErrTooMany
			}
			result = append(result, perm)
			return nil
		}
		for cand := 0; cand < np; cand++ {
			if procUsed[cand] {
				continue
			}
			if lab.ProcLabels[p] != lab.ProcLabels[cand] {
				continue // orbits refine similarity
			}
			if sys.ProcInit[p] != sys.ProcInit[cand] {
				continue
			}
			// Propagate the forced variable mappings.
			var touched []int
			ok := true
			for j, v := range sys.Nbr[p] {
				w := sys.Nbr[cand][j]
				switch {
				case varImg[v] == w:
					// already consistent
				case varImg[v] == -1 && !varUsed[w]:
					if sys.VarInit[v] != sys.VarInit[w] {
						ok = false
					} else {
						varImg[v] = w
						varUsed[w] = true
						touched = append(touched, v)
					}
				default:
					ok = false
				}
				if !ok {
					break
				}
			}
			if ok {
				procImg[p] = cand
				procUsed[cand] = true
				if err := assign(p + 1); err != nil {
					return err
				}
				procImg[p] = -1
				procUsed[cand] = false
			}
			for _, v := range touched {
				varUsed[varImg[v]] = false
				varImg[v] = -1
			}
		}
		return nil
	}
	if err := assign(0); err != nil {
		return nil, err
	}
	// Defensive re-check: every enumerated permutation must really be an
	// automorphism (edge propagation covers edges from the processor
	// side, which is all edges, but the check is cheap and guards
	// against future refactors).
	for _, perm := range result {
		ok, err := system.IsAutomorphism(sys, perm)
		if err != nil {
			return nil, fmt.Errorf("autgrp: verifying: %w", err)
		}
		if !ok {
			return nil, fmt.Errorf("autgrp: internal error: enumerated non-automorphism %v", perm)
		}
	}
	return result, nil
}

// Orbits describes the symmetry classes of a system.
type Orbits struct {
	// ProcOrbit[p] is the orbit id of processor p; orbit ids are dense
	// and deterministic (ordered by smallest member).
	ProcOrbit []int
	// VarOrbit[v] is the orbit id of variable v.
	VarOrbit []int
	// GroupOrder is the number of automorphisms (|Aut|).
	GroupOrder int
}

// Compute enumerates the automorphism group and returns node orbits.
func Compute(sys *system.System, opts Options) (*Orbits, error) {
	auts, err := Automorphisms(sys, opts)
	if err != nil {
		return nil, err
	}
	np, nv := sys.NumProcs(), sys.NumVars()
	procParent := identity(np)
	varParent := identity(nv)
	for _, a := range auts {
		for p, img := range a.ProcPerm {
			union(procParent, p, img)
		}
		for v, img := range a.VarPerm {
			union(varParent, v, img)
		}
	}
	return &Orbits{
		ProcOrbit:  canonicalize(procParent),
		VarOrbit:   canonicalize(varParent),
		GroupOrder: len(auts),
	}, nil
}

// ProcClasses returns the processor orbits as sorted slices ordered by
// smallest member.
func (o *Orbits) ProcClasses() [][]int { return classesOf(o.ProcOrbit) }

// VarClasses returns the variable orbits as sorted slices ordered by
// smallest member.
func (o *Orbits) VarClasses() [][]int { return classesOf(o.VarOrbit) }

// Symmetric reports whether processors p and q lie in the same orbit.
func (o *Orbits) Symmetric(p, q int) bool { return o.ProcOrbit[p] == o.ProcOrbit[q] }

// RefinesSimilarity reports whether every orbit is contained in one
// similarity class of lab — the content of Theorem 10 (symmetric nodes in
// a system in Q are similar).
func (o *Orbits) RefinesSimilarity(lab *core.Labeling) bool {
	if len(o.ProcOrbit) != len(lab.ProcLabels) || len(o.VarOrbit) != len(lab.VarLabels) {
		return false
	}
	procSim := make(map[int]int)
	for p, orb := range o.ProcOrbit {
		if sim, ok := procSim[orb]; ok {
			if sim != lab.ProcLabels[p] {
				return false
			}
		} else {
			procSim[orb] = lab.ProcLabels[p]
		}
	}
	varSim := make(map[int]int)
	for v, orb := range o.VarOrbit {
		if sim, ok := varSim[orb]; ok {
			if sim != lab.VarLabels[v] {
				return false
			}
		} else {
			varSim[orb] = lab.VarLabels[v]
		}
	}
	return true
}

// IsDistributed reports whether no variable is accessed by every
// processor — the paper's definition of a distributed system (section 7:
// "It is distributed because no variable is accessed by all processors").
func IsDistributed(sys *system.System) bool {
	vn := sys.VarNeighbors()
	for v := range vn {
		procs := make(map[int]bool)
		for _, e := range vn[v] {
			procs[e.Proc] = true
		}
		if len(procs) == sys.NumProcs() {
			return false
		}
	}
	return true
}

// Theorem11Hypothesis reports whether Theorem 11 applies to sys with
// respect to orbit class C (given as the orbit id of any member): the
// system is distributed, symmetric (C is a full orbit by construction),
// and |C| is prime. When it applies, every processor in C is similar in L
// — verified elsewhere by checking the orbit labeling against Theorem 8.
func Theorem11Hypothesis(sys *system.System, o *Orbits, orbitID int) bool {
	if !IsDistributed(sys) {
		return false
	}
	size := 0
	for _, id := range o.ProcOrbit {
		if id == orbitID {
			size++
		}
	}
	return isPrime(size)
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func find(parent []int, x int) int {
	for parent[x] != x {
		parent[x] = parent[parent[x]]
		x = parent[x]
	}
	return x
}

func union(parent []int, a, b int) {
	ra, rb := find(parent, a), find(parent, b)
	if ra != rb {
		if ra < rb {
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
}

func canonicalize(parent []int) []int {
	out := make([]int, len(parent))
	next := 0
	remap := make(map[int]int)
	for i := range parent {
		root := find(parent, i)
		id, ok := remap[root]
		if !ok {
			id = next
			remap[root] = id
			next++
		}
		out[i] = id
	}
	return out
}

func classesOf(orbit []int) [][]int {
	byID := make(map[int][]int)
	for i, id := range orbit {
		byID[id] = append(byID[id], i)
	}
	out := make([][]int, len(byID))
	for id, members := range byID {
		out[id] = members
	}
	return out
}
