package autgrp

import (
	"errors"
	"math/rand"
	"testing"

	"simsym/internal/core"
	"simsym/internal/system"
)

func TestRingGroupIsCyclic(t *testing.T) {
	// The left/right naming orients the ring, so Aut = rotations only:
	// |Aut| = n, one processor orbit, one variable orbit.
	for _, n := range []int{2, 3, 5, 6, 8} {
		s, err := system.Ring(n)
		if err != nil {
			t.Fatal(err)
		}
		o, err := Compute(s, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if o.GroupOrder != n {
			t.Errorf("ring %d: |Aut| = %d, want %d (rotations)", n, o.GroupOrder, n)
		}
		if got := len(o.ProcClasses()); got != 1 {
			t.Errorf("ring %d: proc orbits = %d, want 1", n, got)
		}
		if got := len(o.VarClasses()); got != 1 {
			t.Errorf("ring %d: var orbits = %d, want 1", n, got)
		}
	}
}

func TestDiningFlippedGroupIsDihedralLike(t *testing.T) {
	// Figure 5's table admits rotations by even steps (n/2 of them) and
	// reflections through variables (which swap facing/backs
	// philosophers), per the paper's section 7 discussion. All
	// philosophers form one orbit; forks form two orbits.
	s, err := system.DiningFlipped(6)
	if err != nil {
		t.Fatal(err)
	}
	o, err := Compute(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(o.ProcClasses()); got != 1 {
		t.Errorf("phil orbits = %d, want 1 (all philosophers symmetric)", got)
	}
	if got := len(o.VarClasses()); got != 2 {
		t.Errorf("fork orbits = %d, want 2 (right-forks, left-forks)", got)
	}
	if o.GroupOrder != 6 {
		t.Errorf("|Aut| = %d, want 6 (3 even rotations x reflection)", o.GroupOrder)
	}
}

func TestDining5FullOrbit(t *testing.T) {
	s, err := system.Dining(5)
	if err != nil {
		t.Fatal(err)
	}
	o, err := Compute(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.ProcClasses()) != 1 {
		t.Errorf("phil orbits = %d, want 1", len(o.ProcClasses()))
	}
	if !Theorem11Hypothesis(s, o, o.ProcOrbit[0]) {
		t.Error("Theorem 11 hypothesis should hold for Dining(5): distributed, symmetric, prime")
	}
	// Six philosophers: composite size, hypothesis must fail.
	s6, err := system.Dining(6)
	if err != nil {
		t.Fatal(err)
	}
	o6, err := Compute(s6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if Theorem11Hypothesis(s6, o6, o6.ProcOrbit[0]) {
		t.Error("Theorem 11 hypothesis should fail for Dining(6): composite orbit size")
	}
}

func TestMarkedRingIsRigid(t *testing.T) {
	s, err := system.Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	s.ProcInit[2] = "leader"
	o, err := Compute(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if o.GroupOrder != 1 {
		t.Errorf("marked ring |Aut| = %d, want 1 (identity only)", o.GroupOrder)
	}
	if got := len(o.ProcClasses()); got != 5 {
		t.Errorf("marked ring proc orbits = %d, want 5", got)
	}
}

func TestFig2Orbits(t *testing.T) {
	o, err := Compute(system.Fig2(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// p1 <-> p2 swap is the only non-trivial automorphism.
	if o.GroupOrder != 2 {
		t.Errorf("|Aut| = %d, want 2", o.GroupOrder)
	}
	if !o.Symmetric(0, 1) {
		t.Error("p1 and p2 should be symmetric")
	}
	if o.Symmetric(0, 2) {
		t.Error("p1 and p3 should not be symmetric")
	}
}

func TestTheorem10OrbitsRefineSimilarity(t *testing.T) {
	// Property test over random systems: symmetric nodes are similar in
	// Q (Theorem 10), i.e. orbits refine the Q similarity labeling.
	rng := rand.New(rand.NewSource(17))
	checked := 0
	for trial := 0; trial < 80; trial++ {
		s, err := system.RandomSystem(rng, system.RandomOpts{
			Procs:      1 + rng.Intn(6),
			Vars:       1 + rng.Intn(4),
			Names:      1 + rng.Intn(2),
			InitStates: 1 + rng.Intn(2),
		})
		if err != nil {
			continue
		}
		o, err := Compute(s, Options{Limit: 1 << 16})
		if errors.Is(err, ErrTooMany) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		lab, err := core.Similarity(s, core.RuleQ)
		if err != nil {
			t.Fatal(err)
		}
		if !o.RefinesSimilarity(lab) {
			t.Fatalf("trial %d: orbits do not refine similarity (Theorem 10 violated)\n%s\norbit procs %v\nsim %s",
				trial, s.Describe(), o.ProcClasses(), lab)
		}
		checked++
	}
	if checked < 40 {
		t.Errorf("too few systems checked: %d", checked)
	}
}

func TestGroupClosureAndIdentity(t *testing.T) {
	// The set of automorphisms must contain the identity and be closed
	// under composition (it is a group).
	s, err := system.DiningFlipped(6)
	if err != nil {
		t.Fatal(err)
	}
	auts, err := Automorphisms(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	keyOf := func(p system.Permutation) string {
		key := ""
		for _, x := range p.ProcPerm {
			key += string(rune('a' + x))
		}
		for _, x := range p.VarPerm {
			key += string(rune('A' + x))
		}
		return key
	}
	set := make(map[string]bool, len(auts))
	for _, a := range auts {
		set[keyOf(a)] = true
	}
	id := system.Permutation{ProcPerm: identity(s.NumProcs()), VarPerm: identity(s.NumVars())}
	if !set[keyOf(id)] {
		t.Error("identity missing from automorphism set")
	}
	for _, a := range auts {
		for _, b := range auts {
			comp := system.Permutation{
				ProcPerm: make([]int, s.NumProcs()),
				VarPerm:  make([]int, s.NumVars()),
			}
			for i, x := range a.ProcPerm {
				comp.ProcPerm[i] = b.ProcPerm[x]
			}
			for i, x := range a.VarPerm {
				comp.VarPerm[i] = b.VarPerm[x]
			}
			if !set[keyOf(comp)] {
				t.Fatal("automorphism set not closed under composition")
			}
		}
	}
}

func TestLimitExceeded(t *testing.T) {
	s, err := system.Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Automorphisms(s, Options{Limit: 3}); !errors.Is(err, ErrTooMany) {
		t.Errorf("limit error = %v, want ErrTooMany", err)
	}
}

func TestInvalidSystem(t *testing.T) {
	s := system.Fig1()
	s.Nbr[0][0] = 42
	if _, err := Automorphisms(s, Options{}); err == nil {
		t.Error("invalid system should fail")
	}
}

func TestIsDistributed(t *testing.T) {
	dp, err := system.Dining(5)
	if err != nil {
		t.Fatal(err)
	}
	if !IsDistributed(dp) {
		t.Error("Dining(5) is distributed (no fork touched by all)")
	}
	star, err := system.Star(3)
	if err != nil {
		t.Fatal(err)
	}
	if IsDistributed(star) {
		t.Error("Star's center is accessed by all processors: not distributed")
	}
	if IsDistributed(system.Fig1()) {
		t.Error("Fig1's v is accessed by all: not distributed")
	}
}

func BenchmarkOrbitsDining(b *testing.B) {
	s, err := system.Dining(9)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(s, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
