// Package runcfg defines the run-configuration vocabulary shared by the
// simsym facade's functional options and the simsymd daemon's JSON
// session API. The facade's Options embeds Common, and simsymd's
// session-create endpoint unmarshals the same struct from JSON, so a
// daemon config file and a Go option list spell every knob identically.
//
// Common deliberately excludes the two knobs that cannot cross a process
// boundary — context.Context and the *obs.Recorder — which stay on the
// facade's Options wrapper.
package runcfg

import (
	"encoding/json"
	"fmt"
	"time"
)

// Duration is a time.Duration that marshals to JSON as a Go duration
// string ("30s", "1h2m") and unmarshals from either that string form or
// a bare number of nanoseconds (the encoding/json default for
// time.Duration), so hand-written daemon configs stay readable while
// machine-emitted ones round-trip.
type Duration time.Duration

// Std returns the wrapped time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// MarshalJSON renders the duration as a Go duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a Go duration string or a number of nanoseconds.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("runcfg: bad duration %q: %w", s, err)
		}
		*d = Duration(parsed)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(data, &ns); err != nil {
		return fmt.Errorf("runcfg: duration must be a string or nanoseconds: %s", data)
	}
	*d = Duration(ns)
	return nil
}

// Common is the option set shared by every options-based facade entry
// point (SimilarityOpts, DecideOpts, BuildSelectOpts, CheckOpts,
// CheckDiningOpts, CheckStatistical*, RunFair) and by simsymd sessions.
// The zero value means: engine-default budgets, sequential execution,
// seed 0, no symmetry reduction, no faults, default schedule kind.
type Common struct {
	// MaxStates bounds model-checker exploration (0 = engine default).
	MaxStates int `json:"max_states,omitempty"`
	// MaxDuration bounds wall-clock run time (0 = unbounded).
	MaxDuration Duration `json:"max_duration,omitempty"`
	// MaxMemBytes bounds the checker's estimated footprint (0 = unbounded).
	MaxMemBytes int64 `json:"max_mem_bytes,omitempty"`
	// Workers > 1 parallelizes deterministic hot loops; results are
	// identical to sequential runs.
	Workers int `json:"workers,omitempty"`
	// Shards > 1 shards the model checker's visited-state index by key
	// hash; results stay identical to sequential runs.
	Shards int `json:"shards,omitempty"`
	// HotIndexBytes > 0 caps the checker's in-memory key storage; colder
	// key bytes spill to temp files under SpillDir.
	HotIndexBytes int64 `json:"hot_index_bytes,omitempty"`
	// SpillDir hosts the checker's spill files (os.TempDir() when empty).
	SpillDir string `json:"spill_dir,omitempty"`
	// Seed drives every seeded randomness consumer: RunFair, statistical
	// trials, and daemon session schedules and fault streams.
	Seed int64 `json:"seed,omitempty"`
	// Symmetry dedups model-checker states modulo the automorphism group.
	Symmetry bool `json:"symmetry,omitempty"`
	// Epsilon and Delta configure the statistical checkers' stopping
	// rule (zero values mean the engine defaults, 0.01 / 0.05).
	Epsilon float64 `json:"epsilon,omitempty"`
	Delta   float64 `json:"delta,omitempty"`
	// MaxSamples caps statistical trials below the Okamoto bound.
	MaxSamples int `json:"max_samples,omitempty"`
	// Depth bounds each sampled run's scheduler slots (0 = engine
	// default, 1024).
	Depth int `json:"depth,omitempty"`
	// FaultClasses names the seeded fault classes injected into sampled
	// or session runs ("crash", "stall", "lockdrop", comma-separated;
	// "" injects nothing).
	FaultClasses string `json:"faults,omitempty"`
	// SchedKind picks the seeded schedule generator: "uniform" (default)
	// or "shuffled" ((2n-1)-bounded fair).
	SchedKind string `json:"sched,omitempty"`
	// MaxSlots bounds a harness-driven run's schedule slots, including
	// skipped ones (0 = harness default, 10000). Consumed by daemon
	// sessions and statistical trials' depth fallback.
	MaxSlots int `json:"max_slots,omitempty"`
	// ChurnEvents is the number of topology mutation events a churn run
	// drives through the dynamic similarity engine (0 = no churn).
	ChurnEvents int `json:"churn_events,omitempty"`
	// ChurnMinProcs / ChurnMaxProcs bound the population during churn
	// (0 = the generator defaults: floor 2, no ceiling).
	ChurnMinProcs int `json:"churn_min_procs,omitempty"`
	ChurnMaxProcs int `json:"churn_max_procs,omitempty"`
}
