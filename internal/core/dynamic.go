package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"simsym/internal/obs"
	"simsym/internal/partition"
	"simsym/internal/system"
)

// crashMark prefixes the initial state of a crashed processor in every
// key the labeling sees (the dynamic engine's InitKey and Snapshot's
// ProcInit alike), so a crashed processor is never similar to a live
// one with the same program: a crash is observable in the environment,
// exactly the PR 3 fault vocabulary. The prefix starts with a NUL byte
// so no user-supplied initial state can collide with it; DSL inits are
// printable by construction.
const crashMark = "\x00!"

// Mutation is one topology edit. Op selects the edit; the other fields
// name its operands by external id. Mutations are JSON-able so churn
// traces and the simsymd hot-reload endpoint share one vocabulary.
type Mutation struct {
	Op   MutOp    `json:"op"`
	Proc string   `json:"proc,omitempty"`
	Var  string   `json:"var,omitempty"`
	Init string   `json:"init,omitempty"`
	Name string   `json:"name,omitempty"`
	Bind []string `json:"bind,omitempty"` // add_proc: one var id per name, NAMES order
}

// MutOp enumerates the topology edits DynSystem.Apply understands.
type MutOp string

const (
	OpAddProc     MutOp = "add_proc"      // Proc, Init, Bind
	OpAddVar      MutOp = "add_var"       // Var, Init
	OpRemoveProc  MutOp = "remove_proc"   // Proc (orphaned vars cascade)
	OpRemoveVar   MutOp = "remove_var"    // Var (must be unreferenced)
	OpRewire      MutOp = "rewire"        // Proc, Name, Var
	OpCrash       MutOp = "crash"         // Proc
	OpRestart     MutOp = "restart"       // Proc
	OpSetProcInit MutOp = "set_proc_init" // Proc, Init
	OpSetVarInit  MutOp = "set_var_init"  // Var, Init
)

// DynSystem is a mutable system whose similarity labeling is maintained
// incrementally: each Apply batch relabels only the classes the edit
// actually invalidates (split) or re-coarsens (merge), via
// partition.Dyn. The full-recompute Similarity on Snapshot() is the
// cross-checked oracle, exactly as the string-signature and naive
// drivers are for the static engines.
//
// Node identity is slot-based: a processor or variable keeps its slot
// for life, so labels and obs events remain comparable across events
// even as the population churns. Snapshot compacts live slots (ascending)
// into an ordinary *system.System.
type DynSystem struct {
	rule    Rule
	names   []system.Name
	nameIdx map[system.Name]int
	rec     *obs.Recorder

	// Slot tables. kind is 0 for free slots, 'P' or 'V' otherwise.
	kind    []byte
	ids     []string
	init    []string
	crashed []bool
	nbr     [][]int  // proc slot -> var slot per name index
	edges   [][]edge // var slot -> incident (proc slot, name index)
	free    []int
	byID    map[string]int

	nProcs, nVars int

	dyn *partition.Dyn
}

type edge struct{ proc, name int }

// NewDynSystem builds a dynamic engine seeded from sys (which is cloned;
// the argument is not retained) under the given rule.
func NewDynSystem(sys *system.System, rule Rule, cfg Config) (*DynSystem, error) {
	if rule != RuleQ && rule != RuleSetS {
		return nil, fmt.Errorf("%w: %d", ErrBadRule, int(rule))
	}
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSystemShape, err)
	}
	np, nv := sys.NumProcs(), sys.NumVars()
	d := &DynSystem{
		rule:    rule,
		names:   append([]system.Name(nil), sys.Names...),
		nameIdx: make(map[system.Name]int, len(sys.Names)),
		rec:     cfg.Obs,
		kind:    make([]byte, np+nv),
		ids:     make([]string, np+nv),
		init:    make([]string, np+nv),
		crashed: make([]bool, np+nv),
		nbr:     make([][]int, np+nv),
		edges:   make([][]edge, np+nv),
		byID:    make(map[string]int, np+nv),
		nProcs:  np,
		nVars:   nv,
	}
	for k, n := range d.names {
		d.nameIdx[n] = k
	}
	for i := 0; i < np; i++ {
		d.kind[i] = 'P'
		d.ids[i] = sys.ProcIDs[i]
		d.init[i] = sys.ProcInit[i]
		d.nbr[i] = make([]int, len(d.names))
		for k, v := range sys.Nbr[i] {
			d.nbr[i][k] = np + v
		}
	}
	for v := 0; v < nv; v++ {
		s := np + v
		d.kind[s] = 'V'
		d.ids[s] = sys.VarIDs[v]
		d.init[s] = sys.VarInit[v]
	}
	for i := 0; i < np; i++ {
		for k, vs := range d.nbr[i] {
			d.edges[vs] = append(d.edges[vs], edge{i, k})
		}
	}
	for s, id := range d.ids {
		if _, dup := d.byID[id]; dup && d.kind[s] != 0 {
			return nil, fmt.Errorf("%w: duplicate node id %q", ErrSystemShape, id)
		}
		d.byID[id] = s
	}
	dyn, err := partition.NewDyn(&dynStruct{d})
	if err != nil {
		return nil, err
	}
	d.dyn = dyn
	return d, nil
}

// dynStruct adapts DynSystem's slot tables to partition.DynStructure
// with the same key and signature semantics as the static adapter, so
// the incremental partition is comparable class-for-class with the
// Similarity oracle on Snapshot.
type dynStruct struct{ d *DynSystem }

func (st *dynStruct) Len() int         { return len(st.d.kind) }
func (st *dynStruct) Alive(i int) bool { return st.d.kind[i] != 0 }

func (st *dynStruct) InitKey(i int) string {
	d := st.d
	init := d.init[i]
	if d.kind[i] == 'P' {
		if d.crashed[i] {
			init = crashMark + init
		}
		return "P" + strconv.Itoa(len(init)) + ":" + init
	}
	return "V" + strconv.Itoa(len(init)) + ":" + init
}

func (st *dynStruct) Signature(i int, label func(int) int) string {
	d := st.d
	var b strings.Builder
	if d.kind[i] == 'P' {
		for _, vs := range d.nbr[i] {
			fmt.Fprintf(&b, "%d,", label(vs))
		}
		return b.String()
	}
	pairs := make([][2]int, 0, len(d.edges[i]))
	for _, e := range d.edges[i] {
		pairs = append(pairs, [2]int{e.name, label(e.proc)})
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a][0] != pairs[b][0] {
			return pairs[a][0] < pairs[b][0]
		}
		return pairs[a][1] < pairs[b][1]
	})
	switch d.rule {
	case RuleQ:
		for _, p := range pairs {
			fmt.Fprintf(&b, "%d:%d;", p[0], p[1])
		}
	default: // RuleSetS: distinct pairs only
		for k, p := range pairs {
			if k > 0 && p == pairs[k-1] {
				continue
			}
			fmt.Fprintf(&b, "%d:%d;", p[0], p[1])
		}
	}
	return b.String()
}

func (st *dynStruct) AppendSignature(buf []uint64, i int, label func(int) int) []uint64 {
	d := st.d
	if d.kind[i] == 'P' {
		for _, vs := range d.nbr[i] {
			buf = append(buf, uint64(int64(label(vs))))
		}
		return buf
	}
	start := len(buf)
	for _, e := range d.edges[i] {
		buf = append(buf, uint64(int64(e.name)), uint64(int64(label(e.proc))))
	}
	partition.SortTokenPairs(buf[start:])
	if d.rule == RuleQ {
		return buf
	}
	out := start
	for k := start; k < len(buf); k += 2 {
		if k > start && buf[k] == buf[k-2] && buf[k+1] == buf[k-1] {
			continue
		}
		buf[out] = buf[k]
		buf[out+1] = buf[k+1]
		out += 2
	}
	return buf[:out]
}

func (st *dynStruct) Dependents(i int) []int {
	d := st.d
	if d.kind[i] == 'P' {
		return d.nbr[i]
	}
	deps := make([]int, len(d.edges[i]))
	for k, e := range d.edges[i] {
		deps[k] = e.proc
	}
	return deps
}

// slot returns the slot of an external id of the wanted kind.
func (d *DynSystem) slot(id string, kind byte) (int, error) {
	s, ok := d.byID[id]
	if !ok || d.kind[s] != kind {
		what := "processor"
		if kind == 'V' {
			what = "variable"
		}
		return 0, fmt.Errorf("%w: %s %q", system.ErrUnknownNode, what, id)
	}
	return s, nil
}

func (d *DynSystem) allocSlot() int {
	if n := len(d.free); n > 0 {
		s := d.free[n-1]
		d.free = d.free[:n-1]
		return s
	}
	d.kind = append(d.kind, 0)
	d.ids = append(d.ids, "")
	d.init = append(d.init, "")
	d.crashed = append(d.crashed, false)
	d.nbr = append(d.nbr, nil)
	d.edges = append(d.edges, nil)
	return len(d.kind) - 1
}

func (d *DynSystem) dropEdge(v, p, name int) {
	es := d.edges[v]
	for k, e := range es {
		if e.proc == p && e.name == name {
			es[k] = es[len(es)-1]
			d.edges[v] = es[:len(es)-1]
			return
		}
	}
	panic("core: variable edge missing")
}

// apply performs one mutation, appending every slot whose alive-status,
// initial key, or environment changed to touched (the partition.Dyn
// contract: dead slots no longer report dependents, so their former
// neighbors must be listed here).
func (d *DynSystem) apply(m Mutation, touched []int) ([]int, error) {
	switch m.Op {
	case OpAddVar:
		if _, dup := d.byID[m.Var]; dup {
			return touched, fmt.Errorf("%w: duplicate id %q", ErrSystemShape, m.Var)
		}
		s := d.allocSlot()
		d.kind[s] = 'V'
		d.ids[s] = m.Var
		d.init[s] = m.Init
		d.edges[s] = d.edges[s][:0]
		d.byID[m.Var] = s
		d.nVars++
		return append(touched, s), nil

	case OpAddProc:
		if _, dup := d.byID[m.Proc]; dup {
			return touched, fmt.Errorf("%w: duplicate id %q", ErrSystemShape, m.Proc)
		}
		if len(m.Bind) != len(d.names) {
			return touched, fmt.Errorf("%w: proc %q binds %d names, system has %d",
				ErrSystemShape, m.Proc, len(m.Bind), len(d.names))
		}
		binds := make([]int, len(m.Bind))
		for k, vid := range m.Bind {
			vs, err := d.slot(vid, 'V')
			if err != nil {
				return touched, err
			}
			binds[k] = vs
		}
		s := d.allocSlot()
		d.kind[s] = 'P'
		d.ids[s] = m.Proc
		d.init[s] = m.Init
		d.crashed[s] = false
		d.nbr[s] = append(d.nbr[s][:0], binds...)
		d.byID[m.Proc] = s
		d.nProcs++
		touched = append(touched, s)
		for k, vs := range binds {
			d.edges[vs] = append(d.edges[vs], edge{s, k})
			touched = append(touched, vs)
		}
		return touched, nil

	case OpRemoveProc:
		s, err := d.slot(m.Proc, 'P')
		if err != nil {
			return touched, err
		}
		if d.nProcs == 1 {
			return touched, fmt.Errorf("%w: cannot remove last processor %q", system.ErrNoProcessors, m.Proc)
		}
		for k, vs := range d.nbr[s] {
			d.dropEdge(vs, s, k)
			touched = append(touched, vs)
		}
		for _, vs := range d.nbr[s] {
			if len(d.edges[vs]) == 0 && d.kind[vs] == 'V' {
				d.kind[vs] = 0
				delete(d.byID, d.ids[vs])
				d.free = append(d.free, vs)
				d.nVars--
			}
		}
		d.kind[s] = 0
		d.crashed[s] = false
		delete(d.byID, d.ids[s])
		d.free = append(d.free, s)
		d.nProcs--
		return append(touched, s), nil

	case OpRemoveVar:
		s, err := d.slot(m.Var, 'V')
		if err != nil {
			return touched, err
		}
		if len(d.edges[s]) > 0 {
			return touched, fmt.Errorf("%w: %q", system.ErrVarInUse, m.Var)
		}
		d.kind[s] = 0
		delete(d.byID, d.ids[s])
		d.free = append(d.free, s)
		d.nVars--
		return append(touched, s), nil

	case OpRewire:
		s, err := d.slot(m.Proc, 'P')
		if err != nil {
			return touched, err
		}
		vs, err := d.slot(m.Var, 'V')
		if err != nil {
			return touched, err
		}
		k, ok := d.nameIdx[system.Name(m.Name)]
		if !ok {
			return touched, fmt.Errorf("%w: %q", system.ErrUnknownName, m.Name)
		}
		old := d.nbr[s][k]
		if old == vs {
			return touched, nil
		}
		d.dropEdge(old, s, k)
		d.nbr[s][k] = vs
		d.edges[vs] = append(d.edges[vs], edge{s, k})
		return append(touched, s, old, vs), nil

	case OpCrash, OpRestart:
		s, err := d.slot(m.Proc, 'P')
		if err != nil {
			return touched, err
		}
		want := m.Op == OpCrash
		if d.crashed[s] == want {
			return touched, nil
		}
		d.crashed[s] = want
		return append(touched, s), nil

	case OpSetProcInit:
		s, err := d.slot(m.Proc, 'P')
		if err != nil {
			return touched, err
		}
		if d.init[s] == m.Init {
			return touched, nil
		}
		d.init[s] = m.Init
		return append(touched, s), nil

	case OpSetVarInit:
		s, err := d.slot(m.Var, 'V')
		if err != nil {
			return touched, err
		}
		if d.init[s] == m.Init {
			return touched, nil
		}
		d.init[s] = m.Init
		return append(touched, s), nil
	}
	return touched, fmt.Errorf("%w: unknown mutation op %q", ErrSystemShape, m.Op)
}

// Apply performs the batch as ONE churn event: all mutations mutate the
// topology, then a single incremental relabel settles the partition.
// Composite events (a ring splice is add_var+add_proc+rewire) therefore
// pay one settle, and intermediate states never need to validate — only
// the final state does. A variable left unreferenced when the batch
// ends is cascade-removed (the compact System forbids orphans), so add
// a variable and its first binder in the same batch. On error the
// topology may be partially edited but the labeling is still settled
// consistently against it.
func (d *DynSystem) Apply(muts ...Mutation) (partition.UpdateStats, error) {
	var touched []int
	var firstErr error
	ops := make([]string, 0, len(muts))
	for _, m := range muts {
		var err error
		touched, err = d.apply(m, touched)
		if err != nil {
			firstErr = err
			break
		}
		ops = append(ops, string(m.Op))
	}
	// Orphan sweep: only a var whose edge set changed can end the batch
	// unreferenced, and every such var is already in touched.
	for _, s := range touched {
		if d.kind[s] == 'V' && len(d.edges[s]) == 0 {
			d.kind[s] = 0
			delete(d.byID, d.ids[s])
			d.free = append(d.free, s)
			d.nVars--
		}
	}
	start := time.Time{}
	if d.rec.Enabled() {
		start = time.Now()
	}
	st := d.dyn.Update(touched)
	if d.rec.Enabled() {
		d.rec.Relabel("dyn", st.Touched, st.Splits, st.Merges, strings.Join(ops, "+"))
		d.rec.Count("dyn.events", 1)
		d.rec.Count("dyn.splits", int64(st.Splits))
		d.rec.Count("dyn.merges", int64(st.Merges))
		d.rec.Count("dyn.touched_classes", int64(st.TouchedClasses))
		d.rec.Count("dyn.relabeled", int64(st.Relabeled))
		if st.Rebuild {
			d.rec.Count("dyn.rebuilds", 1)
		}
		d.rec.Observe("dyn.update", time.Since(start))
	}
	return st, firstErr
}

// Convenience single-mutation wrappers; each is one churn event.

func (d *DynSystem) AddVar(id, init string) (partition.UpdateStats, error) {
	return d.Apply(Mutation{Op: OpAddVar, Var: id, Init: init})
}

func (d *DynSystem) AddProc(id, init string, bind []string) (partition.UpdateStats, error) {
	return d.Apply(Mutation{Op: OpAddProc, Proc: id, Init: init, Bind: bind})
}

func (d *DynSystem) RemoveProc(id string) (partition.UpdateStats, error) {
	return d.Apply(Mutation{Op: OpRemoveProc, Proc: id})
}

func (d *DynSystem) RemoveVar(id string) (partition.UpdateStats, error) {
	return d.Apply(Mutation{Op: OpRemoveVar, Var: id})
}

func (d *DynSystem) Rewire(procID string, name system.Name, varID string) (partition.UpdateStats, error) {
	return d.Apply(Mutation{Op: OpRewire, Proc: procID, Name: string(name), Var: varID})
}

// Crash marks the processor crashed: it stays in the topology (its
// variables keep their edges) but its initial key is marked, so it can
// never be similar to a live processor. Restart reverts it — the
// classic merge exerciser.
func (d *DynSystem) Crash(id string) (partition.UpdateStats, error) {
	return d.Apply(Mutation{Op: OpCrash, Proc: id})
}

func (d *DynSystem) Restart(id string) (partition.UpdateStats, error) {
	return d.Apply(Mutation{Op: OpRestart, Proc: id})
}

func (d *DynSystem) SetProcInit(id, init string) (partition.UpdateStats, error) {
	return d.Apply(Mutation{Op: OpSetProcInit, Proc: id, Init: init})
}

func (d *DynSystem) SetVarInit(id, init string) (partition.UpdateStats, error) {
	return d.Apply(Mutation{Op: OpSetVarInit, Var: id, Init: init})
}

// Rule returns the environment rule the engine labels under.
func (d *DynSystem) Rule() Rule { return d.rule }

// Names returns the system's name alphabet (NAMES order).
func (d *DynSystem) Names() []system.Name {
	return append([]system.Name(nil), d.names...)
}

// Bindings returns processor id's bound variable ids in NAMES order.
func (d *DynSystem) Bindings(id string) ([]string, error) {
	s, err := d.slot(id, 'P')
	if err != nil {
		return nil, err
	}
	out := make([]string, len(d.nbr[s]))
	for k, vs := range d.nbr[s] {
		out[k] = d.ids[vs]
	}
	return out, nil
}

// NumProcs returns the live processor count.
func (d *DynSystem) NumProcs() int { return d.nProcs }

// NumVars returns the live variable count.
func (d *DynSystem) NumVars() int { return d.nVars }

// NumClasses returns the current number of similarity classes.
func (d *DynSystem) NumClasses() int { return d.dyn.NumClasses() }

// LastStats returns the work profile of the most recent Apply.
func (d *DynSystem) LastStats() partition.UpdateStats { return d.dyn.LastStats() }

// TotalStats returns accumulated work counters since construction.
func (d *DynSystem) TotalStats() partition.UpdateStats { return d.dyn.TotalStats() }

// HasProc reports whether a live processor has this id.
func (d *DynSystem) HasProc(id string) bool {
	s, ok := d.byID[id]
	return ok && d.kind[s] == 'P'
}

// HasVar reports whether a live variable has this id.
func (d *DynSystem) HasVar(id string) bool {
	s, ok := d.byID[id]
	return ok && d.kind[s] == 'V'
}

// Crashed reports whether processor id is currently crashed.
func (d *DynSystem) Crashed(id string) bool {
	s, ok := d.byID[id]
	return ok && d.kind[s] == 'P' && d.crashed[s]
}

// ProcIDs returns the live processor ids in slot order (stable across
// events for surviving processors).
func (d *DynSystem) ProcIDs() []string {
	out := make([]string, 0, d.nProcs)
	for s, k := range d.kind {
		if k == 'P' {
			out = append(out, d.ids[s])
		}
	}
	return out
}

// VarIDs returns the live variable ids in slot order.
func (d *DynSystem) VarIDs() []string {
	out := make([]string, 0, d.nVars)
	for s, k := range d.kind {
		if k == 'V' {
			out = append(out, d.ids[s])
		}
	}
	return out
}

// Snapshot compacts the live slots into an ordinary immutable System:
// processors and variables in ascending slot order. Crashed processors
// surface with crashMark prefixed to their ProcInit, which is exactly
// what makes Similarity on the snapshot the oracle for the incremental
// labels: the marker refines the initial partition the same way the
// dynamic engine's marked InitKey does.
func (d *DynSystem) Snapshot() *system.System {
	sys := &system.System{
		Names:    append([]system.Name(nil), d.names...),
		ProcIDs:  make([]string, 0, d.nProcs),
		VarIDs:   make([]string, 0, d.nVars),
		Nbr:      make([][]int, 0, d.nProcs),
		ProcInit: make([]string, 0, d.nProcs),
		VarInit:  make([]string, 0, d.nVars),
	}
	varAt := make(map[int]int, d.nVars)
	for s, k := range d.kind {
		if k == 'V' {
			varAt[s] = len(sys.VarIDs)
			sys.VarIDs = append(sys.VarIDs, d.ids[s])
			sys.VarInit = append(sys.VarInit, d.init[s])
		}
	}
	for s, k := range d.kind {
		if k != 'P' {
			continue
		}
		sys.ProcIDs = append(sys.ProcIDs, d.ids[s])
		init := d.init[s]
		if d.crashed[s] {
			init = crashMark + init
		}
		sys.ProcInit = append(sys.ProcInit, init)
		row := make([]int, len(d.nbr[s]))
		for kn, vs := range d.nbr[s] {
			row[kn] = varAt[vs]
		}
		sys.Nbr = append(sys.Nbr, row)
	}
	return sys
}

// Labeling materializes the current incremental labels over Snapshot():
// canonical class numbers in snapshot node order (processors first),
// directly comparable with Similarity(Snapshot(), rule).
func (d *DynSystem) Labeling() *Labeling {
	sys := d.Snapshot()
	lab := &Labeling{
		Sys:        sys,
		ProcLabels: make([]int, 0, d.nProcs),
		VarLabels:  make([]int, 0, d.nVars),
	}
	renum := make(map[int]int)
	canon := func(s int) int {
		c := d.dyn.Label(s)
		n, ok := renum[c]
		if !ok {
			n = len(renum)
			renum[c] = n
		}
		return n
	}
	for s, k := range d.kind {
		if k == 'P' {
			lab.ProcLabels = append(lab.ProcLabels, canon(s))
		}
	}
	for s, k := range d.kind {
		if k == 'V' {
			lab.VarLabels = append(lab.VarLabels, canon(s))
		}
	}
	return lab
}

// ProcLabel returns the canonical-free internal class id of a live
// processor (comparable between two processors at the same instant).
func (d *DynSystem) ProcLabel(id string) (int, error) {
	s, err := d.slot(id, 'P')
	if err != nil {
		return 0, err
	}
	return d.dyn.Label(s), nil
}

// ApplyDiff mutates the topology to match target (by external ids) as
// one churn event. Names must agree. Crash flags of surviving
// processors are preserved; target initial states win. Returns the
// relabel stats of the single settle.
func (d *DynSystem) ApplyDiff(target *system.System) (partition.UpdateStats, error) {
	var zero partition.UpdateStats
	if err := target.Validate(); err != nil {
		return zero, fmt.Errorf("%w: %v", ErrSystemShape, err)
	}
	if len(target.Names) != len(d.names) {
		return zero, fmt.Errorf("%w: target has %d names, engine has %d", ErrSystemShape, len(target.Names), len(d.names))
	}
	for k, n := range target.Names {
		if d.names[k] != n {
			return zero, fmt.Errorf("%w: name %d is %q, engine has %q", ErrSystemShape, k, n, d.names[k])
		}
	}
	var muts []Mutation
	tVar := make(map[string]int, len(target.VarIDs))
	for v, id := range target.VarIDs {
		tVar[id] = v
		if !d.HasVar(id) {
			muts = append(muts, Mutation{Op: OpAddVar, Var: id, Init: target.VarInit[v]})
		} else if s := d.byID[id]; d.init[s] != target.VarInit[v] {
			muts = append(muts, Mutation{Op: OpSetVarInit, Var: id, Init: target.VarInit[v]})
		}
	}
	tProc := make(map[string]int, len(target.ProcIDs))
	for p, id := range target.ProcIDs {
		tProc[id] = p
		bind := make([]string, len(target.Nbr[p]))
		for k, v := range target.Nbr[p] {
			bind[k] = target.VarIDs[v]
		}
		if !d.HasProc(id) {
			muts = append(muts, Mutation{Op: OpAddProc, Proc: id, Init: target.ProcInit[p], Bind: bind})
			continue
		}
		s := d.byID[id]
		for k, vid := range bind {
			if d.ids[d.nbr[s][k]] != vid {
				muts = append(muts, Mutation{Op: OpRewire, Proc: id, Name: string(d.names[k]), Var: vid})
			}
		}
		if d.init[s] != target.ProcInit[p] {
			muts = append(muts, Mutation{Op: OpSetProcInit, Proc: id, Init: target.ProcInit[p]})
		}
	}
	// Removals after adds/rewires so no binding ever dangles; procs
	// before vars so cascades free references first. A departing var
	// bound by a departing proc is cascade-removed by OpRemoveProc (by
	// removal time its other references are gone: surviving procs'
	// rewires land first and only target target vars), so explicit
	// OpRemoveVar is emitted only for absent vars no removal cascades.
	cascaded := make(map[string]bool)
	for s, k := range d.kind {
		if k == 'P' {
			if _, keep := tProc[d.ids[s]]; !keep {
				muts = append(muts, Mutation{Op: OpRemoveProc, Proc: d.ids[s]})
				for _, vs := range d.nbr[s] {
					cascaded[d.ids[vs]] = true
				}
			}
		}
	}
	for s, k := range d.kind {
		if k == 'V' {
			if _, keep := tVar[d.ids[s]]; !keep && !cascaded[d.ids[s]] {
				muts = append(muts, Mutation{Op: OpRemoveVar, Var: d.ids[s]})
			}
		}
	}
	st, err := d.Apply(muts...)
	if err != nil {
		return st, err
	}
	return st, nil
}

// Check audits the engine's internal invariants (slot/edge symmetry and
// the partition invariants); tests and the fuzzer call it after every
// event.
func (d *DynSystem) Check() error {
	np, nv := 0, 0
	for s, k := range d.kind {
		switch k {
		case 'P':
			np++
			if len(d.nbr[s]) != len(d.names) {
				return fmt.Errorf("core: proc slot %d binds %d names", s, len(d.nbr[s]))
			}
			for kn, vs := range d.nbr[s] {
				if d.kind[vs] != 'V' {
					return fmt.Errorf("core: proc slot %d name %d -> non-var slot %d", s, kn, vs)
				}
				found := false
				for _, e := range d.edges[vs] {
					if e.proc == s && e.name == kn {
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("core: missing reverse edge %d->%d", s, vs)
				}
			}
		case 'V':
			nv++
			for _, e := range d.edges[s] {
				if d.kind[e.proc] != 'P' || d.nbr[e.proc][e.name] != s {
					return fmt.Errorf("core: stale edge on var slot %d: %+v", s, e)
				}
			}
		}
	}
	if np != d.nProcs || nv != d.nVars {
		return fmt.Errorf("core: counts drifted: %d/%d procs, %d/%d vars", np, d.nProcs, nv, d.nVars)
	}
	return d.dyn.Check()
}
