package core

import (
	"fmt"
	"testing"

	"simsym/internal/system"
)

// churnFamily decodes byte b into a seed topology: every shipped family
// is reachable, so the fuzzer starts traces from each of them.
func churnFamily(b, size byte) (*system.System, error) {
	n := 2 + int(size)%10
	switch b % 9 {
	case 0:
		return system.Fig1(), nil
	case 1:
		return system.Fig2(), nil
	case 2:
		return system.Fig3(), nil
	case 3:
		return system.Ring(n)
	case 4:
		return system.Dining(n)
	case 5:
		return system.DiningFlipped(4 + 2*(n%3))
	case 6:
		return system.Star(n)
	case 7:
		return system.Tree(n)
	default:
		return system.QOverSWitness(), nil
	}
}

// FuzzIncrementalSimilarity decodes arbitrary bytes into a churn trace —
// crash, restart, clone-join, leave, rewire, re-init — over a fuzzer-
// chosen topology family and rule, and after EVERY event cross-checks
// the incremental labels against a full Similarity recompute of the
// snapshot. Any divergence between the dynamic split/merge repair and
// the static oracle is a crash.
func FuzzIncrementalSimilarity(f *testing.F) {
	for fam := byte(0); fam < 9; fam++ {
		f.Add([]byte{fam, 5, 0, 0, 1, 1, 2, 2, 3, 0, 4, 7, 1, 3})
		f.Add([]byte{fam, 3, 1, 2, 0, 3, 9, 0, 0, 5, 1, 6, 2})
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		sys, err := churnFamily(data[0], data[1])
		if err != nil {
			t.Fatalf("family: %v", err)
		}
		rule := RuleQ
		if data[2]%2 == 1 {
			rule = RuleSetS
		}
		d, err := NewDynSystem(sys, rule, Config{})
		if err != nil {
			t.Fatalf("engine: %v", err)
		}
		check := func() {
			t.Helper()
			if err := d.Check(); err != nil {
				t.Fatalf("invariant audit: %v", err)
			}
			got := d.Labeling()
			want, err := Similarity(got.Sys, rule)
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			for i := range want.ProcLabels {
				if got.ProcLabels[i] != want.ProcLabels[i] {
					t.Fatalf("divergence at proc %s: %v vs %v", got.Sys.ProcIDs[i], got.ProcLabels, want.ProcLabels)
				}
			}
			for v := range want.VarLabels {
				if got.VarLabels[v] != want.VarLabels[v] {
					t.Fatalf("divergence at var %s: %v vs %v", got.Sys.VarIDs[v], got.VarLabels, want.VarLabels)
				}
			}
		}
		check()

		events := data[3:]
		if len(events) > 60 {
			events = events[:60] // keep the oracle affordable
		}
		joined := 0
		for k := 0; k+1 < len(events); k += 2 {
			op, arg := events[k], events[k+1]
			procs := d.ProcIDs()
			p := procs[int(arg)%len(procs)]
			switch op % 7 {
			case 0:
				if _, err := d.Crash(p); err != nil {
					t.Fatalf("crash %s: %v", p, err)
				}
			case 1:
				if _, err := d.Restart(p); err != nil {
					t.Fatalf("restart %s: %v", p, err)
				}
			case 2: // clone-join: adopt p's bindings wholesale
				bind, err := d.Bindings(p)
				if err != nil {
					t.Fatal(err)
				}
				id := fmt.Sprintf("j%d", joined)
				joined++
				if _, err := d.AddProc(id, "0", bind); err != nil {
					t.Fatalf("join %s: %v", id, err)
				}
			case 3: // leave (never the last processor)
				if d.NumProcs() > 1 {
					if _, err := d.RemoveProc(p); err != nil {
						t.Fatalf("leave %s: %v", p, err)
					}
				}
			case 4: // rewire p's (arg-chosen) name to an (arg-chosen) var
				names := d.Names()
				name := names[int(arg)%len(names)]
				vars := d.VarIDs()
				v := vars[int(arg/3)%len(vars)]
				if _, err := d.Rewire(p, name, v); err != nil {
					t.Fatalf("rewire %s: %v", p, err)
				}
			case 5:
				if _, err := d.SetProcInit(p, fmt.Sprintf("s%d", arg%3)); err != nil {
					t.Fatalf("set init %s: %v", p, err)
				}
			default:
				vars := d.VarIDs()
				v := vars[int(arg)%len(vars)]
				if _, err := d.SetVarInit(v, fmt.Sprintf("w%d", arg%3)); err != nil {
					t.Fatalf("set var init %s: %v", v, err)
				}
			}
			check()
		}
	})
}
