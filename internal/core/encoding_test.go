package core

import (
	"fmt"
	"math/rand"
	"testing"

	"simsym/internal/system"
)

// TestInitKeyInjective pins the collision-proofing of InitKey: the
// length-prefixed encoding must keep every distinct (kind, init) pair
// distinct, even when initial states contain the encoding's own
// separator bytes or look like encoded keys themselves.
func TestInitKeyInjective(t *testing.T) {
	inits := []string{
		"", "a", "ab", "a|b", "a#b", ":", "::", "1:a", "2:ab",
		"P", "V", "P|x", "V|x", "P1:a", "3:1:a", "0:",
	}
	sys := &system.System{
		Names:    []system.Name{"n"},
		ProcIDs:  make([]string, len(inits)),
		VarIDs:   make([]string, len(inits)),
		Nbr:      make([][]int, len(inits)),
		ProcInit: append([]string(nil), inits...),
		VarInit:  append([]string(nil), inits...),
	}
	for i := range inits {
		sys.ProcIDs[i] = fmt.Sprintf("p%d", i)
		sys.VarIDs[i] = fmt.Sprintf("v%d", i)
		sys.Nbr[i] = []int{i}
	}
	st, err := newStructure(sys, RuleQ)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int)
	for i := 0; i < sys.NumNodes(); i++ {
		key := st.InitKey(i)
		if j, dup := seen[key]; dup {
			t.Errorf("nodes %d and %d collide on InitKey %q", j, i, key)
		}
		seen[key] = i
	}
	// Same init, same kind must still coincide.
	sys2 := sys.Clone()
	sys2.ProcInit[1] = sys2.ProcInit[0]
	st2, err := newStructure(sys2, RuleQ)
	if err != nil {
		t.Fatal(err)
	}
	if st2.InitKey(0) != st2.InitKey(1) {
		t.Error("equal inits produced different InitKeys")
	}
}

// TestSimilaritySeparatorAdversarialInits drives the separator
// adversaries through the full pipeline: on a symmetric ring where only
// initial states can distinguish processors, inits that differ only in
// separator placement must yield different labels, and equal inits equal
// labels — under every driver.
func TestSimilaritySeparatorAdversarialInits(t *testing.T) {
	s, err := system.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	// Pairwise-distinct adversarial inits that concatenation-style
	// encodings are prone to conflate.
	s.ProcInit = []string{"a", "a|b", "a#b", "1:a", "", "a"}
	for _, rule := range []Rule{RuleQ, RuleSetS} {
		lab, err := Similarity(s, rule)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 5; j++ {
				if lab.ProcLabels[i] == lab.ProcLabels[j] {
					t.Errorf("rule %d: procs %d (%q) and %d (%q) conflated",
						rule, i, s.ProcInit[i], j, s.ProcInit[j])
				}
			}
		}
		if ok, err := IsStable(s, rule, lab); err != nil || !ok {
			t.Errorf("rule %d: similarity labeling not stable (ok=%v err=%v)", rule, ok, err)
		}
	}
}

// randomSystem wraps system.RandomSystem keeping Vars attachable
// (every variable needs one of the Procs×Names edge slots).
func randomSystem(rng *rand.Rand, procs, names, initStates int) (*system.System, error) {
	return system.RandomSystem(rng, system.RandomOpts{
		Procs: procs, Names: names, InitStates: initStates,
		Vars: 1 + rng.Intn(procs*names),
	})
}

// shiftLabeling returns a copy of lab with the given injective
// per-kind relabelings applied.
func shiftLabeling(lab *Labeling, proc, vari func(int) int) *Labeling {
	out := &Labeling{
		Sys:        lab.Sys,
		ProcLabels: make([]int, len(lab.ProcLabels)),
		VarLabels:  make([]int, len(lab.VarLabels)),
	}
	for i, l := range lab.ProcLabels {
		out.ProcLabels[i] = proc(l)
	}
	for i, l := range lab.VarLabels {
		out.VarLabels[i] = vari(l)
	}
	return out
}

// TestIsStableRelabelInvariant pins the tagged (kind, label) encoding:
// IsStable's verdict must be invariant under any injective relabeling of
// the label values, including ranges that a fixed-offset scheme (the old
// "+1_000_000 for variables") cannot keep disjoint — processor labels
// sitting exactly one million above variable labels, and overlapping
// proc/var ranges.
func TestIsStableRelabelInvariant(t *testing.T) {
	shifts := []struct {
		name       string
		proc, vari func(int) int
	}{
		{"identity", func(l int) int { return l }, func(l int) int { return l }},
		{"procs-at-var-offset", func(l int) int { return l + 1_000_000 }, func(l int) int { return l }},
		{"vars-at-proc-range", func(l int) int { return l }, func(l int) int { return l * 2 }},
		{"both-huge", func(l int) int { return l + 1_000_000 }, func(l int) int { return l + 2_000_000 }},
	}
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		s, err := randomSystem(rng, 2+rng.Intn(8), 1+rng.Intn(3), 1+rng.Intn(3))
		if err != nil {
			t.Fatal(err)
		}
		for _, rule := range []Rule{RuleQ, RuleSetS} {
			// Θ itself (stable) and a random coarsening (usually not).
			theta, err := Similarity(s, rule)
			if err != nil {
				t.Fatal(err)
			}
			coarse := shiftLabeling(theta,
				func(l int) int { return l % max(1, rng.Intn(4)+1) },
				func(l int) int { return l % max(1, rng.Intn(4)+1) })
			for _, lab := range []*Labeling{theta, coarse} {
				want, err := IsStable(s, rule, lab)
				if err != nil {
					t.Fatal(err)
				}
				for _, sh := range shifts {
					got, err := IsStable(s, rule, shiftLabeling(lab, sh.proc, sh.vari))
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Errorf("trial %d rule %d shift %s: IsStable flipped %v -> %v",
							trial, rule, sh.name, want, got)
					}
				}
			}
		}
	}
}

// labelsKey renders a labeling for exact comparison; fromPartition
// canonicalizes labels, so driver outputs are comparable verbatim.
func labelsKey(lab *Labeling) string {
	return fmt.Sprint(lab.ProcLabels, lab.VarLabels)
}

// TestDriversMatchNaiveOracle is the interned-pipeline cross-check: on
// rings, marked rings, stars, and randomized systems, the interned
// worklist driver, the Hopcroft driver, and the parallel drivers must
// produce exactly the labeling of the naive string-signature oracle,
// under both environment rules.
func TestDriversMatchNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var cases []*system.System
	for _, n := range []int{1, 2, 3, 6, 9} {
		ring, err := system.Ring(n)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, ring)
		marked := ring.Clone()
		marked.ProcInit[0] = "leader"
		cases = append(cases, marked)
		star, err := system.Star(n)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, star)
	}
	for trial := 0; trial < 25; trial++ {
		s, err := randomSystem(rng, 1+rng.Intn(12), 1+rng.Intn(3), 1+rng.Intn(4))
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, s)
	}
	for ci, s := range cases {
		for _, rule := range []Rule{RuleQ, RuleSetS} {
			oracle, err := SimilarityNaive(s, rule)
			if err != nil {
				t.Fatal(err)
			}
			want := labelsKey(oracle)
			got := map[string]*Labeling{}
			if got["Similarity"], err = Similarity(s, rule); err != nil {
				t.Fatal(err)
			}
			if got["SimilarityWorklist"], err = SimilarityWorklist(s, rule); err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				got[fmt.Sprintf("SimilarityParallel(%d)", workers)], err = SimilarityParallel(s, rule, workers)
				if err != nil {
					t.Fatal(err)
				}
			}
			for name, lab := range got {
				if labelsKey(lab) != want {
					t.Errorf("case %d rule %d: %s = %v, oracle %v",
						ci, rule, name, labelsKey(lab), want)
				}
			}
			if ok, err := IsStable(s, rule, oracle); err != nil || !ok {
				t.Errorf("case %d rule %d: oracle labeling unstable (ok=%v err=%v)", ci, rule, ok, err)
			}
		}
	}
}
