package core

import (
	"errors"
	"testing"

	"simsym/internal/obs"
	"simsym/internal/system"
)

// assertDynOracle checks the incremental labels against a full
// Similarity recompute on the snapshot — equivalence-class identity,
// the PR's central acceptance criterion — plus the engine's invariant
// audit.
func assertDynOracle(t *testing.T, d *DynSystem) {
	t.Helper()
	if err := d.Check(); err != nil {
		t.Fatalf("invariant audit: %v", err)
	}
	got := d.Labeling()
	want, err := Similarity(got.Sys, d.Rule())
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	for i := range want.ProcLabels {
		if got.ProcLabels[i] != want.ProcLabels[i] {
			t.Fatalf("proc %s: incremental %d != oracle %d\ngot  %v\nwant %v",
				got.Sys.ProcIDs[i], got.ProcLabels[i], want.ProcLabels[i], got.ProcLabels, want.ProcLabels)
		}
	}
	for v := range want.VarLabels {
		if got.VarLabels[v] != want.VarLabels[v] {
			t.Fatalf("var %s: incremental %d != oracle %d\ngot  %v\nwant %v",
				got.Sys.VarIDs[v], got.VarLabels[v], want.VarLabels[v], got.VarLabels, want.VarLabels)
		}
	}
}

func TestDynSystemRingSpliceChurn(t *testing.T) {
	sys, err := system.Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynSystem(sys, RuleQ, Config{})
	if err != nil {
		t.Fatal(err)
	}
	assertDynOracle(t, d)
	if d.NumClasses() != 2 { // all procs alike, all vars alike
		t.Fatalf("ring classes = %d, want 2", d.NumClasses())
	}

	// Splice join between p0 and p1: one composite event, and because
	// the 9-ring is just as symmetric as the 8-ring, the certificate
	// should spare the merge pass and nothing should split.
	st, err := d.Apply(
		Mutation{Op: OpAddVar, Var: "vx", Init: "0"},
		Mutation{Op: OpAddProc, Proc: "px", Init: "0", Bind: []string{"v0", "vx"}},
		Mutation{Op: OpRewire, Proc: "p1", Name: "left", Var: "vx"},
	)
	if err != nil {
		t.Fatal(err)
	}
	assertDynOracle(t, d)
	if d.NumClasses() != 2 || d.NumProcs() != 9 {
		t.Fatalf("after splice: %d classes, %d procs", d.NumClasses(), d.NumProcs())
	}
	if st.Splits != 0 {
		t.Fatalf("symmetric splice split %d classes: %+v", st.Splits, st)
	}

	// Splice leave: rewire around px, drop it; vx cascades away.
	if _, err := d.Apply(
		Mutation{Op: OpRewire, Proc: "p1", Name: "left", Var: "v0"},
		Mutation{Op: OpRemoveProc, Proc: "px"},
	); err != nil {
		t.Fatal(err)
	}
	assertDynOracle(t, d)
	if d.NumProcs() != 8 || d.NumVars() != 8 || d.HasVar("vx") {
		t.Fatalf("unsplice left %d procs %d vars", d.NumProcs(), d.NumVars())
	}

	// Crash fully separates a ring (the marked-ring theorem), restart
	// must merge every distance class back together.
	if _, err := d.Crash("p3"); err != nil {
		t.Fatal(err)
	}
	assertDynOracle(t, d)
	if !d.Crashed("p3") || d.NumClasses() <= 2 {
		t.Fatalf("crash did not separate: %d classes", d.NumClasses())
	}
	st, err = d.Restart("p3")
	if err != nil {
		t.Fatal(err)
	}
	assertDynOracle(t, d)
	if d.NumClasses() != 2 {
		t.Fatalf("restart did not re-coarsen: %d classes", d.NumClasses())
	}
	if st.Merges == 0 && !st.Rebuild {
		t.Fatalf("restart produced no merges: %+v", st)
	}
}

// TestDynSystemAllFamilies drives a deterministic churn trace over every
// shipped topology family under both rules, cross-checking the oracle
// after every single event (the -race -count=2 acceptance leg).
func TestDynSystemAllFamilies(t *testing.T) {
	families := map[string]func() (*system.System, error){
		"fig1":          func() (*system.System, error) { return system.Fig1(), nil },
		"fig2":          func() (*system.System, error) { return system.Fig2(), nil },
		"fig3":          func() (*system.System, error) { return system.Fig3(), nil },
		"ring6":         func() (*system.System, error) { return system.Ring(6) },
		"dining5":       func() (*system.System, error) { return system.Dining(5) },
		"diningFlipped": func() (*system.System, error) { return system.DiningFlipped(6) },
		"star4":         func() (*system.System, error) { return system.Star(4) },
		"tree7":         func() (*system.System, error) { return system.Tree(7) },
		"qOverS":        func() (*system.System, error) { return system.QOverSWitness(), nil },
	}
	for name, build := range families {
		for _, rule := range []Rule{RuleQ, RuleSetS} {
			t.Run(name+"/"+rule.String(), func(t *testing.T) {
				sys, err := build()
				if err != nil {
					t.Fatal(err)
				}
				d, err := NewDynSystem(sys, rule, Config{})
				if err != nil {
					t.Fatal(err)
				}
				assertDynOracle(t, d)

				procs := d.ProcIDs()
				first, last := procs[0], procs[len(procs)-1]

				step := func(what string, _ interface{}, err error) {
					t.Helper()
					if err != nil {
						t.Fatalf("%s: %v", what, err)
					}
					assertDynOracle(t, d)
				}
				var st interface{}
				var err2 error

				st, err2 = d.Crash(first)
				step("crash", st, err2)
				st, err2 = d.Restart(first)
				step("restart", st, err2)

				// Clone-join: a new processor with the last processor's
				// exact bindings; symmetric families should absorb it.
				bind, err := d.Bindings(last)
				if err != nil {
					t.Fatal(err)
				}
				st, err2 = d.AddProc("zz", "0", bind)
				step("clone-join", st, err2)

				st, err2 = d.SetProcInit(first, "marked")
				step("mark", st, err2)
				st, err2 = d.SetVarInit(bind[0], "markedvar")
				step("markvar", st, err2)

				st, err2 = d.Rewire("zz", d.Names()[0], bind[len(bind)-1])
				step("rewire", st, err2)

				st, err2 = d.RemoveProc("zz")
				step("leave", st, err2)

				st, err2 = d.SetProcInit(first, sys.ProcInit[0])
				step("unmark", st, err2)
			})
		}
	}
}

func TestDynSystemApplyDiff(t *testing.T) {
	sys, err := system.Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynSystem(sys, RuleQ, Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Hot-reload to a bigger ring: same name alphabet, grown population.
	target, err := system.Ring(9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ApplyDiff(target); err != nil {
		t.Fatal(err)
	}
	assertDynOracle(t, d)
	if d.NumProcs() != 9 || d.NumClasses() != 2 {
		t.Fatalf("after grow: %d procs %d classes", d.NumProcs(), d.NumClasses())
	}

	// Shrink back down with a marked processor.
	target, err = system.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	target.ProcInit[2] = "leader"
	if _, err := d.ApplyDiff(target); err != nil {
		t.Fatal(err)
	}
	assertDynOracle(t, d)
	if d.NumProcs() != 4 || d.NumClasses() <= 2 {
		t.Fatalf("after shrink+mark: %d procs %d classes", d.NumProcs(), d.NumClasses())
	}

	// Mismatched name alphabet must be rejected.
	tree, err := system.Tree(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ApplyDiff(tree); !errors.Is(err, ErrSystemShape) {
		t.Fatalf("name mismatch err = %v, want ErrSystemShape", err)
	}
}

func TestDynSystemErrors(t *testing.T) {
	sys := system.Fig1()
	d, err := NewDynSystem(sys, RuleQ, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Crash("ghost"); !errors.Is(err, system.ErrUnknownNode) {
		t.Fatalf("crash ghost: %v", err)
	}
	if _, err := d.AddProc("p", "0", []string{"v"}); !errors.Is(err, ErrSystemShape) {
		t.Fatalf("dup proc: %v", err)
	}
	if _, err := d.AddProc("p9", "0", []string{"v", "v"}); !errors.Is(err, ErrSystemShape) {
		t.Fatalf("bad bind arity: %v", err)
	}
	if _, err := d.RemoveVar("v"); !errors.Is(err, system.ErrVarInUse) {
		t.Fatalf("remove bound var: %v", err)
	}
	if _, err := d.RemoveProc("p"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RemoveProc("q"); !errors.Is(err, system.ErrNoProcessors) {
		t.Fatalf("remove last proc: %v", err)
	}
	if _, err := d.Rewire("q", "nope", "v"); !errors.Is(err, system.ErrUnknownName) {
		t.Fatalf("rewire bad name: %v", err)
	}
	// Engine still consistent after all the rejected edits.
	assertDynOracle(t, d)
	if _, err := NewDynSystem(sys, Rule(99), Config{}); !errors.Is(err, ErrBadRule) {
		t.Fatalf("bad rule: %v", err)
	}
}

// TestDynSystemObsCounters pins the satellite contract: relabel events
// and dyn.* counters flow when a recorder is attached.
func TestDynSystemObsCounters(t *testing.T) {
	sys, err := system.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRing(64)
	rec := obs.New(ring)
	d, err := NewDynSystem(sys, RuleQ, Config{Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Crash("p0"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Restart("p0"); err != nil {
		t.Fatal(err)
	}
	events := ring.Events()
	found := 0
	for _, e := range events {
		if e.Kind.String() == "relabel" {
			found++
			if e.Name != "dyn" {
				t.Fatalf("relabel driver = %q", e.Name)
			}
		}
	}
	if found != 2 {
		t.Fatalf("relabel events = %d, want 2", found)
	}
}
