// Package core implements similarity labelings, the central contribution
// of Johnson & Schneider (PODC 1985).
//
// A schedule causes nodes to "behave similarly" if it makes them have the
// same state at the same time infinitely often, for any program; nodes are
// similar if some schedule causes them to behave similarly. The paper
// computes the similarity labeling Θ — the coarsest labeling in which
// same-labeled nodes are similar — by partition refinement over node
// environments (Algorithm 1, Theorems 4 and 5).
//
// The environment rule depends on the instruction set:
//
//   - RuleQ (instruction set Q, and bounded-fair L via relabeled
//     families): a variable's environment counts, for every name n and
//     every processor label α, how many n-neighbors labeled α it has —
//     peek returns subvalue multisets, so neighbor counts are
//     observable.
//   - RuleSetS (instruction set S): writes overwrite, so only the set of
//     neighbor labels is observable; a variable's environment records,
//     per name, the set of labels of its n-neighbors (section 6,
//     "Systems in S").
//
// Processor environments are the same under both rules: the label of the
// n-neighbor for each name n (condition (2) of section 4), plus the
// initial state (condition (1)).
package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"simsym/internal/obs"
	"simsym/internal/partition"
	"simsym/internal/system"
)

// Rule selects the environment rule used during refinement.
type Rule int

// Environment rules.
const (
	// RuleQ uses multiset (counted) variable environments, matching
	// instruction set Q.
	RuleQ Rule = iota + 1
	// RuleSetS uses set-based variable environments, matching
	// instruction set S (both fair and bounded-fair; the two differ in
	// the decision layer, not the labeling).
	RuleSetS
)

// String implements fmt.Stringer.
func (r Rule) String() string {
	switch r {
	case RuleQ:
		return "Q"
	case RuleSetS:
		return "setS"
	default:
		return fmt.Sprintf("Rule(%d)", int(r))
	}
}

// Sentinel errors.
var (
	ErrBadRule      = errors.New("core: unknown environment rule")
	ErrSystemShape  = errors.New("core: invalid system")
	ErrLabelingSize = errors.New("core: labeling does not match system")
)

// Labeling is a similarity (or candidate) labeling of a system's nodes.
// Processor p has label ProcLabels[p]; variable v has label VarLabels[v].
// Labels of processors and variables never coincide semantically, but the
// integer spaces may overlap only across kinds, never within one.
type Labeling struct {
	Sys        *system.System
	ProcLabels []int
	VarLabels  []int
}

// structure adapts a system + rule to partition.Structure. Node indexing:
// processors are 0..NP-1, variables NP..NP+NV-1.
type structure struct {
	sys  *system.System
	rule Rule
	vn   [][]system.Edge
}

func (st *structure) Len() int { return st.sys.NumNodes() }

func (st *structure) InitKey(i int) string {
	// Kind tag plus length-prefixed initial state: the length field runs
	// to the first ':', then exactly that many bytes follow, so an
	// initial state containing separator bytes can never shift the frame
	// and collide with another node's key.
	np := st.sys.NumProcs()
	if i < np {
		init := st.sys.ProcInit[i]
		return "P" + strconv.Itoa(len(init)) + ":" + init
	}
	init := st.sys.VarInit[i-np]
	return "V" + strconv.Itoa(len(init)) + ":" + init
}

func (st *structure) Signature(i int, label func(int) int) string {
	np := st.sys.NumProcs()
	var b strings.Builder
	if i < np {
		// Condition (2): the labels of the n-neighbors, in NAMES order.
		for _, v := range st.sys.Nbr[i] {
			fmt.Fprintf(&b, "%d,", label(np+v))
		}
		return b.String()
	}
	v := i - np
	switch st.rule {
	case RuleQ:
		// Condition (3): per (name, processor label), neighbor counts.
		counts := make(map[[2]int]int)
		for _, e := range st.vn[v] {
			counts[[2]int{e.NameIdx, label(e.Proc)}]++
		}
		keys := make([][2]int, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a][0] != keys[b][0] {
				return keys[a][0] < keys[b][0]
			}
			return keys[a][1] < keys[b][1]
		})
		for _, k := range keys {
			fmt.Fprintf(&b, "%d:%d=%d;", k[0], k[1], counts[k])
		}
		return b.String()
	case RuleSetS:
		// Set-based: per name, the set of labels of n-neighbors.
		seen := make(map[[2]int]bool)
		for _, e := range st.vn[v] {
			seen[[2]int{e.NameIdx, label(e.Proc)}] = true
		}
		keys := make([][2]int, 0, len(seen))
		for k := range seen {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a][0] != keys[b][0] {
				return keys[a][0] < keys[b][0]
			}
			return keys[a][1] < keys[b][1]
		})
		for _, k := range keys {
			fmt.Fprintf(&b, "%d:%d;", k[0], k[1])
		}
		return b.String()
	default:
		return "!badrule"
	}
}

// AppendSignature implements partition.TokenStructure: the same
// environment information as Signature, emitted as uint64 tokens into a
// caller-owned buffer. Classes never mix processors and variables
// (InitKey separates the kinds), so the two encodings need no kind tag:
//
//   - processor: the n-neighbor labels in NAMES order (condition (2));
//   - variable under Q: the sorted multiset of (name, label) pairs,
//     which encodes the per-(name, label) counts of condition (3);
//   - variable under S: the sorted set of (name, label) pairs.
//
// Two nodes of one kind produce equal token sequences iff their
// Signature strings are equal. No shared scratch is used, so concurrent
// calls on distinct buffers are safe (the parallel drivers rely on it).
func (st *structure) AppendSignature(buf []uint64, i int, label func(int) int) []uint64 {
	np := st.sys.NumProcs()
	if i < np {
		for _, v := range st.sys.Nbr[i] {
			buf = append(buf, uint64(int64(label(np+v))))
		}
		return buf
	}
	v := i - np
	start := len(buf)
	for _, e := range st.vn[v] {
		buf = append(buf, uint64(int64(e.NameIdx)), uint64(int64(label(e.Proc))))
	}
	partition.SortTokenPairs(buf[start:])
	if st.rule == RuleQ {
		return buf
	}
	// Set rule: writes overwrite, so only distinct pairs are observable.
	out := start
	for k := start; k < len(buf); k += 2 {
		if k > start && buf[k] == buf[out-2] && buf[k+1] == buf[out-1] {
			continue
		}
		buf[out], buf[out+1] = buf[k], buf[k+1]
		out += 2
	}
	return buf[:out]
}

// OutEdges implements partition.CountStructure for the Q (counting)
// rule: a processor depends on its n-neighbor through an edge tagged by
// the name index, and a variable depends on each incident processor the
// same way. The multiset of tags into a class is exactly the paper's
// environment conditions (2) and (3).
func (st *structure) OutEdges(i int) []partition.TaggedEdge {
	np := st.sys.NumProcs()
	if i < np {
		out := make([]partition.TaggedEdge, 0, len(st.sys.Nbr[i]))
		for j, v := range st.sys.Nbr[i] {
			out = append(out, partition.TaggedEdge{To: np + v, Tag: j})
		}
		return out
	}
	v := i - np
	out := make([]partition.TaggedEdge, 0, len(st.vn[v]))
	for _, e := range st.vn[v] {
		out = append(out, partition.TaggedEdge{To: e.Proc, Tag: e.NameIdx})
	}
	return out
}

func (st *structure) Dependents(i int) []int {
	np := st.sys.NumProcs()
	if i < np {
		// A processor's label feeds the environments of its variables.
		out := make([]int, 0, len(st.sys.Nbr[i]))
		for _, v := range st.sys.Nbr[i] {
			out = append(out, np+v)
		}
		return out
	}
	// A variable's label feeds the environments of its processors.
	v := i - np
	out := make([]int, 0, len(st.vn[v]))
	for _, e := range st.vn[v] {
		out = append(out, e.Proc)
	}
	return out
}

func newStructure(sys *system.System, rule Rule) (*structure, error) {
	if rule != RuleQ && rule != RuleSetS {
		return nil, fmt.Errorf("%w: %d", ErrBadRule, int(rule))
	}
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSystemShape, err)
	}
	return &structure{sys: sys, rule: rule, vn: sys.VarNeighbors()}, nil
}

func fromPartition(sys *system.System, p *partition.Partition) *Labeling {
	np := sys.NumProcs()
	lab := &Labeling{
		Sys:        sys,
		ProcLabels: make([]int, np),
		VarLabels:  make([]int, sys.NumVars()),
	}
	canon := p.Canonical()
	for i := 0; i < np; i++ {
		lab.ProcLabels[i] = canon[i]
	}
	for v := 0; v < sys.NumVars(); v++ {
		lab.VarLabels[v] = canon[np+v]
	}
	return lab
}

// Config carries the optional knobs of a similarity computation: the
// signature-pass worker count (0 or 1 means sequential) and an event
// recorder for per-round refinement observability. The zero Config is
// the default sequential, unobserved run.
type Config struct {
	// Workers > 1 fans the signature pass over that many goroutines
	// (deterministic; see SimilarityParallel).
	Workers int
	// Obs receives phase, refine-round, and stat events plus the
	// core.* counters; nil records nothing.
	Obs *obs.Recorder
}

// Similarity computes the similarity labeling Θ of sys under the given
// environment rule. The counting rule (Q) uses the Hopcroft smaller-half
// driver — Theorem 5's O(n log n) algorithm; the set rule, for which the
// smaller-half trick is unsound (a tag present in a class may live only
// in the split-off part), uses the worklist driver.
func Similarity(sys *system.System, rule Rule) (*Labeling, error) {
	return SimilarityWith(sys, rule, Config{})
}

// SimilarityParallel computes the same labeling as Similarity with the
// signature pass fanned out over `workers` goroutines: the Hopcroft
// driver parallelizes its initial key/edge collection, the worklist
// driver its per-round per-class signature encoding. Deterministic and
// identical to Similarity; opt in where single-core signature encoding
// dominates (the 65k-node tier of BenchmarkExp6Scaling).
func SimilarityParallel(sys *system.System, rule Rule, workers int) (*Labeling, error) {
	return SimilarityWith(sys, rule, Config{Workers: workers})
}

// SimilarityWith is Similarity with full Config control. When cfg.Obs
// is recording it emits a core.similarity phase wrapping one
// KindRefineRound event per refinement round (worklist) or carving
// splitter (Hopcroft), final class-count stats, and the core.* counters
// and latency histogram; with a nil recorder the instrumentation
// reduces to one branch per round.
func SimilarityWith(sys *system.System, rule Rule, cfg Config) (*Labeling, error) {
	st, err := newStructure(sys, rule)
	if err != nil {
		return nil, err
	}
	rec := cfg.Obs
	var hook partition.RoundHook
	var rounds, splits int
	var started time.Time
	if rec.Enabled() {
		driver := "worklist"
		if rule == RuleQ {
			driver = "hopcroft"
		}
		rec.PhaseStart("core.similarity")
		started = time.Now()
		hook = func(round, classes, split int) {
			rounds = round
			splits += split
			rec.RefineRound(driver, round, classes, split)
		}
	}
	var p *partition.Partition
	if rule == RuleQ {
		p, err = partition.FixpointHopcroftHooked(st, cfg.Workers, hook)
	} else {
		p, err = partition.FixpointWorklistHooked(st, cfg.Workers, hook)
	}
	if err != nil {
		return nil, fmt.Errorf("core: refining: %w", err)
	}
	lab := fromPartition(sys, p)
	if rec.Enabled() {
		rec.Stat("core.proc_classes", int64(lab.NumProcClasses()))
		rec.Stat("core.var_classes", int64(lab.NumVarClasses()))
		rec.Count("core.similarity_runs", 1)
		rec.Count("core.refine_rounds", int64(rounds))
		rec.Count("core.class_splits", int64(splits))
		rec.Observe("core.similarity", time.Since(started))
		rec.PhaseEnd("core.similarity", int64(rounds))
	}
	return lab, nil
}

// SimilarityWorklist computes the Q labeling with the worklist driver;
// kept alongside the Hopcroft driver as the DESIGN.md ablation.
func SimilarityWorklist(sys *system.System, rule Rule) (*Labeling, error) {
	st, err := newStructure(sys, rule)
	if err != nil {
		return nil, err
	}
	p, err := partition.FixpointWorklist(st)
	if err != nil {
		return nil, fmt.Errorf("core: refining: %w", err)
	}
	return fromPartition(sys, p), nil
}

// SimilarityNaive computes the same labeling with the naive driver (the
// literal transcription of Algorithm 1). Kept as the testing oracle and
// the DESIGN.md ablation baseline.
func SimilarityNaive(sys *system.System, rule Rule) (*Labeling, error) {
	st, err := newStructure(sys, rule)
	if err != nil {
		return nil, err
	}
	p, err := partition.FixpointNaive(st)
	if err != nil {
		return nil, fmt.Errorf("core: refining: %w", err)
	}
	return fromPartition(sys, p), nil
}

// validateAgainst checks that lab matches sys's shape.
func (l *Labeling) validateAgainst(sys *system.System) error {
	if l.Sys != sys {
		// Allow distinct-but-equal systems; check shape only.
		if len(l.ProcLabels) != sys.NumProcs() || len(l.VarLabels) != sys.NumVars() {
			return ErrLabelingSize
		}
		return nil
	}
	if len(l.ProcLabels) != sys.NumProcs() || len(l.VarLabels) != sys.NumVars() {
		return ErrLabelingSize
	}
	return nil
}

// NumProcClasses returns the number of distinct processor labels.
func (l *Labeling) NumProcClasses() int {
	seen := make(map[int]bool)
	for _, x := range l.ProcLabels {
		seen[x] = true
	}
	return len(seen)
}

// NumVarClasses returns the number of distinct variable labels.
func (l *Labeling) NumVarClasses() int {
	seen := make(map[int]bool)
	for _, x := range l.VarLabels {
		seen[x] = true
	}
	return len(seen)
}

// ProcClasses returns the processor equivalence classes, each sorted, in
// order of smallest member.
func (l *Labeling) ProcClasses() [][]int {
	byLabel := make(map[int][]int)
	for p, x := range l.ProcLabels {
		byLabel[x] = append(byLabel[x], p)
	}
	classes := make([][]int, 0, len(byLabel))
	for _, m := range byLabel {
		sort.Ints(m)
		classes = append(classes, m)
	}
	sort.Slice(classes, func(a, b int) bool { return classes[a][0] < classes[b][0] })
	return classes
}

// VarClasses returns the variable equivalence classes, each sorted, in
// order of smallest member.
func (l *Labeling) VarClasses() [][]int {
	byLabel := make(map[int][]int)
	for v, x := range l.VarLabels {
		byLabel[x] = append(byLabel[x], v)
	}
	classes := make([][]int, 0, len(byLabel))
	for _, m := range byLabel {
		sort.Ints(m)
		classes = append(classes, m)
	}
	sort.Slice(classes, func(a, b int) bool { return classes[a][0] < classes[b][0] })
	return classes
}

// UniqueProcs returns the processors that are alone in their similarity
// class — the candidates a selection algorithm can elect.
func (l *Labeling) UniqueProcs() []int {
	var out []int
	for _, c := range l.ProcClasses() {
		if len(c) == 1 {
			out = append(out, c[0])
		}
	}
	return out
}

// EveryProcPaired reports whether every processor shares its label with
// some other processor. By Theorems 2 and 3, a similarity labeling with
// this property means the system has no selection algorithm.
func (l *Labeling) EveryProcPaired() bool {
	counts := make(map[int]int)
	for _, x := range l.ProcLabels {
		counts[x]++
	}
	for _, x := range l.ProcLabels {
		if counts[x] < 2 {
			return false
		}
	}
	return true
}

// SameClass reports whether processors p and q are similar under l.
func (l *Labeling) SameClass(p, q int) bool {
	return l.ProcLabels[p] == l.ProcLabels[q]
}

// String renders the labeling compactly.
func (l *Labeling) String() string {
	var b strings.Builder
	b.WriteString("procs:")
	for _, c := range l.ProcClasses() {
		names := make([]string, len(c))
		for i, p := range c {
			names[i] = l.Sys.ProcIDs[p]
		}
		fmt.Fprintf(&b, " {%s}", strings.Join(names, ","))
	}
	b.WriteString(" vars:")
	for _, c := range l.VarClasses() {
		names := make([]string, len(c))
		for i, v := range c {
			names[i] = l.Sys.VarIDs[v]
		}
		fmt.Fprintf(&b, " {%s}", strings.Join(names, ","))
	}
	return b.String()
}

// IsStable reports whether lab is stable for sys under rule: same label
// implies same environment. By Theorem 4, a stable labeling is a
// supersimilarity labeling (same label really does imply similar).
func IsStable(sys *system.System, rule Rule, lab *Labeling) (bool, error) {
	st, err := newStructure(sys, rule)
	if err != nil {
		return false, err
	}
	if err := lab.validateAgainst(sys); err != nil {
		return false, err
	}
	np := sys.NumProcs()
	// Tagged (kind, label) interning keeps processor and variable label
	// spaces disjoint by construction: every distinct pair gets its own
	// dense id, so no labeling — however many classes, whatever the
	// label values — can alias across kinds. (The former encoding
	// offset variable labels by a fixed constant, which a labeling with
	// that many classes would silently defeat.)
	dense := make(map[[2]int]int)
	label := func(i int) int {
		key := [2]int{0, 0}
		if i < np {
			key = [2]int{0, lab.ProcLabels[i]}
		} else {
			key = [2]int{1, lab.VarLabels[i-np]}
		}
		id, ok := dense[key]
		if !ok {
			id = len(dense)
			dense[key] = id
		}
		return id
	}
	// Initial-state condition (1) plus environment conditions (2)/(3),
	// held as a tuple and compared field-wise: initial states containing
	// separator bytes cannot collide with the environment encoding.
	type nodeSig struct{ init, env string }
	sigByClass := make(map[int]nodeSig)
	for i := 0; i < sys.NumNodes(); i++ {
		var init string
		if i < np {
			init = sys.ProcInit[i]
		} else {
			init = sys.VarInit[i-np]
		}
		sig := nodeSig{init: init, env: st.Signature(i, label)}
		cls := label(i)
		if prev, ok := sigByClass[cls]; ok {
			if prev != sig {
				return false, nil
			}
		} else {
			sigByClass[cls] = sig
		}
	}
	return true, nil
}

// IsSupersimilarityForL implements the Theorem 8 test: lab is a
// supersimilarity labeling for the system under instruction set L if it is
// stable under RuleQ and no two same-labeled processors give the same name
// to the same variable (same-name sharers can always break the tie with a
// lock race, so they cannot be similar in L).
func IsSupersimilarityForL(sys *system.System, lab *Labeling) (bool, error) {
	stable, err := IsStable(sys, RuleQ, lab)
	if err != nil {
		return false, err
	}
	if !stable {
		return false, nil
	}
	ok, err := NoSameNameSharers(sys, lab)
	if err != nil {
		return false, err
	}
	return ok, nil
}

// IsSubsimilarity reports whether lab is a subsimilarity labeling under
// the rule: similar nodes have the same label, i.e. lab is a coarsening
// of the similarity labeling Θ (section 3; the trivial subsimilarity
// labeling gives every node one label). Together with IsStable this
// brackets Θ: a labeling that is both is THE similarity labeling, unique
// up to renaming.
func IsSubsimilarity(sys *system.System, rule Rule, lab *Labeling) (bool, error) {
	if err := lab.validateAgainst(sys); err != nil {
		return false, err
	}
	theta, err := Similarity(sys, rule)
	if err != nil {
		return false, err
	}
	// Θ-same must imply lab-same; check per class of Θ.
	repProc := make(map[int]int)
	for p, l := range theta.ProcLabels {
		if rep, ok := repProc[l]; ok {
			if lab.ProcLabels[rep] != lab.ProcLabels[p] {
				return false, nil
			}
		} else {
			repProc[l] = p
		}
	}
	repVar := make(map[int]int)
	for v, l := range theta.VarLabels {
		if rep, ok := repVar[l]; ok {
			if lab.VarLabels[rep] != lab.VarLabels[v] {
				return false, nil
			}
		} else {
			repVar[l] = v
		}
	}
	return true, nil
}

// IsSimilarityLabeling reports whether lab IS the similarity labeling:
// both a supersimilarity labeling (stable) and a subsimilarity labeling
// (coarser than or equal to Θ) — which pins it to Θ up to renaming.
func IsSimilarityLabeling(sys *system.System, rule Rule, lab *Labeling) (bool, error) {
	super, err := IsStable(sys, rule, lab)
	if err != nil {
		return false, err
	}
	if !super {
		return false, nil
	}
	return IsSubsimilarity(sys, rule, lab)
}

// NoSameNameSharers reports whether no two same-labeled processors give
// the same name to the same variable (the side condition of Theorem 8).
func NoSameNameSharers(sys *system.System, lab *Labeling) (bool, error) {
	if err := lab.validateAgainst(sys); err != nil {
		return false, err
	}
	vn := sys.VarNeighbors()
	for v := range vn {
		seen := make(map[[2]int]bool) // (nameIdx, procLabel)
		for _, e := range vn[v] {
			key := [2]int{e.NameIdx, lab.ProcLabels[e.Proc]}
			if seen[key] {
				return false, nil
			}
			seen[key] = true
		}
	}
	return true, nil
}

// NoSharersAtAll reports whether no two same-labeled processors share any
// variable under any pair of names — the extended-locking condition of
// section 6: with atomic multi-variable locks, similar processors cannot
// be neighbors of the same variable.
func NoSharersAtAll(sys *system.System, lab *Labeling) (bool, error) {
	if err := lab.validateAgainst(sys); err != nil {
		return false, err
	}
	vn := sys.VarNeighbors()
	for v := range vn {
		seen := make(map[int]int) // procLabel -> proc
		for _, e := range vn[v] {
			if prev, ok := seen[lab.ProcLabels[e.Proc]]; ok && prev != e.Proc {
				return false, nil
			}
			seen[lab.ProcLabels[e.Proc]] = e.Proc
		}
	}
	return true, nil
}
