package core

import (
	"errors"
	"math/rand"
	"testing"

	"simsym/internal/system"
)

func mustRing(t *testing.T, n int) *system.System {
	t.Helper()
	s, err := system.Ring(n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFig1AllSimilar(t *testing.T) {
	for _, rule := range []Rule{RuleQ, RuleSetS} {
		lab, err := Similarity(system.Fig1(), rule)
		if err != nil {
			t.Fatal(err)
		}
		if lab.NumProcClasses() != 1 {
			t.Errorf("rule %s: Fig1 proc classes = %d, want 1", rule, lab.NumProcClasses())
		}
		if !lab.EveryProcPaired() {
			t.Errorf("rule %s: Fig1 should have every processor paired", rule)
		}
		if got := lab.UniqueProcs(); len(got) != 0 {
			t.Errorf("rule %s: Fig1 unique procs = %v, want none", rule, got)
		}
	}
}

func TestFig2ClassesUnderQ(t *testing.T) {
	lab, err := Similarity(system.Fig2(), RuleQ)
	if err != nil {
		t.Fatal(err)
	}
	// The paper: p1 ~ p2, p3 alone (two equivalence classes).
	if !lab.SameClass(0, 1) {
		t.Error("p1 and p2 should be similar")
	}
	if lab.SameClass(0, 2) || lab.SameClass(1, 2) {
		t.Error("p3 should be dissimilar to p1, p2")
	}
	if got := lab.UniqueProcs(); len(got) != 1 || got[0] != 2 {
		t.Errorf("unique procs = %v, want [2]", got)
	}
	// All three variables are pairwise dissimilar (1, 1, 3 neighbors
	// with distinct name/count structure).
	if lab.NumVarClasses() != 3 {
		t.Errorf("var classes = %d, want 3\n%s", lab.NumVarClasses(), lab)
	}
}

func TestFig2AllSimilarUnderSetS(t *testing.T) {
	// Counting is what separates p3; set-based environments cannot.
	lab, err := Similarity(system.Fig2(), RuleSetS)
	if err != nil {
		t.Fatal(err)
	}
	if lab.NumProcClasses() != 1 {
		t.Errorf("Fig2 under setS: proc classes = %d, want 1\n%s", lab.NumProcClasses(), lab)
	}
	if !lab.EveryProcPaired() {
		t.Error("Fig2 under setS should have all processors paired")
	}
}

func TestFig3AllDistinct(t *testing.T) {
	for _, rule := range []Rule{RuleQ, RuleSetS} {
		lab, err := Similarity(system.Fig3(), rule)
		if err != nil {
			t.Fatal(err)
		}
		if lab.NumProcClasses() != 3 {
			t.Errorf("rule %s: Fig3 proc classes = %d, want 3\n%s", rule, lab.NumProcClasses(), lab)
		}
	}
}

func TestRingAllSimilar(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 13} {
		lab, err := Similarity(mustRing(t, n), RuleQ)
		if err != nil {
			t.Fatal(err)
		}
		if lab.NumProcClasses() != 1 || lab.NumVarClasses() != 1 {
			t.Errorf("ring %d: classes = (%d,%d), want (1,1)", n, lab.NumProcClasses(), lab.NumVarClasses())
		}
	}
}

func TestMarkedRingFullySeparates(t *testing.T) {
	// One distinguished initial state breaks the ring's symmetry
	// entirely: refinement propagates distance-from-mark around the ring.
	s := mustRing(t, 7)
	s.ProcInit[3] = "leader"
	lab, err := Similarity(s, RuleQ)
	if err != nil {
		t.Fatal(err)
	}
	if lab.NumProcClasses() != 7 {
		t.Errorf("marked ring classes = %d, want 7\n%s", lab.NumProcClasses(), lab)
	}
	if got := lab.UniqueProcs(); len(got) != 7 {
		t.Errorf("unique procs = %v, want all", got)
	}
}

func TestMarkedEvenRingFullySeparates(t *testing.T) {
	// The left/right naming orients the ring (a reflection would swap
	// the names), so even on an even-size ring the mirror pairs around
	// the mark are NOT similar: a marked named ring separates fully.
	s := mustRing(t, 6)
	s.ProcInit[0] = "leader"
	lab, err := Similarity(s, RuleQ)
	if err != nil {
		t.Fatal(err)
	}
	if got := lab.NumProcClasses(); got != 6 {
		t.Errorf("classes = %d, want 6 (oriented ring separates fully)\n%s", got, lab)
	}
	if lab.SameClass(1, 5) {
		t.Errorf("p1 and p5 differ by orientation (left vs right of mark)\n%s", lab)
	}
}

func TestDiningFlippedAllPhilsSimilarInQ(t *testing.T) {
	// Theorem 10 sanity: all six philosophers of Figure 5 are graph-
	// symmetric, hence similar in Q; forks split into right-forks and
	// left-forks.
	s, err := system.DiningFlipped(6)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := Similarity(s, RuleQ)
	if err != nil {
		t.Fatal(err)
	}
	if lab.NumProcClasses() != 1 {
		t.Errorf("DP'6 proc classes = %d, want 1\n%s", lab.NumProcClasses(), lab)
	}
	if lab.NumVarClasses() != 2 {
		t.Errorf("DP'6 fork classes = %d, want 2 (right-forks, left-forks)\n%s", lab.NumVarClasses(), lab)
	}
}

func TestWorklistMatchesNaiveOnRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 150; trial++ {
		s, err := system.RandomSystem(rng, system.RandomOpts{
			Procs:      1 + rng.Intn(8),
			Vars:       1 + rng.Intn(6),
			Names:      1 + rng.Intn(3),
			InitStates: 1 + rng.Intn(3),
		})
		if err != nil {
			continue
		}
		for _, rule := range []Rule{RuleQ, RuleSetS} {
			a, err := Similarity(s, rule)
			if err != nil {
				t.Fatal(err)
			}
			b, err := SimilarityNaive(s, rule)
			if err != nil {
				t.Fatal(err)
			}
			for p := range a.ProcLabels {
				for q := range a.ProcLabels {
					if (a.ProcLabels[p] == a.ProcLabels[q]) != (b.ProcLabels[p] == b.ProcLabels[q]) {
						t.Fatalf("trial %d rule %s: drivers disagree on procs %d,%d\n%s\n%s\n%s",
							trial, rule, p, q, s.Describe(), a, b)
					}
				}
			}
			for v := range a.VarLabels {
				for w := range a.VarLabels {
					if (a.VarLabels[v] == a.VarLabels[w]) != (b.VarLabels[v] == b.VarLabels[w]) {
						t.Fatalf("trial %d rule %s: drivers disagree on vars %d,%d", trial, rule, v, w)
					}
				}
			}
		}
	}
}

func TestSimilarityIsStable(t *testing.T) {
	// The fixpoint must satisfy its own environment rule (Theorem 4's
	// hypothesis): same label implies same environment.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		s, err := system.RandomSystem(rng, system.RandomOpts{
			Procs:      1 + rng.Intn(7),
			Vars:       1 + rng.Intn(5),
			Names:      1 + rng.Intn(3),
			InitStates: 1 + rng.Intn(2),
		})
		if err != nil {
			continue
		}
		for _, rule := range []Rule{RuleQ, RuleSetS} {
			lab, err := Similarity(s, rule)
			if err != nil {
				t.Fatal(err)
			}
			ok, err := IsStable(s, rule, lab)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("trial %d rule %s: fixpoint unstable\n%s\n%s", trial, rule, s.Describe(), lab)
			}
		}
	}
}

func TestSetSIsCoarserThanQ(t *testing.T) {
	// Set environments forget counts, so the setS labeling is always a
	// coarsening of the Q labeling (same-label-in-Q implies
	// same-label-in-setS). This is the model-power comparison of
	// section 9 at the labeling level.
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 100; trial++ {
		s, err := system.RandomSystem(rng, system.RandomOpts{
			Procs:      1 + rng.Intn(7),
			Vars:       1 + rng.Intn(5),
			Names:      1 + rng.Intn(3),
			InitStates: 1 + rng.Intn(2),
		})
		if err != nil {
			continue
		}
		q, err := Similarity(s, RuleQ)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := Similarity(s, RuleSetS)
		if err != nil {
			t.Fatal(err)
		}
		for p := range q.ProcLabels {
			for r := range q.ProcLabels {
				if q.ProcLabels[p] == q.ProcLabels[r] && ss.ProcLabels[p] != ss.ProcLabels[r] {
					t.Fatalf("trial %d: procs %d,%d similar in Q but not setS\n%s", trial, p, r, s.Describe())
				}
			}
		}
	}
}

func TestIsomorphicSystemsGetIsomorphicLabelings(t *testing.T) {
	// Metamorphic property: relabeling nodes by a permutation must
	// permute the similarity classes accordingly.
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		s, err := system.RandomSystem(rng, system.RandomOpts{
			Procs:      2 + rng.Intn(6),
			Vars:       1 + rng.Intn(5),
			Names:      1 + rng.Intn(3),
			InitStates: 1 + rng.Intn(2),
		})
		if err != nil {
			continue
		}
		perm := system.Permutation{
			ProcPerm: rng.Perm(s.NumProcs()),
			VarPerm:  rng.Perm(s.NumVars()),
		}
		img, err := system.Apply(s, perm)
		if err != nil {
			t.Fatal(err)
		}
		labS, err := Similarity(s, RuleQ)
		if err != nil {
			t.Fatal(err)
		}
		labI, err := Similarity(img, RuleQ)
		if err != nil {
			t.Fatal(err)
		}
		for p := range labS.ProcLabels {
			for q := range labS.ProcLabels {
				same1 := labS.ProcLabels[p] == labS.ProcLabels[q]
				same2 := labI.ProcLabels[perm.ProcPerm[p]] == labI.ProcLabels[perm.ProcPerm[q]]
				if same1 != same2 {
					t.Fatalf("trial %d: permutation broke similarity of procs %d,%d", trial, p, q)
				}
			}
		}
	}
}

func TestIsStableDetectsInstability(t *testing.T) {
	s := system.Fig2()
	lab := &Labeling{
		Sys:        s,
		ProcLabels: []int{0, 0, 0}, // merges p3 with p1,p2: unstable under Q
		VarLabels:  []int{0, 1, 2},
	}
	ok, err := IsStable(s, RuleQ, lab)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("merging p3 into {p1,p2} should be unstable under Q")
	}
	// But it IS stable under setS (with the right variable merge).
	lab2 := &Labeling{
		Sys:        s,
		ProcLabels: []int{0, 0, 0},
		VarLabels:  []int{0, 0, 1}, // v1 ~ v2, v3 alone
	}
	ok, err = IsStable(s, RuleSetS, lab2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("the all-processors labeling should be stable under setS")
	}
}

func TestTrivialSupersimilarityLabeling(t *testing.T) {
	// "A labeling that assigns a unique label to each node is a trivial
	// supersimilarity labeling" — unique labels are vacuously stable.
	s := system.Fig2()
	lab := &Labeling{
		Sys:        s,
		ProcLabels: []int{0, 1, 2},
		VarLabels:  []int{0, 1, 2},
	}
	ok, err := IsStable(s, RuleQ, lab)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("discrete labeling must be stable")
	}
}

func TestNoSameNameSharers(t *testing.T) {
	// Figure 1: p and q call v by the same name and share a label under
	// the Q similarity labeling — the Theorem 8 condition fails, so that
	// labeling is NOT a supersimilarity labeling for L.
	s := system.Fig1()
	lab, err := Similarity(s, RuleQ)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := NoSameNameSharers(s, lab)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("Fig1 Q-labeling should violate the Theorem 8 condition")
	}
	okL, err := IsSupersimilarityForL(s, lab)
	if err != nil {
		t.Fatal(err)
	}
	if okL {
		t.Error("Fig1 Q-labeling should not be L-supersimilarity")
	}
	// Dining(5): adjacent philosophers share forks under DIFFERENT
	// names, so the all-similar labeling does satisfy Theorem 8 —
	// exactly why DP is impossible (Theorem 11).
	dp, err := system.Dining(5)
	if err != nil {
		t.Fatal(err)
	}
	labDP, err := Similarity(dp, RuleQ)
	if err != nil {
		t.Fatal(err)
	}
	okDP, err := IsSupersimilarityForL(dp, labDP)
	if err != nil {
		t.Fatal(err)
	}
	if !okDP {
		t.Error("Dining(5) all-similar labeling should be L-supersimilarity (Theorem 11)")
	}
}

func TestNoSharersAtAllExtendedLocking(t *testing.T) {
	// Extended locking: similar processors may not share ANY variable.
	// Dining(5)'s all-similar labeling has similar fork-sharers, so it
	// fails the extended-locking condition even though it passes
	// Theorem 8 — extended locking is strictly more symmetry-breaking.
	dp, err := system.Dining(5)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := Similarity(dp, RuleQ)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := NoSharersAtAll(dp, lab)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("Dining(5) all-similar labeling should fail the extended-locking condition")
	}
	// A fully discrete labeling passes trivially.
	discrete := &Labeling{
		Sys:        dp,
		ProcLabels: []int{0, 1, 2, 3, 4},
		VarLabels:  []int{0, 1, 2, 3, 4},
	}
	ok, err = NoSharersAtAll(dp, discrete)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("discrete labeling should pass the extended-locking condition")
	}
}

func TestErrorPaths(t *testing.T) {
	s := system.Fig1()
	if _, err := Similarity(s, Rule(99)); !errors.Is(err, ErrBadRule) {
		t.Errorf("bad rule error = %v", err)
	}
	bad := s.Clone()
	bad.Nbr[0][0] = 99
	if _, err := Similarity(bad, RuleQ); !errors.Is(err, ErrSystemShape) {
		t.Errorf("bad system error = %v", err)
	}
	lab := &Labeling{Sys: s, ProcLabels: []int{0}, VarLabels: []int{0}}
	if _, err := IsStable(s, RuleQ, lab); !errors.Is(err, ErrLabelingSize) {
		t.Errorf("labeling size error = %v", err)
	}
}

func TestLabelingStringMentionsIDs(t *testing.T) {
	lab, err := Similarity(system.Fig2(), RuleQ)
	if err != nil {
		t.Fatal(err)
	}
	str := lab.String()
	for _, want := range []string{"p1", "p3", "v3"} {
		if !contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestSubsimilarityDefinitions(t *testing.T) {
	// Section 3's bracket: the trivial all-same labeling is always
	// subsimilar (never splits a similar pair); the discrete labeling is
	// always supersimilar (stable); Θ itself is both.
	s := system.Fig2()
	trivial := &Labeling{
		Sys:        s,
		ProcLabels: []int{0, 0, 0},
		VarLabels:  []int{0, 0, 0},
	}
	sub, err := IsSubsimilarity(s, RuleQ, trivial)
	if err != nil {
		t.Fatal(err)
	}
	if !sub {
		t.Error("trivial labeling must be subsimilar")
	}
	isTheta, err := IsSimilarityLabeling(s, RuleQ, trivial)
	if err != nil {
		t.Fatal(err)
	}
	if isTheta {
		t.Error("trivial labeling is not stable on Fig2, so not Θ")
	}

	discrete := &Labeling{
		Sys:        s,
		ProcLabels: []int{0, 1, 2},
		VarLabels:  []int{0, 1, 2},
	}
	sub, err = IsSubsimilarity(s, RuleQ, discrete)
	if err != nil {
		t.Fatal(err)
	}
	if sub {
		t.Error("discrete labeling splits the similar pair p1,p2: not subsimilar")
	}

	theta, err := Similarity(s, RuleQ)
	if err != nil {
		t.Fatal(err)
	}
	isTheta, err = IsSimilarityLabeling(s, RuleQ, theta)
	if err != nil {
		t.Fatal(err)
	}
	if !isTheta {
		t.Error("Θ must be both super- and subsimilar")
	}
}

func TestSimilarityLabelingUniqueness(t *testing.T) {
	// Property: on random systems, any labeling that passes
	// IsSimilarityLabeling induces exactly Θ's equivalence classes
	// ("unique up to isomorphism", section 3).
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 40; trial++ {
		s, err := system.RandomSystem(rng, system.RandomOpts{
			Procs:      1 + rng.Intn(5),
			Vars:       1 + rng.Intn(4),
			Names:      1 + rng.Intn(2),
			InitStates: 1 + rng.Intn(2),
		})
		if err != nil {
			continue
		}
		theta, err := Similarity(s, RuleQ)
		if err != nil {
			t.Fatal(err)
		}
		// Renamed copy of Θ must pass; any proper coarsening or
		// refinement must fail one side.
		renamed := &Labeling{
			Sys:        s,
			ProcLabels: make([]int, len(theta.ProcLabels)),
			VarLabels:  make([]int, len(theta.VarLabels)),
		}
		for i, l := range theta.ProcLabels {
			renamed.ProcLabels[i] = l*7 + 3
		}
		for i, l := range theta.VarLabels {
			renamed.VarLabels[i] = l*7 + 3
		}
		ok, err := IsSimilarityLabeling(s, RuleQ, renamed)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: renamed Θ rejected", trial)
		}
	}
}

func TestRuleStringer(t *testing.T) {
	if RuleQ.String() != "Q" || RuleSetS.String() != "setS" {
		t.Errorf("rule stringers: %s %s", RuleQ, RuleSetS)
	}
	if Rule(42).String() == "" {
		t.Error("unknown rule should still render")
	}
}

func TestWorklistDriverMatchesHopcroft(t *testing.T) {
	// The ablation driver must agree with the production driver.
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 60; trial++ {
		s, err := system.RandomSystem(rng, system.RandomOpts{
			Procs:      1 + rng.Intn(7),
			Vars:       1 + rng.Intn(5),
			Names:      1 + rng.Intn(3),
			InitStates: 1 + rng.Intn(2),
		})
		if err != nil {
			continue
		}
		a, err := Similarity(s, RuleQ)
		if err != nil {
			t.Fatal(err)
		}
		b, err := SimilarityWorklist(s, RuleQ)
		if err != nil {
			t.Fatal(err)
		}
		for p := range a.ProcLabels {
			for q := range a.ProcLabels {
				if (a.ProcLabels[p] == a.ProcLabels[q]) != (b.ProcLabels[p] == b.ProcLabels[q]) {
					t.Fatalf("trial %d: hopcroft and worklist disagree on procs %d,%d\n%s",
						trial, p, q, s.Describe())
				}
			}
		}
	}
}
