package experiments

import (
	"errors"
	"fmt"
	"math/rand"

	"simsym/internal/adversary"
	"simsym/internal/dining"
	"simsym/internal/mc"
	"simsym/internal/randomized"
	"simsym/internal/system"
)

// E16Statistical exercises the statistical model checker at scales the
// exhaustive engine cannot touch: Itai–Rodeh leader election and the
// lock-stepped dining table at n=64 and n=256. Each row is an estimated
// violation probability with its Okamoto-bound confidence interval at
// 95% confidence and half-width epsilon — the EXPERIMENTS.md tables use
// ε=0.05, so every estimate rests on exactly OkamotoBound(0.05, 0.05) =
// 738 i.i.d. seeded trials and is reproducible byte for byte.
//
//   - Itai–Rodeh rows estimate P(no leader within 4 phases) over a
//     2-value id space — the tie probability the paper's section 8
//     "probability 1" claim is about. Larger rings need more phases, so
//     the estimate grows with n.
//   - Lehmann–Rabin rows estimate P(some philosopher never eats within
//     24n steps) — the finite-horizon shadow of [LR80]'s lockout-freedom
//     claim. The rate falls to 0 as the budget grows, but at a fixed
//     per-philosopher budget it rises with n: more philosophers, more
//     chances the uniform scheduler shortchanges one.
//   - Dining rows estimate P(exclusion breach within 2048 slots) under
//     seeded lock-drop faults: a dropped fork can be re-grabbed while
//     its holder eats, so the rate is driven by the fault spec, not the
//     (safe) lock discipline.
func E16Statistical(eps float64) (*Table, error) {
	t := &Table{
		ID:     "E16",
		Title:  "Statistical checking — sampled violation probabilities with Hoeffding CIs",
		Header: []string{"experiment", "n", "samples", "violations", "estimate", "CI half-width"},
	}
	const delta = 0.05

	addRow := func(name string, n int, res *mc.SampleResult) {
		t.AddRow(name, fmt.Sprint(n), fmt.Sprint(res.Samples), fmt.Sprint(res.Violations),
			fmt.Sprintf("%.4f", res.Estimate), fmt.Sprintf("±%.4f", res.HalfWidth))
	}

	for _, n := range []int{64, 256} {
		n := n
		trial := func(seed int64, depth int, capture bool) (mc.Trial, error) {
			rng := rand.New(rand.NewSource(seed))
			res, err := randomized.ItaiRodeh(rng, n, 2, depth)
			if err != nil {
				if errors.Is(err, randomized.ErrNoConvergence) {
					return mc.Trial{Violated: true, Reason: err.Error(),
						Steps: res.Messages, Slots: res.Phases}, nil
				}
				return mc.Trial{}, err
			}
			return mc.Trial{Steps: res.Messages, Slots: res.Phases}, nil
		}
		res, err := mc.Sample(trial, mc.SampleOptions{
			Epsilon: eps, Delta: delta, Depth: 4, Seed: 16, Workers: 4,
		})
		if err != nil {
			return nil, err
		}
		addRow("Itai–Rodeh: no leader within 4 phases (idSpace 2)", n, res)
	}

	for _, n := range []int{64, 256} {
		n := n
		trial := func(seed int64, depth int, capture bool) (mc.Trial, error) {
			rng := rand.New(rand.NewSource(seed))
			res, err := randomized.LehmannRabin(rng, n, depth)
			if err != nil {
				return mc.Trial{}, err
			}
			out := mc.Trial{Steps: res.Steps, Slots: res.Steps}
			for _, m := range res.Meals {
				if m == 0 {
					out.Violated = true
					out.Reason = "a philosopher never ate"
					break
				}
			}
			return out, nil
		}
		res, err := mc.Sample(trial, mc.SampleOptions{
			Epsilon: eps, Delta: delta, Depth: 24 * n, Seed: 16, Workers: 4,
		})
		if err != nil {
			return nil, err
		}
		addRow("Lehmann–Rabin: lockout within 24n steps", n, res)
	}

	prog, err := dining.Program("left", "right", 2)
	if err != nil {
		return nil, err
	}
	for _, n := range []int{64, 256} {
		sys, err := system.Dining(n)
		if err != nil {
			return nil, err
		}
		excl, err := dining.LocalExclusionPred(sys)
		if err != nil {
			return nil, err
		}
		spec, err := adversary.ParseSpec("lockdrop", 0)
		if err != nil {
			return nil, err
		}
		procs, vars := sys.NumProcs(), sys.NumVars()
		trial := func(seed int64, depth int, capture bool) (mc.Trial, error) {
			rng := rand.New(rand.NewSource(seed))
			s := spec
			s.CrashSeed, s.StallSeed, s.DropSeed = seed+1, seed+2, seed+3
			h := adversary.Harness{
				Sys:       sys,
				Instr:     system.InstrL,
				Prog:      prog,
				Sched:     adversary.Uniform(rng, procs),
				Faults:    adversary.NewFaults(s, procs, vars),
				MaxSlots:  depth,
				ProcPreds: []mc.ProcPredicate{excl},
			}
			r, err := h.Run()
			if err != nil {
				return mc.Trial{}, err
			}
			out := mc.Trial{Steps: r.Steps, Slots: r.Slots}
			if r.Violation != nil {
				out.Violated = true
				out.Reason = r.Violation.Reason
			}
			if capture {
				out.Schedule = r.Schedule
			}
			return out, nil
		}
		res, err := mc.Sample(trial, mc.SampleOptions{
			Epsilon: eps, Delta: delta, Depth: 2048, Seed: 16, Workers: 4,
		})
		if err != nil {
			return nil, err
		}
		addRow("dining (VM, L): exclusion breach under lock-drops", n, res)
	}
	t.Note("each estimate is within its half-width of the true probability with confidence 95%% (Okamoto bound: %d trials); same seed reproduces identical rows at any worker count", mc.OkamotoBound(eps, delta))
	return t, nil
}
