// Package experiments regenerates every evaluation artifact of the paper
// — its five figures, its algorithms, its theorems, the section 9 model
// hierarchy, and the section 8 randomization claims — as printable
// tables. Each experiment Ei corresponds to a row of DESIGN.md's
// per-experiment index (E1–E16), is exercised by a root-level benchmark, and has
// its paper-vs-measured record in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of column values.
func (t *Table) AddRow(cols ...string) {
	t.Rows = append(t.Rows, cols)
}

// Note appends a free-text note printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render returns the aligned text form.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
