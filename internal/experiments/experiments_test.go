package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"simsym/internal/mc"
	"simsym/internal/randomized"
)

func TestE1Fig1(t *testing.T) {
	tbl, err := E1Fig1()
	if err != nil {
		t.Fatal(err)
	}
	assertCell(t, tbl, "similarity classes (Q)", "1 (p ~ q: true)")
	assertCell(t, tbl, "selection in Q (fair)", "no")
	assertCell(t, tbl, "selection in S (bounded-fair)", "no")
	assertCell(t, tbl, "selection in L (fair)", "yes")
	assertCell(t, tbl, "round-robin witness", "40/40 random programs stayed in lock step")
}

func TestE2Alibi(t *testing.T) {
	tbl, err := E2Alibi(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[2] != "yes" {
			t.Errorf("seed %s: labels not learned", row[0])
		}
	}
}

func TestE3Mimic(t *testing.T) {
	tbl, err := E3Mimic()
	if err != nil {
		t.Fatal(err)
	}
	assertCell(t, tbl, "bounded-fair similarity classes", "3")
	assertCell(t, tbl, "processors mimicking nobody", "0")
	assertCell(t, tbl, "selection, bounded-fair S", "yes")
	assertCell(t, tbl, "selection, fair S", "no")
}

func TestE4DP5(t *testing.T) {
	tbl, err := E4DP5()
	if err != nil {
		t.Fatal(err)
	}
	assertCell(t, tbl, "|Aut| (graph symmetry)", "5")
	assertCell(t, tbl, "philosopher orbits", "1")
	assertCell(t, tbl, "Theorem 11 hypothesis (distributed, prime orbit)", "yes")
	assertCell(t, tbl, "all-similar labeling is L-supersimilar (Thm 8)", "yes")
	assertCell(t, tbl, "selection in L", "no")
	assertCell(t, tbl, "relabel versions", "32")
	if cell(t, tbl, "left-right program deadlock (round-robin)") == "no" {
		t.Error("left-right must deadlock")
	}
}

func TestE5DP6(t *testing.T) {
	tbl, err := E5DP6(30_000)
	if err != nil {
		t.Fatal(err)
	}
	assertCell(t, tbl, "philosopher orbits", "1")
	assertCell(t, tbl, "fork orbits", "2")
	assertCell(t, tbl, "philosopher similarity classes (Q)", "1")
	assertCell(t, tbl, "fork similarity classes (Q)", "2")
	assertCell(t, tbl, "model check: exclusion violated", "no")
	assertCell(t, tbl, "model check: deadlock found", "no")
	assertCell(t, tbl, "round-robin progress (3 meals each)", "yes")
	if got := cell(t, tbl, "sharded check (spill allowed): states explored"); !strings.Contains(got, "safe=true") {
		t.Errorf("sharded capacity row = %q, want a safe verdict", got)
	}
	if got := cell(t, tbl, "sharded check: states/sec/core"); got == "" {
		t.Error("missing sharded throughput row")
	}
	if got := cell(t, tbl, "sharded check: peak bytes/state"); got == "" {
		t.Error("missing sharded memory row")
	}
}

func TestE6Scaling(t *testing.T) {
	tbl, err := E6Scaling([]int{16, 64}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// A marked ring separates fully.
	if tbl.Rows[0][1] != "16" || tbl.Rows[1][1] != "64" {
		t.Errorf("classes column wrong: %v", tbl.Rows)
	}
}

func TestE7FLP(t *testing.T) {
	tbl, err := E7FLP()
	if err != nil {
		t.Fatal(err)
	}
	assertCell(t, tbl, "double-selection schedule found", "yes")
	assertCell(t, tbl, "decision procedure (general schedules)", "no")
}

func TestE8Hierarchy(t *testing.T) {
	tbl, err := E8Hierarchy()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{
		"Fig1 (L/Q separator)":      {"yes", "no", "no", "no"},
		"Fig2 (Q/BF-S separator)":   {"yes", "yes", "no", "no"},
		"Fig3 (BF-S/F-S separator)": {"yes", "yes", "yes", "no"},
		"anonymous ring(4)":         {"no", "no", "no", "no"},
		"marked ring(4)":            {"yes", "yes", "yes", "yes"},
	}
	for _, row := range tbl.Rows {
		expect, ok := want[row[0]]
		if !ok {
			t.Errorf("unexpected row %q", row[0])
			continue
		}
		for i, v := range expect {
			if row[i+1] != v {
				t.Errorf("%s column %d = %s, want %s", row[0], i+1, row[i+1], v)
			}
		}
	}
}

func TestE9Randomized(t *testing.T) {
	tbl, err := E9Randomized(50)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[1] == "possible" {
			t.Errorf("ring %s should be deterministically impossible", row[0])
		}
		if !strings.HasPrefix(row[2], "50/50") {
			t.Errorf("ring %s: IR success = %s", row[0], row[2])
		}
	}
}

func TestE10Orbits(t *testing.T) {
	tbl, err := E10Orbits()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[4] != "yes" {
			t.Errorf("%s: orbits must refine similarity (Theorem 10)", row[0])
		}
	}
	// Theorem 11 applies to the prime tables only.
	primes := map[string]string{
		"dining(3)": "yes", "dining(5)": "yes", "dining(7)": "yes",
		"flipped(4)": "no", "flipped(6)": "no",
	}
	for _, row := range tbl.Rows {
		if want, ok := primes[row[0]]; ok && row[5] != want {
			t.Errorf("%s: Thm11 = %s, want %s", row[0], row[5], want)
		}
	}
}

func TestE11EliteL(t *testing.T) {
	tbl, err := E11EliteL(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		switch row[0] {
		case "fig1", "fig2":
			if row[2] != "yes" {
				t.Errorf("%s should be solvable in L", row[0])
			}
			if !strings.HasPrefix(row[4], "3/3") {
				t.Errorf("%s: runs = %s", row[0], row[4])
			}
		case "ring(4)", "dining(5)":
			if row[2] != "no" {
				t.Errorf("%s should be unsolvable in L", row[0])
			}
		}
	}
}

func TestE12MsgPass(t *testing.T) {
	tbl, err := E12MsgPass()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		switch row[0] {
		case "directed ring(5)":
			if row[1] != "1" || row[2] != "0" || row[4] != "no" {
				t.Errorf("directed ring row wrong: %v", row)
			}
		case "marked ring(5)":
			if row[1] != "5" || row[2] != "5" || row[4] != "yes" {
				t.Errorf("marked ring row wrong: %v", row)
			}
		case "chain(4)":
			if row[2] != "4" {
				t.Errorf("chain unique procs = %s, want 4", row[2])
			}
			if row[5] != "1" {
				t.Errorf("chain safe deciders = %s, want 1", row[5])
			}
		}
	}
}

func TestE13Encapsulated(t *testing.T) {
	tbl, err := E13Encapsulated()
	if err != nil {
		t.Fatal(err)
	}
	assertCell(t, tbl, "adjacent similar pairs (oriented init)", "0")
	assertCell(t, tbl, "cyclic orientation accepted", "no (precondition enforced)")
	if got := cell(t, tbl, "all 5 philosophers ate 3 meals"); got[:3] != "yes" {
		t.Errorf("progress = %q", got)
	}
}

func TestE14CSP(t *testing.T) {
	tbl, err := E14CSP()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][2]string{
		"pair (Fig1 as CSP)": {"no", "yes"},
		"anonymous ring(4)":  {"no", "no"},
		"marked ring(5)":     {"yes", "yes"},
	}
	for _, row := range tbl.Rows {
		w, ok := want[row[0]]
		if !ok {
			t.Errorf("unexpected row %q", row[0])
			continue
		}
		if row[1] != w[0] || row[2] != w[1] {
			t.Errorf("%s = (%s,%s), want (%s,%s)", row[0], row[1], row[2], w[0], w[1])
		}
	}
}

func TestE15AlgorithmS(t *testing.T) {
	tbl, err := E15AlgorithmS(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[2] != "yes" {
			t.Errorf("seed %s: labels not learned", row[0])
		}
	}
}

func TestE16Statistical(t *testing.T) {
	// A loose half-width keeps the Okamoto target at 47 trials per row;
	// the engine's statistics are pinned elsewhere (mc/sample_test.go),
	// so here we check the table's shape and per-row sample accounting.
	tbl, err := E16Statistical(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 2 Itai–Rodeh + 2 Lehmann–Rabin + 2 dining", len(tbl.Rows))
	}
	want := fmt.Sprint(mc.OkamotoBound(0.2, 0.05))
	for _, row := range tbl.Rows {
		if row[2] != want {
			t.Errorf("%s n=%s: samples = %s, want the Okamoto target %s", row[0], row[1], row[2], want)
		}
		if !strings.HasPrefix(row[5], "±") {
			t.Errorf("%s n=%s: half-width %q not ±-formatted", row[0], row[1], row[5])
		}
	}
}

// TestE16LehmannRabinAcceptance pins the PR's acceptance bar on the
// workload the issue names: Lehmann–Rabin at n=256 must close a
// half-width ≤ 0.01 interval at δ=0.05 (18,445 Okamoto trials) well
// inside the 60s budget — it takes a few seconds — and the same seed
// must reproduce the identical result at different worker counts.
func TestE16LehmannRabinAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("18,445-trial acceptance run")
	}
	const n = 256
	trial := func(seed int64, depth int, capture bool) (mc.Trial, error) {
		rng := rand.New(rand.NewSource(seed))
		res, err := randomized.LehmannRabin(rng, n, depth)
		if err != nil {
			return mc.Trial{}, err
		}
		out := mc.Trial{Steps: res.Steps, Slots: res.Steps}
		for _, m := range res.Meals {
			if m == 0 {
				out.Violated = true
				out.Reason = "a philosopher never ate"
				break
			}
		}
		return out, nil
	}
	res, err := mc.Sample(trial, mc.SampleOptions{
		Epsilon: 0.01, Delta: 0.05, Depth: 24 * n, Seed: 16, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.HalfWidth > 0.01 {
		t.Fatalf("acceptance run did not close its interval: %+v", res)
	}
	if res.Samples != mc.OkamotoBound(0.01, 0.05) {
		t.Errorf("samples = %d, want %d", res.Samples, mc.OkamotoBound(0.01, 0.05))
	}
	if res.Estimate <= 0 || res.Estimate >= 1 {
		t.Errorf("lockout estimate %v should be strictly between 0 and 1 at this budget", res.Estimate)
	}
}

func TestRenderShapes(t *testing.T) {
	tbl := &Table{ID: "X", Title: "t", Header: []string{"a", "b"}}
	tbl.AddRow("1", "2")
	tbl.Note("hello %d", 42)
	out := tbl.Render()
	for _, want := range []string{"== X: t ==", "a", "1", "note: hello 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func cell(t *testing.T, tbl *Table, key string) string {
	t.Helper()
	for _, row := range tbl.Rows {
		if row[0] == key {
			return row[1]
		}
	}
	t.Fatalf("table %s has no row %q:\n%s", tbl.ID, key, tbl.Render())
	return ""
}

func assertCell(t *testing.T, tbl *Table, key, want string) {
	t.Helper()
	if got := cell(t, tbl, key); got != want {
		t.Errorf("%s[%q] = %q, want %q", tbl.ID, key, got, want)
	}
}

func TestE17Churn(t *testing.T) {
	tab, err := E17Churn([]int{48}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("E17 rows = %d, want 2 (ring, tree)", len(tab.Rows))
	}
	// Splice churn never breaks the ring's symmetry: zero splits.
	ring := tab.Rows[0]
	if ring[0] != "ring" || ring[6] != "0" {
		t.Fatalf("ring row %v: want family ring with 0 splits", ring)
	}
	if tab.Rows[1][0] != "tree" {
		t.Fatalf("tree row %v", tab.Rows[1])
	}
}
