package experiments

import (
	"fmt"
	"math/rand"

	"simsym/internal/adversary"
	"simsym/internal/core"
	"simsym/internal/csp"
	"simsym/internal/dining"
	"simsym/internal/distlabel"
	"simsym/internal/machine"
	"simsym/internal/mc"
	"simsym/internal/sched"
	"simsym/internal/system"
)

// E13Encapsulated reproduces section 8's "Encapsulating Asymmetry": the
// Chandy–Misra protocol with the acyclic orientation folded into the
// initial state solves dining on the very five-table DP forbids for
// symmetric initial states.
func E13Encapsulated() (*Table, error) {
	t := &Table{
		ID:     "E13",
		Title:  "Section 8 — encapsulating asymmetry (Chandy–Misra [CM84])",
		Header: []string{"property", "value"},
	}
	const n = 5
	s, err := dining.OrientedTable(n, dining.SingleFlipOrientation(n))
	if err != nil {
		return nil, err
	}
	lab, err := core.Similarity(s, core.RuleQ)
	if err != nil {
		return nil, err
	}
	pairs, err := dining.Adjacency(s)
	if err != nil {
		return nil, err
	}
	adjacentSimilar := 0
	for _, pr := range pairs {
		if lab.SameClass(pr[0], pr[1]) {
			adjacentSimilar++
		}
	}
	t.AddRow("adjacent similar pairs (oriented init)", fmt.Sprint(adjacentSimilar))
	t.AddRow("processor classes", fmt.Sprint(lab.NumProcClasses()))

	// Cyclic orientations are rejected: the asymmetry must be acyclic.
	if _, err := dining.OrientedTable(n, make([]bool, n)); err == nil {
		return nil, fmt.Errorf("cyclic orientation unexpectedly accepted")
	}
	t.AddRow("cyclic orientation accepted", "no (precondition enforced)")

	const meals = 3
	prog, err := dining.ChandyMisraProgram(meals)
	if err != nil {
		return nil, err
	}
	m, err := machine.New(s, system.InstrL, prog)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(1))
	rounds := 0
	done := func() bool {
		for p := 0; p < n; p++ {
			v, _ := m.Local(p, "meals")
			if ml, ok := v.(int); !ok || ml < meals {
				return false
			}
		}
		return true
	}
	for ; rounds < 20_000 && !done(); rounds++ {
		round, err := sched.ShuffledRounds(rng, n, 1)
		if err != nil {
			return nil, err
		}
		if _, err := m.Run(round); err != nil {
			return nil, err
		}
	}
	t.AddRow(fmt.Sprintf("all %d philosophers ate %d meals", n, meals),
		fmt.Sprintf("%s (after %d fair rounds)", yesNo(done()), rounds))

	// Bounded model check of the same protocol: no exclusion violation
	// and no deadlock anywhere in the explored prefix of the schedule
	// tree — safety evidence beyond the single fair execution above.
	mcProg, err := dining.ChandyMisraProgram(1)
	if err != nil {
		return nil, err
	}
	rep, err := dining.CheckWith(s, mcProg, mc.Options{
		MaxStates: 10_000,
		Partial:   true,
		Progress:  MCProgress,
		Obs:       Obs,
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("bounded model check (1 meal): exclusion violated / deadlock found",
		fmt.Sprintf("%s / %s (%d states, complete=%v)",
			yesNo(rep.ExclusionViolated != nil), yesNo(rep.Deadlocked != nil),
			rep.StatesExplored, rep.Complete))

	// Fault sweep over the Chandy–Misra protocol: crash-stop and stall
	// faults must leave exclusion intact (they can only starve the
	// crashed philosopher's neighbors), checked after every step by the
	// streaming adversary harness.
	excl, err := dining.ExclusionPred(s)
	if err != nil {
		return nil, err
	}
	for _, fc := range []struct {
		name string
		spec adversary.Spec
	}{
		{"crash", adversary.Spec{CrashRate: 0.005, MaxCrashes: 1, CrashSeed: 13}},
		{"stall", adversary.Spec{StallRate: 0.05, StallLen: 9, StallSeed: 13}},
	} {
		fprog, err := dining.ChandyMisraProgram(2)
		if err != nil {
			return nil, err
		}
		h := &adversary.Harness{
			Sys:        s,
			Instr:      system.InstrL,
			Prog:       fprog,
			Sched:      adversary.Shuffled(rand.New(rand.NewSource(13)), n),
			Faults:     adversary.NewFaults(fc.spec, n, s.NumVars()),
			MaxSlots:   20_000,
			StatePreds: []mc.StatePredicate{excl},
		}
		res, err := h.Run()
		if err != nil {
			return nil, err
		}
		verdict := "held"
		if res.Violation != nil {
			verdict = fmt.Sprintf("VIOLATED: %s (%d-slot replayable trace)",
				res.Violation.Reason, len(res.Schedule))
		}
		t.AddRow("fault sweep (CM, 2 meals): "+fc.name,
			fmt.Sprintf("exclusion %s; steps=%d fault events=%d", verdict, res.Steps, len(res.FaultLog)))
	}
	t.Note("the program is uniform and processors anonymous; the asymmetry lives entirely in the dirty-fork orientation of the initial state, as [CM84] prescribes")
	return t, nil
}

// E14CSP reproduces the section 6 CSP results through the channel-shaped
// translation: extended CSP behaves like L (rendezvous race = lock race),
// anonymous rings stay anonymous, marked rings elect.
func E14CSP() (*Table, error) {
	t := &Table{
		ID:     "E14",
		Title:  "Section 6 — CSP: extended CSP is to async as L is to Q",
		Header: []string{"network", "transfer condition", "electable (ext CSP)"},
	}
	pair := csp.PairNet()
	ring4, err := csp.RingNet(4)
	if err != nil {
		return nil, err
	}
	marked, err := csp.RingNet(5)
	if err != nil {
		return nil, err
	}
	marked.Init[2] = "leader"
	for _, e := range []struct {
		name string
		net  *csp.Net
	}{
		{"pair (Fig1 as CSP)", pair},
		{"anonymous ring(4)", ring4},
		{"marked ring(5)", marked},
	} {
		cond, err := csp.TransferCondition(e.net)
		if err != nil {
			return nil, err
		}
		d, err := csp.DecideExtended(e.net)
		if err != nil {
			return nil, err
		}
		t.AddRow(e.name, yesNo(cond), yesNo(d.Solvable))
	}
	t.Note("the pair fails the transfer condition (its endpoints are similar) yet elects via the rendezvous race — exactly Figure 1's L/Q story; plain CSP (no output guards) ships as a documented limitation")
	return t, nil
}

// E15AlgorithmS reproduces the section 6 remark that the S instruction
// set has its own label-learning algorithm: Algorithm 2-S (set alibis,
// perpetual refresh) lets every processor of Figure 3 learn its label
// using only read and write.
func E15AlgorithmS(seeds int) (*Table, error) {
	t := &Table{
		ID:     "E15",
		Title:  "Section 6 — Algorithm 2-S: label learning with read/write only",
		Header: []string{"seed", "rounds to all-done", "labels correct"},
	}
	s := system.Fig3()
	lab, err := core.Similarity(s, core.RuleSetS)
	if err != nil {
		return nil, err
	}
	topo, err := distlabel.TopologyFromSystem(s, lab)
	if err != nil {
		return nil, err
	}
	prog, err := distlabel.Algorithm2S(topo, distlabel.Options{})
	if err != nil {
		return nil, err
	}
	for seed := 0; seed < seeds; seed++ {
		m, err := machine.New(s, system.InstrS, prog)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		rounds := 0
		allDone := func() bool {
			for p := 0; p < s.NumProcs(); p++ {
				if d, ok := m.Local(p, "done"); !ok || d != true {
					return false
				}
			}
			return true
		}
		for ; rounds < 3000 && !allDone(); rounds++ {
			round, err := sched.ShuffledRounds(rng, s.NumProcs(), 1)
			if err != nil {
				return nil, err
			}
			if _, err := m.Run(round); err != nil {
				return nil, err
			}
		}
		correct := allDone()
		for p := 0; p < s.NumProcs() && correct; p++ {
			v, ok := m.Local(p, "label1")
			if !ok || v.(int) != lab.ProcLabels[p] {
				correct = false
			}
		}
		t.AddRow(fmt.Sprint(seed), fmt.Sprint(rounds), yesNo(correct))
	}
	t.Note("the relay chain drives convergence: p resolves structurally, z resolves from p's writes, q resolves from z's — with posts surviving only until overwritten")
	return t, nil
}
