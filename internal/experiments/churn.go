package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"simsym/internal/core"
	"simsym/internal/system"
)

// E17Churn measures the dynamic similarity engine (DESIGN.md §10) under
// locality-preserving churn: seeded streams of splice events that grow
// and shrink a ring (processor splices into an edge, later unsplices)
// and a tree (leaf joins under a random node, later leaves). Both
// preserve the family's shape, so the incremental engine's certificate
// and bounded merge pass keep per-event work proportional to the event's
// neighborhood, not the population. Each row reports event throughput,
// the per-event relabel latency distribution, the split/merge work
// profile, and the wall-clock cost of one full Similarity recompute on
// the same population — the price a static-engine user would pay per
// event — with the resulting speedup.
//
// The two families probe opposite regimes. Ring splices are
// symmetry-preserving: the answer never changes (two classes before
// and after), the certificate skips the merge pass, and per-event cost
// is O(degree) — flat in n, microseconds against seconds of recompute.
// Tree leaf churn is structure-revealing: one leaf changes the subtree
// shape of every ancestor, so the labeling itself moves globally
// (~10²–10³ class changes per event) and any correct maintainer pays
// for the answer's motion; per-event cost still grows sublinearly in n
// and the speedup over recompute widens with scale, but by small
// factors, not orders of magnitude. Crash-heavy churn is deliberately
// excluded here: crashing a processor on a marked ring destroys the
// global symmetry, the quotient inflates to Θ(n), and the engine
// honestly falls back to a full rebuild (the Rebuild counter). The
// headline locality claim is scoped to shape-preserving events;
// TestDynSystemAllFamilies and the differential fuzzer cover the
// adversarial mixes.
func E17Churn(sizes []int, events int) (*Table, error) {
	t := &Table{
		ID:    "E17",
		Title: "Incremental similarity under churn — splice events vs full recompute",
		Header: []string{"family", "n", "events", "events/sec", "p50", "p99",
			"splits", "merges", "recompute", "speedup"},
	}
	for _, family := range []string{"ring", "tree"} {
		for _, n := range sizes {
			if err := churnRow(t, family, n, events); err != nil {
				return nil, fmt.Errorf("E17 %s n=%d: %w", family, n, err)
			}
		}
	}
	return t, nil
}

// churnRow drives one seeded splice stream and appends its row.
func churnRow(t *Table, family string, n, events int) error {
	var sys *system.System
	var err error
	switch family {
	case "ring":
		sys, err = system.Ring(n)
	case "tree":
		sys, err = system.Tree(n)
	default:
		return fmt.Errorf("unknown churn family %q", family)
	}
	if err != nil {
		return err
	}
	d, err := core.NewDynSystem(sys, core.RuleQ, core.Config{})
	if err != nil {
		return err
	}
	sp := newSplicer(d, sys.ProcIDs, family, rand.New(rand.NewSource(17)))

	lat := make([]time.Duration, 0, events)
	start := time.Now()
	for ev := 0; ev < events; ev++ {
		t0 := time.Now()
		if err := sp.step(); err != nil {
			return fmt.Errorf("event %d: %w", ev, err)
		}
		lat = append(lat, time.Since(t0))
	}
	elapsed := time.Since(start)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) time.Duration { return lat[int(p*float64(len(lat)-1))] }

	// One full recompute on the final population: Snapshot + Similarity
	// is exactly what a static-engine caller pays per event.
	r0 := time.Now()
	if _, err := core.Similarity(d.Snapshot(), d.Rule()); err != nil {
		return err
	}
	recompute := time.Since(r0)
	perEvent := elapsed / time.Duration(events)
	tot := d.TotalStats()

	t.AddRow(family, fmt.Sprint(n), fmt.Sprint(events),
		fmt.Sprintf("%.0f", float64(events)/elapsed.Seconds()),
		pct(0.50).Round(time.Microsecond).String(),
		pct(0.99).Round(time.Microsecond).String(),
		fmt.Sprint(tot.Splits), fmt.Sprint(tot.Merges),
		recompute.Round(time.Millisecond).String(),
		fmt.Sprintf("%.0fx", float64(recompute)/float64(perEvent)))
	return nil
}

// splicer generates shape-preserving churn. Ring events splice a new
// processor (with a fresh variable) into a uniformly chosen edge; tree
// events hang a new leaf under a uniformly chosen node. Undo events pop
// the most recent splice, which is always still intact (any later splice
// that touched its processors has itself been undone first), so every
// generated mutation batch is valid and the structure never leaves its
// family.
type splicer struct {
	d      *core.DynSystem
	family string
	rng    *rand.Rand
	pool   []string // live processor ids; spliced ids form the tail, LIFO
	base   int      // ids below this index are permanent
	stack  []splice
	seq    int
}

type splice struct {
	p  string // template processor (ring: rewired away from vb)
	px string // spliced-in processor
	vb string // ring: p's former right variable
}

func newSplicer(d *core.DynSystem, ids []string, family string, rng *rand.Rand) *splicer {
	pool := append([]string(nil), ids...)
	return &splicer{d: d, family: family, rng: rng, pool: pool, base: len(pool)}
}

func (s *splicer) step() error {
	if len(s.stack) > 0 && s.rng.Intn(2) == 1 {
		return s.undo()
	}
	return s.splice()
}

func (s *splicer) splice() error {
	p := s.pool[s.rng.Intn(len(s.pool))]
	bind, err := s.d.Bindings(p)
	if err != nil {
		return err
	}
	s.seq++
	vx := fmt.Sprintf("xv%d", s.seq)
	px := fmt.Sprintf("xp%d", s.seq)
	switch s.family {
	case "ring":
		// p --right--> vb becomes p --right--> vx <--left-- px --right--> vb.
		vb := bind[1]
		_, err = s.d.Apply(
			core.Mutation{Op: core.OpAddVar, Var: vx, Init: "0"},
			core.Mutation{Op: core.OpAddProc, Proc: px, Init: "0", Bind: []string{vx, vb}},
			core.Mutation{Op: core.OpRewire, Proc: p, Name: "right", Var: vx},
		)
		s.stack = append(s.stack, splice{p: p, px: px, vb: vb})
	default: // tree
		// px hangs under p: up = p's own variable, own = vx.
		_, err = s.d.Apply(
			core.Mutation{Op: core.OpAddVar, Var: vx, Init: "0"},
			core.Mutation{Op: core.OpAddProc, Proc: px, Init: "0", Bind: []string{bind[1], vx}},
		)
		s.stack = append(s.stack, splice{p: p, px: px})
	}
	if err != nil {
		return err
	}
	s.pool = append(s.pool, px)
	return nil
}

func (s *splicer) undo() error {
	top := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	s.pool = s.pool[:len(s.pool)-1] // top.px, by LIFO discipline
	var err error
	if s.family == "ring" {
		// Removing px orphans its fresh variable, which cascades away.
		_, err = s.d.Apply(
			core.Mutation{Op: core.OpRewire, Proc: top.p, Name: "right", Var: top.vb},
			core.Mutation{Op: core.OpRemoveProc, Proc: top.px},
		)
	} else {
		_, err = s.d.Apply(core.Mutation{Op: core.OpRemoveProc, Proc: top.px})
	}
	return err
}
