package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"simsym/internal/adversary"
	"simsym/internal/autgrp"
	"simsym/internal/core"
	"simsym/internal/dining"
	"simsym/internal/distlabel"
	"simsym/internal/family"
	"simsym/internal/machine"
	"simsym/internal/mc"
	"simsym/internal/mimic"
	"simsym/internal/msgpass"
	"simsym/internal/obs"
	"simsym/internal/randomized"
	"simsym/internal/sched"
	"simsym/internal/selection"
	"simsym/internal/system"
	"simsym/internal/trace"
)

// MCProgress, when non-nil, receives the model checker's periodic
// progress snapshots during the long-running checks (E5, E13). The
// experiments command wires it to stderr behind -progress.
var MCProgress func(mc.Stats)

// Obs, when non-nil, receives the structured event stream and feeds the
// metrics registry for the model checks and similarity labelings inside
// the experiments. The experiments command wires it behind -metrics,
// -trace-jsonl, and -pprof; nil (the default) keeps every hot path on
// the one-branch no-op.
var Obs *obs.Recorder

// E1Fig1 reproduces Figure 1 / Theorem 2: the two processors sharing one
// variable are similar, random programs keep them in lock step under
// round-robin, and selection is impossible in S and Q but possible in L.
func E1Fig1() (*Table, error) {
	t := &Table{
		ID:     "E1",
		Title:  "Figure 1 — a trivial system: similarity kills selection",
		Header: []string{"property", "value"},
	}
	s := system.Fig1()
	lab, err := core.Similarity(s, core.RuleQ)
	if err != nil {
		return nil, err
	}
	t.AddRow("similarity classes (Q)", fmt.Sprintf("%d (p ~ q: %v)", lab.NumProcClasses(), lab.SameClass(0, 1)))

	// Random-program witness: for any program, round-robin keeps p and q
	// in the same state at every round boundary.
	rng := rand.New(rand.NewSource(1))
	synced := 0
	const programs = 40
	for i := 0; i < programs; i++ {
		prog, err := machine.RandomProgram(rng, s.Names, system.InstrQ, 1+rng.Intn(10))
		if err != nil {
			return nil, err
		}
		rep, err := trace.Witness(s, system.InstrQ, prog, lab, 40)
		if err != nil {
			return nil, err
		}
		if rep.Synced() {
			synced++
		}
	}
	t.AddRow("round-robin witness", fmt.Sprintf("%d/%d random programs stayed in lock step", synced, programs))

	for _, model := range []struct {
		name  string
		instr system.InstrSet
		sch   system.ScheduleClass
	}{
		{"selection in Q (fair)", system.InstrQ, system.SchedFair},
		{"selection in S (bounded-fair)", system.InstrS, system.SchedBoundedFair},
		{"selection in L (fair)", system.InstrL, system.SchedFair},
	} {
		d, err := selection.Decide(s, model.instr, model.sch)
		if err != nil {
			return nil, err
		}
		t.AddRow(model.name, yesNo(d.Solvable))
	}
	t.Note("paper: p and q behave similarly under round-robin, so no program can select either (Theorem 2); the lock race rescues L")
	return t, nil
}

// E2Alibi reproduces Figure 2 / Algorithm 2 / Theorem 6: the alibi
// machinery lets every processor—including p3—learn its similarity label;
// measured are convergence rounds under shuffled fair schedules.
func E2Alibi(seeds int) (*Table, error) {
	t := &Table{
		ID:     "E2",
		Title:  "Figure 2 — complicated alibis: Algorithm 2 learns labels",
		Header: []string{"seed", "rounds to converge", "labels learned correctly"},
	}
	s := system.Fig2()
	lab, err := core.Similarity(s, core.RuleQ)
	if err != nil {
		return nil, err
	}
	topo, err := distlabel.TopologyFromSystem(s, lab)
	if err != nil {
		return nil, err
	}
	prog, err := distlabel.Algorithm2(topo, distlabel.Options{})
	if err != nil {
		return nil, err
	}
	for seed := 0; seed < seeds; seed++ {
		m, err := machine.New(s, system.InstrQ, prog)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		rounds := 0
		for !m.AllHalted() && rounds < 1000 {
			round, err := sched.ShuffledRounds(rng, s.NumProcs(), 1)
			if err != nil {
				return nil, err
			}
			if _, err := m.Run(round); err != nil {
				return nil, err
			}
			rounds++
		}
		correct := true
		for p := 0; p < s.NumProcs(); p++ {
			v, ok := m.Local(p, "label1")
			if !ok || v.(int) != lab.ProcLabels[p] {
				correct = false
			}
		}
		t.AddRow(fmt.Sprint(seed), fmt.Sprint(rounds), yesNo(correct))
	}
	t.Note("similarity classes: {p1,p2} and {p3}; p3 learns its label from the two resolved posts in v3, exactly the paper's walkthrough")
	return t, nil
}

// E3Mimic reproduces Figure 3 / section 6 (fair S): the bounded-fair
// labeling separates p, q, z, yet everyone mimics someone, so fair-S
// selection is impossible while bounded-fair-S selection works.
func E3Mimic() (*Table, error) {
	t := &Table{
		ID:     "E3",
		Title:  "Figure 3 — fair S: dissimilar processors that mimic each other",
		Header: []string{"property", "value"},
	}
	s := system.Fig3()
	lab, err := core.Similarity(s, core.RuleSetS)
	if err != nil {
		return nil, err
	}
	t.AddRow("bounded-fair similarity classes", fmt.Sprint(lab.NumProcClasses()))
	rel, err := mimic.Compute(s)
	if err != nil {
		return nil, err
	}
	pairs := ""
	names := []string{"p", "q", "z"}
	for x := 0; x < 3; x++ {
		for y := x + 1; y < 3; y++ {
			if rel.Mimics(x, y) {
				if pairs != "" {
					pairs += ", "
				}
				pairs += names[x] + "~" + names[y]
			}
		}
	}
	t.AddRow("mimic pairs", pairs)
	t.AddRow("processors mimicking nobody", fmt.Sprint(len(rel.MimicsNobody())))
	dBF, err := selection.Decide(s, system.InstrS, system.SchedBoundedFair)
	if err != nil {
		return nil, err
	}
	dF, err := selection.Decide(s, system.InstrS, system.SchedFair)
	if err != nil {
		return nil, err
	}
	t.AddRow("selection, bounded-fair S", yesNo(dBF.Solvable))
	t.AddRow("selection, fair S", yesNo(dF.Solvable))
	t.Note("if z never executes, p and q behave as if similar; p cannot tell whether z has executed — the figure's reconstruction exhibits the paper's separation")
	return t, nil
}

// E4DP5 reproduces Figure 4 / Theorem 11 / DP: all five philosophers are
// graph-symmetric, hence similar in Q and (five being prime) in L; the
// uniform fork program deadlocks under round-robin.
func E4DP5() (*Table, error) {
	t := &Table{
		ID:     "E4",
		Title:  "Figure 4 — five dining philosophers: DP impossibility",
		Header: []string{"property", "value"},
	}
	s, err := system.Dining(5)
	if err != nil {
		return nil, err
	}
	o, err := autgrp.Compute(s, autgrp.Options{})
	if err != nil {
		return nil, err
	}
	t.AddRow("|Aut| (graph symmetry)", fmt.Sprint(o.GroupOrder))
	t.AddRow("philosopher orbits", fmt.Sprint(len(o.ProcClasses())))
	t.AddRow("Theorem 11 hypothesis (distributed, prime orbit)",
		yesNo(autgrp.Theorem11Hypothesis(s, o, o.ProcOrbit[0])))
	lab, err := core.Similarity(s, core.RuleQ)
	if err != nil {
		return nil, err
	}
	okL, err := core.IsSupersimilarityForL(s, lab)
	if err != nil {
		return nil, err
	}
	t.AddRow("all-similar labeling is L-supersimilar (Thm 8)", yesNo(okL))
	d, err := selection.Decide(s, system.InstrL, system.SchedFair)
	if err != nil {
		return nil, err
	}
	t.AddRow("selection in L", yesNo(d.Solvable))
	t.AddRow("relabel versions", fmt.Sprint(d.NumVersions))
	for _, order := range []struct{ first, second system.Name }{{"left", "right"}, {"right", "left"}} {
		prog, err := dining.Program(order.first, order.second, 1)
		if err != nil {
			return nil, err
		}
		round, found, err := dining.FindDeadlockRoundRobin(s, prog, 200)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%s-%s program deadlock (round-robin)", order.first, order.second),
			fmt.Sprintf("%s (round %d)", yesNo(found), round))
	}
	t.Note("five is prime: Theorem 11 forces all philosophers similar even in L, so no symmetric deterministic solution exists (DP)")
	return t, nil
}

// E5DP6 reproduces Figure 5 / DP': the flipped six-table makes every fork
// a shared-left or shared-right fork; the same uniform program is now
// deadlock-free (model-checked) and everyone eats under round-robin.
// With maxStates above the table's ~8.56M-state closure, the sharded
// engine closes the space exhaustively (the bounded single-index probe
// stays capped at 60k regardless).
func E5DP6(maxStates int) (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "Figure 5 — six flipped philosophers: DP' solution",
		Header: []string{"property", "value"},
	}
	s, err := system.DiningFlipped(6)
	if err != nil {
		return nil, err
	}
	o, err := autgrp.Compute(s, autgrp.Options{})
	if err != nil {
		return nil, err
	}
	t.AddRow("|Aut|", fmt.Sprint(o.GroupOrder))
	t.AddRow("philosopher orbits", fmt.Sprint(len(o.ProcClasses())))
	t.AddRow("fork orbits", fmt.Sprint(len(o.VarClasses())))
	lab, err := core.SimilarityWith(s, core.RuleQ, core.Config{Obs: Obs})
	if err != nil {
		return nil, err
	}
	t.AddRow("philosopher similarity classes (Q)", fmt.Sprint(lab.NumProcClasses()))
	t.AddRow("fork similarity classes (Q)", fmt.Sprint(lab.NumVarClasses()))

	prog, err := dining.Program("left", "right", 1)
	if err != nil {
		return nil, err
	}
	// The single-index bounded probe stays capped where earlier PRs left
	// it; the sharded engine below is what takes the table to closure.
	bounded := maxStates
	if bounded > 60_000 {
		bounded = 60_000
	}
	rep, err := dining.CheckWith(s, prog, mc.Options{
		MaxStates: bounded,
		Progress:  MCProgress,
		Obs:       Obs,
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("model check: exclusion violated", yesNo(rep.ExclusionViolated != nil))
	t.AddRow("model check: deadlock found", yesNo(rep.Deadlocked != nil))
	t.AddRow("model check: states explored", fmt.Sprintf("%d (complete=%v)", rep.StatesExplored, rep.Complete))
	t.AddRow("model check: dedup hits / states per second",
		fmt.Sprintf("%d / %.0f", rep.Stats.DedupHits, rep.Stats.StatesPerSec))

	// Capacity headline: the sharded index (per-worker shards, BFS-parent
	// delta keys, disk spill allowed) closes the full 8.5M-state table
	// that the single in-memory index above cannot afford. At least four
	// shards even on small hosts, so the sharded pipeline itself — not
	// the sequential fallback — is what closes the space.
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	repSh, err := dining.CheckWith(s, prog, mc.Options{
		MaxStates:     maxStates,
		Workers:       workers,
		Shards:        workers,
		HotIndexBytes: 256 << 20,
		Progress:      MCProgress,
		Obs:           Obs,
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("sharded check (spill allowed): states explored",
		fmt.Sprintf("%d (complete=%v, safe=%v, depth=%d)", repSh.StatesExplored, repSh.Complete,
			repSh.ExclusionViolated == nil && repSh.Deadlocked == nil, repSh.Stats.Depth))
	cores := runtime.GOMAXPROCS(0)
	if cores > workers {
		cores = workers
	}
	perCore := repSh.Stats.StatesPerSec / float64(cores)
	bytesPerState := "n/a"
	if repSh.StatesExplored > 0 {
		bytesPerState = fmt.Sprintf("%.1f", float64(repSh.Stats.PeakMemBytes)/float64(repSh.StatesExplored))
	}
	t.AddRow("sharded check: states/sec/core",
		fmt.Sprintf("%.0f (%.0f total across %d workers)", perCore, repSh.Stats.StatesPerSec, workers))
	t.AddRow("sharded check: peak bytes/state",
		fmt.Sprintf("%s (delta-encoded %d of %d states, key bytes %d stored / %d logical, %d spilled)",
			bytesPerState, repSh.Stats.DeltaStates, repSh.StatesExplored,
			repSh.Stats.StoredKeyBytes, repSh.Stats.LogicalKeyBytes, repSh.Stats.SpilledBytes))

	mealProg, err := dining.Program("left", "right", 3)
	if err != nil {
		return nil, err
	}
	meals, err := dining.RunFair(s, mealProg, 500)
	if err != nil {
		return nil, err
	}
	all := true
	for _, m := range meals {
		if m != 3 {
			all = false
		}
	}
	t.AddRow("round-robin progress (3 meals each)", yesNo(all))

	// The smaller flipped table closes completely.
	s4, err := system.DiningFlipped(4)
	if err != nil {
		return nil, err
	}
	rep4, err := dining.CheckWith(s4, prog, mc.Options{
		MaxStates: maxStates,
		Progress:  MCProgress,
		Obs:       Obs,
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("flipped table of 4: exhaustive check",
		fmt.Sprintf("safe=%v complete=%v (%d states)",
			rep4.ExclusionViolated == nil && rep4.Deadlocked == nil, rep4.Complete, rep4.StatesExplored))
	// The closed 4-table searched in the orbit quotient: canonicalizing
	// states under Aut before dedup covers the same ground with a
	// fraction of the representatives (the bounded 6-table run above is
	// left unreduced — at a state cap both modes simply fill the cap).
	rep4Sym, err := dining.CheckWith(s4, prog, mc.Options{
		MaxStates:      maxStates,
		SymmetryReduce: true,
		Progress:       MCProgress,
		Obs:            Obs,
	})
	if err != nil {
		return nil, err
	}
	quotient := "n/a"
	if rep4Sym.StatesExplored > 0 {
		quotient = fmt.Sprintf("%.2fx", float64(rep4.StatesExplored)/float64(rep4Sym.StatesExplored))
	}
	t.AddRow("flipped table of 4: symmetry-reduced check",
		fmt.Sprintf("safe=%v complete=%v (%d representatives, quotient %s)",
			rep4Sym.ExclusionViolated == nil && rep4Sym.Deadlocked == nil,
			rep4Sym.Complete, rep4Sym.StatesExplored, quotient))

	// Jepsen-style fault sweep on the closed table of 4: crash and stall
	// faults cost progress but never safety, while lock-drop attacks the
	// resource-hierarchy assumption itself, so a violation there comes
	// with a replayable trace rather than a correctness claim.
	for _, fc := range []struct {
		name string
		spec adversary.Spec
	}{
		{"crash", adversary.Spec{CrashRate: 0.01, MaxCrashes: 1, CrashSeed: 7}},
		{"stall", adversary.Spec{StallRate: 0.05, StallLen: 9, StallSeed: 7}},
		{"lock-drop", adversary.Spec{DropRate: 0.02, DropSeed: 7}},
	} {
		h, err := adversary.NewDiningHarness(s4, 2,
			adversary.Shuffled(rand.New(rand.NewSource(7)), s4.NumProcs()))
		if err != nil {
			return nil, err
		}
		h.Faults = adversary.NewFaults(fc.spec, s4.NumProcs(), s4.NumVars())
		h.MaxSlots = 20_000
		res, err := h.Run()
		if err != nil {
			return nil, err
		}
		excl := "held"
		if res.Violation != nil {
			excl = fmt.Sprintf("VIOLATED: %s (%d-slot replayable trace)",
				res.Violation.Reason, len(res.Schedule))
		}
		t.AddRow("fault sweep (flipped 4): "+fc.name,
			fmt.Sprintf("exclusion %s; converged=%v steps=%d fault events=%d",
				excl, res.Done, res.Steps, len(res.FaultLog)))
	}
	t.Note("alternate philosophers face away, so left forks form level 1 and right forks level 2 of a resource hierarchy: lock-left-then-right is deadlock-free")
	return t, nil
}

// E6Scaling reproduces Theorem 5: Algorithm 1 runs in O(N log N) with
// Hopcroft's smaller-half strategy. A marked ring is the adversarial
// input — the distinction propagates one hop per round, so the naive
// Algorithm 1 transcription is cubic-ish, a dirty-class worklist is
// quadratic, and only the smaller-half driver achieves the [H71] bound.
// All three are timed as the DESIGN.md ablation.
func E6Scaling(sizes []int, slowLimit int) (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "Theorem 5 — similarity labeling scaling (marked rings)",
		Header: []string{"n", "classes", "hopcroft", "worklist", "naive"},
	}
	for _, n := range sizes {
		s, err := system.Ring(n)
		if err != nil {
			return nil, err
		}
		s.ProcInit[0] = "leader"
		start := time.Now()
		lab, err := core.Similarity(s, core.RuleQ)
		if err != nil {
			return nil, err
		}
		hopcroft := time.Since(start)
		worklistStr, naiveStr := "-", "-"
		if n <= slowLimit {
			start = time.Now()
			if _, err := core.SimilarityWorklist(s, core.RuleQ); err != nil {
				return nil, err
			}
			worklistStr = time.Since(start).Round(time.Microsecond).String()
			start = time.Now()
			if _, err := core.SimilarityNaive(s, core.RuleQ); err != nil {
				return nil, err
			}
			naiveStr = time.Since(start).Round(time.Microsecond).String()
		}
		t.AddRow(fmt.Sprint(n), fmt.Sprint(lab.NumProcClasses()),
			hopcroft.Round(time.Microsecond).String(), worklistStr, naiveStr)
	}
	t.Note("the marked ring separates fully (classes = n); only the smaller-half driver stays near-linear, reproducing Theorem 5's O(N log N)")
	return t, nil
}

// E7FLP reproduces Theorem 1 (the FLP special case): for the strawman S
// selection program, the model checker constructs the general schedule
// that selects two processors.
func E7FLP() (*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  "Theorem 1 — general schedules: the FLP adversary",
		Header: []string{"property", "value"},
	}
	s := system.Fig1()
	b := machine.NewBuilder()
	x, selectedS, markS := b.Sym("x"), b.Sym("selected"), b.Sym("mark")
	b.Read("n", "x")
	b.Compute(func(r *machine.Regs) {
		if r.Get(x) == "0" {
			r.Set(selectedS, true)
			r.Set(markS, "taken")
		} else {
			r.Set(markS, "seen")
		}
	})
	b.Write("n", "mark")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	res, err := mc.Check(func() (*machine.Machine, error) {
		return machine.New(s, system.InstrS, prog)
	}, mc.Options{StatePreds: []mc.StatePredicate{mc.UniquenessPred}, Obs: Obs})
	if err != nil {
		return nil, err
	}
	t.AddRow("states explored", fmt.Sprint(res.StatesExplored))
	t.AddRow("transitions / dedup hits / stutter steps",
		fmt.Sprintf("%d / %d / %d", res.Stats.Transitions, res.Stats.DedupHits, res.Stats.SelfLoops))
	if res.Violation != nil {
		t.AddRow("double-selection schedule found", "yes")
		t.AddRow("witness schedule", fmt.Sprint(res.Violation.Schedule))
	} else {
		t.AddRow("double-selection schedule found", "no")
	}
	d, err := selection.Decide(s, system.InstrS, system.SchedGeneral)
	if err != nil {
		return nil, err
	}
	t.AddRow("decision procedure (general schedules)", yesNo(d.Solvable))

	// The streaming FLP adversary finds the same interleaving
	// constructively: it probes each step on a clone and, when both
	// processors are poised to select, steps them back-to-back.
	fh := &adversary.Harness{
		Sys:        s,
		Instr:      system.InstrS,
		Prog:       prog,
		Sched:      adversary.NewFLP(),
		StatePreds: []mc.StatePredicate{mc.UniquenessPred},
	}
	fres, err := fh.Run()
	if err != nil {
		return nil, err
	}
	adaptive := "no violation (adversary defeated)"
	if fres.Violation != nil {
		adaptive = fmt.Sprintf("%s at step %d (schedule %v)",
			fres.Violation.Reason, fres.Violation.Step, fres.Schedule)
	}
	t.AddRow("adaptive FLP adversary (streaming)", adaptive)
	t.Note("the checker finds the ε/ρ interleaving from Theorem 1's proof: both processors read before either writes")
	return t, nil
}

// E8Hierarchy reproduces the section 9 hierarchy L ⊃ Q ⊃ BF-S ⊃ F-S:
// each witness system is solvable in exactly the models at or above its
// separation level.
func E8Hierarchy() (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "Section 9 — the model-power hierarchy with witnesses",
		Header: []string{"system", "L", "Q", "BF-S", "F-S"},
	}
	ring, err := system.Ring(4)
	if err != nil {
		return nil, err
	}
	marked, err := system.Ring(4)
	if err != nil {
		return nil, err
	}
	marked.ProcInit[0] = "leader"
	rows := []struct {
		name string
		sys  *system.System
	}{
		{"Fig1 (L/Q separator)", system.Fig1()},
		{"Fig2 (Q/BF-S separator)", system.QOverSWitness()},
		{"Fig3 (BF-S/F-S separator)", system.Fig3()},
		{"anonymous ring(4)", ring},
		{"marked ring(4)", marked},
	}
	for _, row := range rows {
		verdict := func(instr system.InstrSet, sch system.ScheduleClass) string {
			d, err := selection.Decide(row.sys, instr, sch)
			if err != nil {
				return "err"
			}
			return yesNo(d.Solvable)
		}
		t.AddRow(row.name,
			verdict(system.InstrL, system.SchedFair),
			verdict(system.InstrQ, system.SchedFair),
			verdict(system.InstrS, system.SchedBoundedFair),
			verdict(system.InstrS, system.SchedFair),
		)
	}
	t.Note("each separator is solvable in the stronger model and unsolvable in the weaker: the strict chain L > Q > bounded-fair S > fair S")
	return t, nil
}

// E9Randomized reproduces the section 8 randomization claims: the
// deterministic baseline deadlocks where Itai–Rodeh and Lehmann–Rabin
// succeed with probability 1.
func E9Randomized(runs int) (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "Section 8 — the added power of randomization",
		Header: []string{"n", "deterministic selection (L)", "IR success", "IR mean phases", "IR mean msgs"},
	}
	for _, n := range []int{3, 5, 8, 16} {
		ring, err := system.Ring(n)
		if err != nil {
			return nil, err
		}
		det := "impossible"
		if n <= 8 {
			d, err := selection.Decide(ring, system.InstrL, system.SchedFair)
			if err != nil {
				return nil, err
			}
			if d.Solvable {
				det = "possible"
			}
		}
		stats, err := randomized.ElectionSweep(int64(n), n, 16, 500, runs)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(n), det,
			fmt.Sprintf("%d/%d", stats.Successes, stats.Runs),
			fmt.Sprintf("%.2f", stats.MeanPhases),
			fmt.Sprintf("%.0f", stats.MeanMsgs))
	}
	rng := rand.New(rand.NewSource(99))
	lr, err := randomized.LehmannRabin(rng, 5, 20_000)
	if err != nil {
		return nil, err
	}
	minMeals := lr.Meals[0]
	for _, m := range lr.Meals {
		if m < minMeals {
			minMeals = m
		}
	}
	steps, err := randomized.StubbornLeftFirst(5, 10_000)
	if err != nil {
		return nil, err
	}
	t.Note("Lehmann–Rabin on 5 philosophers: min meals %d over 20k steps; deterministic left-first deadlocks after %d steps", minMeals, steps)
	return t, nil
}

// E10Orbits reproduces Theorems 10–11 quantitatively: orbits always
// refine similarity, and prime symmetric classes collapse in L while
// composite flipped tables escape.
func E10Orbits() (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "Theorems 10–11 — symmetry vs similarity, prime vs composite",
		Header: []string{"system", "|Aut|", "proc orbits", "sim classes (Q)", "orbits refine sim", "Thm 11 applies"},
	}
	type entry struct {
		name string
		sys  *system.System
	}
	var entries []entry
	for _, n := range []int{3, 5, 7} {
		dp, err := system.Dining(n)
		if err != nil {
			return nil, err
		}
		entries = append(entries, entry{fmt.Sprintf("dining(%d)", n), dp})
	}
	for _, n := range []int{4, 6} {
		dp, err := system.DiningFlipped(n)
		if err != nil {
			return nil, err
		}
		entries = append(entries, entry{fmt.Sprintf("flipped(%d)", n), dp})
	}
	entries = append(entries, entry{"fig2", system.Fig2()})
	for _, e := range entries {
		o, err := autgrp.Compute(e.sys, autgrp.Options{})
		if err != nil {
			return nil, err
		}
		lab, err := core.Similarity(e.sys, core.RuleQ)
		if err != nil {
			return nil, err
		}
		t.AddRow(e.name,
			fmt.Sprint(o.GroupOrder),
			fmt.Sprint(len(o.ProcClasses())),
			fmt.Sprint(lab.NumProcClasses()),
			yesNo(o.RefinesSimilarity(lab)),
			yesNo(autgrp.Theorem11Hypothesis(e.sys, o, o.ProcOrbit[0])),
		)
	}
	t.Note("Theorem 10: symmetric nodes are similar in Q (orbits refine similarity everywhere); Theorem 11 bites exactly at prime orbit sizes")
	return t, nil
}

// E11EliteL reproduces Theorems 7–9 / Algorithm 4: relabel-outcome
// versions, ELITE construction, and end-to-end runs selecting exactly one
// processor.
func E11EliteL(runsPerSystem int) (*Table, error) {
	t := &Table{
		ID:     "E11",
		Title:  "Theorems 7–9 — ELITE and Algorithm 4 in L",
		Header: []string{"system", "versions", "solvable", "|ELITE|", "runs selecting exactly one"},
	}
	entries := []struct {
		name string
		sys  *system.System
	}{
		{"fig1", system.Fig1()},
		{"fig2", system.Fig2()},
		{"ring(4)", mustRing(4)},
		{"dining(5)", mustDining(5)},
	}
	for _, e := range entries {
		d, err := selection.DecideL(e.sys, family.RelabelOptions{})
		if err != nil {
			return nil, err
		}
		runs := "-"
		if d.Solvable {
			prog, _, err := selection.Select(e.sys, system.InstrL, system.SchedFair)
			if err != nil {
				return nil, err
			}
			good := 0
			for seed := 0; seed < runsPerSystem; seed++ {
				m, err := machine.New(e.sys, system.InstrL, prog)
				if err != nil {
					return nil, err
				}
				rng := rand.New(rand.NewSource(int64(seed)))
				for r := 0; r < 4000 && !m.AllHalted(); r++ {
					round, err := sched.ShuffledRounds(rng, e.sys.NumProcs(), 1)
					if err != nil {
						return nil, err
					}
					if _, err := m.Run(round); err != nil {
						return nil, err
					}
				}
				if len(m.SelectedProcs()) == 1 {
					good++
				}
			}
			runs = fmt.Sprintf("%d/%d", good, runsPerSystem)
		}
		t.AddRow(e.name, fmt.Sprint(d.NumVersions), yesNo(d.Solvable), fmt.Sprint(len(d.Elite)), runs)
	}
	t.Note("rings and the five-table have a relabel outcome keeping everyone paired (no selection); same-name sharers always separate")
	return t, nil
}

// E12MsgPass reproduces the section 6 message-passing claims.
func E12MsgPass() (*Table, error) {
	t := &Table{
		ID:     "E12",
		Title:  "Section 6 — message passing and CSP",
		Header: []string{"network", "classes (count)", "unique procs", "classes (set)", "CSP-transfer", "safe deciders (fair)"},
	}
	type entry struct {
		name string
		net  *msgpass.Network
	}
	ring5, err := msgpass.DirectedRing(5)
	if err != nil {
		return nil, err
	}
	marked, err := msgpass.DirectedRing(5)
	if err != nil {
		return nil, err
	}
	marked.Init[0] = "leader"
	bi, err := msgpass.BiRing(4)
	if err != nil {
		return nil, err
	}
	chain, err := msgpass.Chain(4)
	if err != nil {
		return nil, err
	}
	for _, e := range []entry{
		{"directed ring(5)", ring5},
		{"marked ring(5)", marked},
		{"bidirectional ring(4)", bi},
		{"chain(4)", chain},
	} {
		cnt, err := msgpass.Similarity(e.net, true)
		if err != nil {
			return nil, err
		}
		set, err := msgpass.Similarity(e.net, false)
		if err != nil {
			return nil, err
		}
		csp, err := msgpass.NoAdjacentSameLabel(e.net, cnt)
		if err != nil {
			return nil, err
		}
		rel, err := msgpass.Mimics(e.net)
		if err != nil {
			return nil, err
		}
		t.AddRow(e.name,
			fmt.Sprint(countClasses(cnt)),
			fmt.Sprint(len(msgpass.UniqueLabels(cnt))),
			fmt.Sprint(countClasses(set)),
			yesNo(csp),
			fmt.Sprint(len(msgpass.MimicsNobody(rel))),
		)
	}
	t.Note("the chain's sources are confusable under mere fairness (only the deepest node can decide); strongly-connected networks behave like Q")
	return t, nil
}

func countClasses(labels []int) int {
	seen := make(map[int]bool)
	for _, l := range labels {
		seen[l] = true
	}
	return len(seen)
}

func mustRing(n int) *system.System {
	s, err := system.Ring(n)
	if err != nil {
		panic(err) // builder sizes are compile-time constants here
	}
	return s
}

func mustDining(n int) *system.System {
	s, err := system.Dining(n)
	if err != nil {
		panic(err) // builder sizes are compile-time constants here
	}
	return s
}
