// Package sysdsl parses and serializes a small text format for systems,
// so the command-line tools can read networks from files, and exports
// Graphviz DOT for visualization.
//
// Format (order of sections is free; '#' starts a comment):
//
//	names left right
//	var fork0 init=0
//	var fork1
//	proc phil0 init=think left=fork0 right=fork1
//	proc phil1 left=fork1 right=fork0
//
// Every processor must bind every declared name to a declared variable.
// Missing init attributes default to "0".
//
// Generator directives replace the whole description:
//
//	gen ring 7
//	gen dining 5
//	gen dining-flipped 6
//	gen star 4
//	gen tree 7
//	gen fig1 | fig2 | fig3
package sysdsl

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"simsym/internal/system"
)

// Sentinel errors.
var (
	ErrSyntax     = errors.New("sysdsl: syntax error")
	ErrUnknown    = errors.New("sysdsl: unknown reference")
	ErrIncomplete = errors.New("sysdsl: incomplete description")
)

// Parse reads the DSL (or a generator directive) and returns the system.
func Parse(src string) (*system.System, error) {
	lines := strings.Split(src, "\n")
	var names []system.Name
	type procDecl struct {
		id    string
		init  string
		binds map[string]string
		line  int
	}
	type varDecl struct {
		id   string
		init string
	}
	var procs []procDecl
	var vars []varDecl
	varIdx := make(map[string]int)

	for lineNo, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "gen":
			return generate(fields[1:], lineNo+1)
		case "names":
			if len(fields) < 2 {
				return nil, fmt.Errorf("%w: line %d: names needs at least one name", ErrSyntax, lineNo+1)
			}
			if names != nil {
				return nil, fmt.Errorf("%w: line %d: duplicate names line", ErrSyntax, lineNo+1)
			}
			for _, f := range fields[1:] {
				names = append(names, system.Name(f))
			}
		case "var":
			if len(fields) < 2 {
				return nil, fmt.Errorf("%w: line %d: var needs an id", ErrSyntax, lineNo+1)
			}
			v := varDecl{id: fields[1], init: "0"}
			for _, attr := range fields[2:] {
				k, val, ok := strings.Cut(attr, "=")
				if !ok || k != "init" {
					return nil, fmt.Errorf("%w: line %d: bad var attribute %q", ErrSyntax, lineNo+1, attr)
				}
				v.init = val
			}
			if _, dup := varIdx[v.id]; dup {
				return nil, fmt.Errorf("%w: line %d: duplicate var %q", ErrSyntax, lineNo+1, v.id)
			}
			varIdx[v.id] = len(vars)
			vars = append(vars, v)
		case "proc":
			if len(fields) < 2 {
				return nil, fmt.Errorf("%w: line %d: proc needs an id", ErrSyntax, lineNo+1)
			}
			p := procDecl{id: fields[1], init: "0", binds: make(map[string]string), line: lineNo + 1}
			for _, attr := range fields[2:] {
				k, val, ok := strings.Cut(attr, "=")
				if !ok {
					return nil, fmt.Errorf("%w: line %d: bad proc attribute %q", ErrSyntax, lineNo+1, attr)
				}
				if k == "init" {
					p.init = val
				} else {
					if _, dup := p.binds[k]; dup {
						return nil, fmt.Errorf("%w: line %d: duplicate binding %q", ErrSyntax, lineNo+1, k)
					}
					p.binds[k] = val
				}
			}
			procs = append(procs, p)
		default:
			return nil, fmt.Errorf("%w: line %d: unknown keyword %q", ErrSyntax, lineNo+1, fields[0])
		}
	}

	if len(names) == 0 {
		return nil, fmt.Errorf("%w: no names line", ErrIncomplete)
	}
	if len(procs) == 0 {
		return nil, fmt.Errorf("%w: no processors", ErrIncomplete)
	}
	s := &system.System{
		Names:    names,
		ProcIDs:  make([]string, len(procs)),
		VarIDs:   make([]string, len(vars)),
		Nbr:      make([][]int, len(procs)),
		ProcInit: make([]string, len(procs)),
		VarInit:  make([]string, len(vars)),
	}
	for i, v := range vars {
		s.VarIDs[i] = v.id
		s.VarInit[i] = v.init
	}
	for i, p := range procs {
		s.ProcIDs[i] = p.id
		s.ProcInit[i] = p.init
		row := make([]int, len(names))
		for j, n := range names {
			target, ok := p.binds[string(n)]
			if !ok {
				return nil, fmt.Errorf("%w: line %d: proc %q missing binding for name %q",
					ErrIncomplete, p.line, p.id, n)
			}
			vi, ok := varIdx[target]
			if !ok {
				return nil, fmt.Errorf("%w: line %d: proc %q binds %q to undeclared var %q",
					ErrUnknown, p.line, p.id, n, target)
			}
			row[j] = vi
		}
		for bound := range p.binds {
			found := false
			for _, n := range names {
				if string(n) == bound {
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("%w: line %d: proc %q binds unknown name %q",
					ErrUnknown, p.line, p.id, bound)
			}
		}
		s.Nbr[i] = row
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("sysdsl: %w", err)
	}
	return s, nil
}

func generate(args []string, lineNo int) (*system.System, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("%w: line %d: gen needs a generator", ErrSyntax, lineNo)
	}
	size := 0
	if len(args) >= 2 {
		v, err := strconv.Atoi(args[1])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: bad size %q", ErrSyntax, lineNo, args[1])
		}
		size = v
	}
	switch args[0] {
	case "ring":
		return system.Ring(size)
	case "dining":
		return system.Dining(size)
	case "dining-flipped":
		return system.DiningFlipped(size)
	case "star":
		return system.Star(size)
	case "tree":
		return system.Tree(size)
	case "fig1":
		return system.Fig1(), nil
	case "fig2":
		return system.Fig2(), nil
	case "fig3":
		return system.Fig3(), nil
	case "q-over-s":
		return system.QOverSWitness(), nil
	default:
		return nil, fmt.Errorf("%w: line %d: unknown generator %q", ErrUnknown, lineNo, args[0])
	}
}

// Serialize renders a system in the DSL; Parse(Serialize(s)) reproduces s.
func Serialize(s *system.System) string {
	var b strings.Builder
	b.WriteString("names")
	for _, n := range s.Names {
		fmt.Fprintf(&b, " %s", n)
	}
	b.WriteByte('\n')
	for v := range s.VarIDs {
		fmt.Fprintf(&b, "var %s init=%s\n", s.VarIDs[v], s.VarInit[v])
	}
	for p := range s.ProcIDs {
		fmt.Fprintf(&b, "proc %s init=%s", s.ProcIDs[p], s.ProcInit[p])
		for j, n := range s.Names {
			fmt.Fprintf(&b, " %s=%s", n, s.VarIDs[s.Nbr[p][j]])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DOT renders the bipartite network in Graphviz format: processors as
// boxes, variables as ellipses, edges labeled by local names.
func DOT(s *system.System, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", title)
	b.WriteString("  layout=neato; overlap=false;\n")
	for p := range s.ProcIDs {
		fmt.Fprintf(&b, "  %q [shape=box,label=\"%s\\n%s\"];\n", "p:"+s.ProcIDs[p], s.ProcIDs[p], s.ProcInit[p])
	}
	for v := range s.VarIDs {
		fmt.Fprintf(&b, "  %q [shape=ellipse,label=\"%s\\n%s\"];\n", "v:"+s.VarIDs[v], s.VarIDs[v], s.VarInit[v])
	}
	type edge struct {
		p, v int
		n    system.Name
	}
	var edges []edge
	for p := range s.Nbr {
		for j, v := range s.Nbr[p] {
			edges = append(edges, edge{p: p, v: v, n: s.Names[j]})
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].p != edges[b].p {
			return edges[a].p < edges[b].p
		}
		return edges[a].n < edges[b].n
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  %q -- %q [label=%q];\n", "p:"+s.ProcIDs[e.p], "v:"+s.VarIDs[e.v], string(e.n))
	}
	b.WriteString("}\n")
	return b.String()
}
