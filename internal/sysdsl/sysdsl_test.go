package sysdsl

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"simsym/internal/system"
)

const diningSrc = `
# two philosophers sharing forks both ways
names left right
var fork0 init=0
var fork1
proc phil0 init=think left=fork0 right=fork1
proc phil1 init=think left=fork1 right=fork0
`

func TestParseBasic(t *testing.T) {
	s, err := Parse(diningSrc)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumProcs() != 2 || s.NumVars() != 2 {
		t.Fatalf("size = (%d,%d)", s.NumProcs(), s.NumVars())
	}
	if s.ProcInit[0] != "think" {
		t.Errorf("init = %q", s.ProcInit[0])
	}
	if s.VarInit[1] != "0" {
		t.Errorf("default var init = %q", s.VarInit[1])
	}
	v, err := s.NNbr(0, "right")
	if err != nil {
		t.Fatal(err)
	}
	if s.VarIDs[v] != "fork1" {
		t.Errorf("phil0's right = %s", s.VarIDs[v])
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 50; trial++ {
		s, err := system.RandomSystem(rng, system.RandomOpts{
			Procs:      1 + rng.Intn(6),
			Vars:       1 + rng.Intn(5),
			Names:      1 + rng.Intn(3),
			InitStates: 1 + rng.Intn(3),
		})
		if err != nil {
			continue
		}
		text := Serialize(s)
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("trial %d: parse(serialize) failed: %v\n%s", trial, err, text)
		}
		if back.Describe() != s.Describe() {
			t.Fatalf("trial %d: round trip changed the system:\n%s\nvs\n%s",
				trial, s.Describe(), back.Describe())
		}
	}
}

func TestGenerators(t *testing.T) {
	tests := []struct {
		src       string
		procs     int
		wantError bool
	}{
		{"gen ring 5", 5, false},
		{"gen dining 5", 5, false},
		{"gen dining-flipped 6", 6, false},
		{"gen star 3", 3, false},
		{"gen fig1", 2, false},
		{"gen fig2", 3, false},
		{"gen fig3", 3, false},
		{"gen q-over-s", 3, false},
		{"gen nosuch 3", 0, true},
		{"gen ring x", 0, true},
		{"gen", 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			s, err := Parse(tt.src)
			if tt.wantError {
				if err == nil {
					t.Error("expected error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if s.NumProcs() != tt.procs {
				t.Errorf("procs = %d, want %d", s.NumProcs(), tt.procs)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want error
	}{
		{"no names", "var v\nproc p n=v", ErrIncomplete},
		{"no procs", "names n\nvar v", ErrIncomplete},
		{"missing binding", "names a b\nvar v\nproc p a=v", ErrIncomplete},
		{"unknown var", "names a\nproc p a=ghost", ErrUnknown},
		{"unknown name bound", "names a\nvar v\nproc p a=v b=v", ErrUnknown},
		{"dup var", "names a\nvar v\nvar v\nproc p a=v", ErrSyntax},
		{"dup names line", "names a\nnames b\nvar v\nproc p a=v", ErrSyntax},
		{"bad keyword", "wibble", ErrSyntax},
		{"bad var attr", "names a\nvar v color=red\nproc p a=v", ErrSyntax},
		{"bad proc attr", "names a\nvar v\nproc p a", ErrSyntax},
		{"dup binding", "names a\nvar v\nproc p a=v a=v", ErrSyntax},
		{"empty names", "names", ErrSyntax},
		{"var without id", "names a\nvar", ErrSyntax},
		{"proc without id", "names a\nvar v\nproc", ErrSyntax},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.src); !errors.Is(err, tt.want) {
				t.Errorf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := "# header\n\nnames n # trailing\n\nvar v # v\nproc p n=v\n# footer\n"
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumProcs() != 1 {
		t.Errorf("procs = %d", s.NumProcs())
	}
}

func TestDOT(t *testing.T) {
	s := system.Fig2()
	dot := DOT(s, "fig2")
	for _, want := range []string{"graph \"fig2\"", "p:p1", "v:v3", "label=\"m\"", "shape=box", "shape=ellipse"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Edge count: every (proc,name) pair appears once.
	if got := strings.Count(dot, " -- "); got != 6 {
		t.Errorf("edges = %d, want 6", got)
	}
}
