// Package obsflag wires the shared observability command-line surface —
// -metrics, -trace-jsonl, -pprof — into the daemons. It owns the flag
// registration, the recorder construction, and the end-of-run flush, so
// selectd, diningd, and experiments expose an identical surface.
package obsflag

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served by -pprof
	"os"

	"simsym/internal/obs"
)

// Flags holds the parsed observability flags.
type Flags struct {
	// Metrics prints the metrics registry in Prometheus text exposition
	// format to the command's output when the run finishes.
	Metrics bool
	// Trace is a file path receiving the structured event stream as JSON
	// lines ("-" for stdout).
	Trace string
	// Pprof is a listen address (e.g. "localhost:6060") serving
	// net/http/pprof under /debug/pprof/ and the live metrics registry
	// under /metrics.
	Pprof string

	rec   *obs.Recorder
	file  *os.File
	jsonl *obs.JSONL
}

// Register installs the observability flags on fs.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.BoolVar(&f.Metrics, "metrics", false, "print the metrics registry (Prometheus text format) when the run finishes")
	fs.StringVar(&f.Trace, "trace-jsonl", "", "write the structured event stream to `FILE` as JSON lines (- for stdout)")
	fs.StringVar(&f.Pprof, "pprof", "", "serve net/http/pprof and /metrics on `ADDR` (e.g. localhost:6060)")
	return f
}

// Recorder builds the recorder the flags imply and starts the -pprof
// server when requested. It returns nil — free on every hot path — when
// no observability flag is set. Call Close when the run finishes.
func (f *Flags) Recorder() (*obs.Recorder, error) {
	if !f.Metrics && f.Trace == "" && f.Pprof == "" {
		return nil, nil
	}
	sink := obs.Sink(obs.Discard)
	switch f.Trace {
	case "":
	case "-":
		f.jsonl = obs.NewJSONL(os.Stdout)
		sink = f.jsonl
	default:
		file, err := os.Create(f.Trace)
		if err != nil {
			return nil, fmt.Errorf("obsflag: %w", err)
		}
		f.file = file
		f.jsonl = obs.NewJSONL(file)
		sink = f.jsonl
	}
	f.rec = obs.New(sink)
	if f.Pprof != "" {
		mux := http.DefaultServeMux
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			_ = f.rec.Metrics().WriteText(w)
		})
		go func() {
			if err := http.ListenAndServe(f.Pprof, mux); err != nil {
				fmt.Fprintln(os.Stderr, "obsflag: pprof server:", err)
			}
		}()
	}
	return f.rec, nil
}

// Close flushes the JSONL trace and, with -metrics, renders the registry
// to out. Safe to call when Recorder returned nil.
func (f *Flags) Close(out io.Writer) error {
	if f.jsonl != nil {
		if err := f.jsonl.Close(); err != nil {
			return fmt.Errorf("obsflag: flushing trace: %w", err)
		}
	}
	if f.file != nil {
		if err := f.file.Close(); err != nil {
			return fmt.Errorf("obsflag: closing trace: %w", err)
		}
	}
	if f.Metrics && f.rec != nil {
		fmt.Fprintln(out, "--- metrics ---")
		if err := f.rec.Metrics().WriteText(out); err != nil {
			return fmt.Errorf("obsflag: rendering metrics: %w", err)
		}
	}
	return nil
}
