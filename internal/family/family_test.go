package family

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"simsym/internal/core"
	"simsym/internal/system"
)

func TestNewHomogeneousValidation(t *testing.T) {
	a := system.Fig1()
	b := system.Fig1()
	b.ProcInit[0] = "X"
	if _, err := NewHomogeneous([]*system.System{a, b}); err != nil {
		t.Errorf("init-only difference should be homogeneous: %v", err)
	}
	c := system.Fig2()
	if _, err := NewHomogeneous([]*system.System{a, c}); !errors.Is(err, ErrNotHomogeneous) {
		t.Errorf("different topology = %v, want ErrNotHomogeneous", err)
	}
	if _, err := NewHomogeneous(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty = %v, want ErrEmpty", err)
	}
}

func TestUnionRestrictionMatchesMemberLabeling(t *testing.T) {
	// Folklore 1-WL locality, load-bearing for the VERSIONS machinery:
	// the family (union) labeling restricted to a member induces exactly
	// the member's own similarity classes.
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 60; trial++ {
		s, err := system.RandomSystem(rng, system.RandomOpts{
			Procs:      1 + rng.Intn(6),
			Vars:       1 + rng.Intn(4),
			Names:      1 + rng.Intn(3),
			InitStates: 1 + rng.Intn(3),
		})
		if err != nil {
			continue
		}
		other := s.Clone()
		for p := range other.ProcInit {
			other.ProcInit[p] = other.ProcInit[p] + "x" + string(rune('0'+rng.Intn(2)))
		}
		fam, err := NewHomogeneous([]*system.System{s, other})
		if err != nil {
			t.Fatal(err)
		}
		labs, err := fam.Labeling(core.RuleQ)
		if err != nil {
			t.Fatal(err)
		}
		own, err := core.Similarity(s, core.RuleQ)
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < s.NumProcs(); p++ {
			for q := 0; q < s.NumProcs(); q++ {
				sameFam := labs[0].ProcLabels[p] == labs[0].ProcLabels[q]
				sameOwn := own.ProcLabels[p] == own.ProcLabels[q]
				if sameFam != sameOwn {
					t.Fatalf("trial %d: restriction mismatch on procs %d,%d\n%s", trial, p, q, s.Describe())
				}
			}
		}
	}
}

func TestIdenticalMembersShareLabels(t *testing.T) {
	// Two identical members must be labeled identically across the
	// union: corresponding nodes get the same label.
	s := system.Fig2()
	fam, err := NewHomogeneous([]*system.System{s, s.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	labs, err := fam.Labeling(core.RuleQ)
	if err != nil {
		t.Fatal(err)
	}
	for p := range labs[0].ProcLabels {
		if labs[0].ProcLabels[p] != labs[1].ProcLabels[p] {
			t.Errorf("proc %d labeled differently across identical members", p)
		}
	}
}

func TestRelabelOutcomesFig1(t *testing.T) {
	// Fig1: one variable with two lockers: exactly 2 outcomes.
	outcomes, err := RelabelOutcomes(system.Fig1(), RelabelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 2 {
		t.Fatalf("outcomes = %d, want 2", len(outcomes))
	}
	// In each outcome, the two processors have different states (ranks
	// 0 and 1 on the shared variable).
	for i, o := range outcomes {
		if o.ProcInit[0] == o.ProcInit[1] {
			t.Errorf("outcome %d: same-name sharers got identical relabel states", i)
		}
		if o.VarInit[0] != "2" {
			t.Errorf("outcome %d: var init = %q, want degree 2", i, o.VarInit[0])
		}
	}
}

func TestRelabelOutcomesDining5(t *testing.T) {
	dp, err := system.Dining(5)
	if err != nil {
		t.Fatal(err)
	}
	outcomes, err := RelabelOutcomes(dp, RelabelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 32 { // 2^5 fork orders
		t.Fatalf("outcomes = %d, want 32", len(outcomes))
	}
	// The round-robin outcome — every philosopher rank 0 on one side and
	// rank 1 on the other — must be present: it makes all philosophers
	// identical, which is the Theorem 11 witness.
	found := false
	for _, o := range outcomes {
		all := true
		for p := 1; p < 5; p++ {
			if o.ProcInit[p] != o.ProcInit[0] {
				all = false
				break
			}
		}
		if all {
			found = true
			break
		}
	}
	if !found {
		t.Error("no relabel outcome gives all philosophers the same state (Theorem 11 witness missing)")
	}
}

func TestVersionsFig1AllDistinguish(t *testing.T) {
	// Fig1 in L: both outcomes isomorphic; every version labels the two
	// processors differently (they share v under the same name).
	versions, err := Versions(system.Fig1(), RelabelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) == 0 {
		t.Fatal("no versions")
	}
	for i, v := range versions {
		if v.ProcLabels[0] == v.ProcLabels[1] {
			t.Errorf("version %d: same-name sharers similar after relabel", i)
		}
		if len(v.UniqueProcs()) != 2 {
			t.Errorf("version %d: unique procs = %v", i, v.UniqueProcs())
		}
	}
}

func TestVersionsRingNeverDistinguish(t *testing.T) {
	// Ring in L: forks are shared under different names, so the
	// round-robin relabel outcome keeps all processors similar; at
	// least one version must have every processor paired (hence no
	// selection in L — anonymous rings stay anonymous even with locks).
	ring, err := system.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	versions, err := Versions(ring, RelabelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	foundAllPaired := false
	for _, v := range versions {
		if v.EveryProcPaired() {
			foundAllPaired = true
			break
		}
	}
	if !foundAllPaired {
		t.Error("some relabel outcome of the ring should keep all processors paired")
	}
}

func TestVersionsShareLabelSpace(t *testing.T) {
	// Labels must be comparable across versions: the same rank pattern
	// in two different outcomes gets the same label.
	versions, err := Versions(system.Fig1(), RelabelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 1 {
		// The two outcomes are label-isomorphic as vectors only if the
		// union merges them; they differ in WHICH processor has rank 0,
		// so the dedup keeps both, but their label SETS coincide.
		if len(versions) != 2 {
			t.Fatalf("versions = %d, want 1 or 2", len(versions))
		}
		a, b := versions[0].LabelSet(), versions[1].LabelSet()
		if len(a) != len(b) {
			t.Fatalf("label sets differ in size: %v vs %v", a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("label sets differ: %v vs %v", a, b)
			}
		}
	}
}

func TestRelabelOutcomeLimit(t *testing.T) {
	ring, err := system.Ring(12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RelabelOutcomes(ring, RelabelOptions{Limit: 100}); !errors.Is(err, ErrTooManyOutcomes) {
		t.Errorf("limit error = %v, want ErrTooManyOutcomes", err)
	}
}

func TestRelabelStateEncoding(t *testing.T) {
	if RelabelState("x", []int{0, 2}) == RelabelState("x", []int{2, 0}) {
		t.Error("rank order must matter")
	}
	if RelabelState("a", []int{1}) == RelabelState("b", []int{1}) {
		t.Error("original init must matter")
	}
}

// TestRelabelStateInjective pins the length-prefixed encoding: distinct
// (orig, ranks) pairs must encode distinctly even when orig contains the
// separator bytes '|' and ',' or digit runs that mimic rank suffixes.
func TestRelabelStateInjective(t *testing.T) {
	origs := []string{"", "a", "a|b", "1|a", "a,1", "0", "a,", ",", "2|a,1"}
	rankss := [][]int{nil, {0}, {1}, {0, 1}, {1, 0}, {10}, {1, 0, 1}}
	seen := make(map[string][2]string)
	for _, orig := range origs {
		for _, ranks := range rankss {
			enc := RelabelState(orig, ranks)
			id := [2]string{orig, fmt.Sprint(ranks)}
			if prev, dup := seen[enc]; dup && prev != id {
				t.Errorf("collision: %v and %v both encode to %q", prev, id, enc)
			}
			seen[enc] = id
		}
	}
}
