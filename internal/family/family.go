// Package family implements the paper's families of systems (section 5):
// sets of systems sharing an instruction set, schedule class, and NAMES,
// homogeneous families (same topology, differing only in initial states),
// union-system labelings, and the relabel machinery that reduces systems
// in L to homogeneous families in Q.
//
// The key construction: executing relabel(k) — lock each neighboring
// variable, read and increment its counter — gives every processor a rank
// on each named variable. The set R of possible post-relabel states is
// the product of per-variable lock orders; {(N, state, L, F) | state ∈ R}
// is a homogeneous family, and its members' similarity labelings are the
// paper's VERSIONS. All VERSIONS share one label space here because they
// are computed on the disjoint union of the members (the paper's
// "similarity labeling for the family").
package family

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"simsym/internal/core"
	"simsym/internal/system"
)

// Sentinel errors.
var (
	ErrNotHomogeneous  = errors.New("family: members differ in topology")
	ErrEmpty           = errors.New("family: no members")
	ErrTooManyOutcomes = errors.New("family: relabel outcome count exceeds limit")
)

// DefaultOutcomeLimit bounds exhaustive relabel-outcome enumeration.
const DefaultOutcomeLimit = 20_000

// Family is a list of systems with identical NAMES.
type Family struct {
	Members []*system.System
}

// NewHomogeneous validates that all members share one topology (names and
// edges), differing only in initial states, and returns the family.
func NewHomogeneous(members []*system.System) (*Family, error) {
	if len(members) == 0 {
		return nil, ErrEmpty
	}
	ref := members[0]
	for i, m := range members[1:] {
		if err := sameTopology(ref, m); err != nil {
			return nil, fmt.Errorf("member %d: %w", i+1, err)
		}
	}
	return &Family{Members: members}, nil
}

func sameTopology(a, b *system.System) error {
	if len(a.Names) != len(b.Names) || a.NumProcs() != b.NumProcs() || a.NumVars() != b.NumVars() {
		return fmt.Errorf("%w: size mismatch", ErrNotHomogeneous)
	}
	for j := range a.Names {
		if a.Names[j] != b.Names[j] {
			return fmt.Errorf("%w: NAMES differ", ErrNotHomogeneous)
		}
	}
	for p := range a.Nbr {
		for j := range a.Nbr[p] {
			if a.Nbr[p][j] != b.Nbr[p][j] {
				return fmt.Errorf("%w: edge (%d,%s)", ErrNotHomogeneous, p, a.Names[j])
			}
		}
	}
	return nil
}

// MemberLabeling is one member's restriction of the family labeling; all
// MemberLabelings of one call share a label space, so labels are
// comparable across members.
type MemberLabeling struct {
	Member     int
	ProcLabels []int
	VarLabels  []int
}

// UniqueProcs returns processors uniquely labeled within this member.
func (ml *MemberLabeling) UniqueProcs() []int {
	count := make(map[int]int)
	for _, l := range ml.ProcLabels {
		count[l]++
	}
	var out []int
	for p, l := range ml.ProcLabels {
		if count[l] == 1 {
			out = append(out, p)
		}
	}
	return out
}

// EveryProcPaired reports whether every processor of the member shares
// its label with another processor of the same member.
func (ml *MemberLabeling) EveryProcPaired() bool {
	count := make(map[int]int)
	for _, l := range ml.ProcLabels {
		count[l]++
	}
	for _, l := range ml.ProcLabels {
		if count[l] < 2 {
			return false
		}
	}
	return true
}

// LabelSet returns the member's set of processor labels, sorted.
func (ml *MemberLabeling) LabelSet() []int {
	seen := make(map[int]bool)
	for _, l := range ml.ProcLabels {
		seen[l] = true
	}
	out := make([]int, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// Labeling computes the similarity labeling of the family — the labeling
// of the disjoint union of its members (section 5) — and returns each
// member's restriction, all in one shared label space.
func (f *Family) Labeling(rule core.Rule) ([]*MemberLabeling, error) {
	if len(f.Members) == 0 {
		return nil, ErrEmpty
	}
	u, err := system.UnionAll(f.Members)
	if err != nil {
		return nil, fmt.Errorf("family: %w", err)
	}
	lab, err := core.Similarity(u, rule)
	if err != nil {
		return nil, fmt.Errorf("family: %w", err)
	}
	out := make([]*MemberLabeling, len(f.Members))
	pOff, vOff := 0, 0
	for i, m := range f.Members {
		out[i] = &MemberLabeling{
			Member:     i,
			ProcLabels: append([]int(nil), lab.ProcLabels[pOff:pOff+m.NumProcs()]...),
			VarLabels:  append([]int(nil), lab.VarLabels[vOff:vOff+m.NumVars()]...),
		}
		pOff += m.NumProcs()
		vOff += m.NumVars()
	}
	return out, nil
}

// RelabelOptions configures relabel-outcome enumeration.
type RelabelOptions struct {
	// Limit bounds the number of outcomes; 0 means DefaultOutcomeLimit.
	Limit int
}

// RelabelState encodes a processor's post-relabel initial state: its
// original initial state plus, for each name in order, the count it read
// when it locked that neighbor (its rank among the variable's lockers).
// The original state is length-prefixed so one containing the separator
// bytes cannot shift the frame and collide with a different
// (state, ranks) pair. Mirrored by distlabel's relabelStateString (kept
// in sync by a cross-package test).
func RelabelState(orig string, ranks []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%s", len(orig), orig)
	for _, r := range ranks {
		fmt.Fprintf(&b, ",%d", r)
	}
	return b.String()
}

// RelabelOutcomes enumerates the set R: every assignment of lock orders
// to variables, converted into a post-relabel system. Each variable with
// d incident edges is locked d times (once per edge; a processor naming
// the same variable twice locks it once per name); its lockers receive
// ranks 0..d-1 in every possible order.
//
// The returned systems all share the topology of sys, have processor
// initial states produced by RelabelState, and variable initial states
// equal to the variable's degree (relabel leaves the counter at the
// number of lockers) — so they form a homogeneous family.
//
// Note: R is over-approximated by the full per-variable order product;
// relabel's sequential locking can correlate orders across variables in
// some networks. The over-approximation is conservative for the paper's
// constructions and exact on its examples (see DESIGN.md).
func RelabelOutcomes(sys *system.System, opts RelabelOptions) ([]*system.System, error) {
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("family: %w", err)
	}
	limit := opts.Limit
	if limit <= 0 {
		limit = DefaultOutcomeLimit
	}
	vn := sys.VarNeighbors()
	// Count outcomes: product of d_v! over variables.
	total := 1
	for v := range vn {
		f := factorial(len(vn[v]))
		if total > limit/max(f, 1) && f > 1 {
			return nil, fmt.Errorf("%w: limit %d", ErrTooManyOutcomes, limit)
		}
		total *= f
		if total > limit {
			return nil, fmt.Errorf("%w: %d > %d", ErrTooManyOutcomes, total, limit)
		}
	}

	// Enumerate per-variable permutations of incident edges.
	perVar := make([][][]system.Edge, len(vn))
	for v := range vn {
		perVar[v] = permutations(vn[v])
	}

	var outcomes []*system.System
	choice := make([]int, len(vn))
	for {
		outcomes = append(outcomes, buildOutcome(sys, vn, perVar, choice))
		// Advance the mixed-radix counter.
		i := 0
		for i < len(choice) {
			choice[i]++
			if choice[i] < len(perVar[i]) {
				break
			}
			choice[i] = 0
			i++
		}
		if i == len(choice) {
			break
		}
	}
	return outcomes, nil
}

func buildOutcome(sys *system.System, vn [][]system.Edge, perVar [][][]system.Edge, choice []int) *system.System {
	out := sys.Clone()
	// ranks[p][nameIdx] = rank of processor p's (p,name) edge on its
	// variable, under the chosen orders.
	ranks := make([][]int, sys.NumProcs())
	for p := range ranks {
		ranks[p] = make([]int, len(sys.Names))
	}
	for v := range vn {
		order := perVar[v][choice[v]]
		for rank, e := range order {
			ranks[e.Proc][e.NameIdx] = rank
		}
	}
	for p := range ranks {
		out.ProcInit[p] = RelabelState(sys.ProcInit[p], ranks[p])
	}
	for v := range vn {
		out.VarInit[v] = fmt.Sprintf("%d", len(vn[v]))
	}
	return out
}

// Versions computes the paper's VERSIONS for a system in L: the
// similarity labelings (in Q, shared label space) of every relabel
// outcome, deduplicated up to identical label vectors.
func Versions(sys *system.System, opts RelabelOptions) ([]*MemberLabeling, error) {
	outcomes, err := RelabelOutcomes(sys, opts)
	if err != nil {
		return nil, err
	}
	fam, err := NewHomogeneous(outcomes)
	if err != nil {
		return nil, err
	}
	labs, err := fam.Labeling(core.RuleQ)
	if err != nil {
		return nil, err
	}
	// Dedup identical versions (identical proc label vectors).
	seen := make(map[string]bool)
	var out []*MemberLabeling
	for _, ml := range labs {
		key := fmt.Sprint(ml.ProcLabels)
		if !seen[key] {
			seen[key] = true
			out = append(out, ml)
		}
	}
	return out, nil
}

func factorial(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

func permutations(edges []system.Edge) [][]system.Edge {
	if len(edges) == 0 {
		return [][]system.Edge{{}}
	}
	var out [][]system.Edge
	var rec func(cur []system.Edge, rest []system.Edge)
	rec = func(cur []system.Edge, rest []system.Edge) {
		if len(rest) == 0 {
			out = append(out, append([]system.Edge(nil), cur...))
			return
		}
		for i := range rest {
			next := make([]system.Edge, 0, len(rest)-1)
			next = append(next, rest[:i]...)
			next = append(next, rest[i+1:]...)
			rec(append(cur, rest[i]), next)
		}
	}
	rec(nil, edges)
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
