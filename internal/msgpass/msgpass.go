// Package msgpass carries the paper's similarity theory to message
// passing (section 6).
//
// In an asynchronous message-passing system the environment of a
// processor depends only on the processors that can send messages to it:
// similarity refinement runs over the in-neighbor structure of a directed
// processor graph. The paper's claims implemented here:
//
//   - Asynchronous bidirectional systems behave like Q: environments
//     count in-neighbor labels (multisets), and a distributed algorithm
//     (flooding) lets every processor learn its label.
//   - A unidirectional, fair, not strongly-connected system in which no
//     processor knows its in-degree suffers the fair-S problems: the
//     mimicry relation over in-closed subnetworks governs selection.
//   - Extended CSP relates to asynchronous bidirectional message passing
//     as L relates to Q: a supersimilarity labeling transfers to
//     extended CSP iff no two neighboring processors share a label
//     (synchronous rendezvous plays the role of the lock race).
package msgpass

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"simsym/internal/partition"
)

// Sentinel errors.
var (
	ErrEmpty    = errors.New("msgpass: empty network")
	ErrBadEdge  = errors.New("msgpass: edge endpoint out of range")
	ErrTooLarge = errors.New("msgpass: network too large for subset enumeration")
)

// Network is a directed processor graph: Out[p] lists the processors p
// can send messages to.
type Network struct {
	ProcIDs []string
	Init    []string
	Out     [][]int
}

// NumProcs returns |P|.
func (n *Network) NumProcs() int { return len(n.ProcIDs) }

// Validate checks shape and edge ranges.
func (n *Network) Validate() error {
	if n.NumProcs() == 0 {
		return ErrEmpty
	}
	if len(n.Init) != n.NumProcs() || len(n.Out) != n.NumProcs() {
		return fmt.Errorf("%w: shape mismatch", ErrBadEdge)
	}
	for p, outs := range n.Out {
		for _, q := range outs {
			if q < 0 || q >= n.NumProcs() {
				return fmt.Errorf("%w: %d -> %d", ErrBadEdge, p, q)
			}
		}
	}
	return nil
}

// In returns the in-neighbor lists.
func (n *Network) In() [][]int {
	in := make([][]int, n.NumProcs())
	for p, outs := range n.Out {
		for _, q := range outs {
			in[q] = append(in[q], p)
		}
	}
	for p := range in {
		sort.Ints(in[p])
	}
	return in
}

// Bidirectional reports whether every edge has a reverse edge.
func (n *Network) Bidirectional() bool {
	has := make(map[[2]int]bool)
	for p, outs := range n.Out {
		for _, q := range outs {
			has[[2]int{p, q}] = true
		}
	}
	for e := range has {
		if !has[[2]int{e[1], e[0]}] {
			return false
		}
	}
	return true
}

// StronglyConnected reports whether the digraph is strongly connected.
func (n *Network) StronglyConnected() bool {
	if n.NumProcs() == 0 {
		return true
	}
	reach := func(adj [][]int) int {
		seen := make([]bool, n.NumProcs())
		stack := []int{0}
		seen[0] = true
		count := 1
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, q := range adj[p] {
				if !seen[q] {
					seen[q] = true
					count++
					stack = append(stack, q)
				}
			}
		}
		return count
	}
	if reach(n.Out) != n.NumProcs() {
		return false
	}
	return reach(n.In()) == n.NumProcs()
}

// netStructure adapts a Network to partition.Structure and
// partition.TokenStructure. The production path is AppendSignature's
// interned tokens (FixpointWorklist); the string Signature below is the
// oracle path, kept only so FixpointNaive can cross-check the token
// encoding on random networks (see the agreement test).
type netStructure struct {
	net      *Network
	in       [][]int
	counting bool
}

func (s *netStructure) Len() int             { return s.net.NumProcs() }
func (s *netStructure) InitKey(i int) string { return s.net.Init[i] }

// Signature is the run-length string encoding of the in-neighbor label
// multiset (counting) or set (overwrite) — the oracle spelling of
// AppendSignature.
func (s *netStructure) Signature(i int, label func(int) int) string {
	labels := make([]int, 0, len(s.in[i]))
	for _, p := range s.in[i] {
		labels = append(labels, label(p))
	}
	sort.Ints(labels)
	var b strings.Builder
	prev := -1
	run := 0
	flush := func() {
		if run > 0 {
			if s.counting {
				fmt.Fprintf(&b, "%d*%d;", prev, run)
			} else {
				fmt.Fprintf(&b, "%d;", prev)
			}
		}
	}
	for _, l := range labels {
		if l != prev {
			flush()
			prev = l
			run = 0
		}
		run++
	}
	flush()
	return b.String()
}

// AppendSignature implements partition.TokenStructure: the sorted
// multiset (counting) or set (overwrite) of in-neighbor labels as raw
// tokens, so refinement interns ints instead of formatting strings.
func (s *netStructure) AppendSignature(buf []uint64, i int, label func(int) int) []uint64 {
	start := len(buf)
	for _, p := range s.in[i] {
		buf = append(buf, uint64(int64(label(p))))
	}
	partition.SortTokens(buf[start:])
	if s.counting {
		return buf
	}
	out := start
	for k := start; k < len(buf); k++ {
		if k > start && buf[k] == buf[out-1] {
			continue
		}
		buf[out] = buf[k]
		out++
	}
	return buf[:out]
}

func (s *netStructure) Dependents(i int) []int { return s.net.Out[i] }

// Similarity computes the similarity labeling of the network. With
// counting=true, environments are in-neighbor label multisets (the
// bidirectional / known-degree regime, analogous to Q); with
// counting=false they are label sets (the overwrite regime, analogous
// to S).
func Similarity(n *Network, counting bool) ([]int, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	st := &netStructure{net: n, in: n.In(), counting: counting}
	p, err := partition.FixpointWorklist(st)
	if err != nil {
		return nil, fmt.Errorf("msgpass: %w", err)
	}
	return p.Canonical(), nil
}

// UniqueLabels returns the processors with a unique label.
func UniqueLabels(labels []int) []int {
	count := make(map[int]int)
	for _, l := range labels {
		count[l]++
	}
	var out []int
	for p, l := range labels {
		if count[l] == 1 {
			out = append(out, p)
		}
	}
	return out
}

// NoAdjacentSameLabel checks the extended-CSP transfer condition (the
// message-passing analog of Theorem 8): a supersimilarity labeling of the
// asynchronous bidirectional system transfers to extended CSP iff no two
// neighboring processors share a label — a rendezvous between same-label
// neighbors would break the tie, just as a lock race does in L.
func NoAdjacentSameLabel(n *Network, labels []int) (bool, error) {
	if err := n.Validate(); err != nil {
		return false, err
	}
	if len(labels) != n.NumProcs() {
		return false, fmt.Errorf("%w: labeling size", ErrBadEdge)
	}
	for p, outs := range n.Out {
		for _, q := range outs {
			if p != q && labels[p] == labels[q] {
				return false, nil
			}
		}
	}
	return true, nil
}

// MaxMimicProcs bounds mimicry subset enumeration (2^n silence variants).
const MaxMimicProcs = 10

// Mimics computes the appears-as relation for fair message-passing
// systems where no processor knows its in-degree: a processor whose
// in-neighbors have been silent so far is indistinguishable from one
// with no such neighbors at all.
//
// rel[x][y] reports that y can appear as x: there is a silenced set D
// (y ∉ D) such that y in the subnetwork Σ\D is similar — across the
// disjoint union of all such variants, under set environments — to x in
// the FULL network. The x side is the full network because fairness lets
// x wait for its complete in-context before deciding; the y side gets
// silence variants because a finite prefix can hide any of y's context.
// x can safely self-select iff no other processor can appear as it.
//
// For strongly-connected networks the relation collapses to plain
// similarity (a silenced variant visibly truncates every in-history),
// matching the paper's remark that such systems give results like those
// of Q; non-strongly-connected ones exhibit the source confusion that
// makes them behave like fair systems in S.
func Mimics(n *Network) ([][]bool, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	np := n.NumProcs()
	if np > MaxMimicProcs {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooLarge, np, MaxMimicProcs)
	}
	// Build the disjoint union of Σ\D for every D ⊂ P, tracking the
	// global index of each surviving (variant, processor).
	union := &Network{}
	// variantIdx[mask][p] = global index of p in variant Σ\mask, or -1.
	variantIdx := make([][]int, 1<<np)
	for mask := 0; mask < 1<<np; mask++ {
		variantIdx[mask] = make([]int, np)
		var procs []int
		for p := 0; p < np; p++ {
			variantIdx[mask][p] = -1
			if mask&(1<<p) == 0 {
				procs = append(procs, p)
			}
		}
		if len(procs) == 0 {
			continue
		}
		sub, idx := induced(n, procs)
		off := union.NumProcs()
		union.ProcIDs = append(union.ProcIDs, sub.ProcIDs...)
		union.Init = append(union.Init, sub.Init...)
		for _, outs := range sub.Out {
			row := make([]int, len(outs))
			for i, q := range outs {
				row[i] = q + off
			}
			union.Out = append(union.Out, row)
		}
		for p, i := range idx {
			variantIdx[mask][p] = i + off
		}
	}
	labels, err := Similarity(union, false)
	if err != nil {
		return nil, err
	}
	// classOf[y] = set of labels y attains across its silence variants;
	// classFull[x] = x's label in the full network (mask 0).
	classOf := make([]map[int]bool, np)
	for p := 0; p < np; p++ {
		classOf[p] = make(map[int]bool)
	}
	for mask := range variantIdx {
		for p := 0; p < np; p++ {
			if g := variantIdx[mask][p]; g >= 0 {
				classOf[p][labels[g]] = true
			}
		}
	}
	classFull := make([]int, np)
	for p := 0; p < np; p++ {
		classFull[p] = labels[variantIdx[0][p]]
	}
	rel := make([][]bool, np)
	for x := range rel {
		rel[x] = make([]bool, np)
		for y := range rel[x] {
			if x == y {
				continue
			}
			rel[x][y] = classOf[y][classFull[x]]
		}
	}
	return rel, nil
}

// MimicsNobody returns the processors no other processor can appear as —
// the safe self-selectors under merely-fair schedules.
func MimicsNobody(rel [][]bool) []int {
	var out []int
	for x := range rel {
		free := true
		for y := range rel[x] {
			if x != y && rel[x][y] {
				free = false
			}
		}
		if free {
			out = append(out, x)
		}
	}
	return out
}

func induced(n *Network, procs []int) (*Network, map[int]int) {
	idx := make(map[int]int, len(procs))
	for i, p := range procs {
		idx[p] = i
	}
	sub := &Network{
		ProcIDs: make([]string, len(procs)),
		Init:    make([]string, len(procs)),
		Out:     make([][]int, len(procs)),
	}
	for i, p := range procs {
		sub.ProcIDs[i] = n.ProcIDs[p]
		sub.Init[i] = n.Init[p]
		for _, q := range n.Out[p] {
			if j, ok := idx[q]; ok {
				sub.Out[i] = append(sub.Out[i], j)
			}
		}
	}
	return sub, idx
}

// --- builders ---

// DirectedRing returns the unidirectional ring p0 -> p1 -> ... -> p0.
func DirectedRing(n int) (*Network, error) {
	if n < 1 {
		return nil, ErrEmpty
	}
	net := &Network{
		ProcIDs: make([]string, n),
		Init:    make([]string, n),
		Out:     make([][]int, n),
	}
	for i := 0; i < n; i++ {
		net.ProcIDs[i] = fmt.Sprintf("p%d", i)
		net.Init[i] = "0"
		net.Out[i] = []int{(i + 1) % n}
	}
	return net, nil
}

// BiRing returns the bidirectional ring.
func BiRing(n int) (*Network, error) {
	net, err := DirectedRing(n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		net.Out[i] = append(net.Out[i], (i-1+n)%n)
		sort.Ints(net.Out[i])
	}
	return net, nil
}

// Chain returns the path p0 -> p1 -> ... -> p(n-1) (not strongly
// connected for n >= 2): the canonical unknown-in-degree trouble case.
func Chain(n int) (*Network, error) {
	if n < 1 {
		return nil, ErrEmpty
	}
	net := &Network{
		ProcIDs: make([]string, n),
		Init:    make([]string, n),
		Out:     make([][]int, n),
	}
	for i := 0; i < n; i++ {
		net.ProcIDs[i] = fmt.Sprintf("p%d", i)
		net.Init[i] = "0"
		if i+1 < n {
			net.Out[i] = []int{i + 1}
		}
	}
	return net, nil
}

// Random returns a random digraph with the given edge probability.
func Random(rng *rand.Rand, n int, p float64, inits int) (*Network, error) {
	if n < 1 {
		return nil, ErrEmpty
	}
	if inits < 1 {
		inits = 1
	}
	net := &Network{
		ProcIDs: make([]string, n),
		Init:    make([]string, n),
		Out:     make([][]int, n),
	}
	for i := 0; i < n; i++ {
		net.ProcIDs[i] = fmt.Sprintf("p%d", i)
		net.Init[i] = fmt.Sprintf("s%d", rng.Intn(inits))
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < p {
				net.Out[i] = append(net.Out[i], j)
			}
		}
	}
	return net, nil
}
