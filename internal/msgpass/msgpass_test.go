package msgpass

import (
	"errors"
	"math/rand"
	"testing"

	"simsym/internal/partition"
)

func TestDirectedRingAllSimilar(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		net, err := DirectedRing(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, counting := range []bool{true, false} {
			labels, err := Similarity(net, counting)
			if err != nil {
				t.Fatal(err)
			}
			for p := range labels {
				if labels[p] != labels[0] {
					t.Errorf("ring %d counting=%v: not all similar: %v", n, counting, labels)
				}
			}
		}
	}
}

func TestMarkedRingSeparates(t *testing.T) {
	net, err := DirectedRing(5)
	if err != nil {
		t.Fatal(err)
	}
	net.Init[2] = "leader"
	labels, err := Similarity(net, true)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, l := range labels {
		seen[l] = true
	}
	if len(seen) != 5 {
		t.Errorf("marked directed ring should separate fully: %v", labels)
	}
}

func TestChainSeparatesByDepth(t *testing.T) {
	// p0 has no in-neighbors, p1 hears from p0, etc.: the chain
	// separates fully under refinement.
	net, err := Chain(4)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := Similarity(net, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 4; j++ {
			if labels[i] == labels[j] {
				t.Errorf("chain positions %d and %d should differ: %v", i, j, labels)
			}
		}
	}
}

func TestBiRingProperties(t *testing.T) {
	net, err := BiRing(6)
	if err != nil {
		t.Fatal(err)
	}
	if !net.Bidirectional() {
		t.Error("BiRing should be bidirectional")
	}
	if !net.StronglyConnected() {
		t.Error("BiRing should be strongly connected")
	}
	chain, err := Chain(3)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Bidirectional() {
		t.Error("Chain should not be bidirectional")
	}
	if chain.StronglyConnected() {
		t.Error("Chain should not be strongly connected")
	}
	ring, err := DirectedRing(4)
	if err != nil {
		t.Fatal(err)
	}
	if ring.Bidirectional() {
		t.Error("DirectedRing should not be bidirectional")
	}
	if !ring.StronglyConnected() {
		t.Error("DirectedRing should be strongly connected")
	}
}

func TestCSPTransferCondition(t *testing.T) {
	// Extended CSP ≈ L: the all-similar ring labeling has adjacent
	// same-label processors, so it does NOT transfer; a marked ring's
	// full separation does.
	net, err := BiRing(4)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := Similarity(net, true)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := NoAdjacentSameLabel(net, labels)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("uniform ring labeling should fail the CSP transfer condition")
	}
	net.Init[0] = "leader"
	labels, err = Similarity(net, true)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = NoAdjacentSameLabel(net, labels)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("fully-separated labeling should satisfy the CSP transfer condition")
	}
}

func TestCountingRefinesSet(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 60; trial++ {
		net, err := Random(rng, 2+rng.Intn(7), 0.4, 1+rng.Intn(2))
		if err != nil {
			t.Fatal(err)
		}
		cnt, err := Similarity(net, true)
		if err != nil {
			t.Fatal(err)
		}
		set, err := Similarity(net, false)
		if err != nil {
			t.Fatal(err)
		}
		for p := range cnt {
			for q := range cnt {
				if cnt[p] == cnt[q] && set[p] != set[q] {
					t.Fatalf("trial %d: counting similar but set dissimilar (%d,%d)", trial, p, q)
				}
			}
		}
	}
}

func TestFloodMatchesSimilarity(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(6)
		net, err := Random(rng, n, 0.5, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, counting := range []bool{true, false} {
			labels, err := Similarity(net, counting)
			if err != nil {
				t.Fatal(err)
			}
			colors, err := Flood(net, counting, n+2, int64(trial))
			if err != nil {
				t.Fatal(err)
			}
			if !SamePartition(labels, ColorsPartition(colors)) {
				t.Fatalf("trial %d counting=%v: flooding %v != similarity %v",
					trial, counting, ColorsPartition(colors), labels)
			}
		}
	}
}

func TestFloodScheduleIndependent(t *testing.T) {
	net, err := BiRing(5)
	if err != nil {
		t.Fatal(err)
	}
	net.Init[0] = "leader"
	base, err := Flood(net, true, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(2); seed < 8; seed++ {
		got, err := Flood(net, true, 7, seed)
		if err != nil {
			t.Fatal(err)
		}
		for p := range got {
			if got[p] != base[p] {
				t.Fatalf("seed %d: flooding colors depend on delivery order", seed)
			}
		}
	}
}

func TestChainMimicry(t *testing.T) {
	// Unidirectional, fair, not strongly connected: a processor whose
	// predecessors have been silent looks exactly like a processor
	// nearer the source. Only the deepest processor (p3) has a view no
	// one else can fake, so only p3 can safely self-select.
	net, err := Chain(4)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := Mimics(net)
	if err != nil {
		t.Fatal(err)
	}
	// p1 with silent p0 appears as the source p0.
	if !rel[0][1] {
		t.Error("p1 (predecessor silent) should appear as the source p0")
	}
	// p3 with silent {p0} sits at depth 2 and appears as p2.
	if !rel[2][3] {
		t.Error("p3 (with p0 silent) should appear as p2")
	}
	free := MimicsNobody(rel)
	if len(free) != 1 || free[0] != 3 {
		t.Errorf("safe deciders = %v, want [3] (only the deepest view is unfakeable)", free)
	}
}

func TestStronglyConnectedMimicCollapsesToSimilarity(t *testing.T) {
	// Paper: all other asynchronous message-passing systems give results
	// like those of Q — for strongly-connected networks, silence
	// variants add nothing beyond plain similarity.
	net, err := DirectedRing(5)
	if err != nil {
		t.Fatal(err)
	}
	net.Init[0] = "leader"
	rel, err := Mimics(net)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := Similarity(net, false)
	if err != nil {
		t.Fatal(err)
	}
	for x := range rel {
		for y := range rel[x] {
			if x == y {
				continue
			}
			if rel[x][y] != (labels[x] == labels[y]) {
				t.Errorf("rel[%d][%d]=%v but similarity says %v", x, y, rel[x][y], labels[x] == labels[y])
			}
		}
	}
}

func TestValidation(t *testing.T) {
	var empty Network
	if err := empty.Validate(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty = %v", err)
	}
	bad := &Network{ProcIDs: []string{"a"}, Init: []string{"0"}, Out: [][]int{{7}}}
	if err := bad.Validate(); !errors.Is(err, ErrBadEdge) {
		t.Errorf("bad edge = %v", err)
	}
	if _, err := Similarity(bad, true); err == nil {
		t.Error("similarity on invalid network should fail")
	}
	if _, err := DirectedRing(0); err == nil {
		t.Error("DirectedRing(0) should fail")
	}
	if _, err := Chain(0); err == nil {
		t.Error("Chain(0) should fail")
	}
	big, err := DirectedRing(MaxMimicProcs + 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Mimics(big); !errors.Is(err, ErrTooLarge) {
		t.Errorf("too large = %v", err)
	}
}

func TestSamePartition(t *testing.T) {
	if !SamePartition([]int{0, 0, 1}, []int{5, 5, 9}) {
		t.Error("renamed partitions should match")
	}
	if SamePartition([]int{0, 0, 1}, []int{0, 1, 1}) {
		t.Error("different partitions should not match")
	}
	if SamePartition([]int{0}, []int{0, 1}) {
		t.Error("size mismatch should not match")
	}
}

func TestUniqueLabels(t *testing.T) {
	if got := UniqueLabels([]int{0, 1, 1, 2}); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("UniqueLabels = %v, want positions [0 3]", got)
	}
	if got := UniqueLabels([]int{5, 5}); len(got) != 0 {
		t.Errorf("UniqueLabels = %v, want none", got)
	}
}

func TestElectByFlooding(t *testing.T) {
	// A marked ring elects its mark-determined leader regardless of the
	// delivery schedule; the anonymous ring elects nobody.
	net, err := DirectedRing(6)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := ElectByFlooding(net, true, 1); err != nil || ok {
		t.Errorf("anonymous ring elected someone (ok=%v err=%v)", ok, err)
	}
	net.Init[3] = "leader"
	first := -1
	for seed := int64(0); seed < 6; seed++ {
		leader, ok, err := ElectByFlooding(net, true, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("marked ring should elect")
		}
		if first == -1 {
			first = leader
		} else if leader != first {
			t.Fatalf("leader depends on delivery schedule: %d vs %d", leader, first)
		}
	}
}

// TestTokenSignatureMatchesStringOracle cross-checks the interned token
// path (netStructure.AppendSignature via FixpointWorklist, the
// production driver) against the string-signature oracle (FixpointNaive)
// on random networks, in both the counting and overwrite regimes. The
// two encodings must induce the same refinement relation.
func TestTokenSignatureMatchesStringOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(14)
		p := 0.1 + rng.Float64()*0.5
		net, err := Random(rng, n, p, 1+rng.Intn(3))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, counting := range []bool{true, false} {
			st := &netStructure{net: net, in: net.In(), counting: counting}
			fast, err := partition.FixpointWorklist(st)
			if err != nil {
				t.Fatalf("trial %d counting=%v: worklist: %v", trial, counting, err)
			}
			slow, err := partition.FixpointNaive(st)
			if err != nil {
				t.Fatalf("trial %d counting=%v: naive: %v", trial, counting, err)
			}
			if !partition.SameRelation(fast, slow) {
				t.Fatalf("trial %d counting=%v: token path %v disagrees with string oracle %v",
					trial, counting, fast.Canonical(), slow.Canonical())
			}
			got, err := Similarity(net, counting)
			if err != nil {
				t.Fatalf("trial %d counting=%v: Similarity: %v", trial, counting, err)
			}
			want := slow.Canonical()
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d counting=%v: Similarity %v != oracle canonical %v",
						trial, counting, got, want)
				}
			}
		}
	}
}
