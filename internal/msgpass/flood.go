package msgpass

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"simsym/internal/canon"
)

// Flooding label learning: every processor repeatedly sends its current
// view color to its out-neighbors and folds the colors received from its
// in-neighbors into a new view. After enough rounds the view colors
// stabilize into exactly the similarity classes — the message-passing
// analog of Algorithm 2 ("distributed algorithms for finding labels can
// be easily computed for any fair system that uses asynchronous
// message-passing").
//
// Messages are tagged with their round and delivered through per-edge
// FIFO channels by a seeded adversarial-ish scheduler; because each
// processor waits for all in-neighbors' round-r messages before forming
// its round-r+1 view, the resulting colors are schedule independent —
// which the tests verify by varying seeds.

// ErrFloodIncomplete is returned when the simulation ran out of budget
// before every processor stabilized.
var ErrFloodIncomplete = errors.New("msgpass: flooding did not stabilize within budget")

type floodMsg struct {
	round int
	color string
}

// Flood runs the flooding algorithm for the given number of rounds and
// returns each processor's final color. counting selects multiset vs set
// folding, matching the Similarity mode.
func Flood(n *Network, counting bool, rounds int, seed int64) ([]string, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if rounds < 1 {
		return nil, fmt.Errorf("%w: rounds=%d", ErrEmpty, rounds)
	}
	rng := rand.New(rand.NewSource(seed))
	np := n.NumProcs()
	in := n.In()

	type edge struct{ from, to int }
	queues := make(map[edge][]floodMsg)
	color := make([]string, np)
	round := make([]int, np)
	// inbox[p] collects colors from in-neighbors for p's current round.
	inbox := make([]map[int]string, np)
	for p := 0; p < np; p++ {
		color[p] = canon.String([]any{"init", n.Init[p]})
		inbox[p] = make(map[int]string)
		for _, q := range n.Out[p] {
			e := edge{from: p, to: q}
			queues[e] = append(queues[e], floodMsg{round: 0, color: color[p]})
		}
	}

	// Event loop: deliver a random pending message, or advance a random
	// processor whose inbox is complete for its round.
	budget := np * rounds * (np + 4) * 4
	for step := 0; step < budget; step++ {
		var pendingEdges []edge
		for e, q := range queues {
			if len(q) > 0 {
				pendingEdges = append(pendingEdges, e)
			}
		}
		var ready []int
		for p := 0; p < np; p++ {
			if round[p] < rounds && len(inbox[p]) == len(in[p]) {
				ready = append(ready, p)
			}
		}
		if len(pendingEdges) == 0 && len(ready) == 0 {
			break // everyone finished
		}
		// Random choice among deliveries and advances.
		sort.Slice(pendingEdges, func(a, b int) bool {
			if pendingEdges[a].from != pendingEdges[b].from {
				return pendingEdges[a].from < pendingEdges[b].from
			}
			return pendingEdges[a].to < pendingEdges[b].to
		})
		total := len(pendingEdges) + len(ready)
		pick := rng.Intn(total)
		if pick < len(pendingEdges) {
			e := pendingEdges[pick]
			q := queues[e]
			msg := q[0]
			// FIFO delivery; accept only when the receiver is at this
			// round (it always is, because senders run at most one round
			// ahead and channels are FIFO).
			if msg.round == round[e.to] {
				queues[e] = q[1:]
				inbox[e.to][e.from] = msg.color
			} else if msg.round < round[e.to] {
				queues[e] = q[1:] // stale duplicate; drop
			}
			continue
		}
		p := ready[pick-len(pendingEdges)]
		colors := make([]string, 0, len(in[p]))
		for _, q := range in[p] {
			colors = append(colors, inbox[p][q])
		}
		color[p] = fold(color[p], colors, counting)
		round[p]++
		inbox[p] = make(map[int]string)
		if round[p] < rounds {
			for _, q := range n.Out[p] {
				e := edge{from: p, to: q}
				queues[e] = append(queues[e], floodMsg{round: round[p], color: color[p]})
			}
		}
	}
	for p := 0; p < np; p++ {
		if round[p] < rounds {
			return nil, fmt.Errorf("%w: processor %d at round %d/%d", ErrFloodIncomplete, p, round[p], rounds)
		}
	}
	return color, nil
}

func fold(own string, received []string, counting bool) string {
	sort.Strings(received)
	var b strings.Builder
	b.WriteString("v(")
	b.WriteString(own)
	b.WriteString(")[")
	prev := ""
	cnt := 0
	flush := func() {
		if cnt > 0 {
			if counting {
				fmt.Fprintf(&b, "%s*%d;", prev, cnt)
			} else {
				fmt.Fprintf(&b, "%s;", prev)
			}
		}
	}
	for _, c := range received {
		if c != prev {
			flush()
			prev = c
			cnt = 0
		}
		cnt++
	}
	flush()
	b.WriteString("]")
	return canon.String(b.String())
}

// ColorsPartition converts flooding colors into canonical dense labels.
func ColorsPartition(colors []string) []int {
	remap := make(map[string]int)
	out := make([]int, len(colors))
	next := 0
	for i, c := range colors {
		id, ok := remap[c]
		if !ok {
			id = next
			remap[c] = id
			next++
		}
		out[i] = id
	}
	return out
}

// SamePartition reports whether two label vectors induce the same
// equivalence relation.
func SamePartition(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := make(map[int]int)
	bwd := make(map[int]int)
	for i := range a {
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		if x, ok := bwd[b[i]]; ok && x != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		bwd[b[i]] = a[i]
	}
	return true
}

// ElectByFlooding is the message-passing SELECT: run flooding until the
// colors stabilize, then the processor whose color is globally unique
// and lexicographically least among unique colors is the leader. It
// returns the elected processor, or ok=false when no processor ends up
// with a unique color (every processor similar to another — Theorem 2's
// message-passing face).
func ElectByFlooding(n *Network, counting bool, seed int64) (leader int, ok bool, err error) {
	if err := n.Validate(); err != nil {
		return 0, false, err
	}
	colors, err := Flood(n, counting, n.NumProcs()+2, seed)
	if err != nil {
		return 0, false, err
	}
	count := make(map[string]int)
	for _, c := range colors {
		count[c]++
	}
	best := ""
	leader = -1
	for p, c := range colors {
		if count[c] != 1 {
			continue
		}
		if best == "" || c < best {
			best = c
			leader = p
		}
	}
	if leader < 0 {
		return 0, false, nil
	}
	return leader, true, nil
}
