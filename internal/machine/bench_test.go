package machine

import (
	"testing"

	"simsym/internal/system"
)

// BenchmarkStepQ measures raw per-instruction cost of the Q machine on a
// post/peek loop.
func BenchmarkStepQ(b *testing.B) {
	s := system.Fig2()
	bl := NewBuilder()
	bl.Label("loop")
	bl.Post("n", "init")
	bl.Peek("n", "x")
	bl.Post("m", "init")
	bl.Peek("m", "y")
	bl.Jump("loop")
	prog, err := bl.Build()
	if err != nil {
		b.Fatal(err)
	}
	m, err := New(s, system.InstrQ, prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Step(i % 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFingerprint measures the incremental whole-state fingerprint
// after single steps (the model checker's hot path).
func BenchmarkFingerprint(b *testing.B) {
	s := system.Fig2()
	bl := NewBuilder()
	bl.Label("loop")
	bl.Post("n", "init")
	bl.Peek("n", "x")
	bl.Jump("loop")
	prog, err := bl.Build()
	if err != nil {
		b.Fatal(err)
	}
	m, err := New(s, system.InstrQ, prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Step(i % 3); err != nil {
			b.Fatal(err)
		}
		_ = m.Fingerprint()
	}
}

// BenchmarkClone measures snapshot cost (copy-on-write sharing).
func BenchmarkClone(b *testing.B) {
	s := system.Fig2()
	bl := NewBuilder()
	bl.Compute(func(loc Locals) { loc["a"] = 1; loc["b"] = "x" })
	bl.Post("n", "init")
	bl.Halt()
	prog, err := bl.Build()
	if err != nil {
		b.Fatal(err)
	}
	m, err := New(s, system.InstrQ, prog)
	if err != nil {
		b.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		for k := 0; k < 3; k++ {
			if err := m.Step(p); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Clone()
	}
}
