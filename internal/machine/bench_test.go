package machine

import (
	"testing"

	"simsym/internal/system"
)

// benchMachine builds a machine over Fig2 for micro-benchmarks.
func benchMachine(b *testing.B, instr system.InstrSet, build func(bl *Builder)) *Machine {
	b.Helper()
	bl := NewBuilder()
	build(bl)
	prog, err := bl.Build()
	if err != nil {
		b.Fatal(err)
	}
	m, err := New(system.Fig2(), instr, prog)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkStepQ measures raw per-instruction cost of the Q machine on a
// post/peek loop.
func BenchmarkStepQ(b *testing.B) {
	m := benchMachine(b, system.InstrQ, func(bl *Builder) {
		bl.Label("loop")
		bl.Post("n", "init")
		bl.Peek("n", "x")
		bl.Post("m", "init")
		bl.Peek("m", "y")
		bl.Jump("loop")
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Step(i % 3); err != nil {
			b.Fatal(err)
		}
	}
}

// Per-instruction-class step benches: these pin the acceptance criterion
// that the compiled Step does no map operations and no name resolutions —
// 0 allocs/op on the jump paths, ≤1 alloc/op on locals-mutating paths
// (the single alloc being value boxing where it occurs, not frame or
// operand bookkeeping).

// BenchmarkStepReadWrite measures an S-machine read/write loop.
func BenchmarkStepReadWrite(b *testing.B) {
	m := benchMachine(b, system.InstrS, func(bl *Builder) {
		bl.Label("loop")
		bl.Write("n", "init")
		bl.Read("n", "x")
		bl.Jump("loop")
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Step(i % 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStepLockUnlock measures an L-machine lock/unlock loop.
func BenchmarkStepLockUnlock(b *testing.B) {
	m := benchMachine(b, system.InstrL, func(bl *Builder) {
		bl.Label("loop")
		bl.Lock("n", "got")
		bl.Unlock("n")
		bl.Jump("loop")
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Step(i % 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStepCompute measures a pure local computation loop.
func BenchmarkStepCompute(b *testing.B) {
	m := benchMachine(b, system.InstrS, func(bl *Builder) {
		n := bl.Sym("n")
		bl.Compute(func(r *Regs) { r.Set(n, 0) })
		bl.Label("loop")
		bl.Compute(func(r *Regs) { r.Set(n, (r.Int(n)+1)%128) })
		bl.Jump("loop")
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Step(i % 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStepJump measures the pure control-flow path: an unconditional
// jump self-loop. Must be 0 allocs/op.
func BenchmarkStepJump(b *testing.B) {
	m := benchMachine(b, system.InstrS, func(bl *Builder) {
		bl.Label("loop")
		bl.Jump("loop")
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Step(i % 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStepJumpIf measures the conditional control-flow path: a
// JumpIf whose condition reads a slot. Must be 0 allocs/op.
func BenchmarkStepJumpIf(b *testing.B) {
	m := benchMachine(b, system.InstrS, func(bl *Builder) {
		n := bl.Sym("n")
		bl.Compute(func(r *Regs) { r.Set(n, 1) })
		bl.Label("loop")
		bl.JumpIf(func(r *Regs) bool { return r.Int(n) > 0 }, "loop")
		bl.Halt()
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Step(i % 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFingerprint measures the whole-state encode path in its
// three regimes:
//
//	warm — every window cached: AppendStateKey is pure arena copies and
//	       MUST report 0 allocs/op (the tentpole's contract; the gate in
//	       scripts/benchgate.sh enforces it).
//	step — the model checker's hot path: one step invalidates ≤1 frame
//	       and ≤2 variables, the key re-encodes only those.
//	string — the legacy Fingerprint() string materialization, kept for
//	       scale (this is what the arena replaced).
func BenchmarkFingerprint(b *testing.B) {
	setup := func() *Machine {
		return benchMachine(b, system.InstrQ, func(bl *Builder) {
			bl.Label("loop")
			bl.Post("n", "init")
			bl.Peek("n", "x")
			bl.Jump("loop")
		})
	}
	b.Run("warm", func(b *testing.B) {
		m := setup()
		for i := 0; i < 9; i++ {
			if err := m.Step(i % 3); err != nil {
				b.Fatal(err)
			}
		}
		m.PrimeFingerprints()
		buf := make([]byte, 0, 4*len(m.AppendStateKey(nil, nil, nil)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = m.AppendStateKey(buf[:0], nil, nil)
		}
	})
	b.Run("step", func(b *testing.B) {
		m := setup()
		m.PrimeFingerprints()
		buf := make([]byte, 0, 256)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.Step(i % 3); err != nil {
				b.Fatal(err)
			}
			buf = m.AppendStateKey(buf[:0], nil, nil)
		}
	})
	b.Run("string", func(b *testing.B) {
		m := setup()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.Step(i % 3); err != nil {
				b.Fatal(err)
			}
			_ = m.Fingerprint()
		}
	})
}

// BenchmarkClone measures snapshot cost (copy-on-write sharing).
func BenchmarkClone(b *testing.B) {
	m := benchMachine(b, system.InstrQ, func(bl *Builder) {
		a, x := bl.Sym("a"), bl.Sym("b")
		bl.Compute(func(r *Regs) { r.Set(a, 1); r.Set(x, "x") })
		bl.Post("n", "init")
		bl.Halt()
	})
	for p := 0; p < 3; p++ {
		for k := 0; k < 3; k++ {
			if err := m.Step(p); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Clone()
	}
}

// BenchmarkCloneStep measures the model checker's expansion unit: clone a
// machine and execute one locals-mutating step on the clone (the
// copy-on-write copy happens here).
func BenchmarkCloneStep(b *testing.B) {
	m := benchMachine(b, system.InstrQ, func(bl *Builder) {
		bl.Label("loop")
		bl.Post("n", "init")
		bl.Peek("n", "x")
		bl.Jump("loop")
	})
	for p := 0; p < 3; p++ {
		if err := m.Step(p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := m.Clone()
		if err := c.Step(i % 3); err != nil {
			b.Fatal(err)
		}
	}
}
