// Package machine executes the paper's system model: processors running a
// single shared program over a network of shared variables, one atomic
// instruction per schedule step (section 2).
//
// Programs are small instruction lists. All processors run the same
// program — the model's anonymity requirement: "processors in the same
// state execute the same instruction". A processor's state is its program
// counter plus its local variables; the machine can fingerprint any node's
// state canonically, which is how the paper's similarity claims ("same
// state at the same time infinitely often") are checked empirically.
//
// Programs are compiled: the Builder interns every local-variable name to
// a dense Sym slot and Build resolves jump labels to instruction indices,
// so the interpreter addresses locals by slot and jumps by index — no
// string or map work on the step path. machine.New then pre-binds every
// shared-variable operand to its per-processor variable index (the
// paper's n-nbr function, evaluated once instead of per step).
//
// Instruction sets are enforced: S programs may only read/write, L adds
// lock/unlock, and Q replaces read/write with peek/post on multiset
// variables.
package machine

import (
	"errors"
	"fmt"
	"sort"

	"simsym/internal/system"
)

// Sym is a compiled local-variable slot: local names intern to dense
// indices at build time (Builder.Sym), and frames store locals in a slot
// slice addressed by Sym. Sym values are only meaningful for the program
// that interned them.
type Sym int32

// SymInit is the slot of the reserved local "init", which machine.New
// fills with the processor's initial state. Every program has it.
const SymInit Sym = 0

// unsetType is the private sentinel marking an unassigned local slot.
// Frames distinguish "never set" from "set to nil" exactly as the old
// map representation distinguished a missing key from a nil value.
type unsetType struct{}

var unset any = unsetType{}

// Regs is the register-file view Compute and JumpIf closures receive: a
// window onto one processor's local slots. By convention, closures must
// treat non-scalar values as immutable: replace them, never mutate in
// place (machine snapshots share value structure).
type Regs struct {
	slots []any
}

// Get returns the value in slot s, or nil when the slot is unset.
func (r *Regs) Get(s Sym) any {
	v := r.slots[s]
	if v == unset {
		return nil
	}
	return v
}

// Has reports whether slot s has been assigned.
func (r *Regs) Has(s Sym) bool { return r.slots[s] != unset }

// Set assigns slot s.
func (r *Regs) Set(s Sym, v any) { r.slots[s] = v }

// Int returns the int in slot s, or 0 when the slot is unset or holds a
// different type.
func (r *Regs) Int(s Sym) int {
	n, _ := r.slots[s].(int)
	return n
}

// Bool returns the bool in slot s, or false when the slot is unset or
// holds a different type.
func (r *Regs) Bool(s Sym) bool {
	b, _ := r.slots[s].(bool)
	return b
}

// Instr is one atomic instruction (the Builder's intermediate form;
// Build compiles instructions into the interpreter's internal ops).
type Instr interface{ isInstr() }

// Read loads the value of the shared variable called Name into slot Dst.
// Requires instruction set S or L.
type Read struct {
	Name system.Name
	Dst  Sym
}

// Write stores slot Src into the shared variable called Name. Requires S
// or L.
type Write struct {
	Name system.Name
	Src  Sym
}

// Lock attempts to set the lock bit of the variable called Name, storing
// true into Dst if the bit was clear (acquisition succeeded) and false if
// it was already set. Requires L.
type Lock struct {
	Name system.Name
	Dst  Sym
}

// Unlock clears the lock bit of the variable called Name. Requires L.
type Unlock struct {
	Name system.Name
}

// Peek loads the state of the multiset variable called Name into Dst as a
// PeekResult. Requires Q.
type Peek struct {
	Name system.Name
	Dst  Sym
}

// Post stores slot Src as this processor's subvalue in the multiset
// variable called Name. Requires Q.
type Post struct {
	Name system.Name
	Src  Sym
}

// Compute runs an arbitrary local instruction. F must be deterministic,
// must not mutate values in place, and must not capture mutable state —
// it sees and edits only the processor's local slots.
type Compute struct {
	F func(r *Regs)
}

// JumpIf transfers control to the instruction labeled Target when Cond
// evaluates true on the locals. Cond must be deterministic and read-only.
type JumpIf struct {
	Cond   func(r *Regs) bool
	Target string
}

// Jump unconditionally transfers control to Target.
type Jump struct {
	Target string
}

// Halt stops the processor; further steps are no-ops.
type Halt struct{}

func (Read) isInstr()    {}
func (Write) isInstr()   {}
func (Lock) isInstr()    {}
func (Unlock) isInstr()  {}
func (Peek) isInstr()    {}
func (Post) isInstr()    {}
func (Compute) isInstr() {}
func (JumpIf) isInstr()  {}
func (Jump) isInstr()    {}
func (Halt) isInstr()    {}

// PeekResult is what Peek stores: the variable's initial state plus the
// current multiset of subvalues. The multiset is stored canonically
// encoded so that processor states compare correctly.
type PeekResult struct {
	Init   string
	Values []any // sorted by canonical encoding at peek time
}

// opKind is a compiled instruction opcode.
type opKind uint8

const (
	opRead opKind = iota + 1
	opWrite
	opLock
	opUnlock
	opPeek
	opPost
	opCompute
	opJumpIf
	opJump
	opHalt
)

// op is one compiled instruction: opcode plus pre-resolved operands. The
// shared-variable Name survives compilation only so machine.New can bind
// it to per-processor variable indices; Step never touches it.
type op struct {
	kind opKind
	name system.Name // shared-variable operand (binding key; zero for local ops)
	sym  Sym         // Dst/Src slot operand
	tgt  int         // resolved jump target pc
	f    func(*Regs)
	cond func(*Regs) bool
}

// Program is a compiled instruction sequence plus its symbol table.
type Program struct {
	code []op
	// names is the symbol table: names[s] is the local name interned to
	// slot s, in declaration (interning) order. Slot 0 is always "init".
	names  []string
	symIdx map[string]Sym
	// sortedSyms lists all slots ordered by name — the iteration order of
	// the legacy sorted-name fingerprint, kept for the oracle encoders.
	sortedSyms []Sym
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.code) }

// NumSyms returns the number of interned local slots.
func (p *Program) NumSyms() int { return len(p.names) }

// SymName returns the local name interned to slot s.
func (p *Program) SymName(s Sym) string { return p.names[s] }

// LookupSym returns the slot for a local name, if the program interned it.
func (p *Program) LookupSym(name string) (Sym, bool) {
	s, ok := p.symIdx[name]
	return s, ok
}

// Sentinel errors for program construction.
var (
	ErrUnknownLabel = errors.New("machine: jump to unknown label")
	ErrDupLabel     = errors.New("machine: duplicate label")
	ErrEmptyProgram = errors.New("machine: empty program")
)

// Builder assembles a Program with named labels and an interned symbol
// table. Local names used in instructions intern automatically; closures
// address locals through Syms obtained from Sym before Build.
type Builder struct {
	instrs []Instr
	labels map[string]int
	names  []string
	symIdx map[string]Sym
}

// NewBuilder returns an empty program builder with "init" pre-interned
// at slot SymInit.
func NewBuilder() *Builder {
	b := &Builder{labels: make(map[string]int), symIdx: make(map[string]Sym)}
	b.Sym("init")
	return b
}

// Sym interns a local-variable name and returns its slot. Interning is
// idempotent; slots are dense in first-use order.
func (b *Builder) Sym(name string) Sym {
	if s, ok := b.symIdx[name]; ok {
		return s
	}
	s := Sym(len(b.names))
	b.names = append(b.names, name)
	b.symIdx[name] = s
	return s
}

// Label marks the next instruction with a name (jump target).
func (b *Builder) Label(name string) *Builder {
	b.labels[name] = len(b.instrs)
	return b
}

// Emit appends an instruction.
func (b *Builder) Emit(i Instr) *Builder {
	b.instrs = append(b.instrs, i)
	return b
}

// Read appends a Read instruction.
func (b *Builder) Read(name system.Name, dst string) *Builder {
	return b.Emit(Read{Name: name, Dst: b.Sym(dst)})
}

// Write appends a Write instruction.
func (b *Builder) Write(name system.Name, src string) *Builder {
	return b.Emit(Write{Name: name, Src: b.Sym(src)})
}

// Lock appends a Lock instruction.
func (b *Builder) Lock(name system.Name, dst string) *Builder {
	return b.Emit(Lock{Name: name, Dst: b.Sym(dst)})
}

// Unlock appends an Unlock instruction.
func (b *Builder) Unlock(name system.Name) *Builder {
	return b.Emit(Unlock{Name: name})
}

// Peek appends a Peek instruction.
func (b *Builder) Peek(name system.Name, dst string) *Builder {
	return b.Emit(Peek{Name: name, Dst: b.Sym(dst)})
}

// Post appends a Post instruction.
func (b *Builder) Post(name system.Name, src string) *Builder {
	return b.Emit(Post{Name: name, Src: b.Sym(src)})
}

// Compute appends a local computation.
func (b *Builder) Compute(f func(r *Regs)) *Builder {
	return b.Emit(Compute{F: f})
}

// JumpIf appends a conditional jump.
func (b *Builder) JumpIf(cond func(r *Regs) bool, target string) *Builder {
	return b.Emit(JumpIf{Cond: cond, Target: target})
}

// Jump appends an unconditional jump.
func (b *Builder) Jump(target string) *Builder {
	return b.Emit(Jump{Target: target})
}

// Halt appends a Halt.
func (b *Builder) Halt() *Builder {
	return b.Emit(Halt{})
}

// Build resolves labels, freezes the symbol table, and compiles the
// instruction list into the slot-addressed op sequence the interpreter
// executes.
func (b *Builder) Build() (*Program, error) {
	if len(b.instrs) == 0 {
		return nil, ErrEmptyProgram
	}
	target := func(pc int, label string) (int, error) {
		idx, ok := b.labels[label]
		if !ok {
			return 0, fmt.Errorf("%w: %q at pc %d", ErrUnknownLabel, label, pc)
		}
		return idx, nil
	}
	code := make([]op, len(b.instrs))
	for pc, in := range b.instrs {
		switch x := in.(type) {
		case Read:
			code[pc] = op{kind: opRead, name: x.Name, sym: x.Dst}
		case Write:
			code[pc] = op{kind: opWrite, name: x.Name, sym: x.Src}
		case Lock:
			code[pc] = op{kind: opLock, name: x.Name, sym: x.Dst}
		case Unlock:
			code[pc] = op{kind: opUnlock, name: x.Name}
		case Peek:
			code[pc] = op{kind: opPeek, name: x.Name, sym: x.Dst}
		case Post:
			code[pc] = op{kind: opPost, name: x.Name, sym: x.Src}
		case Compute:
			code[pc] = op{kind: opCompute, f: x.F}
		case JumpIf:
			tgt, err := target(pc, x.Target)
			if err != nil {
				return nil, err
			}
			code[pc] = op{kind: opJumpIf, cond: x.Cond, tgt: tgt}
		case Jump:
			tgt, err := target(pc, x.Target)
			if err != nil {
				return nil, err
			}
			code[pc] = op{kind: opJump, tgt: tgt}
		case Halt:
			code[pc] = op{kind: opHalt}
		default:
			return nil, fmt.Errorf("machine: unknown instruction %T at pc %d", in, pc)
		}
	}
	names := append([]string(nil), b.names...)
	symIdx := make(map[string]Sym, len(names))
	for s, n := range names {
		symIdx[n] = Sym(s)
	}
	sortedSyms := make([]Sym, len(names))
	for i := range sortedSyms {
		sortedSyms[i] = Sym(i)
	}
	sort.Slice(sortedSyms, func(a, b int) bool {
		return names[sortedSyms[a]] < names[sortedSyms[b]]
	})
	return &Program{code: code, names: names, symIdx: symIdx, sortedSyms: sortedSyms}, nil
}
