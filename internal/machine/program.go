// Package machine executes the paper's system model: processors running a
// single shared program over a network of shared variables, one atomic
// instruction per schedule step (section 2).
//
// Programs are small instruction lists. All processors run the same
// program — the model's anonymity requirement: "processors in the same
// state execute the same instruction". A processor's state is its program
// counter plus its local variables; the machine can fingerprint any node's
// state canonically, which is how the paper's similarity claims ("same
// state at the same time infinitely often") are checked empirically.
//
// Instruction sets are enforced: S programs may only read/write, L adds
// lock/unlock, and Q replaces read/write with peek/post on multiset
// variables.
package machine

import (
	"errors"
	"fmt"

	"simsym/internal/system"
)

// Locals is a processor's local-variable store. By convention, Compute
// functions must treat non-scalar values as immutable: replace them,
// never mutate in place (machine snapshots share value structure).
type Locals map[string]any

// Clone returns a shallow copy (values are immutable by convention).
func (l Locals) Clone() Locals {
	out := make(Locals, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// Instr is one atomic instruction.
type Instr interface{ isInstr() }

// Read loads the value of the shared variable called Name into local Dst.
// Requires instruction set S or L.
type Read struct {
	Name system.Name
	Dst  string
}

// Write stores local Src into the shared variable called Name. Requires S
// or L.
type Write struct {
	Name system.Name
	Src  string
}

// Lock attempts to set the lock bit of the variable called Name, storing
// true into Dst if the bit was clear (acquisition succeeded) and false if
// it was already set. Requires L.
type Lock struct {
	Name system.Name
	Dst  string
}

// Unlock clears the lock bit of the variable called Name. Requires L.
type Unlock struct {
	Name system.Name
}

// Peek loads the state of the multiset variable called Name into Dst as a
// PeekResult. Requires Q.
type Peek struct {
	Name system.Name
	Dst  string
}

// Post stores local Src as this processor's subvalue in the multiset
// variable called Name. Requires Q.
type Post struct {
	Name system.Name
	Src  string
}

// Compute runs an arbitrary local instruction. F must be deterministic,
// must not mutate values in place, and must not capture mutable state —
// it sees and edits only the processor's locals.
type Compute struct {
	F func(loc Locals)
}

// JumpIf transfers control to the instruction labeled Target when Cond
// evaluates true on the locals. Cond must be deterministic and read-only.
type JumpIf struct {
	Cond   func(loc Locals) bool
	Target string
}

// Jump unconditionally transfers control to Target.
type Jump struct {
	Target string
}

// Halt stops the processor; further steps are no-ops.
type Halt struct{}

func (Read) isInstr()    {}
func (Write) isInstr()   {}
func (Lock) isInstr()    {}
func (Unlock) isInstr()  {}
func (Peek) isInstr()    {}
func (Post) isInstr()    {}
func (Compute) isInstr() {}
func (JumpIf) isInstr()  {}
func (Jump) isInstr()    {}
func (Halt) isInstr()    {}

// PeekResult is what Peek stores: the variable's initial state plus the
// current multiset of subvalues. The multiset is stored canonically
// encoded so that processor states compare correctly.
type PeekResult struct {
	Init   string
	Values []any // sorted by canonical encoding at peek time
}

// Program is a resolved instruction sequence.
type Program struct {
	instrs  []Instr
	targets map[string]int
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.instrs) }

// Sentinel errors for program construction.
var (
	ErrUnknownLabel = errors.New("machine: jump to unknown label")
	ErrDupLabel     = errors.New("machine: duplicate label")
	ErrEmptyProgram = errors.New("machine: empty program")
)

// Builder assembles a Program with named labels.
type Builder struct {
	instrs []Instr
	labels map[string]int
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder {
	return &Builder{labels: make(map[string]int)}
}

// Label marks the next instruction with a name (jump target).
func (b *Builder) Label(name string) *Builder {
	b.labels[name] = len(b.instrs)
	return b
}

// Emit appends an instruction.
func (b *Builder) Emit(i Instr) *Builder {
	b.instrs = append(b.instrs, i)
	return b
}

// Read appends a Read instruction.
func (b *Builder) Read(name system.Name, dst string) *Builder {
	return b.Emit(Read{Name: name, Dst: dst})
}

// Write appends a Write instruction.
func (b *Builder) Write(name system.Name, src string) *Builder {
	return b.Emit(Write{Name: name, Src: src})
}

// Lock appends a Lock instruction.
func (b *Builder) Lock(name system.Name, dst string) *Builder {
	return b.Emit(Lock{Name: name, Dst: dst})
}

// Unlock appends an Unlock instruction.
func (b *Builder) Unlock(name system.Name) *Builder {
	return b.Emit(Unlock{Name: name})
}

// Peek appends a Peek instruction.
func (b *Builder) Peek(name system.Name, dst string) *Builder {
	return b.Emit(Peek{Name: name, Dst: dst})
}

// Post appends a Post instruction.
func (b *Builder) Post(name system.Name, src string) *Builder {
	return b.Emit(Post{Name: name, Src: src})
}

// Compute appends a local computation.
func (b *Builder) Compute(f func(loc Locals)) *Builder {
	return b.Emit(Compute{F: f})
}

// JumpIf appends a conditional jump.
func (b *Builder) JumpIf(cond func(loc Locals) bool, target string) *Builder {
	return b.Emit(JumpIf{Cond: cond, Target: target})
}

// Jump appends an unconditional jump.
func (b *Builder) Jump(target string) *Builder {
	return b.Emit(Jump{Target: target})
}

// Halt appends a Halt.
func (b *Builder) Halt() *Builder {
	return b.Emit(Halt{})
}

// Build resolves labels and returns the program.
func (b *Builder) Build() (*Program, error) {
	if len(b.instrs) == 0 {
		return nil, ErrEmptyProgram
	}
	targets := make(map[string]int, len(b.labels))
	for name, idx := range b.labels {
		targets[name] = idx
	}
	for pc, in := range b.instrs {
		switch x := in.(type) {
		case JumpIf:
			if _, ok := targets[x.Target]; !ok {
				return nil, fmt.Errorf("%w: %q at pc %d", ErrUnknownLabel, x.Target, pc)
			}
		case Jump:
			if _, ok := targets[x.Target]; !ok {
				return nil, fmt.Errorf("%w: %q at pc %d", ErrUnknownLabel, x.Target, pc)
			}
		}
	}
	return &Program{instrs: append([]Instr(nil), b.instrs...), targets: targets}, nil
}
