package machine

import (
	"math/rand"
	"testing"

	"simsym/internal/sched"
	"simsym/internal/system"
)

// TestRunIsDeterministic: the machine is a deterministic function of
// (system, program, schedule) — the only nondeterminism in the model is
// the schedule itself. Property-checked over random programs, systems,
// and schedules.
func TestRunIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 60; trial++ {
		s, err := system.RandomSystem(rng, system.RandomOpts{
			Procs:      1 + rng.Intn(5),
			Vars:       1 + rng.Intn(4),
			Names:      1 + rng.Intn(3),
			InitStates: 1 + rng.Intn(2),
		})
		if err != nil {
			continue
		}
		instr := system.InstrQ
		if rng.Intn(2) == 0 {
			instr = system.InstrL
		}
		prog, err := RandomProgram(rng, s.Names, instr, 1+rng.Intn(10))
		if err != nil {
			t.Fatal(err)
		}
		schedule, err := sched.UniformRandom(rng, s.NumProcs(), 120)
		if err != nil {
			t.Fatal(err)
		}
		run := func() string {
			m, err := New(s, instr, prog)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(schedule); err != nil {
				t.Fatal(err)
			}
			return m.Fingerprint()
		}
		if run() != run() {
			t.Fatalf("trial %d: same schedule produced different final states", trial)
		}
	}
}

// TestFingerprintConsistency: the incremental fingerprint caches must
// never go stale — the fingerprint after any step sequence equals the
// fingerprint of a fresh machine replaying the same steps.
func TestFingerprintConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	s := system.Fig2()
	prog, err := RandomProgram(rng, s.Names, system.InstrQ, 8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(s, system.InstrQ, prog)
	if err != nil {
		t.Fatal(err)
	}
	var steps []int
	for i := 0; i < 200; i++ {
		p := rng.Intn(3)
		steps = append(steps, p)
		if err := m.Step(p); err != nil {
			t.Fatal(err)
		}
		if got, want := m.Clone().Fingerprint(), m.Fingerprint(); got != want {
			t.Fatalf("step %d: clone fingerprint differs from original", i)
		}
	}
	replay, err := New(s, system.InstrQ, prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range steps {
		if err := replay.Step(p); err != nil {
			t.Fatal(err)
		}
	}
	if m.Fingerprint() != replay.Fingerprint() {
		t.Fatal("replayed machine fingerprint differs (stale cache or nondeterminism)")
	}
}
