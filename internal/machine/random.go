package machine

import (
	"fmt"
	"math/rand"

	"simsym/internal/canon"
	"simsym/internal/system"
)

// RandomProgram generates a pseudo-random deterministic program valid for
// the given instruction set and name alphabet. It is used to fuzz the
// similarity witness: Theorem 4's claim is universally quantified over
// programs, so arbitrary programs must keep same-labeled nodes in lock
// step under a class-sorted round-robin schedule.
//
// Generated programs use a fixed set of local slots, total (possibly
// looping) control flow, and Compute steps drawn from a deterministic
// combinator library. All randomness is in program construction; the
// produced program itself is deterministic.
func RandomProgram(rng *rand.Rand, names []system.Name, instr system.InstrSet, length int) (*Program, error) {
	if length < 1 {
		return nil, fmt.Errorf("%w: length %d", ErrEmptyProgram, length)
	}
	slots := []string{"a", "b", "c"}
	b := NewBuilder()
	a, bb, c, initS := b.Sym("a"), b.Sym("b"), b.Sym("c"), b.Sym("init")
	// Every program starts by defining its slots so reads never fail.
	b.Compute(func(r *Regs) {
		r.Set(a, 0)
		r.Set(bb, "")
		r.Set(c, r.Get(initS))
	})
	for i := 0; i < length; i++ {
		b.Label(fmt.Sprintf("i%d", i))
		name := names[rng.Intn(len(names))]
		src := slots[rng.Intn(len(slots))]
		dst := slots[rng.Intn(len(slots))]
		srcS, dstS := b.Sym(src), b.Sym(dst)
		var choices []func()
		addShared := func() {
			switch instr {
			case system.InstrQ:
				choices = append(choices,
					func() { b.Post(name, src) },
					func() { b.Peek(name, dst) },
				)
			default:
				choices = append(choices,
					func() { b.Write(name, src) },
					func() { b.Read(name, dst) },
				)
				if instr == system.InstrL || instr == system.InstrExtL {
					choices = append(choices,
						func() { b.Lock(name, dst) },
						func() { b.Unlock(name) },
					)
				}
			}
		}
		addShared()
		addShared() // weight shared accesses double
		kind := rng.Intn(4)
		choices = append(choices,
			func() {
				switch kind {
				case 0:
					b.Compute(func(r *Regs) { r.Set(dstS, canon.String(r.Get(srcS))) })
				case 1:
					b.Compute(func(r *Regs) {
						if n, ok := r.Get(dstS).(int); ok {
							r.Set(dstS, n+1)
						} else {
							r.Set(dstS, 1)
						}
					})
				case 2:
					b.Compute(func(r *Regs) { r.Set(dstS, r.Get(srcS)) })
				default:
					b.Compute(func(r *Regs) {
						r.Set(dstS, canon.Hash([]any{r.Get(a), r.Get(bb), r.Get(c)})%97)
					})
				}
			},
			func() {
				// Bounded backward jump: loop while a counter is small.
				target := fmt.Sprintf("i%d", rng.Intn(i+1))
				bound := 1 + rng.Intn(5)
				ctr := b.Sym(fmt.Sprintf("ctr%d", i))
				b.Compute(func(r *Regs) {
					if _, ok := r.Get(ctr).(int); !ok {
						r.Set(ctr, 0)
					}
					r.Set(ctr, r.Get(ctr).(int)+1)
				})
				b.JumpIf(func(r *Regs) bool {
					n, _ := r.Get(ctr).(int)
					return n < bound
				}, target)
			},
		)
		choices[rng.Intn(len(choices))]()
	}
	b.Halt()
	return b.Build()
}
