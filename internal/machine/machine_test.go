package machine

import (
	"errors"
	"testing"

	"simsym/internal/sched"
	"simsym/internal/system"
)

// counterProgram increments a local counter k times then halts.
func counterProgram(t *testing.T, k int) *Program {
	t.Helper()
	b := NewBuilder()
	n := b.Sym("n")
	b.Compute(func(r *Regs) { r.Set(n, 0) })
	b.Label("loop")
	b.JumpIf(func(r *Regs) bool { return r.Int(n) >= k }, "done")
	b.Compute(func(r *Regs) { r.Set(n, r.Int(n)+1) })
	b.Jump("loop")
	b.Label("done")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLocalComputation(t *testing.T) {
	m, err := New(system.Fig1(), system.InstrS, counterProgram(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := sched.RoundRobin(2, 40)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(rr); err != nil {
		t.Fatal(err)
	}
	if !m.AllHalted() {
		t.Fatal("machine should halt")
	}
	if m.System().NumProcs() != 2 {
		t.Error("System accessor wrong")
	}
	if m.Steps() == 0 {
		t.Error("Steps should count executed steps")
	}
	for p := 0; p < 2; p++ {
		v, ok := m.Local(p, "n")
		if !ok || v.(int) != 5 {
			t.Errorf("proc %d: n = %v, want 5", p, v)
		}
	}
}

func TestReadWriteSharedVariable(t *testing.T) {
	// p and q share v. Each writes its init and then reads; under a
	// sequential schedule the second writer's value wins.
	s := system.Fig1()
	s.ProcInit[0] = "A"
	s.ProcInit[1] = "B"
	b := NewBuilder()
	b.Write("n", "init")
	b.Read("n", "seen")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(s, system.InstrS, prog)
	if err != nil {
		t.Fatal(err)
	}
	// Schedule: p writes, q writes, p reads, q reads.
	for _, step := range []int{0, 1, 0, 1} {
		if err := m.Step(step); err != nil {
			t.Fatal(err)
		}
	}
	got0, _ := m.Local(0, "seen")
	got1, _ := m.Local(1, "seen")
	if got0 != "B" || got1 != "B" {
		t.Errorf("seen = (%v,%v), want (B,B): q's write overwrote p's", got0, got1)
	}
}

func TestInstructionSetEnforcement(t *testing.T) {
	tests := []struct {
		name  string
		instr system.InstrSet
		build func(b *Builder)
		want  error
	}{
		{"lock under S", system.InstrS, func(b *Builder) { b.Lock("n", "ok") }, ErrInstrNotAllowed},
		{"peek under S", system.InstrS, func(b *Builder) { b.Peek("n", "x") }, ErrInstrNotAllowed},
		{"read under Q", system.InstrQ, func(b *Builder) { b.Read("n", "x") }, ErrInstrNotAllowed},
		{"post under L", system.InstrL, func(b *Builder) { b.Post("n", "init") }, ErrInstrNotAllowed},
		{"lock under L ok", system.InstrL, func(b *Builder) { b.Lock("n", "ok") }, nil},
		{"peek under Q ok", system.InstrQ, func(b *Builder) { b.Peek("n", "x") }, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := NewBuilder()
			tt.build(b)
			b.Halt()
			prog, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			m, err := New(system.Fig1(), tt.instr, prog)
			if err != nil {
				t.Fatal(err)
			}
			err = m.Step(0)
			if !errors.Is(err, tt.want) && !(tt.want == nil && err == nil) {
				t.Errorf("Step = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestLockSemantics(t *testing.T) {
	b := NewBuilder()
	b.Lock("n", "got")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(system.Fig1(), system.InstrL, prog)
	if err != nil {
		t.Fatal(err)
	}
	// p locks first and wins; q's attempt fails.
	if err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Step(1); err != nil {
		t.Fatal(err)
	}
	got0, _ := m.Local(0, "got")
	got1, _ := m.Local(1, "got")
	if got0 != true || got1 != false {
		t.Errorf("lock outcomes = (%v,%v), want (true,false)", got0, got1)
	}
}

func TestUnlockAllowsRelock(t *testing.T) {
	b := NewBuilder()
	b.Lock("n", "first")
	b.Unlock("n")
	b.Lock("n", "second")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(system.Fig1(), system.InstrL, prog)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := m.Step(0); err != nil {
			t.Fatal(err)
		}
	}
	first, _ := m.Local(0, "first")
	second, _ := m.Local(0, "second")
	if first != true || second != true {
		t.Errorf("lock-unlock-lock = (%v,%v), want (true,true)", first, second)
	}
}

func TestPeekPostMultiset(t *testing.T) {
	s := system.Fig1()
	s.ProcInit[0] = "A"
	s.ProcInit[1] = "B"
	b := NewBuilder()
	b.Post("n", "init")
	b.Peek("n", "seen")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(s, system.InstrQ, prog)
	if err != nil {
		t.Fatal(err)
	}
	// Before any post, a peek returns the empty multiset.
	probe, err := New(s, system.InstrQ, mustProg(t, func(b *Builder) { b.Peek("n", "x"); b.Halt() }))
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Step(0); err != nil {
		t.Fatal(err)
	}
	x, _ := probe.Local(0, "x")
	if pr := x.(PeekResult); len(pr.Values) != 0 || pr.Init != "0" {
		t.Errorf("fresh peek = %+v, want empty multiset with init 0", pr)
	}
	// Both post, then both peek: each sees the multiset {A, B}.
	for _, step := range []int{0, 1, 0, 1} {
		if err := m.Step(step); err != nil {
			t.Fatal(err)
		}
	}
	for p := 0; p < 2; p++ {
		seen, _ := m.Local(p, "seen")
		pr := seen.(PeekResult)
		if len(pr.Values) != 2 {
			t.Fatalf("proc %d peek = %+v, want 2 subvalues", p, pr)
		}
		if pr.Values[0] != "A" || pr.Values[1] != "B" {
			t.Errorf("proc %d peek values = %v, want [A B] (canonical order)", p, pr.Values)
		}
	}
}

func TestPostOverwritesOwnSubvalue(t *testing.T) {
	b := NewBuilder()
	x := b.Sym("x")
	b.Compute(func(r *Regs) { r.Set(x, "first") })
	b.Post("n", "x")
	b.Compute(func(r *Regs) { r.Set(x, "second") })
	b.Post("n", "x")
	b.Peek("n", "seen")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(system.Fig1(), system.InstrQ, prog)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := m.Step(0); err != nil {
			t.Fatal(err)
		}
	}
	seen, _ := m.Local(0, "seen")
	pr := seen.(PeekResult)
	if len(pr.Values) != 1 || pr.Values[0] != "second" {
		t.Errorf("peek after re-post = %v, want [second]: post replaces own subvalue", pr.Values)
	}
}

func TestAnonymityIdenticalInitsStayIdentical(t *testing.T) {
	// Two processors with the same init running the same program under
	// round-robin must have identical fingerprints after every full
	// round — the dynamic core of the similarity argument.
	s := system.Fig1()
	b := NewBuilder()
	initS := b.Sym("init")
	b.Label("loop")
	b.Post("n", "init")
	b.Peek("n", "x")
	b.Compute(func(r *Regs) { r.Set(initS, r.Get(initS).(string)+"!") })
	b.Jump("loop")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(s, system.InstrQ, prog)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 30; round++ {
		if err := m.Step(0); err != nil {
			t.Fatal(err)
		}
		if err := m.Step(1); err != nil {
			t.Fatal(err)
		}
		if m.ProcFingerprint(0) != m.ProcFingerprint(1) {
			t.Fatalf("round %d: fingerprints diverged for identical processors", round)
		}
	}
}

func TestHaltedStepIsNoop(t *testing.T) {
	m, err := New(system.Fig1(), system.InstrS, mustProg(t, func(b *Builder) { b.Halt() }))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	if !m.Halted(0) {
		t.Fatal("proc 0 should be halted")
	}
	before := m.ProcFingerprint(0)
	if err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	if m.ProcFingerprint(0) != before {
		t.Error("stepping a halted processor changed its state")
	}
}

// TestHaltedStepPreservesFingerprintCache is the regression test for the
// halted-step cache bug: stepping an already-halted processor used to
// clear m.procFP[p] (and re-assign Halted), forcing a pointless re-encode
// of an unchanged state. The halted no-op must keep the cache warm.
func TestHaltedStepPreservesFingerprintCache(t *testing.T) {
	m, err := New(system.Fig1(), system.InstrS, mustProg(t, func(b *Builder) { b.Halt() }))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	fp := m.ProcFingerprint(0)
	if !m.procCached(0) {
		t.Fatal("fingerprint should be cached after ProcFingerprint")
	}
	stepsBefore := m.Steps()
	if err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	if m.Steps() != stepsBefore+1 {
		t.Error("halted step must still count as a schedule step")
	}
	if !m.procCached(0) {
		t.Error("halted step invalidated the cached fingerprint window")
	}
	if got := m.ProcFingerprint(0); got != fp {
		t.Errorf("halted step changed the cached fingerprint: %q -> %q", fp, got)
	}
}

func TestRunStopsWhenAllHalted(t *testing.T) {
	m, err := New(system.Fig1(), system.InstrS, counterProgram(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := sched.RoundRobin(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	n, err := m.Run(rr)
	if err != nil {
		t.Fatal(err)
	}
	if n >= 200 {
		t.Errorf("Run executed %d steps; should stop early after halt", n)
	}
}

func TestCloneIndependence(t *testing.T) {
	m, err := New(system.Fig1(), system.InstrQ, mustProg(t, func(b *Builder) {
		z := b.Sym("z")
		b.Post("n", "init")
		b.Compute(func(r *Regs) { r.Set(z, 1) })
		b.Halt()
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	if c.Fingerprint() != m.Fingerprint() {
		t.Fatal("clone fingerprint differs")
	}
	if err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Step(1); err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint() == m.Fingerprint() {
		t.Error("stepping the original changed the clone")
	}
}

func TestSelectedProcs(t *testing.T) {
	prog := mustProg(t, func(b *Builder) {
		initS, sel := b.Sym("init"), b.Sym("selected")
		b.Compute(func(r *Regs) {
			if r.Get(initS) == "A" {
				r.Set(sel, true)
			}
		})
		b.Halt()
	})
	s := system.Fig1()
	s.ProcInit[0] = "A"
	m, err := New(s, system.InstrS, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Step(1); err != nil {
		t.Fatal(err)
	}
	got := m.SelectedProcs()
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("SelectedProcs = %v, want [0]", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder().Build(); !errors.Is(err, ErrEmptyProgram) {
		t.Errorf("empty program error = %v", err)
	}
	b := NewBuilder()
	b.Jump("nowhere")
	if _, err := b.Build(); !errors.Is(err, ErrUnknownLabel) {
		t.Errorf("unknown label error = %v", err)
	}
	b2 := NewBuilder()
	b2.JumpIf(func(*Regs) bool { return true }, "missing")
	if _, err := b2.Build(); !errors.Is(err, ErrUnknownLabel) {
		t.Errorf("unknown JumpIf label error = %v", err)
	}
}

func TestStepErrors(t *testing.T) {
	m, err := New(system.Fig1(), system.InstrS, mustProg(t, func(b *Builder) {
		b.Write("n", "unset")
		b.Halt()
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Step(5); !errors.Is(err, ErrBadProcessor) {
		t.Errorf("bad processor = %v", err)
	}
	if err := m.Step(0); !errors.Is(err, ErrMissingLocal) {
		t.Errorf("missing local = %v", err)
	}
}

func TestNewErrors(t *testing.T) {
	prog := mustProgStandalone(func(b *Builder) { b.Halt() })
	bad := system.Fig1()
	bad.Nbr[0][0] = 9
	if _, err := New(bad, system.InstrS, prog); err == nil {
		t.Error("invalid system should fail")
	}
	if _, err := New(system.Fig1(), system.InstrSet(42), prog); !errors.Is(err, ErrBadInstrSet) {
		t.Error("bad instruction set should fail")
	}
}

// TestNewBindsSharedNames pins that shared-name resolution moved to New:
// a program naming a variable the system does not define fails at bind
// time, before any step runs.
func TestNewBindsSharedNames(t *testing.T) {
	prog := mustProgStandalone(func(b *Builder) { b.Read("no-such-name", "x"); b.Halt() })
	if _, err := New(system.Fig1(), system.InstrS, prog); !errors.Is(err, system.ErrUnknownName) {
		t.Errorf("New with unknown shared name = %v, want ErrUnknownName", err)
	}
}

func mustProg(t *testing.T, f func(*Builder)) *Program {
	t.Helper()
	b := NewBuilder()
	f(b)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustProgStandalone(f func(*Builder)) *Program {
	b := NewBuilder()
	f(b)
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
