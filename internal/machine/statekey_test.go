package machine

import (
	"bytes"
	"math/rand"
	"testing"

	"simsym/internal/system"
)

// TestAppendStateKeyMatchesFingerprint checks the binary key and the
// canonical string fingerprint agree on equality across random runs.
func TestAppendStateKeyMatchesFingerprint(t *testing.T) {
	s := system.Fig1()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		prog, err := RandomProgram(rng, s.Names, system.InstrQ, 1+rng.Intn(8))
		if err != nil {
			t.Fatal(err)
		}
		var machines []*Machine
		var keys [][]byte
		var fps []string
		for run := 0; run < 3; run++ {
			m, err := New(s, system.InstrQ, prog)
			if err != nil {
				t.Fatal(err)
			}
			for step := 0; step < rng.Intn(12); step++ {
				if err := m.Step(rng.Intn(s.NumProcs())); err != nil {
					t.Fatal(err)
				}
			}
			machines = append(machines, m)
			keys = append(keys, m.AppendStateKey(nil, nil, nil))
			fps = append(fps, m.Fingerprint())
		}
		for i := range machines {
			for j := range machines {
				if (fps[i] == fps[j]) != bytes.Equal(keys[i], keys[j]) {
					t.Fatalf("key/fingerprint equality disagree for runs %d,%d:\nfp i %q\nfp j %q", i, j, fps[i], fps[j])
				}
			}
		}
	}
}

// TestAppendStateKeyPermutation checks that a permuted key equals the key
// of the symmetric image state: stepping processor 0 then permuting under
// the Fig1 swap automorphism gives the key of stepping processor 1.
func TestAppendStateKeyPermutation(t *testing.T) {
	s := system.Fig1()
	b := NewBuilder()
	x, x2 := b.Sym("x"), b.Sym("x2")
	b.Read("n", "x")
	b.Compute(func(r *Regs) { r.Set(x2, r.Get(x)) })
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	step := func(p int) *Machine {
		m, err := New(s, system.InstrS, prog)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Step(p); err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, bm := step(0), step(1)
	swapProc := []int{1, 0}
	idVar := []int{0}
	got := a.AppendStateKey(nil, swapProc, idVar)
	want := bm.AppendStateKey(nil, nil, nil)
	if !bytes.Equal(got, want) {
		t.Error("permuted key should equal the symmetric image's key")
	}
	if bytes.Equal(a.AppendStateKey(nil, nil, nil), want) {
		t.Error("the two asymmetric states should have distinct raw keys")
	}
}
