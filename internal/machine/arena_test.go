package machine

import (
	"bytes"
	"encoding/binary"
	"testing"

	"simsym/internal/system"
)

// warmQMachine builds a Fig2 Q-machine, advances it, and primes every
// fingerprint window so the encode paths below run fully cached.
func warmQMachine(t *testing.T) *Machine {
	t.Helper()
	bl := NewBuilder()
	bl.Label("loop")
	bl.Post("n", "init")
	bl.Peek("n", "x")
	bl.Jump("loop")
	prog, err := bl.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(system.Fig2(), system.InstrQ, prog)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if err := m.Step(i % 3); err != nil {
			t.Fatal(err)
		}
	}
	m.PrimeFingerprints()
	return m
}

// TestAppendPathsZeroAllocWarm pins the tentpole's allocation contract:
// once a machine's windows are primed, every Append* encode path is a
// pure copy out of the arena — zero allocations per call on a buffer
// with capacity. A regression here silently reintroduces the per-state
// garbage the arena exists to eliminate.
func TestAppendPathsZeroAllocWarm(t *testing.T) {
	m := warmQMachine(t)
	key := m.AppendStateKey(nil, nil, nil)
	buf := make([]byte, 0, 4*len(key))

	if got := testing.AllocsPerRun(200, func() {
		buf = m.AppendStateKey(buf[:0], nil, nil)
	}); got != 0 {
		t.Errorf("AppendStateKey warm = %v allocs/op, want 0", got)
	}
	if !bytes.Equal(buf, key) {
		t.Fatal("warm AppendStateKey diverged from its own first encoding")
	}

	// The keyed (relabeling) path reads the same cached windows.
	idP := make([]int, m.NumProcs())
	for i := range idP {
		idP[i] = i
	}
	idV := make([]int, len(m.varVal))
	for i := range idV {
		idV[i] = i
	}
	if got := testing.AllocsPerRun(200, func() {
		buf = m.AppendStateKey(buf[:0], idP, idV)
	}); got != 0 {
		t.Errorf("AppendStateKey keyed warm = %v allocs/op, want 0", got)
	}
	if !bytes.Equal(buf, key) {
		t.Fatal("identity-permuted key diverged from the plain key")
	}

	if got := testing.AllocsPerRun(200, func() {
		buf = m.AppendProcFingerprint(buf[:0], 0)
	}); got != 0 {
		t.Errorf("AppendProcFingerprint warm = %v allocs/op, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		buf = m.AppendVarFingerprint(buf[:0], 0)
	}); got != 0 {
		t.Errorf("AppendVarFingerprint warm = %v allocs/op, want 0", got)
	}
}

// splitKey parses a state key into its uvarint length-prefixed component
// windows.
func splitKey(t *testing.T, key []byte, comps int) [][]byte {
	t.Helper()
	out := make([][]byte, 0, comps)
	for len(key) > 0 {
		n, w := binary.Uvarint(key)
		if w <= 0 || int(n) > len(key)-w {
			t.Fatalf("malformed component prefix at tail %q", key)
		}
		out = append(out, key[w:w+int(n)])
		key = key[w+int(n):]
	}
	if len(out) != comps {
		t.Fatalf("key holds %d components, want %d", len(out), comps)
	}
	return out
}

// TestEmptyWindowIsNotUncached documents the bitmask invariant: cache
// validity lives in procValid/varValid, never in the span. A zero-length
// window with its valid bit set is a legitimate cached value — the
// encode paths must emit it (a bare 0x00 length prefix) without
// re-encoding — while the same span bytes with the bit cleared must be
// ignored and the component re-encoded. An implementation that tested
// `span.n != 0` for validity would pass every other test and corrupt
// exactly this boundary.
func TestEmptyWindowIsNotUncached(t *testing.T) {
	m := warmQMachine(t)
	procs, vars := m.NumProcs(), len(m.varVal)
	const v = 0

	// Manufacture an empty cached window for variable v at the arena
	// tail: a 0x00 uvarint length prefix followed by a zero-length body.
	m.fpArena = append(m.fpArena, 0)
	m.varSpan[v] = fpSpan{off: int32(len(m.fpArena)), n: 0}
	if !m.varCached(v) {
		t.Fatal("setup: priming must have left v's valid bit set")
	}
	arenaLen := len(m.fpArena)

	key := m.AppendStateKey(nil, nil, nil)
	comps := splitKey(t, key, procs+vars)
	if len(comps[procs+v]) != 0 {
		t.Fatalf("valid empty window re-encoded to %q; must be emitted as-is", comps[procs+v])
	}
	if len(m.fpArena) != arenaLen {
		t.Errorf("arena grew %d → %d: the cached empty window was re-encoded", arenaLen, len(m.fpArena))
	}

	// The keyed path must honor the same invariant.
	idP := make([]int, procs)
	for i := range idP {
		idP[i] = i
	}
	idV := make([]int, vars)
	for i := range idV {
		idV[i] = i
	}
	if keyed := m.AppendStateKey(nil, idP, idV); !bytes.Equal(keyed, key) {
		t.Error("keyed path disagrees with fast path on the empty window")
	}

	// Clearing the valid bit — span bytes untouched — must force a
	// re-encode: empty window ≠ uncached, and uncached ≠ empty window.
	m.varValid[v>>6] &^= 1 << uint(v&63)
	key2 := m.AppendStateKey(nil, nil, nil)
	comps2 := splitKey(t, key2, procs+vars)
	if len(comps2[procs+v]) == 0 {
		t.Fatal("cleared valid bit still served the stale empty window")
	}
	want := m.appendVarFP(nil, v)
	if !bytes.Equal(comps2[procs+v], want) {
		t.Errorf("re-encoded component = %q, want %q", comps2[procs+v], want)
	}
}
