package machine

import (
	"testing"

	"simsym/internal/system"
)

func newFig1Machine(t *testing.T, prog *Program) *Machine {
	t.Helper()
	m, err := New(system.Fig1(), system.InstrS, prog)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunDelegatesToRunWith(t *testing.T) {
	// Run and RunWith over the same finite schedule must be
	// step-for-step identical, including the early stop on AllHalted.
	prog := counterProgram(t, 3)
	schedule := []int{0, 1, 0, 0, 1, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1}
	m1 := newFig1Machine(t, prog)
	n1, err := m1.Run(schedule)
	if err != nil {
		t.Fatal(err)
	}
	m2 := newFig1Machine(t, prog)
	n2, err := m2.RunWith(&sliceScheduler{schedule: schedule})
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 {
		t.Fatalf("Run executed %d steps, RunWith %d", n1, n2)
	}
	if m1.Fingerprint() != m2.Fingerprint() {
		t.Fatal("Run and RunWith reached different states")
	}
}

// stepsThenStop schedules processor p for exactly n steps.
type stepsThenStop struct{ p, n int }

func (s *stepsThenStop) Next(*Machine) (int, bool) {
	if s.n <= 0 {
		return 0, false
	}
	s.n--
	return s.p, true
}

func TestRunWithStopsWhenSchedulerEnds(t *testing.T) {
	m := newFig1Machine(t, counterProgram(t, 100))
	n, err := m.RunWith(&stepsThenStop{p: 0, n: 5})
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("executed %d steps, want 5", n)
	}
	if m.AllHalted() {
		t.Fatal("machine should still be running")
	}
}

func TestCrashHaltsWithoutCountingASteps(t *testing.T) {
	m := newFig1Machine(t, counterProgram(t, 3))
	if err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	before := m.Steps()
	fpBefore := m.Fingerprint()
	if err := m.Crash(0); err != nil {
		t.Fatal(err)
	}
	if m.Steps() != before {
		t.Fatal("Crash must not consume a schedule step")
	}
	if !m.Halted(0) || !m.Crashed(0) {
		t.Fatal("crashed processor should be halted and marked crashed")
	}
	if m.Crashed(1) {
		t.Fatal("processor 1 did not crash")
	}
	if m.Fingerprint() == fpBefore {
		t.Fatal("crash must show up in the fingerprint (halted bit flipped)")
	}
	// Stepping a crashed processor is the usual legal stutter.
	if err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	// A clone remembers who crashed.
	if c := m.Clone(); !c.Crashed(0) || c.Crashed(1) {
		t.Fatal("Clone lost the crash record")
	}
	// Crashing an already-halted processor is a no-op, not a crash.
	m2 := newFig1Machine(t, counterProgram(t, 0))
	for i := 0; i < 4; i++ {
		if err := m2.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	if !m2.Halted(1) {
		t.Fatal("processor 1 should have halted on its own")
	}
	if err := m2.Crash(1); err != nil {
		t.Fatal(err)
	}
	if m2.Crashed(1) {
		t.Fatal("crashing a voluntarily-halted processor must not mark it crashed")
	}
}

func TestStepOrSkipLeavesHaltedUntouched(t *testing.T) {
	m := newFig1Machine(t, counterProgram(t, 1))
	if err := m.Crash(0); err != nil {
		t.Fatal(err)
	}
	before := m.Steps()
	stepped, err := m.StepOrSkip(0)
	if err != nil {
		t.Fatal(err)
	}
	if stepped {
		t.Fatal("StepOrSkip should skip a crashed processor")
	}
	if m.Steps() != before {
		t.Fatal("skipped pick must not consume a step (unlike Step's stutter)")
	}
	stepped, err = m.StepOrSkip(1)
	if err != nil {
		t.Fatal(err)
	}
	if !stepped || m.Steps() != before+1 {
		t.Fatal("StepOrSkip should execute a live processor's step")
	}
	if _, err := m.StepOrSkip(9); err == nil {
		t.Fatal("out-of-range pick should error")
	}
}

func TestDropLockReleasesHeldLock(t *testing.T) {
	b := NewBuilder()
	b.Lock("n", "g")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(system.Fig1(), system.InstrL, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	if !m.Locked(0) {
		t.Fatal("processor 0 should hold the lock")
	}
	fpHeld := m.VarFingerprint(0)
	steps := m.Steps()
	if err := m.DropLock(0); err != nil {
		t.Fatal(err)
	}
	if m.Locked(0) {
		t.Fatal("DropLock left the lock held")
	}
	if m.Steps() != steps {
		t.Fatal("DropLock must not consume a step")
	}
	if m.VarFingerprint(0) == fpHeld {
		t.Fatal("drop must invalidate the variable fingerprint")
	}
	// The oblivious holder can now be raced: processor 1 acquires the
	// same lock even though 0 never unlocked.
	if err := m.Step(1); err != nil {
		t.Fatal(err)
	}
	if g, _ := m.Local(1, "g"); g != true {
		t.Fatal("processor 1 should have acquired the dropped lock")
	}
	// Dropping an unheld lock is a no-op; out of range errors.
	if err := m.DropLock(0); err != nil {
		t.Fatal(err)
	}
	if err := m.DropLock(5); err == nil {
		t.Fatal("out-of-range variable should error")
	}
}
