package machine

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"simsym/internal/sched"
	"simsym/internal/system"
)

// TestStateKeyIffFingerprintQuick pins the soundness premise of
// mc.stateIndex as a property: for machines over the same system and
// program, AppendStateKey keys are equal exactly when Fingerprint strings
// are equal. Property-checked with testing/quick over random systems,
// random programs, and random schedules.
func TestStateKeyIffFingerprintQuick(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := system.RandomSystem(rng, system.RandomOpts{
			Procs:      1 + rng.Intn(4),
			Vars:       1 + rng.Intn(3),
			Names:      1 + rng.Intn(3),
			InitStates: 1 + rng.Intn(2),
		})
		if err != nil {
			return true // generator rejected a degenerate shape; not a property failure
		}
		instr := []system.InstrSet{system.InstrS, system.InstrL, system.InstrQ}[rng.Intn(3)]
		prog, err := RandomProgram(rng, s.Names, instr, 1+rng.Intn(8))
		if err != nil {
			t.Fatal(err)
			return false
		}
		var keys [][]byte
		var fps []string
		for run := 0; run < 4; run++ {
			m, err := New(s, instr, prog)
			if err != nil {
				t.Fatal(err)
				return false
			}
			schedule, err := sched.UniformRandom(rng, s.NumProcs(), 1+rng.Intn(25))
			if err != nil {
				t.Fatal(err)
				return false
			}
			if _, err := m.Run(schedule); err != nil {
				t.Fatal(err)
				return false
			}
			keys = append(keys, m.AppendStateKey(nil, nil, nil))
			fps = append(fps, m.Fingerprint())
		}
		for i := range keys {
			for j := range keys {
				if (fps[i] == fps[j]) != bytes.Equal(keys[i], keys[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
