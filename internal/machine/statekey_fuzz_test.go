package machine_test

// Differential fuzzing of the arena-backed AppendStateKey against the
// pre-compilation oracle encodings. The harness lives in an external
// test package so it can seed from every shipped topology, including the
// oriented tables (internal/dining imports machine, so an internal test
// file could not import it back).

import (
	"bytes"
	"math/rand"
	"testing"

	"simsym/internal/dining"
	"simsym/internal/machine"
	"simsym/internal/mc"
	"simsym/internal/system"
)

// fuzzTopologies returns the shipped topologies the harness seeds from;
// sel indexes into them modulo the count.
func fuzzTopology(t testing.TB, sel uint8) *system.System {
	switch sel % 6 {
	case 0:
		return system.Fig1()
	case 1:
		return system.Fig2()
	case 2:
		return system.Fig3()
	case 3:
		s, err := system.Dining(5)
		if err != nil {
			t.Fatal(err)
		}
		return s
	case 4:
		s, err := system.DiningFlipped(4)
		if err != nil {
			t.Fatal(err)
		}
		return s
	default:
		s, err := dining.OrientedTable(4, dining.SingleFlipOrientation(4))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
}

// FuzzStateKeyOracle differentially fuzzes the compiled state-key encode
// path against the oracle encodings, over random programs and schedules
// on every shipped topology:
//
//  1. Equality classes: AppendStateKey keys of two machines are equal
//     exactly when their FingerprintOracle strings are equal — compared
//     against replays of schedule prefixes, where the replay never
//     primes its arena (cold encode vs. warm arena differential).
//  2. Relabelings: AppendStateKey with a permutation's procAt/varAt must
//     produce byte-for-byte the plain key of an explicitly permuted
//     machine — the same program run on system.Apply(s, perm) under the
//     correspondingly permuted schedule.
//  3. Sampled schedules: the same differential holds along a schedule
//     drawn the way the statistical checker draws them — a PRNG stream
//     seeded per sample index (mc.SampleSeed) — so the arena's warm
//     paths are fuzzed on the exact step distributions mc.Sample runs.
func FuzzStateKeyOracle(f *testing.F) {
	for topo := uint8(0); topo < 6; topo++ {
		for is := uint8(0); is < 3; is++ {
			f.Add(topo, is, int64(topo)*31+int64(is), []byte{0, 1, 2, 0, 1, 2, 1, 0, 2, 2, 0, 1})
		}
	}
	f.Fuzz(func(t *testing.T, topo, instrSel uint8, seed int64, schedule []byte) {
		if len(schedule) > 64 {
			schedule = schedule[:64]
		}
		s := fuzzTopology(t, topo)
		instr := []system.InstrSet{system.InstrS, system.InstrL, system.InstrQ}[int(instrSel)%3]
		rng := rand.New(rand.NewSource(seed))
		prog, err := machine.RandomProgram(rng, s.Names, instr, 1+rng.Intn(8))
		if err != nil {
			t.Skip("generator rejected the shape")
		}
		perm := system.Permutation{ProcPerm: rng.Perm(s.NumProcs()), VarPerm: rng.Perm(s.NumVars())}
		s2, err := system.Apply(s, perm)
		if err != nil {
			t.Fatal(err)
		}

		// run executes the schedule (proc indices mod NumProcs, remapped
		// through mapProc when set) and reports how far it got; prime
		// re-encodes every window into the arena mid-run, so later steps
		// exercise the invalidation and re-encode paths.
		run := func(sys *system.System, n int, mapProc []int, prime bool) (*machine.Machine, int) {
			m, err := machine.New(sys, instr, prog)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				p := int(schedule[i]) % sys.NumProcs()
				if mapProc != nil {
					p = mapProc[p]
				}
				if _, err := m.StepOrSkip(p); err != nil {
					return m, i
				}
				if prime && i == n/2 {
					m.PrimeFingerprints()
				}
			}
			return m, n
		}

		m, steps := run(s, len(schedule), nil, true)
		mKey := m.AppendStateKey(nil, nil, nil)
		mOracle := m.FingerprintOracle()

		// 1. Key equality ⇔ oracle equality against prefix replays. The
		// full-length replay (cold arena) must land in m's own class.
		for _, cut := range []int{steps, steps / 2, 0} {
			o, osteps := run(s, cut, nil, false)
			if osteps != cut {
				t.Fatalf("replay of %d steps stopped at %d; execution is not deterministic", cut, osteps)
			}
			keyEq := bytes.Equal(mKey, o.AppendStateKey(nil, nil, nil))
			oracleEq := mOracle == o.FingerprintOracle()
			if keyEq != oracleEq {
				t.Fatalf("cut %d/%d: key equality %v but oracle equality %v\nkey    %q\noracle %q",
					cut, steps, keyEq, oracleEq, mKey, mOracle)
			}
			if cut == steps && !keyEq {
				t.Fatalf("full cold replay diverged from the warm arena key")
			}
		}

		// 2. Permuted relabeling vs. the explicitly permuted machine.
		m2, steps2 := run(s2, steps, perm.ProcPerm, false)
		if steps2 != steps {
			t.Fatalf("permuted machine stopped at %d/%d; permutation broke execution symmetry", steps2, steps)
		}
		invP := make([]int, len(perm.ProcPerm))
		for p, ip := range perm.ProcPerm {
			invP[ip] = p
		}
		invV := make([]int, len(perm.VarPerm))
		for v, iv := range perm.VarPerm {
			invV[iv] = v
		}
		relabeled := m.AppendStateKey(nil, invP, invV)
		plain := m2.AppendStateKey(nil, nil, nil)
		if !bytes.Equal(relabeled, plain) {
			t.Fatalf("relabeled key of m != plain key of the permuted machine\nrelabeled %q\nplain     %q", relabeled, plain)
		}

		// 3. One sampled-schedule execution: derive the per-sample seed
		// exactly as mc.Sample would for trial 0 of this base seed, draw a
		// uniform schedule from it, and check that a warm-arena run and a
		// cold replay of the same draws land in the same key/oracle class.
		sampled := func(sys *system.System, prime bool) *machine.Machine {
			srng := rand.New(rand.NewSource(mc.SampleSeed(seed, 0)))
			m, err := machine.New(sys, instr, prog)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 48; i++ {
				if _, err := m.StepOrSkip(srng.Intn(sys.NumProcs())); err != nil {
					break
				}
				if prime && i == 24 {
					m.PrimeFingerprints()
				}
			}
			return m
		}
		warm, cold := sampled(s, true), sampled(s, false)
		if !bytes.Equal(warm.AppendStateKey(nil, nil, nil), cold.AppendStateKey(nil, nil, nil)) {
			t.Fatalf("sampled schedule: warm arena key diverged from cold replay")
		}
		if warm.FingerprintOracle() != cold.FingerprintOracle() {
			t.Fatalf("sampled schedule: oracle strings diverged between warm and cold runs")
		}
	})
}
