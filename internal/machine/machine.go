package machine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"simsym/internal/canon"
	"simsym/internal/obs"
	"simsym/internal/system"
)

// Sentinel errors for execution.
var (
	ErrInstrNotAllowed = errors.New("machine: instruction not in instruction set")
	ErrBadProcessor    = errors.New("machine: processor index out of range")
	ErrBadVariable     = errors.New("machine: variable index out of range")
	ErrMissingLocal    = errors.New("machine: local variable not set")
	ErrBadInstrSet     = errors.New("machine: unsupported instruction set")
)

// Frame is one processor's private state: program counter plus locals.
// The frame never records the processor's identity — processors are
// anonymous, and programs can only distinguish themselves through what
// they observe.
type Frame struct {
	PC     int
	Locals Locals
	Halted bool
}

// qVar is the state of a Q multiset variable: one subvalue per processor
// that has posted (keyed by processor only for updates; fingerprints see
// the unordered multiset, as the paper requires).
type qVar map[int]any

// Machine executes a program over a system.
type Machine struct {
	sys     *system.System
	instr   system.InstrSet
	program *Program

	frames []Frame
	// S/L variables: one value each, plus a lock bit for L.
	varVal []any
	locked []bool
	// Q variables: per-processor subvalues.
	varSub []qVar

	steps int

	// crashed marks processors halted by fault injection (Crash) rather
	// than by their own program. A crashed processor is observationally a
	// halted one — fingerprints and other processors cannot tell the
	// difference — but harnesses use the distinction to excuse crashed
	// processors from convergence and correctness obligations.
	crashed []bool

	// Fingerprint caches: a step touches one processor frame and at most
	// one variable, so caching makes whole-state fingerprints (the model
	// checker's hot path) incremental. Empty string means stale.
	procFP []string
	varFP  []string

	// rec, when non-nil, observes streamed execution: RunWith emits one
	// KindSchedStep event per executed step and a machine.steps counter.
	// Step itself is never instrumented — it is the model checker's inner
	// loop, where even a nil check per step would be measurable.
	rec *obs.Recorder
}

// New initializes a machine: every processor at PC 0 with locals
// {"init": ProcInit[p]}, every S/L variable holding its initial state,
// every Q variable with no subvalues.
func New(sys *system.System, instr system.InstrSet, program *Program) (*Machine, error) {
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	switch instr {
	case system.InstrS, system.InstrL, system.InstrQ, system.InstrExtL:
	default:
		return nil, fmt.Errorf("%w: %v", ErrBadInstrSet, instr)
	}
	m := &Machine{
		sys:     sys,
		instr:   instr,
		program: program,
		frames:  make([]Frame, sys.NumProcs()),
		varVal:  make([]any, sys.NumVars()),
		locked:  make([]bool, sys.NumVars()),
		varSub:  make([]qVar, sys.NumVars()),
		crashed: make([]bool, sys.NumProcs()),
		procFP:  make([]string, sys.NumProcs()),
		varFP:   make([]string, sys.NumVars()),
	}
	for p := range m.frames {
		m.frames[p] = Frame{Locals: Locals{"init": sys.ProcInit[p]}}
	}
	for v := range m.varVal {
		m.varVal[v] = sys.VarInit[v]
		m.varSub[v] = make(qVar)
	}
	return m, nil
}

// Observe attaches an event recorder to streamed execution (RunWith). A
// nil recorder detaches. Clones inherit the recorder, so an observed
// machine's probe clones stay observed unless explicitly detached.
func (m *Machine) Observe(rec *obs.Recorder) { m.rec = rec }

// System returns the underlying system.
func (m *Machine) System() *system.System { return m.sys }

// NumProcs returns the number of processors.
func (m *Machine) NumProcs() int { return len(m.frames) }

// NumVars returns the number of variables.
func (m *Machine) NumVars() int { return len(m.varVal) }

// Steps returns the number of executed steps.
func (m *Machine) Steps() int { return m.steps }

// Halted reports whether processor p has halted.
func (m *Machine) Halted(p int) bool { return m.frames[p].Halted }

// AllHalted reports whether every processor has halted.
func (m *Machine) AllHalted() bool {
	for p := range m.frames {
		if !m.frames[p].Halted {
			return false
		}
	}
	return true
}

// Local returns processor p's local value (nil, false when unset).
func (m *Machine) Local(p int, name string) (any, bool) {
	v, ok := m.frames[p].Locals[name]
	return v, ok
}

// allowed reports whether instruction in is legal under m.instr.
func (m *Machine) allowed(in Instr) bool {
	switch in.(type) {
	case Read, Write:
		return m.instr == system.InstrS || m.instr == system.InstrL || m.instr == system.InstrExtL
	case Lock, Unlock:
		return m.instr == system.InstrL || m.instr == system.InstrExtL
	case Peek, Post:
		return m.instr == system.InstrQ
	default:
		return true // local instructions always allowed
	}
}

// Step executes one atomic instruction of processor p (a schedule step).
// Stepping a halted processor is a legal no-op, matching the paper's
// schedules which may name any processor at any time.
//
// Step is atomic on failure: every input (neighbor resolution, local
// lookups, instruction-set membership) is validated before the first
// mutation, so a Step that returns an error leaves the step counter, the
// fingerprint caches, and the machine state exactly as they were.
func (m *Machine) Step(p int) error {
	if p < 0 || p >= len(m.frames) {
		return fmt.Errorf("%w: %d", ErrBadProcessor, p)
	}
	fr := &m.frames[p]
	if fr.Halted || fr.PC >= m.program.Len() {
		m.steps++
		m.procFP[p] = ""
		fr.Halted = true
		return nil
	}
	in := m.program.instrs[fr.PC]
	if !m.allowed(in) {
		return fmt.Errorf("%w: %T under %v", ErrInstrNotAllowed, in, m.instr)
	}
	// commit marks the step as happening; each case below calls it only
	// after all of its fallible lookups have succeeded.
	commit := func() {
		m.steps++
		m.procFP[p] = ""
	}
	switch x := in.(type) {
	case Read:
		v, err := m.sys.NNbr(p, x.Name)
		if err != nil {
			return err
		}
		commit()
		fr.Locals = fr.Locals.Clone()
		fr.Locals[x.Dst] = m.varVal[v]
		fr.PC++
	case Write:
		v, err := m.sys.NNbr(p, x.Name)
		if err != nil {
			return err
		}
		val, ok := fr.Locals[x.Src]
		if !ok {
			return fmt.Errorf("%w: %q", ErrMissingLocal, x.Src)
		}
		commit()
		m.varVal[v] = val
		m.varFP[v] = ""
		fr.PC++
	case Lock:
		v, err := m.sys.NNbr(p, x.Name)
		if err != nil {
			return err
		}
		commit()
		fr.Locals = fr.Locals.Clone()
		if m.locked[v] {
			fr.Locals[x.Dst] = false
		} else {
			m.locked[v] = true
			m.varFP[v] = ""
			fr.Locals[x.Dst] = true
		}
		fr.PC++
	case Unlock:
		v, err := m.sys.NNbr(p, x.Name)
		if err != nil {
			return err
		}
		commit()
		m.locked[v] = false
		m.varFP[v] = ""
		fr.PC++
	case Peek:
		v, err := m.sys.NNbr(p, x.Name)
		if err != nil {
			return err
		}
		commit()
		fr.Locals = fr.Locals.Clone()
		fr.Locals[x.Dst] = m.peekValue(v)
		fr.PC++
	case Post:
		v, err := m.sys.NNbr(p, x.Name)
		if err != nil {
			return err
		}
		val, ok := fr.Locals[x.Src]
		if !ok {
			return fmt.Errorf("%w: %q", ErrMissingLocal, x.Src)
		}
		commit()
		// Copy-on-write so snapshots are not aliased.
		nv := make(qVar, len(m.varSub[v])+1)
		for k, s := range m.varSub[v] {
			nv[k] = s
		}
		nv[p] = val
		m.varSub[v] = nv
		m.varFP[v] = ""
		fr.PC++
	case Compute:
		commit()
		fr.Locals = fr.Locals.Clone()
		x.F(fr.Locals)
		fr.PC++
	case JumpIf:
		commit()
		if x.Cond(fr.Locals) {
			fr.PC = m.program.targets[x.Target]
		} else {
			fr.PC++
		}
	case Jump:
		commit()
		fr.PC = m.program.targets[x.Target]
	case Halt:
		commit()
		fr.Halted = true
	default:
		return fmt.Errorf("machine: unknown instruction %T", in)
	}
	return nil
}

// peekValue builds the PeekResult for variable v: init state plus the
// subvalue multiset sorted canonically (the paper's unordered multiset).
func (m *Machine) peekValue(v int) PeekResult {
	vals := make([]any, 0, len(m.varSub[v]))
	for _, s := range m.varSub[v] {
		vals = append(vals, s)
	}
	sort.Slice(vals, func(a, b int) bool {
		return canon.String(vals[a]) < canon.String(vals[b])
	})
	return PeekResult{Init: m.sys.VarInit[v], Values: vals}
}

// Scheduler streams schedule steps to a running machine. Next observes
// the current state and returns the processor to step, or ok=false to end
// the schedule. This is the paper's adversary in executable form: the
// schedule classes (general, fair, k-bounded-fair) are restrictions on
// what Next may return, and the impossibility proofs' adversaries are
// implementations that pick each step after watching the previous one
// land. Next must not mutate m (probe on a Clone instead).
type Scheduler interface {
	Next(m *Machine) (proc int, ok bool)
}

// sliceScheduler streams a precomputed finite schedule.
type sliceScheduler struct {
	schedule []int
	i        int
}

func (s *sliceScheduler) Next(*Machine) (int, bool) {
	if s.i >= len(s.schedule) {
		return 0, false
	}
	p := s.schedule[s.i]
	s.i++
	return p, true
}

// RunWith executes steps streamed by s from the current state, stopping
// early when every processor halts or s ends the schedule. It returns the
// number of steps executed. This is the primary driver; Run wraps it for
// finite precomputed schedules.
func (m *Machine) RunWith(s Scheduler) (int, error) {
	done := 0
	var err error
	for {
		if m.AllHalted() {
			break
		}
		p, ok := s.Next(m)
		if !ok {
			break
		}
		if err = m.Step(p); err != nil {
			break
		}
		if m.rec.Enabled() {
			m.rec.SchedStep(done, p, true)
		}
		done++
	}
	if m.rec.Enabled() && done > 0 {
		m.rec.Count("machine.steps", int64(done))
	}
	return done, err
}

// Run executes the schedule (a sequence of processor indices) from the
// current state, stopping early if every processor halts. It returns the
// number of steps actually executed.
func (m *Machine) Run(schedule []int) (int, error) {
	return m.RunWith(&sliceScheduler{schedule: schedule})
}

// StepOrSkip executes one step of processor p unless p has halted (or
// crashed), in which case it reports stepped=false and leaves the machine
// — including the step counter — untouched. Step treats a halted pick as
// a counted stutter, matching the paper's schedules which may name any
// processor; StepOrSkip is the fault harness's hook for distinguishing
// real steps from burned slots.
func (m *Machine) StepOrSkip(p int) (stepped bool, err error) {
	if p < 0 || p >= len(m.frames) {
		return false, fmt.Errorf("%w: %d", ErrBadProcessor, p)
	}
	if m.frames[p].Halted {
		return false, nil
	}
	return true, m.Step(p)
}

// Crash permanently halts processor p without consuming a schedule step —
// the fault model's crash-stop failure. The frame (locals, program
// counter, selected flag) survives; only the ability to step is lost.
// Crashing a processor that already halted on its own is a no-op.
func (m *Machine) Crash(p int) error {
	if p < 0 || p >= len(m.frames) {
		return fmt.Errorf("%w: %d", ErrBadProcessor, p)
	}
	if !m.frames[p].Halted {
		m.frames[p].Halted = true
		m.crashed[p] = true
		m.procFP[p] = ""
	}
	return nil
}

// Crashed reports whether processor p was halted by Crash (fault
// injection) as opposed to halting on its own.
func (m *Machine) Crashed(p int) bool { return m.crashed[p] }

// DropLock forcibly clears variable v's lock bit without consuming a
// schedule step — the fault model's lock-drop (a flaky lock service
// releasing a lease it granted). The holder is not notified: a processor
// that believes it holds the lock proceeds regardless, which is exactly
// the hazard the dining fault sweep probes. Dropping an unheld lock is a
// no-op.
func (m *Machine) DropLock(v int) error {
	if v < 0 || v >= len(m.locked) {
		return fmt.Errorf("%w: %d", ErrBadVariable, v)
	}
	if m.locked[v] {
		m.locked[v] = false
		m.varFP[v] = ""
	}
	return nil
}

// Locked reports whether variable v's lock bit is set.
func (m *Machine) Locked(v int) bool { return m.locked[v] }

// ProcFingerprint returns a canonical encoding of processor p's state
// (program counter + locals). Two processors "have the same state" in the
// paper's sense exactly when their fingerprints are equal. The encoding
// is hand-rolled rather than routed through canon.String: it is the
// model checker's per-child hot path, and the common local values
// (bools, ints, strings) encode with a tag byte and a length prefix
// instead of a reflective map walk. Injectivity survives because every
// component is self-delimiting and local names are emitted in sorted
// order.
func (m *Machine) ProcFingerprint(p int) string {
	if m.procFP[p] == "" {
		fr := m.frames[p]
		buf := make([]byte, 0, 48)
		buf = binary.AppendVarint(buf, int64(fr.PC))
		if fr.Halted {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.AppendUvarint(buf, uint64(len(fr.Locals)))
		names := make([]string, 0, len(fr.Locals))
		for k := range fr.Locals {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			buf = canon.AppendLenPrefixed(buf, k)
			buf = appendLocalValue(buf, fr.Locals[k])
		}
		m.procFP[p] = string(buf)
	}
	return m.procFP[p]
}

// appendLocalValue appends a tagged self-delimiting encoding of a local
// value. Scalars get direct fast paths; anything else (PeekResult,
// slices) falls back to the canonical string, length-prefixed under its
// own tag so the two regimes cannot alias.
func appendLocalValue(buf []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(buf, 'n')
	case bool:
		if x {
			return append(buf, 'b', 1)
		}
		return append(buf, 'b', 0)
	case int:
		buf = append(buf, 'i')
		return binary.AppendVarint(buf, int64(x))
	case string:
		buf = append(buf, 's')
		return canon.AppendLenPrefixed(buf, x)
	default:
		buf = append(buf, 'c')
		return canon.AppendLenPrefixed(buf, canon.String(valueForCanon(v)))
	}
}

// VarFingerprint returns a canonical encoding of variable v's state.
// Q subvalues are encoded as an unordered multiset. The leading tag byte
// separates the Q and S/L regimes.
func (m *Machine) VarFingerprint(v int) string {
	if m.varFP[v] != "" {
		return m.varFP[v]
	}
	if m.instr == system.InstrQ {
		ms := make(canon.Multiset, 0, len(m.varSub[v]))
		for _, s := range m.varSub[v] {
			ms = append(ms, s)
		}
		m.varFP[v] = "q" + canon.String(map[string]any{"init": m.sys.VarInit[v], "sub": ms})
	} else {
		buf := make([]byte, 0, 24)
		buf = append(buf, 'v')
		if m.locked[v] {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = appendLocalValue(buf, m.varVal[v])
		m.varFP[v] = string(buf)
	}
	return m.varFP[v]
}

// Fingerprint returns the canonical encoding of the whole machine state
// (all frames and all variables). Used as the model checker's visited-set
// key.
func (m *Machine) Fingerprint() string {
	procs := make([]any, len(m.frames))
	for p := range m.frames {
		procs[p] = m.ProcFingerprint(p)
	}
	vars := make([]any, len(m.varVal))
	for v := range m.varVal {
		vars[v] = m.VarFingerprint(v)
	}
	return canon.String([]any{procs, vars})
}

// AppendStateKey appends a compact binary encoding of the whole machine
// state to buf and returns the extended slice. The key concatenates the
// length-prefixed per-processor and per-variable canonical fingerprints,
// so two machines over the same system have equal keys iff their
// Fingerprint strings are equal — without materializing a new string per
// state. This is the model checker's visited-set key: callers reuse buf
// across states and the per-component fingerprints stay cached.
//
// When procAt/varAt are non-nil they relabel the key's node positions:
// position i of the key takes processor procAt[i]'s (variable varAt[i]'s)
// component. Passing an automorphism's permutation yields the key of the
// symmetric image state, which is how symmetry reduction computes orbit
// representatives without building permuted machines.
func (m *Machine) AppendStateKey(buf []byte, procAt, varAt []int) []byte {
	for i := range m.frames {
		p := i
		if procAt != nil {
			p = procAt[i]
		}
		buf = canon.AppendLenPrefixed(buf, m.ProcFingerprint(p))
	}
	for i := range m.varVal {
		v := i
		if varAt != nil {
			v = varAt[i]
		}
		buf = canon.AppendLenPrefixed(buf, m.VarFingerprint(v))
	}
	return buf
}

// localsForCanon converts Locals to a plain map for canonical encoding,
// expanding PeekResult into a canonical shape.
func localsForCanon(l Locals) map[string]any {
	out := make(map[string]any, len(l))
	for k, v := range l {
		out[k] = valueForCanon(v)
	}
	return out
}

func valueForCanon(v any) any {
	if pr, ok := v.(PeekResult); ok {
		ms := make(canon.Multiset, len(pr.Values))
		copy(ms, pr.Values)
		return map[string]any{"peek_init": pr.Init, "peek_vals": ms}
	}
	return v
}

// Clone returns an independent deep copy of the machine sharing only the
// immutable program and system.
func (m *Machine) Clone() *Machine {
	c := &Machine{
		sys:     m.sys,
		instr:   m.instr,
		program: m.program,
		frames:  make([]Frame, len(m.frames)),
		varVal:  append([]any(nil), m.varVal...),
		locked:  append([]bool(nil), m.locked...),
		varSub:  make([]qVar, len(m.varSub)),
		steps:   m.steps,
		crashed: append([]bool(nil), m.crashed...),
		procFP:  append([]string(nil), m.procFP...),
		varFP:   append([]string(nil), m.varFP...),
		rec:     m.rec,
	}
	// Locals and subvalue maps are copy-on-write (every mutating
	// instruction replaces the map before writing), so clones can share
	// them; this is what makes model-checker expansion cheap.
	copy(c.frames, m.frames)
	copy(c.varSub, m.varSub)
	return c
}

// SelectedProcs returns the processors whose local "selected" is true —
// the paper's selected_p flag (section 3).
func (m *Machine) SelectedProcs() []int {
	var out []int
	for p := range m.frames {
		if sel, ok := m.frames[p].Locals["selected"].(bool); ok && sel {
			out = append(out, p)
		}
	}
	return out
}
