package machine

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"simsym/internal/canon"
	"simsym/internal/obs"
	"simsym/internal/system"
)

// Sentinel errors for execution.
var (
	ErrInstrNotAllowed = errors.New("machine: instruction not in instruction set")
	ErrBadProcessor    = errors.New("machine: processor index out of range")
	ErrBadVariable     = errors.New("machine: variable index out of range")
	ErrMissingLocal    = errors.New("machine: local variable not set")
	ErrBadInstrSet     = errors.New("machine: unsupported instruction set")
)

// String names the opcode for error messages.
func (k opKind) String() string {
	switch k {
	case opRead:
		return "read"
	case opWrite:
		return "write"
	case opLock:
		return "lock"
	case opUnlock:
		return "unlock"
	case opPeek:
		return "peek"
	case opPost:
		return "post"
	case opCompute:
		return "compute"
	case opJumpIf:
		return "jumpif"
	case opJump:
		return "jump"
	case opHalt:
		return "halt"
	default:
		return fmt.Sprintf("opKind(%d)", int(k))
	}
}

// Frame is one processor's private state: program counter plus locals.
// The frame never records the processor's identity — processors are
// anonymous, and programs can only distinguish themselves through what
// they observe.
//
// Locals is a slot slice indexed by Sym (the program's symbol table);
// unassigned slots hold the package-private unset sentinel. The slice is
// copy-on-write: Clone shares it between machines and the first mutating
// step afterwards copies it, so model-checker expansion stays cheap.
type Frame struct {
	PC     int
	Locals []any
	Halted bool

	// owned reports that Locals is exclusively this frame's: mutating
	// steps may write in place. Meaningful only while the machine owns
	// its frames array (procsOwned); cowProcs resets it when the array
	// itself is copied after a Clone.
	owned bool
}

// cow makes fr.Locals private to this frame, copying once after a Clone
// and never again until the next Clone.
func (fr *Frame) cow() {
	if fr.owned {
		return
	}
	fr.Locals = append([]any(nil), fr.Locals...)
	fr.owned = true
}

// frameCow is Frame.cow with recycling: the copy lands in a Locals slice
// salvaged from a dead batch-expansion child when the bin has one.
func (m *Machine) frameCow(fr *Frame) {
	if fr.owned {
		return
	}
	if sp := m.spares; sp != nil {
		for n := len(sp.locals); n > 0; n-- {
			l := sp.locals[n-1]
			sp.locals[n-1] = nil
			sp.locals = sp.locals[:n-1]
			if len(l) == len(fr.Locals) {
				copy(l, fr.Locals)
				fr.Locals = l
				fr.owned = true
				return
			}
		}
	}
	fr.cow()
}

// Machine executes a program over a system.
type Machine struct {
	sys     *system.System
	instr   system.InstrSet
	program *Program

	// bound[p][pc] is the variable index processor p touches at pc — the
	// paper's n-nbr function evaluated once at construction, so Step never
	// resolves a name. Entries for local instructions are unused. Shared
	// (immutable) between clones.
	bound [][]int32
	// allowedKind[k] caches instruction-set legality per opcode.
	allowedKind [opHalt + 1]bool

	frames []Frame
	// S/L variables: one value each, plus a lock bit for L.
	varVal []any
	locked []bool
	// Q variables: one subvalue slot per processor (unset sentinel when
	// the processor has not posted). Copy-on-write like frame locals:
	// subOwned[v] reports the slice is private to this machine.
	varSub   [][]any
	subOwned []bool

	// procsOwned, varsOwned, and spansOwned are machine-level
	// copy-on-write bits over the backing arrays themselves, making Clone
	// O(1): procsOwned guards frames/crashed, varsOwned guards
	// varVal/locked/varSub/subOwned, and spansOwned guards the four
	// fingerprint bookkeeping arrays (procSpan/varSpan/procValid/
	// varValid). Clone clears all bits on both machines and shares every
	// array; the first mutating step afterwards copies just the group it
	// touches (cowProcs/cowVars/cowSpans). The span group is split out
	// because every step invalidates a cache bit but most steps leave
	// whole value groups untouched — and PrimeFingerprints must rewrite
	// span offsets without paying for a var-side value copy. When an
	// array group is shared, its finer-grained ownership bits
	// (Frame.owned, subOwned) are stale and ignored — the cow of the
	// outer array resets them.
	procsOwned bool
	varsOwned  bool
	spansOwned bool

	steps int

	// crashed marks processors halted by fault injection (Crash) rather
	// than by their own program. A crashed processor is observationally a
	// halted one — fingerprints and other processors cannot tell the
	// difference — but harnesses use the distinction to excuse crashed
	// processors from convergence and correctness obligations.
	crashed []bool

	// Fingerprint caches: a step touches one processor frame and at most
	// one variable, so caching makes whole-state fingerprints (the model
	// checker's hot path) incremental. Cached encodings live as byte
	// windows in fpArena addressed by procSpan/varSpan; the procValid/
	// varValid bitmasks — not the windows — are the cache authority, so a
	// legitimately empty encoding can never alias "uncached" (the hazard
	// the old ""-sentinel string caches had by construction).
	//
	// fpArena is append-only while arenaOwned; a Clone freezes it (both
	// sides drop ownership and treat it as read-only shared storage whose
	// still-valid windows they keep serving). fpLive tracks the bytes
	// covered by valid spans so arenaReserve can compact garbage into
	// fpScratch (a ping-pong buffer, never shared: Clone nils it on the
	// child) instead of growing forever. Invariant: arenaOwned implies
	// spansOwned — only New and rebuildArena (which cows the span group)
	// set it, so cache fills may always write spans.
	fpArena    []byte
	fpScratch  []byte
	fpLive     int
	arenaOwned bool
	procSpan   []fpSpan
	varSpan    []fpSpan
	procValid  []uint64
	varValid   []uint64

	// pStale/vStale defer cache invalidation on machines whose span group
	// is still shared: a batch-expansion child steps once, staling ≤1
	// frame and ≤2 variables, and copying four span arrays just to clear
	// bits would dominate expansion — most children are then discarded as
	// duplicates without ever owning spans. procCached/varCached treat a
	// pending component as uncached; applyStales folds the entries into
	// the bitmasks when the machine does privatize its span group (every
	// path to spansOwned runs through it, so a spansOwned — a fortiori
	// arenaOwned — machine never carries pendings and cache fills may
	// write bits directly). Fixed arrays, copied wholesale by clone and
	// detach; overflow falls back to an immediate apply.
	pStale  [4]int32
	vStale  [4]int32
	nPStale int8
	nVStale int8

	// Single-component overrides, the write-side twin of the pending
	// stales: a machine whose value arrays are still clone-shared keeps
	// its first touched frame in ovFrame (ovProc = which, -1 for none)
	// and up to two touched variables in the ovVar slots (value + lock
	// bit), so a batch-expansion child that steps once — one frame, at
	// most two variables — mutates nothing but its own struct. Reads go
	// through frameAt/varValAt/lockedAt, which consult the overrides;
	// cowProcs/cowVars fold them back into the freshly privatized arrays
	// (so procsOwned ⇒ no frame override, varsOwned ⇒ no var overrides),
	// and writes that outgrow the slots fall back to privatizing.
	ovProc   int32
	nOvVar   int8
	ovVar    [2]int32
	ovLocked [2]bool
	ovFrame  Frame
	ovVal    [2]any

	// selSym is the slot of the conventional "selected" local, or -1 when
	// the program never interns it.
	selSym Sym

	// regs is the scratch register view lent to Compute/JumpIf closures;
	// keeping it on the machine avoids a per-step allocation. Closures
	// must not retain it past their call.
	regs Regs

	// rec, when non-nil, observes streamed execution: RunWith emits one
	// KindSchedStep event per executed step and a machine.steps counter.
	// Step itself is never instrumented — it is the model checker's inner
	// loop, where even a nil check per step would be measurable.
	rec *obs.Recorder

	// spares is the pool slot's recycling bin (see spareArrays); nil on
	// machines that never host batch-expansion children.
	spares *spareArrays

	// slab, when non-nil, is a caller-owned bump allocator the cow paths
	// carve fresh arrays from instead of calling make — the model checker
	// sets it on kept machines so priming a whole BFS level costs a few
	// chunk allocations, not five per state. Never shared with concurrent
	// steppers: cloneInto strips it from children.
	slab *Slab
}

// Slab is a bump allocator for the machine's copy-on-write arrays. The
// zero value is ready to use. Carved windows are full-capacity slices,
// so a later append inside one machine can never bleed into a
// neighbour's window.
//
// Chunks are recycled generationally: Recycle retires everything carved
// since the previous Recycle and makes the generation before that
// reusable. The model checker calls Recycle at each BFS level boundary,
// which matches machine lifetime exactly — machines primed while
// expanding level L die when level L+1 finishes expanding, two
// boundaries later. PrimeFingerprints guarantees the lifetime premise
// by privatizing every mutable group, so no machine ever references a
// slab chunk of an older generation than its own.
type Slab struct {
	frames slabPool[Frame]
	anys   slabPool[any]
	subs   slabPool[[]any]
	bools  slabPool[bool]
	spans  slabPool[fpSpan]
	words  slabPool[uint64]
	bytes  slabPool[byte]
}

// Recycle advances the slab's generations at a point where the caller
// asserts everything carved before the previous Recycle is unreachable.
// Pools whose consumers rely on zeroed storage (bools: the subOwned
// half restarts zeroed) or whose elements carry pointers (a stale
// pointer in a free chunk would retain dead state) are cleared as their
// chunks become reusable; pointer-free pools skip the memclr.
func (s *Slab) Recycle() {
	s.frames.rotate(true)
	s.anys.rotate(true)
	s.subs.rotate(true)
	s.bools.rotate(true)
	s.spans.rotate(false)
	s.words.rotate(false)
	s.bytes.rotate(false)
}

// slabPool is one element type's chunk store: a bump tail plus three
// chunk generations — handed out since the last rotate (cur), the
// generation before that (prev), and reusable (free).
type slabPool[T any] struct {
	tail []T
	cur  [][]T
	prev [][]T
	free [][]T
}

// take carves n elements, refilling from a free (or fresh) chunk of at
// least `chunk` elements when the tail runs dry.
func (p *slabPool[T]) take(n, chunk int) []T {
	if len(p.tail) < n {
		var c []T
		if k := len(p.free); k > 0 && cap(p.free[k-1]) >= n {
			c = p.free[k-1][:cap(p.free[k-1])]
			p.free[k-1] = nil
			p.free = p.free[:k-1]
		} else {
			if chunk < n {
				chunk = n
			}
			c = make([]T, chunk)
		}
		p.cur = append(p.cur, c)
		p.tail = c
	}
	s := p.tail[:n:n]
	p.tail = p.tail[n:]
	return s
}

func (p *slabPool[T]) rotate(clearChunks bool) {
	for _, c := range p.prev {
		if clearChunks {
			clear(c)
		}
		p.free = append(p.free, c)
	}
	p.prev, p.cur = p.cur, p.prev[:0]
	// Retire the partial chunk: carving more of it would let one chunk
	// host two generations, breaking the rotation's lifetime argument.
	p.tail = nil
}

// SetSlab points the machine's copy-on-write allocations at a
// caller-owned slab. The caller must guarantee that machines sharing a
// slab never allocate concurrently; the model checker satisfies this by
// only priming kept machines on the sequential commit path.
func (m *Machine) SetSlab(s *Slab) { m.slab = s }

// isSharedKind reports whether the opcode addresses a shared variable.
func isSharedKind(k opKind) bool { return k >= opRead && k <= opPost }

// fpSpan addresses one cached fingerprint window inside fpArena.
type fpSpan struct {
	off int32
	n   int32
}

// spareArrays is a machine-private recycling bin for the copy-on-write
// array groups. CloneInto salvages the exclusively owned arrays of the
// pool slot it overwrites (a batch-expansion child that was not kept),
// and the next cowProcs/cowVars consumes them instead of allocating —
// steady-state batch stepping copies only the group a step touches,
// into recycled memory. The bin is never shared: cloneInto keeps it
// with the overwritten slot, Detach strips it from the heap copy.
type spareArrays struct {
	frames   []Frame
	crashed  []bool
	hasProcs bool

	varVal   []any
	locked   []bool
	varSub   [][]any
	subOwned []bool
	hasVars  bool

	procSpan  []fpSpan
	varSpan   []fpSpan
	procValid []uint64
	varValid  []uint64
	hasSpans  bool

	// locals recycles dead frames' private Locals slices for frameCow.
	locals [][]any
}

// cowProcs makes the processor-side arrays (frames, crashed) private to
// this machine, copying once after a Clone. The fresh frame copies drop
// their owned bits: their Locals slices are still shared.
func (m *Machine) cowProcs() {
	if m.procsOwned {
		return
	}
	if sp := m.spares; sp != nil && sp.hasProcs && len(sp.frames) == len(m.frames) {
		sp.hasProcs = false
		copy(sp.frames, m.frames)
		for i := range sp.frames {
			sp.frames[i].owned = false
		}
		copy(sp.crashed, m.crashed)
		m.frames, sp.frames = sp.frames, nil
		m.crashed, sp.crashed = sp.crashed, nil
	} else {
		var frames []Frame
		var crashed []bool
		if s := m.slab; s != nil {
			frames = s.frames.take(len(m.frames), 512)
			crashed = s.bools.take(len(m.crashed), 2048)
		} else {
			frames = make([]Frame, len(m.frames))
			crashed = make([]bool, len(m.crashed))
		}
		copy(frames, m.frames)
		for i := range frames {
			frames[i].owned = false
		}
		copy(crashed, m.crashed)
		m.frames = frames
		m.crashed = crashed
	}
	if m.ovProc >= 0 {
		m.frames[m.ovProc] = m.ovFrame
		m.ovFrame = Frame{}
		m.ovProc = -1
	}
	m.procsOwned = true
}

// cowVars makes the variable-side arrays (varVal, locked, varSub,
// subOwned) private to this machine. subOwned restarts zeroed: the inner
// subvalue slices are still shared and must be copied on the next post
// to each.
func (m *Machine) cowVars() {
	if m.varsOwned {
		return
	}
	if sp := m.spares; sp != nil && sp.hasVars && len(sp.varVal) == len(m.varVal) {
		sp.hasVars = false
		copy(sp.varVal, m.varVal)
		copy(sp.locked, m.locked)
		copy(sp.varSub, m.varSub)
		for i := range sp.subOwned {
			sp.subOwned[i] = false
		}
		m.varVal, sp.varVal = sp.varVal, nil
		m.locked, sp.locked = sp.locked, nil
		m.varSub, sp.varSub = sp.varSub, nil
		m.subOwned, sp.subOwned = sp.subOwned, nil
	} else {
		nl := len(m.locked)
		var vv []any
		var lk []bool
		var vs [][]any
		if s := m.slab; s != nil {
			vv = s.anys.take(len(m.varVal), 1024)
			vs = s.subs.take(len(m.varSub), 1024)
			lk = s.bools.take(nl+len(m.subOwned), 2048)
		} else {
			vv = make([]any, len(m.varVal))
			vs = make([][]any, len(m.varSub))
			lk = make([]bool, nl+len(m.subOwned))
		}
		copy(vv, m.varVal)
		copy(vs, m.varSub)
		m.varVal, m.varSub = vv, vs
		copy(lk[:nl], m.locked) // subOwned half restarts zeroed
		m.locked, m.subOwned = lk[:nl:nl], lk[nl:]
	}
	for i := int8(0); i < m.nOvVar; i++ {
		v := m.ovVar[i]
		m.varVal[v] = m.ovVal[i]
		m.locked[v] = m.ovLocked[i]
		m.ovVal[i] = nil
	}
	m.nOvVar = 0
	m.varsOwned = true
}

// cowSpans makes the fingerprint bookkeeping arrays (procSpan, varSpan,
// procValid, varValid) private to this machine. Split from the value
// groups so the per-step cache invalidation and PrimeFingerprints'
// offset rewrite copy four small pointer-free arrays, not the frame and
// variable values.
func (m *Machine) cowSpans() {
	if m.spansOwned {
		return
	}
	if sp := m.spares; sp != nil && sp.hasSpans &&
		len(sp.procSpan) == len(m.procSpan) && len(sp.varSpan) == len(m.varSpan) {
		sp.hasSpans = false
		copy(sp.procSpan, m.procSpan)
		copy(sp.varSpan, m.varSpan)
		copy(sp.procValid, m.procValid)
		copy(sp.varValid, m.varValid)
		m.procSpan, sp.procSpan = sp.procSpan, nil
		m.varSpan, sp.varSpan = sp.varSpan, nil
		m.procValid, sp.procValid = sp.procValid, nil
		m.varValid, sp.varValid = sp.varValid, nil
		m.spansOwned = true
		return
	}
	np, nv := len(m.procSpan), len(m.varSpan)
	pw, vw := len(m.procValid), len(m.varValid)
	var blk []fpSpan
	var vblk []uint64
	if s := m.slab; s != nil {
		blk = s.spans.take(np+nv, 2048)
		vblk = s.words.take(pw+vw, 1024)
	} else {
		blk = make([]fpSpan, np+nv)
		vblk = make([]uint64, pw+vw)
	}
	copy(blk[:np], m.procSpan)
	copy(blk[np:], m.varSpan)
	m.procSpan, m.varSpan = blk[:np:np], blk[np:]
	copy(vblk[:pw], m.procValid)
	copy(vblk[pw:], m.varValid)
	m.procValid, m.varValid = vblk[:pw:pw], vblk[pw:]
	m.spansOwned = true
}

// frameAt returns the authoritative view of processor p's frame,
// consulting the override slot. Every frame read inside the machine goes
// through here (or through a frame pointer obtained from writableFrame).
func (m *Machine) frameAt(p int) *Frame {
	if m.ovProc == int32(p) {
		return &m.ovFrame
	}
	return &m.frames[p]
}

// writableFrame returns a frame p may be mutated through. A machine that
// owns its processor arrays writes the array slot directly; a
// clone-shared machine takes the single override slot, and a write to a
// second distinct frame falls back to privatizing the arrays.
func (m *Machine) writableFrame(p int) *Frame {
	if m.procsOwned {
		return &m.frames[p]
	}
	if m.ovProc == int32(p) {
		return &m.ovFrame
	}
	if m.ovProc < 0 {
		m.ovProc = int32(p)
		m.ovFrame = m.frames[p]
		m.ovFrame.owned = false // Locals still shared
		return &m.ovFrame
	}
	m.cowProcs()
	return &m.frames[p]
}

// ovVarIdx returns the override slot holding variable v, or -1.
func (m *Machine) ovVarIdx(v int) int8 {
	for i := int8(0); i < m.nOvVar; i++ {
		if m.ovVar[i] == int32(v) {
			return i
		}
	}
	return -1
}

// varValAt and lockedAt are the authoritative reads of a variable's
// value and lock bit, consulting the override slots.
func (m *Machine) varValAt(v int) any {
	if i := m.ovVarIdx(v); i >= 0 {
		return m.ovVal[i]
	}
	return m.varVal[v]
}

func (m *Machine) lockedAt(v int) bool {
	if i := m.ovVarIdx(v); i >= 0 {
		return m.ovLocked[i]
	}
	return m.locked[v]
}

// ovVarSlot returns a write slot for variable v, claiming a free one
// (seeded with the current value and lock bit) if needed; -1 means the
// slots are exhausted and the caller must privatize instead.
func (m *Machine) ovVarSlot(v int) int8 {
	if i := m.ovVarIdx(v); i >= 0 {
		return i
	}
	if int(m.nOvVar) < len(m.ovVar) {
		i := m.nOvVar
		m.ovVar[i] = int32(v)
		m.ovVal[i] = m.varVal[v]
		m.ovLocked[i] = m.locked[v]
		m.nOvVar++
		return i
	}
	return -1
}

// setVarVal and setLocked write a variable's value / lock bit through
// the override slots when the var arrays are clone-shared.
func (m *Machine) setVarVal(v int, val any) {
	if !m.varsOwned {
		if i := m.ovVarSlot(v); i >= 0 {
			m.ovVal[i] = val
			return
		}
		m.cowVars()
	}
	m.varVal[v] = val
}

func (m *Machine) setLocked(v int, b bool) {
	if !m.varsOwned {
		if i := m.ovVarSlot(v); i >= 0 {
			m.ovLocked[i] = b
			return
		}
		m.cowVars()
	}
	m.locked[v] = b
}

// procCached and varCached report whether a component's cached window is
// valid: the bitmask decides — window length is state, not status — and
// a pending deferred invalidation vetoes the bit.
func (m *Machine) procCached(p int) bool {
	if m.procValid[p>>6]&(1<<uint(p&63)) == 0 {
		return false
	}
	for i := int8(0); i < m.nPStale; i++ {
		if m.pStale[i] == int32(p) {
			return false
		}
	}
	return true
}

func (m *Machine) varCached(v int) bool {
	if m.varValid[v>>6]&(1<<uint(v&63)) == 0 {
		return false
	}
	for i := int8(0); i < m.nVStale; i++ {
		if m.vStale[i] == int32(v) {
			return false
		}
	}
	return true
}

// staleProc and staleVar invalidate a component's cached window. The
// arena bytes become garbage (reclaimed by the next compaction) but are
// never rewritten in place: shared arenas stay frozen. On a machine that
// owns its span group the bit is cleared directly; otherwise the
// invalidation is deferred to the pending lists so a clone that steps
// once and is discarded never copies span arrays at all.
func (m *Machine) staleProc(p int) {
	if !m.spansOwned {
		for i := int8(0); i < m.nPStale; i++ {
			if m.pStale[i] == int32(p) {
				return
			}
		}
		if int(m.nPStale) < len(m.pStale) {
			m.pStale[m.nPStale] = int32(p)
			m.nPStale++
			return
		}
		m.applyStales()
	}
	w, bit := p>>6, uint64(1)<<uint(p&63)
	if m.procValid[w]&bit != 0 {
		m.procValid[w] &^= bit
		m.fpLive -= int(m.procSpan[p].n)
	}
}

func (m *Machine) staleVar(v int) {
	if !m.spansOwned {
		for i := int8(0); i < m.nVStale; i++ {
			if m.vStale[i] == int32(v) {
				return
			}
		}
		if int(m.nVStale) < len(m.vStale) {
			m.vStale[m.nVStale] = int32(v)
			m.nVStale++
			return
		}
		m.applyStales()
	}
	w, bit := v>>6, uint64(1)<<uint(v&63)
	if m.varValid[w]&bit != 0 {
		m.varValid[w] &^= bit
		m.fpLive -= int(m.varSpan[v].n)
	}
}

// applyStales privatizes the span group and folds the deferred
// invalidations into the validity bitmasks. It is the gateway to
// spansOwned: rebuildArena and the stale overflow path both come
// through here, so an owned span group never coexists with pendings.
func (m *Machine) applyStales() {
	m.cowSpans()
	for i := int8(0); i < m.nPStale; i++ {
		p := int(m.pStale[i])
		w, bit := p>>6, uint64(1)<<uint(p&63)
		if m.procValid[w]&bit != 0 {
			m.procValid[w] &^= bit
			m.fpLive -= int(m.procSpan[p].n)
		}
	}
	m.nPStale = 0
	for i := int8(0); i < m.nVStale; i++ {
		v := int(m.vStale[i])
		w, bit := v>>6, uint64(1)<<uint(v&63)
		if m.varValid[w]&bit != 0 {
			m.varValid[w] &^= bit
			m.fpLive -= int(m.varSpan[v].n)
		}
	}
	m.nVStale = 0
}

// New initializes a machine: every processor at PC 0 with local slot
// "init" holding ProcInit[p], every S/L variable holding its initial
// state, every Q variable with no subvalues.
//
// New also binds the compiled program to the system: every shared-variable
// operand resolves through the naming function here, once, filling the
// [proc][pc] variable-index table that Step indexes. A program that names
// a variable the system does not define fails here, not at step time.
func New(sys *system.System, instr system.InstrSet, program *Program) (*Machine, error) {
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	switch instr {
	case system.InstrS, system.InstrL, system.InstrQ, system.InstrExtL:
	default:
		return nil, fmt.Errorf("%w: %v", ErrBadInstrSet, instr)
	}
	np, nv := sys.NumProcs(), sys.NumVars()
	m := &Machine{
		sys:       sys,
		instr:     instr,
		program:   program,
		frames:    make([]Frame, np),
		varVal:    make([]any, nv),
		locked:    make([]bool, nv),
		varSub:    make([][]any, nv),
		subOwned:  make([]bool, nv),
		crashed:   make([]bool, np),
		procSpan:  make([]fpSpan, np),
		varSpan:   make([]fpSpan, nv),
		procValid: make([]uint64, (np+63)/64),
		varValid:  make([]uint64, (nv+63)/64),
		selSym:    -1,
		// Freshly built machines own every backing array, including the
		// (still empty) fingerprint arena.
		procsOwned: true,
		varsOwned:  true,
		spansOwned: true,
		arenaOwned: true,
		ovProc:     -1,
	}
	if s, ok := program.symIdx["selected"]; ok {
		m.selSym = s
	}
	ns := program.NumSyms()
	for p := range m.frames {
		locals := make([]any, ns)
		for i := range locals {
			locals[i] = unset
		}
		locals[SymInit] = sys.ProcInit[p]
		m.frames[p] = Frame{Locals: locals, owned: true}
	}
	for v := range m.varVal {
		m.varVal[v] = sys.VarInit[v]
		sub := make([]any, np)
		for i := range sub {
			sub[i] = unset
		}
		m.varSub[v] = sub
		m.subOwned[v] = true
	}
	// Instruction-set legality per opcode (local instructions are always
	// legal).
	m.allowedKind[opCompute] = true
	m.allowedKind[opJumpIf] = true
	m.allowedKind[opJump] = true
	m.allowedKind[opHalt] = true
	switch instr {
	case system.InstrS:
		m.allowedKind[opRead] = true
		m.allowedKind[opWrite] = true
	case system.InstrL, system.InstrExtL:
		m.allowedKind[opRead] = true
		m.allowedKind[opWrite] = true
		m.allowedKind[opLock] = true
		m.allowedKind[opUnlock] = true
	case system.InstrQ:
		m.allowedKind[opPeek] = true
		m.allowedKind[opPost] = true
	}
	// Pre-bind shared operands: one NameIndex resolution per instruction,
	// one Nbr row walk per processor, never again.
	nc := program.Len()
	flat := make([]int32, np*nc)
	m.bound = make([][]int32, np)
	for p := 0; p < np; p++ {
		m.bound[p] = flat[p*nc : (p+1)*nc : (p+1)*nc]
	}
	for pc := range program.code {
		o := &program.code[pc]
		if !isSharedKind(o.kind) {
			continue
		}
		j, err := sys.NameIndex(o.name)
		if err != nil {
			return nil, fmt.Errorf("machine: pc %d: %w", pc, err)
		}
		for p := 0; p < np; p++ {
			m.bound[p][pc] = int32(sys.Nbr[p][j])
		}
	}
	return m, nil
}

// Observe attaches an event recorder to streamed execution (RunWith). A
// nil recorder detaches. Clones inherit the recorder, so an observed
// machine's probe clones stay observed unless explicitly detached.
func (m *Machine) Observe(rec *obs.Recorder) { m.rec = rec }

// System returns the underlying system.
func (m *Machine) System() *system.System { return m.sys }

// Program returns the compiled program the machine runs.
func (m *Machine) Program() *Program { return m.program }

// NumProcs returns the number of processors.
func (m *Machine) NumProcs() int { return len(m.frames) }

// NumVars returns the number of variables.
func (m *Machine) NumVars() int { return len(m.varVal) }

// Steps returns the number of executed steps.
func (m *Machine) Steps() int { return m.steps }

// Halted reports whether processor p has halted.
func (m *Machine) Halted(p int) bool { return m.frameAt(p).Halted }

// AllHalted reports whether every processor has halted.
func (m *Machine) AllHalted() bool {
	for p := range m.frames {
		if !m.frameAt(p).Halted {
			return false
		}
	}
	return true
}

// Local returns processor p's local value (nil, false when unset). This
// is the introspection path — assertions, harness predicates, display —
// and resolves the name through the program's symbol table; compiled
// execution never goes through here.
func (m *Machine) Local(p int, name string) (any, bool) {
	s, ok := m.program.symIdx[name]
	if !ok {
		return nil, false
	}
	v := m.frameAt(p).Locals[s]
	if v == unset {
		return nil, false
	}
	return v, true
}

// Step executes one atomic instruction of processor p (a schedule step).
// Stepping a halted processor is a legal no-op, matching the paper's
// schedules which may name any processor at any time.
//
// Step is atomic on failure: every input (local lookups, instruction-set
// membership) is validated before the first mutation, so a Step that
// returns an error leaves the step counter, the fingerprint caches, and
// the machine state exactly as they were. (Shared-variable names were
// validated and bound at New.)
//
// The compiled path does no map operations and no name resolutions:
// locals are slot loads, shared operands index the pre-bound table, and
// jump targets are instruction indices.
func (m *Machine) Step(p int) error {
	if p < 0 || p >= len(m.frames) {
		return fmt.Errorf("%w: %d", ErrBadProcessor, p)
	}
	fr := m.frameAt(p)
	if fr.Halted {
		// A halted processor's step is a counted stutter: the state is
		// unchanged, so the cached fingerprint stays valid — don't clear it.
		m.steps++
		return nil
	}
	if fr.PC >= len(m.program.code) {
		// Running off the end halts the processor — a real state change.
		m.steps++
		m.staleProc(p)
		fr = m.writableFrame(p)
		fr.Halted = true
		return nil
	}
	in := &m.program.code[fr.PC]
	if !m.allowedKind[in.kind] {
		return fmt.Errorf("%w: %v under %v", ErrInstrNotAllowed, in.kind, m.instr)
	}
	// Every committed step mutates the frame and invalidates p's cached
	// fingerprint window. writableFrame routes the mutation through the
	// override slot on a clone-shared machine — a batch-expansion child
	// steps exactly once, so it never copies the frame array at all.
	// Variable writes go through setVarVal/setLocked the same way.
	fr = m.writableFrame(p)
	switch in.kind {
	case opRead:
		v := m.bound[p][fr.PC]
		m.steps++
		m.staleProc(p)
		m.frameCow(fr)
		fr.Locals[in.sym] = m.varValAt(int(v))
		fr.PC++
	case opWrite:
		v := m.bound[p][fr.PC]
		val := fr.Locals[in.sym]
		if val == unset {
			return fmt.Errorf("%w: %q", ErrMissingLocal, m.program.names[in.sym])
		}
		m.steps++
		m.staleProc(p)
		m.setVarVal(int(v), val)
		m.staleVar(int(v))
		fr.PC++
	case opLock:
		v := m.bound[p][fr.PC]
		m.steps++
		m.staleProc(p)
		m.frameCow(fr)
		if m.lockedAt(int(v)) {
			fr.Locals[in.sym] = false
		} else {
			m.setLocked(int(v), true)
			m.staleVar(int(v))
			fr.Locals[in.sym] = true
		}
		fr.PC++
	case opUnlock:
		v := m.bound[p][fr.PC]
		m.steps++
		m.staleProc(p)
		m.setLocked(int(v), false)
		m.staleVar(int(v))
		fr.PC++
	case opPeek:
		v := m.bound[p][fr.PC]
		m.steps++
		m.staleProc(p)
		m.frameCow(fr)
		fr.Locals[in.sym] = m.peekValue(int(v))
		fr.PC++
	case opPost:
		v := m.bound[p][fr.PC]
		val := fr.Locals[in.sym]
		if val == unset {
			return fmt.Errorf("%w: %q", ErrMissingLocal, m.program.names[in.sym])
		}
		m.steps++
		m.staleProc(p)
		m.cowVars()
		// Copy-on-write so snapshots are not aliased.
		sub := m.varSub[v]
		if !m.subOwned[v] {
			sub = append([]any(nil), sub...)
			m.varSub[v] = sub
			m.subOwned[v] = true
		}
		sub[p] = val
		m.staleVar(int(v))
		fr.PC++
	case opCompute:
		m.steps++
		m.staleProc(p)
		m.frameCow(fr)
		m.regs.slots = fr.Locals
		in.f(&m.regs)
		m.regs.slots = nil
		fr.PC++
	case opJumpIf:
		m.steps++
		m.staleProc(p)
		m.regs.slots = fr.Locals
		taken := in.cond(&m.regs)
		m.regs.slots = nil
		if taken {
			fr.PC = in.tgt
		} else {
			fr.PC++
		}
	case opJump:
		m.steps++
		m.staleProc(p)
		fr.PC = in.tgt
	case opHalt:
		m.steps++
		m.staleProc(p)
		fr.Halted = true
	default:
		return fmt.Errorf("machine: unknown opcode %v", in.kind)
	}
	return nil
}

// peekValue builds the PeekResult for variable v: init state plus the
// subvalue multiset sorted canonically (the paper's unordered multiset).
func (m *Machine) peekValue(v int) PeekResult {
	sub := m.varSub[v]
	vals := make([]any, 0, len(sub))
	for _, s := range sub {
		if s != unset {
			vals = append(vals, s)
		}
	}
	sort.Slice(vals, func(a, b int) bool {
		return canon.String(vals[a]) < canon.String(vals[b])
	})
	return PeekResult{Init: m.sys.VarInit[v], Values: vals}
}

// Scheduler streams schedule steps to a running machine. Next observes
// the current state and returns the processor to step, or ok=false to end
// the schedule. This is the paper's adversary in executable form: the
// schedule classes (general, fair, k-bounded-fair) are restrictions on
// what Next may return, and the impossibility proofs' adversaries are
// implementations that pick each step after watching the previous one
// land. Next must not mutate m (probe on a Clone instead).
type Scheduler interface {
	Next(m *Machine) (proc int, ok bool)
}

// sliceScheduler streams a precomputed finite schedule.
type sliceScheduler struct {
	schedule []int
	i        int
}

func (s *sliceScheduler) Next(*Machine) (int, bool) {
	if s.i >= len(s.schedule) {
		return 0, false
	}
	p := s.schedule[s.i]
	s.i++
	return p, true
}

// RunWith executes steps streamed by s from the current state, stopping
// early when every processor halts or s ends the schedule. It returns the
// number of steps executed. This is the primary driver; Run wraps it for
// finite precomputed schedules.
func (m *Machine) RunWith(s Scheduler) (int, error) {
	done := 0
	var err error
	for {
		if m.AllHalted() {
			break
		}
		p, ok := s.Next(m)
		if !ok {
			break
		}
		if err = m.Step(p); err != nil {
			break
		}
		if m.rec.Enabled() {
			m.rec.SchedStep(done, p, true)
		}
		done++
	}
	if m.rec.Enabled() && done > 0 {
		m.rec.Count("machine.steps", int64(done))
	}
	return done, err
}

// Run executes the schedule (a sequence of processor indices) from the
// current state, stopping early if every processor halts. It returns the
// number of steps actually executed.
func (m *Machine) Run(schedule []int) (int, error) {
	return m.RunWith(&sliceScheduler{schedule: schedule})
}

// StepOrSkip executes one step of processor p unless p has halted (or
// crashed), in which case it reports stepped=false and leaves the machine
// — including the step counter — untouched. Step treats a halted pick as
// a counted stutter, matching the paper's schedules which may name any
// processor; StepOrSkip is the fault harness's hook for distinguishing
// real steps from burned slots.
func (m *Machine) StepOrSkip(p int) (stepped bool, err error) {
	if p < 0 || p >= len(m.frames) {
		return false, fmt.Errorf("%w: %d", ErrBadProcessor, p)
	}
	if m.frameAt(p).Halted {
		return false, nil
	}
	return true, m.Step(p)
}

// Crash permanently halts processor p without consuming a schedule step —
// the fault model's crash-stop failure. The frame (locals, program
// counter, selected flag) survives; only the ability to step is lost.
// Crashing a processor that already halted on its own is a no-op.
func (m *Machine) Crash(p int) error {
	if p < 0 || p >= len(m.frames) {
		return fmt.Errorf("%w: %d", ErrBadProcessor, p)
	}
	if !m.frameAt(p).Halted {
		m.cowProcs()
		m.frames[p].Halted = true
		m.crashed[p] = true
		m.staleProc(p)
	}
	return nil
}

// Crashed reports whether processor p was halted by Crash (fault
// injection) as opposed to halting on its own.
func (m *Machine) Crashed(p int) bool { return m.crashed[p] }

// DropLock forcibly clears variable v's lock bit without consuming a
// schedule step — the fault model's lock-drop (a flaky lock service
// releasing a lease it granted). The holder is not notified: a processor
// that believes it holds the lock proceeds regardless, which is exactly
// the hazard the dining fault sweep probes. Dropping an unheld lock is a
// no-op.
func (m *Machine) DropLock(v int) error {
	if v < 0 || v >= len(m.locked) {
		return fmt.Errorf("%w: %d", ErrBadVariable, v)
	}
	if m.lockedAt(v) {
		m.cowVars()
		m.locked[v] = false
		m.staleVar(v)
	}
	return nil
}

// Locked reports whether variable v's lock bit is set.
func (m *Machine) Locked(v int) bool { return m.lockedAt(v) }

// appendProcFP writes processor p's canonical encoding into buf. Slots
// are emitted in declaration order — fixed for a given program — so no
// name material and no sort are needed; unset slots get their own tag so
// "never assigned" cannot alias a value.
func (m *Machine) appendProcFP(buf []byte, p int) []byte {
	fr := m.frameAt(p)
	buf = binary.AppendVarint(buf, int64(fr.PC))
	if fr.Halted {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	for _, v := range fr.Locals {
		if v == unset {
			buf = append(buf, 'u')
		} else {
			buf = appendLocalValue(buf, v)
		}
	}
	return buf
}

// uvarintLen is the encoded size of binary.AppendUvarint(nil, uint64(n)).
func uvarintLen(n int32) int32 {
	l := int32(1)
	for n >= 0x80 {
		n >>= 7
		l++
	}
	return l
}

// Arena window layout: every cached window is stored with its uvarint
// length prefix immediately before the body, and the span points at the
// body. appendProcKeyed/appendVarKeyed therefore emit a cached
// component with one copy of [off-uvarintLen(n), off+n), and runs of
// windows that are adjacent in the arena — the common case after
// PrimeFingerprints, which writes them back to back — collapse into a
// single bulk copy in AppendStateKey's unpermuted fast path.

// cacheProcFP records win — just encoded into a caller buffer — as
// processor p's cached window by copying it (length-prefixed) into the
// arena. A machine that does not own its arena (post-Clone,
// pre-rebuild) skips caching: shared arenas are frozen.
func (m *Machine) cacheProcFP(p int, win []byte) {
	if !m.arenaOwned {
		return
	}
	pl := uvarintLen(int32(len(win)))
	m.arenaReserve(int(pl) + len(win))
	m.fpArena = binary.AppendUvarint(m.fpArena, uint64(len(win)))
	off := len(m.fpArena)
	m.fpArena = append(m.fpArena, win...)
	m.procSpan[p] = fpSpan{off: int32(off), n: int32(len(win))}
	m.procValid[p>>6] |= 1 << uint(p&63)
	m.fpLive += int(pl) + len(win)
}

// cacheVarFP is cacheProcFP for variable windows.
func (m *Machine) cacheVarFP(v int, win []byte) {
	if !m.arenaOwned {
		return
	}
	pl := uvarintLen(int32(len(win)))
	m.arenaReserve(int(pl) + len(win))
	m.fpArena = binary.AppendUvarint(m.fpArena, uint64(len(win)))
	off := len(m.fpArena)
	m.fpArena = append(m.fpArena, win...)
	m.varSpan[v] = fpSpan{off: int32(off), n: int32(len(win))}
	m.varValid[v>>6] |= 1 << uint(v&63)
	m.fpLive += int(pl) + len(win)
}

// arenaReserve makes room to append n more bytes to an owned arena
// without growing forever: when the append would exceed capacity, the
// still-valid windows are compacted into the scratch buffer (the two
// swap roles each compaction, so steady-state caching allocates
// nothing). Only called with arenaOwned set.
func (m *Machine) arenaReserve(n int) {
	if len(m.fpArena)+n <= cap(m.fpArena) {
		return
	}
	m.rebuildArena(n)
}

// rebuildArena rebases every valid window into a privately owned arena
// sized for live bytes plus extra headroom, taking ownership. This is
// both the compactor (owned arena full of garbage) and the rebase step
// a cloned machine performs before its first cache fill — cowProcs/
// cowVars here is what makes the arenaOwned ⇒ procsOwned ∧ varsOwned
// invariant hold.
func (m *Machine) rebuildArena(extra int) {
	// Rewriting span offsets needs only the span group privatized — the
	// frame and variable values are untouched. Deferred invalidations
	// must land first so the live-byte walk sees final validity bits.
	m.applyStales()
	live := 0
	for p := range m.procSpan {
		if m.procCached(p) {
			n := m.procSpan[p].n
			live += int(uvarintLen(n) + n)
		}
	}
	for v := range m.varSpan {
		if m.varCached(v) {
			n := m.varSpan[v].n
			live += int(uvarintLen(n) + n)
		}
	}
	need := live + extra
	dst := m.fpScratch[:0]
	if cap(dst) < need {
		if s := m.slab; s != nil {
			// Kept machines' arenas are frozen after priming (children
			// never append to an arena they don't own), so a tight carve
			// is safe; run-mode machines keep the doubling growth.
			dst = s.bytes.take(need+64, 16384)[:0]
		} else {
			dst = make([]byte, 0, 2*need+64)
		}
	}
	// Valid windows that sit back to back in the source arena move as
	// single runs: after a batch step all but the few stale components
	// are still in prime order, so the whole compaction collapses into
	// one or two bulk copies (runs may span the proc/var boundary).
	runSrc, runEnd := int32(-1), int32(-1)
	runDst := int32(0)
	for p := range m.procSpan {
		if !m.procCached(p) {
			continue
		}
		sp := &m.procSpan[p]
		oldOff := sp.off
		if wStart := oldOff - uvarintLen(sp.n); wStart != runEnd {
			if runSrc >= 0 {
				dst = append(dst, m.fpArena[runSrc:runEnd]...)
			}
			runDst = int32(len(dst))
			runSrc = wStart
		}
		sp.off = runDst + (oldOff - runSrc)
		runEnd = oldOff + sp.n
	}
	for v := range m.varSpan {
		if !m.varCached(v) {
			continue
		}
		sp := &m.varSpan[v]
		oldOff := sp.off
		if wStart := oldOff - uvarintLen(sp.n); wStart != runEnd {
			if runSrc >= 0 {
				dst = append(dst, m.fpArena[runSrc:runEnd]...)
			}
			runDst = int32(len(dst))
			runSrc = wStart
		}
		sp.off = runDst + (oldOff - runSrc)
		runEnd = oldOff + sp.n
	}
	if runSrc >= 0 {
		dst = append(dst, m.fpArena[runSrc:runEnd]...)
	}
	if m.arenaOwned {
		m.fpScratch = m.fpArena[:0] // ping-pong: old arena becomes scratch
	} else {
		m.fpScratch = nil // old arena is shared — never write into it
	}
	m.fpArena = dst
	m.fpLive = live
	m.arenaOwned = true
}

// PrimeFingerprints re-encodes every stale component into a privately
// owned arena so subsequent AppendStateKey calls are pure window copies.
// The model checker calls this once per state it keeps: the one rebase
// replaces the per-component string materializations the encode path
// used to pay, and children cloned from a primed machine inherit every
// window read-only.
func (m *Machine) PrimeFingerprints() {
	// A kept machine is about to parent whole batches of clones: fold
	// its step's frame/variable overrides into privately owned arrays so
	// children inherit clean shared state (an inherited override would
	// force every child's first write through the privatizing fallback).
	// Both groups are privatized even when no override is pending — a
	// kept machine must not share any mutable array with its parent,
	// whose slab generation the checker recycles one level before this
	// machine dies. The copies land in the same recycled slab, so this
	// costs a small memmove, not an allocation.
	m.cowProcs()
	m.cowVars()
	if !m.arenaOwned {
		m.rebuildArena(64)
	}
	for p := range m.frames {
		if m.procCached(p) {
			continue
		}
		m.arenaReserve(48)
		start := len(m.fpArena)
		m.fpArena = append(m.fpArena, 0) // length-prefix placeholder
		m.fpArena = m.appendProcFP(m.fpArena, p)
		n := int32(len(m.fpArena) - start - 1)
		m.fpArena = fixupLenPrefix(m.fpArena, start+1)
		m.procSpan[p] = fpSpan{off: int32(start) + uvarintLen(n), n: n}
		m.procValid[p>>6] |= 1 << uint(p&63)
		m.fpLive += len(m.fpArena) - start
	}
	for v := range m.varVal {
		if m.varCached(v) {
			continue
		}
		m.arenaReserve(24)
		start := len(m.fpArena)
		m.fpArena = append(m.fpArena, 0) // length-prefix placeholder
		m.fpArena = m.appendVarFP(m.fpArena, v)
		n := int32(len(m.fpArena) - start - 1)
		m.fpArena = fixupLenPrefix(m.fpArena, start+1)
		m.varSpan[v] = fpSpan{off: int32(start) + uvarintLen(n), n: n}
		m.varValid[v>>6] |= 1 << uint(v&63)
		m.fpLive += len(m.fpArena) - start
	}
}

// ProcFingerprint returns a canonical encoding of processor p's state
// (program counter + locals). Two processors running the same program
// "have the same state" in the paper's sense exactly when their
// fingerprints are equal. The encoding walks the local slots in
// declaration order — injectivity survives because every component is
// self-delimiting and the slot layout is fixed per program.
func (m *Machine) ProcFingerprint(p int) string {
	if m.procCached(p) {
		sp := m.procSpan[p]
		return string(m.fpArena[sp.off : sp.off+sp.n])
	}
	buf := m.appendProcFP(make([]byte, 0, 48), p)
	m.cacheProcFP(p, buf)
	return string(buf)
}

// AppendProcFingerprint appends processor p's canonical fingerprint bytes
// to buf and returns the extended slice, refreshing the cache when stale.
// Comparing appended windows with bytes.Equal is equivalent to comparing
// ProcFingerprint strings, without materializing strings per check —
// trace's per-round witness scans run on reused buffers through here.
func (m *Machine) AppendProcFingerprint(buf []byte, p int) []byte {
	if m.procCached(p) {
		sp := m.procSpan[p]
		return append(buf, m.fpArena[sp.off:sp.off+sp.n]...)
	}
	start := len(buf)
	buf = m.appendProcFP(buf, p)
	m.cacheProcFP(p, buf[start:])
	return buf
}

// appendLocalValue appends a tagged self-delimiting encoding of a local
// value. Scalars and PeekResult get direct fast paths; anything else
// (slices, exotic Compute products) falls back to the canonical string,
// length-prefixed under its own tag so the regimes cannot alias.
func appendLocalValue(buf []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(buf, 'n')
	case bool:
		if x {
			return append(buf, 'b', 1)
		}
		return append(buf, 'b', 0)
	case int:
		buf = append(buf, 'i')
		return binary.AppendVarint(buf, int64(x))
	case string:
		buf = append(buf, 's')
		return canon.AppendLenPrefixed(buf, x)
	case PeekResult:
		// peekValue already sorted Values canonically, so encoding the
		// stored order is canonical for the multiset it represents.
		buf = append(buf, 'p')
		buf = canon.AppendLenPrefixed(buf, x.Init)
		buf = binary.AppendUvarint(buf, uint64(len(x.Values)))
		for _, e := range x.Values {
			buf = appendLocalValue(buf, e)
		}
		return buf
	default:
		buf = append(buf, 'c')
		return canon.AppendLenPrefixed(buf, canon.String(valueForCanon(v)))
	}
}

// appendVarFP writes variable v's canonical encoding into buf. The
// leading tag byte separates the Q and S/L regimes.
func (m *Machine) appendVarFP(buf []byte, v int) []byte {
	if m.instr == system.InstrQ {
		return m.appendQVarFP(buf, v)
	}
	buf = append(buf, 'v')
	if m.lockedAt(v) {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return appendLocalValue(buf, m.varValAt(v))
}

// appendQVarFP encodes a Q variable — init state plus the posted
// subvalue multiset — directly in binary: elements are encoded in place
// and then ordered by their encoded bytes, which is canonical for the
// multiset because appendLocalValue is injective. This replaces the old
// "q"+canon.String(map[...]) construction (kept as VarFingerprintOracle)
// that dominated the encode path's allocations.
func (m *Machine) appendQVarFP(buf []byte, v int) []byte {
	sub := m.varSub[v]
	n := 0
	for _, s := range sub {
		if s != unset {
			n++
		}
	}
	buf = append(buf, 'q')
	buf = canon.AppendLenPrefixed(buf, m.sys.VarInit[v])
	buf = binary.AppendUvarint(buf, uint64(n))
	if n == 0 {
		return buf
	}
	var spanArr [24]fpSpan
	spans := spanArr[:0]
	if n > len(spanArr) {
		spans = make([]fpSpan, 0, n)
	}
	base := len(buf)
	for _, s := range sub {
		if s == unset {
			continue
		}
		off := len(buf)
		buf = appendLocalValue(buf, s)
		spans = append(spans, fpSpan{off: int32(off), n: int32(len(buf) - off)})
	}
	sorted := true
	for i := 1; i < len(spans); i++ {
		if bytes.Compare(fpWin(buf, spans[i-1]), fpWin(buf, spans[i])) > 0 {
			sorted = false
			break
		}
	}
	if sorted {
		return buf
	}
	for i := 1; i < len(spans); i++ {
		sp := spans[i]
		j := i
		for ; j > 0 && bytes.Compare(fpWin(buf, spans[j-1]), fpWin(buf, sp)) > 0; j-- {
			spans[j] = spans[j-1]
		}
		spans[j] = sp
	}
	// Variable-length elements can't be permuted in place: append the
	// sorted sequence after the unsorted one (scratch inside buf's own
	// tail), then slide it back over the unsorted region.
	end := len(buf)
	for _, sp := range spans {
		buf = append(buf, buf[sp.off:sp.off+sp.n]...)
	}
	total := len(buf) - end
	copy(buf[base:], buf[end:])
	return buf[:base+total]
}

func fpWin(buf []byte, sp fpSpan) []byte { return buf[sp.off : sp.off+sp.n] }

// VarFingerprint returns a canonical encoding of variable v's state.
// Q subvalues are encoded as an unordered multiset. The leading tag byte
// separates the Q and S/L regimes.
func (m *Machine) VarFingerprint(v int) string {
	if m.varCached(v) {
		sp := m.varSpan[v]
		return string(m.fpArena[sp.off : sp.off+sp.n])
	}
	buf := m.appendVarFP(make([]byte, 0, 24), v)
	m.cacheVarFP(v, buf)
	return string(buf)
}

// AppendVarFingerprint appends variable v's canonical fingerprint bytes
// to buf, the VarFingerprint counterpart of AppendProcFingerprint: a
// miss encodes directly into the caller's buffer and caches from the
// appended window, never materializing a string. (It used to build the
// string cache even on first fill, the one remaining allocation on the
// warm encode path.)
func (m *Machine) AppendVarFingerprint(buf []byte, v int) []byte {
	if m.varCached(v) {
		sp := m.varSpan[v]
		return append(buf, m.fpArena[sp.off:sp.off+sp.n]...)
	}
	start := len(buf)
	buf = m.appendVarFP(buf, v)
	m.cacheVarFP(v, buf[start:])
	return buf
}

// Fingerprint returns the canonical encoding of the whole machine state
// (all frames and all variables). Used as the model checker's visited-set
// key.
func (m *Machine) Fingerprint() string {
	procs := make([]any, len(m.frames))
	for p := range m.frames {
		procs[p] = m.ProcFingerprint(p)
	}
	vars := make([]any, len(m.varVal))
	for v := range m.varVal {
		vars[v] = m.VarFingerprint(v)
	}
	return canon.String([]any{procs, vars})
}

// AppendStateKey appends a compact binary encoding of the whole machine
// state to buf and returns the extended slice. The key concatenates the
// length-prefixed per-processor and per-variable canonical fingerprints,
// so two machines over the same system have equal keys iff their
// Fingerprint strings are equal — without materializing a new string per
// state. This is the model checker's visited-set key: callers reuse buf
// across states and the per-component fingerprints stay cached.
//
// When procAt/varAt are non-nil they relabel the key's node positions:
// position i of the key takes processor procAt[i]'s (variable varAt[i]'s)
// component. Passing an automorphism's permutation yields the key of the
// symmetric image state, which is how symmetry reduction computes orbit
// representatives without building permuted machines.
func (m *Machine) AppendStateKey(buf []byte, procAt, varAt []int) []byte {
	if procAt == nil && varAt == nil {
		return m.appendStateKeyFast(buf)
	}
	for i := range m.frames {
		p := i
		if procAt != nil {
			p = procAt[i]
		}
		buf = m.appendProcKeyed(buf, p)
	}
	for i := range m.varVal {
		v := i
		if varAt != nil {
			v = varAt[i]
		}
		buf = m.appendVarKeyed(buf, v)
	}
	return buf
}

// appendStateKeyFast is the unpermuted AppendStateKey: identical bytes,
// but runs of cached components whose prefixed windows sit back to back
// in the arena (the layout PrimeFingerprints produces) are emitted as
// one bulk copy instead of one copy per component. A batch-stepped
// child typically re-encodes its ≤1 touched frame and ≤2 variables and
// bulk-copies everything between them.
func (m *Machine) appendStateKeyFast(buf []byte) []byte {
	runStart, runEnd := int32(-1), int32(-1)
	for p := range m.frames {
		if m.procCached(p) {
			sp := m.procSpan[p]
			start := sp.off - uvarintLen(sp.n)
			if start == runEnd {
				runEnd = sp.off + sp.n
				continue
			}
			if runStart >= 0 {
				buf = append(buf, m.fpArena[runStart:runEnd]...)
			}
			runStart, runEnd = start, sp.off+sp.n
			continue
		}
		if runStart >= 0 {
			buf = append(buf, m.fpArena[runStart:runEnd]...)
			runStart, runEnd = -1, -1
		}
		// The miss path may cache into (and thereby compact) the arena,
		// so no run may be held open across it.
		buf = append(buf, 0)
		start := len(buf)
		buf = m.appendProcFP(buf, p)
		m.cacheProcFP(p, buf[start:])
		buf = fixupLenPrefix(buf, start)
	}
	for v := range m.varVal {
		if m.varCached(v) {
			sp := m.varSpan[v]
			start := sp.off - uvarintLen(sp.n)
			if start == runEnd {
				runEnd = sp.off + sp.n
				continue
			}
			if runStart >= 0 {
				buf = append(buf, m.fpArena[runStart:runEnd]...)
			}
			runStart, runEnd = start, sp.off+sp.n
			continue
		}
		if runStart >= 0 {
			buf = append(buf, m.fpArena[runStart:runEnd]...)
			runStart, runEnd = -1, -1
		}
		buf = append(buf, 0)
		start := len(buf)
		buf = m.appendVarFP(buf, v)
		m.cacheVarFP(v, buf[start:])
		buf = fixupLenPrefix(buf, start)
	}
	if runStart >= 0 {
		buf = append(buf, m.fpArena[runStart:runEnd]...)
	}
	return buf
}

// appendProcKeyed appends one uvarint-length-prefixed processor
// component. A cached window is a pure copy; a miss encodes in place
// behind a reserved 1-byte prefix that fixupLenPrefix widens in the
// (rare) ≥128-byte case, and the freshly encoded window is cached when
// the arena is owned.
func (m *Machine) appendProcKeyed(buf []byte, p int) []byte {
	if m.procCached(p) {
		sp := m.procSpan[p]
		return append(buf, m.fpArena[sp.off-uvarintLen(sp.n):sp.off+sp.n]...)
	}
	buf = append(buf, 0)
	start := len(buf)
	buf = m.appendProcFP(buf, p)
	m.cacheProcFP(p, buf[start:])
	return fixupLenPrefix(buf, start)
}

// appendVarKeyed is appendProcKeyed for variable components.
func (m *Machine) appendVarKeyed(buf []byte, v int) []byte {
	if m.varCached(v) {
		sp := m.varSpan[v]
		return append(buf, m.fpArena[sp.off-uvarintLen(sp.n):sp.off+sp.n]...)
	}
	buf = append(buf, 0)
	start := len(buf)
	buf = m.appendVarFP(buf, v)
	m.cacheVarFP(v, buf[start:])
	return fixupLenPrefix(buf, start)
}

// fixupLenPrefix patches the 1-byte uvarint length placeholder at
// start-1 to hold len(buf)-start, sliding the encoded window right when
// the length needs a wider varint. The result is byte-identical to
// canon.AppendLenPrefixed of the same window.
func fixupLenPrefix(buf []byte, start int) []byte {
	n := len(buf) - start
	if n < 0x80 {
		buf[start-1] = byte(n)
		return buf
	}
	var tmp [binary.MaxVarintLen64]byte
	w := binary.PutUvarint(tmp[:], uint64(n))
	buf = append(buf, tmp[:w-1]...) // grow by the extra prefix width
	copy(buf[start+w-1:], buf[start:start+n])
	copy(buf[start-1:], tmp[:w])
	return buf
}

// ProcFingerprintOracle reproduces the pre-compilation processor encoding
// — locals as a count-prefixed, name-sorted (name, value) list — from the
// slot representation. It exists purely as a cross-check oracle for the
// compiled fingerprint path (the way partition.FixpointNaive anchors the
// interned similarity path): equality classes under the oracle encoding
// must match equality classes under ProcFingerprint.
func (m *Machine) ProcFingerprintOracle(p int) string {
	fr := m.frameAt(p)
	buf := make([]byte, 0, 48)
	buf = binary.AppendVarint(buf, int64(fr.PC))
	if fr.Halted {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	n := 0
	for _, v := range fr.Locals {
		if v != unset {
			n++
		}
	}
	buf = binary.AppendUvarint(buf, uint64(n))
	for _, s := range m.program.sortedSyms {
		v := fr.Locals[s]
		if v == unset {
			continue
		}
		buf = canon.AppendLenPrefixed(buf, m.program.names[s])
		buf = appendLocalValueOracle(buf, v)
	}
	return string(buf)
}

// appendLocalValueOracle is the pre-arena local-value encoding: scalars
// direct, everything composite (including PeekResult) through the 'c'
// canonical-string fallback. appendLocalValue since gained a direct
// PeekResult path; the oracle keeps the original bytes so its encoding
// stays frozen while the fast path evolves.
func appendLocalValueOracle(buf []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(buf, 'n')
	case bool:
		if x {
			return append(buf, 'b', 1)
		}
		return append(buf, 'b', 0)
	case int:
		buf = append(buf, 'i')
		return binary.AppendVarint(buf, int64(x))
	case string:
		buf = append(buf, 's')
		return canon.AppendLenPrefixed(buf, x)
	default:
		buf = append(buf, 'c')
		return canon.AppendLenPrefixed(buf, canon.String(valueForCanon(v)))
	}
}

// VarFingerprintOracle reproduces the pre-arena variable encoding — the
// Q regime as "q"+canon.String of an {init, sub-multiset} map, S/L as
// the tagged lock-byte form. It anchors the direct binary encoding in
// appendVarFP the way ProcFingerprintOracle anchors the slot walk:
// equality classes under the two encodings must coincide.
func (m *Machine) VarFingerprintOracle(v int) string {
	if m.instr == system.InstrQ {
		sub := m.varSub[v]
		ms := make(canon.Multiset, 0, len(sub))
		for _, s := range sub {
			if s != unset {
				ms = append(ms, s)
			}
		}
		return "q" + canon.String(map[string]any{"init": m.sys.VarInit[v], "sub": ms})
	}
	buf := make([]byte, 0, 24)
	buf = append(buf, 'v')
	if m.lockedAt(v) {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = appendLocalValueOracle(buf, m.varValAt(v))
	return string(buf)
}

// FingerprintOracle composes whole-state fingerprints from the oracle
// processor encoding — byte-identical to the pre-compilation Fingerprint.
// Cross-check tests compare its equality classes against Fingerprint's.
func (m *Machine) FingerprintOracle() string {
	procs := make([]any, len(m.frames))
	for p := range m.frames {
		procs[p] = m.ProcFingerprintOracle(p)
	}
	vars := make([]any, len(m.varVal))
	for v := range m.varVal {
		vars[v] = m.VarFingerprintOracle(v)
	}
	return canon.String([]any{procs, vars})
}

func valueForCanon(v any) any {
	if pr, ok := v.(PeekResult); ok {
		ms := make(canon.Multiset, len(pr.Values))
		copy(ms, pr.Values)
		return map[string]any{"peek_init": pr.Init, "peek_vals": ms}
	}
	return v
}

// Clone returns an independent snapshot of the machine in O(1): every
// mutable array — frames, variable values, locks, subvalues, fingerprint
// spans — is shared copy-on-write between the two machines, and the
// first mutating step on either side copies just the array group it
// touches. Clearing the ownership bits here covers both machines (a
// machine is only ever touched by one goroutine at a time; the model
// checker's parallel engine assigns each machine to exactly one worker).
//
// The fingerprint arena is frozen on both sides: neither machine may
// append to the shared arena, so cache fills stop until one rebases
// onto a private arena (PrimeFingerprints / rebuildArena). Still-valid
// windows keep being served read-only from the shared arena — this is
// what lets W sibling clones of one parent re-encode only the ≤1 frame
// and ≤2 variables their step touched while copying every other
// component straight out of the parent's arena.
func (m *Machine) Clone() *Machine {
	c := new(Machine)
	m.cloneInto(c)
	return c
}

// CloneInto writes a snapshot of the machine into dst, overwriting
// whatever dst held — the allocation-free Clone the model checker's
// batch expander uses to step W sibling clones out of a reusable pool.
// dst must be a different machine from m and must not be stepped
// concurrently with m's other clones (one goroutine per machine, as
// everywhere).
//
// When dst still exclusively owns proc/var arrays of matching shape —
// a pool slot whose previous occupant was not kept — CloneInto salvages
// them into the slot's recycling bin, and the child's first
// copy-on-write consumes them instead of allocating: steady-state batch
// expansion copies only the array group a step touches, into recycled
// memory, and pays no GC write barriers for groups the step leaves
// shared. The fingerprint arena itself is never recycled this way; it
// is frozen and shared exactly as in Clone.
func (m *Machine) CloneInto(dst *Machine) { m.cloneInto(dst) }

func (m *Machine) cloneInto(dst *Machine) {
	sp := dst.spares
	if dst != m && (dst.procsOwned || dst.varsOwned || dst.spansOwned ||
		(dst.ovProc >= 0 && dst.ovFrame.owned)) {
		// The previous occupant's exclusively owned arrays are dead
		// (the checker detaches kept machines, clearing these bits):
		// bank them for the next cowProcs/cowVars/cowSpans/frameCow.
		if sp == nil {
			sp = new(spareArrays)
		}
		if dst.procsOwned && !sp.hasProcs && len(dst.frames) == len(m.frames) {
			for i := range dst.frames {
				if dst.frames[i].owned {
					sp.locals = append(sp.locals, dst.frames[i].Locals)
				}
			}
			sp.frames, sp.crashed = dst.frames, dst.crashed
			sp.hasProcs = true
		}
		if dst.ovProc >= 0 && dst.ovFrame.owned {
			// The dead occupant's override frame privatized its Locals:
			// that slice is dead too — recycle it.
			sp.locals = append(sp.locals, dst.ovFrame.Locals)
		}
		if dst.varsOwned && !sp.hasVars && len(dst.varVal) == len(m.varVal) {
			sp.varVal, sp.locked = dst.varVal, dst.locked
			sp.varSub, sp.subOwned = dst.varSub, dst.subOwned
			sp.hasVars = true
		}
		if dst.spansOwned && !sp.hasSpans &&
			len(dst.procSpan) == len(m.procSpan) && len(dst.varSpan) == len(m.varSpan) {
			sp.procSpan, sp.varSpan = dst.procSpan, dst.varSpan
			sp.procValid, sp.varValid = dst.procValid, dst.varValid
			sp.hasSpans = true
		}
	}
	m.procsOwned = false
	m.varsOwned = false
	m.spansOwned = false
	m.arenaOwned = false
	if m.ovProc >= 0 {
		// Both machines now carry the same override frame by value; its
		// Locals slice is shared between them, so neither may trust a
		// stale owned bit (same rule as the cleared group bits above).
		m.ovFrame.owned = false
	}
	*dst = *m
	dst.regs = Regs{}
	// The compaction scratch is exclusively the parent's: sharing it
	// would let two machines compact into the same buffer. The bin
	// stays with the slot it was salvaged from. The slab is the
	// checker's and is only safe on the sequential commit path — a
	// child stepping in a parallel expansion must not carve from it.
	dst.fpScratch = nil
	dst.spares = sp
	dst.slab = nil
}

// Detach returns a heap copy of the machine, transferring its state and
// array ownership: the receiver's ownership bits are cleared so a later
// CloneInto cannot recycle arrays the detached copy now owns. It exists
// for pool-backed expansion: a pool slot the checker decides to keep is
// detached onto the heap and the slot is dead until the next CloneInto
// overwrites it. The receiver must not be stepped after Detach.
func (m *Machine) Detach() *Machine {
	return m.DetachTo(new(Machine))
}

// DetachTo is Detach into caller-provided storage — the model checker
// carves kept machines out of slab chunks, one allocation per dozens of
// adopted states. dst is overwritten entirely.
func (m *Machine) DetachTo(dst *Machine) *Machine {
	*dst = *m
	dst.spares = nil // the recycling bin stays with the pool slot
	m.procsOwned = false
	m.varsOwned = false
	m.spansOwned = false
	m.arenaOwned = false
	// The override frame's private Locals slice moves to the copy too:
	// without this, the next CloneInto over the slot would recycle a
	// slice the detached machine still references.
	m.ovFrame.owned = false
	return dst
}

// Selected reports whether processor p's conventional "selected" local
// holds true (false when the program has no such local or p is out of
// range). Unlike SelectedProcs it is a single slot read — cheap enough
// for per-step predicates in sampled runs.
func (m *Machine) Selected(p int) bool {
	if m.selSym < 0 || p < 0 || p >= len(m.frames) {
		return false
	}
	sel, ok := m.frameAt(p).Locals[m.selSym].(bool)
	return ok && sel
}

// SelectedProcs returns the processors whose local "selected" is true —
// the paper's selected_p flag (section 3).
func (m *Machine) SelectedProcs() []int {
	if m.selSym < 0 {
		return nil
	}
	var out []int
	for p := range m.frames {
		if sel, ok := m.frameAt(p).Locals[m.selSym].(bool); ok && sel {
			out = append(out, p)
		}
	}
	return out
}
