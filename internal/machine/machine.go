package machine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"simsym/internal/canon"
	"simsym/internal/obs"
	"simsym/internal/system"
)

// Sentinel errors for execution.
var (
	ErrInstrNotAllowed = errors.New("machine: instruction not in instruction set")
	ErrBadProcessor    = errors.New("machine: processor index out of range")
	ErrBadVariable     = errors.New("machine: variable index out of range")
	ErrMissingLocal    = errors.New("machine: local variable not set")
	ErrBadInstrSet     = errors.New("machine: unsupported instruction set")
)

// String names the opcode for error messages.
func (k opKind) String() string {
	switch k {
	case opRead:
		return "read"
	case opWrite:
		return "write"
	case opLock:
		return "lock"
	case opUnlock:
		return "unlock"
	case opPeek:
		return "peek"
	case opPost:
		return "post"
	case opCompute:
		return "compute"
	case opJumpIf:
		return "jumpif"
	case opJump:
		return "jump"
	case opHalt:
		return "halt"
	default:
		return fmt.Sprintf("opKind(%d)", int(k))
	}
}

// Frame is one processor's private state: program counter plus locals.
// The frame never records the processor's identity — processors are
// anonymous, and programs can only distinguish themselves through what
// they observe.
//
// Locals is a slot slice indexed by Sym (the program's symbol table);
// unassigned slots hold the package-private unset sentinel. The slice is
// copy-on-write: Clone shares it between machines and the first mutating
// step afterwards copies it, so model-checker expansion stays cheap.
type Frame struct {
	PC     int
	Locals []any
	Halted bool

	// owned reports that Locals is exclusively this frame's: mutating
	// steps may write in place. Meaningful only while the machine owns
	// its frames array (procsOwned); cowProcs resets it when the array
	// itself is copied after a Clone.
	owned bool
}

// cow makes fr.Locals private to this frame, copying once after a Clone
// and never again until the next Clone.
func (fr *Frame) cow() {
	if fr.owned {
		return
	}
	fr.Locals = append([]any(nil), fr.Locals...)
	fr.owned = true
}

// Machine executes a program over a system.
type Machine struct {
	sys     *system.System
	instr   system.InstrSet
	program *Program

	// bound[p][pc] is the variable index processor p touches at pc — the
	// paper's n-nbr function evaluated once at construction, so Step never
	// resolves a name. Entries for local instructions are unused. Shared
	// (immutable) between clones.
	bound [][]int32
	// allowedKind[k] caches instruction-set legality per opcode.
	allowedKind [opHalt + 1]bool

	frames []Frame
	// S/L variables: one value each, plus a lock bit for L.
	varVal []any
	locked []bool
	// Q variables: one subvalue slot per processor (unset sentinel when
	// the processor has not posted). Copy-on-write like frame locals:
	// subOwned[v] reports the slice is private to this machine.
	varSub   [][]any
	subOwned []bool

	// procsOwned and varsOwned are machine-level copy-on-write bits over
	// the backing arrays themselves, making Clone O(1): procsOwned guards
	// frames/procFP/crashed, varsOwned guards varVal/locked/varSub/
	// subOwned/varFP. Clone clears both bits on both machines and shares
	// every array; the first mutating step afterwards copies just the
	// group it touches (cowProcs/cowVars). When an array group is shared,
	// its finer-grained ownership bits (Frame.owned, subOwned) are stale
	// and ignored — the cow of the outer array resets them.
	procsOwned bool
	varsOwned  bool

	steps int

	// crashed marks processors halted by fault injection (Crash) rather
	// than by their own program. A crashed processor is observationally a
	// halted one — fingerprints and other processors cannot tell the
	// difference — but harnesses use the distinction to excuse crashed
	// processors from convergence and correctness obligations.
	crashed []bool

	// Fingerprint caches: a step touches one processor frame and at most
	// one variable, so caching makes whole-state fingerprints (the model
	// checker's hot path) incremental. Empty string means stale.
	procFP []string
	varFP  []string

	// selSym is the slot of the conventional "selected" local, or -1 when
	// the program never interns it.
	selSym Sym

	// regs is the scratch register view lent to Compute/JumpIf closures;
	// keeping it on the machine avoids a per-step allocation. Closures
	// must not retain it past their call.
	regs Regs

	// rec, when non-nil, observes streamed execution: RunWith emits one
	// KindSchedStep event per executed step and a machine.steps counter.
	// Step itself is never instrumented — it is the model checker's inner
	// loop, where even a nil check per step would be measurable.
	rec *obs.Recorder
}

// isSharedKind reports whether the opcode addresses a shared variable.
func isSharedKind(k opKind) bool { return k >= opRead && k <= opPost }

// cowProcs makes the processor-side arrays (frames, procFP, crashed)
// private to this machine, copying once after a Clone. The fresh frame
// copies drop their owned bits: their Locals slices are still shared.
func (m *Machine) cowProcs() {
	if m.procsOwned {
		return
	}
	frames := make([]Frame, len(m.frames))
	copy(frames, m.frames)
	for i := range frames {
		frames[i].owned = false
	}
	m.frames = frames
	m.procFP = append([]string(nil), m.procFP...)
	m.crashed = append([]bool(nil), m.crashed...)
	m.procsOwned = true
}

// cowVars makes the variable-side arrays (varVal, locked, varSub,
// subOwned, varFP) private to this machine. subOwned restarts zeroed:
// the inner subvalue slices are still shared and must be copied on the
// next post to each.
func (m *Machine) cowVars() {
	if m.varsOwned {
		return
	}
	m.varVal = append([]any(nil), m.varVal...)
	m.locked = append([]bool(nil), m.locked...)
	m.varSub = append([][]any(nil), m.varSub...)
	m.subOwned = make([]bool, len(m.subOwned))
	m.varFP = append([]string(nil), m.varFP...)
	m.varsOwned = true
}

// New initializes a machine: every processor at PC 0 with local slot
// "init" holding ProcInit[p], every S/L variable holding its initial
// state, every Q variable with no subvalues.
//
// New also binds the compiled program to the system: every shared-variable
// operand resolves through the naming function here, once, filling the
// [proc][pc] variable-index table that Step indexes. A program that names
// a variable the system does not define fails here, not at step time.
func New(sys *system.System, instr system.InstrSet, program *Program) (*Machine, error) {
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	switch instr {
	case system.InstrS, system.InstrL, system.InstrQ, system.InstrExtL:
	default:
		return nil, fmt.Errorf("%w: %v", ErrBadInstrSet, instr)
	}
	np, nv := sys.NumProcs(), sys.NumVars()
	m := &Machine{
		sys:      sys,
		instr:    instr,
		program:  program,
		frames:   make([]Frame, np),
		varVal:   make([]any, nv),
		locked:   make([]bool, nv),
		varSub:   make([][]any, nv),
		subOwned: make([]bool, nv),
		crashed:  make([]bool, np),
		procFP:   make([]string, np),
		varFP:    make([]string, nv),
		selSym:   -1,
		// Freshly built machines own every backing array.
		procsOwned: true,
		varsOwned:  true,
	}
	if s, ok := program.symIdx["selected"]; ok {
		m.selSym = s
	}
	ns := program.NumSyms()
	for p := range m.frames {
		locals := make([]any, ns)
		for i := range locals {
			locals[i] = unset
		}
		locals[SymInit] = sys.ProcInit[p]
		m.frames[p] = Frame{Locals: locals, owned: true}
	}
	for v := range m.varVal {
		m.varVal[v] = sys.VarInit[v]
		sub := make([]any, np)
		for i := range sub {
			sub[i] = unset
		}
		m.varSub[v] = sub
		m.subOwned[v] = true
	}
	// Instruction-set legality per opcode (local instructions are always
	// legal).
	m.allowedKind[opCompute] = true
	m.allowedKind[opJumpIf] = true
	m.allowedKind[opJump] = true
	m.allowedKind[opHalt] = true
	switch instr {
	case system.InstrS:
		m.allowedKind[opRead] = true
		m.allowedKind[opWrite] = true
	case system.InstrL, system.InstrExtL:
		m.allowedKind[opRead] = true
		m.allowedKind[opWrite] = true
		m.allowedKind[opLock] = true
		m.allowedKind[opUnlock] = true
	case system.InstrQ:
		m.allowedKind[opPeek] = true
		m.allowedKind[opPost] = true
	}
	// Pre-bind shared operands: one NameIndex resolution per instruction,
	// one Nbr row walk per processor, never again.
	nc := program.Len()
	flat := make([]int32, np*nc)
	m.bound = make([][]int32, np)
	for p := 0; p < np; p++ {
		m.bound[p] = flat[p*nc : (p+1)*nc : (p+1)*nc]
	}
	for pc := range program.code {
		o := &program.code[pc]
		if !isSharedKind(o.kind) {
			continue
		}
		j, err := sys.NameIndex(o.name)
		if err != nil {
			return nil, fmt.Errorf("machine: pc %d: %w", pc, err)
		}
		for p := 0; p < np; p++ {
			m.bound[p][pc] = int32(sys.Nbr[p][j])
		}
	}
	return m, nil
}

// Observe attaches an event recorder to streamed execution (RunWith). A
// nil recorder detaches. Clones inherit the recorder, so an observed
// machine's probe clones stay observed unless explicitly detached.
func (m *Machine) Observe(rec *obs.Recorder) { m.rec = rec }

// System returns the underlying system.
func (m *Machine) System() *system.System { return m.sys }

// Program returns the compiled program the machine runs.
func (m *Machine) Program() *Program { return m.program }

// NumProcs returns the number of processors.
func (m *Machine) NumProcs() int { return len(m.frames) }

// NumVars returns the number of variables.
func (m *Machine) NumVars() int { return len(m.varVal) }

// Steps returns the number of executed steps.
func (m *Machine) Steps() int { return m.steps }

// Halted reports whether processor p has halted.
func (m *Machine) Halted(p int) bool { return m.frames[p].Halted }

// AllHalted reports whether every processor has halted.
func (m *Machine) AllHalted() bool {
	for p := range m.frames {
		if !m.frames[p].Halted {
			return false
		}
	}
	return true
}

// Local returns processor p's local value (nil, false when unset). This
// is the introspection path — assertions, harness predicates, display —
// and resolves the name through the program's symbol table; compiled
// execution never goes through here.
func (m *Machine) Local(p int, name string) (any, bool) {
	s, ok := m.program.symIdx[name]
	if !ok {
		return nil, false
	}
	v := m.frames[p].Locals[s]
	if v == unset {
		return nil, false
	}
	return v, true
}

// Step executes one atomic instruction of processor p (a schedule step).
// Stepping a halted processor is a legal no-op, matching the paper's
// schedules which may name any processor at any time.
//
// Step is atomic on failure: every input (local lookups, instruction-set
// membership) is validated before the first mutation, so a Step that
// returns an error leaves the step counter, the fingerprint caches, and
// the machine state exactly as they were. (Shared-variable names were
// validated and bound at New.)
//
// The compiled path does no map operations and no name resolutions:
// locals are slot loads, shared operands index the pre-bound table, and
// jump targets are instruction indices.
func (m *Machine) Step(p int) error {
	if p < 0 || p >= len(m.frames) {
		return fmt.Errorf("%w: %d", ErrBadProcessor, p)
	}
	fr := &m.frames[p]
	if fr.Halted {
		// A halted processor's step is a counted stutter: the state is
		// unchanged, so the cached fingerprint stays valid — don't clear it.
		m.steps++
		return nil
	}
	if fr.PC >= len(m.program.code) {
		// Running off the end halts the processor — a real state change.
		m.cowProcs()
		fr = &m.frames[p]
		m.steps++
		m.procFP[p] = ""
		fr.Halted = true
		return nil
	}
	in := &m.program.code[fr.PC]
	if !m.allowedKind[in.kind] {
		return fmt.Errorf("%w: %v under %v", ErrInstrNotAllowed, in.kind, m.instr)
	}
	// Every committed step mutates the frame and invalidates procFP[p]:
	// privatize the processor-side arrays once, then re-take fr into the
	// fresh frames array. Variable-side arrays privatize per opcode.
	m.cowProcs()
	fr = &m.frames[p]
	switch in.kind {
	case opRead:
		v := m.bound[p][fr.PC]
		m.steps++
		m.procFP[p] = ""
		fr.cow()
		fr.Locals[in.sym] = m.varVal[v]
		fr.PC++
	case opWrite:
		v := m.bound[p][fr.PC]
		val := fr.Locals[in.sym]
		if val == unset {
			return fmt.Errorf("%w: %q", ErrMissingLocal, m.program.names[in.sym])
		}
		m.steps++
		m.procFP[p] = ""
		m.cowVars()
		m.varVal[v] = val
		m.varFP[v] = ""
		fr.PC++
	case opLock:
		v := m.bound[p][fr.PC]
		m.steps++
		m.procFP[p] = ""
		fr.cow()
		if m.locked[v] {
			fr.Locals[in.sym] = false
		} else {
			m.cowVars()
			m.locked[v] = true
			m.varFP[v] = ""
			fr.Locals[in.sym] = true
		}
		fr.PC++
	case opUnlock:
		v := m.bound[p][fr.PC]
		m.steps++
		m.procFP[p] = ""
		m.cowVars()
		m.locked[v] = false
		m.varFP[v] = ""
		fr.PC++
	case opPeek:
		v := m.bound[p][fr.PC]
		m.steps++
		m.procFP[p] = ""
		fr.cow()
		fr.Locals[in.sym] = m.peekValue(int(v))
		fr.PC++
	case opPost:
		v := m.bound[p][fr.PC]
		val := fr.Locals[in.sym]
		if val == unset {
			return fmt.Errorf("%w: %q", ErrMissingLocal, m.program.names[in.sym])
		}
		m.steps++
		m.procFP[p] = ""
		m.cowVars()
		// Copy-on-write so snapshots are not aliased.
		sub := m.varSub[v]
		if !m.subOwned[v] {
			sub = append([]any(nil), sub...)
			m.varSub[v] = sub
			m.subOwned[v] = true
		}
		sub[p] = val
		m.varFP[v] = ""
		fr.PC++
	case opCompute:
		m.steps++
		m.procFP[p] = ""
		fr.cow()
		m.regs.slots = fr.Locals
		in.f(&m.regs)
		m.regs.slots = nil
		fr.PC++
	case opJumpIf:
		m.steps++
		m.procFP[p] = ""
		m.regs.slots = fr.Locals
		taken := in.cond(&m.regs)
		m.regs.slots = nil
		if taken {
			fr.PC = in.tgt
		} else {
			fr.PC++
		}
	case opJump:
		m.steps++
		m.procFP[p] = ""
		fr.PC = in.tgt
	case opHalt:
		m.steps++
		m.procFP[p] = ""
		fr.Halted = true
	default:
		return fmt.Errorf("machine: unknown opcode %v", in.kind)
	}
	return nil
}

// peekValue builds the PeekResult for variable v: init state plus the
// subvalue multiset sorted canonically (the paper's unordered multiset).
func (m *Machine) peekValue(v int) PeekResult {
	sub := m.varSub[v]
	vals := make([]any, 0, len(sub))
	for _, s := range sub {
		if s != unset {
			vals = append(vals, s)
		}
	}
	sort.Slice(vals, func(a, b int) bool {
		return canon.String(vals[a]) < canon.String(vals[b])
	})
	return PeekResult{Init: m.sys.VarInit[v], Values: vals}
}

// Scheduler streams schedule steps to a running machine. Next observes
// the current state and returns the processor to step, or ok=false to end
// the schedule. This is the paper's adversary in executable form: the
// schedule classes (general, fair, k-bounded-fair) are restrictions on
// what Next may return, and the impossibility proofs' adversaries are
// implementations that pick each step after watching the previous one
// land. Next must not mutate m (probe on a Clone instead).
type Scheduler interface {
	Next(m *Machine) (proc int, ok bool)
}

// sliceScheduler streams a precomputed finite schedule.
type sliceScheduler struct {
	schedule []int
	i        int
}

func (s *sliceScheduler) Next(*Machine) (int, bool) {
	if s.i >= len(s.schedule) {
		return 0, false
	}
	p := s.schedule[s.i]
	s.i++
	return p, true
}

// RunWith executes steps streamed by s from the current state, stopping
// early when every processor halts or s ends the schedule. It returns the
// number of steps executed. This is the primary driver; Run wraps it for
// finite precomputed schedules.
func (m *Machine) RunWith(s Scheduler) (int, error) {
	done := 0
	var err error
	for {
		if m.AllHalted() {
			break
		}
		p, ok := s.Next(m)
		if !ok {
			break
		}
		if err = m.Step(p); err != nil {
			break
		}
		if m.rec.Enabled() {
			m.rec.SchedStep(done, p, true)
		}
		done++
	}
	if m.rec.Enabled() && done > 0 {
		m.rec.Count("machine.steps", int64(done))
	}
	return done, err
}

// Run executes the schedule (a sequence of processor indices) from the
// current state, stopping early if every processor halts. It returns the
// number of steps actually executed.
func (m *Machine) Run(schedule []int) (int, error) {
	return m.RunWith(&sliceScheduler{schedule: schedule})
}

// StepOrSkip executes one step of processor p unless p has halted (or
// crashed), in which case it reports stepped=false and leaves the machine
// — including the step counter — untouched. Step treats a halted pick as
// a counted stutter, matching the paper's schedules which may name any
// processor; StepOrSkip is the fault harness's hook for distinguishing
// real steps from burned slots.
func (m *Machine) StepOrSkip(p int) (stepped bool, err error) {
	if p < 0 || p >= len(m.frames) {
		return false, fmt.Errorf("%w: %d", ErrBadProcessor, p)
	}
	if m.frames[p].Halted {
		return false, nil
	}
	return true, m.Step(p)
}

// Crash permanently halts processor p without consuming a schedule step —
// the fault model's crash-stop failure. The frame (locals, program
// counter, selected flag) survives; only the ability to step is lost.
// Crashing a processor that already halted on its own is a no-op.
func (m *Machine) Crash(p int) error {
	if p < 0 || p >= len(m.frames) {
		return fmt.Errorf("%w: %d", ErrBadProcessor, p)
	}
	if !m.frames[p].Halted {
		m.cowProcs()
		m.frames[p].Halted = true
		m.crashed[p] = true
		m.procFP[p] = ""
	}
	return nil
}

// Crashed reports whether processor p was halted by Crash (fault
// injection) as opposed to halting on its own.
func (m *Machine) Crashed(p int) bool { return m.crashed[p] }

// DropLock forcibly clears variable v's lock bit without consuming a
// schedule step — the fault model's lock-drop (a flaky lock service
// releasing a lease it granted). The holder is not notified: a processor
// that believes it holds the lock proceeds regardless, which is exactly
// the hazard the dining fault sweep probes. Dropping an unheld lock is a
// no-op.
func (m *Machine) DropLock(v int) error {
	if v < 0 || v >= len(m.locked) {
		return fmt.Errorf("%w: %d", ErrBadVariable, v)
	}
	if m.locked[v] {
		m.cowVars()
		m.locked[v] = false
		m.varFP[v] = ""
	}
	return nil
}

// Locked reports whether variable v's lock bit is set.
func (m *Machine) Locked(v int) bool { return m.locked[v] }

// appendProcFP writes processor p's canonical encoding into buf. Slots
// are emitted in declaration order — fixed for a given program — so no
// name material and no sort are needed; unset slots get their own tag so
// "never assigned" cannot alias a value.
func (m *Machine) appendProcFP(buf []byte, p int) []byte {
	fr := &m.frames[p]
	buf = binary.AppendVarint(buf, int64(fr.PC))
	if fr.Halted {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	for _, v := range fr.Locals {
		if v == unset {
			buf = append(buf, 'u')
		} else {
			buf = appendLocalValue(buf, v)
		}
	}
	return buf
}

// ProcFingerprint returns a canonical encoding of processor p's state
// (program counter + locals). Two processors running the same program
// "have the same state" in the paper's sense exactly when their
// fingerprints are equal. The encoding walks the local slots in
// declaration order — injectivity survives because every component is
// self-delimiting and the slot layout is fixed per program.
func (m *Machine) ProcFingerprint(p int) string {
	if m.procFP[p] == "" {
		m.procFP[p] = string(m.appendProcFP(make([]byte, 0, 48), p))
	}
	return m.procFP[p]
}

// AppendProcFingerprint appends processor p's canonical fingerprint bytes
// to buf and returns the extended slice, refreshing the cache when stale.
// Comparing appended windows with bytes.Equal is equivalent to comparing
// ProcFingerprint strings, without materializing strings per check —
// trace's per-round witness scans run on reused buffers through here.
func (m *Machine) AppendProcFingerprint(buf []byte, p int) []byte {
	if m.procFP[p] == "" {
		start := len(buf)
		buf = m.appendProcFP(buf, p)
		m.procFP[p] = string(buf[start:])
		return buf
	}
	return append(buf, m.procFP[p]...)
}

// appendLocalValue appends a tagged self-delimiting encoding of a local
// value. Scalars get direct fast paths; anything else (PeekResult,
// slices) falls back to the canonical string, length-prefixed under its
// own tag so the two regimes cannot alias.
func appendLocalValue(buf []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(buf, 'n')
	case bool:
		if x {
			return append(buf, 'b', 1)
		}
		return append(buf, 'b', 0)
	case int:
		buf = append(buf, 'i')
		return binary.AppendVarint(buf, int64(x))
	case string:
		buf = append(buf, 's')
		return canon.AppendLenPrefixed(buf, x)
	default:
		buf = append(buf, 'c')
		return canon.AppendLenPrefixed(buf, canon.String(valueForCanon(v)))
	}
}

// VarFingerprint returns a canonical encoding of variable v's state.
// Q subvalues are encoded as an unordered multiset. The leading tag byte
// separates the Q and S/L regimes.
func (m *Machine) VarFingerprint(v int) string {
	if m.varFP[v] != "" {
		return m.varFP[v]
	}
	if m.instr == system.InstrQ {
		sub := m.varSub[v]
		ms := make(canon.Multiset, 0, len(sub))
		for _, s := range sub {
			if s != unset {
				ms = append(ms, s)
			}
		}
		m.varFP[v] = "q" + canon.String(map[string]any{"init": m.sys.VarInit[v], "sub": ms})
	} else {
		buf := make([]byte, 0, 24)
		buf = append(buf, 'v')
		if m.locked[v] {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = appendLocalValue(buf, m.varVal[v])
		m.varFP[v] = string(buf)
	}
	return m.varFP[v]
}

// AppendVarFingerprint appends variable v's canonical fingerprint bytes
// to buf, the VarFingerprint counterpart of AppendProcFingerprint.
func (m *Machine) AppendVarFingerprint(buf []byte, v int) []byte {
	return append(buf, m.VarFingerprint(v)...)
}

// Fingerprint returns the canonical encoding of the whole machine state
// (all frames and all variables). Used as the model checker's visited-set
// key.
func (m *Machine) Fingerprint() string {
	procs := make([]any, len(m.frames))
	for p := range m.frames {
		procs[p] = m.ProcFingerprint(p)
	}
	vars := make([]any, len(m.varVal))
	for v := range m.varVal {
		vars[v] = m.VarFingerprint(v)
	}
	return canon.String([]any{procs, vars})
}

// AppendStateKey appends a compact binary encoding of the whole machine
// state to buf and returns the extended slice. The key concatenates the
// length-prefixed per-processor and per-variable canonical fingerprints,
// so two machines over the same system have equal keys iff their
// Fingerprint strings are equal — without materializing a new string per
// state. This is the model checker's visited-set key: callers reuse buf
// across states and the per-component fingerprints stay cached.
//
// When procAt/varAt are non-nil they relabel the key's node positions:
// position i of the key takes processor procAt[i]'s (variable varAt[i]'s)
// component. Passing an automorphism's permutation yields the key of the
// symmetric image state, which is how symmetry reduction computes orbit
// representatives without building permuted machines.
func (m *Machine) AppendStateKey(buf []byte, procAt, varAt []int) []byte {
	for i := range m.frames {
		p := i
		if procAt != nil {
			p = procAt[i]
		}
		buf = canon.AppendLenPrefixed(buf, m.ProcFingerprint(p))
	}
	for i := range m.varVal {
		v := i
		if varAt != nil {
			v = varAt[i]
		}
		buf = canon.AppendLenPrefixed(buf, m.VarFingerprint(v))
	}
	return buf
}

// ProcFingerprintOracle reproduces the pre-compilation processor encoding
// — locals as a count-prefixed, name-sorted (name, value) list — from the
// slot representation. It exists purely as a cross-check oracle for the
// compiled fingerprint path (the way partition.FixpointNaive anchors the
// interned similarity path): equality classes under the oracle encoding
// must match equality classes under ProcFingerprint.
func (m *Machine) ProcFingerprintOracle(p int) string {
	fr := &m.frames[p]
	buf := make([]byte, 0, 48)
	buf = binary.AppendVarint(buf, int64(fr.PC))
	if fr.Halted {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	n := 0
	for _, v := range fr.Locals {
		if v != unset {
			n++
		}
	}
	buf = binary.AppendUvarint(buf, uint64(n))
	for _, s := range m.program.sortedSyms {
		v := fr.Locals[s]
		if v == unset {
			continue
		}
		buf = canon.AppendLenPrefixed(buf, m.program.names[s])
		buf = appendLocalValue(buf, v)
	}
	return string(buf)
}

// FingerprintOracle composes whole-state fingerprints from the oracle
// processor encoding — byte-identical to the pre-compilation Fingerprint.
// Cross-check tests compare its equality classes against Fingerprint's.
func (m *Machine) FingerprintOracle() string {
	procs := make([]any, len(m.frames))
	for p := range m.frames {
		procs[p] = m.ProcFingerprintOracle(p)
	}
	vars := make([]any, len(m.varVal))
	for v := range m.varVal {
		vars[v] = m.VarFingerprint(v)
	}
	return canon.String([]any{procs, vars})
}

func valueForCanon(v any) any {
	if pr, ok := v.(PeekResult); ok {
		ms := make(canon.Multiset, len(pr.Values))
		copy(ms, pr.Values)
		return map[string]any{"peek_init": pr.Init, "peek_vals": ms}
	}
	return v
}

// Clone returns an independent snapshot of the machine in O(1): every
// mutable array — frames, variable values, locks, subvalues, fingerprint
// caches — is shared copy-on-write between the two machines, and the
// first mutating step on either side copies just the array group it
// touches. Clearing the ownership bits here covers both machines (a
// machine is only ever touched by one goroutine at a time; the model
// checker's parallel engine assigns each machine to exactly one worker).
//
// Fingerprint accessors cache into the (possibly shared) procFP/varFP
// arrays; the cached value is a pure function of the equally shared
// state, so a sharer observes either the empty slot or the identical
// string. Under concurrent use the model checker's discipline applies:
// a machine's caches are fully populated (AppendStateKey) before it is
// ever cloned, so shared cache arrays are never written.
func (m *Machine) Clone() *Machine {
	m.procsOwned = false
	m.varsOwned = false
	c := *m
	c.regs = Regs{}
	return &c
}

// SelectedProcs returns the processors whose local "selected" is true —
// the paper's selected_p flag (section 3).
func (m *Machine) SelectedProcs() []int {
	if m.selSym < 0 {
		return nil
	}
	var out []int
	for p := range m.frames {
		if sel, ok := m.frames[p].Locals[m.selSym].(bool); ok && sel {
			out = append(out, p)
		}
	}
	return out
}
