package machine

import (
	"errors"
	"fmt"
	"sort"

	"simsym/internal/canon"
	"simsym/internal/system"
)

// Sentinel errors for execution.
var (
	ErrInstrNotAllowed = errors.New("machine: instruction not in instruction set")
	ErrBadProcessor    = errors.New("machine: processor index out of range")
	ErrMissingLocal    = errors.New("machine: local variable not set")
	ErrBadInstrSet     = errors.New("machine: unsupported instruction set")
)

// Frame is one processor's private state: program counter plus locals.
// The frame never records the processor's identity — processors are
// anonymous, and programs can only distinguish themselves through what
// they observe.
type Frame struct {
	PC     int
	Locals Locals
	Halted bool
}

// qVar is the state of a Q multiset variable: one subvalue per processor
// that has posted (keyed by processor only for updates; fingerprints see
// the unordered multiset, as the paper requires).
type qVar map[int]any

// Machine executes a program over a system.
type Machine struct {
	sys     *system.System
	instr   system.InstrSet
	program *Program

	frames []Frame
	// S/L variables: one value each, plus a lock bit for L.
	varVal []any
	locked []bool
	// Q variables: per-processor subvalues.
	varSub []qVar

	steps int

	// Fingerprint caches: a step touches one processor frame and at most
	// one variable, so caching makes whole-state fingerprints (the model
	// checker's hot path) incremental. Empty string means stale.
	procFP []string
	varFP  []string
}

// New initializes a machine: every processor at PC 0 with locals
// {"init": ProcInit[p]}, every S/L variable holding its initial state,
// every Q variable with no subvalues.
func New(sys *system.System, instr system.InstrSet, program *Program) (*Machine, error) {
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	switch instr {
	case system.InstrS, system.InstrL, system.InstrQ, system.InstrExtL:
	default:
		return nil, fmt.Errorf("%w: %v", ErrBadInstrSet, instr)
	}
	m := &Machine{
		sys:     sys,
		instr:   instr,
		program: program,
		frames:  make([]Frame, sys.NumProcs()),
		varVal:  make([]any, sys.NumVars()),
		locked:  make([]bool, sys.NumVars()),
		varSub:  make([]qVar, sys.NumVars()),
		procFP:  make([]string, sys.NumProcs()),
		varFP:   make([]string, sys.NumVars()),
	}
	for p := range m.frames {
		m.frames[p] = Frame{Locals: Locals{"init": sys.ProcInit[p]}}
	}
	for v := range m.varVal {
		m.varVal[v] = sys.VarInit[v]
		m.varSub[v] = make(qVar)
	}
	return m, nil
}

// System returns the underlying system.
func (m *Machine) System() *system.System { return m.sys }

// Steps returns the number of executed steps.
func (m *Machine) Steps() int { return m.steps }

// Halted reports whether processor p has halted.
func (m *Machine) Halted(p int) bool { return m.frames[p].Halted }

// AllHalted reports whether every processor has halted.
func (m *Machine) AllHalted() bool {
	for p := range m.frames {
		if !m.frames[p].Halted {
			return false
		}
	}
	return true
}

// Local returns processor p's local value (nil, false when unset).
func (m *Machine) Local(p int, name string) (any, bool) {
	v, ok := m.frames[p].Locals[name]
	return v, ok
}

// allowed reports whether instruction in is legal under m.instr.
func (m *Machine) allowed(in Instr) bool {
	switch in.(type) {
	case Read, Write:
		return m.instr == system.InstrS || m.instr == system.InstrL || m.instr == system.InstrExtL
	case Lock, Unlock:
		return m.instr == system.InstrL || m.instr == system.InstrExtL
	case Peek, Post:
		return m.instr == system.InstrQ
	default:
		return true // local instructions always allowed
	}
}

// Step executes one atomic instruction of processor p (a schedule step).
// Stepping a halted processor is a legal no-op, matching the paper's
// schedules which may name any processor at any time.
func (m *Machine) Step(p int) error {
	if p < 0 || p >= len(m.frames) {
		return fmt.Errorf("%w: %d", ErrBadProcessor, p)
	}
	m.steps++
	m.procFP[p] = ""
	fr := &m.frames[p]
	if fr.Halted || fr.PC >= m.program.Len() {
		fr.Halted = true
		return nil
	}
	in := m.program.instrs[fr.PC]
	if !m.allowed(in) {
		return fmt.Errorf("%w: %T under %v", ErrInstrNotAllowed, in, m.instr)
	}
	switch x := in.(type) {
	case Read:
		v, err := m.sys.NNbr(p, x.Name)
		if err != nil {
			return err
		}
		fr.Locals = fr.Locals.Clone()
		fr.Locals[x.Dst] = m.varVal[v]
		fr.PC++
	case Write:
		v, err := m.sys.NNbr(p, x.Name)
		if err != nil {
			return err
		}
		val, ok := fr.Locals[x.Src]
		if !ok {
			return fmt.Errorf("%w: %q", ErrMissingLocal, x.Src)
		}
		m.varVal[v] = val
		m.varFP[v] = ""
		fr.PC++
	case Lock:
		v, err := m.sys.NNbr(p, x.Name)
		if err != nil {
			return err
		}
		fr.Locals = fr.Locals.Clone()
		if m.locked[v] {
			fr.Locals[x.Dst] = false
		} else {
			m.locked[v] = true
			m.varFP[v] = ""
			fr.Locals[x.Dst] = true
		}
		fr.PC++
	case Unlock:
		v, err := m.sys.NNbr(p, x.Name)
		if err != nil {
			return err
		}
		m.locked[v] = false
		m.varFP[v] = ""
		fr.PC++
	case Peek:
		v, err := m.sys.NNbr(p, x.Name)
		if err != nil {
			return err
		}
		fr.Locals = fr.Locals.Clone()
		fr.Locals[x.Dst] = m.peekValue(v)
		fr.PC++
	case Post:
		v, err := m.sys.NNbr(p, x.Name)
		if err != nil {
			return err
		}
		val, ok := fr.Locals[x.Src]
		if !ok {
			return fmt.Errorf("%w: %q", ErrMissingLocal, x.Src)
		}
		// Copy-on-write so snapshots are not aliased.
		nv := make(qVar, len(m.varSub[v])+1)
		for k, s := range m.varSub[v] {
			nv[k] = s
		}
		nv[p] = val
		m.varSub[v] = nv
		m.varFP[v] = ""
		fr.PC++
	case Compute:
		fr.Locals = fr.Locals.Clone()
		x.F(fr.Locals)
		fr.PC++
	case JumpIf:
		if x.Cond(fr.Locals) {
			fr.PC = m.program.targets[x.Target]
		} else {
			fr.PC++
		}
	case Jump:
		fr.PC = m.program.targets[x.Target]
	case Halt:
		fr.Halted = true
	default:
		return fmt.Errorf("machine: unknown instruction %T", in)
	}
	return nil
}

// peekValue builds the PeekResult for variable v: init state plus the
// subvalue multiset sorted canonically (the paper's unordered multiset).
func (m *Machine) peekValue(v int) PeekResult {
	vals := make([]any, 0, len(m.varSub[v]))
	for _, s := range m.varSub[v] {
		vals = append(vals, s)
	}
	sort.Slice(vals, func(a, b int) bool {
		return canon.String(vals[a]) < canon.String(vals[b])
	})
	return PeekResult{Init: m.sys.VarInit[v], Values: vals}
}

// Run executes the schedule (a sequence of processor indices) from the
// current state, stopping early if every processor halts. It returns the
// number of steps actually executed.
func (m *Machine) Run(schedule []int) (int, error) {
	done := 0
	for _, p := range schedule {
		if m.AllHalted() {
			return done, nil
		}
		if err := m.Step(p); err != nil {
			return done, err
		}
		done++
	}
	return done, nil
}

// ProcFingerprint returns the canonical encoding of processor p's state
// (program counter + locals). Two processors "have the same state" in the
// paper's sense exactly when their fingerprints are equal.
func (m *Machine) ProcFingerprint(p int) string {
	if m.procFP[p] == "" {
		fr := m.frames[p]
		m.procFP[p] = canon.String(map[string]any{
			"pc":     fr.PC,
			"halted": fr.Halted,
			"locals": localsForCanon(fr.Locals),
		})
	}
	return m.procFP[p]
}

// VarFingerprint returns the canonical encoding of variable v's state.
// Q subvalues are encoded as an unordered multiset.
func (m *Machine) VarFingerprint(v int) string {
	if m.varFP[v] != "" {
		return m.varFP[v]
	}
	if m.instr == system.InstrQ {
		ms := make(canon.Multiset, 0, len(m.varSub[v]))
		for _, s := range m.varSub[v] {
			ms = append(ms, s)
		}
		m.varFP[v] = canon.String(map[string]any{"init": m.sys.VarInit[v], "sub": ms})
	} else {
		m.varFP[v] = canon.String(map[string]any{
			"val":    m.varVal[v],
			"locked": m.locked[v],
		})
	}
	return m.varFP[v]
}

// Fingerprint returns the canonical encoding of the whole machine state
// (all frames and all variables). Used as the model checker's visited-set
// key.
func (m *Machine) Fingerprint() string {
	procs := make([]any, len(m.frames))
	for p := range m.frames {
		procs[p] = m.ProcFingerprint(p)
	}
	vars := make([]any, len(m.varVal))
	for v := range m.varVal {
		vars[v] = m.VarFingerprint(v)
	}
	return canon.String([]any{procs, vars})
}

// localsForCanon converts Locals to a plain map for canonical encoding,
// expanding PeekResult into a canonical shape.
func localsForCanon(l Locals) map[string]any {
	out := make(map[string]any, len(l))
	for k, v := range l {
		out[k] = valueForCanon(v)
	}
	return out
}

func valueForCanon(v any) any {
	if pr, ok := v.(PeekResult); ok {
		ms := make(canon.Multiset, len(pr.Values))
		copy(ms, pr.Values)
		return map[string]any{"peek_init": pr.Init, "peek_vals": ms}
	}
	return v
}

// Clone returns an independent deep copy of the machine sharing only the
// immutable program and system.
func (m *Machine) Clone() *Machine {
	c := &Machine{
		sys:     m.sys,
		instr:   m.instr,
		program: m.program,
		frames:  make([]Frame, len(m.frames)),
		varVal:  append([]any(nil), m.varVal...),
		locked:  append([]bool(nil), m.locked...),
		varSub:  make([]qVar, len(m.varSub)),
		steps:   m.steps,
		procFP:  append([]string(nil), m.procFP...),
		varFP:   append([]string(nil), m.varFP...),
	}
	// Locals and subvalue maps are copy-on-write (every mutating
	// instruction replaces the map before writing), so clones can share
	// them; this is what makes model-checker expansion cheap.
	copy(c.frames, m.frames)
	copy(c.varSub, m.varSub)
	return c
}

// SelectedProcs returns the processors whose local "selected" is true —
// the paper's selected_p flag (section 3).
func (m *Machine) SelectedProcs() []int {
	var out []int
	for p := range m.frames {
		if sel, ok := m.frames[p].Locals["selected"].(bool); ok && sel {
			out = append(out, p)
		}
	}
	return out
}
