package machine

import (
	"errors"
	"testing"

	"simsym/internal/system"
)

// failedStepLeavesMachineUnchanged runs one Step expecting wantErr and
// asserts the machine observably did not move: step counter, whole-state
// fingerprint, and halt flags are all unchanged.
func failedStepLeavesMachineUnchanged(t *testing.T, m *Machine, p int, wantErr error) {
	t.Helper()
	steps0 := m.Steps()
	fp0 := m.Fingerprint()
	err := m.Step(p)
	if !errors.Is(err, wantErr) {
		t.Fatalf("Step err = %v, want %v", err, wantErr)
	}
	if got := m.Steps(); got != steps0 {
		t.Errorf("failed step advanced Steps(): %d -> %d", steps0, got)
	}
	if got := m.Fingerprint(); got != fp0 {
		t.Errorf("failed step changed the state fingerprint:\nbefore %q\nafter  %q", fp0, got)
	}
}

func TestStepInstrNotAllowedLeavesMachineUnchanged(t *testing.T) {
	b := NewBuilder()
	b.Lock("n", "got") // Lock is illegal under S
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(system.Fig1(), system.InstrS, prog)
	if err != nil {
		t.Fatal(err)
	}
	failedStepLeavesMachineUnchanged(t, m, 0, ErrInstrNotAllowed)
	// The machine is still runnable for the other processor.
	failedStepLeavesMachineUnchanged(t, m, 1, ErrInstrNotAllowed)
}

func TestStepMissingLocalLeavesMachineUnchanged(t *testing.T) {
	b := NewBuilder()
	b.Write("n", "never-set")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(system.Fig1(), system.InstrS, prog)
	if err != nil {
		t.Fatal(err)
	}
	failedStepLeavesMachineUnchanged(t, m, 0, ErrMissingLocal)
}

func TestStepMissingLocalAfterProgressKeepsEarlierState(t *testing.T) {
	// Fail mid-program: earlier successful steps must be preserved
	// exactly while the failing one is rolled up into a no-op.
	b := NewBuilder()
	x := b.Sym("x")
	b.Compute(func(r *Regs) { r.Set(x, "seen") })
	b.Write("n", "missing")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(system.Fig1(), system.InstrS, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	if m.Steps() != 1 {
		t.Fatalf("Steps() = %d, want 1", m.Steps())
	}
	failedStepLeavesMachineUnchanged(t, m, 0, ErrMissingLocal)
	if v, ok := m.Local(0, "x"); !ok || v != "seen" {
		t.Errorf("earlier local lost: %v %v", v, ok)
	}
}

func TestStepBadProcessorLeavesMachineUnchanged(t *testing.T) {
	b := NewBuilder()
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(system.Fig1(), system.InstrS, prog)
	if err != nil {
		t.Fatal(err)
	}
	failedStepLeavesMachineUnchanged(t, m, 7, ErrBadProcessor)
	failedStepLeavesMachineUnchanged(t, m, -1, ErrBadProcessor)
}
