package distlabel

import (
	"fmt"
	"math/rand"
	"testing"

	"simsym/internal/core"
	"simsym/internal/machine"
	"simsym/internal/sched"
	"simsym/internal/system"
)

// runUntilAllDone drives m under shuffled fair rounds until every
// processor has set "done" (the S programs never halt — resolved
// processors keep refreshing their posts).
func runUntilAllDone(t *testing.T, m *machine.Machine, seed int64, maxRounds int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := m.System().NumProcs()
	allDone := func() bool {
		for p := 0; p < n; p++ {
			if d, ok := m.Local(p, "done"); !ok || d != true {
				return false
			}
		}
		return true
	}
	for r := 0; r < maxRounds; r++ {
		if allDone() {
			return
		}
		round, err := sched.ShuffledRounds(rng, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(round); err != nil {
			t.Fatal(err)
		}
	}
	for p := 0; p < n; p++ {
		pec, _ := m.Local(p, "PEC1")
		t.Logf("proc %d PEC=%v", p, pec)
	}
	t.Fatalf("Algorithm 2-S did not converge in %d rounds", maxRounds)
}

func sAlgoProgram(t *testing.T, s *system.System, elite []int) (*machine.Program, *core.Labeling) {
	t.Helper()
	lab, err := core.Similarity(s, core.RuleSetS)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := TopologyFromSystem(s, lab)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Algorithm2S(topo, Options{Elite: elite})
	if err != nil {
		t.Fatal(err)
	}
	return prog, lab
}

func TestAlgorithm2SFig3LearnsLabels(t *testing.T) {
	// Figure 3 under the set rule separates all three processors; the
	// S algorithm (read/write only, set alibis) must let each learn its
	// label — the convergence works through the relay chain analyzed in
	// the package docs: p resolves structurally, z resolves from p's
	// posts, q resolves from z's.
	s := system.Fig3()
	prog, lab := sAlgoProgram(t, s, nil)
	for seed := int64(0); seed < 6; seed++ {
		m, err := machine.New(s, system.InstrS, prog)
		if err != nil {
			t.Fatal(err)
		}
		runUntilAllDone(t, m, seed, 3000)
		for p := 0; p < s.NumProcs(); p++ {
			v, ok := m.Local(p, "label1")
			if !ok || v.(int) != lab.ProcLabels[p] {
				t.Errorf("seed %d: proc %d learned %v, want %d", seed, p, v, lab.ProcLabels[p])
			}
		}
	}
}

func TestAlgorithm2SMarkedRing(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		t.Run(fmt.Sprintf("ring%d", n), func(t *testing.T) {
			s, err := system.Ring(n)
			if err != nil {
				t.Fatal(err)
			}
			s.ProcInit[0] = "leader"
			prog, lab := sAlgoProgram(t, s, nil)
			m, err := machine.New(s, system.InstrS, prog)
			if err != nil {
				t.Fatal(err)
			}
			runUntilAllDone(t, m, int64(n), 6000)
			for p := 0; p < n; p++ {
				v, ok := m.Local(p, "label1")
				if !ok || v.(int) != lab.ProcLabels[p] {
					t.Errorf("proc %d learned %v, want %d", p, v, lab.ProcLabels[p])
				}
			}
		})
	}
}

func TestAlgorithm2SSelectsWithElite(t *testing.T) {
	// SELECT in bounded-fair S on Figure 3: z's label is designated.
	s := system.Fig3()
	lab, err := core.Similarity(s, core.RuleSetS)
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := sAlgoProgram(t, s, []int{lab.ProcLabels[2]})
	for seed := int64(0); seed < 5; seed++ {
		m, err := machine.New(s, system.InstrS, prog)
		if err != nil {
			t.Fatal(err)
		}
		runUntilAllDone(t, m, seed, 3000)
		sel := m.SelectedProcs()
		if len(sel) != 1 || sel[0] != 2 {
			t.Errorf("seed %d: selected %v, want [2]", seed, sel)
		}
	}
}

func TestAlgorithm2STrivialSystem(t *testing.T) {
	// Figure 1 under the set rule: both processors share a label and
	// resolve immediately to that (correct) label.
	s := system.Fig1()
	prog, lab := sAlgoProgram(t, s, nil)
	m, err := machine.New(s, system.InstrS, prog)
	if err != nil {
		t.Fatal(err)
	}
	runUntilAllDone(t, m, 1, 200)
	for p := 0; p < 2; p++ {
		v, _ := m.Local(p, "label1")
		if v != lab.ProcLabels[p] {
			t.Errorf("proc %d learned %v", p, v)
		}
	}
}

func TestAlgorithm2SSelectionStaysUnique(t *testing.T) {
	// Stability + uniqueness observed over long runs: once z selects,
	// nobody else ever does.
	s := system.Fig3()
	lab, err := core.Similarity(s, core.RuleSetS)
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := sAlgoProgram(t, s, []int{lab.ProcLabels[2]})
	m, err := machine.New(s, system.InstrS, prog)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for r := 0; r < 4000; r++ {
		round, err := sched.ShuffledRounds(rng, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(round); err != nil {
			t.Fatal(err)
		}
		if sel := m.SelectedProcs(); len(sel) > 1 {
			t.Fatalf("round %d: multiple selected %v", r, sel)
		}
	}
	if sel := m.SelectedProcs(); len(sel) != 1 {
		t.Errorf("final selected = %v", sel)
	}
}
