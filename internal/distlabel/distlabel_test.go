package distlabel

import (
	"fmt"
	"math/rand"
	"testing"

	"simsym/internal/core"
	"simsym/internal/family"
	"simsym/internal/machine"
	"simsym/internal/sched"
	"simsym/internal/system"
)

// runToCompletion drives m under shuffled-round fair schedules until all
// processors halt, failing after maxRounds.
func runToCompletion(t *testing.T, m *machine.Machine, seed int64, maxRounds int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := m.System().NumProcs()
	for r := 0; r < maxRounds; r++ {
		if m.AllHalted() {
			return
		}
		round, err := sched.ShuffledRounds(rng, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(round); err != nil {
			t.Fatal(err)
		}
	}
	if !m.AllHalted() {
		for p := 0; p < n; p++ {
			pec, _ := m.Local(p, "PEC1")
			t.Logf("proc %d PEC1=%v halted=%v", p, pec, m.Halted(p))
		}
		t.Fatalf("Algorithm did not converge in %d rounds", maxRounds)
	}
}

func learnedLabels(t *testing.T, m *machine.Machine, key string) []int {
	t.Helper()
	out := make([]int, m.System().NumProcs())
	for p := range out {
		v, ok := m.Local(p, key)
		if !ok {
			t.Fatalf("processor %d has no %s", p, key)
		}
		out[p] = v.(int)
	}
	return out
}

func TestAlgorithm2Fig2LearnsLabels(t *testing.T) {
	// The paper's Figure 2 walkthrough: p1,p2 discover v1 has two
	// writers; p3 learns its label from the resolved posts in v3.
	s := system.Fig2()
	lab, err := core.Similarity(s, core.RuleQ)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := TopologyFromSystem(s, lab)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Algorithm2(topo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		m, err := machine.New(s, system.InstrQ, prog)
		if err != nil {
			t.Fatal(err)
		}
		runToCompletion(t, m, seed, 500)
		got := learnedLabels(t, m, "label1")
		for p := range got {
			if got[p] != lab.ProcLabels[p] {
				t.Errorf("seed %d: proc %d learned %d, want %d", seed, p, got[p], lab.ProcLabels[p])
			}
		}
	}
}

func TestAlgorithm2Fig1TrivialConvergence(t *testing.T) {
	// Both processors share one similarity label; each learns that
	// (correct) label immediately — Algorithm 2 never terminates with a
	// wrong answer, and here it terminates with a shared one.
	s := system.Fig1()
	lab, err := core.Similarity(s, core.RuleQ)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := TopologyFromSystem(s, lab)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Algorithm2(topo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(s, system.InstrQ, prog)
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, m, 1, 50)
	got := learnedLabels(t, m, "label1")
	if got[0] != got[1] || got[0] != lab.ProcLabels[0] {
		t.Errorf("labels = %v, want both %d", got, lab.ProcLabels[0])
	}
}

func TestAlgorithm2MarkedRing(t *testing.T) {
	// A marked ring separates fully; every processor must learn its own
	// unique label by distributed alibi propagation.
	for _, n := range []int{3, 5, 6} {
		t.Run(fmt.Sprintf("ring%d", n), func(t *testing.T) {
			s, err := system.Ring(n)
			if err != nil {
				t.Fatal(err)
			}
			s.ProcInit[0] = "leader"
			lab, err := core.Similarity(s, core.RuleQ)
			if err != nil {
				t.Fatal(err)
			}
			topo, err := TopologyFromSystem(s, lab)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := Algorithm2(topo, Options{})
			if err != nil {
				t.Fatal(err)
			}
			m, err := machine.New(s, system.InstrQ, prog)
			if err != nil {
				t.Fatal(err)
			}
			runToCompletion(t, m, int64(n), 2000)
			got := learnedLabels(t, m, "label1")
			for p := range got {
				if got[p] != lab.ProcLabels[p] {
					t.Errorf("proc %d learned %d, want %d", p, got[p], lab.ProcLabels[p])
				}
			}
		})
	}
}

func TestAlgorithm2SelectWithElite(t *testing.T) {
	// SELECT(Σ): learn labels, then the processor holding the
	// designated unique label selects itself.
	s := system.Fig2()
	lab, err := core.Similarity(s, core.RuleQ)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := TopologyFromSystem(s, lab)
	if err != nil {
		t.Fatal(err)
	}
	elite := []int{lab.ProcLabels[2]} // p3 is uniquely labeled
	prog, err := Algorithm2(topo, Options{Elite: elite})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 8; seed++ {
		m, err := machine.New(s, system.InstrQ, prog)
		if err != nil {
			t.Fatal(err)
		}
		runToCompletion(t, m, seed, 500)
		sel := m.SelectedProcs()
		if len(sel) != 1 || sel[0] != 2 {
			t.Errorf("seed %d: selected = %v, want [2]", seed, sel)
		}
	}
}

func TestTopologyRejectsUnstableLabeling(t *testing.T) {
	s := system.Fig2()
	bad := &core.Labeling{
		Sys:        s,
		ProcLabels: []int{0, 0, 0}, // merges dissimilar p3
		VarLabels:  []int{0, 1, 2},
	}
	if _, err := TopologyFromSystem(s, bad); err == nil {
		t.Error("unstable labeling should be rejected")
	}
	wrongShape := &core.Labeling{Sys: s, ProcLabels: []int{0}, VarLabels: []int{0}}
	if _, err := TopologyFromSystem(s, wrongShape); err == nil {
		t.Error("mis-shaped labeling should be rejected")
	}
}

func TestAlgorithm3HomogeneousFamily(t *testing.T) {
	// A family of differently-marked rings: the same uniform program
	// must let every processor of every member learn its family label.
	base, err := system.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	memberA := base.Clone()
	memberA.ProcInit[0] = "M"
	memberB := base.Clone()
	memberB.ProcInit[0] = "M"
	memberB.ProcInit[2] = "M"
	fam, err := family.NewHomogeneous([]*system.System{memberA, memberB})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanAlgorithm3(fam)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := plan.Program(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, member := range fam.Members {
		for seed := int64(0); seed < 3; seed++ {
			m, err := machine.New(member, system.InstrQ, prog)
			if err != nil {
				t.Fatal(err)
			}
			runToCompletion(t, m, seed+int64(i)*100, 2000)
			got := learnedLabels(t, m, "label2")
			for p := range got {
				if got[p] != plan.MemberLabels[i][p] {
					t.Errorf("member %d seed %d: proc %d learned %d, want %d",
						i, seed, p, got[p], plan.MemberLabels[i][p])
				}
			}
		}
	}
}

func TestAlgorithm3DistinguishesMembers(t *testing.T) {
	// The family labels of the two members must differ somewhere —
	// otherwise the test above would be vacuous.
	base, err := system.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	memberA := base.Clone()
	memberA.ProcInit[0] = "M"
	memberB := base.Clone()
	memberB.ProcInit[0] = "M"
	memberB.ProcInit[2] = "M"
	fam, err := family.NewHomogeneous([]*system.System{memberA, memberB})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanAlgorithm3(fam)
	if err != nil {
		t.Fatal(err)
	}
	// p0 is marked in both members but its environment differs (one vs
	// two marks): family labels must differ.
	if plan.MemberLabels[0][0] == plan.MemberLabels[1][0] {
		t.Error("marked processor should get different family labels in the two members")
	}
}

func BenchmarkAlgorithm2MarkedRing(b *testing.B) {
	for _, n := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s, err := system.Ring(n)
			if err != nil {
				b.Fatal(err)
			}
			s.ProcInit[0] = "leader"
			lab, err := core.Similarity(s, core.RuleQ)
			if err != nil {
				b.Fatal(err)
			}
			topo, err := TopologyFromSystem(s, lab)
			if err != nil {
				b.Fatal(err)
			}
			prog, err := Algorithm2(topo, Options{})
			if err != nil {
				b.Fatal(err)
			}
			rr, err := sched.RoundRobin(n, 5000)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m, err := machine.New(s, system.InstrQ, prog)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.Run(rr); err != nil {
					b.Fatal(err)
				}
				if !m.AllHalted() {
					b.Fatal("did not converge")
				}
			}
		})
	}
}

func TestAlgorithm4DirectOnFig1(t *testing.T) {
	// Direct in-package exercise of the L pipeline: relabel by lock
	// race, lock-simulated posts, two phases, ELITE election.
	s := system.Fig1()
	plan, outcomes, err := PlanAlgorithm4(s, family.RelabelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 2 {
		t.Fatalf("outcomes = %d, want 2", len(outcomes))
	}
	if len(plan.MemberLabels) != 2 {
		t.Fatalf("versions = %d, want 2", len(plan.MemberLabels))
	}
	// ELITE: the label that is unique in both versions (rank-0 holder).
	elite := []int{plan.MemberLabels[0][0]}
	prog, err := plan.Program(Options{Elite: elite})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 6; seed++ {
		m, err := machine.New(s, system.InstrL, prog)
		if err != nil {
			t.Fatal(err)
		}
		runToCompletion(t, m, seed, 2000)
		sel := m.SelectedProcs()
		if len(sel) != 1 {
			t.Errorf("seed %d: selected %v", seed, sel)
		}
		// Every processor learned a phase-2 label.
		for p := 0; p < 2; p++ {
			if _, ok := m.Local(p, "label2"); !ok {
				t.Errorf("seed %d: proc %d has no label2", seed, p)
			}
		}
	}
}

func TestAlgorithm4Preconditions(t *testing.T) {
	bad := system.Fig1()
	bad.VarInit[0] = "7"
	if _, _, err := PlanAlgorithm4(bad, family.RelabelOptions{}); err == nil {
		t.Error("nonzero variable counter should be rejected")
	}
	dup := &system.System{
		Names:    []system.Name{"a", "b"},
		ProcIDs:  []string{"p"},
		VarIDs:   []string{"v"},
		Nbr:      [][]int{{0, 0}},
		ProcInit: []string{"0"},
		VarInit:  []string{"0"},
	}
	if err := ValidateRuntime(dup); err == nil {
		t.Error("duplicate name edges should be rejected")
	}
	if err := ValidateRuntime(system.Fig2()); err != nil {
		t.Errorf("Fig2 should pass runtime validation: %v", err)
	}
}

func TestRelabelStateStringMatchesFamily(t *testing.T) {
	// The local copy must stay in sync with family.RelabelState.
	if relabelStateString("x", []int{0, 2, 1}) != family.RelabelState("x", []int{0, 2, 1}) {
		t.Error("relabelStateString diverged from family.RelabelState")
	}
	if relabelStateString("", nil) != family.RelabelState("", nil) {
		t.Error("empty-case divergence")
	}
}

// TestCombineInitInjective pins the length-prefixed phase-2 state
// encoding: distinct (state, label) pairs must encode distinctly even
// when the state contains '@' or digit runs that mimic the frame.
func TestCombineInitInjective(t *testing.T) {
	states := []string{"", "a", "a@1", "1@a", "@", "a@", "0", "1", "2@a@1"}
	labels := []int{0, 1, 2, 10, 21}
	seen := make(map[string][2]string)
	for _, st := range states {
		for _, l := range labels {
			enc := CombineInit(st, l)
			id := [2]string{st, fmt.Sprint(l)}
			if prev, dup := seen[enc]; dup && prev != id {
				t.Errorf("collision: %v and %v both encode to %q", prev, id, enc)
			}
			seen[enc] = id
		}
	}
}
