package distlabel

import (
	"fmt"
	"sort"
	"strconv"

	"simsym/internal/canon"
	"simsym/internal/intset"
	"simsym/internal/machine"
	"simsym/internal/system"
)

// post is the value a processor posts to a shared variable: its current
// suspect set for its own label, the name it calls the variable, the
// phase (Algorithm 3 runs two phases over the same variables), and — in
// phase 2 — the final phase-1 label, so phase-1 laggards can still count
// the poster.
//
// Encoded as map[string]any for canonical fingerprints.
func postValue(suspects []int, name system.Name, phase int, label1 int) map[string]any {
	return map[string]any{
		"s":  append([]int(nil), suspects...),
		"n":  string(name),
		"ph": phase,
		"l1": label1,
	}
}

// parsedPost is a decoded post.
type parsedPost struct {
	suspects []int
	name     string
	phase    int
	label1   int
}

func parsePost(v any) (parsedPost, bool) {
	m, ok := v.(map[string]any)
	if !ok {
		return parsedPost{}, false
	}
	s, ok := m["s"].([]int)
	if !ok {
		return parsedPost{}, false
	}
	n, ok := m["n"].(string)
	if !ok {
		return parsedPost{}, false
	}
	ph, ok := m["ph"].(int)
	if !ok {
		return parsedPost{}, false
	}
	l1, ok := m["l1"].(int)
	if !ok {
		return parsedPost{}, false
	}
	return parsedPost{suspects: s, name: n, phase: ph, label1: l1}, true
}

// normalizeForPhase projects a post onto the given phase's suspect sets:
// phase-1 observers treat a phase-2 post as a resolved phase-1 singleton
// {l1}; phase-2 observers ignore phase-1 posts.
func normalizeForPhase(p parsedPost, phase int) ([]int, bool) {
	switch {
	case p.phase == phase:
		return p.suspects, true
	case phase == 1 && p.phase == 2:
		return []int{p.label1}, true
	default:
		return nil, false
	}
}

// vAlibi computes the set of variable labels ruled out by the posts seen
// in one peeked variable (the paper's v-alibi): β has an alibi when for
// some name m and some label set Lab, more posts (under name m, suspects
// within Lab) are present than a β-variable could have m-neighbors with
// labels in Lab. A processor always suspects its own label, so the count
// of such posts lower-bounds the number of Lab-labeled m-neighbors.
func vAlibi(topo *Topology, pr machine.PeekResult, phase int) []int {
	// Group normalized suspect sets by poster name.
	byName := make(map[string][][]int)
	for _, v := range pr.Values {
		p, ok := parsePost(v)
		if !ok {
			continue
		}
		s, ok := normalizeForPhase(p, phase)
		if !ok {
			continue
		}
		byName[p.name] = append(byName[p.name], s)
	}
	alibis := make(map[int]bool)
	for j, n := range topo.Names {
		sets := byName[string(n)]
		if len(sets) == 0 {
			continue
		}
		for _, lab := range candidateLabs(sets) {
			cnt := 0
			for _, s := range sets {
				if intset.Subset(s, lab) {
					cnt++
				}
			}
			for _, beta := range topo.VLabels {
				if alibis[beta] {
					continue
				}
				capacity := 0
				for _, alpha := range lab {
					capacity += topo.NSize(j, alpha, beta)
				}
				if cnt > capacity {
					alibis[beta] = true
				}
			}
		}
	}
	return intset.FromMap(alibis)
}

// candidateLabs returns the Lab sets tried by v-alibi: all unions of the
// distinct observed suspect sets when few, else the sets themselves plus
// the total union. The paper (footnote 2) notes only linearly many sets
// matter; unions of observed sets are exactly the ones that can beat a
// capacity bound.
func candidateLabs(sets [][]int) [][]int {
	distinct := make(map[string][]int)
	for _, s := range sets {
		distinct[fmt.Sprint(s)] = s
	}
	uniq := make([][]int, 0, len(distinct))
	for _, s := range distinct {
		uniq = append(uniq, s)
	}
	if len(uniq) <= 12 {
		// All unions of subsets, deduplicated.
		seen := make(map[string][]int)
		for mask := 1; mask < 1<<len(uniq); mask++ {
			var u []int
			for i := range uniq {
				if mask&(1<<i) != 0 {
					u = intset.Union(u, uniq[i])
				}
			}
			seen[fmt.Sprint(u)] = u
		}
		out := make([][]int, 0, len(seen))
		for _, u := range seen {
			out = append(out, u)
		}
		return out
	}
	var total []int
	for _, s := range uniq {
		total = intset.Union(total, s)
	}
	return append(uniq, total)
}

// pAlibi computes the processor labels ruled out for this processor
// (the paper's p-alibi). α has an alibi when, for some name n:
//
//   - α's n-neighbor label is no longer suspected for our n-variable, or
//   - we still do not know our own label, yet our n-variable already
//     contains as many resolved-{α} posts under name n as a true
//     α-processor's n-variable has α-neighbors — every α already knows,
//     so we cannot be one of them.
func pAlibi(topo *Topology, r *machine.Regs, ps *phaseSyms, phase int) []int {
	pec := r.Get(ps.pec).([]int)
	alibis := make(map[int]bool)
	for _, alpha := range topo.PLabels {
		for j, n := range topo.Names {
			beta, ok := topo.NbrLabel[[2]int{alpha, j}]
			if !ok {
				alibis[alpha] = true
				break
			}
			vec := r.Get(ps.vec[j]).([]int)
			if !intset.Contains(vec, beta) {
				alibis[alpha] = true
				break
			}
			if len(pec) > 1 {
				pr, ok := r.Get(ps.local[j]).(machine.PeekResult)
				if !ok {
					continue
				}
				cnt := 0
				for _, v := range pr.Values {
					p, ok := parsePost(v)
					if !ok || p.name != string(n) {
						continue
					}
					s, ok := normalizeForPhase(p, phase)
					if !ok {
						continue
					}
					if len(s) == 1 && s[0] == alpha {
						cnt++
					}
				}
				if cnt >= topo.NSize(j, alpha, beta) {
					alibis[alpha] = true
					break
				}
			}
		}
	}
	return intset.FromMap(alibis)
}

func keyPEC(phase int) string                     { return fmt.Sprintf("PEC%d", phase) }
func keyVEC(phase int, n system.Name) string      { return fmt.Sprintf("VEC%d_%s", phase, n) }
func keyLocal(phase int, n system.Name) string    { return fmt.Sprintf("local%d_%s", phase, n) }
func keyOut(phase int, n system.Name) string      { return fmt.Sprintf("out%d_%s", phase, n) }
func keyRank(n system.Name) string                { return fmt.Sprintf("rank_%s", n) }
func labelKey(phase int) string                   { return fmt.Sprintf("label%d", phase) }
func lbl(phase int, name string) string           { return fmt.Sprintf("p%d_%s", phase, name) }
func varLabelKey(phase int, n system.Name) string { return fmt.Sprintf("varlabel%d_%s", phase, n) }

// phaseSyms holds one phase's dynamically-named locals pre-interned to
// slots: the per-neighbor keys (VEC/local/out/varlabel, one per name in
// name-index order) plus the phase's scalar keys. Interning happens once
// at build time; the emitted closures capture these Syms and never touch
// a name at run time.
type phaseSyms struct {
	pec      machine.Sym
	label    machine.Sym
	done     machine.Sym
	selected machine.Sym
	vec      []machine.Sym // by name index
	local    []machine.Sym
	out      []machine.Sym
	varLabel []machine.Sym
}

func newPhaseSyms(b *machine.Builder, names []system.Name, phase int) *phaseSyms {
	ps := &phaseSyms{
		pec:      b.Sym(keyPEC(phase)),
		label:    b.Sym(labelKey(phase)),
		done:     b.Sym("done"),
		selected: b.Sym("selected"),
		vec:      make([]machine.Sym, len(names)),
		local:    make([]machine.Sym, len(names)),
		out:      make([]machine.Sym, len(names)),
		varLabel: make([]machine.Sym, len(names)),
	}
	for j, n := range names {
		ps.vec[j] = b.Sym(keyVEC(phase, n))
		ps.local[j] = b.Sym(keyLocal(phase, n))
		ps.out[j] = b.Sym(keyOut(phase, n))
		ps.varLabel[j] = b.Sym(varLabelKey(phase, n))
	}
	return ps
}

// Options configures program generation.
type Options struct {
	// Elite, when non-empty, makes the program set selected=true on the
	// processor whose final label is in Elite (the paper's SELECT).
	Elite []int
	// RequireVarResolution keeps the loop running until every VEC is a
	// singleton too (needed by Algorithm 3's first phase, which exists
	// to learn variable structure).
	RequireVarResolution bool
}

// gen emits program fragments with unique labels per call site, switching
// between native Q access (peek/post) and the L simulation (lock-guarded
// read-modify-write on a rank-keyed map, available after relabel).
type gen struct {
	b    *machine.Builder
	mode system.InstrSet // InstrQ or InstrL
	site int
	// Scratch slots for the L-mode spin-lock simulation, interned once.
	sG, sRaw, sW, sCnt, sCnt2 machine.Sym
}

func newGen(b *machine.Builder, mode system.InstrSet) *gen {
	return &gen{
		b:     b,
		mode:  mode,
		sG:    b.Sym("_g"),
		sRaw:  b.Sym("_raw"),
		sW:    b.Sym("_w"),
		sCnt:  b.Sym("_cnt"),
		sCnt2: b.Sym("_cnt2"),
	}
}

func (g *gen) fresh(prefix string) string {
	g.site++
	return fmt.Sprintf("%s_%d", prefix, g.site)
}

// emitPeek loads the multiset state of the variable called n into dst as
// a machine.PeekResult.
//
// In L mode the variable's value is a map rank→post maintained by
// emitPost; the peek locks, reads, and unlocks. The Init field is left
// empty in L mode: Algorithm 3 never consults variable initial states
// (that is the whole point of its structure-only first phase), which is
// what makes the simulation sound.
func (g *gen) emitPeek(n system.Name, dst string) {
	if g.mode == system.InstrQ {
		g.b.Peek(n, dst)
		return
	}
	retry := g.fresh("peek_retry")
	gS, rawS, dstS := g.sG, g.sRaw, g.b.Sym(dst)
	g.b.Label(retry)
	g.b.Lock(n, "_g")
	g.b.JumpIf(func(r *machine.Regs) bool { return r.Get(gS) != true }, retry)
	g.b.Read(n, "_raw")
	g.b.Unlock(n)
	g.b.Compute(func(r *machine.Regs) {
		r.Set(dstS, mapToPeekResult(r.Get(rawS)))
	})
}

// emitPost publishes the value of local src to the variable called n.
// In L mode the processor's slot in the variable's map is keyed by its
// relabel rank on that variable, which relabel made unique among the
// variable's users.
func (g *gen) emitPost(n system.Name, src string) {
	if g.mode == system.InstrQ {
		g.b.Post(n, src)
		return
	}
	retry := g.fresh("post_retry")
	gS, rawS, wS := g.sG, g.sRaw, g.sW
	rankS, srcS := g.b.Sym(keyRank(n)), g.b.Sym(src)
	g.b.Label(retry)
	g.b.Lock(n, "_g")
	g.b.JumpIf(func(r *machine.Regs) bool { return r.Get(gS) != true }, retry)
	g.b.Read(n, "_raw")
	g.b.Compute(func(r *machine.Regs) {
		next := normalizeVarContent(r.Get(rawS))
		rank, _ := r.Get(rankS).(int)
		next["r"+strconv.Itoa(rank)] = r.Get(srcS)
		r.Set(wS, next)
	})
	g.b.Write(n, "_w")
	g.b.Unlock(n)
}

// cntKey is the reserved slot in an L-simulated variable's map holding
// the relabel counter. Posts use "r<rank>" keys; keeping the counter in
// the same map means posting never clobbers the counter a still-
// relabeling processor is about to read.
const cntKey = "#cnt"

// normalizeVarContent converts whatever a variable currently holds into
// the map convention, preserving the counter: a fresh variable holds its
// initial string value, which is its counter.
func normalizeVarContent(raw any) map[string]any {
	if content, ok := raw.(map[string]any); ok {
		next := make(map[string]any, len(content)+1)
		for k, v := range content {
			next[k] = v
		}
		return next
	}
	next := make(map[string]any, 2)
	if s, ok := raw.(string); ok {
		next[cntKey] = s
	}
	return next
}

// mapToPeekResult converts the L-simulated variable content to the
// PeekResult shape Algorithm 2 consumes, dropping the counter slot.
func mapToPeekResult(raw any) machine.PeekResult {
	content, _ := raw.(map[string]any)
	vals := make([]any, 0, len(content))
	for k, v := range content {
		if k == cntKey {
			continue
		}
		vals = append(vals, v)
	}
	sort.Slice(vals, func(a, b int) bool {
		return canon.String(vals[a]) < canon.String(vals[b])
	})
	return machine.PeekResult{Values: vals}
}

// emitRelabel emits the paper's relabel(k) subroutine (section 5): for
// each name in order, spin-lock the variable, read its counter, write
// counter+1, unlock, and remember the read value as this processor's rank
// on that variable. Afterwards the processor's local "init" becomes its
// post-relabel state (original init plus rank vector) — a member of the
// homogeneous family R.
func emitRelabel(g *gen, names []system.Name) {
	rankSyms := make([]machine.Sym, len(names))
	for j, n := range names {
		rankSyms[j] = g.b.Sym(keyRank(n))
	}
	for j, n := range names {
		retry := g.fresh("relabel_retry")
		gS, cntS, cnt2S, rankS := g.sG, g.sCnt, g.sCnt2, rankSyms[j]
		g.b.Label(retry)
		g.b.Lock(n, "_g")
		g.b.JumpIf(func(r *machine.Regs) bool { return r.Get(gS) != true }, retry)
		g.b.Read(n, "_cnt")
		g.b.Compute(func(r *machine.Regs) {
			next := normalizeVarContent(r.Get(cntS))
			cnt := 0
			if s, ok := next[cntKey].(string); ok {
				if v, err := strconv.Atoi(s); err == nil {
					cnt = v
				}
			}
			r.Set(rankS, cnt)
			next[cntKey] = strconv.Itoa(cnt + 1)
			r.Set(cnt2S, next)
		})
		g.b.Write(n, "_cnt2")
		g.b.Unlock(n)
	}
	g.b.Compute(func(r *machine.Regs) {
		ranks := make([]int, len(rankSyms))
		for i, s := range rankSyms {
			ranks[i], _ = r.Get(s).(int)
		}
		orig, _ := r.Get(machine.SymInit).(string)
		r.Set(machine.SymInit, relabelStateString(orig, ranks))
	})
}

// relabelStateString mirrors family.RelabelState (kept in sync by a
// cross-package test) without importing the package, avoiding an import
// cycle distlabel -> family -> distlabel in future layers. Like the
// original it length-prefixes the pre-relabel state so separator bytes
// in it cannot cause collisions.
func relabelStateString(orig string, ranks []int) string {
	out := strconv.Itoa(len(orig)) + "|" + orig
	for _, r := range ranks {
		out += "," + strconv.Itoa(r)
	}
	return out
}

// Algorithm2 generates the distributed label-learning program for a
// system (or family) whose label structure is topo, in native Q. Each
// processor ends with its similarity label in local "label1" and halts.
func Algorithm2(topo *Topology, opts Options) (*machine.Program, error) {
	b := machine.NewBuilder()
	g := newGen(b, system.InstrQ)
	ps := newPhaseSyms(b, topo.Names, 1)
	emitPhase(g, topo, 1, opts, ps, phaseInit{
		initPEC: func(r *machine.Regs) []int {
			init, _ := r.Get(machine.SymInit).(string)
			var pec []int
			for _, alpha := range topo.PLabels {
				if topo.InitOfProc[alpha] == init {
					pec = append(pec, alpha)
				}
			}
			return intset.Of(pec...)
		},
		initVEC: func(r *machine.Regs, j int) []int {
			pr, _ := r.Get(ps.local[j]).(machine.PeekResult)
			var vec []int
			for _, beta := range topo.VLabels {
				if topo.InitOfVar[beta] == pr.Init {
					vec = append(vec, beta)
				}
			}
			return intset.Of(vec...)
		},
	}, "end")
	b.Label("end")
	b.Halt()
	return b.Build()
}

// phaseInit supplies the suspect-set initializers for a phase. The
// closures receive the register view plus (for VEC) the name index; the
// phase's own slots are reachable through the phaseSyms the caller built.
type phaseInit struct {
	initPEC func(r *machine.Regs) []int
	initVEC func(r *machine.Regs, j int) []int
}

// emitPhase generates one full Algorithm 2 phase: initialization, an
// initial post of the starting suspects, the peek/alibi/post loop, and a
// resolution block that stores the learned label (and per-variable labels
// when resolved) and optionally selects.
func emitPhase(g *gen, topo *Topology, phase int, opts Options, ps *phaseSyms, init phaseInit, next string) {
	b := g.b
	names := topo.Names

	// Initialization: peek every variable (for its initial state), then
	// form the starting suspect sets.
	for _, n := range names {
		g.emitPeek(n, keyLocal(phase, n))
	}
	b.Compute(func(r *machine.Regs) {
		r.Set(ps.pec, init.initPEC(r))
		for j := range names {
			r.Set(ps.vec[j], init.initVEC(r, j))
		}
	})
	// Initial post: make the starting suspects visible even if we
	// already know our label (neighbors may need our resolved post).
	emitPosts(g, topo, phase, ps)

	b.Label(lbl(phase, "loop"))
	b.JumpIf(func(r *machine.Regs) bool {
		if len(r.Get(ps.pec).([]int)) > 1 {
			return false
		}
		if opts.RequireVarResolution {
			for j := range names {
				if len(r.Get(ps.vec[j]).([]int)) > 1 {
					return false
				}
			}
		}
		return true
	}, lbl(phase, "done"))

	for _, n := range names {
		g.emitPeek(n, keyLocal(phase, n))
	}
	b.Compute(func(r *machine.Regs) {
		for j := range names {
			pr, ok := r.Get(ps.local[j]).(machine.PeekResult)
			if !ok {
				continue
			}
			vec := r.Get(ps.vec[j]).([]int)
			r.Set(ps.vec[j], intset.Diff(vec, vAlibi(topo, pr, phase)))
		}
	})
	b.Compute(func(r *machine.Regs) {
		pec := r.Get(ps.pec).([]int)
		r.Set(ps.pec, intset.Diff(pec, pAlibi(topo, r, ps, phase)))
	})
	emitPosts(g, topo, phase, ps)
	b.Jump(lbl(phase, "loop"))

	b.Label(lbl(phase, "done"))
	b.Compute(func(r *machine.Regs) {
		pec := r.Get(ps.pec).([]int)
		if len(pec) == 1 {
			r.Set(ps.label, pec[0])
		}
		for j := range names {
			vec := r.Get(ps.vec[j]).([]int)
			if len(vec) == 1 {
				r.Set(ps.varLabel[j], vec[0])
			}
		}
		r.Set(ps.done, true)
		if len(opts.Elite) > 0 && len(pec) == 1 && intset.Contains(opts.Elite, pec[0]) {
			r.Set(ps.selected, true)
		}
	})
	// One final post so neighbors see our resolved state.
	emitPosts(g, topo, phase, ps)
	b.Jump(next)
}

func emitPosts(g *gen, topo *Topology, phase int, ps *phaseSyms) {
	// Phase-2 posts carry the phase-1 label so laggards can count
	// resolved posters; interning labelKey(1) here is idempotent.
	label1 := g.b.Sym(labelKey(1))
	for j, n := range topo.Names {
		n := n
		outS := ps.out[j]
		g.b.Compute(func(r *machine.Regs) {
			l1 := -1
			if v, ok := r.Get(label1).(int); ok {
				l1 = v
			}
			r.Set(outS, postValue(r.Get(ps.pec).([]int), n, phase, l1))
		})
		g.emitPost(n, keyOut(phase, n))
	}
}
