package distlabel

import (
	"fmt"

	"simsym/internal/core"
	"simsym/internal/family"
	"simsym/internal/machine"
	"simsym/internal/system"
)

// Algorithm 3 (section 5): find a processor's label within a homogeneous
// family in Q, where members differ only in initial states and the union
// is disconnected (so Theorem 6's connectivity escape hatch is
// unavailable). Phase 1 runs Algorithm 2 with all initial states ignored;
// since family members differ only in initial state, phase 1 behaves
// identically on every member and resolves the topology-only labeling —
// in particular each variable's structural label (hence its number of
// neighbors). Phase 2 re-runs Algorithm 2 with those structural labels
// folded into the initial states.
//
// Algorithm 4 (section 5) composes relabel with Algorithm 3 to solve
// selection in L: relabel turns the L system into one member of a
// homogeneous family (which member depends on the lock races), and
// Algorithm 3 — with peek/post simulated by lock-guarded read-modify-
// write — lets every processor learn its label in the family labeling.

// CombineInit encodes a processor's phase-2 initial state: its real
// initial state plus its phase-1 (structure-only) label. The real state
// is length-prefixed so one containing '@' cannot shift the frame and
// collide with a different (state, label) pair.
func CombineInit(orig string, label1 int) string {
	return fmt.Sprintf("%d@%s@%d", len(orig), orig, label1)
}

// Uniformize returns a copy of sys with all initial states erased —
// "ignoring the initial state", the paper's phase-1 precondition.
func Uniformize(sys *system.System) *system.System {
	out := sys.Clone()
	for p := range out.ProcInit {
		out.ProcInit[p] = ""
	}
	for v := range out.VarInit {
		out.VarInit[v] = ""
	}
	return out
}

// Phase2System builds the phase-2 reference system for one member: the
// member's topology with phase-1 labels folded into the initial states.
func Phase2System(sys *system.System, lab1 *core.Labeling) (*system.System, error) {
	if len(lab1.ProcLabels) != sys.NumProcs() || len(lab1.VarLabels) != sys.NumVars() {
		return nil, ErrShape
	}
	out := sys.Clone()
	for p := range out.ProcInit {
		out.ProcInit[p] = CombineInit(sys.ProcInit[p], lab1.ProcLabels[p])
	}
	for v := range out.VarInit {
		out.VarInit[v] = fmt.Sprintf("%d", lab1.VarLabels[v])
	}
	return out, nil
}

// Plan3 is a compiled Algorithm 3: the two topologies plus the ability to
// generate the program. MemberLabels maps each family member's processors
// to the phase-2 (family) labels the program will learn.
type Plan3 struct {
	Topo1 *Topology
	Topo2 *Topology
	// MemberLabels[i][p] is the family label processor p of member i
	// learns.
	MemberLabels [][]int
	// mode is InstrQ for Algorithm 3 proper, InstrL for Algorithm 4.
	mode    system.InstrSet
	relabel bool
}

// Program generates the uniform program for this plan with the given
// options (typically an Elite set for selection).
func (p *Plan3) Program(opts Options) (*machine.Program, error) {
	b := machine.NewBuilder()
	g := newGen(b, p.mode)
	if p.relabel {
		emitRelabel(g, p.Topo1.Names)
	}
	// Phase 1 ignores initial states: every processor starts suspecting
	// every phase-1 label, every variable every phase-1 variable label.
	// It must resolve variables too — that is its purpose.
	topo1, topo2 := p.Topo1, p.Topo2
	ps1 := newPhaseSyms(b, topo1.Names, 1)
	emitPhase(g, topo1, 1, Options{RequireVarResolution: true}, ps1, phaseInit{
		initPEC: func(r *machine.Regs) []int {
			return append([]int(nil), topo1.PLabels...)
		},
		initVEC: func(r *machine.Regs, j int) []int {
			return append([]int(nil), topo1.VLabels...)
		},
	}, "phase2")

	b.Label("phase2")
	ps2 := newPhaseSyms(b, topo2.Names, 2)
	emitPhase(g, topo2, 2, opts, ps2, phaseInit{
		initPEC: func(r *machine.Regs) []int {
			init, _ := r.Get(machine.SymInit).(string)
			l1, _ := r.Get(ps1.label).(int)
			combined := CombineInit(init, l1)
			var pec []int
			for _, alpha := range topo2.PLabels {
				if topo2.InitOfProc[alpha] == combined {
					pec = append(pec, alpha)
				}
			}
			return pec
		},
		initVEC: func(r *machine.Regs, j int) []int {
			vl1, ok := r.Get(ps1.varLabel[j]).(int)
			if !ok {
				return append([]int(nil), topo2.VLabels...)
			}
			want := fmt.Sprintf("%d", vl1)
			var vec []int
			for _, beta := range topo2.VLabels {
				if topo2.InitOfVar[beta] == want {
					vec = append(vec, beta)
				}
			}
			return vec
		},
	}, "end")
	b.Label("end")
	b.Halt()
	return b.Build()
}

// PlanAlgorithm3 compiles Algorithm 3 for a homogeneous family in Q.
func PlanAlgorithm3(fam *family.Family) (*Plan3, error) {
	plan, err := planPhases(fam)
	if err != nil {
		return nil, err
	}
	plan.mode = system.InstrQ
	return plan, nil
}

// PlanAlgorithm4 compiles Algorithm 4 for a system in L: relabel followed
// by Algorithm 3 over the homogeneous family of relabel outcomes, with Q
// access simulated through locks. MemberLabels then enumerates the
// paper's VERSIONS (one per relabel outcome, in one shared label space),
// which is what the Theorem 9 ELITE construction consumes.
//
// The outcomes are returned alongside so callers can correlate
// MemberLabels[i] with outcome i.
func PlanAlgorithm4(sys *system.System, relOpts family.RelabelOptions) (*Plan3, []*system.System, error) {
	if err := ValidateRuntime(sys); err != nil {
		return nil, nil, err
	}
	for v := range sys.VarInit {
		if sys.VarInit[v] != "0" {
			return nil, nil, fmt.Errorf("%w: relabel requires variable counters initialized to %q (var %d has %q)",
				ErrShape, "0", v, sys.VarInit[v])
		}
	}
	outcomes, err := family.RelabelOutcomes(sys, relOpts)
	if err != nil {
		return nil, nil, err
	}
	fam, err := family.NewHomogeneous(outcomes)
	if err != nil {
		return nil, nil, err
	}
	plan, err := planPhases(fam)
	if err != nil {
		return nil, nil, err
	}
	plan.mode = system.InstrL
	plan.relabel = true
	return plan, outcomes, nil
}

func planPhases(fam *family.Family) (*Plan3, error) {
	if len(fam.Members) == 0 {
		return nil, family.ErrEmpty
	}
	// Phase 1: all members uniformize to the same system; its own
	// labeling is the structural labeling.
	unif := Uniformize(fam.Members[0])
	lab1, err := core.Similarity(unif, core.RuleQ)
	if err != nil {
		return nil, fmt.Errorf("distlabel: phase-1 labeling: %w", err)
	}
	topo1, err := TopologyFromSystem(unif, lab1)
	if err != nil {
		return nil, fmt.Errorf("distlabel: phase-1 topology: %w", err)
	}
	// Phase 2: members with structural labels folded into inits.
	members2 := make([]*system.System, len(fam.Members))
	for i, m := range fam.Members {
		members2[i], err = Phase2System(m, lab1)
		if err != nil {
			return nil, fmt.Errorf("distlabel: member %d: %w", i, err)
		}
	}
	fam2, err := family.NewHomogeneous(members2)
	if err != nil {
		return nil, fmt.Errorf("distlabel: phase-2 family: %w", err)
	}
	labs2, err := fam2.Labeling(core.RuleQ)
	if err != nil {
		return nil, fmt.Errorf("distlabel: phase-2 labeling: %w", err)
	}
	topo2, err := TopologyFromFamily(fam2, labs2)
	if err != nil {
		return nil, fmt.Errorf("distlabel: phase-2 topology: %w", err)
	}
	memberLabels := make([][]int, len(labs2))
	for i, ml := range labs2 {
		memberLabels[i] = append([]int(nil), ml.ProcLabels...)
	}
	return &Plan3{Topo1: topo1, Topo2: topo2, MemberLabels: memberLabels}, nil
}

// AllResolved reports whether every processor that has not crashed has
// halted with the given label local set — the convergence predicate for
// the labeling programs under streaming adversary harnesses ("label1"
// for Algorithm 2, "label2" for Algorithms 3 and 4).
func AllResolved(m *machine.Machine, local string) bool {
	for p := 0; p < m.NumProcs(); p++ {
		if m.Crashed(p) {
			continue
		}
		if !m.Halted(p) {
			return false
		}
		if _, ok := m.Local(p, local); !ok {
			return false
		}
	}
	return true
}
