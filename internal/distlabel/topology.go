// Package distlabel implements the paper's Algorithm 2 — the distributed
// program by which each processor learns its own similarity label — and
// Algorithm 3, its two-phase extension for homogeneous families.
//
// Algorithm 2 is generated per system (the paper: "This algorithm is
// specific for the system Σ, but can be generated automatically from the
// bipartite graph specification"). The generated program is uniform: all
// processors run the same instruction list; what is baked in is only
// system-wide knowledge — PLABELS, VLABELS, initial states per label, the
// n-nbr function on labels, and neighborhood_size — never per-processor
// identity.
//
// Processors keep suspect sets: PEC for their own label, VEC[n] for each
// named variable's label. Alibis — facts ruling labels out — flow through
// the shared variables: v-alibi rules out variable labels whose neighbor
// structure cannot explain the posts observed in a variable, and p-alibi
// rules out processor labels whose n-neighbor is already ruled out or all
// of whose holders demonstrably already know their label.
package distlabel

import (
	"errors"
	"fmt"

	"simsym/internal/core"
	"simsym/internal/family"
	"simsym/internal/system"
)

// Sentinel errors.
var (
	ErrUnstable = errors.New("distlabel: labeling is not stable (not a similarity labeling)")
	ErrShape    = errors.New("distlabel: labeling does not match system")
	ErrDupEdges = errors.New("distlabel: processor names one variable twice (unsupported by the generated programs)")
)

// ValidateRuntime checks the restrictions of the generated distributed
// programs (Algorithms 2, 2-S, 3, 4): no processor may reach the same
// variable through two names. The labeling and decision machinery
// handles such systems fine; the runtime does not, because a processor's
// single subvalue (or written cell) cannot carry two name tags at once.
func ValidateRuntime(sys *system.System) error {
	for p := range sys.Nbr {
		seen := make(map[int]bool, len(sys.Nbr[p]))
		for _, v := range sys.Nbr[p] {
			if seen[v] {
				return fmt.Errorf("%w: processor %d", ErrDupEdges, p)
			}
			seen[v] = true
		}
	}
	return nil
}

// Topology is the compile-time knowledge baked into Algorithm 2: the
// label alphabet and the label-level structure of the system (or family
// union).
type Topology struct {
	// Names is the NAMES list in order.
	Names []system.Name
	// PLabels and VLabels are the sorted label alphabets.
	PLabels []int
	VLabels []int
	// InitOfProc / InitOfVar give each label's initial state (well
	// defined because similarity labelings are stable).
	InitOfProc map[int]string
	InitOfVar  map[int]string
	// NbrLabel maps (procLabel, nameIdx) to the label of the n-neighbor.
	NbrLabel map[[2]int]int
	// NeighborhoodSize maps (nameIdx, procLabel, varLabel) to the number
	// of n-edges from procLabel-processors incident on one
	// varLabel-variable (the paper's neighborhood_size(n, α, β)).
	NeighborhoodSize map[[3]int]int
}

// NSize returns neighborhood_size(n, α, β) (0 when absent).
func (t *Topology) NSize(nameIdx, procLabel, varLabel int) int {
	return t.NeighborhoodSize[[3]int{nameIdx, procLabel, varLabel}]
}

// TopologyFromSystem builds the Topology of a single system under its
// similarity labeling.
func TopologyFromSystem(sys *system.System, lab *core.Labeling) (*Topology, error) {
	if len(lab.ProcLabels) != sys.NumProcs() || len(lab.VarLabels) != sys.NumVars() {
		return nil, ErrShape
	}
	return buildTopology([]*system.System{sys}, [][]int{lab.ProcLabels}, [][]int{lab.VarLabels})
}

// TopologyFromFamily builds the Topology of a family under its shared
// (union) labeling.
func TopologyFromFamily(fam *family.Family, labs []*family.MemberLabeling) (*Topology, error) {
	if len(labs) != len(fam.Members) {
		return nil, ErrShape
	}
	procLabels := make([][]int, len(labs))
	varLabels := make([][]int, len(labs))
	for i, ml := range labs {
		if len(ml.ProcLabels) != fam.Members[i].NumProcs() || len(ml.VarLabels) != fam.Members[i].NumVars() {
			return nil, ErrShape
		}
		procLabels[i] = ml.ProcLabels
		varLabels[i] = ml.VarLabels
	}
	return buildTopology(fam.Members, procLabels, varLabels)
}

func buildTopology(members []*system.System, procLabels, varLabels [][]int) (*Topology, error) {
	t := &Topology{
		Names:            append([]system.Name(nil), members[0].Names...),
		InitOfProc:       make(map[int]string),
		InitOfVar:        make(map[int]string),
		NbrLabel:         make(map[[2]int]int),
		NeighborhoodSize: make(map[[3]int]int),
	}
	pSeen := make(map[int]bool)
	vSeen := make(map[int]bool)
	// Per-variable neighborhood counts, then checked for consistency
	// across same-labeled variables.
	type varKey struct{ member, v int }
	perVar := make(map[varKey]map[[2]int]int)

	for mi, sys := range members {
		for p := 0; p < sys.NumProcs(); p++ {
			pl := procLabels[mi][p]
			if !pSeen[pl] {
				pSeen[pl] = true
				t.PLabels = append(t.PLabels, pl)
				t.InitOfProc[pl] = sys.ProcInit[p]
			} else if t.InitOfProc[pl] != sys.ProcInit[p] {
				return nil, fmt.Errorf("%w: processor label %d has inits %q and %q",
					ErrUnstable, pl, t.InitOfProc[pl], sys.ProcInit[p])
			}
			for j, v := range sys.Nbr[p] {
				vl := varLabels[mi][v]
				key := [2]int{pl, j}
				if prev, ok := t.NbrLabel[key]; ok {
					if prev != vl {
						return nil, fmt.Errorf("%w: label %d's %s-neighbor labeled both %d and %d",
							ErrUnstable, pl, sys.Names[j], prev, vl)
					}
				} else {
					t.NbrLabel[key] = vl
				}
				vk := varKey{mi, v}
				if perVar[vk] == nil {
					perVar[vk] = make(map[[2]int]int)
				}
				perVar[vk][[2]int{j, pl}]++
			}
		}
		for v := 0; v < sys.NumVars(); v++ {
			vl := varLabels[mi][v]
			if !vSeen[vl] {
				vSeen[vl] = true
				t.VLabels = append(t.VLabels, vl)
				t.InitOfVar[vl] = sys.VarInit[v]
			} else if t.InitOfVar[vl] != sys.VarInit[v] {
				return nil, fmt.Errorf("%w: variable label %d has inits %q and %q",
					ErrUnstable, vl, t.InitOfVar[vl], sys.VarInit[v])
			}
		}
	}
	// Fill NeighborhoodSize and check same-labeled variables agree.
	filled := make(map[int]map[[2]int]int) // varLabel -> counts
	for mi, sys := range members {
		for v := 0; v < sys.NumVars(); v++ {
			vl := varLabels[mi][v]
			counts := perVar[varKey{mi, v}]
			if prev, ok := filled[vl]; ok {
				if !sameCounts(prev, counts) {
					return nil, fmt.Errorf("%w: variables labeled %d have different neighborhoods",
						ErrUnstable, vl)
				}
				continue
			}
			filled[vl] = counts
			for k, c := range counts {
				t.NeighborhoodSize[[3]int{k[0], k[1], vl}] = c
			}
		}
	}
	sortInts(t.PLabels)
	sortInts(t.VLabels)
	return t, nil
}

func sameCounts(a, b map[[2]int]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
