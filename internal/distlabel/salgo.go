package distlabel

import (
	"fmt"

	"simsym/internal/canon"
	"simsym/internal/intset"
	"simsym/internal/machine"
	"simsym/internal/system"
)

// Algorithm 2-S: the paper's section 6 remark made concrete — "The
// distributed algorithm for finding similarity labels [in S] is nearly
// the same as the one given above for Q, and it too can be used as the
// basis for a selection algorithm."
//
// Differences from the Q version, exactly mirroring the set-based
// environment rule:
//
//   - Variables hold one value; posts overwrite. Processors therefore
//     accumulate the SET of posts they have observed in each named
//     variable over time, and alibis are computed against that set.
//   - v-alibi is membership-based: an observed post under name m whose
//     suspect set is disjoint from the labels that can m-write a
//     β-variable rules β out. No counting is available.
//   - p-alibi keeps only its structural half (my n-variable can no
//     longer be α's n-neighbor); the "everyone else already knows"
//     count is a Q-only device.
//   - A variable's initial state can be overwritten before a processor
//     reads it, so the first writer records the initial value it saw in
//     its posts and later processors adopt it from there.
//
// Convergence is exercised under shuffled fair rounds; a k-bounded
// adversary could systematically shadow one writer's posts with
// another's, which the paper's unspecified S algorithm would need a
// synchronization subprotocol to defeat (documented in DESIGN.md).

// sPost builds the value written to a shared S variable.
func sPost(suspects []int, name system.Name, vinit string) map[string]any {
	return map[string]any{
		"s":  append([]int(nil), suspects...),
		"n":  string(name),
		"vi": vinit,
	}
}

type sParsed struct {
	suspects []int
	name     string
	vinit    string
}

func parseSPost(v any) (sParsed, bool) {
	m, ok := v.(map[string]any)
	if !ok {
		return sParsed{}, false
	}
	s, ok := m["s"].([]int)
	if !ok {
		return sParsed{}, false
	}
	n, ok := m["n"].(string)
	if !ok {
		return sParsed{}, false
	}
	vi, ok := m["vi"].(string)
	if !ok {
		return sParsed{}, false
	}
	return sParsed{suspects: s, name: n, vinit: vi}, true
}

// canMWrite reports whether a processor labeled alpha has an m-edge to a
// variable labeled beta.
func (t *Topology) canMWrite(mIdx, alpha, beta int) bool {
	return t.NSize(mIdx, alpha, beta) > 0
}

// sVAlibi rules out variable labels for one named variable, from the set
// of posts observed in it: β is impossible if some observed post (m, S)
// has no label in S that can m-write a β-variable — the poster certainly
// has SOME label in S, and whatever it is, it m-writes this variable.
func sVAlibi(topo *Topology, seen []any) []int {
	alibis := make(map[int]bool)
	for _, raw := range seen {
		p, ok := parseSPost(raw)
		if !ok {
			continue
		}
		mIdx := -1
		for j, n := range topo.Names {
			if string(n) == p.name {
				mIdx = j
			}
		}
		if mIdx < 0 {
			continue
		}
		for _, beta := range topo.VLabels {
			if alibis[beta] {
				continue
			}
			compatible := false
			for _, alpha := range p.suspects {
				if topo.canMWrite(mIdx, alpha, beta) {
					compatible = true
					break
				}
			}
			if !compatible {
				alibis[beta] = true
			}
		}
	}
	return intset.FromMap(alibis)
}

// sPAlibi keeps the structural half of p-alibi: α is ruled out when, for
// some name n, α's n-neighbor label is no longer suspected for our
// n-variable.
func sPAlibi(topo *Topology, r *machine.Regs, ss *sSyms) []int {
	alibis := make(map[int]bool)
	for _, alpha := range topo.PLabels {
		for j := range topo.Names {
			beta, ok := topo.NbrLabel[[2]int{alpha, j}]
			if !ok {
				alibis[alpha] = true
				break
			}
			vec, _ := r.Get(ss.vec[j]).([]int)
			if vec != nil && !intset.Contains(vec, beta) {
				alibis[alpha] = true
				break
			}
		}
	}
	return intset.FromMap(alibis)
}

func sKeyVEC(n system.Name) string   { return fmt.Sprintf("sVEC_%s", n) }
func sKeySeen(n system.Name) string  { return fmt.Sprintf("sSeen_%s", n) }
func sKeyVinit(n system.Name) string { return fmt.Sprintf("sVinit_%s", n) }
func sKeyOut(n system.Name) string   { return fmt.Sprintf("sOut_%s", n) }
func sKeyRaw(n system.Name) string   { return fmt.Sprintf("sRaw_%s", n) }

// sSyms pre-interns Algorithm 2-S's dynamically-named locals (one set per
// name, in name-index order) plus its scalar slots.
type sSyms struct {
	pec      machine.Sym
	label    machine.Sym
	done     machine.Sym
	selected machine.Sym
	vec      []machine.Sym
	seen     []machine.Sym
	vinit    []machine.Sym
	out      []machine.Sym
	raw      []machine.Sym
}

func newSSyms(b *machine.Builder, names []system.Name) *sSyms {
	ss := &sSyms{
		pec:      b.Sym("PEC1"),
		label:    b.Sym("label1"),
		done:     b.Sym("done"),
		selected: b.Sym("selected"),
		vec:      make([]machine.Sym, len(names)),
		seen:     make([]machine.Sym, len(names)),
		vinit:    make([]machine.Sym, len(names)),
		out:      make([]machine.Sym, len(names)),
		raw:      make([]machine.Sym, len(names)),
	}
	for j, n := range names {
		ss.vec[j] = b.Sym(sKeyVEC(n))
		ss.seen[j] = b.Sym(sKeySeen(n))
		ss.vinit[j] = b.Sym(sKeyVinit(n))
		ss.out[j] = b.Sym(sKeyOut(n))
		ss.raw[j] = b.Sym(sKeyRaw(n))
	}
	return ss
}

// Algorithm2S generates the S-instruction-set label-learning program for
// a system whose set-rule similarity structure is topo (build it with
// TopologyFromSystem over the RuleSetS labeling). Processors end with
// their label in local "label1"; opts.Elite selects as usual.
func Algorithm2S(topo *Topology, opts Options) (*machine.Program, error) {
	b := machine.NewBuilder()
	names := topo.Names
	ss := newSSyms(b, names)

	// Initial reads: capture variable initial states where still
	// visible; otherwise they arrive later through posts.
	for _, n := range names {
		b.Read(n, sKeyRaw(n))
	}
	b.Compute(func(r *machine.Regs) {
		init, _ := r.Get(machine.SymInit).(string)
		var pec []int
		for _, alpha := range topo.PLabels {
			if topo.InitOfProc[alpha] == init {
				pec = append(pec, alpha)
			}
		}
		r.Set(ss.pec, intset.Of(pec...))
		for j := range names {
			if raw, ok := r.Get(ss.raw[j]).(string); ok {
				r.Set(ss.vinit[j], raw)
			}
			r.Set(ss.seen[j], []any{})
			r.Set(ss.vec[j], append([]int(nil), topo.VLabels...))
		}
	})

	b.Label("loop")
	b.JumpIf(func(r *machine.Regs) bool {
		return len(r.Get(ss.pec).([]int)) == 1
	}, "done")
	emitSRound(b, topo, ss)
	b.Jump("loop")

	b.Label("done")
	b.Compute(func(r *machine.Regs) {
		pec := r.Get(ss.pec).([]int)
		if len(pec) == 1 {
			r.Set(ss.label, pec[0])
			if len(opts.Elite) > 0 && intset.Contains(opts.Elite, pec[0]) {
				r.Set(ss.selected, true)
			}
		}
		r.Set(ss.done, true)
	})
	// Perpetual refresh: in S a post lives only until the next write to
	// the variable, so a processor that stopped writing could have its
	// resolved post shadowed forever by a still-searching neighbor.
	// Resolved processors therefore keep re-publishing — the Q version
	// gets this persistence for free from its multiset variables.
	b.Label("refresh")
	emitSWrites(b, topo, ss)
	b.Jump("refresh")
	return b.Build()
}

// emitSRound emits one observe/refine/publish round.
func emitSRound(b *machine.Builder, topo *Topology, ss *sSyms) {
	names := topo.Names
	for _, n := range names {
		b.Read(n, sKeyRaw(n))
	}
	b.Compute(func(r *machine.Regs) {
		for j := range names {
			raw := r.Get(ss.raw[j])
			post, ok := parseSPost(raw)
			if !ok {
				continue
			}
			// Adopt the initial value relayed through posts.
			if !r.Has(ss.vinit[j]) && post.vinit != "" {
				r.Set(ss.vinit[j], post.vinit)
			}
			// Accumulate the observation set (replace, never mutate).
			seen, _ := r.Get(ss.seen[j]).([]any)
			key := canon.String(raw)
			dup := false
			for _, old := range seen {
				if canon.String(old) == key {
					dup = true
					break
				}
			}
			if !dup {
				next := make([]any, 0, len(seen)+1)
				next = append(next, seen...)
				next = append(next, raw)
				r.Set(ss.seen[j], next)
			}
		}
		// Refine VEC: initial-state filter once known, then set alibis.
		for j := range names {
			vec := r.Get(ss.vec[j]).([]int)
			if vinit, ok := r.Get(ss.vinit[j]).(string); ok {
				var keep []int
				for _, beta := range vec {
					if topo.InitOfVar[beta] == vinit {
						keep = append(keep, beta)
					}
				}
				vec = intset.Of(keep...)
			}
			seen, _ := r.Get(ss.seen[j]).([]any)
			r.Set(ss.vec[j], intset.Diff(vec, sVAlibi(topo, seen)))
		}
		pec := r.Get(ss.pec).([]int)
		r.Set(ss.pec, intset.Diff(pec, sPAlibi(topo, r, ss)))
	})
	emitSWrites(b, topo, ss)
}

func emitSWrites(b *machine.Builder, topo *Topology, ss *sSyms) {
	for j, n := range topo.Names {
		n := n
		outS, vinitS, pecS := ss.out[j], ss.vinit[j], ss.pec
		b.Compute(func(r *machine.Regs) {
			vinit, _ := r.Get(vinitS).(string)
			r.Set(outS, sPost(r.Get(pecS).([]int), n, vinit))
		})
		b.Write(n, sKeyOut(n))
	}
}
