package distlabel

import (
	"fmt"

	"simsym/internal/canon"
	"simsym/internal/intset"
	"simsym/internal/machine"
	"simsym/internal/system"
)

// Algorithm 2-S: the paper's section 6 remark made concrete — "The
// distributed algorithm for finding similarity labels [in S] is nearly
// the same as the one given above for Q, and it too can be used as the
// basis for a selection algorithm."
//
// Differences from the Q version, exactly mirroring the set-based
// environment rule:
//
//   - Variables hold one value; posts overwrite. Processors therefore
//     accumulate the SET of posts they have observed in each named
//     variable over time, and alibis are computed against that set.
//   - v-alibi is membership-based: an observed post under name m whose
//     suspect set is disjoint from the labels that can m-write a
//     β-variable rules β out. No counting is available.
//   - p-alibi keeps only its structural half (my n-variable can no
//     longer be α's n-neighbor); the "everyone else already knows"
//     count is a Q-only device.
//   - A variable's initial state can be overwritten before a processor
//     reads it, so the first writer records the initial value it saw in
//     its posts and later processors adopt it from there.
//
// Convergence is exercised under shuffled fair rounds; a k-bounded
// adversary could systematically shadow one writer's posts with
// another's, which the paper's unspecified S algorithm would need a
// synchronization subprotocol to defeat (documented in DESIGN.md).

// sPost builds the value written to a shared S variable.
func sPost(suspects []int, name system.Name, vinit string) map[string]any {
	return map[string]any{
		"s":  append([]int(nil), suspects...),
		"n":  string(name),
		"vi": vinit,
	}
}

type sParsed struct {
	suspects []int
	name     string
	vinit    string
}

func parseSPost(v any) (sParsed, bool) {
	m, ok := v.(map[string]any)
	if !ok {
		return sParsed{}, false
	}
	s, ok := m["s"].([]int)
	if !ok {
		return sParsed{}, false
	}
	n, ok := m["n"].(string)
	if !ok {
		return sParsed{}, false
	}
	vi, ok := m["vi"].(string)
	if !ok {
		return sParsed{}, false
	}
	return sParsed{suspects: s, name: n, vinit: vi}, true
}

// canMWrite reports whether a processor labeled alpha has an m-edge to a
// variable labeled beta.
func (t *Topology) canMWrite(mIdx, alpha, beta int) bool {
	return t.NSize(mIdx, alpha, beta) > 0
}

// sVAlibi rules out variable labels for one named variable, from the set
// of posts observed in it: β is impossible if some observed post (m, S)
// has no label in S that can m-write a β-variable — the poster certainly
// has SOME label in S, and whatever it is, it m-writes this variable.
func sVAlibi(topo *Topology, seen []any) []int {
	alibis := make(map[int]bool)
	for _, raw := range seen {
		p, ok := parseSPost(raw)
		if !ok {
			continue
		}
		mIdx := -1
		for j, n := range topo.Names {
			if string(n) == p.name {
				mIdx = j
			}
		}
		if mIdx < 0 {
			continue
		}
		for _, beta := range topo.VLabels {
			if alibis[beta] {
				continue
			}
			compatible := false
			for _, alpha := range p.suspects {
				if topo.canMWrite(mIdx, alpha, beta) {
					compatible = true
					break
				}
			}
			if !compatible {
				alibis[beta] = true
			}
		}
	}
	return intset.FromMap(alibis)
}

// sPAlibi keeps the structural half of p-alibi: α is ruled out when, for
// some name n, α's n-neighbor label is no longer suspected for our
// n-variable.
func sPAlibi(topo *Topology, loc machine.Locals) []int {
	alibis := make(map[int]bool)
	for _, alpha := range topo.PLabels {
		for j, n := range topo.Names {
			beta, ok := topo.NbrLabel[[2]int{alpha, j}]
			if !ok {
				alibis[alpha] = true
				break
			}
			vec, _ := loc[sKeyVEC(n)].([]int)
			if vec != nil && !intset.Contains(vec, beta) {
				alibis[alpha] = true
				break
			}
		}
	}
	return intset.FromMap(alibis)
}

func sKeyVEC(n system.Name) string   { return fmt.Sprintf("sVEC_%s", n) }
func sKeySeen(n system.Name) string  { return fmt.Sprintf("sSeen_%s", n) }
func sKeyVinit(n system.Name) string { return fmt.Sprintf("sVinit_%s", n) }
func sKeyOut(n system.Name) string   { return fmt.Sprintf("sOut_%s", n) }
func sKeyRaw(n system.Name) string   { return fmt.Sprintf("sRaw_%s", n) }

// Algorithm2S generates the S-instruction-set label-learning program for
// a system whose set-rule similarity structure is topo (build it with
// TopologyFromSystem over the RuleSetS labeling). Processors end with
// their label in local "label1"; opts.Elite selects as usual.
func Algorithm2S(topo *Topology, opts Options) (*machine.Program, error) {
	b := machine.NewBuilder()
	names := topo.Names

	// Initial reads: capture variable initial states where still
	// visible; otherwise they arrive later through posts.
	for _, n := range names {
		b.Read(n, sKeyRaw(n))
	}
	b.Compute(func(loc machine.Locals) {
		init, _ := loc["init"].(string)
		var pec []int
		for _, alpha := range topo.PLabels {
			if topo.InitOfProc[alpha] == init {
				pec = append(pec, alpha)
			}
		}
		loc["PEC1"] = intset.Of(pec...)
		for _, n := range names {
			if raw, ok := loc[sKeyRaw(n)].(string); ok {
				loc[sKeyVinit(n)] = raw
			}
			loc[sKeySeen(n)] = []any{}
			loc[sKeyVEC(n)] = append([]int(nil), topo.VLabels...)
		}
	})

	b.Label("loop")
	b.JumpIf(func(loc machine.Locals) bool {
		return len(loc["PEC1"].([]int)) == 1
	}, "done")
	emitSRound(b, topo)
	b.Jump("loop")

	b.Label("done")
	b.Compute(func(loc machine.Locals) {
		pec := loc["PEC1"].([]int)
		if len(pec) == 1 {
			loc["label1"] = pec[0]
			if len(opts.Elite) > 0 && intset.Contains(opts.Elite, pec[0]) {
				loc["selected"] = true
			}
		}
		loc["done"] = true
	})
	// Perpetual refresh: in S a post lives only until the next write to
	// the variable, so a processor that stopped writing could have its
	// resolved post shadowed forever by a still-searching neighbor.
	// Resolved processors therefore keep re-publishing — the Q version
	// gets this persistence for free from its multiset variables.
	b.Label("refresh")
	emitSWrites(b, topo)
	b.Jump("refresh")
	return b.Build()
}

// emitSRound emits one observe/refine/publish round.
func emitSRound(b *machine.Builder, topo *Topology) {
	names := topo.Names
	for _, n := range names {
		b.Read(n, sKeyRaw(n))
	}
	b.Compute(func(loc machine.Locals) {
		for _, n := range names {
			raw := loc[sKeyRaw(n)]
			post, ok := parseSPost(raw)
			if !ok {
				continue
			}
			// Adopt the initial value relayed through posts.
			if _, have := loc[sKeyVinit(n)]; !have && post.vinit != "" {
				loc[sKeyVinit(n)] = post.vinit
			}
			// Accumulate the observation set (replace, never mutate).
			seen, _ := loc[sKeySeen(n)].([]any)
			key := canon.String(raw)
			dup := false
			for _, old := range seen {
				if canon.String(old) == key {
					dup = true
					break
				}
			}
			if !dup {
				next := make([]any, 0, len(seen)+1)
				next = append(next, seen...)
				next = append(next, raw)
				loc[sKeySeen(n)] = next
			}
		}
		// Refine VEC: initial-state filter once known, then set alibis.
		for _, n := range names {
			vec := loc[sKeyVEC(n)].([]int)
			if vinit, ok := loc[sKeyVinit(n)].(string); ok {
				var keep []int
				for _, beta := range vec {
					if topo.InitOfVar[beta] == vinit {
						keep = append(keep, beta)
					}
				}
				vec = intset.Of(keep...)
			}
			seen, _ := loc[sKeySeen(n)].([]any)
			loc[sKeyVEC(n)] = intset.Diff(vec, sVAlibi(topo, seen))
		}
		pec := loc["PEC1"].([]int)
		loc["PEC1"] = intset.Diff(pec, sPAlibi(topo, loc))
	})
	emitSWrites(b, topo)
}

func emitSWrites(b *machine.Builder, topo *Topology) {
	for _, n := range topo.Names {
		n := n
		b.Compute(func(loc machine.Locals) {
			vinit, _ := loc[sKeyVinit(n)].(string)
			loc[sKeyOut(n)] = sPost(loc["PEC1"].([]int), n, vinit)
		})
		b.Write(n, sKeyOut(n))
	}
}
