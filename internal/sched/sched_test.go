package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundRobin(t *testing.T) {
	s, err := RoundRobin(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	if len(s) != len(want) {
		t.Fatalf("len = %d, want %d", len(s), len(want))
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("schedule %v, want %v", s, want)
		}
	}
	if !IsKBounded(s, 3, 3) {
		t.Error("round-robin should be n-bounded")
	}
	if _, err := RoundRobin(0, 1); err == nil {
		t.Error("RoundRobin(0,...) should fail")
	}
}

func TestShuffledRoundsIsBoundedFair(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		s, err := ShuffledRounds(rng, n, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !IsKBounded(s, n, 2*n-1) {
			t.Errorf("shuffled rounds not (2n-1)-bounded for n=%d: %v", n, s)
		}
		occ := Occurrences(s, n)
		for p, c := range occ {
			if c != 10 {
				t.Errorf("processor %d appears %d times, want 10", p, c)
			}
		}
	}
}

func TestUniformRandomCovers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s, err := UniformRandom(rng, 4, 400)
	if err != nil {
		t.Fatal(err)
	}
	if !CoversAll(s, 4) {
		t.Error("400 uniform steps over 4 processors should cover all (w.h.p.)")
	}
}

func TestStarve(t *testing.T) {
	s, err := Starve([]int{0, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if CoversAll(s, 3) {
		t.Error("starve schedule must not cover the starved processor")
	}
	occ := Occurrences(s, 3)
	if occ[1] != 0 || occ[0] != 3 || occ[2] != 3 {
		t.Errorf("occurrences = %v", occ)
	}
	if _, err := Starve(nil, 3); err == nil {
		t.Error("empty active set should fail")
	}
}

func TestConcat(t *testing.T) {
	out := Concat([]int{1}, nil, []int{2, 3})
	if len(out) != 3 || out[0] != 1 || out[2] != 3 {
		t.Errorf("Concat = %v", out)
	}
}

func TestIsKBounded(t *testing.T) {
	tests := []struct {
		name  string
		sched []int
		n, k  int
		want  bool
	}{
		{"rr is n-bounded", []int{0, 1, 0, 1, 0, 1}, 2, 2, true},
		{"k below n impossible", []int{0, 1}, 2, 1, false},
		{"gap breaks bound", []int{0, 1, 0, 0, 0, 1}, 2, 3, false},
		{"wide window ok", []int{0, 1, 0, 0, 1, 0}, 2, 4, true},
		{"short schedule vacuous", []int{0}, 2, 5, true},
		{"empty schedule vacuous", nil, 2, 2, true},
		// Vacuous truth must survive k < n: with no full window there is
		// nothing to violate (the old implementation returned false here,
		// contradicting its own off-the-end rule).
		{"empty schedule vacuous even when k < n", nil, 3, 2, true},
		{"empty schedule with k = n", nil, 3, 3, true},
		{"short schedule vacuous even when k < n", []int{0}, 3, 2, true},
		{"full window with k < n still impossible", []int{0, 1}, 3, 2, false},
		{"zero k with a full empty window", nil, 2, 0, false},
		{"negative index is not a processor", []int{0, -1, 1, 0, -1, 1}, 2, 3, true},
		{"negative index cannot stand in for coverage", []int{0, -1, 0}, 2, 3, false},
		{"index past n-1 is not a processor", []int{0, 5, 0}, 2, 3, false},
		{"out-of-range mixed with full coverage", []int{0, 7, 1}, 2, 3, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IsKBounded(tt.sched, tt.n, tt.k); got != tt.want {
				t.Errorf("IsKBounded(%v,%d,%d) = %v, want %v", tt.sched, tt.n, tt.k, got, tt.want)
			}
		})
	}
}

// TestShuffledRoundsKBoundedProperty: a schedule of per-round random
// permutations is (2n-1)-bounded fair for every n, rounds, and seed — a
// processor placed last in one round and first in the next is 2n-1 steps
// from its previous occurrence, never more.
func TestShuffledRoundsKBoundedProperty(t *testing.T) {
	f := func(nRaw, roundsRaw uint8, seed int64) bool {
		n := int(nRaw%8) + 1
		rounds := int(roundsRaw % 12)
		s, err := ShuffledRounds(rand.New(rand.NewSource(seed)), n, rounds)
		if err != nil {
			return false
		}
		if len(s) != n*rounds {
			return false
		}
		return IsKBounded(s, n, 2*n-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffledRoundsRejectsBadArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := ShuffledRounds(rng, 0, 1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := ShuffledRounds(rng, 3, -1); err == nil {
		t.Error("rounds=-1 should fail")
	}
}

func TestRoundRobinAlwaysKBoundedProperty(t *testing.T) {
	f := func(nRaw, roundsRaw uint8) bool {
		n := int(nRaw%8) + 1
		rounds := int(roundsRaw % 10)
		s, err := RoundRobin(n, rounds)
		if err != nil {
			return false
		}
		return IsKBounded(s, n, n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// isKBoundedOracle is the original O(len·k) implementation: a fresh seen
// set and full rescan per window start. Kept as the oracle the sliding
// window implementation must agree with. The window scan alone defines
// the semantics — there is deliberately no k < n shortcut, because a
// schedule with no full window is vacuously bounded for every k.
func isKBoundedOracle(schedule []int, n, k int) bool {
	for start := 0; start+k <= len(schedule); start++ {
		seen := make([]bool, n)
		count := 0
		for i := start; i < start+k; i++ {
			p := schedule[i]
			if p >= 0 && p < n && !seen[p] {
				seen[p] = true
				count++
			}
		}
		if count != n {
			return false
		}
	}
	return true
}

func TestIsKBoundedAgreesWithOracle(t *testing.T) {
	// Directed cases around the boundaries, then a quick.Check sweep.
	cases := []struct {
		schedule []int
		n, k     int
	}{
		{nil, 1, 1},
		{nil, 3, 2},
		{nil, 2, 0},
		{[]int{0}, 2, 5},
		{[]int{0}, 3, 2},
		{[]int{0, 1}, 3, 2},
		{[]int{0, 1, 0, 1}, 2, 2},
		{[]int{0, 1, 1, 0}, 2, 2},
		{[]int{0, 7, 1}, 2, 3},
		{[]int{0, -3, 1, 0, 1}, 2, 3},
	}
	for _, c := range cases {
		if got, want := IsKBounded(c.schedule, c.n, c.k), isKBoundedOracle(c.schedule, c.n, c.k); got != want {
			t.Errorf("IsKBounded(%v, %d, %d) = %v, oracle %v", c.schedule, c.n, c.k, got, want)
		}
	}
	rng := rand.New(rand.NewSource(7))
	f := func(raw []byte, n8, k8 uint8) bool {
		n := 1 + int(n8)%5
		k := int(k8) % 12
		schedule := make([]int, len(raw))
		for i, b := range raw {
			// Mostly in range, occasionally junk (negative or >= n).
			schedule[i] = int(b)%(n+2) - 1
		}
		return IsKBounded(schedule, n, k) == isKBoundedOracle(schedule, n, k)
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// benchKBoundedInput is an E-series-sized schedule: shuffled rounds over
// a 6-processor table, which is what the experiment sweeps classify.
func benchKBoundedInput() ([]int, int, int) {
	rng := rand.New(rand.NewSource(1))
	s, err := ShuffledRounds(rng, 6, 2000)
	if err != nil {
		panic(err)
	}
	return s, 6, 11
}

func BenchmarkIsKBoundedSliding(b *testing.B) {
	s, n, k := benchKBoundedInput()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !IsKBounded(s, n, k) {
			b.Fatal("schedule should be (2n-1)-bounded")
		}
	}
}

func BenchmarkIsKBoundedOracle(b *testing.B) {
	s, n, k := benchKBoundedInput()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !isKBoundedOracle(s, n, k) {
			b.Fatal("schedule should be (2n-1)-bounded")
		}
	}
}
