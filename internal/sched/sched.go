// Package sched generates and classifies schedules: the sequences of
// processor names that drive a machine, per the paper's section 2.
//
// A general schedule is unrestricted; a fair schedule names every
// processor infinitely often; a k-bounded fair schedule names every
// processor at least once in every window of k consecutive steps. Finite
// prefixes of these are what the generators below produce.
package sched

import (
	"errors"
	"fmt"
	"math/rand"
)

// Sentinel errors.
var (
	ErrBadArgs = errors.New("sched: invalid arguments")
)

// RoundRobin returns the schedule p0 p1 ... p(n-1) repeated for the given
// number of rounds. Round-robin is the paper's canonical similarity
// witness: it gives same-labeled nodes the same state after every round
// (Theorem 4's proof schedule).
func RoundRobin(n, rounds int) ([]int, error) {
	if n < 1 || rounds < 0 {
		return nil, fmt.Errorf("%w: n=%d rounds=%d", ErrBadArgs, n, rounds)
	}
	out := make([]int, 0, n*rounds)
	for r := 0; r < rounds; r++ {
		for p := 0; p < n; p++ {
			out = append(out, p)
		}
	}
	return out, nil
}

// ShuffledRounds returns rounds of random permutations of 0..n-1. The
// result is (2n-1)-bounded fair: every processor appears exactly once per
// round.
func ShuffledRounds(rng *rand.Rand, n, rounds int) ([]int, error) {
	if n < 1 || rounds < 0 {
		return nil, fmt.Errorf("%w: n=%d rounds=%d", ErrBadArgs, n, rounds)
	}
	out := make([]int, 0, n*rounds)
	for r := 0; r < rounds; r++ {
		out = append(out, rng.Perm(n)...)
	}
	return out, nil
}

// UniformRandom returns steps uniform random picks. The result is fair
// with high probability but NOT k-bounded for any k; it models a fair but
// unbounded adversary.
func UniformRandom(rng *rand.Rand, n, steps int) ([]int, error) {
	if n < 1 || steps < 0 {
		return nil, fmt.Errorf("%w: n=%d steps=%d", ErrBadArgs, n, steps)
	}
	out := make([]int, steps)
	for i := range out {
		out[i] = rng.Intn(n)
	}
	return out, nil
}

// Starve returns a general schedule that runs only the given processors,
// round-robin, for the given number of rounds. It is the adversary used
// in Theorem 1's proof and the fair-S mimicry arguments: the remaining
// processors never take a step.
func Starve(active []int, rounds int) ([]int, error) {
	if len(active) == 0 || rounds < 0 {
		return nil, fmt.Errorf("%w: active=%v rounds=%d", ErrBadArgs, active, rounds)
	}
	out := make([]int, 0, len(active)*rounds)
	for r := 0; r < rounds; r++ {
		out = append(out, active...)
	}
	return out, nil
}

// Concat joins schedules.
func Concat(parts ...[]int) []int {
	var out []int
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// IsKBounded reports whether every window of k consecutive steps of the
// schedule names every processor in 0..n-1 at least once. Windows that
// run off the end of a finite schedule are not counted (a finite prefix
// can always be extended fairly). Out-of-range entries consume window
// slots but never count as coverage.
//
// A single sliding window of per-processor occurrence counts makes this
// O(len(schedule)): each step enters the window once and leaves it once,
// and a distinct-processor counter answers the coverage question per
// window in O(1). (The obvious per-start rescan is O(len·k) and is kept
// in the tests as the oracle.)
func IsKBounded(schedule []int, n, k int) bool {
	if len(schedule) < k {
		// No full window exists, so nothing can violate the bound: a
		// prefix shorter than one window can always be extended fairly.
		// This holds even for k < n — the order of this test and the
		// next matters (IsKBounded(nil, 3, 2) is true, vacuously).
		return true
	}
	if k < n {
		// At least one full window exists, and k slots can never name n
		// distinct processors.
		return false
	}
	count := make([]int, n)
	distinct := 0
	for i, p := range schedule {
		if p >= 0 && p < n {
			count[p]++
			if count[p] == 1 {
				distinct++
			}
		}
		if i >= k {
			if q := schedule[i-k]; q >= 0 && q < n {
				count[q]--
				if count[q] == 0 {
					distinct--
				}
			}
		}
		if i >= k-1 && distinct != n {
			return false
		}
	}
	return true
}

// Occurrences counts how many times each processor 0..n-1 appears.
func Occurrences(schedule []int, n int) []int {
	out := make([]int, n)
	for _, p := range schedule {
		if p >= 0 && p < n {
			out[p]++
		}
	}
	return out
}

// CoversAll reports whether every processor 0..n-1 appears at least once.
func CoversAll(schedule []int, n int) bool {
	for _, c := range Occurrences(schedule, n) {
		if c == 0 {
			return false
		}
	}
	return true
}
