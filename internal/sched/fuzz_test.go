package sched

import "testing"

// FuzzIsKBounded cross-checks the sliding-window IsKBounded against the
// quadratic every-window oracle. The decoder keeps every input valid:
// two bytes size n and k, the rest become schedule slots shifted by -2
// so out-of-range entries (negative and >= n) are always in play —
// both implementations must ignore them identically.
func FuzzIsKBounded(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 3, 2, 3, 4, 2, 3, 4})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{7, 63, 1, 2, 3, 4, 5, 6, 7, 8, 9, 250, 0})
	f.Add([]byte("round robin is 1-bounded per processor"))
	f.Fuzz(func(t *testing.T, data []byte) {
		n, k := 1, 1
		if len(data) > 0 {
			n = 1 + int(data[0])%8
		}
		if len(data) > 1 {
			k = 1 + int(data[1])%64
		}
		if len(data) > 2 {
			data = data[2:]
		} else {
			data = nil
		}
		if len(data) > 256 {
			data = data[:256]
		}
		schedule := make([]int, len(data))
		for i, b := range data {
			schedule[i] = int(b) - 2
		}
		got := IsKBounded(schedule, n, k)
		want := isKBoundedOracle(schedule, n, k)
		if got != want {
			t.Fatalf("IsKBounded(len=%d, n=%d, k=%d) = %v, oracle %v\nschedule: %v",
				len(schedule), n, k, got, want, schedule)
		}
	})
}
