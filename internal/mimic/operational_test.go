package mimic

import (
	"math/rand"
	"testing"

	"simsym/internal/machine"
	"simsym/internal/system"
)

// TestFig3OperationalMimicry is the dynamic face of the mimic relation:
// with z starved (never scheduled), p and q run in lock step for ANY
// program — their states are equal after every {p,q} round — even though
// the full system's similarity labeling separates them. This is exactly
// the prose of Figure 3: "if z has not executed, then processors p and q
// behave as if they were similar."
func TestFig3OperationalMimicry(t *testing.T) {
	s := system.Fig3()
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 60; trial++ {
		prog, err := machine.RandomProgram(rng, s.Names, system.InstrQ, 1+rng.Intn(10))
		if err != nil {
			t.Fatal(err)
		}
		m, err := machine.New(s, system.InstrQ, prog)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 40; round++ {
			// Starve z: only p (0) and q (1) run.
			if err := m.Step(0); err != nil {
				t.Fatal(err)
			}
			if err := m.Step(1); err != nil {
				t.Fatal(err)
			}
			if m.ProcFingerprint(0) != m.ProcFingerprint(1) {
				t.Fatalf("trial %d round %d: p and q diverged with z starved", trial, round)
			}
		}
	}
}

// TestFig3DivergenceOnceZRuns: the flip side — once z executes, p and q
// CAN diverge (z's posts reach only p's variable u and q's variable w
// asymmetrically). We find a program and schedule where they do, showing
// the lock step above is about z's silence, not about p ~ q.
func TestFig3DivergenceOnceZRuns(t *testing.T) {
	s := system.Fig3()
	b := machine.NewBuilder()
	b.Post("a", "init") // p posts into u, q posts into w, z posts into w
	b.Peek("a", "x")    // p sees only its own post; q sees z's too
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(s, system.InstrQ, prog)
	if err != nil {
		t.Fatal(err)
	}
	// z posts first, then p and q both post and peek in lock step.
	for _, step := range []int{2, 0, 1, 0, 1} {
		if err := m.Step(step); err != nil {
			t.Fatal(err)
		}
	}
	if m.ProcFingerprint(0) == m.ProcFingerprint(1) {
		t.Fatal("after z runs, q's peek of w should differ from p's peek of u")
	}
}
