// Package mimic implements the paper's mimicry relation for fair systems
// in S (section 6).
//
// In a merely-fair system, a processor can be starved of information for
// arbitrarily long: if the processors outside a subsystem never execute,
// a processor inside it behaves exactly as it would in the subsystem
// alone. The paper captures this with: x mimics y if there is a subsystem
// of Σ in which (the images of) x and y are similar. Dissimilar
// processors can therefore still be unable to learn their labels — and
// selection for a fair system in S exists iff some processor mimics no
// other processor.
//
// Subsystems are induced by processor subsets (kept processors retain all
// their name-edges; variables keep only edges from kept processors), and
// in-subsystem similarity uses the set-based S environment rule.
package mimic

import (
	"errors"
	"fmt"

	"simsym/internal/core"
	"simsym/internal/system"
)

// Sentinel errors.
var (
	ErrTooLarge = errors.New("mimic: too many processors for subset enumeration")
)

// MaxProcs bounds the 2^|P| subset enumeration.
const MaxProcs = 16

// Relation is the computed mimicry relation.
type Relation struct {
	// Pairs[x][y] reports whether x mimics y (x ≠ y). The relation is
	// symmetric under the in-subsystem definition.
	Pairs [][]bool
	// WitnessSubset[x][y] is a processor subset inducing a subsystem in
	// which x and y are similar (nil when Pairs[x][y] is false).
	WitnessSubset [][][]int
}

// Mimics reports whether x mimics y.
func (r *Relation) Mimics(x, y int) bool { return r.Pairs[x][y] }

// MimicsNobody returns the processors that mimic no other processor —
// the ones that can safely learn their own label under fair schedules.
func (r *Relation) MimicsNobody() []int {
	var out []int
	for x := range r.Pairs {
		free := true
		for y := range r.Pairs[x] {
			if x != y && r.Pairs[x][y] {
				free = false
				break
			}
		}
		if free {
			out = append(out, x)
		}
	}
	return out
}

// Compute enumerates all processor subsets of size >= 2 and records which
// pairs become similar in some induced subsystem.
func Compute(sys *system.System) (*Relation, error) {
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("mimic: %w", err)
	}
	np := sys.NumProcs()
	if np > MaxProcs {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooLarge, np, MaxProcs)
	}
	rel := &Relation{
		Pairs:         make([][]bool, np),
		WitnessSubset: make([][][]int, np),
	}
	for x := range rel.Pairs {
		rel.Pairs[x] = make([]bool, np)
		rel.WitnessSubset[x] = make([][]int, np)
	}

	for mask := 0; mask < 1<<np; mask++ {
		var procs []int
		for p := 0; p < np; p++ {
			if mask&(1<<p) != 0 {
				procs = append(procs, p)
			}
		}
		if len(procs) < 2 {
			continue
		}
		sub, procMap, err := system.Induced(sys, procs)
		if err != nil {
			return nil, fmt.Errorf("mimic: inducing %v: %w", procs, err)
		}
		lab, err := core.Similarity(sub, core.RuleSetS)
		if err != nil {
			return nil, fmt.Errorf("mimic: labeling subsystem %v: %w", procs, err)
		}
		for i, x := range procs {
			for _, y := range procs[i+1:] {
				if rel.Pairs[x][y] {
					continue
				}
				if lab.ProcLabels[procMap[x]] == lab.ProcLabels[procMap[y]] {
					witness := append([]int(nil), procs...)
					rel.Pairs[x][y] = true
					rel.Pairs[y][x] = true
					rel.WitnessSubset[x][y] = witness
					rel.WitnessSubset[y][x] = witness
				}
			}
		}
	}
	return rel, nil
}

// SimilarImpliesMimic verifies the sanity property that full-system
// similarity (the Σ' = Σ case) is contained in mimicry.
func SimilarImpliesMimic(sys *system.System, rel *Relation) (bool, error) {
	lab, err := core.Similarity(sys, core.RuleSetS)
	if err != nil {
		return false, fmt.Errorf("mimic: %w", err)
	}
	for x := range lab.ProcLabels {
		for y := range lab.ProcLabels {
			if x != y && lab.ProcLabels[x] == lab.ProcLabels[y] && !rel.Pairs[x][y] {
				return false, nil
			}
		}
	}
	return true, nil
}
