package mimic

import (
	"errors"
	"math/rand"
	"testing"

	"simsym/internal/system"
)

func TestFig3MimicStructure(t *testing.T) {
	// Figure 3's point: p and q are dissimilar in the full system (the
	// bounded-fair labeling separates all three processors), yet p and q
	// mimic each other via the subsystem without z — so neither can ever
	// learn its label under merely-fair schedules.
	s := system.Fig3()
	rel, err := Compute(s)
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Mimics(0, 1) {
		t.Error("p should mimic q via the {p,q} subsystem")
	}
	if w := rel.WitnessSubset[0][1]; len(w) == 0 {
		t.Error("mimic pair should carry a witness subset")
	}
	// z also mimics q: drop p and the {q,z} subsystem makes them
	// symmetric (q: a->w, b->t; z: a->w, b->u — u and t both become
	// single-writer b-variables).
	if !rel.Mimics(1, 2) {
		t.Error("z should mimic q via the {q,z} subsystem")
	}
	// Every processor mimics someone: no selection for fair S on Fig3.
	if free := rel.MimicsNobody(); len(free) != 0 {
		t.Errorf("MimicsNobody = %v, want none (Fig3 is the BF-S/F-S separator)", free)
	}
}

func TestMarkedProcessorMimicsNobody(t *testing.T) {
	// A processor with a unique initial state can never be similar to
	// anyone in any subsystem: it mimics nobody, so fair-S selection
	// exists (it selects itself).
	s := system.Fig3()
	s.ProcInit[2] = "Z" // mark z
	rel, err := Compute(s)
	if err != nil {
		t.Fatal(err)
	}
	free := rel.MimicsNobody()
	if len(free) != 1 || free[0] != 2 {
		t.Errorf("MimicsNobody = %v, want [2]", free)
	}
	// p and q still mimic each other.
	if !rel.Mimics(0, 1) {
		t.Error("p and q should still mimic each other")
	}
}

func TestFig1EverybodyMimics(t *testing.T) {
	rel, err := Compute(system.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Mimics(0, 1) {
		t.Error("similar processors must mimic each other (Σ' = Σ)")
	}
	if free := rel.MimicsNobody(); len(free) != 0 {
		t.Errorf("MimicsNobody = %v, want none", free)
	}
}

func TestSimilarImpliesMimicProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	checked := 0
	for trial := 0; trial < 40; trial++ {
		s, err := system.RandomSystem(rng, system.RandomOpts{
			Procs:      2 + rng.Intn(5),
			Vars:       1 + rng.Intn(4),
			Names:      1 + rng.Intn(2),
			InitStates: 1 + rng.Intn(2),
		})
		if err != nil {
			continue
		}
		rel, err := Compute(s)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := SimilarImpliesMimic(s, rel)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: similarity not contained in mimicry\n%s", trial, s.Describe())
		}
		checked++
	}
	if checked < 20 {
		t.Errorf("only %d cases checked", checked)
	}
}

func TestMimicryIsSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 30; trial++ {
		s, err := system.RandomSystem(rng, system.RandomOpts{
			Procs:      2 + rng.Intn(5),
			Vars:       1 + rng.Intn(3),
			Names:      1 + rng.Intn(2),
			InitStates: 1 + rng.Intn(2),
		})
		if err != nil {
			continue
		}
		rel, err := Compute(s)
		if err != nil {
			t.Fatal(err)
		}
		for x := range rel.Pairs {
			for y := range rel.Pairs[x] {
				if rel.Pairs[x][y] != rel.Pairs[y][x] {
					t.Fatalf("trial %d: asymmetric mimicry %d,%d", trial, x, y)
				}
			}
		}
	}
}

func TestTooLarge(t *testing.T) {
	big, err := system.Ring(MaxProcs + 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compute(big); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestInvalidSystem(t *testing.T) {
	s := system.Fig1()
	s.Nbr[0][0] = 9
	if _, err := Compute(s); err == nil {
		t.Error("invalid system should fail")
	}
}
