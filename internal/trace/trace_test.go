package trace

import (
	"math/rand"
	"testing"

	"simsym/internal/core"
	"simsym/internal/machine"
	"simsym/internal/system"
)

func similarity(t *testing.T, s *system.System, rule core.Rule) *core.Labeling {
	t.Helper()
	lab, err := core.Similarity(s, rule)
	if err != nil {
		t.Fatal(err)
	}
	return lab
}

func TestFig1RandomProgramsStaySynced(t *testing.T) {
	// Theorem 4 empirically: for ANY program, the round-robin schedule
	// keeps the similar p and q of Figure 1 in the same state at every
	// round boundary.
	rng := rand.New(rand.NewSource(2))
	s := system.Fig1()
	lab := similarity(t, s, core.RuleQ)
	for trial := 0; trial < 60; trial++ {
		prog, err := machine.RandomProgram(rng, s.Names, system.InstrQ, 1+rng.Intn(12))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Witness(s, system.InstrQ, prog, lab, 50)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Synced() {
			t.Fatalf("trial %d: %s", trial, rep.Violation)
		}
	}
}

func TestRandomSystemsRandomProgramsStaySynced(t *testing.T) {
	// The big fuzz: random systems, random programs, instruction sets S
	// and Q. The computed similarity labeling must keep classes in lock
	// step under the class-sorted round-robin.
	rng := rand.New(rand.NewSource(19))
	ran := 0
	for trial := 0; trial < 120; trial++ {
		s, err := system.RandomSystem(rng, system.RandomOpts{
			Procs:      1 + rng.Intn(6),
			Vars:       1 + rng.Intn(4),
			Names:      1 + rng.Intn(3),
			InitStates: 1 + rng.Intn(2),
		})
		if err != nil {
			continue
		}
		instr := system.InstrQ
		rule := core.RuleQ
		if rng.Intn(2) == 0 {
			instr = system.InstrS
			rule = core.RuleSetS
		}
		lab := similarity(t, s, rule)
		prog, err := machine.RandomProgram(rng, s.Names, instr, 1+rng.Intn(10))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Witness(s, instr, prog, lab, 40)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Synced() {
			t.Fatalf("trial %d (%v): %s\nsystem:\n%s", trial, instr, rep.Violation, s.Describe())
		}
		ran++
	}
	if ran < 60 {
		t.Errorf("only %d fuzz cases ran", ran)
	}
}

func TestWitnessDetectsDivergence(t *testing.T) {
	// Feed the witness a deliberately wrong labeling (merging dissimilar
	// p3 with p1/p2 of Figure 2) and a program that separates them: the
	// witness must report a violation, demonstrating it has teeth.
	s := system.Fig2()
	wrong := &core.Labeling{
		Sys:        s,
		ProcLabels: []int{0, 0, 0},
		VarLabels:  []int{0, 0, 1}, // also wrong: v1 ~ v2
	}
	b := machine.NewBuilder()
	b.Post("n", "init")
	b.Peek("n", "x") // p1,p2 see 2 subvalues; p3 sees 1
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Witness(s, system.InstrQ, prog, wrong, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Synced() {
		t.Fatal("witness failed to detect divergence of a wrong labeling")
	}
}

func TestFig1SelectionDoubles(t *testing.T) {
	// Theorem 2 via the machine: a program that tries to select by
	// "first to post wins" ends up selecting BOTH similar processors
	// under round-robin.
	s := system.Fig1()
	lab := similarity(t, s, core.RuleQ)
	b := machine.NewBuilder()
	x, selected := b.Sym("x"), b.Sym("selected")
	b.Peek("n", "x")
	b.Compute(func(r *machine.Regs) {
		pr := r.Get(x).(machine.PeekResult)
		if len(pr.Values) == 0 {
			r.Set(selected, true) // nobody posted yet: claim leadership
		}
	})
	b.Post("n", "init")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	two, err := EventuallySelectsTwo(s, system.InstrQ, prog, lab, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !two {
		t.Fatal("round-robin should select both similar processors (Uniqueness violation)")
	}
}

func TestWitnessShapeError(t *testing.T) {
	s := system.Fig1()
	lab := &core.Labeling{Sys: s, ProcLabels: []int{0}, VarLabels: []int{0}}
	b := machine.NewBuilder()
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Witness(s, system.InstrQ, prog, lab, 1); err == nil {
		t.Error("mismatched labeling should fail")
	}
	if _, err := EventuallySelectsTwo(s, system.InstrQ, prog, lab, 1); err == nil {
		t.Error("mismatched labeling should fail")
	}
}

func TestWitnessStopsOnHalt(t *testing.T) {
	s := system.Fig1()
	lab := similarity(t, s, core.RuleQ)
	b := machine.NewBuilder()
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Witness(s, system.InstrQ, prog, lab, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds >= 1000 {
		t.Errorf("witness ran %d rounds; should stop after halt", rep.Rounds)
	}
	if !rep.Synced() {
		t.Error("halted machine should stay synced")
	}
}

func TestClassSortedRoundGroupsClasses(t *testing.T) {
	s := system.Fig2()
	lab := similarity(t, s, core.RuleQ)
	round := ClassSortedRound(lab)
	if len(round) != 3 {
		t.Fatalf("round length = %d", len(round))
	}
	// Same-labeled p1,p2 must be adjacent in the round.
	pos := make(map[int]int)
	for i, p := range round {
		pos[p] = i
	}
	if d := pos[0] - pos[1]; d != 1 && d != -1 {
		t.Errorf("similar processors not adjacent in round: %v", round)
	}
}

// TestEventuallySelectsTwoMidRound is the regression test for the
// round-boundary blind spot: the double selection exists only between
// two steps of one round (the earlier-scheduled processor selects before
// the other deselects), so a check that inspects SelectedProcs only at
// round boundaries never sees it.
func TestEventuallySelectsTwoMidRound(t *testing.T) {
	s := system.Fig1().Clone()
	s.ProcInit[1] = "1" // mark p1 so the uniform program can phase-shift it
	// Labels put p1 first in the class-sorted round, so within a round
	// p1's selection lands while p0 is still selected, and p0's
	// deselection closes the window before the boundary.
	lab := &core.Labeling{Sys: s, ProcLabels: []int{1, 0}, VarLabels: []int{0}}
	b := machine.NewBuilder()
	selected := b.Sym("selected")
	b.JumpIf(func(r *machine.Regs) bool { return r.Get(machine.SymInit) == "1" }, "late")
	b.Compute(func(r *machine.Regs) { r.Set(selected, true) })  // p0, round 2
	b.Compute(func(r *machine.Regs) { r.Set(selected, false) }) // p0, round 3
	b.Halt()
	b.Label("late")
	b.Compute(func(*machine.Regs) {})                           // p1, round 2
	b.Compute(func(r *machine.Regs) { r.Set(selected, true) })  // p1, round 3
	b.Compute(func(r *machine.Regs) { r.Set(selected, false) }) // p1, round 4
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Round 3 runs p1 (select: both selected now) then p0 (deselect):
	// every boundary and the final state have at most one selected.
	two, err := EventuallySelectsTwo(s, system.InstrS, prog, lab, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !two {
		t.Fatal("mid-round double selection missed: EventuallySelectsTwo is only checking round boundaries")
	}
}
