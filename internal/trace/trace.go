// Package trace checks the paper's similarity claims empirically: it runs
// a program on the machine under a class-sorted round-robin schedule and
// verifies that same-labeled nodes have the same state at every round
// boundary — the schedule constructed in Theorem 4's proof.
//
// A schedule "causes nodes to behave similarly" when it gives them the
// same state at the same time infinitely often, for any program. The
// class-sorted round-robin delivers a stronger, checkable version: equal
// state at every round boundary. Violations come with the round number
// and the offending node pair, which makes the package a sharp test bed
// for labelings that merely claim to be supersimilar.
package trace

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"simsym/internal/core"
	"simsym/internal/machine"
	"simsym/internal/system"
)

// Sentinel errors.
var (
	ErrShape = errors.New("trace: labeling does not match system")
)

// Violation records the first point where two same-labeled nodes diverged.
type Violation struct {
	Round int
	Kind  system.Kind
	A, B  int // node indices within their kind
}

// String implements fmt.Stringer.
func (v *Violation) String() string {
	return fmt.Sprintf("round %d: %v %d and %d diverged", v.Round, v.Kind, v.A, v.B)
}

// Report is the result of a witness run.
type Report struct {
	Rounds    int
	Steps     int
	Violation *Violation // nil when all rounds stayed in sync
}

// Synced reports whether no divergence was observed.
func (r *Report) Synced() bool { return r.Violation == nil }

// ClassSortedRound returns one round of the witness schedule: every
// processor once, ordered by (label, index). Same-labeled processors run
// consecutively, which is what makes the Theorem 4 argument go through
// for variables shared across classes.
func ClassSortedRound(lab *core.Labeling) []int {
	order := make([]int, len(lab.ProcLabels))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := lab.ProcLabels[order[a]], lab.ProcLabels[order[b]]
		if la != lb {
			return la < lb
		}
		return order[a] < order[b]
	})
	return order
}

// Witness runs prog on sys under instr for the given number of rounds of
// the class-sorted round-robin schedule, checking after every round that
// all same-labeled processors and all same-labeled variables have equal
// state fingerprints.
func Witness(sys *system.System, instr system.InstrSet, prog *machine.Program, lab *core.Labeling, rounds int) (*Report, error) {
	if len(lab.ProcLabels) != sys.NumProcs() || len(lab.VarLabels) != sys.NumVars() {
		return nil, ErrShape
	}
	m, err := machine.New(sys, instr, prog)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	round := ClassSortedRound(lab)
	rep := &Report{}
	ck := newSyncChecker(sys, lab)
	for r := 1; r <= rounds; r++ {
		for _, p := range round {
			if err := m.Step(p); err != nil {
				return nil, fmt.Errorf("trace: round %d: %w", r, err)
			}
			rep.Steps++
		}
		rep.Rounds = r
		if viol := ck.check(m); viol != nil {
			viol.Round = r
			rep.Violation = viol
			return rep, nil
		}
		if m.AllHalted() {
			break
		}
	}
	return rep, nil
}

// syncChecker compares same-labeled nodes on binary fingerprint keys,
// reusing one pair of buffers across all rounds of a witness run instead
// of materializing a fingerprint string per node per round.
type syncChecker struct {
	lab        *core.Labeling
	procRep    map[int]int // label -> representative node
	varRep     map[int]int
	bufA, bufB []byte
}

func newSyncChecker(sys *system.System, lab *core.Labeling) *syncChecker {
	ck := &syncChecker{lab: lab, procRep: make(map[int]int), varRep: make(map[int]int)}
	for p := 0; p < sys.NumProcs(); p++ {
		if _, ok := ck.procRep[lab.ProcLabels[p]]; !ok {
			ck.procRep[lab.ProcLabels[p]] = p
		}
	}
	for v := 0; v < sys.NumVars(); v++ {
		if _, ok := ck.varRep[lab.VarLabels[v]]; !ok {
			ck.varRep[lab.VarLabels[v]] = v
		}
	}
	return ck
}

func (ck *syncChecker) check(m *machine.Machine) *Violation {
	sys := m.System()
	for p := 0; p < sys.NumProcs(); p++ {
		rep := ck.procRep[ck.lab.ProcLabels[p]]
		if rep == p {
			continue
		}
		ck.bufA = m.AppendProcFingerprint(ck.bufA[:0], rep)
		ck.bufB = m.AppendProcFingerprint(ck.bufB[:0], p)
		if !bytes.Equal(ck.bufA, ck.bufB) {
			return &Violation{Kind: system.KindProcessor, A: rep, B: p}
		}
	}
	for v := 0; v < sys.NumVars(); v++ {
		rep := ck.varRep[ck.lab.VarLabels[v]]
		if rep == v {
			continue
		}
		ck.bufA = m.AppendVarFingerprint(ck.bufA[:0], rep)
		ck.bufB = m.AppendVarFingerprint(ck.bufB[:0], v)
		if !bytes.Equal(ck.bufA, ck.bufB) {
			return &Violation{Kind: system.KindVariable, A: rep, B: v}
		}
	}
	return nil
}

// EventuallySelectsTwo runs prog under the class-sorted round-robin and
// reports whether at some point two same-labeled processors are both
// selected — the Theorem 2 violation scenario (if a selection algorithm
// selects p under this schedule, the similar q is selected too).
func EventuallySelectsTwo(sys *system.System, instr system.InstrSet, prog *machine.Program, lab *core.Labeling, rounds int) (bool, error) {
	if len(lab.ProcLabels) != sys.NumProcs() {
		return false, ErrShape
	}
	m, err := machine.New(sys, instr, prog)
	if err != nil {
		return false, fmt.Errorf("trace: %w", err)
	}
	round := ClassSortedRound(lab)
	for r := 0; r < rounds; r++ {
		for _, p := range round {
			if err := m.Step(p); err != nil {
				return false, fmt.Errorf("trace: %w", err)
			}
			// Check after every step, not just at round boundaries: a
			// double selection can appear and resolve within one round
			// (one twin selecting before the other deselects), which a
			// boundary-only check never sees.
			if len(m.SelectedProcs()) >= 2 {
				return true, nil
			}
		}
		if m.AllHalted() {
			break
		}
	}
	return len(m.SelectedProcs()) >= 2, nil
}
