package csp

import (
	"errors"
	"math/rand"
	"testing"

	"simsym/internal/machine"
	"simsym/internal/sched"
	"simsym/internal/system"
)

func TestValidate(t *testing.T) {
	if err := PairNet().Validate(); err != nil {
		t.Errorf("pair net: %v", err)
	}
	ring, err := RingNet(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := ring.Validate(); err != nil {
		t.Errorf("ring net: %v", err)
	}
	bad := PairNet()
	bad.Chan = [][]int{{0}, {7}}
	if err := bad.Validate(); !errors.Is(err, ErrShape) {
		t.Errorf("bad channel = %v", err)
	}
	three := &Net{
		Ports:    []system.Name{"x"},
		ProcIDs:  []string{"a", "b", "c"},
		Init:     []string{"0", "0", "0"},
		Chan:     [][]int{{0}, {0}, {0}},
		NumChans: 1,
	}
	if err := three.Validate(); !errors.Is(err, ErrShape) {
		t.Errorf("three-endpoint channel = %v", err)
	}
	if _, err := RingNet(1); !errors.Is(err, ErrShape) {
		t.Errorf("tiny ring = %v", err)
	}
}

func TestToSystemShape(t *testing.T) {
	ring, err := RingNet(4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ring.ToSystem()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	vn := s.VarNeighbors()
	for c := range vn {
		if len(vn[c]) != 2 {
			t.Errorf("channel %d has %d edges", c, len(vn[c]))
		}
	}
}

func TestPairIsElectableInExtendedCSP(t *testing.T) {
	// Two processes on one channel: the symmetric rendezvous race picks
	// a winner, exactly like Figure 1's lock race.
	d, err := DecideExtended(PairNet())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Solvable {
		t.Fatalf("pair should be solvable in extended CSP: %s", d.Reason)
	}
	ok, err := TransferCondition(PairNet())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("pair's similar neighbors should FAIL the transfer condition (they need the race)")
	}
}

func TestRingNotElectableEvenExtended(t *testing.T) {
	// Anonymous CSP rings cannot elect even with output guards: each
	// rendezvous orders one PAIR, but a rotation-symmetric outcome
	// remains possible (the L analogy: different-name sharers).
	ring, err := RingNet(4)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DecideExtended(ring)
	if err != nil {
		t.Fatal(err)
	}
	if d.Solvable {
		t.Errorf("anonymous CSP ring should not be electable: %s", d.Reason)
	}
}

func TestMarkedRingElectable(t *testing.T) {
	ring, err := RingNet(5)
	if err != nil {
		t.Fatal(err)
	}
	ring.Init[2] = "leader"
	d, err := DecideExtended(ring)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Solvable {
		t.Fatalf("marked CSP ring should be electable: %s", d.Reason)
	}
	ok, err := TransferCondition(ring)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("marked ring's full separation should satisfy the transfer condition")
	}
}

func TestSelectExtendedPairEndToEnd(t *testing.T) {
	prog, d, err := SelectExtended(PairNet())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Solvable {
		t.Fatalf("decision: %s", d.Reason)
	}
	sys, err := PairNet().ToSystem()
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 8; seed++ {
		m, err := machine.New(sys, system.InstrL, prog)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		for r := 0; r < 2000 && !m.AllHalted(); r++ {
			round, err := sched.ShuffledRounds(rng, 2, 1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(round); err != nil {
				t.Fatal(err)
			}
		}
		if sel := m.SelectedProcs(); len(sel) != 1 {
			t.Errorf("seed %d: selected %v", seed, sel)
		}
	}
}

func TestPlainLimitation(t *testing.T) {
	if err := PlainLimitation(); err == nil {
		t.Error("plain CSP limitation should be an error")
	}
}
