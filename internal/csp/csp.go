// Package csp implements the paper's synchronous message-passing
// results (section 6): CSP and CSP extended with output guards.
//
// The paper's analogy — "systems in extended CSP are to asynchronous
// bidirectional message-passing systems as systems in L are to systems
// in Q" — is made literal here. A CSP network of processes joined by
// named ports maps onto a shared-memory system in which every channel is
// a variable with exactly two neighbors; a symmetric rendezvous between
// two same-state neighbors must assign roles (exactly one party's output
// matches the other's input), which is operationally the lock race on
// the shared channel variable. Under the translation:
//
//   - the extended-CSP similarity and selection theory is the L theory
//     of the channel-shaped system (Theorems 8–9, Algorithm 4);
//   - the supersimilarity transfer condition specializes to "no two
//     neighboring processes share a label" — a rendezvous between
//     similar neighbors would break the tie;
//   - plain CSP (no output guards) removes the symmetric race: a
//     sender cannot select between partners, which weakens the model
//     exactly as the paper describes (it reports no general
//     deadlock-free labeling algorithm for that case, and neither do
//     we; see PlainLimitation).
package csp

import (
	"errors"
	"fmt"

	"simsym/internal/core"
	"simsym/internal/family"
	"simsym/internal/machine"
	"simsym/internal/selection"
	"simsym/internal/system"
)

// Sentinel errors.
var (
	ErrShape = errors.New("csp: invalid network")
)

// Net is a CSP process network: processes reference channels through
// local port names; every channel connects exactly two processes.
type Net struct {
	// Ports is the port-name alphabet, shared by all processes.
	Ports []system.Name
	// ProcIDs names the processes.
	ProcIDs []string
	// Init holds process initial states.
	Init []string
	// Chan[p][j] is the channel index process p reaches through port
	// Ports[j].
	Chan [][]int
	// NumChans is the number of channels.
	NumChans int
}

// Validate checks the CSP shape: every port bound, every channel having
// exactly two endpoints.
func (n *Net) Validate() error {
	if len(n.ProcIDs) == 0 || len(n.Ports) == 0 {
		return fmt.Errorf("%w: empty", ErrShape)
	}
	if len(n.Chan) != len(n.ProcIDs) || len(n.Init) != len(n.ProcIDs) {
		return fmt.Errorf("%w: size mismatch", ErrShape)
	}
	degree := make([]int, n.NumChans)
	for p, row := range n.Chan {
		if len(row) != len(n.Ports) {
			return fmt.Errorf("%w: process %d binds %d ports, want %d", ErrShape, p, len(row), len(n.Ports))
		}
		for _, c := range row {
			if c < 0 || c >= n.NumChans {
				return fmt.Errorf("%w: channel %d out of range", ErrShape, c)
			}
			degree[c]++
		}
	}
	for c, d := range degree {
		if d != 2 {
			return fmt.Errorf("%w: channel %d has %d endpoints, want 2", ErrShape, c, d)
		}
	}
	return nil
}

// ToSystem converts the CSP network to its channel-shaped shared-memory
// system: channels become variables (initial state "0" — channels carry
// no initial content).
func (n *Net) ToSystem() (*system.System, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	s := &system.System{
		Names:    append([]system.Name(nil), n.Ports...),
		ProcIDs:  append([]string(nil), n.ProcIDs...),
		VarIDs:   make([]string, n.NumChans),
		Nbr:      make([][]int, len(n.ProcIDs)),
		ProcInit: append([]string(nil), n.Init...),
		VarInit:  make([]string, n.NumChans),
	}
	for c := 0; c < n.NumChans; c++ {
		s.VarIDs[c] = fmt.Sprintf("ch%d", c)
		s.VarInit[c] = "0"
	}
	for p := range n.Chan {
		s.Nbr[p] = append([]int(nil), n.Chan[p]...)
	}
	return s, nil
}

// RingNet builds the CSP ring: process i talks to its successor through
// port "next" and its predecessor through port "prev".
func RingNet(n int) (*Net, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: ring size %d", ErrShape, n)
	}
	net := &Net{
		Ports:    []system.Name{"prev", "next"},
		ProcIDs:  make([]string, n),
		Init:     make([]string, n),
		Chan:     make([][]int, n),
		NumChans: n,
	}
	for i := 0; i < n; i++ {
		net.ProcIDs[i] = fmt.Sprintf("P%d", i)
		net.Init[i] = "0"
		net.Chan[i] = []int{(i - 1 + n) % n, i} // prev, next
	}
	return net, nil
}

// PairNet builds two processes joined by one channel — the CSP face of
// Figure 1. Both must call the channel by the same port name for the
// figure's same-name sharing; with a single port that is automatic.
func PairNet() *Net {
	return &Net{
		Ports:    []system.Name{"peer"},
		ProcIDs:  []string{"P", "Q"},
		Init:     []string{"0", "0"},
		Chan:     [][]int{{0}, {0}},
		NumChans: 1,
	}
}

// DecideExtended solves the selection problem for the network under
// extended CSP, via the L theory of the channel-shaped system.
func DecideExtended(n *Net) (*selection.Decision, error) {
	s, err := n.ToSystem()
	if err != nil {
		return nil, err
	}
	return selection.DecideL(s, family.RelabelOptions{})
}

// TransferCondition reports whether the similarity labeling of the
// asynchronous (Q) view transfers to extended CSP: it must give no two
// neighboring processes the same label (the message-passing analog of
// Theorem 8's same-name condition; on channel-shaped systems every
// shared variable is a channel between exactly two processes).
func TransferCondition(n *Net) (bool, error) {
	s, err := n.ToSystem()
	if err != nil {
		return false, err
	}
	lab, err := core.Similarity(s, core.RuleQ)
	if err != nil {
		return false, err
	}
	vn := s.VarNeighbors()
	for c := range vn {
		procs := map[int]bool{}
		for _, e := range vn[c] {
			procs[e.Proc] = true
		}
		var ends []int
		for p := range procs {
			ends = append(ends, p)
		}
		if len(ends) == 2 && lab.ProcLabels[ends[0]] == lab.ProcLabels[ends[1]] {
			return false, nil
		}
	}
	return true, nil
}

// SelectExtended generates the runnable election program (Algorithm 4 on
// the channel-shaped system — the rendezvous race is the lock race) for
// an extended-CSP-solvable network.
func SelectExtended(n *Net) (*machine.Program, *selection.Decision, error) {
	s, err := n.ToSystem()
	if err != nil {
		return nil, nil, err
	}
	return selection.Select(s, system.InstrL, system.SchedFair)
}

// PlainLimitation documents the paper's open point: plain CSP (input
// guards only) cannot run the symmetric rendezvous race, because a
// process committing to an output cannot select among partners; the
// paper reports no general deadlock-free label-learning algorithm for
// it, and this package deliberately provides none. The function exists
// so the limitation is part of the API surface rather than a silent
// omission; it always returns the same explanatory error.
func PlainLimitation() error {
	return errors.New("csp: plain CSP (no output guards) has no known general deadlock-free " +
		"label-learning algorithm (paper, section 6); use extended CSP")
}
