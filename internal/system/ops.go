package system

import (
	"fmt"
	"sort"
)

// Union returns the disjoint union of a and b. The two systems must have
// identical NAMES sets (the paper only forms unions within a family, where
// NAMES is shared). Node identifiers are suffixed to stay unique. The
// result is generally disconnected — that is the point: the paper's
// family-of-systems constructions reason about exactly such unions.
func Union(a, b *System) (*System, error) {
	if len(a.Names) != len(b.Names) {
		return nil, fmt.Errorf("%w: NAMES differ in size (%d vs %d)", ErrShape, len(a.Names), len(b.Names))
	}
	for i := range a.Names {
		if a.Names[i] != b.Names[i] {
			return nil, fmt.Errorf("%w: NAMES differ at %d (%q vs %q)", ErrShape, i, a.Names[i], b.Names[i])
		}
	}
	u := &System{
		Names:    append([]Name(nil), a.Names...),
		ProcIDs:  make([]string, 0, a.NumProcs()+b.NumProcs()),
		VarIDs:   make([]string, 0, a.NumVars()+b.NumVars()),
		Nbr:      make([][]int, 0, a.NumProcs()+b.NumProcs()),
		ProcInit: make([]string, 0, a.NumProcs()+b.NumProcs()),
		VarInit:  make([]string, 0, a.NumVars()+b.NumVars()),
	}
	for p := range a.ProcIDs {
		u.ProcIDs = append(u.ProcIDs, a.ProcIDs[p]+"#a")
		u.Nbr = append(u.Nbr, append([]int(nil), a.Nbr[p]...))
		u.ProcInit = append(u.ProcInit, a.ProcInit[p])
	}
	for v := range a.VarIDs {
		u.VarIDs = append(u.VarIDs, a.VarIDs[v]+"#a")
		u.VarInit = append(u.VarInit, a.VarInit[v])
	}
	voff := a.NumVars()
	for p := range b.ProcIDs {
		row := make([]int, len(b.Nbr[p]))
		for j, v := range b.Nbr[p] {
			row[j] = v + voff
		}
		u.ProcIDs = append(u.ProcIDs, b.ProcIDs[p]+"#b")
		u.Nbr = append(u.Nbr, row)
		u.ProcInit = append(u.ProcInit, b.ProcInit[p])
	}
	for v := range b.VarIDs {
		u.VarIDs = append(u.VarIDs, b.VarIDs[v]+"#b")
		u.VarInit = append(u.VarInit, b.VarInit[v])
	}
	return u, nil
}

// UnionAll folds Union over a non-empty list of systems.
func UnionAll(systems []*System) (*System, error) {
	if len(systems) == 0 {
		return nil, fmt.Errorf("%w: empty union", ErrShape)
	}
	u := systems[0].Clone()
	for i := 1; i < len(systems); i++ {
		var err error
		u, err = Union(u, systems[i])
		if err != nil {
			return nil, fmt.Errorf("union member %d: %w", i, err)
		}
	}
	return u, nil
}

// Induced returns the subsystem induced by the processor set procs: the
// kept processors retain all their name-edges, the variable set is the
// union of their neighbors, and each kept variable keeps only edges from
// kept processors. This is the subsystem notion used by the paper's mimic
// relation (section 6, fair systems in S).
//
// The returned map gives, for each kept processor, its index in the new
// system ("the image of y in the subsystem").
func Induced(s *System, procs []int) (*System, map[int]int, error) {
	if len(procs) == 0 {
		return nil, nil, ErrEmptySubsetPs
	}
	keep := make([]int, len(procs))
	copy(keep, procs)
	sort.Ints(keep)
	for i, p := range keep {
		if p < 0 || p >= s.NumProcs() {
			return nil, nil, fmt.Errorf("%w: processor %d", ErrUnknownNode, p)
		}
		if i > 0 && keep[i] == keep[i-1] {
			return nil, nil, fmt.Errorf("%w: duplicate processor %d in subset", ErrShape, p)
		}
	}
	varMap := make(map[int]int) // old var index -> new
	sub := &System{Names: append([]Name(nil), s.Names...)}
	procMap := make(map[int]int, len(keep))
	for newP, oldP := range keep {
		procMap[oldP] = newP
		sub.ProcIDs = append(sub.ProcIDs, s.ProcIDs[oldP])
		sub.ProcInit = append(sub.ProcInit, s.ProcInit[oldP])
		row := make([]int, len(s.Names))
		for j, oldV := range s.Nbr[oldP] {
			newV, ok := varMap[oldV]
			if !ok {
				newV = len(sub.VarIDs)
				varMap[oldV] = newV
				sub.VarIDs = append(sub.VarIDs, s.VarIDs[oldV])
				sub.VarInit = append(sub.VarInit, s.VarInit[oldV])
			}
			row[j] = newV
		}
		sub.Nbr = append(sub.Nbr, row)
	}
	return sub, procMap, nil
}

// Permutation describes a candidate isomorphism between two systems with
// identical NAMES: ProcPerm[p] is the image of processor p, VarPerm[v] the
// image of variable v.
type Permutation struct {
	ProcPerm []int
	VarPerm  []int
}

// Apply returns a copy of s with nodes renumbered by perm. It is used to
// generate isomorphic variants for metamorphic tests ("isomorphic systems
// get isomorphic similarity labelings").
func Apply(s *System, perm Permutation) (*System, error) {
	if len(perm.ProcPerm) != s.NumProcs() || len(perm.VarPerm) != s.NumVars() {
		return nil, fmt.Errorf("%w: permutation size mismatch", ErrShape)
	}
	if err := checkPerm(perm.ProcPerm); err != nil {
		return nil, fmt.Errorf("processor permutation: %w", err)
	}
	if err := checkPerm(perm.VarPerm); err != nil {
		return nil, fmt.Errorf("variable permutation: %w", err)
	}
	out := &System{
		Names:    append([]Name(nil), s.Names...),
		ProcIDs:  make([]string, s.NumProcs()),
		VarIDs:   make([]string, s.NumVars()),
		Nbr:      make([][]int, s.NumProcs()),
		ProcInit: make([]string, s.NumProcs()),
		VarInit:  make([]string, s.NumVars()),
	}
	for p := range s.ProcIDs {
		img := perm.ProcPerm[p]
		out.ProcIDs[img] = s.ProcIDs[p]
		out.ProcInit[img] = s.ProcInit[p]
		row := make([]int, len(s.Nbr[p]))
		for j, v := range s.Nbr[p] {
			row[j] = perm.VarPerm[v]
		}
		out.Nbr[img] = row
	}
	for v := range s.VarIDs {
		out.VarIDs[perm.VarPerm[v]] = s.VarIDs[v]
		out.VarInit[perm.VarPerm[v]] = s.VarInit[v]
	}
	return out, nil
}

// IsAutomorphism reports whether perm maps s onto itself: edges, edge
// names, and initial states are all preserved. This is the paper's
// graph-theoretic symmetry (footnote 1).
func IsAutomorphism(s *System, perm Permutation) (bool, error) {
	if len(perm.ProcPerm) != s.NumProcs() || len(perm.VarPerm) != s.NumVars() {
		return false, fmt.Errorf("%w: permutation size mismatch", ErrShape)
	}
	if err := checkPerm(perm.ProcPerm); err != nil {
		return false, fmt.Errorf("processor permutation: %w", err)
	}
	if err := checkPerm(perm.VarPerm); err != nil {
		return false, fmt.Errorf("variable permutation: %w", err)
	}
	for p := range s.Nbr {
		if s.ProcInit[p] != s.ProcInit[perm.ProcPerm[p]] {
			return false, nil
		}
		for j, v := range s.Nbr[p] {
			if perm.VarPerm[v] != s.Nbr[perm.ProcPerm[p]][j] {
				return false, nil
			}
		}
	}
	for v := range s.VarInit {
		if s.VarInit[v] != s.VarInit[perm.VarPerm[v]] {
			return false, nil
		}
	}
	return true, nil
}

func checkPerm(perm []int) error {
	seen := make([]bool, len(perm))
	for _, x := range perm {
		if x < 0 || x >= len(perm) {
			return fmt.Errorf("%w: image %d out of range", ErrShape, x)
		}
		if seen[x] {
			return fmt.Errorf("%w: image %d repeated", ErrShape, x)
		}
		seen[x] = true
	}
	return nil
}
