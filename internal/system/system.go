// Package system implements the concurrent-system model of Johnson &
// Schneider, "Symmetry and Similarity in Distributed Systems" (PODC 1985),
// section 2.
//
// A system Σ = (N, state0, I, SP) consists of a connected bipartite network
// N of processors and shared variables, an initial state, an instruction
// set I, and a schedule class SP. Edges are labeled by a naming function:
// each processor has exactly one n-neighbor for every local name n in
// NAMES, so "the variable p calls n" is always well defined (the paper's
// n-nbr function).
package system

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// InstrSet identifies one of the paper's instruction sets.
type InstrSet int

// Instruction sets from the paper (section 2) plus the extended-locking
// variant discussed in section 6.
const (
	// InstrS is the simple instruction set: read and write on shared
	// variables plus arbitrary local instructions.
	InstrS InstrSet = iota + 1
	// InstrL is S plus lock/unlock on a per-variable lock bit.
	InstrL
	// InstrQ is the quasi-locking instruction set: peek and post on
	// variables that hold one subvalue per posting processor.
	InstrQ
	// InstrExtL is L extended with atomic multi-variable locking
	// (section 6, "Extended Locking").
	InstrExtL
)

// String implements fmt.Stringer.
func (i InstrSet) String() string {
	switch i {
	case InstrS:
		return "S"
	case InstrL:
		return "L"
	case InstrQ:
		return "Q"
	case InstrExtL:
		return "ExtL"
	default:
		return fmt.Sprintf("InstrSet(%d)", int(i))
	}
}

// ScheduleClass identifies one of the paper's schedule classes.
type ScheduleClass int

// Schedule classes from the paper (section 2).
const (
	// SchedGeneral places no restriction on schedules.
	SchedGeneral ScheduleClass = iota + 1
	// SchedFair requires every processor to appear infinitely often.
	SchedFair
	// SchedBoundedFair requires every processor to appear at least once
	// in any window of k consecutive steps, for some fixed k.
	SchedBoundedFair
)

// String implements fmt.Stringer.
func (s ScheduleClass) String() string {
	switch s {
	case SchedGeneral:
		return "general"
	case SchedFair:
		return "fair"
	case SchedBoundedFair:
		return "bounded-fair"
	default:
		return fmt.Sprintf("ScheduleClass(%d)", int(s))
	}
}

// Name is a local name a processor gives to one of its shared variables
// (an element of the paper's NAMES set).
type Name string

// Kind distinguishes the two node sorts of the bipartite network.
type Kind int

// Node kinds.
const (
	KindProcessor Kind = iota + 1
	KindVariable
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindProcessor:
		return "processor"
	case KindVariable:
		return "variable"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Node identifies a node of the network: a processor index or a variable
// index, tagged by kind.
type Node struct {
	Kind  Kind
	Index int
}

// P returns the processor node with index i.
func P(i int) Node { return Node{Kind: KindProcessor, Index: i} }

// V returns the variable node with index i.
func V(i int) Node { return Node{Kind: KindVariable, Index: i} }

// String implements fmt.Stringer.
func (n Node) String() string {
	switch n.Kind {
	case KindProcessor:
		return fmt.Sprintf("p%d", n.Index)
	case KindVariable:
		return fmt.Sprintf("v%d", n.Index)
	default:
		return fmt.Sprintf("?%d", n.Index)
	}
}

// System is the network N together with the initial state. The instruction
// set and schedule class are carried separately (see Config) because the
// paper routinely asks "what changes if the same network runs under a
// different model?".
//
// Processors and variables are dense indices. Nbr[p][j] gives the variable
// that processor p calls Names[j]; it is the paper's n-nbr function.
type System struct {
	// Names is the set NAMES in a fixed order. Every processor has
	// exactly one neighbor per name.
	Names []Name

	// ProcIDs holds display identifiers for processors (e.g. "p1").
	ProcIDs []string
	// VarIDs holds display identifiers for variables (e.g. "fork3").
	VarIDs []string

	// Nbr[p][j] is the index of the variable that processor p calls
	// Names[j]. len(Nbr) == len(ProcIDs) and len(Nbr[p]) == len(Names).
	Nbr [][]int

	// ProcInit[p] is the initial state of processor p, as an opaque
	// value. Processors with equal initial states are indistinguishable
	// at time zero.
	ProcInit []string
	// VarInit[v] is the initial state of variable v.
	VarInit []string
}

// Config pairs a network with the model it runs under.
type Config struct {
	Sys   *System
	Instr InstrSet
	Sched ScheduleClass
}

// Sentinel errors returned by Validate.
var (
	ErrNoProcessors  = errors.New("system has no processors")
	ErrNoNames       = errors.New("system has no names")
	ErrShape         = errors.New("system shape is inconsistent")
	ErrBadNeighbor   = errors.New("neighbor index out of range")
	ErrOrphanVar     = errors.New("variable has no neighbors")
	ErrDupName       = errors.New("duplicate name in NAMES")
	ErrNotConnected  = errors.New("network is not connected")
	ErrUnknownName   = errors.New("unknown name")
	ErrUnknownNode   = errors.New("unknown node")
	ErrEmptySubsetPs = errors.New("induced subsystem needs at least one processor")
)

// NumProcs returns |P|.
func (s *System) NumProcs() int { return len(s.ProcIDs) }

// NumVars returns |V|.
func (s *System) NumVars() int { return len(s.VarIDs) }

// NumNodes returns |P ∪ V|.
func (s *System) NumNodes() int { return len(s.ProcIDs) + len(s.VarIDs) }

// NameIndex returns the position of n in Names, or an error if n is not a
// member of NAMES.
func (s *System) NameIndex(n Name) (int, error) {
	for i, m := range s.Names {
		if m == n {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownName, n)
}

// NNbr returns the variable index that processor p calls name n (the
// paper's n-nbr(p)).
func (s *System) NNbr(p int, n Name) (int, error) {
	j, err := s.NameIndex(n)
	if err != nil {
		return 0, err
	}
	if p < 0 || p >= s.NumProcs() {
		return 0, fmt.Errorf("%w: processor %d", ErrUnknownNode, p)
	}
	return s.Nbr[p][j], nil
}

// Edge records one labeled edge of the bipartite network, from the
// variable side: processor Proc calls the variable by Names[NameIdx].
type Edge struct {
	Proc    int
	NameIdx int
}

// VarNeighbors returns, for each variable index, the list of (processor,
// name-index) edges incident on it, in deterministic order.
func (s *System) VarNeighbors() [][]Edge {
	out := make([][]Edge, s.NumVars())
	for p := range s.Nbr {
		for j, v := range s.Nbr[p] {
			out[v] = append(out[v], Edge{Proc: p, NameIdx: j})
		}
	}
	for v := range out {
		sort.Slice(out[v], func(a, b int) bool {
			if out[v][a].Proc != out[v][b].Proc {
				return out[v][a].Proc < out[v][b].Proc
			}
			return out[v][a].NameIdx < out[v][b].NameIdx
		})
	}
	return out
}

// Validate checks the structural invariants of the model: nonempty P and
// NAMES, exactly one neighbor per (processor, name), valid indices, no
// duplicate names, no orphan variables, and matching state-vector lengths.
// Connectivity is checked separately (Connected) because the paper makes
// essential use of disconnected union systems.
func (s *System) Validate() error {
	if s.NumProcs() == 0 {
		return ErrNoProcessors
	}
	if len(s.Names) == 0 {
		return ErrNoNames
	}
	seen := make(map[Name]bool, len(s.Names))
	for _, n := range s.Names {
		if seen[n] {
			return fmt.Errorf("%w: %q", ErrDupName, n)
		}
		seen[n] = true
	}
	if len(s.Nbr) != s.NumProcs() {
		return fmt.Errorf("%w: len(Nbr)=%d, |P|=%d", ErrShape, len(s.Nbr), s.NumProcs())
	}
	if len(s.ProcInit) != s.NumProcs() {
		return fmt.Errorf("%w: len(ProcInit)=%d, |P|=%d", ErrShape, len(s.ProcInit), s.NumProcs())
	}
	if len(s.VarInit) != s.NumVars() {
		return fmt.Errorf("%w: len(VarInit)=%d, |V|=%d", ErrShape, len(s.VarInit), s.NumVars())
	}
	touched := make([]bool, s.NumVars())
	for p, row := range s.Nbr {
		if len(row) != len(s.Names) {
			return fmt.Errorf("%w: processor %d has %d neighbors, want one per name (%d)",
				ErrShape, p, len(row), len(s.Names))
		}
		for j, v := range row {
			if v < 0 || v >= s.NumVars() {
				return fmt.Errorf("%w: processor %d name %q -> %d (|V|=%d)",
					ErrBadNeighbor, p, s.Names[j], v, s.NumVars())
			}
			touched[v] = true
		}
	}
	for v, ok := range touched {
		if !ok {
			return fmt.Errorf("%w: %s", ErrOrphanVar, s.VarIDs[v])
		}
	}
	return nil
}

// Connected reports whether the bipartite network is connected.
func (s *System) Connected() bool {
	if s.NumNodes() == 0 {
		return true
	}
	// BFS over the node space: processors 0..|P|-1, then variables.
	np := s.NumProcs()
	total := s.NumNodes()
	visited := make([]bool, total)
	queue := []int{0}
	visited[0] = true
	count := 1
	vn := s.VarNeighbors()
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur < np {
			for _, v := range s.Nbr[cur] {
				if !visited[np+v] {
					visited[np+v] = true
					count++
					queue = append(queue, np+v)
				}
			}
		} else {
			for _, e := range vn[cur-np] {
				if !visited[e.Proc] {
					visited[e.Proc] = true
					count++
					queue = append(queue, e.Proc)
				}
			}
		}
	}
	return count == total
}

// Clone returns a deep copy of the system.
func (s *System) Clone() *System {
	c := &System{
		Names:    append([]Name(nil), s.Names...),
		ProcIDs:  append([]string(nil), s.ProcIDs...),
		VarIDs:   append([]string(nil), s.VarIDs...),
		Nbr:      make([][]int, len(s.Nbr)),
		ProcInit: append([]string(nil), s.ProcInit...),
		VarInit:  append([]string(nil), s.VarInit...),
	}
	for p := range s.Nbr {
		c.Nbr[p] = append([]int(nil), s.Nbr[p]...)
	}
	return c
}

// String renders a compact human-readable description.
func (s *System) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "system{|P|=%d |V|=%d names=%v}", s.NumProcs(), s.NumVars(), s.Names)
	return b.String()
}

// Describe renders a full multi-line description, useful in CLIs and
// golden tests.
func (s *System) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "names:")
	for _, n := range s.Names {
		fmt.Fprintf(&b, " %s", n)
	}
	b.WriteByte('\n')
	for p := range s.ProcIDs {
		fmt.Fprintf(&b, "proc %s init=%q:", s.ProcIDs[p], s.ProcInit[p])
		for j, v := range s.Nbr[p] {
			fmt.Fprintf(&b, " %s->%s", s.Names[j], s.VarIDs[v])
		}
		b.WriteByte('\n')
	}
	for v := range s.VarIDs {
		fmt.Fprintf(&b, "var %s init=%q\n", s.VarIDs[v], s.VarInit[v])
	}
	return b.String()
}
