package system

import (
	"errors"
	"testing"
)

func TestTreeShape(t *testing.T) {
	if _, err := Tree(0); !errors.Is(err, ErrShape) {
		t.Fatalf("Tree(0) err = %v, want ErrShape", err)
	}
	s, err := Tree(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.ProcIDs); got != 7 {
		t.Fatalf("procs = %d, want 7", got)
	}
	// Heap parents: proc 5's "up" binds var 2, proc 0 self-loops.
	if s.Nbr[5][0] != 2 || s.Nbr[0][0] != 0 {
		t.Fatalf("unexpected parents: %v", s.Nbr)
	}
	if !s.Connected() {
		t.Fatal("tree not connected")
	}
}

func TestMutateRoundTrip(t *testing.T) {
	s, err := Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	// Splice a new processor between p3 and p0: new var, new proc,
	// rewire p0's left edge onto the new var.
	v := s.AddVar("vx", "0")
	p, err := s.AddProc("px", "0", []int{3, v})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Rewire(0, "left", v); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("after splice: %v", err)
	}
	if len(s.ProcIDs) != 5 || p != 4 {
		t.Fatalf("unexpected splice result: %d procs, p=%d", len(s.ProcIDs), p)
	}

	// Undo: rewire p0 back, then remove px; its private var vx must be
	// cascade-removed and the result must be a valid 4-ring again.
	if err := s.Rewire(0, "left", 3); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveProc(p); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("after unsplice: %v", err)
	}
	if len(s.ProcIDs) != 4 || len(s.VarIDs) != 4 {
		t.Fatalf("cascade removal failed: %d procs %d vars", len(s.ProcIDs), len(s.VarIDs))
	}

	if err := s.SetProcInit(1, "hot"); err != nil || s.ProcInit[1] != "hot" {
		t.Fatalf("SetProcInit: %v", err)
	}
	if err := s.SetVarInit(2, "dirty"); err != nil || s.VarInit[2] != "dirty" {
		t.Fatalf("SetVarInit: %v", err)
	}
}

func TestRemoveVarInUse(t *testing.T) {
	s, err := Ring(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveVar(1); !errors.Is(err, ErrVarInUse) {
		t.Fatalf("err = %v, want ErrVarInUse", err)
	}
	if err := s.RemoveVar(99); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
}

func TestRemoveVarRenumbers(t *testing.T) {
	s, err := Star(3) // center=0, m0..m2=1..3
	if err != nil {
		t.Fatal(err)
	}
	// Point p1's "own" at m0 so m1 (var 2) goes unused, then drop it.
	if err := s.Rewire(1, "own", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveVar(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// p2's own var was m2 (index 3), renumbered down to 2.
	if s.Nbr[2][1] != 2 || s.VarIDs[2] != "m2" {
		t.Fatalf("renumbering wrong: Nbr=%v VarIDs=%v", s.Nbr, s.VarIDs)
	}
}
