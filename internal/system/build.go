package system

import (
	"fmt"
	"math/rand"
)

// Fig1 builds the paper's Figure 1: two processors p and q sharing a
// single variable v, which both call by the same name. Under a round-robin
// schedule p and q behave similarly, so no program can select either
// (Theorem 2's running example).
func Fig1() *System {
	return &System{
		Names:    []Name{"n"},
		ProcIDs:  []string{"p", "q"},
		VarIDs:   []string{"v"},
		Nbr:      [][]int{{0}, {0}},
		ProcInit: []string{"0", "0"},
		VarInit:  []string{"0"},
	}
}

// Fig2 builds the paper's Figure 2 ("Complicated Alibis"): p1 and p2 share
// v1 (name n), p3 has v2 to itself (name n), and all three share v3 (name
// m). The similarity labeling has two processor classes {p1,p2} and {p3};
// learning the labels requires the alibi reasoning of Algorithm 2.
func Fig2() *System {
	return &System{
		Names:    []Name{"n", "m"},
		ProcIDs:  []string{"p1", "p2", "p3"},
		VarIDs:   []string{"v1", "v2", "v3"},
		Nbr:      [][]int{{0, 2}, {0, 2}, {1, 2}},
		ProcInit: []string{"0", "0", "0"},
		VarInit:  []string{"0", "0", "0"},
	}
}

// Fig3 builds a reconstruction of the paper's Figure 3 ("A System in S").
// The published image is unavailable in our source text; this network is
// reverse-engineered from the surrounding prose and provably exhibits
// every property the paper ascribes to the figure:
//
//   - if z never executes, p and q "behave as if they were similar"
//     (the subsystem induced by {p,q} makes them similar), and
//   - p cannot tell whether z has executed (z can write into p's variable
//     u), so p can never safely learn its similarity label;
//   - under the bounded-fair set-based labeling all three processors are
//     dissimilar, so selection is solvable with bounded-fair schedules
//     but not with merely fair ones — the exact separation section 6
//     uses Figure 3 to illustrate.
//
// Topology: NAMES = {a, b};
//
//	p: a->u, b->t     q: a->w, b->t     z: a->w, b->u
func Fig3() *System {
	return &System{
		Names:    []Name{"a", "b"},
		ProcIDs:  []string{"p", "q", "z"},
		VarIDs:   []string{"u", "w", "t"},
		Nbr:      [][]int{{0, 2}, {1, 2}, {1, 0}},
		ProcInit: []string{"0", "0", "0"},
		VarInit:  []string{"0", "0", "0"},
	}
}

// Ring builds a ring of n processors joined by n shared variables, with
// NAMES = {left, right}: processor i calls variable i its right neighbor
// and variable (i-1 mod n) its left neighbor. All initial states are "0",
// so the ring is fully symmetric; rings are the canonical hard case for
// anonymous selection.
func Ring(n int) (*System, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: ring size %d", ErrShape, n)
	}
	s := &System{
		Names:    []Name{"left", "right"},
		ProcIDs:  make([]string, n),
		VarIDs:   make([]string, n),
		Nbr:      make([][]int, n),
		ProcInit: make([]string, n),
		VarInit:  make([]string, n),
	}
	for i := 0; i < n; i++ {
		s.ProcIDs[i] = fmt.Sprintf("p%d", i)
		s.VarIDs[i] = fmt.Sprintf("v%d", i)
		s.Nbr[i] = []int{(i - 1 + n) % n, i} // left, right
		s.ProcInit[i] = "0"
		s.VarInit[i] = "0"
	}
	return s, nil
}

// Dining builds the paper's Figure 4 generalized to n philosophers:
// processors are philosophers, variables are forks, and NAMES =
// {left, right} with philosopher i's right fork being fork i and left
// fork being fork (i-1 mod n). For n = 5 this is exactly Figure 4.
func Dining(n int) (*System, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: dining size %d", ErrShape, n)
	}
	s, err := Ring(n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		s.ProcIDs[i] = fmt.Sprintf("phil%d", i)
		s.VarIDs[i] = fmt.Sprintf("fork%d", i)
	}
	return s, nil
}

// DiningFlipped builds the paper's Figure 5: n philosophers (n even) where
// alternate philosophers have "put their backs to the table", so each
// philosopher's right fork is also its neighbor's right fork. Even-indexed
// philosophers face the table (right = fork i, left = fork i-1); odd-
// indexed philosophers are flipped (right = fork i-1, left = fork i).
// Every fork is therefore either a shared-right fork or a shared-left
// fork, and philosophers fall into two similarity classes, which is what
// makes a deterministic symmetric solution possible (DP').
func DiningFlipped(n int) (*System, error) {
	if n < 4 || n%2 != 0 {
		return nil, fmt.Errorf("%w: flipped dining needs even size >= 4, got %d", ErrShape, n)
	}
	s := &System{
		Names:    []Name{"left", "right"},
		ProcIDs:  make([]string, n),
		VarIDs:   make([]string, n),
		Nbr:      make([][]int, n),
		ProcInit: make([]string, n),
		VarInit:  make([]string, n),
	}
	for i := 0; i < n; i++ {
		s.ProcIDs[i] = fmt.Sprintf("phil%d", i)
		s.VarIDs[i] = fmt.Sprintf("fork%d", i)
		prev := (i - 1 + n) % n
		if i%2 == 0 {
			s.Nbr[i] = []int{prev, i} // left, right
		} else {
			s.Nbr[i] = []int{i, prev} // flipped: left=fork i, right=fork i-1
		}
		s.ProcInit[i] = "0"
		s.VarInit[i] = "0"
	}
	return s, nil
}

// Star builds n processors that all share one central variable (name
// "hub") and each own a private variable (name "own").
func Star(n int) (*System, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: star size %d", ErrShape, n)
	}
	s := &System{
		Names:    []Name{"hub", "own"},
		ProcIDs:  make([]string, n),
		VarIDs:   make([]string, n+1),
		Nbr:      make([][]int, n),
		ProcInit: make([]string, n),
		VarInit:  make([]string, n+1),
	}
	s.VarIDs[0] = "center"
	s.VarInit[0] = "0"
	for i := 0; i < n; i++ {
		s.ProcIDs[i] = fmt.Sprintf("p%d", i)
		s.VarIDs[i+1] = fmt.Sprintf("m%d", i)
		s.VarInit[i+1] = "0"
		s.Nbr[i] = []int{0, i + 1}
		s.ProcInit[i] = "0"
	}
	return s, nil
}

// Tree builds a rooted binary tree of n processors: processor i owns
// variable i (name "own") and shares its parent's variable under name
// "up" (the root's "up" points at its own variable). Children of a
// processor read its variable through their "up" binding, so the
// variable-sharing graph is exactly the heap-shaped tree on
// 0..n-1 with parent(i) = (i-1)/2. Similarity classes group processors
// by depth and subtree shape, which makes Tree the second churn family
// of E17: leaf joins and leaves are locality-bounded events.
func Tree(n int) (*System, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: tree size %d", ErrShape, n)
	}
	s := &System{
		Names:    []Name{"up", "own"},
		ProcIDs:  make([]string, n),
		VarIDs:   make([]string, n),
		Nbr:      make([][]int, n),
		ProcInit: make([]string, n),
		VarInit:  make([]string, n),
	}
	for i := 0; i < n; i++ {
		s.ProcIDs[i] = fmt.Sprintf("p%d", i)
		s.VarIDs[i] = fmt.Sprintf("v%d", i)
		parent := 0
		if i > 0 {
			parent = (i - 1) / 2
		}
		s.Nbr[i] = []int{parent, i} // up, own
		s.ProcInit[i] = "0"
		s.VarInit[i] = "0"
	}
	return s, nil
}

// QOverSWitness builds a system whose selection problem is solvable in Q
// but not in bounded-fair S: p1 and p2 share variable v under name "a"
// while p3 has variable w to itself, and all three share t under name "b".
// Counting neighbors (possible in Q via peek multisets) separates p3; the
// set-based environments of S cannot tell one a-writer from two, so all
// three processors stay similar. Used as the Q ⊃ bounded-fair-S witness
// of the section 9 hierarchy.
func QOverSWitness() *System {
	return &System{
		Names:    []Name{"a", "b"},
		ProcIDs:  []string{"p1", "p2", "p3"},
		VarIDs:   []string{"v", "w", "t"},
		Nbr:      [][]int{{0, 2}, {0, 2}, {1, 2}},
		ProcInit: []string{"0", "0", "0"},
		VarInit:  []string{"0", "0", "0"},
	}
}

// LOverQWitness returns Figure 1: solvable in L (the two processors race
// on v's lock bit and the loser learns it lost) but unsolvable in Q, where
// they remain similar forever. Used as the L ⊃ Q witness of the section 9
// hierarchy.
func LOverQWitness() *System { return Fig1() }

// RandomOpts configures RandomSystem.
type RandomOpts struct {
	Procs      int
	Vars       int
	Names      int
	InitStates int // number of distinct initial-state values to draw from
}

// RandomSystem generates a pseudo-random valid system (every processor
// gets one neighbor per name; orphan variables are re-attached). The
// result may be disconnected. Deterministic for a fixed seed; used by
// property-based tests.
func RandomSystem(rng *rand.Rand, opts RandomOpts) (*System, error) {
	if opts.Procs < 1 || opts.Vars < 1 || opts.Names < 1 {
		return nil, fmt.Errorf("%w: random system needs >=1 proc, var, name", ErrShape)
	}
	if opts.InitStates < 1 {
		opts.InitStates = 1
	}
	s := &System{
		Names:    make([]Name, opts.Names),
		ProcIDs:  make([]string, opts.Procs),
		VarIDs:   make([]string, opts.Vars),
		Nbr:      make([][]int, opts.Procs),
		ProcInit: make([]string, opts.Procs),
		VarInit:  make([]string, opts.Vars),
	}
	for j := range s.Names {
		s.Names[j] = Name(fmt.Sprintf("n%d", j))
	}
	for v := range s.VarIDs {
		s.VarIDs[v] = fmt.Sprintf("v%d", v)
		s.VarInit[v] = fmt.Sprintf("s%d", rng.Intn(opts.InitStates))
	}
	touched := make([]bool, opts.Vars)
	for p := range s.ProcIDs {
		s.ProcIDs[p] = fmt.Sprintf("p%d", p)
		s.ProcInit[p] = fmt.Sprintf("s%d", rng.Intn(opts.InitStates))
		row := make([]int, opts.Names)
		for j := range row {
			row[j] = rng.Intn(opts.Vars)
			touched[row[j]] = true
		}
		s.Nbr[p] = row
	}
	// Re-attach orphan variables by rewiring random (proc, name) slots.
	for v, ok := range touched {
		if ok {
			continue
		}
		p := rng.Intn(opts.Procs)
		j := rng.Intn(opts.Names)
		// The displaced variable may itself become an orphan only if this
		// was its last edge; walk forward to keep the fixup loop simple by
		// re-scanning afterwards.
		s.Nbr[p][j] = v
		touched[v] = true
	}
	// Re-scan: the fixups above can orphan previously-touched variables.
	for {
		used := make([]bool, opts.Vars)
		for p := range s.Nbr {
			for _, v := range s.Nbr[p] {
				used[v] = true
			}
		}
		orphan := -1
		for v, ok := range used {
			if !ok {
				orphan = v
				break
			}
		}
		if orphan == -1 {
			break
		}
		// Give the orphan an edge from a processor whose current target
		// for that name has another edge elsewhere.
		fixed := false
		for p := 0; p < opts.Procs && !fixed; p++ {
			for j := 0; j < opts.Names && !fixed; j++ {
				old := s.Nbr[p][j]
				count := 0
				for q := range s.Nbr {
					for _, v := range s.Nbr[q] {
						if v == old {
							count++
						}
					}
				}
				if count > 1 {
					s.Nbr[p][j] = orphan
					fixed = true
				}
			}
		}
		if !fixed {
			return nil, fmt.Errorf("%w: cannot attach all %d variables with %d edge slots",
				ErrShape, opts.Vars, opts.Procs*opts.Names)
		}
	}
	return s, nil
}
