package system

import (
	"errors"
	"fmt"
)

// ErrVarInUse is returned by RemoveVar when a processor still binds the
// variable under some name.
var ErrVarInUse = errors.New("variable still referenced by a processor")

// Mutation helpers: in-place edits of the compact representation that
// preserve Validate's invariants (every processor binds one variable
// per name; no orphan variables after RemoveProc's cascade). These are
// O(n) on the compact arrays — the churn hot path lives in
// core.DynSystem's slot tables; this surface exists for diff
// application, snapshots, and tests.

// AddVar appends a variable and returns its index.
func (s *System) AddVar(id, init string) int {
	s.VarIDs = append(s.VarIDs, id)
	s.VarInit = append(s.VarInit, init)
	return len(s.VarIDs) - 1
}

// AddProc appends a processor bound to nbr (one variable index per
// name, in Names order) and returns its index.
func (s *System) AddProc(id, init string, nbr []int) (int, error) {
	if len(nbr) != len(s.Names) {
		return 0, fmt.Errorf("%w: proc %q binds %d names, system has %d", ErrShape, id, len(nbr), len(s.Names))
	}
	for _, v := range nbr {
		if v < 0 || v >= len(s.VarIDs) {
			return 0, fmt.Errorf("%w: proc %q -> var %d", ErrBadNeighbor, id, v)
		}
	}
	s.ProcIDs = append(s.ProcIDs, id)
	s.ProcInit = append(s.ProcInit, init)
	s.Nbr = append(s.Nbr, append([]int(nil), nbr...))
	return len(s.ProcIDs) - 1, nil
}

// Rewire points processor p's binding for name at variable v.
func (s *System) Rewire(p int, name Name, v int) error {
	if p < 0 || p >= len(s.ProcIDs) {
		return fmt.Errorf("%w: proc %d", ErrUnknownNode, p)
	}
	if v < 0 || v >= len(s.VarIDs) {
		return fmt.Errorf("%w: var %d", ErrBadNeighbor, v)
	}
	for k, n := range s.Names {
		if n == name {
			s.Nbr[p][k] = v
			return nil
		}
	}
	return fmt.Errorf("%w: %q", ErrUnknownName, name)
}

// SetProcInit replaces processor p's initial state.
func (s *System) SetProcInit(p int, init string) error {
	if p < 0 || p >= len(s.ProcIDs) {
		return fmt.Errorf("%w: proc %d", ErrUnknownNode, p)
	}
	s.ProcInit[p] = init
	return nil
}

// SetVarInit replaces variable v's initial value.
func (s *System) SetVarInit(v int, init string) error {
	if v < 0 || v >= len(s.VarIDs) {
		return fmt.Errorf("%w: var %d", ErrUnknownNode, v)
	}
	s.VarInit[v] = init
	return nil
}

// RemoveVar deletes variable v, renumbering bindings above it. It fails
// with ErrVarInUse while any processor still binds v.
func (s *System) RemoveVar(v int) error {
	if v < 0 || v >= len(s.VarIDs) {
		return fmt.Errorf("%w: var %d", ErrUnknownNode, v)
	}
	for p, row := range s.Nbr {
		for _, t := range row {
			if t == v {
				return fmt.Errorf("%w: var %d by proc %d", ErrVarInUse, v, p)
			}
		}
	}
	s.VarIDs = append(s.VarIDs[:v], s.VarIDs[v+1:]...)
	s.VarInit = append(s.VarInit[:v], s.VarInit[v+1:]...)
	for _, row := range s.Nbr {
		for k, t := range row {
			if t > v {
				row[k] = t - 1
			}
		}
	}
	return nil
}

// RemoveProc deletes processor p and cascade-removes any variables left
// orphaned by its departure, so the result still passes Validate.
func (s *System) RemoveProc(p int) error {
	if p < 0 || p >= len(s.ProcIDs) {
		return fmt.Errorf("%w: proc %d", ErrUnknownNode, p)
	}
	s.ProcIDs = append(s.ProcIDs[:p], s.ProcIDs[p+1:]...)
	s.ProcInit = append(s.ProcInit[:p], s.ProcInit[p+1:]...)
	s.Nbr = append(s.Nbr[:p], s.Nbr[p+1:]...)
	used := make([]bool, len(s.VarIDs))
	for _, row := range s.Nbr {
		for _, t := range row {
			used[t] = true
		}
	}
	for v := len(used) - 1; v >= 0; v-- {
		if !used[v] {
			if err := s.RemoveVar(v); err != nil {
				return err
			}
		}
	}
	return nil
}
